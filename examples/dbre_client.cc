// dbre_client — talk to a running dbre_serve daemon.
//
//   dbre_client [--host H] --port N           # REPL: one JSON request per
//                                             # stdin line, response printed
//   dbre_client [--host H] --port N demo      # drive the paper's example
//
// Connecting retries ECONNREFUSED with capped backoff for --timeout-ms
// milliseconds (default 5000), so scripting `dbre_serve ... & dbre_client`
// needs no sleep between the two — the client waits out the daemon's bind.
//                                             # session end to end, asking
//                                             # the expert questions on the
//                                             # terminal
//
// The demo mode is the tutorial session from TUTORIAL.md: it creates a
// session, uploads the paper's dictionary and extension, registers the
// five equi-joins of §5 and runs the pipeline with the asynchronous
// oracle. Every time the pipeline suspends on an expert question the
// client prints the question (with its join valuations or g3 error) and
// forwards your terminal answer over the wire.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "relational/csv.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/transport.h"
#include "sql/ddl_writer.h"
#include "workload/paper_example.h"

namespace {

using dbre::service::Json;

struct ClientArgs {
  std::string host = "127.0.0.1";
  int port = 7411;
  long timeout_ms = 5000;
  std::string mode = "repl";
  bool show_help = false;
};

bool ParseArgs(int argc, char** argv, ClientArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--host" && i + 1 < argc) {
      args->host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      args->port = std::atoi(argv[++i]);
    } else if (flag == "--timeout-ms" && i + 1 < argc) {
      args->timeout_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (flag == "repl" || flag == "demo") {
      args->mode = flag;
    } else if (flag == "--help" || flag == "-h") {
      args->show_help = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

// Sends one request and returns the parsed "result" object; dies on any
// transport or protocol error (this is an example, not a library).
class Connection {
 public:
  explicit Connection(std::unique_ptr<dbre::service::SocketChannel> channel)
      : channel_(std::move(channel)) {}

  Json Call(Json request) {
    request.Set("id", Json::Int(next_id_++));
    if (auto status = channel_->WriteLine(request.Dump()); !status.ok()) {
      Die(status.ToString());
    }
    auto line = channel_->ReadLine();
    if (!line.ok()) Die("server closed the connection");
    auto response = Json::Parse(*line);
    if (!response.ok()) Die(response.status().ToString());
    const Json* ok = response->Find("ok");
    if (ok == nullptr || !ok->IsBool() || !ok->AsBool()) {
      const Json* error = response->Find("error");
      Die(error != nullptr ? error->Dump() : *line);
    }
    const Json* result = response->Find("result");
    return result != nullptr ? *result : Json::MakeObject();
  }

 private:
  [[noreturn]] void Die(const std::string& message) {
    std::fprintf(stderr, "dbre_client: %s\n", message.c_str());
    std::exit(1);
  }

  std::unique_ptr<dbre::service::SocketChannel> channel_;
  int64_t next_id_ = 1;
};

Json Command(const char* cmd) {
  Json request = Json::MakeObject();
  request.Set("cmd", Json::Str(cmd));
  return request;
}

Json SessionCommand(const char* cmd, const std::string& session) {
  Json request = Command(cmd);
  request.Set("session", Json::Str(session));
  return request;
}

void PrintQuestion(const Json& question) {
  std::printf("\n[%s] %s\n", question.GetString("kind").c_str(),
              question.GetString("subject").c_str());
  const Json* counts = question.Find("counts");
  if (counts != nullptr) {
    std::printf("  valuations: |left|=%lld |right|=%lld |join|=%lld\n",
                static_cast<long long>(counts->GetInt("left")),
                static_cast<long long>(counts->GetInt("right")),
                static_cast<long long>(counts->GetInt("join")));
  }
  const Json* g3 = question.Find("g3_error");
  if (g3 != nullptr) {
    std::printf("  g3 error: %.4f\n", g3->AsNumber());
  }
}

// Reads the expert's terminal answer for `question` into answer fields on
// `request`. Returns false to skip (leave the question pending).
bool ReadAnswer(const Json& question, Json* request) {
  std::string kind = question.GetString("kind");
  std::string line;
  if (kind == "nei") {
    std::printf("  [c]onceptualize / force [l]eft⊆right / force "
                "[r]ight⊆left / [i]gnore > ");
    if (!std::getline(std::cin, line) || line.empty()) return false;
    switch (line[0]) {
      case 'c': {
        request->Set("action", Json::Str("conceptualize"));
        std::printf("  relation name (empty = derive): ");
        std::string name;
        std::getline(std::cin, name);
        if (!name.empty()) request->Set("name", Json::Str(name));
        return true;
      }
      case 'l': request->Set("action", Json::Str("force_left")); return true;
      case 'r': request->Set("action", Json::Str("force_right")); return true;
      case 'i': request->Set("action", Json::Str("ignore")); return true;
      default: return false;
    }
  }
  if (kind == "enforce_fd" || kind == "validate_fd" ||
      kind == "hidden_object") {
    std::printf("  accept? [y/n] > ");
    if (!std::getline(std::cin, line) || line.empty()) return false;
    request->Set("value", Json::Bool(line[0] == 'y' || line[0] == 'Y'));
    return true;
  }
  std::printf("  name (empty = derive) > ");
  if (!std::getline(std::cin, line)) return false;
  request->Set("name", Json::Str(line));
  return true;
}

int RunDemo(Connection* connection) {
  auto db = dbre::workload::BuildPaperDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "paper database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  Json created = connection->Call(Command("create"));
  std::string session = created.GetString("session");
  std::printf("session %s created\n", session.c_str());

  Json load_ddl = SessionCommand("load_ddl", session);
  load_ddl.Set("sql", Json::Str(dbre::sql::WriteDdl(*db)));
  Json ddl_result = connection->Call(std::move(load_ddl));
  std::printf("dictionary: %lld relations\n",
              static_cast<long long>(ddl_result.GetInt("relations")));

  for (const std::string& relation : db->RelationNames()) {
    auto table = db->GetMutableTable(relation);
    if (!table.ok()) continue;
    Json load_csv = SessionCommand("load_csv", session);
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(dbre::WriteCsvText(**table)));
    Json csv_result = connection->Call(std::move(load_csv));
    std::printf("  %s: %lld tuples\n", relation.c_str(),
                static_cast<long long>(csv_result.GetInt("rows")));
  }

  Json add_joins = SessionCommand("add_joins", session);
  Json joins = Json::MakeArray();
  for (const dbre::EquiJoin& join : dbre::workload::PaperJoinSet()) {
    joins.Append(dbre::service::JoinToJson(join));
  }
  add_joins.Set("joins", std::move(joins));
  Json joins_result = connection->Call(std::move(add_joins));
  std::printf("workload Q: %lld equi-joins\n",
              static_cast<long long>(joins_result.GetInt("added")));

  connection->Call(SessionCommand("run", session));
  std::printf("pipeline running; answer the expert questions below.\n");

  while (true) {
    Json wait = SessionCommand("wait", session);
    wait.Set("for", Json::Str("question"));
    wait.Set("timeout_ms", Json::Int(5000));
    Json waited = connection->Call(std::move(wait));
    std::string state = waited.GetString("state");
    if (state == "done" || state == "failed" || state == "closed") break;
    if (waited.GetInt("pending") == 0) continue;

    Json listed = connection->Call(SessionCommand("questions", session));
    const Json* questions = listed.Find("questions");
    if (questions == nullptr || !questions->IsArray()) continue;
    for (const Json& question : questions->array()) {
      PrintQuestion(question);
      Json answer = SessionCommand("answer", session);
      answer.Set("question", Json::Int(question.GetInt("qid")));
      if (!ReadAnswer(question, &answer)) continue;
      connection->Call(std::move(answer));
    }
  }

  Json status = connection->Call(SessionCommand("status", session));
  if (status.GetString("state") == "failed") {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 status.GetString("error").c_str());
    return 1;
  }
  Json summary = connection->Call(SessionCommand("summary", session));
  std::printf("\n%s", summary.GetString("summary").c_str());
  connection->Call(SessionCommand("close", session));
  return 0;
}

int RunRepl(Connection* connection) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    auto request = Json::Parse(line);
    if (!request.ok() || !request->IsObject()) {
      std::fprintf(stderr, "not a JSON object: %s\n", line.c_str());
      continue;
    }
    Json result = connection->Call(std::move(*request));
    std::printf("%s\n", result.Dump().c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientArgs args;
  if (!ParseArgs(argc, argv, &args) || args.show_help) {
    std::printf(
        "usage: dbre_client [--host H] [--port N] [--timeout-ms MS] "
        "[repl|demo]\n");
    return args.show_help ? 0 : 2;
  }
  auto channel = dbre::service::TcpConnectWithRetry(
      args.host, static_cast<uint16_t>(args.port), args.timeout_ms);
  if (!channel.ok()) {
    std::fprintf(stderr, "dbre_client: %s\n",
                 channel.status().ToString().c_str());
    return 1;
  }
  Connection connection(std::move(*channel));
  return args.mode == "demo" ? RunDemo(&connection) : RunRepl(&connection);
}
