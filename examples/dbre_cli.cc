// dbre_cli — drive the whole method on your own legacy database.
//
//   dbre_cli --ddl schema.sql [--data DIR] [--programs FILE...]
//            [--interactive] [--infer-keys] [--merge-isa-cycles]
//            [--out-prefix PREFIX]
//
//   --ddl FILE        dictionary: CREATE TABLE (+ optional INSERTs)
//   --data DIR        per-relation extensions from DIR/<Relation>.csv
//   --programs FILES  application programs to scan for embedded SQL
//                     (everything after --programs until the next flag)
//   --interactive     ask the expert questions on stdin (default: an
//                     unattended threshold policy that accepts hidden
//                     objects and forces inclusions at >= 50% overlap)
//   --infer-keys      mine keys for relations without unique declarations
//   --merge-isa-cycles collapse cyclic is-a structures
//   --out-prefix P    write P_eer.dot and P_schema.sql (default
//                     "out/dbre"; the directory is created if missing)
//
// Exit code 0 on success; the full pipeline report prints to stdout.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/interactive_oracle.h"
#include "core/navigation_graph.h"
#include "core/pipeline.h"
#include "core/report_json.h"
#include "eer/dot_export.h"
#include "eer/transform.h"
#include "relational/csv.h"
#include "sql/ddl.h"
#include "sql/ddl_writer.h"
#include "sql/scanner.h"
#include "sql/selection_analysis.h"

#include <iostream>

namespace {

struct CliArgs {
  std::string ddl_path;
  std::string data_dir;
  std::vector<std::string> program_paths;
  std::string out_prefix = "out/dbre";
  std::string export_data_dir;
  bool interactive = false;
  bool infer_keys = false;
  bool merge_isa_cycles = false;
  bool json = false;
  bool specialize = false;
  bool show_help = false;
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--ddl") {
      const char* value = next("--ddl");
      if (value == nullptr) return false;
      args->ddl_path = value;
    } else if (flag == "--data") {
      const char* value = next("--data");
      if (value == nullptr) return false;
      args->data_dir = value;
    } else if (flag == "--out-prefix") {
      const char* value = next("--out-prefix");
      if (value == nullptr) return false;
      args->out_prefix = value;
    } else if (flag == "--export-data") {
      const char* value = next("--export-data");
      if (value == nullptr) return false;
      args->export_data_dir = value;
    } else if (flag == "--programs") {
      while (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        args->program_paths.emplace_back(argv[++i]);
      }
    } else if (flag == "--interactive") {
      args->interactive = true;
    } else if (flag == "--infer-keys") {
      args->infer_keys = true;
    } else if (flag == "--merge-isa-cycles") {
      args->merge_isa_cycles = true;
    } else if (flag == "--json") {
      args->json = true;
    } else if (flag == "--specialize") {
      args->specialize = true;
    } else if (flag == "--help" || flag == "-h") {
      args->show_help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage() {
  std::printf(
      "usage: dbre_cli --ddl schema.sql [--data DIR] [--programs FILE...]\n"
      "                [--interactive] [--infer-keys] [--merge-isa-cycles]\n"
      "                [--json] [--specialize] [--export-data DIR]\n"
      "                [--out-prefix PREFIX]\n");
}

bool Fail(const dbre::Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return false;
}

bool LoadCsvExtensions(const std::string& dir, dbre::Database* db) {
  for (const std::string& relation : db->RelationNames()) {
    std::string path = dir + "/" + relation + ".csv";
    std::ifstream probe(path);
    if (!probe.good()) continue;  // no extension file for this relation
    probe.close();
    auto table = db->GetMutableTable(relation);
    auto loaded = dbre::LoadCsvFile(path, *table);
    if (!loaded.ok()) return Fail(loaded.status(), path.c_str());
    std::printf("loaded %zu tuples into %s\n", *loaded, relation.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args) || args.show_help ||
      args.ddl_path.empty()) {
    PrintUsage();
    return args.show_help ? 0 : 2;
  }

  // 1. Dictionary.
  std::ifstream ddl_in(args.ddl_path);
  if (!ddl_in) {
    std::fprintf(stderr, "cannot open %s\n", args.ddl_path.c_str());
    return 1;
  }
  std::ostringstream ddl_text;
  ddl_text << ddl_in.rdbuf();
  dbre::Database db;
  auto ddl = dbre::sql::ExecuteDdlScript(ddl_text.str(), &db);
  if (!ddl.ok()) {
    Fail(ddl.status(), "DDL");
    return 1;
  }
  std::printf("dictionary: %zu relations, %zu inserted rows\n",
              ddl->tables_created, ddl->rows_inserted);

  // 2. Extensions.
  if (!args.data_dir.empty() && !LoadCsvExtensions(args.data_dir, &db)) {
    return 1;
  }
  if (auto verified = db.VerifyDeclaredConstraints(); !verified.ok()) {
    std::fprintf(stderr,
                 "warning: extension violates the dictionary: %s\n",
                 verified.ToString().c_str());
  }

  // 3. The workload Q, and the selection-predicate side channel.
  std::vector<dbre::EquiJoin> joins;
  std::vector<std::pair<std::string, std::string>> program_sources;
  for (const std::string& path : args.program_paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    program_sources.emplace_back(path, buffer.str());
  }
  if (!args.program_paths.empty()) {
    dbre::sql::ExtractionOptions extraction;
    extraction.catalog = &db;
    dbre::sql::ExtractionStats stats;
    std::vector<dbre::Status> errors;
    auto extracted = dbre::sql::BuildQueryJoinSet(args.program_paths,
                                                  extraction, &stats,
                                                  &errors);
    if (!extracted.ok()) {
      Fail(extracted.status(), "programs");
      return 1;
    }
    joins = std::move(extracted).value();
    std::printf("programs: %zu statements, %zu equi-joins in Q",
                stats.statements, joins.size());
    if (!errors.empty()) {
      std::printf(" (%zu statements failed to parse)", errors.size());
    }
    std::printf("\n");
  } else {
    std::printf("no --programs given: Q is empty, only the dictionary and "
                "restructuring steps run\n");
  }

  // 4. The expert.
  dbre::ThresholdOracle::Options policy;
  policy.nei_conceptualize_ratio = 2.0;
  policy.nei_force_ratio = 0.5;
  policy.accept_hidden_objects = true;
  policy.enforce_fd_max_error = 0.01;  // tolerate ≤1% mispunched tuples
  dbre::ThresholdOracle threshold(policy);
  dbre::InteractiveOracle interactive(&std::cin, &std::cout);
  dbre::ExpertOracle* oracle =
      args.interactive ? static_cast<dbre::ExpertOracle*>(&interactive)
                       : &threshold;

  // 5. The method.
  dbre::PipelineOptions options;
  options.infer_missing_keys = args.infer_keys;
  options.translate.merge_isa_cycles = args.merge_isa_cycles;
  auto report = dbre::RunPipeline(db, joins, oracle, options);
  if (!report.ok()) {
    Fail(report.status(), "pipeline");
    return 1;
  }
  std::printf("\n%s", report->Summary().c_str());

  // Bonus analysis: subtype discriminator candidates from selection
  // predicates (constants the programs compare attributes with).
  if (!program_sources.empty()) {
    dbre::sql::SelectionAnalysisOptions selection;
    selection.catalog = &db;
    auto discriminators =
        dbre::sql::AnalyzeSelections(program_sources, selection);
    if (discriminators.ok() && !discriminators->empty()) {
      std::printf("== Discriminator candidates (selection analysis) ==\n");
      for (const dbre::sql::DiscriminatorCandidate& candidate :
           *discriminators) {
        std::printf("  %s\n", candidate.ToString().c_str());
      }
      if (args.specialize) {
        std::vector<dbre::eer::SpecializationHint> hints;
        for (const dbre::sql::DiscriminatorCandidate& candidate :
             *discriminators) {
          hints.push_back(dbre::eer::SpecializationHint{
              candidate.relation, candidate.attribute,
              candidate.constants});
        }
        auto added =
            dbre::eer::AddDiscriminatorSubtypes(&report->eer, hints);
        if (added.ok()) {
          std::printf("  (added %zu value-based subtypes to the EER "
                      "schema)\n",
                      added->subtypes_added);
        }
      }
    }
  }

  // 6. Artifacts. Generated files live under an ignored directory (out/
  // by default), never in the repository root.
  if (auto slash = args.out_prefix.find_last_of('/');
      slash != std::string::npos) {
    std::error_code ec;
    std::filesystem::create_directories(args.out_prefix.substr(0, slash),
                                        ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n",
                   args.out_prefix.substr(0, slash).c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  std::string dot_path = args.out_prefix + "_eer.dot";
  if (auto status = dbre::eer::WriteDotFile(report->eer, dot_path);
      !status.ok()) {
    Fail(status, dot_path.c_str());
    return 1;
  }
  std::string navigation_path = args.out_prefix + "_navigation.dot";
  if (auto status = dbre::WriteNavigationGraph(
          report->working_database, report->ind, navigation_path);
      !status.ok()) {
    Fail(status, navigation_path.c_str());
    return 1;
  }
  std::string schema_path = args.out_prefix + "_schema.sql";
  std::ofstream schema_out(schema_path, std::ios::trunc);
  schema_out << dbre::sql::WriteDdl(report->restruct.database);
  if (!schema_out) {
    std::fprintf(stderr, "cannot write %s\n", schema_path.c_str());
    return 1;
  }
  if (!args.export_data_dir.empty()) {
    auto exported = dbre::ExportDatabaseCsv(report->restruct.database,
                                            args.export_data_dir);
    if (!exported.ok()) {
      Fail(exported.status(), args.export_data_dir.c_str());
      return 1;
    }
    std::printf("exported %zu restructured extensions to %s/\n", *exported,
                args.export_data_dir.c_str());
  }
  std::printf("\nwrote %s, %s and %s", dot_path.c_str(),
              navigation_path.c_str(), schema_path.c_str());
  if (args.json) {
    std::string json_path = args.out_prefix + "_report.json";
    if (auto status = dbre::WriteReportJson(*report, json_path);
        !status.ok()) {
      Fail(status, json_path.c_str());
      return 1;
    }
    std::printf(" and %s", json_path.c_str());
  }
  std::printf("\n");
  return 0;
}
