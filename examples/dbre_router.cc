// dbre_router — shard dbred sessions across a fleet of dbre_serve workers.
//
//   dbre_router [--port N] --worker [ID=]HOST:PORT [--worker ...]
//               [--vnodes N] [--health-interval-ms MS]
//
//   --port N        listen on 127.0.0.1:N (0 = ephemeral; the chosen port
//                   prints as the first stdout line, like dbre_serve)
//   --worker SPEC   one backend dbre_serve, repeatable. SPEC is HOST:PORT
//                   or ID=HOST:PORT; without an explicit ID the worker is
//                   named w1, w2, ... in argument order. The ID is the
//                   consistent-hash ring key — keep ids stable across
//                   router restarts or sessions will hash elsewhere.
//   --vnodes N      virtual nodes per worker on the ring (default 64)
//   --health-interval-ms MS
//                   period of the health prober that detects dead workers
//                   and revives returning ones (default 500; 0 disables —
//                   failures are then detected only when a forward hits
//                   the dead socket)
//
// Clients speak the ordinary dbred protocol to the router; it forwards
// session-scoped commands to the owning worker verbatim and adds `route`,
// `cluster`, `migrate` and `drain` (docs/CLUSTER.md). For migration and
// failover to work the workers must share a --data-dir and carry distinct
// --worker-id values.
//
// Runs until a client sends {"cmd":"shutdown"} — to the router; workers
// are independent processes and keep running.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/router.h"

namespace {

struct RouterArgs {
  int port = 7410;
  std::vector<dbre::cluster::RouterWorkerConfig> workers;
  long vnodes = 64;
  long health_interval_ms = 500;
  bool show_help = false;
};

// HOST:PORT or ID=HOST:PORT.
bool ParseWorkerSpec(const std::string& spec, size_t ordinal,
                     dbre::cluster::RouterWorkerConfig* config) {
  std::string rest = spec;
  size_t eq = rest.find('=');
  if (eq != std::string::npos) {
    config->id = rest.substr(0, eq);
    rest = rest.substr(eq + 1);
  } else {
    config->id = "w" + std::to_string(ordinal);
  }
  size_t colon = rest.rfind(':');
  if (config->id.empty() || colon == std::string::npos || colon == 0 ||
      colon + 1 >= rest.size()) {
    return false;
  }
  config->host = rest.substr(0, colon);
  long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) return false;
  config->port = static_cast<uint16_t>(port);
  return true;
}

bool ParseArgs(int argc, char** argv, RouterArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--port") {
      const char* value = next("--port");
      if (value == nullptr) return false;
      args->port = std::atoi(value);
    } else if (flag == "--worker") {
      const char* value = next("--worker");
      if (value == nullptr) return false;
      dbre::cluster::RouterWorkerConfig config;
      if (!ParseWorkerSpec(value, args->workers.size() + 1, &config)) {
        std::fprintf(stderr,
                     "bad --worker spec '%s' (want [ID=]HOST:PORT)\n",
                     value);
        return false;
      }
      args->workers.push_back(std::move(config));
    } else if (flag == "--vnodes") {
      const char* value = next("--vnodes");
      if (value == nullptr) return false;
      args->vnodes = std::strtol(value, nullptr, 10);
    } else if (flag == "--health-interval-ms") {
      const char* value = next("--health-interval-ms");
      if (value == nullptr) return false;
      args->health_interval_ms = std::strtol(value, nullptr, 10);
    } else if (flag == "--help" || flag == "-h") {
      args->show_help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage() {
  std::printf(
      "usage: dbre_router [--port N] --worker [ID=]HOST:PORT "
      "[--worker ...]\n"
      "                   [--vnodes N] [--health-interval-ms MS]\n");
}

}  // namespace

int main(int argc, char** argv) {
  RouterArgs args;
  if (!ParseArgs(argc, argv, &args) || args.show_help) {
    PrintUsage();
    return args.show_help ? 0 : 2;
  }
  if (args.workers.empty()) {
    std::fprintf(stderr, "dbre_router: at least one --worker required\n");
    PrintUsage();
    return 2;
  }
  dbre::cluster::RouterOptions options;
  if (args.vnodes > 0) options.vnodes_per_node = static_cast<size_t>(args.vnodes);
  options.health_interval_ms = args.health_interval_ms;
  dbre::cluster::Router router(args.workers, options);
  if (auto status = router.Start(static_cast<uint16_t>(args.port));
      !status.ok()) {
    std::fprintf(stderr, "dbre_router: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%u\n", router.port());
  std::fflush(stdout);
  std::fprintf(stderr, "dbre_router listening on 127.0.0.1:%u (%zu workers)\n",
               router.port(), args.workers.size());
  router.WaitUntilShutdown();
  router.Stop();
  return 0;
}
