// Federation audit: before merging a legacy database into a federation,
// measure how much of its conceptual schema the DBRE method can recover
// automatically, and how that degrades when the application-program corpus
// is incomplete (query coverage) or the extension is dirty (orphaned
// references).
//
// The generator plants a known conceptual design; the audit reports
// precision/recall of the recovered INDs and FDs for a grid of conditions.
#include <cstdio>

#include "core/pipeline.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace {

struct Condition {
  double coverage;
  double orphan_rate;
};

}  // namespace

int main() {
  std::printf(
      "coverage  orphans   IND precision  IND recall  FD recall  "
      "oracle-questions\n");
  const Condition conditions[] = {
      {1.00, 0.00}, {0.75, 0.00}, {0.50, 0.00}, {0.25, 0.00},
      {1.00, 0.05}, {1.00, 0.15}, {0.75, 0.10},
  };
  for (const Condition& condition : conditions) {
    dbre::workload::SyntheticSpec spec;
    spec.num_entities = 8;
    spec.num_merged = 4;
    spec.rows_per_entity = 400;
    spec.query_coverage = condition.coverage;
    spec.orphan_rate = condition.orphan_rate;
    spec.seed = 2026;
    auto generated = dbre::workload::GenerateSynthetic(spec);
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }

    // A lenient threshold oracle: force dirty inclusions when at least
    // half of the smaller side survives, accept hidden objects.
    dbre::ThresholdOracle::Options options;
    options.nei_conceptualize_ratio = 2.0;  // never conceptualize
    options.nei_force_ratio = 0.5;
    options.accept_hidden_objects = true;
    dbre::ThresholdOracle threshold(options);
    dbre::RecordingOracle oracle(&threshold);

    auto report = dbre::RunPipeline(generated->database, generated->queries,
                                    &oracle);
    if (!report.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    dbre::workload::PrecisionRecall ind_pr = dbre::workload::CompareInds(
        report->ind.inds, generated->true_inds);
    dbre::workload::PrecisionRecall fd_pr =
        dbre::workload::CompareFds(report->rhs.fds, generated->true_fds);
    std::printf("%7.2f  %7.2f  %13.3f  %10.3f  %9.3f  %17zu\n",
                condition.coverage, condition.orphan_rate,
                ind_pr.Precision(), ind_pr.Recall(), fd_pr.Recall(),
                oracle.InteractionCount());
  }
  std::printf(
      "\nReading: recall tracks query coverage (the method only sees links "
      "the\nprograms navigate); orphans turn clean inclusions into NEIs "
      "that cost\noracle questions but are recovered by the forcing "
      "policy.\n");
  return 0;
}
