// Quickstart: reverse-engineer a small denormalized database in ~60 lines.
//
// 1. Declare the legacy schema through the DDL front end (only `unique` /
//    `not null` constraints, as old dictionaries have).
// 2. Load a small extension.
// 3. Hand the equi-joins found in the application's queries to the
//    pipeline.
// 4. Print every elicited artifact: INDs, FDs, the 3NF schema, the RICs
//    and the EER schema.
#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "sql/ddl.h"
#include "sql/extractor.h"

int main() {
  dbre::Database db;

  // The legacy dictionary: Orders is denormalized — it embeds the product
  // identifier and name (prod → prod_name is the FD to rediscover).
  auto ddl = dbre::sql::ExecuteDdlScript(R"(
CREATE TABLE Customers (id INT PRIMARY KEY, name VARCHAR(30));
CREATE TABLE Orders (
  ord INT PRIMARY KEY,
  cust INT,
  prod INT,
  prod_name VARCHAR(30)
);
CREATE TABLE Shipments (ship INT PRIMARY KEY, prod INT, carrier VARCHAR(20));
INSERT INTO Customers VALUES (1,'ada'), (2,'grace'), (3,'edsger'),
                             (4,'barbara');
INSERT INTO Orders VALUES
  (100, 1, 7, 'widget'), (101, 1, 8, 'gadget'),
  (102, 2, 7, 'widget'), (103, 3, 8, 'gadget'),
  (104, 2, 9, 'sprocket');
INSERT INTO Shipments VALUES
  (1, 7, 'acme'), (2, 8, 'acme'), (3, 7, 'roadrunner');
)",
                                         &db);
  if (!ddl.ok()) {
    std::fprintf(stderr, "DDL failed: %s\n", ddl.status().ToString().c_str());
    return 1;
  }

  // The application's embedded queries reference cust and prod — that
  // navigation is the method's raw material.
  dbre::sql::ExtractionOptions extraction;
  extraction.catalog = &db;
  auto joins = dbre::sql::ExtractEquiJoinsFromScript(R"(
SELECT o.ord, c.name FROM Orders o, Customers c WHERE o.cust = c.id;
SELECT s.carrier FROM Shipments s, Orders o WHERE s.prod = o.prod;
)",
                                                     extraction);
  if (!joins.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 joins.status().ToString().c_str());
    return 1;
  }

  // An unattended run: the threshold oracle accepts hidden objects and
  // validates the FDs the extension supports.
  dbre::ThresholdOracle::Options oracle_options;
  oracle_options.accept_hidden_objects = true;
  dbre::ThresholdOracle oracle(oracle_options);

  auto report = dbre::RunPipeline(db, *joins, &oracle);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->Summary().c_str());
  std::printf("\nPhase timings (us): ind=%lld lhs=%lld rhs=%lld "
              "restruct=%lld translate=%lld\n",
              static_cast<long long>(report->timings.ind_discovery_us),
              static_cast<long long>(report->timings.lhs_discovery_us),
              static_cast<long long>(report->timings.rhs_discovery_us),
              static_cast<long long>(report->timings.restruct_us),
              static_cast<long long>(report->timings.translate_us));
  return 0;
}
