// The paper's running example, end to end, as a user of the library would
// drive it:
//
//   application programs ──scan──▶ Q ──IND/LHS/RHS-Discovery──▶ knowledge
//   ──Restruct──▶ 3NF schema + RIC ──Translate──▶ EER schema (Figure 1)
//
// Artifacts written next to the binary: legacy_hr_eer.dot (render with
// `dot -Tpng`) and one CSV per restructured relation.
#include <cstdio>
#include <string>

#include "core/navigation_graph.h"
#include "core/pipeline.h"
#include "eer/dot_export.h"
#include "relational/csv.h"
#include "sql/scanner.h"
#include "workload/paper_example.h"

int main() {
  auto database = dbre::workload::BuildPaperDatabase();
  if (!database.ok()) {
    std::fprintf(stderr, "building the example database failed: %s\n",
                 database.status().ToString().c_str());
    return 1;
  }
  std::printf("== Legacy schema (as found in the dictionary) ==\n%s\n",
              database->DescribeSchema().c_str());

  // Scan the application programs for embedded SQL and extract Q.
  dbre::sql::ExtractionOptions extraction;
  extraction.catalog = &*database;
  dbre::sql::ExtractionStats stats;
  auto joins = dbre::sql::BuildQueryJoinSetFromSources(
      dbre::workload::PaperProgramSources(), extraction, &stats);
  if (!joins.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 joins.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Scanned %zu statements: %zu equalities, %zu equi-joins in Q\n\n",
      stats.statements, stats.equalities_seen, joins->size());

  // The expert's decisions from §6–§7, scripted; recorded so the session
  // transcript can be printed afterwards.
  auto scripted = dbre::workload::PaperOracle();
  dbre::RecordingOracle oracle(scripted.get());

  auto report = dbre::RunPipeline(*database, *joins, &oracle);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());

  std::printf("== Expert session transcript ==\n");
  for (const auto& interaction : oracle.interactions()) {
    std::printf("  [%s] %s -> %s\n", interaction.kind.c_str(),
                interaction.question.c_str(), interaction.answer.c_str());
  }

  // Export the EER schema (Figure 1) and the restructured extensions.
  auto dot_status =
      dbre::eer::WriteDotFile(report->eer, "legacy_hr_eer.dot");
  if (!dot_status.ok()) {
    std::fprintf(stderr, "DOT export failed: %s\n",
                 dot_status.ToString().c_str());
    return 1;
  }
  std::printf("\nWrote legacy_hr_eer.dot\n");
  if (dbre::WriteNavigationGraph(report->working_database, report->ind,
                                 "legacy_hr_navigation.dot")
          .ok()) {
    std::printf("Wrote legacy_hr_navigation.dot (the logical-navigation "
                "map of the programs)\n");
  }
  for (const std::string& relation :
       report->restruct.database.RelationNames()) {
    const dbre::Table& table =
        **report->restruct.database.GetTable(relation);
    std::string path = "legacy_hr_" + relation + ".csv";
    if (dbre::WriteCsvFile(table, path).ok()) {
      std::printf("Wrote %s (%zu tuples)\n", path.c_str(), table.num_rows());
    }
  }
  return 0;
}
