// sql_workbench: inspect what the front end sees in application programs.
//
//   sql_workbench file1.pc file2.sql ...
//
// Scans each file for embedded SQL (EXEC SQL blocks, string-literal
// queries, or whole .sql scripts), prints every statement found, and the
// deduplicated equi-join set Q. With no arguments, runs on a built-in demo
// program.
#include <cstdio>
#include <string>
#include <vector>

#include "sql/scanner.h"

namespace {

const char kDemoProgram[] = R"(
/* demo.pc — embedded SQL in a C host program */
void payroll(void) {
  EXEC SQL SELECT p.name, h.salary
           FROM HEmployee h, Person p
           WHERE h.no = p.id;
}
void assigned(void) {
  EXEC SQL SELECT skill FROM Department
           WHERE emp IN (SELECT no FROM HEmployee);
}
static const char *kReport =
    "SELECT proj FROM Department "
    "INTERSECT SELECT proj FROM Assignment";
)";

}  // namespace

int main(int argc, char** argv) {
  std::vector<dbre::sql::EmbeddedStatement> statements;
  if (argc < 2) {
    std::printf("(no files given — scanning the built-in demo program)\n");
    statements = dbre::sql::ScanProgramText(kDemoProgram);
  } else {
    for (int i = 1; i < argc; ++i) {
      auto found = dbre::sql::ScanProgramFile(argv[i]);
      if (!found.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i],
                     found.status().ToString().c_str());
        return 1;
      }
      for (auto& statement : *found) {
        statements.push_back(std::move(statement));
      }
    }
  }

  std::printf("== Embedded statements (%zu) ==\n", statements.size());
  for (const auto& statement : statements) {
    std::printf("  line %zu: %s\n", statement.line, statement.text.c_str());
  }

  dbre::sql::ExtractionStats stats;
  std::vector<dbre::Status> errors;
  std::vector<std::pair<std::string, std::string>> sources;
  for (size_t i = 0; i < statements.size(); ++i) {
    sources.emplace_back("stmt_" + std::to_string(i) + ".sql",
                         statements[i].text);
  }
  auto joins = dbre::sql::BuildQueryJoinSetFromSources(sources, {}, &stats,
                                                       &errors);
  if (!joins.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 joins.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Q: equi-join set (%zu) ==\n", joins->size());
  for (const dbre::EquiJoin& join : *joins) {
    std::printf("  %s\n", join.ToString().c_str());
  }
  std::printf(
      "\n== Stats ==\n  statements walked: %zu\n  equalities seen: %zu\n"
      "  unresolved columns: %zu\n  parse errors: %zu\n",
      stats.statements, stats.equalities_seen, stats.unresolved_columns,
      errors.size());
  for (const dbre::Status& error : errors) {
    std::printf("  error: %s\n", error.ToString().c_str());
  }
  return 0;
}
