// dbre_serve — the dbred daemon: many concurrent reverse-engineering
// sessions multiplexed over newline-delimited JSON.
//
//   dbre_serve [--port N] [--stdio] [--transport epoll|threads]
//              [--worker-id ID] [--timeout-ms MS]
//              [--max-sessions N] [--max-inflight N] [--max-queued N]
//              [--data-dir PATH] [--fsync-batch N] [--slow-op-ms MS]
//              [--run-deadline-ms MS]
//
//   --port N        listen on 127.0.0.1:N (0 = pick an ephemeral port;
//                   the chosen port prints as the first stdout line)
//   --stdio         serve exactly one client over stdin/stdout instead
//                   of TCP (inetd-style; handy for tests and pipes)
//   --transport T   TCP serving machinery: "epoll" (default) is the
//                   event-loop transport — one loop thread, on-demand
//                   handler pool, bounded pipelining and write-side
//                   backpressure (docs/CLUSTER.md); "threads" is the
//                   classic thread-per-connection accept loop
//   --worker-id ID  identify this daemon in a multi-worker fleet behind
//                   dbre_router: sessions it owns are stamped with ID in
//                   the shared --data-dir, and on startup it recovers
//                   only unowned sessions or its own — never another
//                   live worker's (docs/CLUSTER.md)
//   --timeout-ms MS answer unanswered expert questions with the default
//                   oracle after MS milliseconds (default: wait forever)
//   --max-sessions / --max-inflight / --max-queued
//                   admission bounds (see docs/SERVICE.md)
//   --data-dir PATH durability root: extensions are snapshotted and every
//                   session is journaled there; on startup, journals found
//                   under PATH are replayed so crashed or gracefully
//                   stopped sessions resume (docs/STORAGE.md)
//   --buffer-pool-mb N
//                   serve extensions page-backed through a shared N-MiB
//                   buffer pool instead of materializing them: CSV loads
//                   are snapshotted and adopted paged, so sessions work on
//                   databases larger than memory. Requires --data-dir; the
//                   pool budget is reserved from the global memory budget
//                   (docs/STORAGE.md)
//   --fsync-batch N fsync the journal every N records (1 = every record,
//                   0 = never, default 8; expert answers always sync)
//   --segment-bytes N
//                   rotate journal segments once they exceed N bytes
//                   (default 4 MiB; tests use small values to exercise
//                   rotation)
//   --slow-op-ms MS log any instrumented operation (pipeline phase, expert
//                   wait, journal fsync, snapshot write/load) taking at
//                   least MS milliseconds; the log is reported by `stats`
//                   (default: disabled — see docs/OBSERVABILITY.md)
//   --run-deadline-ms MS
//                   abort any pipeline run that exceeds MS milliseconds of
//                   executing wall clock — the clock starts when the run
//                   leaves the queue, not at admission (the session fails
//                   with a deadline error; default: no deadline — see
//                   docs/ROBUSTNESS.md)
//   --enable-failpoints
//                   expose the `failpoint` wire command, which can inject
//                   errors, delays and crashes into this daemon; off by
//                   default so production servers cannot be degraded or
//                   crashed by a client (implied by DBRE_FAILPOINTS)
//
// Fault injection for testing: the DBRE_FAILPOINTS / DBRE_FAILPOINT_SEED
// environment variables and the `failpoint` command (gated behind
// --enable-failpoints) arm named failure sites across the store and
// service (docs/ROBUSTNESS.md).
//
// In TCP mode the daemon runs until a client sends {"cmd":"shutdown"}.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cluster/service_transport.h"
#include "service/server.h"
#include "service/transport.h"

namespace {

struct ServeArgs {
  int port = 7411;
  bool stdio = false;
  std::string transport = "epoll";
  std::string worker_id;
  long timeout_ms = -1;
  long max_sessions = -1;
  long max_inflight = -1;
  long max_queued = -1;
  std::string data_dir;
  long buffer_pool_mb = 0;
  long fsync_batch = -1;
  long segment_bytes = 0;
  long slow_op_ms = 0;
  long run_deadline_ms = 0;
  bool enable_failpoints = false;
  bool show_help = false;
};

bool ParseArgs(int argc, char** argv, ServeArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next_long = [&](const char* name, long* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        return false;
      }
      *out = std::strtol(argv[++i], nullptr, 10);
      return true;
    };
    long value = 0;
    if (flag == "--port") {
      if (!next_long("--port", &value)) return false;
      args->port = static_cast<int>(value);
    } else if (flag == "--stdio") {
      args->stdio = true;
    } else if (flag == "--transport") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--transport requires a value\n");
        return false;
      }
      args->transport = argv[++i];
    } else if (flag == "--worker-id") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--worker-id requires a value\n");
        return false;
      }
      args->worker_id = argv[++i];
    } else if (flag == "--timeout-ms") {
      if (!next_long("--timeout-ms", &args->timeout_ms)) return false;
    } else if (flag == "--max-sessions") {
      if (!next_long("--max-sessions", &args->max_sessions)) return false;
    } else if (flag == "--max-inflight") {
      if (!next_long("--max-inflight", &args->max_inflight)) return false;
    } else if (flag == "--max-queued") {
      if (!next_long("--max-queued", &args->max_queued)) return false;
    } else if (flag == "--data-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--data-dir requires a value\n");
        return false;
      }
      args->data_dir = argv[++i];
    } else if (flag == "--buffer-pool-mb") {
      if (!next_long("--buffer-pool-mb", &args->buffer_pool_mb)) {
        return false;
      }
    } else if (flag == "--fsync-batch") {
      if (!next_long("--fsync-batch", &args->fsync_batch)) return false;
    } else if (flag == "--segment-bytes") {
      if (!next_long("--segment-bytes", &args->segment_bytes)) return false;
    } else if (flag == "--slow-op-ms") {
      if (!next_long("--slow-op-ms", &args->slow_op_ms)) return false;
    } else if (flag == "--run-deadline-ms") {
      if (!next_long("--run-deadline-ms", &args->run_deadline_ms)) {
        return false;
      }
    } else if (flag == "--enable-failpoints") {
      args->enable_failpoints = true;
    } else if (flag == "--help" || flag == "-h") {
      args->show_help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage() {
  std::printf(
      "usage: dbre_serve [--port N] [--stdio] [--transport epoll|threads]\n"
      "                  [--worker-id ID] [--timeout-ms MS]\n"
      "                  [--max-sessions N] [--max-inflight N] "
      "[--max-queued N]\n"
      "                  [--data-dir PATH] [--buffer-pool-mb N]\n"
      "                  [--fsync-batch N] "
      "[--segment-bytes N]\n"
      "                  [--slow-op-ms MS] [--run-deadline-ms MS]\n"
      "                  [--enable-failpoints]\n");
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs args;
  if (!ParseArgs(argc, argv, &args) || args.show_help) {
    PrintUsage();
    return args.show_help ? 0 : 2;
  }

  dbre::service::ServerOptions options;
  options.sessions.question_timeout_ms = args.timeout_ms;
  if (args.max_sessions > 0) {
    options.sessions.max_sessions = static_cast<size_t>(args.max_sessions);
  }
  if (args.max_inflight > 0) {
    options.sessions.max_inflight_runs =
        static_cast<size_t>(args.max_inflight);
  }
  if (args.max_queued > 0) {
    options.sessions.max_queued_runs = static_cast<size_t>(args.max_queued);
  }
  options.sessions.data_dir = args.data_dir;
  if (args.buffer_pool_mb > 0) {
    if (args.data_dir.empty()) {
      std::fprintf(stderr,
                   "dbre_serve: --buffer-pool-mb requires --data-dir "
                   "(paged extensions live in its snapshots)\n");
      return 2;
    }
    options.sessions.buffer_pool_bytes =
        static_cast<size_t>(args.buffer_pool_mb) << 20;
  }
  if (args.fsync_batch >= 0) {
    options.sessions.journal.fsync_batch =
        static_cast<size_t>(args.fsync_batch);
  }
  if (args.segment_bytes > 0) {
    options.sessions.journal.max_segment_bytes =
        static_cast<size_t>(args.segment_bytes);
  }
  if (args.slow_op_ms > 0) options.slow_op_ms = args.slow_op_ms;
  if (args.run_deadline_ms > 0) {
    options.sessions.run_deadline_ms = args.run_deadline_ms;
  }
  options.enable_failpoints = args.enable_failpoints;
  options.sessions.worker_id = args.worker_id;
  if (args.transport != "epoll" && args.transport != "threads") {
    std::fprintf(stderr, "dbre_serve: unknown --transport '%s' "
                 "(epoll|threads)\n", args.transport.c_str());
    return 2;
  }
  dbre::service::Server server(options);
  if (!args.data_dir.empty()) {
    if (auto status = server.sessions()->store_status(); !status.ok()) {
      std::fprintf(stderr, "dbre_serve: cannot open --data-dir: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    const auto& recovery = server.recovery();
    std::fprintf(stderr,
                 "dbred data dir %s: %zu session(s) recovered, %zu run(s) "
                 "resumed, %zu torn record(s) dropped\n",
                 args.data_dir.c_str(), recovery.sessions_recovered,
                 recovery.runs_resumed, recovery.records_dropped);
    for (const std::string& error : recovery.errors) {
      std::fprintf(stderr, "dbre_serve: recovery: %s\n", error.c_str());
    }
  }

  if (args.stdio) {
    dbre::service::StreamChannel channel(&std::cin, &std::cout);
    size_t handled = dbre::service::ServeChannel(&server, &channel);
    std::fprintf(stderr, "dbre_serve: handled %zu requests over stdio\n",
                 handled);
    server.sessions()->Shutdown();
    return 0;
  }

  if (args.transport == "epoll") {
    dbre::cluster::EventLoopTransport transport(&server);
    if (auto status = transport.Start(static_cast<uint16_t>(args.port));
        !status.ok()) {
      std::fprintf(stderr, "dbre_serve: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%u\n", transport.port());
    std::fflush(stdout);
    std::fprintf(stderr, "dbred listening on 127.0.0.1:%u (epoll)\n",
                 transport.port());
    transport.WaitUntilShutdown();
    transport.Stop();
    server.sessions()->Shutdown();
    return 0;
  }

  dbre::service::TcpServer tcp(&server);
  if (auto status = tcp.Start(static_cast<uint16_t>(args.port));
      !status.ok()) {
    std::fprintf(stderr, "dbre_serve: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%u\n", tcp.port());
  std::fflush(stdout);
  std::fprintf(stderr, "dbred listening on 127.0.0.1:%u\n", tcp.port());
  tcp.WaitUntilShutdown();
  tcp.Stop();
  server.sessions()->Shutdown();
  return 0;
}
