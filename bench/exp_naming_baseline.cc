// Experiment A5 — why the paper drops the naming assumption.
//
// Related methods (the paper's ref [5]) presume "consistent naming of key
// attributes" and read foreign keys off the names. This experiment pits
// that heuristic against query-guided IND-Discovery on the same synthetic
// databases, twice: with aligned names, and with obfuscated link columns
// (ground truth and programs unchanged — programs reference whatever
// column names exist).
#include <algorithm>
#include <cstdio>

#include "core/pipeline.h"
#include "deps/name_matcher.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace {

dbre::workload::PrecisionRecall Score(
    const std::vector<dbre::InclusionDependency>& recovered,
    const std::vector<dbre::InclusionDependency>& truth) {
  return dbre::workload::CompareInds(recovered, truth);
}

}  // namespace

int main() {
  std::printf(
      "A5 — query-guided vs name-based IND discovery\n"
      "                         guided-prec guided-rec  name-prec  "
      "name-rec  name-proposals\n");
  for (bool obfuscate : {false, true}) {
    dbre::workload::SyntheticSpec spec;
    spec.num_entities = 8;
    spec.num_merged = 4;
    spec.rows_per_entity = 300;
    spec.seed = 4;
    spec.obfuscate_names = obfuscate;
    auto generated = dbre::workload::GenerateSynthetic(spec);
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }

    dbre::DefaultOracle oracle;
    auto report = dbre::RunPipeline(generated->database,
                                    generated->queries, &oracle);
    if (!report.ok()) {
      std::fprintf(stderr, "pipeline failed\n");
      return 1;
    }
    auto guided = Score(report->ind.inds, generated->true_inds);

    dbre::NameMatchOptions options;
    options.key_targets_only = false;  // merged links reference non-keys
    dbre::NameMatchStats stats;
    auto by_name =
        dbre::DiscoverIndsByNaming(generated->database, options, &stats);
    if (!by_name.ok()) {
      std::fprintf(stderr, "name matching failed\n");
      return 1;
    }
    auto name_score = Score(*by_name, generated->true_inds);

    std::printf("%-24s %11.3f %10.3f %10.3f %9.3f %15zu\n",
                obfuscate ? "obfuscated link names" : "aligned link names",
                guided.Precision(), guided.Recall(), name_score.Precision(),
                name_score.Recall(), stats.pairs_proposed);
  }
  std::printf(
      "\nReading: query-guided elicitation is invariant to naming — the\n"
      "programs always spell out the navigation. The naming heuristic's\n"
      "recall collapses the moment conventions break, which is exactly\n"
      "the paper's argument for not assuming them.\n");
  return 0;
}
