// Extension perf — SQL executor throughput: the count-distinct operator of
// §6.1 evaluated through SQL versus through the algebra layer directly,
// plus join and subquery evaluation costs.
#include <map>
#include <memory>
#include <random>

#include <benchmark/benchmark.h>

#include "relational/algebra.h"
#include "sql/executor.h"

namespace {

const dbre::Database& CachedDatabase(size_t rows) {
  static std::map<size_t, std::unique_ptr<dbre::Database>> cache;
  auto it = cache.find(rows);
  if (it == cache.end()) {
    auto db = std::make_unique<dbre::Database>();
    dbre::RelationSchema orders("Orders");
    if (!orders.AddAttribute("ord", dbre::DataType::kInt64).ok() ||
        !orders.AddAttribute("cust", dbre::DataType::kInt64).ok() ||
        !orders.DeclareUnique({"ord"}).ok()) {
      std::abort();
    }
    dbre::RelationSchema customers("Customers");
    if (!customers.AddAttribute("id", dbre::DataType::kInt64).ok() ||
        !customers.DeclareUnique({"id"}).ok()) {
      std::abort();
    }
    if (!db->CreateRelation(std::move(orders)).ok() ||
        !db->CreateRelation(std::move(customers)).ok()) {
      std::abort();
    }
    std::mt19937_64 rng(23);
    dbre::Table* orders_table = *db->GetMutableTable("Orders");
    for (size_t i = 0; i < rows; ++i) {
      if (!orders_table
               ->Insert({dbre::Value::Int(static_cast<int64_t>(i)),
                         dbre::Value::Int(
                             static_cast<int64_t>(rng() % (rows / 10 + 1)))})
               .ok()) {
        std::abort();
      }
    }
    dbre::Table* customers_table = *db->GetMutableTable("Customers");
    for (size_t i = 0; i <= rows / 10; ++i) {
      if (!customers_table
               ->Insert({dbre::Value::Int(static_cast<int64_t>(i))})
               .ok()) {
        std::abort();
      }
    }
    it = cache.emplace(rows, std::move(db)).first;
  }
  return *it->second;
}

void BM_CountDistinctViaSql(benchmark::State& state) {
  const dbre::Database& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto count = dbre::sql::CountDistinct(db, "Orders", {"cust"});
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CountDistinctViaSql)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_CountDistinctViaAlgebra(benchmark::State& state) {
  const dbre::Database& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  const dbre::Table& orders = **db.GetTable("Orders");
  for (auto _ : state) {
    auto count = orders.DistinctCount(dbre::AttributeSet{"cust"});
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CountDistinctViaAlgebra)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_ExecutorInSubquery(benchmark::State& state) {
  const dbre::Database& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto rows = dbre::sql::ExecuteQuery(
        db,
        "SELECT COUNT(*) FROM Orders WHERE cust IN "
        "(SELECT id FROM Customers)");
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_ExecutorInSubquery)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
