// Experiment R1: recovery quality versus query coverage, denormalization
// depth and extension corruption, on synthetic databases with known ground
// truth. Prints one table per sweep dimension.
#include <cstdio>

#include "core/pipeline.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace {

struct Outcome {
  dbre::workload::PrecisionRecall ind;
  dbre::workload::PrecisionRecall fd;
  dbre::workload::PrecisionRecall identifiers;
  size_t questions = 0;
};

Outcome Run(const dbre::workload::SyntheticSpec& spec) {
  auto generated = dbre::workload::GenerateSynthetic(spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    std::exit(1);
  }
  dbre::ThresholdOracle::Options options;
  options.nei_conceptualize_ratio = 2.0;
  options.nei_force_ratio = 0.5;
  options.accept_hidden_objects = true;
  dbre::ThresholdOracle threshold(options);
  dbre::RecordingOracle oracle(&threshold);
  auto report =
      dbre::RunPipeline(generated->database, generated->queries, &oracle);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  Outcome outcome;
  outcome.ind =
      dbre::workload::CompareInds(report->ind.inds, generated->true_inds);
  outcome.fd =
      dbre::workload::CompareFds(report->rhs.fds, generated->true_fds);
  std::vector<dbre::QualifiedAttributes> recovered = report->rhs.hidden;
  for (const dbre::FunctionalDependency& fd : report->rhs.fds) {
    recovered.push_back(dbre::QualifiedAttributes{fd.relation, fd.lhs});
  }
  outcome.identifiers = dbre::workload::CompareQualified(
      recovered, generated->true_identifiers);
  outcome.questions = oracle.InteractionCount();
  return outcome;
}

void PrintRow(double x, const Outcome& o) {
  std::printf("%8.2f  %7.3f %7.3f  %7.3f %7.3f  %7.3f  %9zu\n", x,
              o.ind.Precision(), o.ind.Recall(), o.fd.Precision(),
              o.fd.Recall(), o.identifiers.Recall(), o.questions);
}

const char* kHeader =
    "           IND-prec IND-rec  FD-prec  FD-rec  id-rec   questions\n";

}  // namespace

int main() {
  dbre::workload::SyntheticSpec base;
  base.num_entities = 8;
  base.num_merged = 4;
  base.rows_per_entity = 400;
  base.seed = 7;

  std::printf("R1a — sweep query coverage (clean data):\ncoverage%s",
              kHeader);
  for (double coverage : {1.0, 0.9, 0.75, 0.5, 0.25, 0.1}) {
    dbre::workload::SyntheticSpec spec = base;
    spec.query_coverage = coverage;
    PrintRow(coverage, Run(spec));
  }

  std::printf("\nR1b — sweep denormalization depth (merged entities):\n"
              "merged  %s",
              kHeader);
  for (size_t merged : {0u, 2u, 4u, 8u, 12u}) {
    dbre::workload::SyntheticSpec spec = base;
    spec.num_merged = merged;
    PrintRow(static_cast<double>(merged), Run(spec));
  }

  std::printf("\nR1c — sweep extension corruption (orphan rate):\n"
              "orphans %s",
              kHeader);
  for (double orphan : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    dbre::workload::SyntheticSpec spec = base;
    spec.orphan_rate = orphan;
    PrintRow(orphan, Run(spec));
  }

  std::printf(
      "\nShape check (matches the paper's qualitative claims):\n"
      "  - precision stays 1.0 throughout: the method never invents\n"
      "    dependencies, it only validates what programs + data support;\n"
      "  - recall degrades with missing queries (the method is bounded by\n"
      "    the logical navigation present in the programs);\n"
      "  - corruption costs expert questions, not recall, under a forcing\n"
      "    oracle policy.\n");
  return 0;
}
