// Experiments E1–E9: regenerate every artifact the paper prints for its
// running example and check it against the published value. Exits non-zero
// if any artifact deviates.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "sql/scanner.h"
#include "workload/paper_example.h"

namespace {

int g_failures = 0;

void Check(const std::string& experiment, const std::string& what,
           bool ok) {
  std::printf("  [%s] %-58s %s\n", experiment.c_str(), what.c_str(),
              ok ? "PASS" : "FAIL");
  if (!ok) ++g_failures;
}

template <typename T>
std::vector<std::string> Render(const std::vector<T>& items) {
  std::vector<std::string> out;
  for (const T& item : items) out.push_back(item.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

void PrintList(const char* header,
               const std::vector<std::string>& items) {
  std::printf("%s\n", header);
  for (const std::string& item : items) {
    std::printf("    %s\n", item.c_str());
  }
}

}  // namespace

int main() {
  std::printf("Paper: Petit, Toumani, Boulicaut, Kouloumdjian (ICDE 1996)\n");
  std::printf("Running example of sections 5-7, regenerated:\n\n");

  auto database = dbre::workload::BuildPaperDatabase();
  if (!database.ok()) {
    std::fprintf(stderr, "database build failed: %s\n",
                 database.status().ToString().c_str());
    return 1;
  }

  // E2 — Q from the application programs.
  dbre::sql::ExtractionOptions extraction;
  extraction.catalog = &*database;
  auto joins = dbre::sql::BuildQueryJoinSetFromSources(
      dbre::workload::PaperProgramSources(), extraction);
  if (!joins.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 joins.status().ToString().c_str());
    return 1;
  }
  Check("E2", "Q from program scan == the 5 equi-joins of section 5",
        *joins == dbre::workload::PaperJoinSet());

  auto oracle = dbre::workload::PaperOracle();
  auto report = dbre::RunPipeline(*database, *joins, oracle.get());
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // E1 — K and N.
  Check("E1", "K = {Person.{id}, HEmployee.{no,date}, Department.{dep}, "
              "Assignment.{emp,dep,proj}}",
        Render(report->key_set) ==
            std::vector<std::string>{
                "Assignment.{dep, emp, proj}", "Department.{dep}",
                "HEmployee.{date, no}", "Person.{id}"});
  Check("E1", "N = the 8 not-null attributes of section 5",
        Render(report->not_null_set) ==
            std::vector<std::string>{
                "Assignment.{dep}", "Assignment.{emp}", "Assignment.{proj}",
                "Department.{dep}", "Department.{location}",
                "HEmployee.{date}", "HEmployee.{no}", "Person.{id}"});

  // E3 — the valuations of section 6.1.
  for (const dbre::JoinOutcome& outcome : report->ind.outcomes) {
    if (outcome.join.left_relation == "HEmployee") {
      std::printf("  [E3] ||HEmployee[no]||=%zu ||Person[id]||=%zu "
                  "||join||=%zu   (paper: 1550 / 2200 / 1550)\n",
                  outcome.counts.n_left, outcome.counts.n_right,
                  outcome.counts.n_join);
      Check("E3", "HEmployee-Person counts match the paper",
            outcome.counts.n_left == 1550 && outcome.counts.n_right == 2200 &&
                outcome.counts.n_join == 1550);
    }
    if (outcome.join.left_relation == "Assignment" &&
        outcome.join.right_relation == "Department" &&
        outcome.join.left_attributes == std::vector<std::string>{"dep"}) {
      std::printf("  [E3] ||Assignment[dep]||=%zu ||Department[dep]||=%zu "
                  "||join||=%zu   (chosen NEI: 300 / 35 / 30)\n",
                  outcome.counts.n_left, outcome.counts.n_right,
                  outcome.counts.n_join);
      Check("E3", "Assignment-Department join is a genuine NEI",
            outcome.counts.ProperIntersection());
      Check("E3", "expert conceptualizes the NEI as Ass-Dept",
            outcome.kind == dbre::JoinOutcomeKind::kNeiConceptualized &&
                outcome.detail == "Ass-Dept");
    }
  }

  // E4 — IND and S.
  std::vector<std::string> expected_inds = {
      "Ass-Dept[dep] << Assignment[dep]",
      "Ass-Dept[dep] << Department[dep]",
      "Assignment[emp] << HEmployee[no]",
      "Department[emp] << HEmployee[no]",
      "Department[proj] << Assignment[proj]",
      "HEmployee[no] << Person[id]"};
  PrintList("  [E4] IND =", Render(report->ind.inds));
  Check("E4", "IND equals the 6 dependencies of section 6.1",
        Render(report->ind.inds) == expected_inds);
  Check("E4", "S = {Ass-Dept}",
        report->ind.new_relations == std::vector<std::string>{"Ass-Dept"});

  // E5 — LHS and H.
  Check("E5", "LHS = the 5 candidates of section 6.2.1",
        Render(report->lhs.lhs) ==
            std::vector<std::string>{
                "Assignment.{emp}", "Assignment.{proj}", "Department.{emp}",
                "Department.{proj}", "HEmployee.{no}"});
  Check("E5", "H = {Assignment.{dep}}",
        Render(report->lhs.hidden) ==
            std::vector<std::string>{"Assignment.{dep}"});

  // E6 — F and final H.
  PrintList("  [E6] F =", Render(report->rhs.fds));
  Check("E6", "F = {Department: emp -> skill proj, "
              "Assignment: proj -> project-name}",
        Render(report->rhs.fds) ==
            std::vector<std::string>{
                "Assignment: {proj} -> {project-name}",
                "Department: {emp} -> {proj, skill}"});
  Check("E6", "H = {HEmployee.{no}, Assignment.{dep}}",
        Render(report->rhs.hidden) ==
            std::vector<std::string>{"Assignment.{dep}",
                                     "HEmployee.{no}"});

  // E7 — restructured schema.
  Check("E7", "restructured schema has the paper's 9 relations",
        report->restruct.database.RelationNames() ==
            std::vector<std::string>{"Ass-Dept", "Assignment", "Department",
                                     "Employee", "HEmployee", "Manager",
                                     "Other-Dept", "Person", "Project"});
  std::printf("%s", report->restruct.database.DescribeSchema().c_str());

  // E8 — RIC.
  std::vector<std::string> expected_rics = {
      "Ass-Dept[dep] << Department[dep]",
      "Ass-Dept[dep] << Other-Dept[dep]",
      "Assignment[dep] << Other-Dept[dep]",
      "Assignment[emp] << Employee[no]",
      "Assignment[proj] << Project[proj]",
      "Department[emp] << Manager[emp]",
      "Employee[no] << Person[id]",
      "HEmployee[no] << Employee[no]",
      "Manager[emp] << Employee[no]",
      "Manager[proj] << Project[proj]"};
  PrintList("  [E8] RIC =", Render(report->restruct.rics));
  Check("E8", "RIC equals the 10 constraints of section 7",
        Render(report->restruct.rics) == expected_rics);

  // E9 — Figure 1.
  std::printf("  [E9] EER schema:\n%s", report->eer.ToText().c_str());
  std::vector<std::string> isa = Render(report->eer.isa_links());
  Check("E9", "is-a links: Employee->Person, Manager->Employee, "
              "Ass-Dept->{Other-Dept, Department}",
        isa == std::vector<std::string>{
                   "Ass-Dept is-a Department", "Ass-Dept is-a Other-Dept",
                   "Employee is-a Person", "Manager is-a Employee"});
  bool assignment_is_ternary = false;
  for (const dbre::eer::RelationshipType& rel :
       report->eer.relationships()) {
    if (rel.name == "Assignment" && rel.roles.size() == 3 &&
        rel.IsManyToMany()) {
      assignment_is_ternary = true;
    }
  }
  Check("E9", "Assignment is a ternary many-to-many relationship",
        assignment_is_ternary);
  bool hemployee_weak = false;
  if (auto entity = report->eer.GetEntity("HEmployee"); entity.ok()) {
    hemployee_weak = (*entity.value()).weak;
  }
  Check("E9", "HEmployee is a weak entity", hemployee_weak);

  std::printf("\n%s\n", g_failures == 0
                            ? "All paper artifacts reproduced."
                            : "DEVIATIONS FROM THE PAPER DETECTED.");
  return g_failures == 0 ? 0 : 1;
}
