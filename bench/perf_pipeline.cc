// P5 — end-to-end pipeline cost and its per-phase breakdown as the
// database grows.
#include <cstdlib>
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "workload/generator.h"

namespace {

using dbre::workload::GenerateSynthetic;
using dbre::workload::SyntheticDatabase;
using dbre::workload::SyntheticSpec;

const SyntheticDatabase& CachedDatabase(size_t rows) {
  static std::map<size_t, std::unique_ptr<SyntheticDatabase>> cache;
  auto it = cache.find(rows);
  if (it == cache.end()) {
    SyntheticSpec spec;
    spec.num_entities = 6;
    spec.num_merged = 3;
    spec.rows_per_entity = rows;
    spec.emit_program_sources = false;
    auto generated = GenerateSynthetic(spec);
    if (!generated.ok()) std::abort();
    it = cache.emplace(rows, std::make_unique<SyntheticDatabase>(
                                 std::move(generated).value()))
             .first;
  }
  return *it->second;
}

void BM_FullPipeline(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  dbre::ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  dbre::ThresholdOracle oracle(options);
  dbre::PhaseTimings timings;
  for (auto _ : state) {
    auto report = dbre::RunPipeline(db.database, db.queries, &oracle);
    if (!report.ok()) state.SkipWithError("pipeline failed");
    timings = report->timings;
    benchmark::DoNotOptimize(report);
  }
  state.counters["ind_us"] = static_cast<double>(timings.ind_discovery_us);
  state.counters["lhs_us"] = static_cast<double>(timings.lhs_discovery_us);
  state.counters["rhs_us"] = static_cast<double>(timings.rhs_discovery_us);
  state.counters["restruct_us"] = static_cast<double>(timings.restruct_us);
  state.counters["translate_us"] =
      static_cast<double>(timings.translate_us);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 6);
}
BENCHMARK(BM_FullPipeline)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

// Opt-in 10M-row level (3 relations x 3.34M tuples): requested explicitly
// with DBRE_BENCH_10M=1 because generation takes minutes and several GB of
// heap, and one pipeline pass at this size runs for about a minute — the
// CI bench smoke runs every target and would otherwise time out. One
// iteration: the cold end-to-end pass is the number of interest here.
const bool kRegistered10M = [] {
  const char* flag = std::getenv("DBRE_BENCH_10M");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return false;
  benchmark::RegisterBenchmark("BM_FullPipeline", BM_FullPipeline)
      ->Arg(3340000)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  return true;
}();

// Thread scaling of the end-to-end method: range(1) worker threads fan out
// the IND valuations and the candidate FD tests. Outputs are identical for
// every thread count (see ParallelDiscoveryTest).
void BM_FullPipelineThreads(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  dbre::ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  dbre::ThresholdOracle oracle(options);
  dbre::PipelineOptions pipeline_options;
  pipeline_options.ind.num_threads = static_cast<size_t>(state.range(1));
  pipeline_options.rhs.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto report =
        dbre::RunPipeline(db.database, db.queries, &oracle, pipeline_options);
    if (!report.ok()) state.SkipWithError("pipeline failed");
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 6);
}
BENCHMARK(BM_FullPipelineThreads)
    ->Args({8000, 1})
    ->Args({8000, 4})
    ->Args({32000, 1})
    ->Args({32000, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
