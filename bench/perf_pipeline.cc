// P5 — end-to-end pipeline cost and its per-phase breakdown as the
// database grows.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "sql/dml.h"
#include "workload/generator.h"

namespace {

using dbre::workload::GenerateSynthetic;
using dbre::workload::SyntheticDatabase;
using dbre::workload::SyntheticSpec;

const SyntheticDatabase& CachedDatabase(size_t rows) {
  static std::map<size_t, std::unique_ptr<SyntheticDatabase>> cache;
  auto it = cache.find(rows);
  if (it == cache.end()) {
    SyntheticSpec spec;
    spec.num_entities = 6;
    spec.num_merged = 3;
    spec.rows_per_entity = rows;
    spec.emit_program_sources = false;
    auto generated = GenerateSynthetic(spec);
    if (!generated.ok()) std::abort();
    it = cache.emplace(rows, std::make_unique<SyntheticDatabase>(
                                 std::move(generated).value()))
             .first;
  }
  return *it->second;
}

void BM_FullPipeline(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  dbre::ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  dbre::ThresholdOracle oracle(options);
  dbre::PhaseTimings timings;
  for (auto _ : state) {
    auto report = dbre::RunPipeline(db.database, db.queries, &oracle);
    if (!report.ok()) state.SkipWithError("pipeline failed");
    timings = report->timings;
    benchmark::DoNotOptimize(report);
  }
  state.counters["ind_us"] = static_cast<double>(timings.ind_discovery_us);
  state.counters["lhs_us"] = static_cast<double>(timings.lhs_discovery_us);
  state.counters["rhs_us"] = static_cast<double>(timings.rhs_discovery_us);
  state.counters["restruct_us"] = static_cast<double>(timings.restruct_us);
  state.counters["translate_us"] =
      static_cast<double>(timings.translate_us);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 6);
}
BENCHMARK(BM_FullPipeline)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

// Opt-in 10M-row level (3 relations x 3.34M tuples): requested explicitly
// with DBRE_BENCH_10M=1 because generation takes minutes and several GB of
// heap, and one pipeline pass at this size runs for about a minute — the
// CI bench smoke runs every target and would otherwise time out. One
// iteration: the cold end-to-end pass is the number of interest here.
const bool kRegistered10M = [] {
  const char* flag = std::getenv("DBRE_BENCH_10M");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return false;
  benchmark::RegisterBenchmark("BM_FullPipeline", BM_FullPipeline)
      ->Arg(3340000)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  return true;
}();

// Thread scaling of the end-to-end method: range(1) worker threads fan out
// the IND valuations and the candidate FD tests. Outputs are identical for
// every thread count (see ParallelDiscoveryTest).
void BM_FullPipelineThreads(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  dbre::ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  dbre::ThresholdOracle oracle(options);
  dbre::PipelineOptions pipeline_options;
  pipeline_options.ind.num_threads = static_cast<size_t>(state.range(1));
  pipeline_options.rhs.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto report =
        dbre::RunPipeline(db.database, db.queries, &oracle, pipeline_options);
    if (!report.ok()) state.SkipWithError("pipeline failed");
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 6);
}
BENCHMARK(BM_FullPipelineThreads)
    ->Args({8000, 1})
    ->Args({8000, 4})
    ->Args({32000, 1})
    ->Args({32000, 4})
    ->Unit(benchmark::kMillisecond);

// --- Incremental re-validation (docs/INCREMENTAL.md) ----------------------
//
// The live-mutation headline: after a 10k-row mutation batch lands on an
// already-engineered catalog, re-validating the dependency set (warm rerun
// through delta-extended encodings, carried-over partitions and FD-verdict
// memos on untouched relations) must beat a cold full re-discovery of the
// same dependencies by >= 10x. Both legs run with run_restruct=false —
// restructuring materializes split relations and is O(data) whether or not
// anything changed, so it is not part of "re-validation". A leaner spec
// than the pipeline benchmarks so range(0) is the size of ONE extension;
// the 1M-row acceptance level is opt-in via DBRE_BENCH_1M=1 (generation +
// the cold baseline's per-iteration rebuild are minutes at that size).

const SyntheticDatabase& CachedIncrementalWorkload(size_t rows) {
  static std::map<size_t, std::unique_ptr<SyntheticDatabase>> cache;
  auto it = cache.find(rows);
  if (it == cache.end()) {
    SyntheticSpec spec;
    spec.num_entities = 3;
    spec.num_merged = 1;
    spec.rows_per_entity = rows;
    spec.emit_program_sources = false;
    auto generated = GenerateSynthetic(spec);
    if (!generated.ok()) std::abort();
    it = cache.emplace(rows, std::make_unique<SyntheticDatabase>(
                                 std::move(generated).value()))
             .first;
  }
  return *it->second;
}

// A 10k-row UPDATE batch against the first relation: rewrite the last
// column of the rows whose first (int key) column falls below the 10k-th
// smallest value. `toggle` alternates the written value so every batch is
// a real rewrite, and the extension never grows across iterations.
struct MutationShape {
  std::string relation;
  std::string target_column;
  bool target_is_int = false;
  std::string key_column;
  int64_t threshold = 0;
};

MutationShape BatchShape(const dbre::Database& database, size_t batch) {
  MutationShape shape;
  shape.relation = database.RelationNames().front();
  const dbre::Table& table = **database.GetTable(shape.relation);
  const dbre::RelationSchema& schema = table.schema();
  shape.key_column = schema.attributes().front().name;
  shape.target_column = schema.attributes().back().name;
  shape.target_is_int =
      schema.attributes().back().type == dbre::DataType::kInt64;
  std::vector<int64_t> keys;
  keys.reserve(table.num_rows());
  (void)table.ForEachRow([&keys](const dbre::ValueVector& row) {
    if (row.front().is_int()) keys.push_back(row.front().as_int());
  });
  size_t nth = std::min(batch, keys.empty() ? size_t{0} : keys.size() - 1);
  std::nth_element(keys.begin(), keys.begin() + nth, keys.end());
  shape.threshold = keys.empty() ? 0 : keys[nth];
  return shape;
}

std::string MutationBatch(const MutationShape& shape, size_t toggle) {
  std::string value = shape.target_is_int
                          ? std::to_string(900'000'000 + toggle)
                          : "'cycle-" + std::to_string(toggle) + "'";
  return "UPDATE " + shape.relation + " SET " + shape.target_column + " = " +
         value + " WHERE " + shape.key_column + " < " +
         std::to_string(shape.threshold) + ";";
}

void BM_IncrementalRevalidation(benchmark::State& state) {
  const SyntheticDatabase& base =
      CachedIncrementalWorkload(static_cast<size_t>(state.range(0)));
  dbre::ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  dbre::ThresholdOracle oracle(options);
  dbre::PipelineOptions validate_only;
  validate_only.run_restruct = false;

  // Discover once to warm every cache (RunPipeline shares query caches
  // with the input catalog). Each timed iteration then starts from a fresh
  // 10k-row batch (applied untimed — the cold leg's catalog rebuild is
  // untimed too) and measures re-validating the whole dependency set: the
  // mutated column's memos rebuild, everything untouched carries over.
  dbre::Database mutated = base.database.Clone();
  if (!dbre::RunPipeline(mutated, base.queries, &oracle, validate_only)
           .ok()) {
    state.SkipWithError("warm run failed");
    return;
  }
  const MutationShape shape = BatchShape(mutated, 10'000);
  size_t toggle = 0;
  dbre::PhaseTimings timings;
  for (auto _ : state) {
    state.PauseTiming();
    auto stats = dbre::sql::ExecuteDmlScript(
        MutationBatch(shape, toggle++), &mutated);
    if (!stats.ok() || stats->rows_updated == 0) {
      state.SkipWithError("mutation failed");
      state.ResumeTiming();
      break;
    }
    state.ResumeTiming();
    auto report =
        dbre::RunPipeline(mutated, base.queries, &oracle, validate_only);
    if (!report.ok()) state.SkipWithError("pipeline failed");
    timings = report->timings;
    benchmark::DoNotOptimize(report);
  }
  state.counters["ind_us"] = static_cast<double>(timings.ind_discovery_us);
  state.counters["lhs_us"] = static_cast<double>(timings.lhs_discovery_us);
  state.counters["rhs_us"] = static_cast<double>(timings.rhs_discovery_us);
  state.counters["restruct_us"] = static_cast<double>(timings.restruct_us);
  state.counters["translate_us"] =
      static_cast<double>(timings.translate_us);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 3);
}
BENCHMARK(BM_IncrementalRevalidation)
    ->Arg(32000)
    ->Arg(128000)
    ->Unit(benchmark::kMillisecond);

// The cold baseline: identical final rows, rebuilt fresh (no encodings,
// no memoized partitions) before every timed full re-discovery.
void BM_FullRediscoveryAfterMutation(benchmark::State& state) {
  const SyntheticDatabase& base =
      CachedIncrementalWorkload(static_cast<size_t>(state.range(0)));
  dbre::ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  dbre::ThresholdOracle oracle(options);
  dbre::PipelineOptions validate_only;
  validate_only.run_restruct = false;
  dbre::Database mutated = base.database.Clone();
  auto stats = dbre::sql::ExecuteDmlScript(
      MutationBatch(BatchShape(mutated, 10'000), 0), &mutated);
  if (!stats.ok() || stats->rows_updated == 0) {
    state.SkipWithError("mutation failed");
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    dbre::Database cold;
    for (const std::string& name : mutated.RelationNames()) {
      dbre::Table fresh((*mutated.GetTable(name))->schema());
      (void)(*mutated.GetTable(name))
          ->ForEachRow([&fresh](const dbre::ValueVector& row) {
            dbre::ValueVector copy = row;
            fresh.InsertUnchecked(std::move(copy));
          });
      (void)cold.AddTable(std::move(fresh));
    }
    state.ResumeTiming();
    auto report =
        dbre::RunPipeline(cold, base.queries, &oracle, validate_only);
    if (!report.ok()) state.SkipWithError("pipeline failed");
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 3);
}
BENCHMARK(BM_FullRediscoveryAfterMutation)
    ->Arg(32000)
    ->Arg(128000)
    ->Unit(benchmark::kMillisecond);

// Opt-in 1M-row acceptance level (one extension of 1M rows + a 10k batch).
const bool kRegistered1M = [] {
  const char* flag = std::getenv("DBRE_BENCH_1M");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return false;
  benchmark::RegisterBenchmark("BM_IncrementalRevalidation",
                               BM_IncrementalRevalidation)
      ->Arg(1'000'000)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark("BM_FullRediscoveryAfterMutation",
                               BM_FullRediscoveryAfterMutation)
      ->Arg(1'000'000)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  return true;
}();

}  // namespace

BENCHMARK_MAIN();
