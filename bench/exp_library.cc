// Experiment E11 — the second worked scenario (municipal library),
// exercising the expert-decision branches the HR example does not: forcing
// a dirty inclusion (§6.1 (vi)), enforcing a corrupted FD (§6.2.2 (ii)),
// cyclic INDs, and discriminator analysis. Exits non-zero on deviation.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "deps/ind_closure.h"
#include "sql/selection_analysis.h"
#include "workload/library_example.h"

namespace {

int g_failures = 0;

void Check(const std::string& what, bool ok) {
  std::printf("  [E11] %-62s %s\n", what.c_str(), ok ? "PASS" : "FAIL");
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  std::printf("Second scenario: the municipal library (dirty data paths)\n\n");
  auto database = dbre::workload::BuildLibraryDatabase();
  if (!database.ok()) {
    std::fprintf(stderr, "database build failed\n");
    return 1;
  }
  auto oracle = dbre::workload::LibraryOracle();
  dbre::RecordingOracle recording(oracle.get());
  auto report = dbre::RunPipeline(*database,
                                  dbre::workload::LibraryJoinSet(),
                                  &recording);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // The dirty FK: 155 / 200 / 150 → NEI, forced.
  for (const dbre::JoinOutcome& outcome : report->ind.outcomes) {
    if (outcome.join.left_relation == "Loans" &&
        outcome.join.right_relation == "Members") {
      std::printf("  [E11] Loans-Members counts %zu/%zu/%zu (NEI)\n",
                  outcome.counts.n_left, outcome.counts.n_right,
                  outcome.counts.n_join);
      Check("orphaned FK handled as forced inclusion (case vi)",
            outcome.kind == dbre::JoinOutcomeKind::kNeiForced);
    }
  }

  // Enforced FD.
  bool fd_ok = report->rhs.fds.size() == 1 &&
               report->rhs.fds[0].ToString() ==
                   "Books: {branch} -> {branch_city}";
  Check("corrupted branch->branch_city enforced into F (case ii)", fd_ok);

  // Cyclic INDs between Members and Cardholders.
  auto cycles = dbre::FindCyclicSides(report->ind.inds);
  Check("Members/Cardholders id domains form a cyclic IND pair",
        cycles.size() == 1 && cycles[0].sides.size() == 2);

  // Restructured Branch relation with clean first-wins extension.
  bool branch_ok = report->restruct.database.HasRelation("Branch");
  if (branch_ok) {
    const dbre::Table& branch =
        **report->restruct.database.GetTable("Branch");
    branch_ok = branch.num_rows() == 8 &&
                branch.VerifyUniqueConstraints().ok();
  }
  Check("Branch(branch*, branch_city) materialized with 8 clean tuples",
        branch_ok);

  // RIC census: 5, of which exactly the forced one is violated by the
  // extension.
  size_t violated = 0;
  for (const dbre::InclusionDependency& ric : report->restruct.rics) {
    auto holds = Satisfies(report->restruct.database, ric);
    if (holds.ok() && !*holds) ++violated;
  }
  std::printf("  [E11] RICs: %zu, violated by the (dirty) extension: %zu\n",
              report->restruct.rics.size(), violated);
  Check("5 RICs; only the forced Loans-Members RIC is violated",
        report->restruct.rics.size() == 5 && violated == 1);

  // Discriminator.
  dbre::sql::SelectionAnalysisOptions selection;
  selection.catalog = &*database;
  auto discriminators = dbre::sql::AnalyzeSelections(
      dbre::workload::LibraryProgramSources(), selection);
  bool discriminator_ok = discriminators.ok() &&
                          discriminators->size() == 1 &&
                          (*discriminators)[0].attribute == "status";
  Check("Members.status surfaces as the discriminator candidate",
        discriminator_ok);

  // Cycle merging.
  dbre::PipelineOptions merge_options;
  merge_options.translate.merge_isa_cycles = true;
  auto merged = dbre::RunPipeline(*database,
                                  dbre::workload::LibraryJoinSet(),
                                  oracle.get(), merge_options);
  Check("is-a cycle merges into one Cardholders entity",
        merged.ok() && merged->eer.isa_links().empty() &&
            merged->eer.HasEntity("Cardholders") &&
            !merged->eer.HasEntity("Members"));

  std::printf("\nExpert session: %zu interactions\n",
              recording.InteractionCount());
  std::printf("%s\n", g_failures == 0 ? "Scenario reproduced."
                                      : "DEVIATIONS DETECTED.");
  return g_failures == 0 ? 0 : 1;
}
