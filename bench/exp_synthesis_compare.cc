// Extension experiment A4 — Restruct versus pure normalization.
//
// §3 of the paper argues that normalizing with *all* functional
// dependencies (the Universal-Relation approach) "can lead to a relational
// schema that does not match the intuition about how information should be
// organized" — e.g. Person's zip-code → state is a mere integrity
// constraint, yet UR-style synthesis would split a Zip(zip-code, state)
// relation out. The method instead uses only the FDs witnessed by the
// programs' navigation.
//
// This experiment makes the §3 argument executable: for each relation of
// the running example we run Bernstein 3NF synthesis twice — once with
// every FD that holds in the extension (UR style), once with only the
// elicited FDs — and diff both against what Restruct produced.
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "deps/synthesis.h"
#include "workload/paper_example.h"

namespace {

void PrintDecomposition(const char* label,
                        const std::vector<dbre::DecomposedRelation>& parts) {
  std::printf("  %s:\n", label);
  for (const dbre::DecomposedRelation& part : parts) {
    std::printf("    %s\n", part.ToString().c_str());
  }
}

}  // namespace

int main() {
  auto database = dbre::workload::BuildPaperDatabase();
  if (!database.ok()) {
    std::fprintf(stderr, "database build failed\n");
    return 1;
  }
  auto oracle = dbre::workload::PaperOracle();
  auto report = dbre::RunPipeline(*database,
                                  dbre::workload::PaperJoinSet(),
                                  oracle.get());
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed\n");
    return 1;
  }

  std::printf("A4 — elicited-FD synthesis vs all-FD (UR-style) synthesis\n");

  // Person: the method elicits NO FD (zip-code → state is never navigated),
  // so Person stays whole. UR-style synthesis splits it.
  {
    dbre::AttributeSet universe{"id",       "name",  "street",
                                "number",   "zip-code", "state"};
    std::vector<dbre::FunctionalDependency> all_fds = {
        dbre::FunctionalDependency("Person", dbre::AttributeSet{"id"},
                                   universe.Minus(dbre::AttributeSet{"id"})),
        dbre::FunctionalDependency("Person",
                                   dbre::AttributeSet{"zip-code"},
                                   dbre::AttributeSet{"state"})};
    std::printf("\nPerson — elicited FDs: none → kept whole by Restruct "
                "(matches the conceptual design).\n");
    auto ur = dbre::Synthesize3NF("Person", universe, all_fds);
    PrintDecomposition("UR-style synthesis (all FDs) splits it", ur);
    bool split = ur.size() > 1;
    std::printf("  => UR approach fragments Person: %s (the paper's §3 "
                "criticism)\n",
                split ? "yes" : "no");
    if (!split) return 1;
  }

  // Department: the elicited FD emp → skill, proj drives the same split
  // Restruct performed (Manager). Synthesis over {dep → ..., emp → ...}
  // reproduces Department(dep, emp, location) + Manager(emp, skill, proj).
  {
    dbre::AttributeSet universe{"dep", "emp", "skill", "location", "proj"};
    std::vector<dbre::FunctionalDependency> fds = {
        dbre::FunctionalDependency(
            "Department", dbre::AttributeSet{"dep"},
            universe.Minus(dbre::AttributeSet{"dep"})),
        dbre::FunctionalDependency("Department", dbre::AttributeSet{"emp"},
                                   dbre::AttributeSet{"proj", "skill"})};
    auto synthesized = dbre::Synthesize3NF("Department", universe, fds);
    std::printf("\nDepartment — synthesis over key FD + elicited FD:\n");
    PrintDecomposition("synthesized", synthesized);

    bool matches_restruct = false;
    for (const dbre::DecomposedRelation& part : synthesized) {
      if (part.attributes == (dbre::AttributeSet{"emp", "proj", "skill"}) &&
          part.key == dbre::AttributeSet{"emp"}) {
        matches_restruct = true;
      }
    }
    const dbre::Table& manager =
        **report->restruct.database.GetTable("Manager");
    std::printf("  Restruct produced Manager%s key=%s\n",
                manager.schema().AttributeNames().ToString().c_str(),
                manager.schema().PrimaryKey()->ToString().c_str());
    std::printf("  => synthesis agrees with Restruct's Manager split: %s\n",
                matches_restruct ? "yes" : "no");
    if (!matches_restruct) return 1;

    // And the decomposition is lossless + dependency preserving.
    std::vector<dbre::AttributeSet> components;
    for (const dbre::DecomposedRelation& part : synthesized) {
      components.push_back(part.attributes);
    }
    bool lossless = dbre::IsLosslessJoin(universe, components, fds);
    bool preserving = dbre::PreservesDependencies(components, fds);
    std::printf("  lossless: %s   dependency-preserving: %s\n",
                lossless ? "yes" : "no", preserving ? "yes" : "no");
    if (!lossless || !preserving) return 1;
  }

  std::printf("\nConclusion: restricting normalization to the *navigated* "
              "FDs yields the\nconceptually right splits and avoids the "
              "UR approach's spurious fragments.\n");
  return 0;
}
