// A1 — ablation of §6.2.2's RHS candidate pruning (drop the key; drop
// not-null attributes when the LHS is nullable). Measures both wall time
// and the number of extension FD checks saved.
#include <map>
#include <memory>
#include <random>

#include <benchmark/benchmark.h>

#include "core/rhs_discovery.h"

namespace {

// One wide relation: key k, nullable candidate identifier a with payload,
// and `extra` not-null columns that pruning can skip.
struct Workload {
  dbre::Database database;
  std::vector<dbre::QualifiedAttributes> candidates;
};

const Workload& CachedWorkload(size_t extra) {
  static std::map<size_t, std::unique_ptr<Workload>> cache;
  auto it = cache.find(extra);
  if (it == cache.end()) {
    auto workload = std::make_unique<Workload>();
    dbre::RelationSchema schema("Wide");
    if (!schema.AddAttribute("k", dbre::DataType::kInt64).ok()) std::abort();
    if (!schema.AddAttribute("a", dbre::DataType::kInt64).ok()) std::abort();
    if (!schema.AddAttribute("a_payload", dbre::DataType::kInt64).ok()) {
      std::abort();
    }
    for (size_t i = 0; i < extra; ++i) {
      if (!schema
               .AddAttribute("nn" + std::to_string(i),
                             dbre::DataType::kInt64, /*not_null=*/true)
               .ok()) {
        std::abort();
      }
    }
    if (!schema.DeclareUnique({"k"}).ok()) std::abort();
    if (!workload->database.CreateRelation(std::move(schema)).ok()) {
      std::abort();
    }
    dbre::Table* table = *workload->database.GetMutableTable("Wide");
    std::mt19937_64 rng(3);
    for (int64_t row = 0; row < 20000; ++row) {
      dbre::ValueVector values;
      values.push_back(dbre::Value::Int(row));
      int64_t a = static_cast<int64_t>(rng() % 500);
      values.push_back(row % 11 == 0 ? dbre::Value::Null()
                                     : dbre::Value::Int(a));
      values.push_back(dbre::Value::Int(a * 13));  // a → a_payload
      for (size_t i = 0; i < extra; ++i) {
        values.push_back(dbre::Value::Int(static_cast<int64_t>(rng())));
      }
      if (!table->Insert(std::move(values)).ok()) std::abort();
    }
    workload->candidates.push_back(
        dbre::QualifiedAttributes{"Wide", dbre::AttributeSet{"a"}});
    it = cache.emplace(extra, std::move(workload)).first;
  }
  return *it->second;
}

void RunBench(benchmark::State& state, bool prune) {
  const Workload& workload =
      CachedWorkload(static_cast<size_t>(state.range(0)));
  dbre::DefaultOracle oracle;
  dbre::RhsDiscoveryOptions options;
  options.prune_key_attributes = prune;
  options.prune_not_null_attributes = prune;
  size_t checks = 0;
  for (auto _ : state) {
    auto result = dbre::DiscoverRhs(workload.database, workload.candidates,
                                    {}, &oracle, options);
    if (!result.ok()) state.SkipWithError("rhs discovery failed");
    checks = result->fd_checks;
    benchmark::DoNotOptimize(result);
  }
  state.counters["fd_checks"] = static_cast<double>(checks);
}

void BM_RhsWithPruning(benchmark::State& state) { RunBench(state, true); }
void BM_RhsWithoutPruning(benchmark::State& state) {
  RunBench(state, false);
}

BENCHMARK(BM_RhsWithPruning)
    ->Arg(2)
    ->Arg(8)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RhsWithoutPruning)
    ->Arg(2)
    ->Arg(8)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
