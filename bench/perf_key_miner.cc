// Extension perf — key mining cost: levelwise unique-combination search
// with minimality pruning, as rows and width grow.
#include <map>
#include <memory>
#include <random>

#include <benchmark/benchmark.h>

#include "deps/key_miner.h"

namespace {

const dbre::Table& CachedTable(size_t rows, size_t extra_columns) {
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<dbre::Table>>
      cache;
  auto key = std::make_pair(rows, extra_columns);
  auto it = cache.find(key);
  if (it == cache.end()) {
    dbre::RelationSchema schema("T");
    if (!schema.AddAttribute("id", dbre::DataType::kInt64).ok()) {
      std::abort();
    }
    for (size_t c = 0; c < extra_columns; ++c) {
      if (!schema
               .AddAttribute("c" + std::to_string(c),
                             dbre::DataType::kInt64)
               .ok()) {
        std::abort();
      }
    }
    auto table = std::make_unique<dbre::Table>(std::move(schema));
    std::mt19937_64 rng(17);
    for (size_t i = 0; i < rows; ++i) {
      dbre::ValueVector row;
      row.push_back(dbre::Value::Int(static_cast<int64_t>(i)));
      for (size_t c = 0; c < extra_columns; ++c) {
        row.push_back(
            dbre::Value::Int(static_cast<int64_t>(rng() % (10 + c))));
      }
      table->InsertUnchecked(std::move(row));
    }
    it = cache.emplace(key, std::move(table)).first;
  }
  return *it->second;
}

void BM_KeyMinerByRows(benchmark::State& state) {
  const dbre::Table& table =
      CachedTable(static_cast<size_t>(state.range(0)), 5);
  size_t checked = 0, found = 0;
  for (auto _ : state) {
    dbre::KeyMinerStats stats;
    auto keys = dbre::MineCandidateKeys(table, {}, &stats);
    if (!keys.ok()) state.SkipWithError("mining failed");
    checked = stats.combinations_checked;
    found = keys->size();
    benchmark::DoNotOptimize(keys);
  }
  state.counters["combinations"] = static_cast<double>(checked);
  state.counters["keys"] = static_cast<double>(found);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_KeyMinerByRows)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_KeyMinerByWidth(benchmark::State& state) {
  const dbre::Table& table =
      CachedTable(5000, static_cast<size_t>(state.range(0)));
  size_t checked = 0;
  for (auto _ : state) {
    dbre::KeyMinerStats stats;
    auto keys = dbre::MineCandidateKeys(table, {}, &stats);
    if (!keys.ok()) state.SkipWithError("mining failed");
    checked = stats.combinations_checked;
    benchmark::DoNotOptimize(keys);
  }
  state.counters["combinations"] = static_cast<double>(checked);
}
BENCHMARK(BM_KeyMinerByWidth)
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
