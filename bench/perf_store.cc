// P-store — cost of durability: snapshot write, snapshot load vs CSV
// ingest, journal append throughput, and paged column-scan throughput
// through the buffer pool at evicting vs resident budgets.
//
// The load comparison is the one the snapshot format exists for: restoring
// an extension from its columnar snapshot (mmap + checksum + dictionary
// decode, no text parsing, no row re-hash) must beat re-parsing the CSV
// the client originally sent by a wide margin. Measured on a synthetic
// 32k-row mixed-type table with low-cardinality strings — the shape the
// dictionary encoder is built for.
//
// Plain chrono harness; prints a JSON document on stdout. Recorded
// baseline: BENCH_store.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "pagestore/buffer_pool.h"
#include "pagestore/paged_snapshot.h"
#include "relational/column_batch.h"
#include "relational/csv.h"
#include "relational/extension_registry.h"
#include "relational/table.h"
#include "service/json.h"
#include "store/journal.h"
#include "store/snapshot.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using dbre::DataType;
using dbre::RelationSchema;
using dbre::Table;
using dbre::Value;
using dbre::ValueVector;
using dbre::service::Json;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// A denormalized-looking extension: ids, a few low-cardinality string
// columns (city, product), a real and a nullable bool.
Table SyntheticTable(size_t rows) {
  RelationSchema schema("shipments");
  auto add = [&schema](const char* name, DataType type) {
    auto status = schema.AddAttribute(name, type);
    if (!status.ok()) std::abort();
  };
  add("id", DataType::kInt64);
  add("customer", DataType::kInt64);
  add("city", DataType::kString);
  add("product", DataType::kString);
  add("weight", DataType::kDouble);
  add("express", DataType::kBool);
  const char* cities[] = {"namur", "liège", "brussels", "antwerp", "ghent",
                          "mons", "leuven", "bruges"};
  const char* products[] = {"bolt", "nut", "washer", "bracket", "hinge"};
  Table table(schema);
  uint64_t state = 0x243F6A8885A308D3ull;  // deterministic xorshift
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t i = 0; i < rows; ++i) {
    ValueVector row;
    row.push_back(Value::Int(static_cast<int64_t>(i)));
    row.push_back(Value::Int(static_cast<int64_t>(next() % 500)));
    row.push_back(Value::Text(cities[next() % 8]));
    row.push_back(next() % 11 == 0 ? Value::Null()
                                   : Value::Text(products[next() % 5]));
    row.push_back(Value::Real(static_cast<double>(next() % 10000) / 16.0));
    row.push_back(next() % 7 == 0 ? Value::Null()
                                  : Value::Boolean(next() % 2 == 0));
    table.InsertUnchecked(std::move(row));
  }
  return table;
}

template <typename Fn>
double BestOf(int iterations, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < iterations; ++i) {
    auto begin = Clock::now();
    fn();
    double s = Seconds(begin, Clock::now());
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
#if defined(__GLIBC__)
  // The daemon is long-lived and keeps its arena; without this, glibc
  // trims the heap back to the kernel after every freed table and each
  // iteration re-faults ~500 pages, which swamps both sides of the
  // csv-vs-snapshot comparison with allocator noise. Applied before any
  // measurement, so it affects CSV ingest and snapshot load equally.
  mallopt(M_TRIM_THRESHOLD, 256 << 20);
  mallopt(M_MMAP_THRESHOLD, 128 << 20);
#endif
  constexpr size_t kRows = 32 * 1024;
  constexpr int kIterations = 11;

  fs::path dir = fs::temp_directory_path() / "dbre_perf_store";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string snap_path = (dir / "shipments.snap").string();

  Table table = SyntheticTable(kRows);
  const std::string csv = dbre::WriteCsvText(table);

  // CSV ingest: what load_csv costs the daemon today.
  double csv_parse_s = BestOf(kIterations, [&] {
    Table fresh(table.schema());
    auto loaded = dbre::LoadCsvText(csv, &fresh);
    if (!loaded.ok() || *loaded != kRows) std::abort();
  });

  // Fingerprint alone (the part interning pays on every CSV load and the
  // snapshot footer makes free on restore).
  double fingerprint_s = BestOf(kIterations, [&] {
    volatile uint64_t fp = dbre::ExtensionRegistry::ComputeFingerprint(table);
    (void)fp;
  });

  // Snapshot write (atomic temp+fsync+rename each time).
  double snapshot_write_s = BestOf(kIterations, [&] {
    auto written = dbre::store::WriteSnapshot(table, snap_path);
    if (!written.ok()) std::abort();
  });

  // Snapshot load: checksum + decode into adoptable row storage.
  double snapshot_load_s = BestOf(kIterations, [&] {
    auto loaded = dbre::store::LoadSnapshot(snap_path);
    if (!loaded.ok() || loaded->rows->size() != kRows) std::abort();
  });

  // Journal append throughput at the default batching and at
  // fsync-every-record (the durability ceiling an expert answer pays).
  auto journal_run = [&](size_t fsync_batch, size_t records, double* mb_out) {
    fs::path jdir = dir / ("wal_" + std::to_string(fsync_batch));
    fs::remove_all(jdir);
    dbre::store::JournalOptions options;
    options.fsync_batch = fsync_batch;
    auto journal = dbre::store::Journal::Open(jdir.string(), options);
    if (!journal.ok()) std::abort();
    Json record = Json::MakeObject();
    record.Set("t", Json::Str("answer"));
    record.Set("kind", Json::Str("enforce_fd"));
    record.Set("subject", Json::Str("shipments: customer,city -> product"));
    record.Set("value", Json::Bool(true));
    auto begin = Clock::now();
    for (size_t i = 0; i < records; ++i) {
      if (!(*journal)->Append(record).ok()) std::abort();
    }
    double s = Seconds(begin, Clock::now());
    *mb_out = static_cast<double>((*journal)->stats().bytes) / 1e6;
    return s;
  };
  constexpr size_t kJournalRecords = 20000;
  double batched_mb = 0;
  double journal_batched_s = journal_run(8, kJournalRecords, &batched_mb);
  double synced_mb = 0;
  constexpr size_t kSyncedRecords = 2000;
  double journal_synced_s = journal_run(1, kSyncedRecords, &synced_mb);

  double snapshot_bytes = static_cast<double>(fs::file_size(snap_path));

  // Paged scan: sweep every column's code stream through a buffer pool at
  // two budget levels — one forcing constant eviction (the pool's minimum
  // frame count, smaller than the snapshot) and one where the whole file
  // is resident after the cold pass. Reported per level: scan time, codes
  // decoded per second, and the pool's hit rate.
  const size_t total_codes = kRows * table.schema().arity();
  auto paged_scan = [&](size_t budget_bytes, Json* out) {
    auto pool = std::make_shared<dbre::pagestore::BufferPool>(budget_bytes);
    auto source = dbre::pagestore::OpenSnapshotPaged(snap_path, pool);
    if (!source.ok()) std::abort();
    uint64_t sink = 0;
    auto scan = [&] {
      for (size_t c = 0; c < (*source)->num_columns(); ++c) {
        auto cursor = (*source)->Codes(c);
        for (size_t start = 0; start < kRows;
             start += dbre::batch::kBatchSize) {
          size_t count = std::min(dbre::batch::kBatchSize, kRows - start);
          const uint32_t* codes = cursor->Fetch(start, count);
          for (size_t i = 0; i < count; ++i) sink += codes[i];
        }
      }
    };
    scan();  // cold pass: faults every page in (and evicts at tiny budgets)
    double scan_s = BestOf(kIterations, scan);
    if (sink == 0) std::abort();  // keep the sweep observable
    dbre::pagestore::BufferPool::Stats stats = pool->stats();
    out->Set("budget_bytes", Json::Int(static_cast<int64_t>(
                                 pool->budget_bytes())));
    out->Set("frames", Json::Int(static_cast<int64_t>(stats.frames)));
    out->Set("scan_ms", Json::Number(scan_s * 1e3));
    out->Set("codes_per_sec",
             Json::Number(static_cast<double>(total_codes) / scan_s));
    out->Set("hit_rate",
             Json::Number(static_cast<double>(stats.hits) /
                          static_cast<double>(stats.hits + stats.misses)));
    out->Set("evictions", Json::Int(static_cast<int64_t>(stats.evictions)));
  };
  Json paged_evicting = Json::MakeObject();
  paged_scan(1, &paged_evicting);  // clamps to the minimum frame count
  Json paged_resident = Json::MakeObject();
  paged_scan(16u << 20, &paged_resident);

  fs::remove_all(dir);

  Json doc = Json::MakeObject();
  doc.Set("benchmark", Json::Str("perf_store"));
  doc.Set("description",
          Json::Str("durable store layer on a 32k-row mixed-type extension: "
                    "snapshot write/load vs CSV ingest (best of 11), journal "
                    "append throughput at fsync_batch 8 and 1, paged column "
                    "scans through the buffer pool at evicting and resident "
                    "budgets"));
  doc.Set("rows", Json::Int(static_cast<int64_t>(kRows)));
  doc.Set("csv_bytes", Json::Int(static_cast<int64_t>(csv.size())));
  doc.Set("snapshot_bytes", Json::Int(static_cast<int64_t>(snapshot_bytes)));
  doc.Set("csv_parse_ms", Json::Number(csv_parse_s * 1e3));
  doc.Set("fingerprint_ms", Json::Number(fingerprint_s * 1e3));
  doc.Set("snapshot_write_ms", Json::Number(snapshot_write_s * 1e3));
  doc.Set("snapshot_load_ms", Json::Number(snapshot_load_s * 1e3));
  doc.Set("load_speedup_vs_csv",
          Json::Number(csv_parse_s / snapshot_load_s));
  Json journal = Json::MakeObject();
  journal.Set("records", Json::Int(static_cast<int64_t>(kJournalRecords)));
  journal.Set("fsync_batch_8_records_per_sec",
              Json::Number(static_cast<double>(kJournalRecords) /
                           journal_batched_s));
  journal.Set("fsync_batch_8_mb_per_sec",
              Json::Number(batched_mb / journal_batched_s));
  journal.Set("fsync_every_records_per_sec",
              Json::Number(static_cast<double>(kSyncedRecords) /
                           journal_synced_s));
  doc.Set("journal", std::move(journal));
  Json paged = Json::MakeObject();
  paged.Set("evicting", std::move(paged_evicting));
  paged.Set("resident", std::move(paged_resident));
  doc.Set("paged_scan", std::move(paged));

  std::printf("%s\n", doc.Dump().c_str());
  return 0;
}
