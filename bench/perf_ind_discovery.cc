// P1 — IND-Discovery scaling: cost of eliciting inclusion dependencies as
// the extension grows and as the query workload grows. The dominant cost
// is the three count-distinct valuations per equi-join, each linear in the
// table size.
#include <cstdlib>
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "core/ind_discovery.h"
#include "workload/generator.h"

namespace {

using dbre::workload::GenerateSynthetic;
using dbre::workload::SyntheticDatabase;
using dbre::workload::SyntheticSpec;

const SyntheticDatabase& CachedDatabase(size_t entities, size_t rows) {
  static std::map<std::pair<size_t, size_t>,
                  std::unique_ptr<SyntheticDatabase>>
      cache;
  auto key = std::make_pair(entities, rows);
  auto it = cache.find(key);
  if (it == cache.end()) {
    SyntheticSpec spec;
    spec.num_entities = entities;
    spec.num_merged = entities / 2;
    spec.rows_per_entity = rows;
    spec.emit_program_sources = false;
    auto generated = GenerateSynthetic(spec);
    if (!generated.ok()) std::abort();
    it = cache.emplace(key, std::make_unique<SyntheticDatabase>(
                                std::move(generated).value()))
             .first;
  }
  return *it->second;
}

// Scaling with extension size, fixed workload.
void BM_IndDiscoveryByRows(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(6, static_cast<size_t>(state.range(0)));
  dbre::DefaultOracle oracle;
  // Clean data + conservative oracle: DiscoverInds never conceptualizes,
  // so one working copy outside the timed loop suffices.
  dbre::Database working = db.database.Clone();
  size_t inds = 0;
  for (auto _ : state) {
    auto result = dbre::DiscoverInds(&working, db.queries, &oracle);
    if (!result.ok()) state.SkipWithError("discovery failed");
    inds = result->inds.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["inds"] = static_cast<double>(inds);
  state.counters["joins"] = static_cast<double>(db.queries.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IndDiscoveryByRows)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);

// Opt-in 10M-row level (3 relations x 3.34M tuples): generating the
// extension takes minutes and several GB of heap, so it must be requested
// explicitly with DBRE_BENCH_10M=1 — the CI bench smoke runs every target
// for one iteration and would otherwise time out.
const bool kRegistered10M = [] {
  const char* flag = std::getenv("DBRE_BENCH_10M");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return false;
  benchmark::RegisterBenchmark("BM_IndDiscoveryByRows",
                               BM_IndDiscoveryByRows)
      ->Arg(3340000)
      ->Unit(benchmark::kMillisecond);
  return true;
}();

// Encoded-vs-naive join valuations: the three distinct counts of one
// equi-join over the dictionary-encoded columns (with a cold cache per
// iteration cleared by cloning) against the row-at-a-time reference.
void BM_JoinCountsEncoded(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(6, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    dbre::Database working = db.database.Clone();
    // Cloning shares the memoized caches; mutate-free invalidation isn't
    // possible from outside, so rebuild cold tables instead.
    for (const std::string& name : working.RelationNames()) {
      dbre::Table* table = *working.GetMutableTable(name);
      dbre::Table rebuilt(table->schema());
      for (const auto& row : table->rows()) rebuilt.InsertUnchecked(row);
      *table = std::move(rebuilt);
    }
    state.ResumeTiming();
    for (const dbre::EquiJoin& join : db.queries) {
      auto counts = dbre::ComputeJoinCounts(working, join);
      benchmark::DoNotOptimize(counts);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_JoinCountsEncoded)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);

void BM_JoinCountsNaive(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(6, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (const dbre::EquiJoin& join : db.queries) {
      auto counts = dbre::naive::ComputeJoinCounts(db.database, join);
      benchmark::DoNotOptimize(counts);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_JoinCountsNaive)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);

// Thread scaling of the warm-cache discovery loop: range(1) worker threads
// fan out the per-join valuations.
void BM_IndDiscoveryThreads(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(6, static_cast<size_t>(state.range(0)));
  dbre::DefaultOracle oracle;
  dbre::Database working = db.database.Clone();
  dbre::IndDiscoveryOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto result = dbre::DiscoverInds(&working, db.queries, &oracle, options);
    if (!result.ok()) state.SkipWithError("discovery failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IndDiscoveryThreads)
    ->Args({16000, 1})
    ->Args({16000, 4})
    ->Args({64000, 1})
    ->Args({64000, 4})
    ->Unit(benchmark::kMillisecond);

// Scaling with workload size (schema width drives |Q|), fixed rows.
void BM_IndDiscoveryByJoins(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)), 2000);
  dbre::DefaultOracle oracle;
  dbre::Database working = db.database.Clone();
  for (auto _ : state) {
    auto result = dbre::DiscoverInds(&working, db.queries, &oracle);
    if (!result.ok()) state.SkipWithError("discovery failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["joins"] = static_cast<double>(db.queries.size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.queries.size()));
}
BENCHMARK(BM_IndDiscoveryByJoins)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
