// Extension experiment A3 — dictionary-less operation. The paper assumes
// `unique` declarations exist (§4); the oldest systems it targets predate
// even those. We strip every unique declaration from the running example
// and let the pipeline mine keys from the extension (deps/key_miner.h,
// join-guided choice among alternatives), then compare the inferred K with
// the dictionary's K and check how much of the elicitation survives.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "workload/paper_example.h"

int main() {
  auto with_dictionary = dbre::workload::BuildPaperDatabase();
  if (!with_dictionary.ok()) {
    std::fprintf(stderr, "database build failed\n");
    return 1;
  }

  // Strip the unique declarations: rebuild each relation without them.
  dbre::Database stripped;
  for (const std::string& relation : with_dictionary->RelationNames()) {
    const dbre::Table& table = **with_dictionary->GetTable(relation);
    dbre::RelationSchema schema(relation);
    for (const dbre::Attribute& attribute : table.schema().attributes()) {
      // Keep explicit not-null declarations only (key-implied ones vanish
      // with the keys).
      if (!schema.AddAttribute(attribute.name, attribute.type,
                               attribute.not_null)
               .ok()) {
        std::fprintf(stderr, "schema rebuild failed\n");
        return 1;
      }
    }
    dbre::Table copy(std::move(schema));
    for (const dbre::ValueVector& row : table.rows()) {
      copy.InsertUnchecked(row);
    }
    if (!stripped.AddTable(std::move(copy)).ok()) {
      std::fprintf(stderr, "table rebuild failed\n");
      return 1;
    }
  }

  auto oracle = dbre::workload::PaperOracle();
  dbre::PipelineOptions options;
  options.infer_missing_keys = true;
  auto report = dbre::RunPipeline(stripped,
                                  dbre::workload::PaperJoinSet(),
                                  oracle.get(), options);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("A3 — key inference on the undeclared paper schema\n\n");
  std::printf("%-12s %-22s %-22s %s\n", "relation", "dictionary key",
              "inferred key", "agree?");
  auto dictionary_keys = with_dictionary->KeySet();
  int agreements = 0, total = 0;
  for (const dbre::QualifiedAttributes& declared : dictionary_keys) {
    std::string inferred = "(none)";
    bool agree = false;
    for (const dbre::QualifiedAttributes& mined : report->key_set) {
      if (mined.relation == declared.relation) {
        inferred = mined.attributes.ToString();
        agree = mined.attributes == declared.attributes;
      }
    }
    std::printf("%-12s %-22s %-22s %s\n", declared.relation.c_str(),
                declared.attributes.ToString().c_str(), inferred.c_str(),
                agree ? "yes" : "NO");
    ++total;
    if (agree) ++agreements;
  }
  std::printf("\n%d/%d inferred keys match the dictionary.\n", agreements,
              total);
  std::printf(
      "Disagreements are honest overfitting: the extension genuinely\n"
      "satisfies additional unique combinations (e.g. Assignment's sample\n"
      "is unique on smaller sets than {emp, dep, proj}); extension-only\n"
      "inference is a heuristic, the dictionary stays authoritative.\n\n");

  // How much of the elicitation survives without any declarations?
  std::printf("Elicited with inferred keys:\n");
  std::printf("  INDs: %zu   FDs: %zu   hidden objects: %zu   RICs: %zu\n",
              report->ind.inds.size(), report->rhs.fds.size(),
              report->rhs.hidden.size(), report->restruct.rics.size());
  bool fd_found = false;
  for (const dbre::FunctionalDependency& fd : report->rhs.fds) {
    if (fd.ToString() == "Assignment: {proj} -> {project-name}") {
      fd_found = true;
    }
  }
  std::printf("  proj -> project-name rediscovered: %s\n",
              fd_found ? "yes" : "no");
  return 0;
}
