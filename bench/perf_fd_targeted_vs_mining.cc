// P3 — targeted FD elicitation (RHS-Discovery checks only the candidates
// the inclusion dependencies point at) versus unguided levelwise FD mining
// (the Mannila–Räihä-style baseline, the paper's ref [12]) over the same
// relation.
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "core/rhs_discovery.h"
#include "deps/fd_miner.h"
#include "workload/generator.h"

namespace {

using dbre::workload::GenerateSynthetic;
using dbre::workload::SyntheticDatabase;
using dbre::workload::SyntheticSpec;

// A database whose merged entities all land in wide host relations.
const SyntheticDatabase& CachedDatabase(size_t payload) {
  static std::map<size_t, std::unique_ptr<SyntheticDatabase>> cache;
  auto it = cache.find(payload);
  if (it == cache.end()) {
    SyntheticSpec spec;
    spec.num_entities = 4;
    spec.num_merged = 2;
    spec.payload_per_entity = payload;  // widens every relation
    spec.rows_per_entity = 3000;
    spec.emit_program_sources = false;
    auto generated = GenerateSynthetic(spec);
    if (!generated.ok()) std::abort();
    it = cache.emplace(payload, std::make_unique<SyntheticDatabase>(
                                    std::move(generated).value()))
             .first;
  }
  return *it->second;
}

void BM_TargetedRhsDiscovery(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  // Candidates as LHS-Discovery would produce them: the planted
  // identifiers.
  dbre::DefaultOracle oracle;
  size_t checks = 0, fds = 0;
  for (auto _ : state) {
    auto result = dbre::DiscoverRhs(db.database, db.true_identifiers, {},
                                    &oracle);
    if (!result.ok()) state.SkipWithError("rhs discovery failed");
    checks = result->fd_checks;
    fds = result->fds.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["fd_checks"] = static_cast<double>(checks);
  state.counters["fds_found"] = static_cast<double>(fds);
}
BENCHMARK(BM_TargetedRhsDiscovery)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_LevelwiseFdMining(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  // Mine the widest relation (a merged-entity host).
  const dbre::Table* widest = nullptr;
  for (const std::string& name : db.database.RelationNames()) {
    const dbre::Table* table = *db.database.GetTable(name);
    if (widest == nullptr ||
        table->schema().arity() > widest->schema().arity()) {
      widest = table;
    }
  }
  dbre::FdMinerOptions options;
  options.max_lhs_size = 2;
  size_t checks = 0, fds = 0;
  for (auto _ : state) {
    dbre::FdMinerStats stats;
    auto result = dbre::MineFds(*widest, options, &stats);
    if (!result.ok()) state.SkipWithError("mining failed");
    checks = stats.candidates_checked;
    fds = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["fd_checks"] = static_cast<double>(checks);
  state.counters["fds_found"] = static_cast<double>(fds);
}
BENCHMARK(BM_LevelwiseFdMining)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
