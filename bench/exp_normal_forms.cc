// Experiment E10: the normal-form annotations of section 5 (Person 2NF,
// HEmployee 3NF, Department 2NF, Assignment 1NF), re-derived two ways:
//   (a) from the design-level FDs the paper states, and
//   (b) from FDs mined out of the actual extension (sanity check that the
//       engineered data carries the same dependencies).
#include <cstdio>
#include <string>
#include <vector>

#include "deps/fd_miner.h"
#include "deps/normal_forms.h"
#include "workload/paper_example.h"

namespace {

int g_failures = 0;

void Report(const std::string& relation, dbre::NormalForm declared,
            dbre::NormalForm mined, const std::string& paper_says,
            bool ok) {
  std::printf("  %-12s declared-FDs: %-4s  mined-FDs: %-4s  paper: %-4s  %s\n",
              relation.c_str(), dbre::NormalFormName(declared),
              dbre::NormalFormName(mined), paper_says.c_str(),
              ok ? "PASS" : "FAIL");
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  std::printf("E10 — normal forms of the legacy schema (section 5):\n\n");
  auto database = dbre::workload::BuildPaperDatabase();
  if (!database.ok()) {
    std::fprintf(stderr, "database build failed\n");
    return 1;
  }

  struct Row {
    const char* relation;
    std::vector<dbre::FunctionalDependency> declared;
    const char* paper;
    // Expected classification from the declared FDs. Paper annotations are
    // lower bounds (its "3NF" for HEmployee is in fact BCNF).
    dbre::NormalForm expected;
  };

  using dbre::AttributeSet;
  using dbre::FunctionalDependency;
  std::vector<Row> rows;
  rows.push_back(
      {"Person",
       {FunctionalDependency("Person", AttributeSet{"id"},
                             AttributeSet{"name", "street", "number",
                                          "zip-code", "state"}),
        FunctionalDependency("Person", AttributeSet{"zip-code"},
                             AttributeSet{"state"})},
       "2NF", dbre::NormalForm::k2NF});
  rows.push_back({"HEmployee",
                  {FunctionalDependency("HEmployee",
                                        AttributeSet{"date", "no"},
                                        AttributeSet{"salary"})},
                  "3NF", dbre::NormalForm::kBCNF});
  rows.push_back(
      {"Department",
       {FunctionalDependency("Department", AttributeSet{"dep"},
                             AttributeSet{"emp", "skill", "location",
                                          "proj"}),
        FunctionalDependency("Department", AttributeSet{"emp"},
                             AttributeSet{"proj", "skill"})},
       "2NF", dbre::NormalForm::k2NF});
  rows.push_back(
      {"Assignment",
       {FunctionalDependency("Assignment", AttributeSet{"dep", "emp", "proj"},
                             AttributeSet{"date", "project-name"}),
        FunctionalDependency("Assignment", AttributeSet{"proj"},
                             AttributeSet{"project-name"})},
       "1NF", dbre::NormalForm::k1NF});

  for (const Row& row : rows) {
    const dbre::Table& table = **database->GetTable(row.relation);
    AttributeSet all = table.schema().AttributeNames();
    dbre::NormalForm declared = dbre::ClassifyNormalForm(all, row.declared);

    // Mine FDs from the extension. NULL-as-value mining can surface extra
    // accidental dependencies in Department's NULL groups; the declared
    // classification is the authoritative one, mining is the cross-check.
    dbre::FdMinerOptions options;
    options.max_lhs_size = 2;
    auto mined = dbre::MineFds(table, options);
    dbre::NormalForm mined_nf =
        mined.ok() ? dbre::ClassifyNormalForm(all, *mined)
                   : dbre::NormalForm::k1NF;
    Report(row.relation, declared, mined_nf, row.paper,
           declared == row.expected);
  }

  std::printf("\n%s\n", g_failures == 0
                            ? "Normal-form annotations reproduced."
                            : "DEVIATIONS DETECTED.");
  return g_failures == 0 ? 0 : 1;
}
