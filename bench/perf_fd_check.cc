// P4 — verifying one FD against the extension: the hash-witness check used
// by RHS-Discovery (one pass, NULL-LHS tuples skipped) versus the
// stripped-partition machinery used by the levelwise miner (amortizes
// across many candidate FDs, but costs more for a single check).
#include <map>
#include <memory>
#include <random>

#include <benchmark/benchmark.h>

#include "deps/partition.h"
#include "relational/algebra.h"

namespace {

const dbre::Table& CachedTable(size_t rows) {
  static std::map<size_t, std::unique_ptr<dbre::Table>> cache;
  auto it = cache.find(rows);
  if (it == cache.end()) {
    dbre::RelationSchema schema("T");
    if (!schema.AddAttribute("a", dbre::DataType::kInt64).ok() ||
        !schema.AddAttribute("b", dbre::DataType::kInt64).ok() ||
        !schema.AddAttribute("c", dbre::DataType::kInt64).ok()) {
      std::abort();
    }
    auto table = std::make_unique<dbre::Table>(std::move(schema));
    std::mt19937_64 rng(99);
    for (size_t i = 0; i < rows; ++i) {
      int64_t a = static_cast<int64_t>(rng() % (rows / 10 + 1));
      // a → b holds; a → c fails.
      table->InsertUnchecked({dbre::Value::Int(a),
                              dbre::Value::Int(a * 7 % 1000),
                              dbre::Value::Int(static_cast<int64_t>(rng()))});
    }
    it = cache.emplace(rows, std::move(table)).first;
  }
  return *it->second;
}

void BM_FdCheckHashWitness(benchmark::State& state) {
  const dbre::Table& table = CachedTable(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto holds = dbre::FunctionalDependencyHolds(
        table, dbre::AttributeSet{"a"}, dbre::AttributeSet{"b"});
    benchmark::DoNotOptimize(holds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FdCheckHashWitness)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(400000)
    ->Unit(benchmark::kMicrosecond);

void BM_FdCheckHashWitnessFailing(benchmark::State& state) {
  // Failing FDs short-circuit at the first witness conflict.
  const dbre::Table& table = CachedTable(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto holds = dbre::FunctionalDependencyHolds(
        table, dbre::AttributeSet{"a"}, dbre::AttributeSet{"c"});
    benchmark::DoNotOptimize(holds);
  }
}
BENCHMARK(BM_FdCheckHashWitnessFailing)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// The production path: dictionary-encoded columns + memoized partitions.
// Cold variant pays the one-off encode+partition build each iteration (a
// fresh table copy drops the cache); the warm variant measures the steady
// state the discovery loops actually see.
void BM_FdCheckEncodedCold(benchmark::State& state) {
  const dbre::Table& table = CachedTable(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    dbre::Table cold(table.schema());
    for (const auto& row : table.rows()) cold.InsertUnchecked(row);
    state.ResumeTiming();
    auto holds = dbre::FunctionalDependencyHolds(
        cold, dbre::AttributeSet{"a"}, dbre::AttributeSet{"b"});
    benchmark::DoNotOptimize(holds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FdCheckEncodedCold)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(400000)
    ->Unit(benchmark::kMicrosecond);

void BM_FdCheckEncodedWarm(benchmark::State& state) {
  const dbre::Table& table = CachedTable(static_cast<size_t>(state.range(0)));
  // Warm the cache outside the timed region.
  auto warmup = dbre::FunctionalDependencyHolds(
      table, dbre::AttributeSet{"a"}, dbre::AttributeSet{"b"});
  if (!warmup.ok()) state.SkipWithError("warmup failed");
  for (auto _ : state) {
    auto holds = dbre::FunctionalDependencyHolds(
        table, dbre::AttributeSet{"a"}, dbre::AttributeSet{"b"});
    benchmark::DoNotOptimize(holds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FdCheckEncodedWarm)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(400000)
    ->Unit(benchmark::kMicrosecond);

// The retained row-at-a-time reference implementation, for the
// encoded-vs-naive comparison the crosscheck tests pin semantically.
void BM_FdCheckNaive(benchmark::State& state) {
  const dbre::Table& table = CachedTable(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto holds = dbre::naive::FunctionalDependencyHolds(
        table, dbre::AttributeSet{"a"}, dbre::AttributeSet{"b"});
    benchmark::DoNotOptimize(holds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FdCheckNaive)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(400000)
    ->Unit(benchmark::kMicrosecond);

void BM_FdCheckPartitions(benchmark::State& state) {
  const dbre::Table& table = CachedTable(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto pa = dbre::StrippedPartition::ForColumn(table, 0);
    auto pb = dbre::StrippedPartition::ForColumn(table, 1);
    bool holds = pa->Refines(*pb);
    benchmark::DoNotOptimize(holds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FdCheckPartitions)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(400000)
    ->Unit(benchmark::kMicrosecond);

void BM_FdCheckPartitionsAmortized(benchmark::State& state) {
  // When the single-column partitions are reused (as the miner does), the
  // marginal cost of one more FD check is just the Refines call.
  const dbre::Table& table = CachedTable(static_cast<size_t>(state.range(0)));
  auto pa = dbre::StrippedPartition::ForColumn(table, 0);
  auto pb = dbre::StrippedPartition::ForColumn(table, 1);
  for (auto _ : state) {
    bool holds = pa->Refines(*pb);
    benchmark::DoNotOptimize(holds);
  }
}
BENCHMARK(BM_FdCheckPartitionsAmortized)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
