// P2 — the paper's central efficiency claim: "the equi-join analysis
// focuses on relevant attributes enforcing the efficiency of the inclusion
// dependencies elicitation". We compare query-guided IND-Discovery against
// exhaustively mining all unary INDs, as schema width grows. The guided
// method's work is proportional to |Q| (the joins programmers actually
// wrote); the exhaustive baseline is quadratic in the number of
// type-compatible attributes.
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "core/ind_discovery.h"
#include "deps/ind_miner.h"
#include "workload/generator.h"

namespace {

using dbre::workload::GenerateSynthetic;
using dbre::workload::SyntheticDatabase;
using dbre::workload::SyntheticSpec;

const SyntheticDatabase& CachedDatabase(size_t entities) {
  static std::map<size_t, std::unique_ptr<SyntheticDatabase>> cache;
  auto it = cache.find(entities);
  if (it == cache.end()) {
    SyntheticSpec spec;
    spec.num_entities = entities;
    spec.num_merged = entities / 2;
    spec.payload_per_entity = 3;
    spec.rows_per_entity = 2000;
    spec.emit_program_sources = false;
    auto generated = GenerateSynthetic(spec);
    if (!generated.ok()) std::abort();
    it = cache.emplace(entities, std::make_unique<SyntheticDatabase>(
                                     std::move(generated).value()))
             .first;
  }
  return *it->second;
}

void BM_GuidedIndDiscovery(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  dbre::DefaultOracle oracle;
  dbre::Database working = db.database.Clone();
  size_t checks = 0, found = 0;
  for (auto _ : state) {
    auto result = dbre::DiscoverInds(&working, db.queries, &oracle);
    if (!result.ok()) state.SkipWithError("discovery failed");
    checks = result->extension_queries;
    found = result->inds.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["extension_queries"] = static_cast<double>(checks);
  state.counters["inds_found"] = static_cast<double>(found);
}
BENCHMARK(BM_GuidedIndDiscovery)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ExhaustiveIndMining(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  size_t pairs = 0, found = 0;
  for (auto _ : state) {
    dbre::IndMinerStats stats;
    auto result = dbre::MineUnaryInds(db.database, {}, &stats);
    if (!result.ok()) state.SkipWithError("mining failed");
    pairs = stats.pairs_considered;
    found = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs_considered"] = static_cast<double>(pairs);
  state.counters["inds_found"] = static_cast<double>(found);
}
BENCHMARK(BM_ExhaustiveIndMining)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// The n-ary (MIND-style) exhaustive miner at arity 2: the candidate space
// the guided method never has to touch.
void BM_ExhaustiveNaryMining(benchmark::State& state) {
  const SyntheticDatabase& db =
      CachedDatabase(static_cast<size_t>(state.range(0)));
  size_t generated = 0, found = 0;
  for (auto _ : state) {
    dbre::NaryIndMinerOptions options;
    options.max_arity = 2;
    dbre::NaryIndMinerStats stats;
    auto result = dbre::MineNaryInds(db.database, options, &stats);
    if (!result.ok()) state.SkipWithError("mining failed");
    generated = stats.candidates_generated;
    found = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["binary_candidates"] = static_cast<double>(generated);
  state.counters["inds_found"] = static_cast<double>(found);
}
BENCHMARK(BM_ExhaustiveNaryMining)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
