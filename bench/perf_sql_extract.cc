// P6 — front-end throughput: scanning application programs for embedded
// SQL and extracting the equi-join set Q.
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "sql/scanner.h"

namespace {

// Builds a corpus of `programs` host-language files, each containing a few
// embedded statements exercising different join idioms.
std::vector<std::pair<std::string, std::string>> MakeCorpus(
    size_t programs) {
  std::vector<std::pair<std::string, std::string>> corpus;
  for (size_t i = 0; i < programs; ++i) {
    std::string t1 = "T" + std::to_string(i % 20);
    std::string t2 = "T" + std::to_string((i + 1) % 20);
    std::string source =
        "/* program " + std::to_string(i) + " */\n"
        "void f(void) {\n"
        "  EXEC SQL SELECT a.k FROM " + t1 + " a, " + t2 +
        " b WHERE a.ref = b.id AND a.flag = 1;\n"
        "}\n"
        "void g(void) {\n"
        "  EXEC SQL SELECT k FROM " + t1 +
        " WHERE ref IN (SELECT id FROM " + t2 + ");\n"
        "}\n"
        "static const char *q = \"SELECT id FROM " + t1 +
        " INTERSECT SELECT ref FROM " + t2 + "\";\n";
    corpus.emplace_back("prog" + std::to_string(i) + ".pc",
                        std::move(source));
  }
  return corpus;
}

void BM_ScanAndExtract(benchmark::State& state) {
  auto corpus = MakeCorpus(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  for (const auto& [name, text] : corpus) bytes += text.size();
  size_t joins = 0;
  for (auto _ : state) {
    dbre::sql::ExtractionStats stats;
    auto result = dbre::sql::BuildQueryJoinSetFromSources(corpus, {},
                                                          &stats);
    if (!result.ok()) state.SkipWithError("extraction failed");
    joins = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["joins"] = static_cast<double>(joins);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_ScanAndExtract)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_ScanOnly(benchmark::State& state) {
  auto corpus = MakeCorpus(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  for (const auto& [name, text] : corpus) bytes += text.size();
  for (auto _ : state) {
    size_t statements = 0;
    for (const auto& [name, text] : corpus) {
      statements += dbre::sql::ScanProgramText(text).size();
    }
    benchmark::DoNotOptimize(statements);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_ScanOnly)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
