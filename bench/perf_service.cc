// P-service — throughput and question latency of the dbred daemon under
// concurrent scripted clients.
//
// An in-process Server is exposed over real TCP (loopback, ephemeral
// port); for each concurrency level every client thread drives complete
// sessions end to end: create, load DDL + CSV, add a join whose non-empty
// intersection guarantees exactly one oracle question, run with the async
// oracle, wait for the question, answer it over the wire, wait for
// completion, fetch the report, close. Two numbers per level:
//
//   sessions_per_sec  completed sessions / wall-clock across all clients
//   question round trip (p50/p99, us)
//                     wait(for=question) observing a pending question
//                     through the server acknowledging the answer —
//                     the latency an expert's UI would feel.
//
// Plain chrono harness (google-benchmark fits poorly around multi-thread
// client fleets); prints a JSON document on stdout. Recorded baseline:
// BENCH_service.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/json.h"
#include "service/server.h"
#include "service/transport.h"

namespace {

using dbre::service::Json;
using dbre::service::Server;
using dbre::service::ServerOptions;
using dbre::service::SocketChannel;
using dbre::service::TcpConnect;
using dbre::service::TcpServer;

using Clock = std::chrono::steady_clock;

// R[a] = {1,2}, S[c] = {2,3}: the join is non-empty but neither projection
// includes the other, so each run suspends on exactly one NEI question.
constexpr char kDdl[] =
    "CREATE TABLE R (a INTEGER, b TEXT, UNIQUE(a));\n"
    "CREATE TABLE S (c INTEGER, d TEXT, UNIQUE(c));";
constexpr char kCsvR[] = "a,b\n1,x\n2,y\n";
constexpr char kCsvS[] = "c,d\n2,p\n3,q\n";

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "perf_service: %s\n", what.c_str());
  std::abort();
}

class Client {
 public:
  explicit Client(uint16_t port) {
    auto channel = TcpConnect("127.0.0.1", port);
    if (!channel.ok()) Die(channel.status().ToString());
    channel_ = std::move(*channel);
  }

  Json Call(Json request) {
    request.Set("id", Json::Int(next_id_++));
    if (!channel_->WriteLine(request.Dump()).ok()) Die("write failed");
    auto line = channel_->ReadLine();
    if (!line.ok()) Die("connection lost");
    auto parsed = Json::Parse(*line);
    if (!parsed.ok()) Die("bad response: " + *line);
    return *parsed;
  }

  Json MustCall(Json request) {
    Json response = Call(std::move(request));
    if (!response.GetBool("ok")) Die("error response: " + response.Dump());
    const Json* result = response.Find("result");
    return result != nullptr ? *result : Json::MakeObject();
  }

 private:
  std::unique_ptr<SocketChannel> channel_;
  int64_t next_id_ = 1;
};

Json Command(const char* cmd, const std::string& session = "") {
  Json request = Json::MakeObject();
  request.Set("cmd", Json::Str(cmd));
  if (!session.empty()) request.Set("session", Json::Str(session));
  return request;
}

// Drives one session start to finish; appends each question round trip
// (seconds) to `latencies`.
void DriveSession(Client* client, std::vector<double>* latencies) {
  std::string session = client->MustCall(Command("create")).GetString("session");

  Json load_ddl = Command("load_ddl", session);
  load_ddl.Set("sql", Json::Str(kDdl));
  client->MustCall(std::move(load_ddl));
  for (const auto& [relation, csv] :
       {std::pair<const char*, const char*>{"R", kCsvR}, {"S", kCsvS}}) {
    Json load_csv = Command("load_csv", session);
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(csv));
    client->MustCall(std::move(load_csv));
  }
  Json add_joins = Command("add_joins", session);
  Json joins = Json::MakeArray();
  Json join = Json::MakeObject();
  join.Set("left", Json::Str("R"));
  Json left_attrs = Json::MakeArray();
  left_attrs.Append(Json::Str("a"));
  join.Set("left_attrs", std::move(left_attrs));
  join.Set("right", Json::Str("S"));
  Json right_attrs = Json::MakeArray();
  right_attrs.Append(Json::Str("c"));
  join.Set("right_attrs", std::move(right_attrs));
  joins.Append(std::move(join));
  add_joins.Set("joins", std::move(joins));
  client->MustCall(std::move(add_joins));
  client->MustCall(Command("run", session));

  while (true) {
    Json wait = Command("wait", session);
    wait.Set("for", Json::Str("question"));
    wait.Set("timeout_ms", Json::Int(5000));
    Json waited = client->MustCall(std::move(wait));
    std::string state = waited.GetString("state");
    if (state == "done" || state == "failed") break;
    if (waited.GetInt("pending") == 0) continue;

    // The round trip starts the moment the wait reports a question.
    Clock::time_point asked = Clock::now();
    Json listed = client->MustCall(Command("questions", session));
    for (const Json& question : listed.Find("questions")->array()) {
      Json answer = Command("answer", session);
      answer.Set("question", Json::Int(question.GetInt("qid")));
      answer.Set("action", Json::Str("ignore"));
      Json response = client->Call(std::move(answer));
      if (response.GetBool("ok")) {
        latencies->push_back(
            std::chrono::duration<double>(Clock::now() - asked).count());
      } else if (response.Find("error")->GetString("code") !=
                 "failed_precondition") {
        // Benign race only: the question resolved between the wait and
        // the answer (e.g. a stale pending count). Anything else is real.
        Die("error response: " + response.Dump());
      }
    }
  }

  client->MustCall(Command("report", session));
  client->MustCall(Command("close", session));
}

struct LevelResult {
  int clients = 0;
  int sessions = 0;
  size_t questions = 0;
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<double>* values, double fraction) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t index = static_cast<size_t>(fraction * (values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

LevelResult RunLevel(uint16_t port, int clients, int sessions_per_client) {
  std::mutex mutex;
  std::vector<double> all_latencies;
  Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client(port);
      std::vector<double> latencies;
      for (int s = 0; s < sessions_per_client; ++s) {
        DriveSession(&client, &latencies);
      }
      std::lock_guard<std::mutex> lock(mutex);
      all_latencies.insert(all_latencies.end(), latencies.begin(),
                           latencies.end());
    });
  }
  for (std::thread& thread : threads) thread.join();

  LevelResult result;
  result.clients = clients;
  result.sessions = clients * sessions_per_client;
  result.questions = all_latencies.size();
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  result.sessions_per_sec = result.sessions / result.wall_s;
  result.p50_us = Percentile(&all_latencies, 0.50) * 1e6;
  result.p99_us = Percentile(&all_latencies, 0.99) * 1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int sessions_per_client = 25;
  if (argc > 1) sessions_per_client = std::atoi(argv[1]);

  ServerOptions options;
  options.sessions.max_sessions = 128;
  options.sessions.max_inflight_runs = 64;
  options.sessions.max_queued_runs = 256;
  Server server(options);
  TcpServer tcp(&server);
  if (!tcp.Start(0).ok()) Die("cannot bind loopback");

  // One warm-up session populates the extension registry so every timed
  // level measures the steady state (shared row storage, warm caches).
  {
    Client warm(tcp.port());
    std::vector<double> scratch;
    DriveSession(&warm, &scratch);
  }

  Json levels = Json::MakeArray();
  for (int clients : {1, 8, 32}) {
    LevelResult r = RunLevel(tcp.port(), clients, sessions_per_client);
    Json level = Json::MakeObject();
    level.Set("clients", Json::Int(r.clients));
    level.Set("sessions", Json::Int(r.sessions));
    level.Set("questions", Json::Int(static_cast<int64_t>(r.questions)));
    level.Set("wall_s", Json::Number(r.wall_s));
    level.Set("sessions_per_sec", Json::Number(r.sessions_per_sec));
    level.Set("question_rtt_p50_us", Json::Number(r.p50_us));
    level.Set("question_rtt_p99_us", Json::Number(r.p99_us));
    levels.Append(std::move(level));
    std::fprintf(stderr,
                 "clients=%2d  sessions/s=%8.1f  rtt p50=%7.1fus  "
                 "p99=%7.1fus\n",
                 r.clients, r.sessions_per_sec, r.p50_us, r.p99_us);
  }
  tcp.Stop();
  server.sessions()->Shutdown();

  Json doc = Json::MakeObject();
  doc.Set("benchmark", Json::Str("perf_service"));
  doc.Set("description",
          Json::Str("dbred daemon over loopback TCP: full scripted "
                    "sessions (create/load/run/answer one NEI "
                    "question/report/close) per client; question round "
                    "trip = wait(for=question) reporting a pending "
                    "question through answer acknowledgment."));
  doc.Set("sessions_per_client", Json::Int(sessions_per_client));
  doc.Set("levels", std::move(levels));
  std::printf("%s\n", doc.Dump().c_str());
  return 0;
}
