// P-service — throughput and question latency of the dbred daemon under
// concurrent scripted clients.
//
// An in-process Server is exposed over real TCP (loopback, ephemeral
// port); for each concurrency level every client thread drives complete
// sessions end to end: create, load DDL + CSV, add a join whose non-empty
// intersection guarantees exactly one oracle question, run with the async
// oracle, wait for the question, answer it over the wire, wait for
// completion, fetch the report, close. Two numbers per level:
//
//   sessions_per_sec  completed sessions / wall-clock across all clients
//   question round trip (p50/p99, us)
//                     wait(for=question) observing a pending question
//                     through the server acknowledging the answer —
//                     the latency an expert's UI would feel.
//
// Four sections: the thread-per-connection TcpServer, the epoll
// EventLoopServer transport on the same Server, a router-fronted fleet of
// in-process workers at 1/2/4 workers, and session migration latency
// (router `migrate` round trips over a shared data dir). Levels record
// hardware_concurrency so scaling numbers are read against the cores that
// were actually available.
//
// Plain chrono harness (google-benchmark fits poorly around multi-thread
// client fleets); prints a JSON document on stdout. Recorded baseline:
// BENCH_service.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "cluster/service_transport.h"
#include "service/json.h"
#include "service/server.h"
#include "service/transport.h"

namespace {

using dbre::cluster::EventLoopTransport;
using dbre::cluster::Router;
using dbre::cluster::RouterOptions;
using dbre::cluster::RouterWorkerConfig;
using dbre::service::Json;
using dbre::service::Server;
using dbre::service::ServerOptions;
using dbre::service::SocketChannel;
using dbre::service::TcpConnect;
using dbre::service::TcpServer;

using Clock = std::chrono::steady_clock;

// R[a] = {1,2}, S[c] = {2,3}: the join is non-empty but neither projection
// includes the other, so each run suspends on exactly one NEI question.
constexpr char kDdl[] =
    "CREATE TABLE R (a INTEGER, b TEXT, UNIQUE(a));\n"
    "CREATE TABLE S (c INTEGER, d TEXT, UNIQUE(c));";
constexpr char kCsvR[] = "a,b\n1,x\n2,y\n";
constexpr char kCsvS[] = "c,d\n2,p\n3,q\n";

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "perf_service: %s\n", what.c_str());
  std::abort();
}

class Client {
 public:
  explicit Client(uint16_t port) {
    auto channel = TcpConnect("127.0.0.1", port);
    if (!channel.ok()) Die(channel.status().ToString());
    channel_ = std::move(*channel);
  }

  Json Call(Json request) {
    request.Set("id", Json::Int(next_id_++));
    if (!channel_->WriteLine(request.Dump()).ok()) Die("write failed");
    auto line = channel_->ReadLine();
    if (!line.ok()) Die("connection lost");
    auto parsed = Json::Parse(*line);
    if (!parsed.ok()) Die("bad response: " + *line);
    return *parsed;
  }

  Json MustCall(Json request) {
    Json response = Call(std::move(request));
    if (!response.GetBool("ok")) Die("error response: " + response.Dump());
    const Json* result = response.Find("result");
    return result != nullptr ? *result : Json::MakeObject();
  }

 private:
  std::unique_ptr<SocketChannel> channel_;
  int64_t next_id_ = 1;
};

Json Command(const char* cmd, const std::string& session = "") {
  Json request = Json::MakeObject();
  request.Set("cmd", Json::Str(cmd));
  if (!session.empty()) request.Set("session", Json::Str(session));
  return request;
}

// Drives one session start to finish; appends each question round trip
// (seconds) to `latencies`.
void DriveSession(Client* client, std::vector<double>* latencies) {
  std::string session = client->MustCall(Command("create")).GetString("session");

  Json load_ddl = Command("load_ddl", session);
  load_ddl.Set("sql", Json::Str(kDdl));
  client->MustCall(std::move(load_ddl));
  for (const auto& [relation, csv] :
       {std::pair<const char*, const char*>{"R", kCsvR}, {"S", kCsvS}}) {
    Json load_csv = Command("load_csv", session);
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(csv));
    client->MustCall(std::move(load_csv));
  }
  Json add_joins = Command("add_joins", session);
  Json joins = Json::MakeArray();
  Json join = Json::MakeObject();
  join.Set("left", Json::Str("R"));
  Json left_attrs = Json::MakeArray();
  left_attrs.Append(Json::Str("a"));
  join.Set("left_attrs", std::move(left_attrs));
  join.Set("right", Json::Str("S"));
  Json right_attrs = Json::MakeArray();
  right_attrs.Append(Json::Str("c"));
  join.Set("right_attrs", std::move(right_attrs));
  joins.Append(std::move(join));
  add_joins.Set("joins", std::move(joins));
  client->MustCall(std::move(add_joins));
  client->MustCall(Command("run", session));

  while (true) {
    Json wait = Command("wait", session);
    wait.Set("for", Json::Str("question"));
    wait.Set("timeout_ms", Json::Int(5000));
    Json waited = client->MustCall(std::move(wait));
    std::string state = waited.GetString("state");
    if (state == "done" || state == "failed") break;
    if (waited.GetInt("pending") == 0) continue;

    // The round trip starts the moment the wait reports a question.
    Clock::time_point asked = Clock::now();
    Json listed = client->MustCall(Command("questions", session));
    for (const Json& question : listed.Find("questions")->array()) {
      Json answer = Command("answer", session);
      answer.Set("question", Json::Int(question.GetInt("qid")));
      answer.Set("action", Json::Str("ignore"));
      Json response = client->Call(std::move(answer));
      if (response.GetBool("ok")) {
        latencies->push_back(
            std::chrono::duration<double>(Clock::now() - asked).count());
      } else if (response.Find("error")->GetString("code") !=
                 "failed_precondition") {
        // Benign race only: the question resolved between the wait and
        // the answer (e.g. a stale pending count). Anything else is real.
        Die("error response: " + response.Dump());
      }
    }
  }

  client->MustCall(Command("report", session));
  client->MustCall(Command("close", session));
}

struct LevelResult {
  int clients = 0;
  int sessions = 0;
  size_t questions = 0;
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<double>* values, double fraction) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t index = static_cast<size_t>(fraction * (values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

LevelResult RunLevel(uint16_t port, int clients, int sessions_per_client) {
  std::mutex mutex;
  std::vector<double> all_latencies;
  Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client(port);
      std::vector<double> latencies;
      for (int s = 0; s < sessions_per_client; ++s) {
        DriveSession(&client, &latencies);
      }
      std::lock_guard<std::mutex> lock(mutex);
      all_latencies.insert(all_latencies.end(), latencies.begin(),
                           latencies.end());
    });
  }
  for (std::thread& thread : threads) thread.join();

  LevelResult result;
  result.clients = clients;
  result.sessions = clients * sessions_per_client;
  result.questions = all_latencies.size();
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  result.sessions_per_sec = result.sessions / result.wall_s;
  result.p50_us = Percentile(&all_latencies, 0.50) * 1e6;
  result.p99_us = Percentile(&all_latencies, 0.99) * 1e6;
  return result;
}

ServerOptions BenchServerOptions(const std::string& worker_id = "",
                                 const std::string& data_dir = "") {
  ServerOptions options;
  options.sessions.max_sessions = 256;
  options.sessions.max_inflight_runs = 64;
  options.sessions.max_queued_runs = 256;
  options.sessions.worker_id = worker_id;
  options.sessions.data_dir = data_dir;
  return options;
}

Json LevelJson(const LevelResult& r) {
  Json level = Json::MakeObject();
  level.Set("clients", Json::Int(r.clients));
  level.Set("sessions", Json::Int(r.sessions));
  level.Set("questions", Json::Int(static_cast<int64_t>(r.questions)));
  level.Set("wall_s", Json::Number(r.wall_s));
  level.Set("sessions_per_sec", Json::Number(r.sessions_per_sec));
  level.Set("question_rtt_p50_us", Json::Number(r.p50_us));
  level.Set("question_rtt_p99_us", Json::Number(r.p99_us));
  return level;
}

void PrintLevel(const char* label, int workers, const LevelResult& r) {
  std::fprintf(stderr,
               "%-16s workers=%d clients=%2d  sessions/s=%8.1f  "
               "rtt p50=%7.1fus  p99=%7.1fus\n",
               label, workers, r.clients, r.sessions_per_sec, r.p50_us,
               r.p99_us);
}

// A dbred worker living in this process behind the epoll transport — the
// router only sees host:port, exactly as with a forked dbre_serve.
struct BenchWorker {
  std::unique_ptr<Server> server;
  std::unique_ptr<EventLoopTransport> transport;
};

BenchWorker StartBenchWorker(const std::string& worker_id,
                             const std::string& data_dir = "") {
  BenchWorker worker;
  worker.server =
      std::make_unique<Server>(BenchServerOptions(worker_id, data_dir));
  worker.transport =
      std::make_unique<EventLoopTransport>(worker.server.get());
  if (!worker.transport->Start(0).ok()) Die("worker cannot bind loopback");
  return worker;
}

void StopBenchWorker(BenchWorker* worker) {
  worker->transport->Stop();
  worker->server->sessions()->Shutdown();
}

// Runs the 1/8/32-client ladder against `port` (warming up first),
// appending one level object per client count to `out`.
void RunLadder(const char* label, int workers, uint16_t port,
               int sessions_per_client, Json* out) {
  {
    Client warm(port);
    std::vector<double> scratch;
    DriveSession(&warm, &scratch);
  }
  for (int clients : {1, 8, 32}) {
    LevelResult r = RunLevel(port, clients, sessions_per_client);
    Json level = LevelJson(r);
    if (workers > 0) level.Set("workers", Json::Int(workers));
    out->Append(std::move(level));
    PrintLevel(label, workers, r);
  }
}

// Migration latency: a loaded session bounced between two store-backed
// workers via the router's `migrate` (detach → journal replay → restore).
Json RunMigrationBench(int migrations) {
  std::string data_dir = "/tmp/perf_service_migrate.XXXXXX";
  if (::mkdtemp(data_dir.data()) == nullptr) Die("mkdtemp failed");

  std::vector<BenchWorker> workers;
  workers.push_back(StartBenchWorker("bw1", data_dir));
  workers.push_back(StartBenchWorker("bw2", data_dir));
  std::vector<RouterWorkerConfig> configs = {
      {"bw1", "127.0.0.1", workers[0].transport->port()},
      {"bw2", "127.0.0.1", workers[1].transport->port()},
  };
  RouterOptions options;
  options.health_interval_ms = 0;  // nothing dies here; keep timing clean
  Router router(configs, options);
  if (!router.Start(0).ok()) Die("router cannot bind loopback");

  Client client(router.port());
  Json create = Command("create");
  create.Set("name", Json::Str("mig"));
  client.MustCall(std::move(create));
  Json load_ddl = Command("load_ddl", "mig");
  load_ddl.Set("sql", Json::Str(kDdl));
  client.MustCall(std::move(load_ddl));
  for (const auto& [relation, csv] :
       {std::pair<const char*, const char*>{"R", kCsvR}, {"S", kCsvS}}) {
    Json load_csv = Command("load_csv", "mig");
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(csv));
    client.MustCall(std::move(load_csv));
  }

  std::vector<double> rtt;          // client-observed migrate round trip
  std::vector<double> internal_us;  // router detach→restore span
  const char* targets[] = {"bw2", "bw1"};
  for (int i = 0; i < migrations; ++i) {
    Json migrate = Command("migrate", "mig");
    migrate.Set("to", Json::Str(targets[i % 2]));
    Clock::time_point start = Clock::now();
    Json moved = client.MustCall(std::move(migrate));
    rtt.push_back(
        std::chrono::duration<double>(Clock::now() - start).count());
    internal_us.push_back(static_cast<double>(moved.GetInt("duration_us")));
  }
  client.MustCall(Command("status", "mig"));
  client.MustCall(Command("close", "mig"));
  router.Stop();
  for (BenchWorker& worker : workers) StopBenchWorker(&worker);
  std::error_code ec;
  std::filesystem::remove_all(data_dir, ec);

  double rtt_p50 = Percentile(&rtt, 0.50) * 1e6;
  double rtt_p99 = Percentile(&rtt, 0.99) * 1e6;
  double inner_p50 = Percentile(&internal_us, 0.50);
  double inner_p99 = Percentile(&internal_us, 0.99);
  Json result = Json::MakeObject();
  result.Set("migrations", Json::Int(migrations));
  result.Set("rtt_p50_us", Json::Number(rtt_p50));
  result.Set("rtt_p99_us", Json::Number(rtt_p99));
  result.Set("detach_restore_p50_us", Json::Number(inner_p50));
  result.Set("detach_restore_p99_us", Json::Number(inner_p99));
  std::fprintf(stderr,
               "migrate          n=%d  rtt p50=%7.1fus  p99=%7.1fus  "
               "(detach+restore p50=%7.1fus)\n",
               migrations, rtt_p50, rtt_p99, inner_p50);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int sessions_per_client = 25;
  if (argc > 1) sessions_per_client = std::atoi(argv[1]);

  Json doc = Json::MakeObject();
  doc.Set("benchmark", Json::Str("perf_service"));
  doc.Set("description",
          Json::Str("dbred daemon over loopback TCP: full scripted "
                    "sessions (create/load/run/answer one NEI "
                    "question/report/close) per client; question round "
                    "trip = wait(for=question) reporting a pending "
                    "question through answer acknowledgment. Cluster "
                    "levels drive the same workload through dbre_router "
                    "over 1/2/4 epoll workers; migration is the router's "
                    "detach→restore pair over a shared data dir."));
  doc.Set("sessions_per_client", Json::Int(sessions_per_client));
  doc.Set("hardware_concurrency",
          Json::Int(static_cast<int64_t>(
              std::thread::hardware_concurrency())));

  // 1. The thread-per-connection TcpServer (the original baseline).
  {
    Server server(BenchServerOptions());
    TcpServer tcp(&server);
    if (!tcp.Start(0).ok()) Die("cannot bind loopback");
    Json levels = Json::MakeArray();
    RunLadder("tcp-thread", 0, tcp.port(), sessions_per_client, &levels);
    doc.Set("levels", std::move(levels));
    tcp.Stop();
    server.sessions()->Shutdown();
  }

  // 2. The same Server behind the epoll event-loop transport.
  {
    Server server(BenchServerOptions());
    EventLoopTransport transport(&server);
    if (!transport.Start(0).ok()) Die("cannot bind loopback");
    Json levels = Json::MakeArray();
    RunLadder("epoll", 0, transport.port(), sessions_per_client, &levels);
    doc.Set("epoll_levels", std::move(levels));
    transport.Stop();
    server.sessions()->Shutdown();
  }

  // 3. Router-fronted fleets: 1, 2 and 4 workers.
  Json cluster_levels = Json::MakeArray();
  for (int n : {1, 2, 4}) {
    std::vector<BenchWorker> workers;
    std::vector<RouterWorkerConfig> configs;
    for (int i = 0; i < n; ++i) {
      std::string id = "cw" + std::to_string(i + 1);
      workers.push_back(StartBenchWorker(id));
      configs.push_back({id, "127.0.0.1", workers.back().transport->port()});
    }
    RouterOptions options;
    options.health_interval_ms = 0;
    Router router(configs, options);
    if (!router.Start(0).ok()) Die("router cannot bind loopback");
    RunLadder("router", n, router.port(), sessions_per_client,
              &cluster_levels);
    router.Stop();
    for (BenchWorker& worker : workers) StopBenchWorker(&worker);
  }
  doc.Set("cluster_levels", std::move(cluster_levels));

  // 4. Migration latency.
  doc.Set("migration", RunMigrationBench(32));

  std::printf("%s\n", doc.Dump().c_str());
  return 0;
}
