// Ablation A2: the NEI decision policy. The paper delegates non-empty
// intersections to the expert; unattended runs need a policy. We sweep the
// ThresholdOracle's conceptualize/force thresholds on a corrupted database
// and report what each policy elicits and how it scores.
#include <cstdio>

#include "core/pipeline.h"
#include "workload/generator.h"
#include "workload/metrics.h"

int main() {
  dbre::workload::SyntheticSpec spec;
  spec.num_entities = 8;
  spec.num_merged = 4;
  spec.rows_per_entity = 400;
  spec.orphan_rate = 0.1;  // every link becomes an NEI
  spec.seed = 13;
  auto generated = dbre::workload::GenerateSynthetic(spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  std::printf("A2 — NEI policy sweep on a 10%%-orphaned extension\n");
  std::printf(
      "policy                         INDs  forced  conceptualized  "
      "ignored  IND-recall  IND-precision\n");

  struct Policy {
    const char* name;
    double conceptualize;
    double force;
  };
  const Policy policies[] = {
      {"ignore-all (paper vii)", 2.0, 2.0},
      {"force >= 0.9 overlap", 2.0, 0.9},
      {"force >= 0.5 overlap", 2.0, 0.5},
      {"force >= 0.1 overlap", 2.0, 0.1},
      {"conceptualize >= 0.8", 0.8, 2.0},
      {"conceptualize >= 0.5", 0.5, 2.0},
  };
  for (const Policy& policy : policies) {
    dbre::ThresholdOracle::Options options;
    options.nei_conceptualize_ratio = policy.conceptualize;
    options.nei_force_ratio = policy.force;
    options.accept_hidden_objects = true;
    dbre::ThresholdOracle oracle(options);
    auto report =
        dbre::RunPipeline(generated->database, generated->queries, &oracle);
    if (!report.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    size_t forced = 0, conceptualized = 0, ignored = 0;
    for (const dbre::JoinOutcome& outcome : report->ind.outcomes) {
      switch (outcome.kind) {
        case dbre::JoinOutcomeKind::kNeiForced: ++forced; break;
        case dbre::JoinOutcomeKind::kNeiConceptualized:
          ++conceptualized;
          break;
        case dbre::JoinOutcomeKind::kNeiIgnored: ++ignored; break;
        default: break;
      }
    }
    dbre::workload::PrecisionRecall pr = dbre::workload::CompareInds(
        report->ind.inds, generated->true_inds);
    std::printf("%-30s %4zu  %6zu  %14zu  %7zu  %10.3f  %13.3f\n",
                policy.name, report->ind.inds.size(), forced,
                conceptualized, ignored, pr.Recall(), pr.Precision());
  }
  std::printf(
      "\nReading: forcing recovers the dirty links as the paper's cases "
      "(v)/(vi);\nconceptualizing instead materializes intersection "
      "relations (case (iv)),\nwhich count as extra (unplanted) INDs — "
      "precision reflects that modeling\nchoice rather than an error.\n");
  return 0;
}
