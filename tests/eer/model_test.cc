#include <gtest/gtest.h>

#include "eer/dot_export.h"
#include "eer/model.h"

namespace dbre::eer {
namespace {

EntityType Entity(const std::string& name) {
  EntityType entity;
  entity.name = name;
  entity.attributes = AttributeSet{"id", "x"};
  entity.identifier = AttributeSet{"id"};
  return entity;
}

RelationshipType Binary(const std::string& name, const std::string& a,
                        const std::string& b) {
  RelationshipType relationship;
  relationship.name = name;
  relationship.roles.push_back(Role{a, Cardinality::kMany, ""});
  relationship.roles.push_back(Role{b, Cardinality::kOne, ""});
  return relationship;
}

TEST(EerModelTest, AddAndLookupEntities) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A")).ok());
  EXPECT_TRUE(schema.HasEntity("A"));
  EXPECT_FALSE(schema.HasEntity("B"));
  EXPECT_EQ(schema.AddEntity(Entity("A")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.GetEntity("B").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(schema.AddEntity(EntityType{}).ok());
}

TEST(EerModelTest, RelationshipValidation) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A")).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("B")).ok());
  ASSERT_TRUE(schema.AddRelationship(Binary("r", "A", "B")).ok());
  EXPECT_EQ(schema.AddRelationship(Binary("r", "A", "B")).code(),
            StatusCode::kAlreadyExists);
  RelationshipType unary;
  unary.name = "u";
  unary.roles.push_back(Role{"A", Cardinality::kMany, ""});
  EXPECT_EQ(schema.AddRelationship(std::move(unary)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(EerModelTest, RoleNamesDefaultToEntity) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A")).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("B")).ok());
  ASSERT_TRUE(schema.AddRelationship(Binary("r", "A", "B")).ok());
  EXPECT_EQ(schema.relationships()[0].roles[0].role_name, "A");
}

TEST(EerModelTest, IsALinkRules) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A")).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("B")).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  EXPECT_EQ(schema.AddIsA(IsALink{"A", "B"}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddIsA(IsALink{"A", "A"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(EerModelTest, ValidateCatchesDanglingReferences) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A")).ok());
  ASSERT_TRUE(schema.AddRelationship(Binary("r", "A", "Ghost")).ok());
  EXPECT_EQ(schema.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(EerModelTest, ValidateCatchesIsolatedWeakEntity) {
  EerSchema schema;
  EntityType weak = Entity("W");
  weak.weak = true;
  ASSERT_TRUE(schema.AddEntity(std::move(weak)).ok());
  EXPECT_EQ(schema.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(EerModelTest, ManyToManyDetection) {
  RelationshipType rel = Binary("r", "A", "B");
  EXPECT_FALSE(rel.IsManyToMany());
  rel.roles[1].cardinality = Cardinality::kMany;
  EXPECT_TRUE(rel.IsManyToMany());
}

TEST(EerModelTest, ToTextListsEverything) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A")).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("B")).ok());
  ASSERT_TRUE(schema.AddRelationship(Binary("works", "A", "B")).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  std::string text = schema.ToText();
  EXPECT_NE(text.find("entity A"), std::string::npos);
  EXPECT_NE(text.find("relationship works(A:N, B:1)"), std::string::npos);
  EXPECT_NE(text.find("A is-a B"), std::string::npos);
}

TEST(DotExportTest, RendersShapesAndEdges) {
  EerSchema schema;
  EntityType weak = Entity("W");
  weak.weak = true;
  ASSERT_TRUE(schema.AddEntity(Entity("A")).ok());
  ASSERT_TRUE(schema.AddEntity(std::move(weak)).ok());
  ASSERT_TRUE(schema.AddRelationship(Binary("owns", "A", "W")).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"W", "A"}).ok());
  std::string dot = ToDot(schema);
  EXPECT_NE(dot.find("graph eer {"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("arrowhead=\"veevee\""), std::string::npos);
  // Identifier attributes are starred in labels.
  EXPECT_NE(dot.find("id*"), std::string::npos);
}

TEST(DotExportTest, QuotingHandlesSpecialNames) {
  EerSchema schema;
  EntityType entity;
  entity.name = "Ass-Dept";
  entity.attributes = AttributeSet{"dep"};
  ASSERT_TRUE(schema.AddEntity(std::move(entity)).ok());
  std::string dot = ToDot(schema);
  EXPECT_NE(dot.find("\"Ass-Dept\""), std::string::npos);
}

TEST(DotExportTest, WritesFile) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A")).ok());
  std::string path = ::testing::TempDir() + "/dbre_eer_test.dot";
  EXPECT_TRUE(WriteDotFile(schema, path).ok());
  EXPECT_FALSE(WriteDotFile(schema, "/nonexistent/dir/x.dot").ok());
}

}  // namespace
}  // namespace dbre::eer
