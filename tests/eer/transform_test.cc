#include "eer/transform.h"

#include <gtest/gtest.h>

namespace dbre::eer {
namespace {

EntityType Entity(const std::string& name,
                  std::initializer_list<std::string> attributes) {
  EntityType entity;
  entity.name = name;
  entity.attributes = AttributeSet(attributes);
  return entity;
}

TEST(MergeIsACyclesTest, NoCyclesIsNoOp) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A", {"x"})).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("B", {"y"})).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  auto report = MergeIsACycles(&schema);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cycles_merged, 0u);
  EXPECT_EQ(schema.entities().size(), 2u);
  EXPECT_EQ(schema.isa_links().size(), 1u);
}

TEST(MergeIsACyclesTest, TwoCycleCollapses) {
  // A is-a B and B is-a A (equal key value sets): same object.
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("B", {"id", "b_attr"})).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("A", {"id", "a_attr"})).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"B", "A"}).ok());
  auto report = MergeIsACycles(&schema);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cycles_merged, 1u);
  ASSERT_EQ(schema.entities().size(), 1u);
  const EntityType& merged = schema.entities()[0];
  EXPECT_EQ(merged.name, "A");  // lexicographically smallest survives
  EXPECT_EQ(merged.attributes, (AttributeSet{"a_attr", "b_attr", "id"}));
  EXPECT_TRUE(schema.isa_links().empty());
  EXPECT_EQ(report->absorbed.at("B"), "A");
}

TEST(MergeIsACyclesTest, RelationshipRolesRedirected) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A", {"id"})).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("B", {"id"})).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("C", {"id"})).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"B", "A"}).ok());
  RelationshipType rel;
  rel.name = "r";
  rel.roles.push_back(Role{"B", Cardinality::kMany, ""});
  rel.roles.push_back(Role{"C", Cardinality::kOne, ""});
  ASSERT_TRUE(schema.AddRelationship(std::move(rel)).ok());

  auto report = MergeIsACycles(&schema);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(schema.relationships().size(), 1u);
  EXPECT_EQ(schema.relationships()[0].roles[0].entity, "A");
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(MergeIsACyclesTest, ThreeCycleAndExternalLinksSurvive) {
  EerSchema schema;
  for (const char* name : {"A", "B", "C", "Outside", "Super"}) {
    ASSERT_TRUE(schema.AddEntity(Entity(name, {"id"})).ok());
  }
  // Cycle A → B → C → A.
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"B", "C"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"C", "A"}).ok());
  // External links in and out of the cycle.
  ASSERT_TRUE(schema.AddIsA(IsALink{"Outside", "B"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"C", "Super"}).ok());

  auto report = MergeIsACycles(&schema);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cycles_merged, 1u);
  EXPECT_EQ(schema.entities().size(), 3u);  // A, Outside, Super
  // Remaining is-a: Outside → A, A → Super.
  ASSERT_EQ(schema.isa_links().size(), 2u);
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(MergeIsACyclesTest, TwoIndependentCycles) {
  EerSchema schema;
  for (const char* name : {"A", "B", "X", "Y"}) {
    ASSERT_TRUE(schema.AddEntity(Entity(name, {"id"})).ok());
  }
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"B", "A"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"X", "Y"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"Y", "X"}).ok());
  auto report = MergeIsACycles(&schema);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cycles_merged, 2u);
  EXPECT_EQ(schema.entities().size(), 2u);
}

TEST(MergeIsACyclesTest, WeaknessPropagates) {
  EerSchema schema;
  EntityType weak = Entity("B", {"id"});
  weak.weak = true;
  ASSERT_TRUE(schema.AddEntity(Entity("A", {"id"})).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("C", {"id"})).ok());
  ASSERT_TRUE(schema.AddEntity(std::move(weak)).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"B", "A"}).ok());
  // Keep the weak entity attached so validation passes after the merge.
  RelationshipType rel;
  rel.name = "owner";
  rel.roles.push_back(Role{"B", Cardinality::kMany, ""});
  rel.roles.push_back(Role{"C", Cardinality::kOne, ""});
  ASSERT_TRUE(schema.AddRelationship(std::move(rel)).ok());

  auto report = MergeIsACycles(&schema);
  ASSERT_TRUE(report.ok());
  auto merged = schema.GetEntity("A");
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE((*merged.value()).weak);
}

TEST(DiscriminatorSubtypesTest, AddsSubtypesWithIsA) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("Members", {"id", "status"})).ok());
  std::vector<SpecializationHint> hints = {
      {"Members", "status", {"active", "barred"}}};
  auto report = AddDiscriminatorSubtypes(&schema, hints);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->subtypes_added, 2u);
  EXPECT_TRUE(schema.HasEntity("Members_active"));
  EXPECT_TRUE(schema.HasEntity("Members_barred"));
  ASSERT_EQ(schema.isa_links().size(), 2u);
  EXPECT_EQ(schema.isa_links()[0].supertype, "Members");
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(DiscriminatorSubtypesTest, UnknownEntitySkipped) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A", {"x"})).ok());
  std::vector<SpecializationHint> hints = {{"Ghost", "k", {"v"}}};
  auto report = AddDiscriminatorSubtypes(&schema, hints);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->subtypes_added, 0u);
  EXPECT_EQ(schema.entities().size(), 1u);
}

TEST(DiscriminatorSubtypesTest, Idempotent) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A", {"k"})).ok());
  std::vector<SpecializationHint> hints = {{"A", "k", {"v1", "v2"}}};
  ASSERT_TRUE(AddDiscriminatorSubtypes(&schema, hints).ok());
  auto second = AddDiscriminatorSubtypes(&schema, hints);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->subtypes_added, 0u);
  EXPECT_EQ(schema.entities().size(), 3u);
}

TEST(DiscriminatorSubtypesTest, NullSchemaRejected) {
  EXPECT_FALSE(AddDiscriminatorSubtypes(nullptr, {}).ok());
}

TEST(MergeIsACyclesTest, NullSchemaRejected) {
  EXPECT_FALSE(MergeIsACycles(nullptr).ok());
}

TEST(MergeIsACyclesTest, Idempotent) {
  EerSchema schema;
  ASSERT_TRUE(schema.AddEntity(Entity("A", {"x"})).ok());
  ASSERT_TRUE(schema.AddEntity(Entity("B", {"y"})).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"A", "B"}).ok());
  ASSERT_TRUE(schema.AddIsA(IsALink{"B", "A"}).ok());
  ASSERT_TRUE(MergeIsACycles(&schema).ok());
  auto second = MergeIsACycles(&schema);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cycles_merged, 0u);
  EXPECT_EQ(schema.entities().size(), 1u);
}

}  // namespace
}  // namespace dbre::eer
