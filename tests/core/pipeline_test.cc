// Pipeline-level behaviours: the report summary, dictionary-less key
// inference, and cyclic-IND handling through Translate.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sql/ddl.h"

namespace dbre {
namespace {

// Two relations over the same id domain (equal value sets) plus a child.
Database MakeCyclicDatabase(bool declare_keys) {
  Database db;
  for (const char* name : {"Clients", "Accounts"}) {
    RelationSchema schema(name);
    EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
    EXPECT_TRUE(
        schema.AddAttribute(std::string(name) + "_info", DataType::kString)
            .ok());
    if (declare_keys) {
      EXPECT_TRUE(schema.DeclareUnique({"id"}).ok());
    }
    EXPECT_TRUE(db.CreateRelation(std::move(schema)).ok());
  }
  for (const char* name : {"Clients", "Accounts"}) {
    Table* table = *db.GetMutableTable(name);
    for (int64_t i = 1; i <= 20; ++i) {
      EXPECT_TRUE(table
                      ->Insert({Value::Int(i),
                                Value::Text(std::string(name) + "_" +
                                            std::to_string(i))})
                      .ok());
    }
  }
  return db;
}

TEST(PipelineTest, CyclicIndsGiveMutualIsA) {
  Database db = MakeCyclicDatabase(/*declare_keys=*/true);
  DefaultOracle oracle;
  std::vector<EquiJoin> joins = {
      EquiJoin::Single("Clients", "id", "Accounts", "id")};
  auto report = RunPipeline(db, joins, &oracle);
  ASSERT_TRUE(report.ok()) << report.status();
  // Equal value sets → both INDs → both is-a directions.
  EXPECT_EQ(report->ind.inds.size(), 2u);
  EXPECT_EQ(report->eer.isa_links().size(), 2u);
}

TEST(PipelineTest, MergeIsACyclesOptionCollapsesThem) {
  Database db = MakeCyclicDatabase(true);
  DefaultOracle oracle;
  std::vector<EquiJoin> joins = {
      EquiJoin::Single("Clients", "id", "Accounts", "id")};
  PipelineOptions options;
  options.translate.merge_isa_cycles = true;
  auto report = RunPipeline(db, joins, &oracle, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->eer.isa_links().empty());
  EXPECT_EQ(report->eer.entities().size(), 1u);
  const eer::EntityType& merged = report->eer.entities()[0];
  EXPECT_EQ(merged.name, "Accounts");
  EXPECT_TRUE(merged.attributes.Contains("Clients_info"));
  EXPECT_TRUE(merged.attributes.Contains("Accounts_info"));
}

TEST(PipelineTest, InfersMissingKeysFromData) {
  Database db = MakeCyclicDatabase(/*declare_keys=*/false);
  DefaultOracle oracle;
  std::vector<EquiJoin> joins = {
      EquiJoin::Single("Clients", "id", "Accounts", "id")};

  // Without inference no keys exist, so K is empty and the elicited INDs
  // target non-key attributes. (RICs can still appear later: with no key
  // to prune, RHS-Discovery finds id → info and Restruct keys the split
  // relations it creates.)
  auto plain = RunPipeline(db, joins, &oracle);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->key_set.empty());
  for (const InclusionDependency& ind : plain->ind.inds) {
    EXPECT_FALSE(IsKeyBased(db, ind)) << ind.ToString();
  }

  PipelineOptions options;
  options.infer_missing_keys = true;
  auto inferred = RunPipeline(db, joins, &oracle, options);
  ASSERT_TRUE(inferred.ok()) << inferred.status();
  // Both relations got a mined key — and the join-guided heuristic picked
  // {id} (also-unique info columns lose to the navigated attribute).
  ASSERT_EQ(inferred->key_set.size(), 2u);
  EXPECT_EQ(inferred->key_set[0].attributes, AttributeSet{"id"});
  EXPECT_EQ(inferred->key_set[1].attributes, AttributeSet{"id"});
  // The elicited INDs are now key-based: they survive as RICs directly.
  EXPECT_FALSE(inferred->restruct.rics.empty());
}

TEST(PipelineTest, InferenceKeepsDeclaredKeys) {
  Database db = MakeCyclicDatabase(true);
  DefaultOracle oracle;
  PipelineOptions options;
  options.infer_missing_keys = true;
  auto report = RunPipeline(
      db, {EquiJoin::Single("Clients", "id", "Accounts", "id")}, &oracle,
      options);
  ASSERT_TRUE(report.ok());
  // Nothing new declared: both relations already had keys.
  EXPECT_EQ(report->key_set.size(), 2u);
}

TEST(PipelineTest, SummaryMentionsEveryPhase) {
  Database db = MakeCyclicDatabase(true);
  DefaultOracle oracle;
  auto report = RunPipeline(
      db, {EquiJoin::Single("Clients", "id", "Accounts", "id")}, &oracle);
  ASSERT_TRUE(report.ok());
  std::string summary = report->Summary();
  for (const char* section :
       {"== K (keys from the dictionary) ==", "== N (not-null attributes)",
        "== Q (equi-joins", "== IND (inclusion dependencies)",
        "== LHS (candidate FD left-hand sides)",
        "== F (elicited functional dependencies)", "== H (hidden objects)",
        "== Restructured schema ==", "== RIC (referential integrity",
        "== EER schema =="}) {
    EXPECT_NE(summary.find(section), std::string::npos) << section;
  }
}

TEST(PipelineTest, IndClosureDerivesTransitiveLinks) {
  // Three relations over nested id domains; programs only join A-B and
  // B-C. Closure derives A-C.
  Database db;
  for (const char* name : {"A", "B", "C"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
    ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  }
  int64_t limit = 10;
  for (const char* name : {"A", "B", "C"}) {
    Table* table = *db.GetMutableTable(name);
    for (int64_t i = 1; i <= limit; ++i) {
      ASSERT_TRUE(table->Insert({Value::Int(i)}).ok());
    }
    limit += 5;  // A ⊂ B ⊂ C
  }
  DefaultOracle oracle;
  std::vector<EquiJoin> joins = {EquiJoin::Single("A", "id", "B", "id"),
                                 EquiJoin::Single("B", "id", "C", "id")};
  auto plain = RunPipeline(db, joins, &oracle);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->ind.inds.size(), 2u);

  PipelineOptions options;
  options.close_inds = true;
  auto closed = RunPipeline(db, joins, &oracle, options);
  ASSERT_TRUE(closed.ok());
  ASSERT_EQ(closed->ind.inds.size(), 3u);
  InclusionDependency derived = InclusionDependency::Single("A", "id", "C",
                                                            "id");
  EXPECT_NE(std::find(closed->ind.inds.begin(), closed->ind.inds.end(),
                      derived),
            closed->ind.inds.end());
  // The derived IND actually holds (closure is sound on real extensions).
  EXPECT_TRUE(*Satisfies(db, derived));
}

TEST(PipelineTest, NullOracleRejected) {
  Database db = MakeCyclicDatabase(true);
  EXPECT_FALSE(RunPipeline(db, {}, nullptr).ok());
}

TEST(PipelineTest, EmptyWorkloadStillRestructures) {
  Database db = MakeCyclicDatabase(true);
  DefaultOracle oracle;
  auto report = RunPipeline(db, {}, &oracle);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ind.inds.empty());
  EXPECT_TRUE(report->rhs.fds.empty());
  // The schema survives untouched.
  EXPECT_EQ(report->restruct.database.NumRelations(), 2u);
  EXPECT_EQ(report->eer.entities().size(), 2u);
}

TEST(PipelineTest, TranslateCanBeSkipped) {
  Database db = MakeCyclicDatabase(true);
  DefaultOracle oracle;
  PipelineOptions options;
  options.run_translate = false;
  auto report = RunPipeline(
      db, {EquiJoin::Single("Clients", "id", "Accounts", "id")}, &oracle,
      options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->eer.entities().empty());
}

}  // namespace
}  // namespace dbre
