#include <gtest/gtest.h>

#include "core/restruct.h"
#include "core/translate.h"
#include "deps/fd_miner.h"
#include "deps/normal_forms.h"

namespace dbre {
namespace {

// Sales(id*, prod, prod_name, region): prod → prod_name.
Database MakeSalesDatabase() {
  Database db;
  RelationSchema sales("Sales");
  EXPECT_TRUE(sales.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(sales.AddAttribute("prod", DataType::kInt64).ok());
  EXPECT_TRUE(sales.AddAttribute("prod_name", DataType::kString).ok());
  EXPECT_TRUE(sales.AddAttribute("region", DataType::kString).ok());
  EXPECT_TRUE(sales.DeclareUnique({"id"}).ok());
  EXPECT_TRUE(db.CreateRelation(std::move(sales)).ok());
  Table* table = *db.GetMutableTable("Sales");
  for (int64_t i = 1; i <= 12; ++i) {
    int64_t prod = i % 4;
    EXPECT_TRUE(table
                    ->Insert({Value::Int(i), Value::Int(prod),
                              Value::Text("p" + std::to_string(prod)),
                              Value::Text("r" + std::to_string(i % 3))})
                    .ok());
  }
  return db;
}

TEST(RestructTest, FdSplitCreatesRelationAndRemovesRhs) {
  Database db = MakeSalesDatabase();
  DefaultOracle oracle;
  FunctionalDependency fd("Sales", AttributeSet{"prod"},
                          AttributeSet{"prod_name"});
  auto result = Restruct(db, {fd}, {}, {}, &oracle);
  ASSERT_TRUE(result.ok()) << result.status();

  // New relation Sales_prod(prod*, prod_name) with 4 rows.
  ASSERT_TRUE(result->database.HasRelation("Sales_prod"));
  const Table& products = **result->database.GetTable("Sales_prod");
  EXPECT_EQ(products.num_rows(), 4u);
  EXPECT_TRUE(products.schema().IsKey(AttributeSet{"prod"}));
  EXPECT_TRUE(products.VerifyUniqueConstraints().ok());

  // Sales lost prod_name but kept prod.
  const Table& sales = **result->database.GetTable("Sales");
  EXPECT_FALSE(sales.schema().HasAttribute("prod_name"));
  EXPECT_TRUE(sales.schema().HasAttribute("prod"));
  EXPECT_EQ(sales.num_rows(), 12u);

  // IND Sales[prod] << Sales_prod[prod] added; it is a RIC and holds.
  ASSERT_EQ(result->rics.size(), 1u);
  EXPECT_EQ(result->rics[0].ToString(), "Sales[prod] << Sales_prod[prod]");
  EXPECT_TRUE(*Satisfies(result->database, result->rics[0]));
  EXPECT_EQ(result->provenance.at("Sales_prod"),
            "FD Sales: {prod} -> {prod_name}");
}

TEST(RestructTest, HiddenObjectCreatesKeyedRelation) {
  Database db = MakeSalesDatabase();
  DefaultOracle oracle;
  QualifiedAttributes hidden{"Sales", AttributeSet{"region"}};
  auto result = Restruct(db, {}, {hidden}, {}, &oracle);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->database.HasRelation("Sales_region"));
  const Table& regions = **result->database.GetTable("Sales_region");
  EXPECT_EQ(regions.num_rows(), 3u);
  EXPECT_TRUE(regions.schema().IsKey(AttributeSet{"region"}));
  // Sales keeps the attribute.
  EXPECT_TRUE(
      (**result->database.GetTable("Sales")).schema().HasAttribute("region"));
  ASSERT_EQ(result->rics.size(), 1u);
  EXPECT_EQ(result->rics[0].ToString(),
            "Sales[region] << Sales_region[region]");
}

TEST(RestructTest, OracleNamesNewRelations) {
  Database db = MakeSalesDatabase();
  ScriptedOracle oracle;
  oracle.ScriptFdRelationName("Sales: {prod} -> {prod_name}", "Product");
  FunctionalDependency fd("Sales", AttributeSet{"prod"},
                          AttributeSet{"prod_name"});
  auto result = Restruct(db, {fd}, {}, {}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->database.HasRelation("Product"));
}

TEST(RestructTest, IndRewritingFollowsMovedAttributes) {
  Database db = MakeSalesDatabase();
  // Second relation referencing Sales.prod.
  RelationSchema audit("Audit");
  ASSERT_TRUE(audit.AddAttribute("prod", DataType::kInt64).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(audit)).ok());
  Table* audit_table = *db.GetMutableTable("Audit");
  ASSERT_TRUE(audit_table->Insert({Value::Int(1)}).ok());

  DefaultOracle oracle;
  FunctionalDependency fd("Sales", AttributeSet{"prod"},
                          AttributeSet{"prod_name"});
  std::vector<InclusionDependency> inds = {
      InclusionDependency::Single("Audit", "prod", "Sales", "prod")};
  auto result = Restruct(db, {fd}, {}, inds, &oracle);
  ASSERT_TRUE(result.ok());
  // Audit[prod] << Sales[prod] was rewritten to target the new relation.
  bool found = false;
  for (const InclusionDependency& ind : result->inds) {
    if (ind.ToString() == "Audit[prod] << Sales_prod[prod]") found = true;
    EXPECT_NE(ind.ToString(), "Audit[prod] << Sales[prod]");
  }
  EXPECT_TRUE(found);
}

TEST(RestructTest, NameCollisionGetsSuffix) {
  Database db = MakeSalesDatabase();
  RelationSchema taken("Sales_prod");
  ASSERT_TRUE(taken.AddAttribute("x", DataType::kInt64).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(taken)).ok());
  DefaultOracle oracle;
  FunctionalDependency fd("Sales", AttributeSet{"prod"},
                          AttributeSet{"prod_name"});
  auto result = Restruct(db, {fd}, {}, {}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->database.HasRelation("Sales_prod_2"));
}

TEST(RestructTest, OverlappingFdsRejected) {
  Database db = MakeSalesDatabase();
  DefaultOracle oracle;
  // Both FDs move prod_name — the second must fail cleanly.
  FunctionalDependency fd1("Sales", AttributeSet{"prod"},
                           AttributeSet{"prod_name"});
  FunctionalDependency fd2("Sales", AttributeSet{"region"},
                           AttributeSet{"prod_name"});
  EXPECT_EQ(Restruct(db, {fd1, fd2}, {}, {}, &oracle).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RestructTest, ResultIs3NF) {
  // After splitting the FD out, both relations should classify as 3NF
  // under their mined dependencies.
  Database db = MakeSalesDatabase();
  DefaultOracle oracle;
  FunctionalDependency fd("Sales", AttributeSet{"prod"},
                          AttributeSet{"prod_name"});
  auto result = Restruct(db, {fd}, {}, {}, &oracle);
  ASSERT_TRUE(result.ok());
  for (const std::string& relation : result->database.RelationNames()) {
    const Table& table = **result->database.GetTable(relation);
    auto mined = MineFds(table);
    ASSERT_TRUE(mined.ok());
    EXPECT_TRUE(IsIn3NF(table.schema().AttributeNames(), *mined))
        << relation;
  }
}

TEST(TranslateTest, BinaryRelationshipFromNonKeyRic) {
  Database db = MakeSalesDatabase();
  DefaultOracle oracle;
  FunctionalDependency fd("Sales", AttributeSet{"prod"},
                          AttributeSet{"prod_name"});
  auto restructured = Restruct(db, {fd}, {}, {}, &oracle);
  ASSERT_TRUE(restructured.ok());
  auto eer = Translate(*restructured);
  ASSERT_TRUE(eer.ok()) << eer.status();
  EXPECT_TRUE(eer->HasEntity("Sales"));
  EXPECT_TRUE(eer->HasEntity("Sales_prod"));
  ASSERT_EQ(eer->relationships().size(), 1u);
  const eer::RelationshipType& rel = eer->relationships()[0];
  ASSERT_EQ(rel.roles.size(), 2u);
  EXPECT_EQ(rel.roles[0].entity, "Sales");
  EXPECT_EQ(rel.roles[0].cardinality, eer::Cardinality::kMany);
  EXPECT_EQ(rel.roles[1].entity, "Sales_prod");
  EXPECT_EQ(rel.roles[1].cardinality, eer::Cardinality::kOne);
}

TEST(TranslateTest, IsALinkFromKeyRic) {
  // Sub(id*) << Super(id*): subtype pattern.
  Database db;
  for (const char* name : {"Sub", "Super"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
    ASSERT_TRUE(schema.DeclareUnique({"id"}).ok());
    ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  }
  RestructResult restructured;
  restructured.database = db.Clone();
  restructured.rics = {InclusionDependency::Single("Sub", "id", "Super",
                                                   "id")};
  auto eer = Translate(restructured);
  ASSERT_TRUE(eer.ok());
  ASSERT_EQ(eer->isa_links().size(), 1u);
  EXPECT_EQ(eer->isa_links()[0].ToString(), "Sub is-a Super");
}

TEST(TranslateTest, WeakEntityFromPartialKeyRic) {
  // Hist(id*, ver*) with Hist[id] << Master[id].
  Database db;
  RelationSchema hist("Hist");
  ASSERT_TRUE(hist.AddAttribute("id", DataType::kInt64).ok());
  ASSERT_TRUE(hist.AddAttribute("ver", DataType::kInt64).ok());
  ASSERT_TRUE(hist.DeclareUnique({"id", "ver"}).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(hist)).ok());
  RelationSchema master("Master");
  ASSERT_TRUE(master.AddAttribute("id", DataType::kInt64).ok());
  ASSERT_TRUE(master.DeclareUnique({"id"}).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(master)).ok());

  RestructResult restructured;
  restructured.database = db.Clone();
  restructured.rics = {InclusionDependency::Single("Hist", "id", "Master",
                                                   "id")};
  auto eer = Translate(restructured);
  ASSERT_TRUE(eer.ok());
  EXPECT_TRUE((*eer->GetEntity("Hist"))->weak);
  ASSERT_EQ(eer->relationships().size(), 1u);
  const eer::RelationshipType& identifying = eer->relationships()[0];
  EXPECT_EQ(identifying.roles[0].entity, "Master");
  EXPECT_EQ(identifying.roles[0].cardinality, eer::Cardinality::kOne);
}

TEST(TranslateTest, TernaryRelationshipFromKeyPartition) {
  Database db;
  for (const char* name : {"A", "B", "C"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
    ASSERT_TRUE(schema.DeclareUnique({"id"}).ok());
    ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  }
  RelationSchema link("Link");
  ASSERT_TRUE(link.AddAttribute("a", DataType::kInt64).ok());
  ASSERT_TRUE(link.AddAttribute("b", DataType::kInt64).ok());
  ASSERT_TRUE(link.AddAttribute("c", DataType::kInt64).ok());
  ASSERT_TRUE(link.AddAttribute("note", DataType::kString).ok());
  ASSERT_TRUE(link.DeclareUnique({"a", "b", "c"}).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(link)).ok());

  RestructResult restructured;
  restructured.database = db.Clone();
  restructured.rics = {
      InclusionDependency::Single("Link", "a", "A", "id"),
      InclusionDependency::Single("Link", "b", "B", "id"),
      InclusionDependency::Single("Link", "c", "C", "id")};
  auto eer = Translate(restructured);
  ASSERT_TRUE(eer.ok()) << eer.status();
  EXPECT_FALSE(eer->HasEntity("Link"));
  ASSERT_EQ(eer->relationships().size(), 1u);
  const eer::RelationshipType& rel = eer->relationships()[0];
  EXPECT_EQ(rel.name, "Link");
  EXPECT_EQ(rel.roles.size(), 3u);
  EXPECT_TRUE(rel.IsManyToMany());
  EXPECT_EQ(rel.attributes, AttributeSet{"note"});
}

TEST(TranslateTest, PartialKeyCoverageIsNotAPartition) {
  // Only 2 of 3 key parts referenced → Link stays an entity (weak).
  Database db;
  for (const char* name : {"A", "B"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
    ASSERT_TRUE(schema.DeclareUnique({"id"}).ok());
    ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  }
  RelationSchema link("Link");
  ASSERT_TRUE(link.AddAttribute("a", DataType::kInt64).ok());
  ASSERT_TRUE(link.AddAttribute("b", DataType::kInt64).ok());
  ASSERT_TRUE(link.AddAttribute("c", DataType::kInt64).ok());
  ASSERT_TRUE(link.DeclareUnique({"a", "b", "c"}).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(link)).ok());

  RestructResult restructured;
  restructured.database = db.Clone();
  restructured.rics = {InclusionDependency::Single("Link", "a", "A", "id"),
                       InclusionDependency::Single("Link", "b", "B", "id")};
  auto eer = Translate(restructured);
  ASSERT_TRUE(eer.ok());
  EXPECT_TRUE(eer->HasEntity("Link"));
  EXPECT_TRUE((*eer->GetEntity("Link"))->weak);
}

}  // namespace
}  // namespace dbre
