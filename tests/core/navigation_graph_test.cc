#include "core/navigation_graph.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "workload/library_example.h"
#include "workload/paper_example.h"

namespace dbre {
namespace {

TEST(NavigationGraphTest, PaperExampleGraph) {
  auto database = workload::BuildPaperDatabase();
  ASSERT_TRUE(database.ok());
  auto oracle = workload::PaperOracle();
  auto report =
      RunPipeline(*database, workload::PaperJoinSet(), oracle.get());
  ASSERT_TRUE(report.ok());
  // The navigation graph draws against the working catalog, which includes
  // the conceptualized Ass-Dept — use the restructured database's parent
  // clone equivalent: re-run discovery on a clone for a self-contained
  // check.
  Database working = database->Clone();
  auto rerun_oracle = workload::PaperOracle();
  auto discovery =
      DiscoverInds(&working, workload::PaperJoinSet(), rerun_oracle.get());
  ASSERT_TRUE(discovery.ok());

  auto dot = NavigationGraphToDot(working, *discovery);
  ASSERT_TRUE(dot.ok()) << dot.status();
  EXPECT_NE(dot->find("digraph navigation {"), std::string::npos);
  // Conceptualized relation highlighted.
  EXPECT_NE(dot->find("\"Ass-Dept\" [style=filled"), std::string::npos);
  // An elicited IND edge with its attribute label.
  EXPECT_NE(dot->find("\"HEmployee\" -> \"Person\" [label=\"no << id\"]"),
            std::string::npos);
  // All paper INDs are satisfied → no dashed red edges.
  EXPECT_EQ(dot->find("style=dashed, color=red"), std::string::npos);
}

TEST(NavigationGraphTest, ForcedIndIsDashed) {
  auto database = workload::BuildLibraryDatabase();
  ASSERT_TRUE(database.ok());
  Database working = database->Clone();
  auto oracle = workload::LibraryOracle();
  auto discovery =
      DiscoverInds(&working, workload::LibraryJoinSet(), oracle.get());
  ASSERT_TRUE(discovery.ok());
  auto dot = NavigationGraphToDot(working, *discovery);
  ASSERT_TRUE(dot.ok());
  // The forced Loans → Members edge is marked unsatisfied.
  EXPECT_NE(dot->find("\"Loans\" -> \"Members\""), std::string::npos);
  EXPECT_NE(dot->find("style=dashed, color=red"), std::string::npos);
}

TEST(NavigationGraphTest, IgnoredJoinsAreDotted) {
  // A join over disjoint domains → empty intersection → dotted edge.
  Database db;
  for (const char* name : {"A", "B"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("x", DataType::kInt64).ok());
    ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  }
  Table* a = *db.GetMutableTable("A");
  Table* b = *db.GetMutableTable("B");
  ASSERT_TRUE(a->Insert({Value::Int(1)}).ok());
  ASSERT_TRUE(b->Insert({Value::Int(100)}).ok());
  DefaultOracle oracle;
  auto discovery =
      DiscoverInds(&db, {EquiJoin::Single("A", "x", "B", "x")}, &oracle);
  ASSERT_TRUE(discovery.ok());
  auto dot = NavigationGraphToDot(db, *discovery);
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("style=dotted, color=gray"), std::string::npos);
}

TEST(NavigationGraphTest, WritesFile) {
  Database db;
  IndDiscoveryResult empty;
  std::string path = ::testing::TempDir() + "/dbre_nav.dot";
  EXPECT_TRUE(WriteNavigationGraph(db, empty, path).ok());
  EXPECT_FALSE(
      WriteNavigationGraph(db, empty, "/nonexistent/x.dot").ok());
}

}  // namespace
}  // namespace dbre
