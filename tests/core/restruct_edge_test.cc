// Edge cases of Restruct and Translate beyond the happy paths.
#include <gtest/gtest.h>

#include "core/restruct.h"
#include "core/translate.h"

namespace dbre {
namespace {

Database MakeDb() {
  Database db;
  RelationSchema sales("Sales");
  EXPECT_TRUE(sales.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(sales.AddAttribute("a", DataType::kInt64).ok());
  EXPECT_TRUE(sales.AddAttribute("b", DataType::kInt64).ok());
  EXPECT_TRUE(sales.AddAttribute("payload", DataType::kString).ok());
  EXPECT_TRUE(sales.DeclareUnique({"id"}).ok());
  EXPECT_TRUE(db.CreateRelation(std::move(sales)).ok());
  Table* table = *db.GetMutableTable("Sales");
  for (int64_t i = 1; i <= 20; ++i) {
    int64_t a = i % 3, b = i % 2;
    EXPECT_TRUE(table
                    ->Insert({Value::Int(i), Value::Int(a), Value::Int(b),
                              Value::Text("p" + std::to_string(a * 10 + b))})
                    .ok());
  }
  return db;
}

TEST(RestructEdgeTest, MissingRelationInHiddenFails) {
  Database db = MakeDb();
  DefaultOracle oracle;
  QualifiedAttributes ghost{"Ghost", AttributeSet{"x"}};
  EXPECT_FALSE(Restruct(db, {}, {ghost}, {}, &oracle).ok());
}

TEST(RestructEdgeTest, MissingRelationInFdFails) {
  Database db = MakeDb();
  DefaultOracle oracle;
  FunctionalDependency fd("Ghost", AttributeSet{"x"}, AttributeSet{"y"});
  EXPECT_FALSE(Restruct(db, {fd}, {}, {}, &oracle).ok());
}

TEST(RestructEdgeTest, NullOracleRejected) {
  Database db = MakeDb();
  EXPECT_FALSE(Restruct(db, {}, {}, {}, nullptr).ok());
}

TEST(RestructEdgeTest, CompositeLhsFdSplit) {
  // {a, b} → payload: the new relation gets a two-attribute key.
  Database db = MakeDb();
  DefaultOracle oracle;
  FunctionalDependency fd("Sales", AttributeSet{"a", "b"},
                          AttributeSet{"payload"});
  auto result = Restruct(db, {fd}, {}, {}, &oracle);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->database.HasRelation("Sales_a_b"));
  const Table& split = **result->database.GetTable("Sales_a_b");
  EXPECT_EQ(*split.schema().PrimaryKey(), (AttributeSet{"a", "b"}));
  EXPECT_EQ(split.num_rows(), 6u);  // 3 × 2 combinations
  EXPECT_TRUE(split.VerifyUniqueConstraints().ok());
  ASSERT_EQ(result->rics.size(), 1u);
  EXPECT_EQ(result->rics[0].ToString(),
            "Sales[a, b] << Sales_a_b[a, b]");
  EXPECT_TRUE(*Satisfies(result->database, result->rics[0]));
}

TEST(RestructEdgeTest, InputDatabaseUntouched) {
  Database db = MakeDb();
  DefaultOracle oracle;
  FunctionalDependency fd("Sales", AttributeSet{"a"},
                          AttributeSet{"payload"});
  // a → payload does NOT hold in the data; Restruct splits anyway
  // (first-wins) — but must not mutate the input.
  auto result = Restruct(db, {fd}, {}, {}, &oracle);
  ASSERT_TRUE(result.ok());
  const Table& original = **db.GetTable("Sales");
  EXPECT_TRUE(original.schema().HasAttribute("payload"));
  EXPECT_EQ(original.num_rows(), 20u);
}

TEST(RestructEdgeTest, HiddenObjectSkipsNullValues) {
  Database db;
  RelationSchema r("R");
  ASSERT_TRUE(r.AddAttribute("k", DataType::kInt64).ok());
  ASSERT_TRUE(r.AddAttribute("tag", DataType::kInt64).ok());
  ASSERT_TRUE(r.DeclareUnique({"k"}).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  Table* table = *db.GetMutableTable("R");
  ASSERT_TRUE(table->Insert({Value::Int(1), Value::Int(5)}).ok());
  ASSERT_TRUE(table->Insert({Value::Int(2), Value::Null()}).ok());
  ASSERT_TRUE(table->Insert({Value::Int(3), Value::Int(5)}).ok());
  DefaultOracle oracle;
  QualifiedAttributes hidden{"R", AttributeSet{"tag"}};
  auto result = Restruct(db, {}, {hidden}, {}, &oracle);
  ASSERT_TRUE(result.ok());
  const Table& tags = **result->database.GetTable("R_tag");
  EXPECT_EQ(tags.num_rows(), 1u);  // only the value 5; NULL excluded
}

TEST(TranslateEdgeTest, NamesWithoutAttributes) {
  Database db = MakeDb();
  DefaultOracle oracle;
  FunctionalDependency fd("Sales", AttributeSet{"a"},
                          AttributeSet{"payload"});
  auto restructured = Restruct(db, {fd}, {}, {}, &oracle);
  ASSERT_TRUE(restructured.ok());
  TranslateOptions options;
  options.include_attributes_in_names = false;
  auto eer = Translate(*restructured, options);
  ASSERT_TRUE(eer.ok());
  ASSERT_EQ(eer->relationships().size(), 1u);
  EXPECT_EQ(eer->relationships()[0].name, "Sales");
}

TEST(TranslateEdgeTest, EmptyRestructGivesEntitiesOnly) {
  Database db = MakeDb();
  RestructResult restructured;
  restructured.database = db.Clone();
  auto eer = Translate(restructured);
  ASSERT_TRUE(eer.ok());
  EXPECT_EQ(eer->entities().size(), 1u);
  EXPECT_TRUE(eer->relationships().empty());
  EXPECT_TRUE(eer->isa_links().empty());
}

}  // namespace
}  // namespace dbre
