// The tentpole invariant of live mutations (docs/INCREMENTAL.md): after
// ANY mutation sequence, re-running the pipeline over the mutated catalog
// (warm caches, incremental delta rebuilds) yields a report BYTE-IDENTICAL
// to a cold run over a freshly-built database holding the same final rows.
// Covered sequences: insert-only, update-only, delete-only, mixed scripts,
// heavily skewed values and NULL-heavy columns, with the sketch gate both
// ways. The mutation scripts are derived from the generated schema so the
// suite keeps covering whatever the synthetic workload produces.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/pipeline.h"
#include "core/presumption_diff.h"
#include "core/report_json.h"
#include "relational/database.h"
#include "relational/sketch.h"
#include "sql/dml.h"
#include "workload/generator.h"

namespace dbre {
namespace {

workload::SyntheticDatabase MakeWorkload(uint64_t seed) {
  workload::SyntheticSpec spec;
  spec.num_entities = 4;
  spec.num_merged = 1;
  spec.rows_per_entity = 300;
  spec.seed = seed;
  auto generated = workload::GenerateSynthetic(spec);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  return std::move(*generated);
}

std::string RunReport(const Database& database,
                      const std::vector<EquiJoin>& queries) {
  ThresholdOracle::Options oracle_options;
  oracle_options.accept_hidden_objects = true;
  ThresholdOracle oracle(oracle_options);
  auto report = RunPipeline(database, queries, &oracle);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return "";
  JsonOptions options;
  options.include_timings = false;
  return ReportToJson(*report, options);
}

// Rebuilds `database` cold: fresh tables, same schemas, same rows, no
// caches, no delta bookkeeping — the incremental run's reference.
Database ColdRebuild(const Database& database) {
  Database cold;
  for (const std::string& name : database.RelationNames()) {
    auto table = database.GetTable(name);
    EXPECT_TRUE(table.ok());
    Table fresh((*table)->schema());
    Status streamed = (*table)->ForEachRow([&](const ValueVector& row) {
      ValueVector copy = row;
      fresh.InsertUnchecked(std::move(copy));
    });
    EXPECT_TRUE(streamed.ok()) << streamed.ToString();
    EXPECT_TRUE(cold.AddTable(std::move(fresh)).ok());
  }
  return cold;
}

// --- Schema-introspected script builders --------------------------------

// Index of the first attribute of `type` (preferring nullable when asked),
// or SIZE_MAX.
size_t FindColumn(const RelationSchema& schema, DataType type,
                  bool require_nullable) {
  for (size_t i = 0; i < schema.arity(); ++i) {
    const Attribute& attribute = schema.attributes()[i];
    if (attribute.type != type) continue;
    if (require_nullable && attribute.not_null) continue;
    return i;
  }
  return SIZE_MAX;
}

// INSERT of `count` synthesized full-arity rows into `name` with fresh
// large ints / fresh strings (values no existing row holds).
std::string InsertScript(const Database& database, const std::string& name,
                         int count, int salt) {
  const RelationSchema& schema = (*database.GetTable(name))->schema();
  std::string script = "INSERT INTO " + name + " VALUES ";
  for (int r = 0; r < count; ++r) {
    script += r == 0 ? "(" : ", (";
    for (size_t c = 0; c < schema.arity(); ++c) {
      if (c > 0) script += ", ";
      switch (schema.attributes()[c].type) {
        case DataType::kInt64:
          script += std::to_string(1'000'000 + salt * 1000 + r);
          break;
        case DataType::kString:
          script += "'fresh-" + std::to_string(salt) + "-" +
                    std::to_string(r) + "'";
          break;
        default:
          script += schema.attributes()[c].not_null ? "0" : "NULL";
          break;
      }
    }
    script += ")";
  }
  return script + ";";
}

// The median value of integer column `column` — predicates built on it hit
// roughly half the extension.
int64_t MedianInt(const Table& table, size_t column) {
  std::vector<int64_t> values;
  for (const ValueVector& row : table.rows()) {
    if (row[column].is_int()) values.push_back(row[column].as_int());
  }
  if (values.empty()) return 0;
  std::nth_element(values.begin(), values.begin() + values.size() / 2,
                   values.end());
  return values[values.size() / 2];
}

// Warm every table's cache (as a finished service run leaves it), apply
// the scripts, then assert incremental == cold, byte for byte.
void ExpectIncrementalMatchesCold(const workload::SyntheticDatabase& generated,
                                  const std::vector<std::string>& scripts) {
  Database database = generated.database.Clone();

  // First run + explicit cache warm: builds the memos the incremental
  // rerun will delta-extend.
  const std::string before = RunReport(database, generated.queries);
  ASSERT_FALSE(before.empty());
  for (const std::string& name : database.RelationNames()) {
    auto table = database.GetMutableTable(name);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->query_cache().ok());
  }

  for (const std::string& script : scripts) {
    auto stats = sql::ExecuteDmlScript(script, &database);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString() << "\n" << script;
  }

  const std::string incremental = RunReport(database, generated.queries);
  ASSERT_FALSE(incremental.empty());
  const std::string cold = RunReport(ColdRebuild(database), generated.queries);
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(incremental, cold);
}

TEST(IncrementalTest, InsertOnlySequence) {
  workload::SyntheticDatabase generated = MakeWorkload(11);
  std::vector<std::string> scripts;
  int salt = 0;
  for (const std::string& name : generated.database.RelationNames()) {
    scripts.push_back(InsertScript(generated.database, name, 5, ++salt));
  }
  ExpectIncrementalMatchesCold(generated, scripts);
}

TEST(IncrementalTest, UpdateOnlySequence) {
  workload::SyntheticDatabase generated = MakeWorkload(12);
  std::vector<std::string> scripts;
  for (const std::string& name : generated.database.RelationNames()) {
    const Table& table = **generated.database.GetTable(name);
    size_t text = FindColumn(table.schema(), DataType::kString, false);
    size_t id = FindColumn(table.schema(), DataType::kInt64, false);
    if (text == SIZE_MAX || id == SIZE_MAX) continue;
    scripts.push_back("UPDATE " + name + " SET " +
                      table.schema().attributes()[text].name +
                      " = 'rewritten' WHERE " +
                      table.schema().attributes()[id].name + " < " +
                      std::to_string(MedianInt(table, id)) + ";");
  }
  ASSERT_FALSE(scripts.empty());
  ExpectIncrementalMatchesCold(generated, scripts);
}

TEST(IncrementalTest, DeleteOnlySequence) {
  workload::SyntheticDatabase generated = MakeWorkload(13);
  std::vector<std::string> scripts;
  for (const std::string& name : generated.database.RelationNames()) {
    const Table& table = **generated.database.GetTable(name);
    size_t id = FindColumn(table.schema(), DataType::kInt64, false);
    if (id == SIZE_MAX) continue;
    scripts.push_back("DELETE FROM " + name + " WHERE " +
                      table.schema().attributes()[id].name + " > " +
                      std::to_string(MedianInt(table, id)) + ";");
  }
  ASSERT_FALSE(scripts.empty());
  ExpectIncrementalMatchesCold(generated, scripts);
}

// Inserts referencing nothing, updates rewriting foreign keys, deletes
// shrinking the referenced side: breaks INDs and FDs the first run
// presumed, so the rerun genuinely re-validates.
TEST(IncrementalTest, MixedDependencyBreakingSequence) {
  workload::SyntheticDatabase generated = MakeWorkload(14);
  std::vector<std::string> scripts;
  const std::vector<std::string> names =
      generated.database.RelationNames();
  ASSERT_GE(names.size(), 2u);
  scripts.push_back(InsertScript(generated.database, names[0], 3, 77));
  const Table& second = **generated.database.GetTable(names[1]);
  size_t id = FindColumn(second.schema(), DataType::kInt64, false);
  ASSERT_NE(id, SIZE_MAX);
  const std::string& id_name = second.schema().attributes()[id].name;
  scripts.push_back("UPDATE " + names[1] + " SET " + id_name +
                    " = 424242 WHERE " + id_name + " < " +
                    std::to_string(MedianInt(second, id)) + ";");
  scripts.push_back("DELETE FROM " + names[1] + " WHERE " + id_name +
                    " = 424242;");
  ExpectIncrementalMatchesCold(generated, scripts);
}

TEST(IncrementalTest, SkewedValues) {
  workload::SyntheticDatabase generated = MakeWorkload(15);
  const std::string name = generated.database.RelationNames().front();
  const Table& table = **generated.database.GetTable(name);
  size_t id = FindColumn(table.schema(), DataType::kInt64, false);
  ASSERT_NE(id, SIZE_MAX);
  const std::string& id_name = table.schema().attributes()[id].name;
  // Pile most of the column onto a single value: partitions get one giant
  // class, the dictionary collapses, sketch estimates saturate.
  std::vector<std::string> scripts = {
      "UPDATE " + name + " SET " + id_name + " = 7 WHERE " + id_name +
          " > " + std::to_string(MedianInt(table, id)) + ";",
      InsertScript(generated.database, name, 10, 99)};
  ExpectIncrementalMatchesCold(generated, scripts);
}

TEST(IncrementalTest, NullHeavySequence) {
  workload::SyntheticDatabase generated = MakeWorkload(16);
  std::vector<std::string> scripts;
  for (const std::string& name : generated.database.RelationNames()) {
    const Table& table = **generated.database.GetTable(name);
    size_t nullable_text = FindColumn(table.schema(), DataType::kString, true);
    size_t nullable_int = FindColumn(table.schema(), DataType::kInt64, true);
    size_t id = FindColumn(table.schema(), DataType::kInt64, false);
    if (id == SIZE_MAX) continue;
    const std::string& id_name = table.schema().attributes()[id].name;
    if (nullable_text != SIZE_MAX) {
      scripts.push_back("UPDATE " + name + " SET " +
                        table.schema().attributes()[nullable_text].name +
                        " = NULL WHERE " + id_name + " < " +
                        std::to_string(MedianInt(table, id)) + ";");
    }
    if (nullable_int != SIZE_MAX && nullable_int != id) {
      scripts.push_back("UPDATE " + name + " SET " +
                        table.schema().attributes()[nullable_int].name +
                        " = NULL WHERE " + id_name + " >= " +
                        std::to_string(MedianInt(table, id)) + ";");
    }
  }
  ASSERT_FALSE(scripts.empty());
  ExpectIncrementalMatchesCold(generated, scripts);
}

// The same invariant with the sketch gate forced both ways: sketches only
// change the route to an answer, never the answer, including after
// mutations evicted and rebuilt them.
TEST(IncrementalTest, SketchGateDoesNotChangeMutatedAnswers) {
  for (bool sketches : {false, true}) {
    ScopedSketchGate gate(sketches);
    workload::SyntheticDatabase generated = MakeWorkload(17);
    const std::string name = generated.database.RelationNames().front();
    const Table& table = **generated.database.GetTable(name);
    size_t id = FindColumn(table.schema(), DataType::kInt64, false);
    ASSERT_NE(id, SIZE_MAX);
    ExpectIncrementalMatchesCold(
        generated,
        {InsertScript(generated.database, name, 4, sketches ? 1 : 2),
         "DELETE FROM " + name + " WHERE " +
             table.schema().attributes()[id].name + " > " +
             std::to_string(MedianInt(table, id)) + ";"});
  }
}

// Presumption extraction + diff (the watch stream's payload): canonical
// ordering, exact added/removed sets, readable summary.
TEST(IncrementalTest, PresumptionDiffIsExact) {
  PresumptionSet before;
  before.inds = {"P[owner] << E[id]", "Q[ref] << E[id]"};
  before.fds = {"E: {dept} -> {dept_name}"};
  before.lhs = {"E{id}"};

  PresumptionSet after;
  after.inds = {"Q[ref] << E[id]", "R[x] << E[id]"};
  after.fds = {};
  after.lhs = {"E{id}", "P{owner}"};

  EXPECT_TRUE(DiffPresumptions(before, before).empty());

  PresumptionDiff diff = DiffPresumptions(before, after);
  EXPECT_FALSE(diff.empty());
  EXPECT_EQ(diff.inds.added, (std::vector<std::string>{"R[x] << E[id]"}));
  EXPECT_EQ(diff.inds.removed,
            (std::vector<std::string>{"P[owner] << E[id]"}));
  EXPECT_EQ(diff.fds.removed,
            (std::vector<std::string>{"E: {dept} -> {dept_name}"}));
  EXPECT_TRUE(diff.fds.added.empty());
  EXPECT_EQ(diff.lhs.added, (std::vector<std::string>{"P{owner}"}));
  const std::string summary = diff.Summary();
  EXPECT_NE(summary.find("+ R[x] << E[id]"), std::string::npos);
  EXPECT_NE(summary.find("- E: {dept} -> {dept_name}"), std::string::npos);
}

// ExtractPresumptions pulls every category out of a real report, sorted.
TEST(IncrementalTest, ExtractPresumptionsIsCanonical) {
  workload::SyntheticDatabase generated = MakeWorkload(18);
  ThresholdOracle::Options oracle_options;
  oracle_options.accept_hidden_objects = true;
  ThresholdOracle oracle(oracle_options);
  auto report = RunPipeline(generated.database, generated.queries, &oracle);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  PresumptionSet set = ExtractPresumptions(*report);
  EXPECT_FALSE(set.inds.empty());
  EXPECT_TRUE(std::is_sorted(set.inds.begin(), set.inds.end()));
  EXPECT_TRUE(std::is_sorted(set.fds.begin(), set.fds.end()));
  EXPECT_TRUE(std::is_sorted(set.lhs.begin(), set.lhs.end()));
  // Deterministic: extracting twice from reruns gives the same set.
  auto again = RunPipeline(generated.database, generated.queries, &oracle);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(set, ExtractPresumptions(*again));
}

}  // namespace
}  // namespace dbre
