// Approximate functional dependencies: the g3 error measure and the
// threshold oracle's error-based enforcement, unattended on dirty data.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "relational/algebra.h"
#include "workload/library_example.h"

namespace dbre {
namespace {

Table MakeTable(const std::vector<std::pair<int64_t, int64_t>>& rows) {
  RelationSchema schema("T");
  EXPECT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("b", DataType::kInt64).ok());
  Table table(std::move(schema));
  for (const auto& [a, b] : rows) {
    table.InsertUnchecked({Value::Int(a), Value::Int(b)});
  }
  return table;
}

TEST(FdErrorTest, ExactFdHasZeroError) {
  Table table = MakeTable({{1, 10}, {2, 20}, {1, 10}});
  auto error = FunctionalDependencyError(table, AttributeSet{"a"},
                                         AttributeSet{"b"});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(*error, 0.0);
}

TEST(FdErrorTest, SingleBadTuple) {
  // Group a=1 has b ∈ {10, 10, 99}: one removal out of four tuples.
  Table table = MakeTable({{1, 10}, {1, 10}, {1, 99}, {2, 20}});
  auto error = FunctionalDependencyError(table, AttributeSet{"a"},
                                         AttributeSet{"b"});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(*error, 0.25);
}

TEST(FdErrorTest, PluralityWinsPerGroup) {
  // a=1: {10, 10, 20, 20, 20} → keep 3, remove 2 of 5 tuples.
  Table table = MakeTable({{1, 10}, {1, 10}, {1, 20}, {1, 20}, {1, 20}});
  auto error = FunctionalDependencyError(table, AttributeSet{"a"},
                                         AttributeSet{"b"});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(*error, 0.4);
}

TEST(FdErrorTest, NullLhsExcluded) {
  RelationSchema schema("T");
  ASSERT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
  ASSERT_TRUE(schema.AddAttribute("b", DataType::kInt64).ok());
  Table table(std::move(schema));
  table.InsertUnchecked({Value::Null(), Value::Int(1)});
  table.InsertUnchecked({Value::Null(), Value::Int(2)});
  table.InsertUnchecked({Value::Int(1), Value::Int(3)});
  auto error = FunctionalDependencyError(table, AttributeSet{"a"},
                                         AttributeSet{"b"});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(*error, 0.0);  // the NULL group does not count
}

TEST(FdErrorTest, EmptyTableAndValidation) {
  Table table = MakeTable({});
  EXPECT_DOUBLE_EQ(*FunctionalDependencyError(table, AttributeSet{"a"},
                                              AttributeSet{"b"}),
                   0.0);
  EXPECT_FALSE(
      FunctionalDependencyError(table, AttributeSet{}, AttributeSet{"b"})
          .ok());
}

TEST(FdErrorTest, ErrorZeroIffHolds) {
  Table clean = MakeTable({{1, 10}, {2, 20}});
  Table dirty = MakeTable({{1, 10}, {1, 11}});
  for (const Table* table : {&clean, &dirty}) {
    bool holds = *FunctionalDependencyHolds(*table, AttributeSet{"a"},
                                            AttributeSet{"b"});
    double error = *FunctionalDependencyError(*table, AttributeSet{"a"},
                                              AttributeSet{"b"});
    EXPECT_EQ(holds, error == 0.0);
  }
}

TEST(ThresholdOracleTest, ErrorBasedEnforcement) {
  ThresholdOracle::Options options;
  options.enforce_fd_max_error = 0.01;
  ThresholdOracle oracle(options);
  FunctionalDependency fd("R", AttributeSet{"a"}, AttributeSet{"b"});
  ExpertOracle* base = &oracle;  // call through the interface
  EXPECT_TRUE(base->EnforceFailedFd(fd, 0.005));
  EXPECT_FALSE(base->EnforceFailedFd(fd, 0.05));
  // Default options never enforce.
  ThresholdOracle strict;
  base = &strict;
  EXPECT_FALSE(base->EnforceFailedFd(fd, 0.0001));
}

// The unattended payoff: on the library's dirty data, a threshold oracle
// with 1% error tolerance recovers the corrupted FD *without* a scripted
// expert.
TEST(ThresholdOracleTest, UnattendedRecoveryOfCorruptedFd) {
  auto database = workload::BuildLibraryDatabase();
  ASSERT_TRUE(database.ok());
  ThresholdOracle::Options options;
  options.nei_conceptualize_ratio = 2.0;
  options.nei_force_ratio = 0.5;        // forces the dirty FK too
  options.enforce_fd_max_error = 0.01;  // 1 mispunched tuple of 150 books
  options.accept_hidden_objects = false;
  ThresholdOracle oracle(options);
  auto report = RunPipeline(*database, workload::LibraryJoinSet(), &oracle);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->rhs.fds.size(), 1u);
  EXPECT_EQ(report->rhs.fds[0].ToString(),
            "Books: {branch} -> {branch_city}");
}

TEST(RecordingOracleTest, RecordsG3Error) {
  DefaultOracle inner;
  RecordingOracle recording(&inner);
  FunctionalDependency fd("R", AttributeSet{"a"}, AttributeSet{"b"});
  ExpertOracle* base = &recording;
  base->EnforceFailedFd(fd, 0.125);
  ASSERT_EQ(recording.InteractionCount(), 1u);
  EXPECT_NE(recording.interactions()[0].question.find("g3=0.125"),
            std::string::npos);
}

}  // namespace
}  // namespace dbre
