// Determinism of the parallel discovery paths: any thread count must
// produce byte-identical results to a sequential run, including the full
// JSON report. These tests are the TSan targets for the -DDBRE_SANITIZE
// =thread build (they drive concurrent query-cache access end to end).
#include <gtest/gtest.h>

#include "core/ind_discovery.h"
#include "core/pipeline.h"
#include "core/report_json.h"
#include "core/rhs_discovery.h"
#include "workload/generator.h"

namespace dbre {
namespace {

using workload::GenerateSynthetic;
using workload::SyntheticDatabase;
using workload::SyntheticSpec;

SyntheticDatabase MakeWorkload(double orphan_rate = 0.0) {
  SyntheticSpec spec;
  spec.num_entities = 5;
  spec.num_merged = 3;
  spec.num_composite_keys = 1;
  spec.rows_per_entity = 300;
  spec.orphan_rate = orphan_rate;
  spec.emit_program_sources = false;
  auto generated = GenerateSynthetic(spec);
  EXPECT_TRUE(generated.ok());
  return std::move(generated).value();
}

TEST(ParallelDiscoveryTest, IndDiscoveryMatchesSequential) {
  const SyntheticDatabase workload = MakeWorkload();
  IndDiscoveryOptions sequential;
  sequential.num_threads = 1;
  DefaultOracle sequential_oracle;
  Database sequential_db = workload.database.Clone();
  auto expected = DiscoverInds(&sequential_db, workload.queries,
                               &sequential_oracle, sequential);
  ASSERT_TRUE(expected.ok());

  for (size_t threads : {2u, 4u, 8u}) {
    IndDiscoveryOptions parallel;
    parallel.num_threads = threads;
    DefaultOracle oracle;
    Database db = workload.database.Clone();
    auto got = DiscoverInds(&db, workload.queries, &oracle, parallel);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->inds, expected->inds) << threads << " threads";
    EXPECT_EQ(got->new_relations, expected->new_relations);
    ASSERT_EQ(got->outcomes.size(), expected->outcomes.size());
    for (size_t i = 0; i < got->outcomes.size(); ++i) {
      EXPECT_EQ(got->outcomes[i].kind, expected->outcomes[i].kind);
      EXPECT_EQ(got->outcomes[i].counts.n_join,
                expected->outcomes[i].counts.n_join);
    }
  }
}

TEST(ParallelDiscoveryTest, IndDiscoveryWithNeisMatchesSequential) {
  // Orphaned foreign keys force NEI outcomes (oracle decisions) — the
  // parallel precompute must not disturb their order or classification.
  const SyntheticDatabase workload = MakeWorkload(/*orphan_rate=*/0.05);
  auto run = [&](size_t threads) {
    IndDiscoveryOptions options;
    options.num_threads = threads;
    ThresholdOracle::Options oracle_options;
    ThresholdOracle oracle(oracle_options);
    Database db = workload.database.Clone();
    auto result = DiscoverInds(&db, workload.queries, &oracle, options);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };
  IndDiscoveryResult expected = run(1);
  IndDiscoveryResult parallel = run(4);
  EXPECT_EQ(parallel.inds, expected.inds);
  EXPECT_EQ(parallel.new_relations, expected.new_relations);
  EXPECT_EQ(parallel.extension_queries, expected.extension_queries);
}

TEST(ParallelDiscoveryTest, RhsDiscoveryMatchesSequential) {
  const SyntheticDatabase workload = MakeWorkload();
  // Identifier candidates: every ground-truth identifier plus a noisy one.
  std::vector<QualifiedAttributes> lhs = workload.true_identifiers;
  auto run = [&](size_t threads) {
    RhsDiscoveryOptions options;
    options.num_threads = threads;
    ThresholdOracle::Options oracle_options;
    oracle_options.accept_hidden_objects = true;
    ThresholdOracle oracle(oracle_options);
    auto result =
        DiscoverRhs(workload.database, lhs, {}, &oracle, options);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };
  RhsDiscoveryResult expected = run(1);
  for (size_t threads : {2u, 4u}) {
    RhsDiscoveryResult got = run(threads);
    EXPECT_EQ(got.fds, expected.fds) << threads << " threads";
    EXPECT_EQ(got.hidden, expected.hidden);
    EXPECT_EQ(got.fd_checks, expected.fd_checks);
    EXPECT_EQ(got.pruned_attributes, expected.pruned_attributes);
  }
}

TEST(ParallelDiscoveryTest, PipelineJsonIsByteIdenticalAcrossRuns) {
  const SyntheticDatabase workload = MakeWorkload();
  auto run = [&](size_t threads) {
    PipelineOptions options;
    options.ind.num_threads = threads;
    options.rhs.num_threads = threads;
    ThresholdOracle::Options oracle_options;
    oracle_options.accept_hidden_objects = true;
    ThresholdOracle oracle(oracle_options);
    auto report = RunPipeline(workload.database, workload.queries, &oracle,
                              options);
    EXPECT_TRUE(report.ok());
    PipelineReport value = std::move(report).value();
    // Timings vary run to run; zero them so the comparison covers every
    // semantic field.
    value.timings = PhaseTimings{};
    return ReportToJson(value);
  };
  const std::string sequential = run(1);
  EXPECT_EQ(run(4), sequential);
  EXPECT_EQ(run(4), sequential);  // repeated parallel runs, same bytes
  EXPECT_EQ(run(8), sequential);
}

}  // namespace
}  // namespace dbre
