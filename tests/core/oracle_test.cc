#include "core/oracle.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

EquiJoin Join() { return EquiJoin::Single("R", "a", "S", "b"); }

JoinCounts Counts(size_t left, size_t right, size_t join) {
  JoinCounts counts;
  counts.n_left = left;
  counts.n_right = right;
  counts.n_join = join;
  return counts;
}

FunctionalDependency Fd() {
  return FunctionalDependency("R", AttributeSet{"a"}, AttributeSet{"b"});
}

TEST(DefaultOracleTest, ConservativeDefaults) {
  DefaultOracle oracle;
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts(5, 5, 3)).action,
            NeiAction::kIgnore);
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd()));
  EXPECT_TRUE(oracle.ValidateFd(Fd()));
  EXPECT_FALSE(
      oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}}));
  EXPECT_EQ(oracle.NameRelationForFd(Fd()), "");
  EXPECT_EQ(oracle.NameHiddenObjectRelation({"R", AttributeSet{"a"}}), "");
}

TEST(ScriptedOracleTest, AnswersByKey) {
  ScriptedOracle oracle;
  oracle.ScriptNei("R[a] |><| S[b]",
                   NeiDecision{NeiAction::kConceptualize, "RS"});
  oracle.ScriptEnforceFd("R: {a} -> {b}", true);
  oracle.ScriptValidateFd("R: {a} -> {b}", false);
  oracle.ScriptHiddenObject("R.{a}", true);
  oracle.ScriptFdRelationName("R: {a} -> {b}", "Thing");
  oracle.ScriptHiddenRelationName("R.{a}", "Obj");

  NeiDecision decision =
      oracle.DecideNonEmptyIntersection(Join(), Counts(5, 5, 3));
  EXPECT_EQ(decision.action, NeiAction::kConceptualize);
  EXPECT_EQ(decision.relation_name, "RS");
  EXPECT_TRUE(oracle.EnforceFailedFd(Fd()));
  EXPECT_FALSE(oracle.ValidateFd(Fd()));
  EXPECT_TRUE(oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}}));
  EXPECT_EQ(oracle.NameRelationForFd(Fd()), "Thing");
  EXPECT_EQ(oracle.NameHiddenObjectRelation({"R", AttributeSet{"a"}}),
            "Obj");
}

TEST(ScriptedOracleTest, UnscriptedFallsBackToDefaults) {
  ScriptedOracle oracle;
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts(5, 5, 3)).action,
            NeiAction::kIgnore);
  EXPECT_TRUE(oracle.ValidateFd(Fd()));
}

TEST(ScriptedOracleTest, FlippedJoinKeyMatchesWithDirectionSwap) {
  ScriptedOracle oracle;
  // Script using the flipped rendering of the join.
  oracle.ScriptNei("S[b] |><| R[a]",
                   NeiDecision{NeiAction::kForceLeftInRight, ""});
  NeiDecision decision =
      oracle.DecideNonEmptyIntersection(Join(), Counts(5, 5, 3));
  // Force "S in R" was scripted; relative to R-S order that is
  // right-in-left.
  EXPECT_EQ(decision.action, NeiAction::kForceRightInLeft);
}

TEST(ScriptedOracleTest, CustomFallbackDelegates) {
  ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  ThresholdOracle fallback(options);
  ScriptedOracle oracle(&fallback);
  EXPECT_TRUE(oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}}));
}

TEST(ThresholdOracleTest, ConceptualizesAboveRatio) {
  ThresholdOracle::Options options;
  options.nei_conceptualize_ratio = 0.8;
  ThresholdOracle oracle(options);
  // 4/5 = 0.8 → conceptualize.
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts(5, 100, 4))
                .action,
            NeiAction::kConceptualize);
  // 3/5 = 0.6 → ignore (force ratio default 2.0 disables forcing).
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts(5, 100, 3))
                .action,
            NeiAction::kIgnore);
}

TEST(ThresholdOracleTest, ForcesBetweenRatios) {
  ThresholdOracle::Options options;
  options.nei_conceptualize_ratio = 0.95;
  options.nei_force_ratio = 0.5;
  ThresholdOracle oracle(options);
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts(5, 100, 3))
                .action,
            NeiAction::kForceLeftInRight);
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts(100, 5, 3))
                .action,
            NeiAction::kForceRightInLeft);
}

TEST(ThresholdOracleTest, ZeroSidesIgnored) {
  ThresholdOracle oracle;
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts(0, 10, 0))
                .action,
            NeiAction::kIgnore);
}

TEST(RecordingOracleTest, RecordsAllInteractions) {
  ScriptedOracle inner;
  inner.ScriptHiddenObject("R.{a}", true);
  RecordingOracle oracle(&inner);
  oracle.DecideNonEmptyIntersection(Join(), Counts(5, 5, 3));
  oracle.EnforceFailedFd(Fd());
  oracle.ValidateFd(Fd());
  oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}});
  oracle.NameRelationForFd(Fd());
  oracle.NameHiddenObjectRelation({"R", AttributeSet{"a"}});
  ASSERT_EQ(oracle.InteractionCount(), 6u);
  EXPECT_EQ(oracle.interactions()[0].kind, "nei");
  EXPECT_EQ(oracle.interactions()[0].answer, "ignore");
  EXPECT_EQ(oracle.interactions()[3].kind, "hidden_object");
  EXPECT_EQ(oracle.interactions()[3].answer, "yes");
}

}  // namespace
}  // namespace dbre
