#include "core/interactive_oracle.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dbre {
namespace {

EquiJoin Join() { return EquiJoin::Single("R", "a", "S", "b"); }

JoinCounts Counts() {
  JoinCounts counts;
  counts.n_left = 10;
  counts.n_right = 20;
  counts.n_join = 5;
  return counts;
}

FunctionalDependency Fd() {
  return FunctionalDependency("R", AttributeSet{"a"}, AttributeSet{"b"});
}

TEST(InteractiveOracleTest, NeiConceptualizeWithName) {
  std::istringstream in("c\nInter\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  NeiDecision decision = oracle.DecideNonEmptyIntersection(Join(), Counts());
  EXPECT_EQ(decision.action, NeiAction::kConceptualize);
  EXPECT_EQ(decision.relation_name, "Inter");
  // The prompt shows the valuations.
  EXPECT_NE(out.str().find("||left||  = 10"), std::string::npos);
  EXPECT_NE(out.str().find("R[a] |><| S[b]"), std::string::npos);
}

TEST(InteractiveOracleTest, NeiDirections) {
  {
    std::istringstream in("l\n");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
              NeiAction::kForceLeftInRight);
  }
  {
    std::istringstream in("r\n");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
              NeiAction::kForceRightInLeft);
  }
  {
    std::istringstream in("i\n");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
              NeiAction::kIgnore);
  }
}

TEST(InteractiveOracleTest, NeiEofIgnores) {
  std::istringstream in("");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
            NeiAction::kIgnore);
}

TEST(InteractiveOracleTest, YesNoQuestions) {
  std::istringstream in("y\nn\nYES\nno\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_TRUE(oracle.EnforceFailedFd(Fd()));
  EXPECT_FALSE(oracle.ValidateFd(Fd()));
  EXPECT_TRUE(oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}}));
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd()));
}

TEST(InteractiveOracleTest, UnrecognizedInputUsesDefaults) {
  std::istringstream in("maybe\nmaybe\nmaybe\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd()));                // default no
  EXPECT_TRUE(oracle.ValidateFd(Fd()));                      // default yes
  EXPECT_FALSE(
      oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}}));
}

TEST(InteractiveOracleTest, EofMidSessionFallsBackForTheRest) {
  // The expert answers the first two questions, then the terminal closes
  // (EOF). Every later question must silently take its safe default
  // instead of blocking or crashing.
  std::istringstream in("y\nl\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_TRUE(oracle.EnforceFailedFd(Fd()));  // answered "y"
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
            NeiAction::kForceLeftInRight);    // answered "l"
  // EOF from here on: defaults.
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd()));
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd(), 0.25));
  EXPECT_TRUE(oracle.ValidateFd(Fd()));
  EXPECT_FALSE(oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}}));
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
            NeiAction::kIgnore);
  EXPECT_EQ(oracle.NameRelationForFd(Fd()), "");
  EXPECT_EQ(oracle.NameHiddenObjectRelation({"R", AttributeSet{"a"}}), "");
}

TEST(InteractiveOracleTest, UnparseableNeiAnswerIgnoresAndSaysSo) {
  std::istringstream in("conceptualise please\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
            NeiAction::kIgnore);
  EXPECT_NE(out.str().find("unrecognized"), std::string::npos);
}

TEST(InteractiveOracleTest, WhitespaceAndCaseAreTolerated) {
  std::istringstream in("  YES  \n\tNo\n  L \n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_TRUE(oracle.EnforceFailedFd(Fd()));
  EXPECT_FALSE(oracle.ValidateFd(Fd()));
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
            NeiAction::kForceLeftInRight);
}

TEST(InteractiveOracleTest, EnforceFailedFdOverloadsAgreeOnDefaults) {
  // Both the blind overload and the g3-quantified one must refuse to
  // enforce on EOF and on unparseable input — a disagreement would make
  // the pipeline's outcome depend on whether the g3 error was computed.
  {
    std::istringstream in("");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    EXPECT_EQ(oracle.EnforceFailedFd(Fd()),
              oracle.EnforceFailedFd(Fd(), 0.42));
  }
  {
    std::istringstream in("whatever\nwhatever\n");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    bool blind = oracle.EnforceFailedFd(Fd());
    bool quantified = oracle.EnforceFailedFd(Fd(), 0.42);
    EXPECT_FALSE(blind);
    EXPECT_EQ(blind, quantified);
  }
  // The quantified prompt shows the violation rate.
  {
    std::istringstream in("n\n");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    EXPECT_FALSE(oracle.EnforceFailedFd(Fd(), 0.25));
    EXPECT_NE(out.str().find("25.000%"), std::string::npos);
  }
}

TEST(InteractiveOracleTest, NamingPrompts) {
  std::istringstream in("Manager\n\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_EQ(oracle.NameRelationForFd(Fd()), "Manager");
  EXPECT_EQ(oracle.NameHiddenObjectRelation({"R", AttributeSet{"a"}}), "");
}

}  // namespace
}  // namespace dbre
