#include "core/interactive_oracle.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dbre {
namespace {

EquiJoin Join() { return EquiJoin::Single("R", "a", "S", "b"); }

JoinCounts Counts() {
  JoinCounts counts;
  counts.n_left = 10;
  counts.n_right = 20;
  counts.n_join = 5;
  return counts;
}

FunctionalDependency Fd() {
  return FunctionalDependency("R", AttributeSet{"a"}, AttributeSet{"b"});
}

TEST(InteractiveOracleTest, NeiConceptualizeWithName) {
  std::istringstream in("c\nInter\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  NeiDecision decision = oracle.DecideNonEmptyIntersection(Join(), Counts());
  EXPECT_EQ(decision.action, NeiAction::kConceptualize);
  EXPECT_EQ(decision.relation_name, "Inter");
  // The prompt shows the valuations.
  EXPECT_NE(out.str().find("||left||  = 10"), std::string::npos);
  EXPECT_NE(out.str().find("R[a] |><| S[b]"), std::string::npos);
}

TEST(InteractiveOracleTest, NeiDirections) {
  {
    std::istringstream in("l\n");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
              NeiAction::kForceLeftInRight);
  }
  {
    std::istringstream in("r\n");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
              NeiAction::kForceRightInLeft);
  }
  {
    std::istringstream in("i\n");
    std::ostringstream out;
    InteractiveOracle oracle(&in, &out);
    EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
              NeiAction::kIgnore);
  }
}

TEST(InteractiveOracleTest, NeiEofIgnores) {
  std::istringstream in("");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_EQ(oracle.DecideNonEmptyIntersection(Join(), Counts()).action,
            NeiAction::kIgnore);
}

TEST(InteractiveOracleTest, YesNoQuestions) {
  std::istringstream in("y\nn\nYES\nno\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_TRUE(oracle.EnforceFailedFd(Fd()));
  EXPECT_FALSE(oracle.ValidateFd(Fd()));
  EXPECT_TRUE(oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}}));
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd()));
}

TEST(InteractiveOracleTest, UnrecognizedInputUsesDefaults) {
  std::istringstream in("maybe\nmaybe\nmaybe\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd()));                // default no
  EXPECT_TRUE(oracle.ValidateFd(Fd()));                      // default yes
  EXPECT_FALSE(
      oracle.ConceptualizeHiddenObject({"R", AttributeSet{"a"}}));
}

TEST(InteractiveOracleTest, NamingPrompts) {
  std::istringstream in("Manager\n\n");
  std::ostringstream out;
  InteractiveOracle oracle(&in, &out);
  EXPECT_EQ(oracle.NameRelationForFd(Fd()), "Manager");
  EXPECT_EQ(oracle.NameHiddenObjectRelation({"R", AttributeSet{"a"}}), "");
}

}  // namespace
}  // namespace dbre
