// End-to-end reproduction of the paper's running example (§5–§7):
// experiments E1–E9. Every artifact set the paper prints is asserted
// verbatim.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "eer/dot_export.h"
#include "sql/scanner.h"
#include "workload/paper_example.h"

namespace dbre {
namespace {

using workload::BuildPaperDatabase;
using workload::PaperJoinSet;
using workload::PaperOracle;
using workload::PaperProgramSources;

std::vector<std::string> ToStrings(
    const std::vector<QualifiedAttributes>& items) {
  std::vector<std::string> out;
  for (const QualifiedAttributes& item : items) out.push_back(item.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ToStrings(
    const std::vector<InclusionDependency>& items) {
  std::vector<std::string> out;
  for (const InclusionDependency& item : items) out.push_back(item.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

class PaperExampleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto database = BuildPaperDatabase();
    ASSERT_TRUE(database.ok()) << database.status();
    database_ = new Database(std::move(database).value());
    oracle_ = PaperOracle().release();
    auto report =
        RunPipeline(*database_, PaperJoinSet(), oracle_, PipelineOptions{});
    ASSERT_TRUE(report.ok()) << report.status();
    report_ = new PipelineReport(std::move(report).value());
  }
  static void TearDownTestSuite() {
    delete report_;
    delete oracle_;
    delete database_;
    report_ = nullptr;
    oracle_ = nullptr;
    database_ = nullptr;
  }

  static Database* database_;
  static ScriptedOracle* oracle_;
  static PipelineReport* report_;
};

Database* PaperExampleTest::database_ = nullptr;
ScriptedOracle* PaperExampleTest::oracle_ = nullptr;
PipelineReport* PaperExampleTest::report_ = nullptr;

// E1: the sets K and N of §5.
TEST_F(PaperExampleTest, KeySetMatchesPaper) {
  EXPECT_EQ(ToStrings(report_->key_set),
            (std::vector<std::string>{
                "Assignment.{dep, emp, proj}", "Department.{dep}",
                "HEmployee.{date, no}", "Person.{id}"}));
}

TEST_F(PaperExampleTest, NotNullSetMatchesPaper) {
  EXPECT_EQ(ToStrings(report_->not_null_set),
            (std::vector<std::string>{
                "Assignment.{dep}", "Assignment.{emp}", "Assignment.{proj}",
                "Department.{dep}", "Department.{location}",
                "HEmployee.{date}", "HEmployee.{no}", "Person.{id}"}));
}

// E2: the set Q extracted from the application programs equals the set the
// paper lists in §5.
TEST_F(PaperExampleTest, ProgramScanYieldsPaperJoinSet) {
  sql::ExtractionOptions options;
  options.catalog = database_;
  auto joins =
      sql::BuildQueryJoinSetFromSources(PaperProgramSources(), options);
  ASSERT_TRUE(joins.ok()) << joins.status();
  EXPECT_EQ(*joins, PaperJoinSet());
}

// E3: the valuations of §6.1.
TEST_F(PaperExampleTest, JoinCountsMatchPaper) {
  Database db = database_->Clone();
  auto find_outcome = [&](const std::string& left, const std::string& right) {
    for (const JoinOutcome& outcome : report_->ind.outcomes) {
      if (outcome.join.left_relation == left &&
          outcome.join.right_relation == right) {
        return outcome;
      }
    }
    ADD_FAILURE() << "no outcome for " << left << "-" << right;
    return JoinOutcome{};
  };
  JoinOutcome person = find_outcome("HEmployee", "Person");
  EXPECT_EQ(person.counts.n_left, 1550u);   // ‖HEmployee[no]‖
  EXPECT_EQ(person.counts.n_right, 2200u);  // ‖Person[id]‖
  EXPECT_EQ(person.counts.n_join, 1550u);

  JoinOutcome nei = find_outcome("Assignment", "Department");
  EXPECT_EQ(nei.counts.n_left, 300u);   // ‖Assignment[dep]‖
  EXPECT_EQ(nei.counts.n_right, 35u);   // ‖Department[dep]‖
  EXPECT_EQ(nei.counts.n_join, 30u);
  EXPECT_EQ(nei.kind, JoinOutcomeKind::kNeiConceptualized);
  EXPECT_EQ(nei.detail, "Ass-Dept");
}

// E4: the final IND set of §6.1 (6 dependencies) and S = {Ass-Dept}.
TEST_F(PaperExampleTest, IndSetMatchesPaper) {
  EXPECT_EQ(ToStrings(report_->ind.inds),
            (std::vector<std::string>{
                "Ass-Dept[dep] << Assignment[dep]",
                "Ass-Dept[dep] << Department[dep]",
                "Assignment[emp] << HEmployee[no]",
                "Department[emp] << HEmployee[no]",
                "Department[proj] << Assignment[proj]",
                "HEmployee[no] << Person[id]"}));
  EXPECT_EQ(report_->ind.new_relations,
            std::vector<std::string>{"Ass-Dept"});
}

// E5: LHS (5 elements) and H = {Assignment.{dep}} of §6.2.1.
TEST_F(PaperExampleTest, LhsSetMatchesPaper) {
  EXPECT_EQ(ToStrings(report_->lhs.lhs),
            (std::vector<std::string>{
                "Assignment.{emp}", "Assignment.{proj}", "Department.{emp}",
                "Department.{proj}", "HEmployee.{no}"}));
  EXPECT_EQ(ToStrings(report_->lhs.hidden),
            std::vector<std::string>{"Assignment.{dep}"});
}

// E6: F and the final H of §6.2.2.
TEST_F(PaperExampleTest, FdsAndHiddenObjectsMatchPaper) {
  std::vector<std::string> fds;
  for (const FunctionalDependency& fd : report_->rhs.fds) {
    fds.push_back(fd.ToString());
  }
  std::sort(fds.begin(), fds.end());
  EXPECT_EQ(fds, (std::vector<std::string>{
                     "Assignment: {proj} -> {project-name}",
                     "Department: {emp} -> {proj, skill}"}));
  EXPECT_EQ(ToStrings(report_->rhs.hidden),
            (std::vector<std::string>{"Assignment.{dep}",
                                      "HEmployee.{no}"}));
}

// E7: the restructured 3NF schema of §7 (9 relations with the paper's
// keys and attribute layout).
TEST_F(PaperExampleTest, RestructuredSchemaMatchesPaper) {
  const Database& db = report_->restruct.database;
  EXPECT_EQ(db.RelationNames(),
            (std::vector<std::string>{
                "Ass-Dept", "Assignment", "Department", "Employee",
                "HEmployee", "Manager", "Other-Dept", "Person", "Project"}));

  auto attributes = [&](const std::string& relation) {
    return (*db.GetTable(relation).value()).schema().AttributeNames();
  };
  auto key = [&](const std::string& relation) {
    return (*db.GetTable(relation).value()).schema().PrimaryKey().value();
  };
  EXPECT_EQ(attributes("Person"),
            (AttributeSet{"id", "name", "street", "number", "zip-code",
                          "state"}));
  EXPECT_EQ(key("Person"), AttributeSet{"id"});
  EXPECT_EQ(attributes("HEmployee"), (AttributeSet{"no", "date", "salary"}));
  EXPECT_EQ(key("HEmployee"), (AttributeSet{"no", "date"}));
  EXPECT_EQ(attributes("Department"),
            (AttributeSet{"dep", "emp", "location"}));
  EXPECT_EQ(key("Department"), AttributeSet{"dep"});
  EXPECT_EQ(attributes("Assignment"),
            (AttributeSet{"emp", "dep", "proj", "date"}));
  EXPECT_EQ(key("Assignment"), (AttributeSet{"emp", "dep", "proj"}));
  EXPECT_EQ(attributes("Employee"), AttributeSet{"no"});
  EXPECT_EQ(key("Employee"), AttributeSet{"no"});
  EXPECT_EQ(attributes("Ass-Dept"), AttributeSet{"dep"});
  EXPECT_EQ(attributes("Other-Dept"), AttributeSet{"dep"});
  EXPECT_EQ(attributes("Manager"), (AttributeSet{"emp", "skill", "proj"}));
  EXPECT_EQ(key("Manager"), AttributeSet{"emp"});
  EXPECT_EQ(attributes("Project"), (AttributeSet{"proj", "project-name"}));
  EXPECT_EQ(key("Project"), AttributeSet{"proj"});
}

// E8: the ten referential integrity constraints of §7.
TEST_F(PaperExampleTest, RicSetMatchesPaper) {
  EXPECT_EQ(ToStrings(report_->restruct.rics),
            (std::vector<std::string>{
                "Ass-Dept[dep] << Department[dep]",
                "Ass-Dept[dep] << Other-Dept[dep]",
                "Assignment[dep] << Other-Dept[dep]",
                "Assignment[emp] << Employee[no]",
                "Assignment[proj] << Project[proj]",
                "Department[emp] << Manager[emp]",
                "Employee[no] << Person[id]",
                "HEmployee[no] << Employee[no]",
                "Manager[emp] << Employee[no]",
                "Manager[proj] << Project[proj]"}));
}

// The RICs actually hold in the restructured extension — Restruct
// materialized consistent data.
TEST_F(PaperExampleTest, RicsHoldInRestructuredExtension) {
  for (const InclusionDependency& ric : report_->restruct.rics) {
    auto holds = Satisfies(report_->restruct.database, ric);
    ASSERT_TRUE(holds.ok()) << holds.status();
    EXPECT_TRUE(*holds) << ric.ToString();
  }
}

// E9: the EER schema of Figure 1.
TEST_F(PaperExampleTest, EerSchemaMatchesFigure1) {
  const eer::EerSchema& eer = report_->eer;

  // Entities: all relations except Assignment (which becomes the ternary
  // relationship).
  std::vector<std::string> entity_names;
  for (const eer::EntityType& entity : eer.entities()) {
    entity_names.push_back(entity.name);
  }
  std::sort(entity_names.begin(), entity_names.end());
  EXPECT_EQ(entity_names,
            (std::vector<std::string>{"Ass-Dept", "Department", "Employee",
                                      "HEmployee", "Manager", "Other-Dept",
                                      "Person", "Project"}));

  // is-a links: Employee→Person, Manager→Employee, Ass-Dept→Other-Dept,
  // Ass-Dept→Department.
  std::vector<std::string> isa;
  for (const eer::IsALink& link : eer.isa_links()) {
    isa.push_back(link.ToString());
  }
  std::sort(isa.begin(), isa.end());
  EXPECT_EQ(isa, (std::vector<std::string>{
                     "Ass-Dept is-a Department", "Ass-Dept is-a Other-Dept",
                     "Employee is-a Person", "Manager is-a Employee"}));

  // HEmployee is the weak entity.
  auto hemployee = eer.GetEntity("HEmployee");
  ASSERT_TRUE(hemployee.ok());
  EXPECT_TRUE((*hemployee.value()).weak);

  // Assignment: ternary many-to-many among Employee, Other-Dept, Project,
  // carrying the date attribute.
  const eer::RelationshipType* assignment = nullptr;
  for (const eer::RelationshipType& relationship : eer.relationships()) {
    if (relationship.name == "Assignment") assignment = &relationship;
  }
  ASSERT_NE(assignment, nullptr);
  EXPECT_TRUE(assignment->IsManyToMany());
  std::vector<std::string> participants;
  for (const eer::Role& role : assignment->roles) {
    participants.push_back(role.entity);
    EXPECT_EQ(role.cardinality, eer::Cardinality::kMany);
  }
  std::sort(participants.begin(), participants.end());
  EXPECT_EQ(participants, (std::vector<std::string>{"Employee", "Other-Dept",
                                                    "Project"}));
  EXPECT_EQ(assignment->attributes, AttributeSet{"date"});

  // Department—Manager binary relationship, N:1.
  bool found_binary = false;
  for (const eer::RelationshipType& relationship : eer.relationships()) {
    if (relationship.roles.size() != 2) continue;
    bool department = false, manager = false;
    for (const eer::Role& role : relationship.roles) {
      if (role.entity == "Department") department = true;
      if (role.entity == "Manager") manager = true;
    }
    if (department && manager) found_binary = true;
  }
  EXPECT_TRUE(found_binary);

  EXPECT_TRUE(eer.Validate().ok());
}

// The DOT export renders without error and mentions every construct.
TEST_F(PaperExampleTest, DotExportContainsAllConstructs) {
  std::string dot = eer::ToDot(report_->eer);
  EXPECT_NE(dot.find("\"Person\""), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // weak entity
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("is-a"), std::string::npos);
}

// The oracle asked exactly the questions the paper narrates.
TEST_F(PaperExampleTest, OracleInteractionsMatchNarrative) {
  RecordingOracle recording(oracle_);
  auto database = BuildPaperDatabase();
  ASSERT_TRUE(database.ok());
  auto report = RunPipeline(*database, PaperJoinSet(), &recording);
  ASSERT_TRUE(report.ok()) << report.status();

  size_t nei = 0, hidden = 0;
  for (const RecordingOracle::Interaction& interaction :
       recording.interactions()) {
    if (interaction.kind == "nei") ++nei;
    if (interaction.kind == "hidden_object") ++hidden;
  }
  EXPECT_EQ(nei, 1u);     // only Assignment[dep] ⋈ Department[dep]
  EXPECT_EQ(hidden, 3u);  // HEmployee.no, Assignment.emp, Department.proj
}

}  // namespace
}  // namespace dbre
