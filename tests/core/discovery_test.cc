// Unit tests for IND-Discovery, LHS-Discovery and RHS-Discovery on small
// hand-built databases covering every branch of the §6 algorithms.
#include <gtest/gtest.h>

#include "core/ind_discovery.h"
#include "core/lhs_discovery.h"
#include "core/rhs_discovery.h"

namespace dbre {
namespace {

// Orders(ord*, cust, item, item_label) and Customers(id*, name):
//   Orders.cust ⊆ Customers.id; item → item_label holds.
Database MakeOrdersDatabase(bool with_orphan) {
  Database db;
  RelationSchema orders("Orders");
  EXPECT_TRUE(orders.AddAttribute("ord", DataType::kInt64).ok());
  EXPECT_TRUE(orders.AddAttribute("cust", DataType::kInt64).ok());
  EXPECT_TRUE(orders.AddAttribute("item", DataType::kInt64).ok());
  EXPECT_TRUE(orders.AddAttribute("item_label", DataType::kString).ok());
  EXPECT_TRUE(orders.DeclareUnique({"ord"}).ok());
  EXPECT_TRUE(db.CreateRelation(std::move(orders)).ok());

  RelationSchema customers("Customers");
  EXPECT_TRUE(customers.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(customers.AddAttribute("name", DataType::kString).ok());
  EXPECT_TRUE(customers.DeclareUnique({"id"}).ok());
  EXPECT_TRUE(db.CreateRelation(std::move(customers)).ok());

  Table* orders_table = *db.GetMutableTable("Orders");
  for (int64_t o = 1; o <= 20; ++o) {
    int64_t cust = 1 + o % 5;
    int64_t item = o % 4;
    EXPECT_TRUE(orders_table
                    ->Insert({Value::Int(o), Value::Int(cust),
                              Value::Int(item),
                              Value::Text("item" + std::to_string(item))})
                    .ok());
  }
  if (with_orphan) {
    EXPECT_TRUE(orders_table
                    ->Insert({Value::Int(21), Value::Int(99), Value::Int(0),
                              Value::Text("item0")})
                    .ok());
  }
  Table* customers_table = *db.GetMutableTable("Customers");
  for (int64_t c = 1; c <= 8; ++c) {
    EXPECT_TRUE(customers_table
                    ->Insert({Value::Int(c),
                              Value::Text("cust" + std::to_string(c))})
                    .ok());
  }
  return db;
}

EquiJoin CustJoin() {
  return EquiJoin::Single("Orders", "cust", "Customers", "id");
}

TEST(IndDiscoveryTest, CleanInclusionElicitsInd) {
  Database db = MakeOrdersDatabase(/*with_orphan=*/false);
  DefaultOracle oracle;
  auto result = DiscoverInds(&db, {CustJoin()}, &oracle);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->inds.size(), 1u);
  EXPECT_EQ(result->inds[0].ToString(), "Orders[cust] << Customers[id]");
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_EQ(result->outcomes[0].kind, JoinOutcomeKind::kLeftIncluded);
  EXPECT_EQ(result->extension_queries, 3u);
  EXPECT_TRUE(result->new_relations.empty());
}

TEST(IndDiscoveryTest, EqualValueSetsElicitBothDirections) {
  Database db = MakeOrdersDatabase(false);
  // Shrink Customers to exactly the referenced ids {2,3,4,5,1} → equal sets.
  Table* customers = *db.GetMutableTable("Customers");
  customers->Clear();
  for (int64_t c = 1; c <= 5; ++c) {
    ASSERT_TRUE(customers
                    ->Insert({Value::Int(c),
                              Value::Text("c" + std::to_string(c))})
                    .ok());
  }
  DefaultOracle oracle;
  auto result = DiscoverInds(&db, {CustJoin()}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->inds.size(), 2u);
  EXPECT_EQ(result->outcomes[0].kind, JoinOutcomeKind::kBothIncluded);
}

TEST(IndDiscoveryTest, EmptyIntersectionElicitsNothing) {
  Database db = MakeOrdersDatabase(false);
  Table* customers = *db.GetMutableTable("Customers");
  customers->Clear();
  for (int64_t c = 100; c <= 105; ++c) {
    ASSERT_TRUE(customers
                    ->Insert({Value::Int(c),
                              Value::Text("c" + std::to_string(c))})
                    .ok());
  }
  DefaultOracle oracle;
  auto result = DiscoverInds(&db, {CustJoin()}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->inds.empty());
  EXPECT_EQ(result->outcomes[0].kind, JoinOutcomeKind::kEmptyIntersection);
}

TEST(IndDiscoveryTest, NeiIgnoredByDefaultOracle) {
  Database db = MakeOrdersDatabase(/*with_orphan=*/true);
  DefaultOracle oracle;
  auto result = DiscoverInds(&db, {CustJoin()}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->inds.empty());
  EXPECT_EQ(result->outcomes[0].kind, JoinOutcomeKind::kNeiIgnored);
}

TEST(IndDiscoveryTest, NeiForcedDirection) {
  Database db = MakeOrdersDatabase(true);
  ScriptedOracle oracle;
  // The script is keyed by the join exactly as DiscoverInds receives it;
  // "left in right" is relative to that rendering.
  oracle.ScriptNei(CustJoin().ToString(),
                   NeiDecision{NeiAction::kForceLeftInRight, ""});
  auto result = DiscoverInds(&db, {CustJoin()}, &oracle);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->inds.size(), 1u);
  EXPECT_EQ(result->inds[0].ToString(), "Orders[cust] << Customers[id]");
  EXPECT_EQ(result->outcomes[0].kind, JoinOutcomeKind::kNeiForced);
}

TEST(IndDiscoveryTest, NeiConceptualizedCreatesRelation) {
  Database db = MakeOrdersDatabase(true);
  ScriptedOracle oracle;
  oracle.ScriptNei(CustJoin().Canonicalize().ToString(),
                   NeiDecision{NeiAction::kConceptualize, "ActiveCust"});
  auto result = DiscoverInds(&db, {CustJoin()}, &oracle);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->new_relations, std::vector<std::string>{"ActiveCust"});
  ASSERT_TRUE(db.HasRelation("ActiveCust"));
  const Table& active = **db.GetTable("ActiveCust");
  EXPECT_EQ(active.num_rows(), 5u);  // ids 1..5 (99 is dangling)
  EXPECT_TRUE(active.schema().IsKey(AttributeSet{"cust"}));
  // Both INDs hold by construction.
  for (const InclusionDependency& ind : result->inds) {
    EXPECT_TRUE(*Satisfies(db, ind)) << ind.ToString();
  }
  EXPECT_EQ(result->inds.size(), 2u);
}

TEST(IndDiscoveryTest, AutoDerivedIntersectionName) {
  Database db = MakeOrdersDatabase(true);
  ScriptedOracle oracle;
  oracle.ScriptNei(CustJoin().Canonicalize().ToString(),
                   NeiDecision{NeiAction::kConceptualize, ""});
  auto result = DiscoverInds(&db, {CustJoin()}, &oracle);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->new_relations.size(), 1u);
  EXPECT_EQ(result->new_relations[0], "Orders_Customers_cust");
}

TEST(IndDiscoveryTest, InvalidJoinsSkippedOrFatal) {
  Database db = MakeOrdersDatabase(false);
  DefaultOracle oracle;
  EquiJoin bad = EquiJoin::Single("Orders", "cust", "Nope", "id");
  auto result = DiscoverInds(&db, {bad, CustJoin()}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes[0].kind, JoinOutcomeKind::kError);
  EXPECT_EQ(result->inds.size(), 1u);

  IndDiscoveryOptions options;
  options.skip_invalid_joins = false;
  EXPECT_FALSE(DiscoverInds(&db, {bad}, &oracle, options).ok());
}

TEST(IndDiscoveryTest, NullArgumentsRejected) {
  Database db = MakeOrdersDatabase(false);
  DefaultOracle oracle;
  EXPECT_FALSE(DiscoverInds(nullptr, {}, &oracle).ok());
  EXPECT_FALSE(DiscoverInds(&db, {}, nullptr).ok());
}

TEST(LhsDiscoveryTest, NonKeySidesBecomeCandidates) {
  Database db = MakeOrdersDatabase(false);
  std::vector<InclusionDependency> inds = {
      InclusionDependency::Single("Orders", "cust", "Customers", "id")};
  LhsDiscoveryResult result = DiscoverLhs(db, {}, inds);
  ASSERT_EQ(result.lhs.size(), 1u);
  EXPECT_EQ(result.lhs[0].ToString(), "Orders.{cust}");  // id is a key
  EXPECT_TRUE(result.hidden.empty());
}

TEST(LhsDiscoveryTest, SRelationsFeedHiddenSet) {
  Database db = MakeOrdersDatabase(false);
  // Pretend "Inter" was conceptualized: Inter[x] << Orders[cust] (non-key
  // RHS → hidden) and Inter[x] << Customers[id] (key RHS → nothing).
  RelationSchema inter("Inter");
  ASSERT_TRUE(inter.AddAttribute("x", DataType::kInt64).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(inter)).ok());
  std::vector<InclusionDependency> inds = {
      InclusionDependency::Single("Inter", "x", "Orders", "cust"),
      InclusionDependency::Single("Inter", "x", "Customers", "id")};
  LhsDiscoveryResult result = DiscoverLhs(db, {"Inter"}, inds);
  EXPECT_TRUE(result.lhs.empty());
  ASSERT_EQ(result.hidden.size(), 1u);
  EXPECT_EQ(result.hidden[0].ToString(), "Orders.{cust}");
}

TEST(LhsDiscoveryTest, DeduplicatesAcrossInds) {
  Database db = MakeOrdersDatabase(false);
  std::vector<InclusionDependency> inds = {
      InclusionDependency::Single("Orders", "cust", "Customers", "id"),
      InclusionDependency::Single("Orders", "cust", "Customers", "id")};
  LhsDiscoveryResult result = DiscoverLhs(db, {}, inds);
  EXPECT_EQ(result.lhs.size(), 1u);
}

TEST(RhsDiscoveryTest, ElicitsFdWithPrunedCandidates) {
  Database db = MakeOrdersDatabase(false);
  DefaultOracle oracle;
  std::vector<QualifiedAttributes> lhs = {
      {"Orders", AttributeSet{"item"}}};
  auto result = DiscoverRhs(db, lhs, {}, &oracle);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->fds.size(), 1u);
  EXPECT_EQ(result->fds[0].ToString(), "Orders: {item} -> {item_label}");
  // T excluded ord (the key); item and cust were also checked... cust is
  // not determined by item (items repeat across customers).
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_EQ(result->outcomes[0].disposition,
            RhsCandidateOutcome::Disposition::kFdElicited);
  EXPECT_FALSE(result->outcomes[0].tested.Contains("ord"));
}

TEST(RhsDiscoveryTest, EmptyRhsAsksHiddenObjectQuestion) {
  Database db = MakeOrdersDatabase(false);
  ScriptedOracle oracle;
  oracle.ScriptHiddenObject("Orders.{cust}", true);
  std::vector<QualifiedAttributes> lhs = {{"Orders", AttributeSet{"cust"}}};
  auto result = DiscoverRhs(db, lhs, {}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.empty());
  ASSERT_EQ(result->hidden.size(), 1u);
  EXPECT_EQ(result->hidden[0].ToString(), "Orders.{cust}");
  EXPECT_EQ(result->outcomes[0].disposition,
            RhsCandidateOutcome::Disposition::kHiddenElicited);
}

TEST(RhsDiscoveryTest, DeclinedHiddenObjectDropped) {
  Database db = MakeOrdersDatabase(false);
  DefaultOracle oracle;  // declines hidden objects
  std::vector<QualifiedAttributes> lhs = {{"Orders", AttributeSet{"cust"}}};
  auto result = DiscoverRhs(db, lhs, {}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hidden.empty());
  EXPECT_EQ(result->outcomes[0].disposition,
            RhsCandidateOutcome::Disposition::kDropped);
}

TEST(RhsDiscoveryTest, HiddenMemberWithFdMovesToF) {
  Database db = MakeOrdersDatabase(false);
  DefaultOracle oracle;
  std::vector<QualifiedAttributes> hidden = {
      {"Orders", AttributeSet{"item"}}};
  auto result = DiscoverRhs(db, {}, hidden, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fds.size(), 1u);
  EXPECT_TRUE(result->hidden.empty());  // moved out of H
}

TEST(RhsDiscoveryTest, HiddenMemberWithoutFdStays) {
  Database db = MakeOrdersDatabase(false);
  DefaultOracle oracle;
  std::vector<QualifiedAttributes> hidden = {
      {"Orders", AttributeSet{"cust"}}};
  auto result = DiscoverRhs(db, {}, hidden, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hidden.size(), 1u);
  EXPECT_EQ(result->outcomes[0].disposition,
            RhsCandidateOutcome::Disposition::kHiddenConfirmed);
}

TEST(RhsDiscoveryTest, ExpertEnforcesFailedFd) {
  Database db = MakeOrdersDatabase(false);
  ScriptedOracle oracle;
  // cust → name does not exist in Orders; enforce cust → item (which fails
  // in the data).
  oracle.ScriptEnforceFd("Orders: {cust} -> {item}", true);
  std::vector<QualifiedAttributes> lhs = {{"Orders", AttributeSet{"cust"}}};
  auto result = DiscoverRhs(db, lhs, {}, &oracle);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->fds.size(), 1u);
  EXPECT_EQ(result->fds[0].ToString(), "Orders: {cust} -> {item}");
}

TEST(RhsDiscoveryTest, ExpertRejectsValidatedFd) {
  Database db = MakeOrdersDatabase(false);
  ScriptedOracle oracle;
  oracle.ScriptValidateFd("Orders: {item} -> {item_label}", false);
  std::vector<QualifiedAttributes> lhs = {{"Orders", AttributeSet{"item"}}};
  auto result = DiscoverRhs(db, lhs, {}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fds.empty());
  EXPECT_EQ(result->outcomes[0].disposition,
            RhsCandidateOutcome::Disposition::kFdRejected);
}

TEST(RhsDiscoveryTest, PruningAblationChecksMore) {
  Database db = MakeOrdersDatabase(false);
  DefaultOracle oracle;
  std::vector<QualifiedAttributes> lhs = {{"Orders", AttributeSet{"item"}}};
  auto pruned = DiscoverRhs(db, lhs, {}, &oracle);
  RhsDiscoveryOptions no_pruning;
  no_pruning.prune_key_attributes = false;
  no_pruning.prune_not_null_attributes = false;
  auto unpruned = DiscoverRhs(db, lhs, {}, &oracle, no_pruning);
  ASSERT_TRUE(pruned.ok() && unpruned.ok());
  EXPECT_GT(unpruned->fd_checks, pruned->fd_checks);
  EXPECT_GT(pruned->pruned_attributes, 0u);
}

TEST(RhsDiscoveryTest, NotNullPruningRule) {
  // Build a relation where the candidate LHS is nullable and another
  // attribute is not-null: that attribute must be pruned.
  Database db;
  RelationSchema r("R");
  ASSERT_TRUE(r.AddAttribute("k", DataType::kInt64).ok());
  ASSERT_TRUE(r.AddAttribute("a", DataType::kInt64).ok());  // nullable
  ASSERT_TRUE(
      r.AddAttribute("nn", DataType::kInt64, /*not_null=*/true).ok());
  ASSERT_TRUE(r.AddAttribute("b", DataType::kInt64).ok());
  ASSERT_TRUE(r.DeclareUnique({"k"}).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  Table* table = *db.GetMutableTable("R");
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(table
                    ->Insert({Value::Int(i), Value::Int(i % 3),
                              Value::Int(i), Value::Int((i % 3) * 10)})
                    .ok());
  }
  DefaultOracle oracle;
  std::vector<QualifiedAttributes> lhs = {{"R", AttributeSet{"a"}}};
  auto result = DiscoverRhs(db, lhs, {}, &oracle);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcomes.size(), 1u);
  // nn pruned (a is nullable), k pruned (key) → only b tested.
  EXPECT_EQ(result->outcomes[0].tested, AttributeSet{"b"});
  ASSERT_EQ(result->fds.size(), 1u);
  EXPECT_EQ(result->fds[0].ToString(), "R: {a} -> {b}");
}

}  // namespace
}  // namespace dbre
