#include "core/report_json.h"

#include <gtest/gtest.h>

#include "workload/paper_example.h"

namespace dbre {
namespace {

// Tiny structural JSON validator: bracket balance, quote balance outside
// strings, and a few required keys. Not a full parser, but catches emitter
// bugs (unbalanced structures, broken escaping).
bool LooksLikeValidJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        --depth;
        if (depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

PipelineReport PaperReport() {
  auto database = workload::BuildPaperDatabase();
  EXPECT_TRUE(database.ok());
  auto oracle = workload::PaperOracle();
  auto report =
      RunPipeline(*database, workload::PaperJoinSet(), oracle.get());
  EXPECT_TRUE(report.ok()) << report.status();
  return std::move(report).value();
}

TEST(ReportJsonTest, PaperReportSerializes) {
  PipelineReport report = PaperReport();
  std::string json = ReportToJson(report);
  EXPECT_TRUE(LooksLikeValidJson(json)) << json.substr(0, 400);
  // Spot-check content.
  for (const char* expected :
       {"\"keys\"", "\"inds\"", "\"fds\"", "\"rics\"", "\"eer\"",
        "\"Ass-Dept\"", "\"Manager\"", "\"project-name\"",
        "\"nei_conceptualized\"", "\"timings_us\"",
        "\"hidden object HEmployee.{no}\""}) {
    EXPECT_NE(json.find(expected), std::string::npos) << expected;
  }
}

TEST(ReportJsonTest, CompactModeHasNoNewlines) {
  PipelineReport report = PaperReport();
  JsonOptions options;
  options.pretty = false;
  std::string json = ReportToJson(report, options);
  EXPECT_TRUE(LooksLikeValidJson(json));
  EXPECT_EQ(json.find('\n'), std::string::npos);
  // Compact and pretty agree modulo whitespace (cheap check: lengths of
  // de-whitespaced forms match).
  std::string pretty = ReportToJson(report);
  auto strip = [](const std::string& text) {
    std::string out;
    bool in_string = false;
    for (size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (in_string) {
        out += c;
        if (c == '\\' && i + 1 < text.size()) out += text[++i];
        else if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') {
        in_string = true;
        out += c;
        continue;
      }
      if (c != ' ' && c != '\n') out += c;
    }
    return out;
  };
  EXPECT_EQ(strip(json), strip(pretty));
}

TEST(ReportJsonTest, EscapesHostileStrings) {
  PipelineReport report;  // empty report, but inject a hostile name
  report.joins.push_back(
      EquiJoin::Single("R\"\\\n", "a\tb", "S", "c"));
  std::string json = ReportToJson(report);
  EXPECT_TRUE(LooksLikeValidJson(json)) << json;
  EXPECT_NE(json.find("R\\\"\\\\\\n"), std::string::npos);
  EXPECT_NE(json.find("a\\tb"), std::string::npos);
}

TEST(ReportJsonTest, WritesFile) {
  PipelineReport report;
  std::string path = ::testing::TempDir() + "/dbre_report.json";
  EXPECT_TRUE(WriteReportJson(report, path).ok());
  EXPECT_FALSE(WriteReportJson(report, "/nonexistent/x.json").ok());
}

}  // namespace
}  // namespace dbre
