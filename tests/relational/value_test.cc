#include "relational/value.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.ToString(), "NULL");
}

TEST(ValueTest, TaggedAccessors) {
  EXPECT_EQ(Value::Int(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value::Real(1.5).as_real(), 1.5);
  EXPECT_TRUE(Value::Boolean(true).as_bool());
  EXPECT_EQ(Value::Text("x").as_text(), "x");
}

TEST(ValueTest, EqualityIsTagAware) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Int(1), Value::Text("1"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, OrderingIsTotal) {
  EXPECT_LT(Value::Null(), Value::Int(0));  // NULL first
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Text("a"), Value::Text("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Text("abc").Hash(), Value::Text("abc").Hash());
  // Different tags with "same" payload should (overwhelmingly) differ.
  EXPECT_NE(Value::Int(0).Hash(), Value::Null().Hash());
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value::Int(1).MatchesType(DataType::kInt64));
  EXPECT_FALSE(Value::Int(1).MatchesType(DataType::kString));
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kInt64));
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kString));
}

TEST(ValueParseTest, ParsesInt) {
  auto value = Value::Parse("42", DataType::kInt64);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->as_int(), 42);
  EXPECT_FALSE(Value::Parse("4x", DataType::kInt64).ok());
  EXPECT_FALSE(Value::Parse("4.2", DataType::kInt64).ok());
}

TEST(ValueParseTest, ParsesNegativeInt) {
  auto value = Value::Parse("-17", DataType::kInt64);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->as_int(), -17);
}

TEST(ValueParseTest, ParsesDouble) {
  auto value = Value::Parse("3.25", DataType::kDouble);
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(value->as_real(), 3.25);
  EXPECT_FALSE(Value::Parse("x", DataType::kDouble).ok());
}

TEST(ValueParseTest, ParsesBool) {
  EXPECT_TRUE(Value::Parse("true", DataType::kBool)->as_bool());
  EXPECT_TRUE(Value::Parse("1", DataType::kBool)->as_bool());
  EXPECT_FALSE(Value::Parse("FALSE", DataType::kBool)->as_bool());
  EXPECT_FALSE(Value::Parse("yes", DataType::kBool).ok());
}

TEST(ValueParseTest, ParsesStringTrimmed) {
  EXPECT_EQ(Value::Parse("  hi  ", DataType::kString)->as_text(), "hi");
}

TEST(ValueParseTest, EmptyAndNullLiteralsAreNull) {
  EXPECT_TRUE(Value::Parse("", DataType::kInt64)->is_null());
  EXPECT_TRUE(Value::Parse("NULL", DataType::kString)->is_null());
  EXPECT_TRUE(Value::Parse("null", DataType::kDouble)->is_null());
}

TEST(DataTypeTest, NamesRoundTrip) {
  for (DataType type : {DataType::kInt64, DataType::kDouble, DataType::kBool,
                        DataType::kString}) {
    auto parsed = DataTypeFromName(DataTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_TRUE(DataTypeFromName("VARCHAR").ok());
  EXPECT_FALSE(DataTypeFromName("blob").ok());
}

TEST(ValueVectorHashTest, ConsistentAndOrderSensitive) {
  ValueVectorHash hash;
  ValueVector a = {Value::Int(1), Value::Text("x")};
  ValueVector b = {Value::Int(1), Value::Text("x")};
  ValueVector c = {Value::Text("x"), Value::Int(1)};
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
}

}  // namespace
}  // namespace dbre
