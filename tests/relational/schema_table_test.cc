#include <gtest/gtest.h>

#include "relational/schema.h"
#include "relational/table.h"

namespace dbre {
namespace {

RelationSchema MakeSchema() {
  RelationSchema schema("R");
  EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("name", DataType::kString).ok());
  EXPECT_TRUE(
      schema.AddAttribute("score", DataType::kDouble, /*not_null=*/true)
          .ok());
  EXPECT_TRUE(schema.DeclareUnique({"id"}).ok());
  return schema;
}

TEST(SchemaTest, RejectsDuplicateAttribute) {
  RelationSchema schema("R");
  ASSERT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
  EXPECT_EQ(schema.AddAttribute("a", DataType::kString).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsEmptyAttributeName) {
  RelationSchema schema("R");
  EXPECT_EQ(schema.AddAttribute("", DataType::kInt64).code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, AttributeLookup) {
  RelationSchema schema = MakeSchema();
  EXPECT_TRUE(schema.HasAttribute("name"));
  EXPECT_FALSE(schema.HasAttribute("missing"));
  EXPECT_EQ(*schema.AttributeIndex("name"), 1u);
  EXPECT_EQ(*schema.AttributeType("score"), DataType::kDouble);
  EXPECT_EQ(schema.AttributeType("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, UniqueDeclarationValidation) {
  RelationSchema schema = MakeSchema();
  EXPECT_EQ(schema.DeclareUnique({"missing"}).code(), StatusCode::kNotFound);
  EXPECT_EQ(schema.DeclareUnique({"id"}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.DeclareUnique(AttributeSet{}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(schema.DeclareUnique({"name", "score"}).ok());
  EXPECT_TRUE(schema.IsKey(AttributeSet{"name", "score"}));
  EXPECT_FALSE(schema.IsKey(AttributeSet{"name"}));
}

TEST(SchemaTest, PrimaryKeyIsFirstUnique) {
  RelationSchema schema = MakeSchema();
  ASSERT_TRUE(schema.PrimaryKey().has_value());
  EXPECT_EQ(*schema.PrimaryKey(), AttributeSet{"id"});
  RelationSchema keyless("K");
  EXPECT_FALSE(keyless.PrimaryKey().has_value());
}

TEST(SchemaTest, NotNullIncludesKeyAttributes) {
  RelationSchema schema = MakeSchema();
  EXPECT_EQ(schema.NotNullAttributes(), (AttributeSet{"id", "score"}));
  ASSERT_TRUE(schema.DeclareNotNull("name").ok());
  EXPECT_EQ(schema.NotNullAttributes(),
            (AttributeSet{"id", "name", "score"}));
  EXPECT_EQ(schema.DeclareNotNull("missing").code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RemoveAttributeCleansUniques) {
  RelationSchema schema = MakeSchema();
  ASSERT_TRUE(schema.DeclareUnique({"name", "score"}).ok());
  ASSERT_TRUE(schema.RemoveAttribute("name").ok());
  EXPECT_FALSE(schema.HasAttribute("name"));
  // {name, score} shrank to {score}.
  EXPECT_TRUE(schema.IsKey(AttributeSet{"score"}));
  EXPECT_EQ(schema.RemoveAttribute("name").code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ToStringShowsConstraints) {
  RelationSchema schema = MakeSchema();
  EXPECT_EQ(schema.ToString(), "R(id, name, score*) unique{id}");
}

TEST(TableTest, InsertValidatesArityTypesAndNulls) {
  Table table(MakeSchema());
  EXPECT_TRUE(
      table.Insert({Value::Int(1), Value::Text("a"), Value::Real(0.5)}).ok());
  // Wrong arity.
  EXPECT_EQ(table.Insert({Value::Int(1)}).code(),
            StatusCode::kInvalidArgument);
  // Wrong type.
  EXPECT_EQ(
      table.Insert({Value::Text("x"), Value::Text("a"), Value::Real(0.5)})
          .code(),
      StatusCode::kInvalidArgument);
  // NULL in not-null column (score).
  EXPECT_EQ(
      table.Insert({Value::Int(2), Value::Text("b"), Value::Null()}).code(),
      StatusCode::kInvalidArgument);
  // NULL in key column (id is key → implicitly not-null).
  EXPECT_EQ(
      table.Insert({Value::Null(), Value::Text("b"), Value::Real(1.0)})
          .code(),
      StatusCode::kInvalidArgument);
  // NULL in plain nullable column is fine.
  EXPECT_TRUE(
      table.Insert({Value::Int(2), Value::Null(), Value::Real(1.0)}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, DistinctCountSkipsNulls) {
  Table table(MakeSchema());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::Text("a"), Value::Real(1.0)}).ok());
  ASSERT_TRUE(
      table.Insert({Value::Int(2), Value::Text("a"), Value::Real(1.0)}).ok());
  ASSERT_TRUE(
      table.Insert({Value::Int(3), Value::Null(), Value::Real(1.0)}).ok());
  EXPECT_EQ(*table.DistinctCount(AttributeSet{"id"}), 3u);
  EXPECT_EQ(*table.DistinctCount(AttributeSet{"name"}), 1u);  // NULL skipped
  EXPECT_EQ(*table.DistinctCount(AttributeSet{"id", "name"}), 2u);
  EXPECT_EQ(table.DistinctCount(AttributeSet{}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.DistinctCount(AttributeSet{"nope"}).status().code(),
            StatusCode::kNotFound);
}

TEST(TableTest, VerifyUniqueDetectsDuplicates) {
  Table table(MakeSchema());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::Text("a"), Value::Real(1.0)}).ok());
  EXPECT_TRUE(table.VerifyUniqueConstraints().ok());
  table.InsertUnchecked({Value::Int(1), Value::Text("b"), Value::Real(2.0)});
  EXPECT_EQ(table.VerifyUniqueConstraints().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TableTest, VerifyNotNullDetectsViolations) {
  Table table(MakeSchema());
  table.InsertUnchecked({Value::Int(1), Value::Text("a"), Value::Null()});
  EXPECT_EQ(table.VerifyNotNullConstraints().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TableTest, DropAttributeRemovesColumnData) {
  Table table(MakeSchema());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::Text("a"), Value::Real(1.0)}).ok());
  ASSERT_TRUE(table.DropAttribute("name").ok());
  EXPECT_EQ(table.schema().arity(), 2u);
  EXPECT_EQ(table.row(0).size(), 2u);
  EXPECT_EQ(table.row(0)[0], Value::Int(1));
  EXPECT_EQ(table.row(0)[1], Value::Real(1.0));
  EXPECT_EQ(table.DropAttribute("name").code(), StatusCode::kNotFound);
}

TEST(TableTest, ProjectionIndexesFollowSetOrder) {
  Table table(MakeSchema());
  auto indexes = table.ProjectionIndexes(AttributeSet{"score", "id"});
  ASSERT_TRUE(indexes.ok());
  // Set order is sorted: id before score.
  EXPECT_EQ(*indexes, (std::vector<size_t>{0, 2}));
}

}  // namespace
}  // namespace dbre
