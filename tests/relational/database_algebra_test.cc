#include <gtest/gtest.h>

#include "relational/algebra.h"
#include "relational/database.h"

namespace dbre {
namespace {

// Two relations: Emp(no*, dep) and Dept(id*, name), Emp.dep ⊆ Dept.id with
// one dangling value available via AddOrphan.
class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationSchema emp("Emp");
    ASSERT_TRUE(emp.AddAttribute("no", DataType::kInt64).ok());
    ASSERT_TRUE(emp.AddAttribute("dep", DataType::kInt64).ok());
    ASSERT_TRUE(emp.DeclareUnique({"no"}).ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(emp)).ok());

    RelationSchema dept("Dept");
    ASSERT_TRUE(dept.AddAttribute("id", DataType::kInt64).ok());
    ASSERT_TRUE(dept.AddAttribute("name", DataType::kString).ok());
    ASSERT_TRUE(dept.DeclareUnique({"id"}).ok());
    ASSERT_TRUE(db_.CreateRelation(std::move(dept)).ok());

    Table* emp_table = *db_.GetMutableTable("Emp");
    for (int64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE(
          emp_table->Insert({Value::Int(i), Value::Int(1 + i % 3)}).ok());
    }
    ASSERT_TRUE(emp_table->Insert({Value::Int(11), Value::Null()}).ok());

    Table* dept_table = *db_.GetMutableTable("Dept");
    for (int64_t d = 1; d <= 5; ++d) {
      ASSERT_TRUE(
          dept_table
              ->Insert({Value::Int(d), Value::Text("D" + std::to_string(d))})
              .ok());
    }
  }

  void AddOrphan() {
    Table* emp_table = *db_.GetMutableTable("Emp");
    ASSERT_TRUE(emp_table->Insert({Value::Int(99), Value::Int(77)}).ok());
  }

  Database db_;
};

TEST_F(AlgebraTest, DatabaseCatalogBasics) {
  EXPECT_TRUE(db_.HasRelation("Emp"));
  EXPECT_FALSE(db_.HasRelation("Nope"));
  EXPECT_EQ(db_.RelationNames(), (std::vector<std::string>{"Dept", "Emp"}));
  EXPECT_EQ(db_.NumRelations(), 2u);
  EXPECT_EQ(db_.GetTable("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.DropRelation("Nope").code(), StatusCode::kNotFound);
}

TEST_F(AlgebraTest, DuplicateRelationRejected) {
  RelationSchema dup("Emp");
  ASSERT_TRUE(dup.AddAttribute("x", DataType::kInt64).ok());
  EXPECT_EQ(db_.CreateRelation(std::move(dup)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(AlgebraTest, KeySetAndNotNullSet) {
  auto keys = db_.KeySet();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].ToString(), "Dept.{id}");
  EXPECT_EQ(keys[1].ToString(), "Emp.{no}");
  auto not_null = db_.NotNullSet();
  ASSERT_EQ(not_null.size(), 2u);  // only the key attributes
  EXPECT_TRUE(db_.IsDeclaredKey("Emp", AttributeSet{"no"}));
  EXPECT_FALSE(db_.IsDeclaredKey("Emp", AttributeSet{"dep"}));
}

TEST_F(AlgebraTest, CloneIsDeep) {
  Database copy = db_.Clone();
  Table* emp_table = *copy.GetMutableTable("Emp");
  ASSERT_TRUE(emp_table->Insert({Value::Int(50), Value::Int(1)}).ok());
  EXPECT_EQ((*copy.GetTable("Emp"))->num_rows(),
            (*db_.GetTable("Emp"))->num_rows() + 1);
}

TEST_F(AlgebraTest, JoinCountsSkipNulls) {
  EquiJoin join = EquiJoin::Single("Emp", "dep", "Dept", "id");
  auto counts = ComputeJoinCounts(db_, join);
  ASSERT_TRUE(counts.ok()) << counts.status();
  EXPECT_EQ(counts->n_left, 3u);   // dep ∈ {1,2,3}; NULL skipped
  EXPECT_EQ(counts->n_right, 5u);  // ids 1..5
  EXPECT_EQ(counts->n_join, 3u);
  EXPECT_TRUE(counts->LeftIncluded());
  EXPECT_FALSE(counts->RightIncluded());
  EXPECT_FALSE(counts->ProperIntersection());
}

TEST_F(AlgebraTest, JoinCountsSymmetry) {
  EquiJoin join = EquiJoin::Single("Dept", "id", "Emp", "dep");
  auto counts = ComputeJoinCounts(db_, join);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->n_left, 5u);
  EXPECT_EQ(counts->n_right, 3u);
  EXPECT_EQ(counts->n_join, 3u);
  EXPECT_TRUE(counts->RightIncluded());
}

TEST_F(AlgebraTest, JoinCountsProperIntersection) {
  AddOrphan();
  EquiJoin join = EquiJoin::Single("Emp", "dep", "Dept", "id");
  auto counts = ComputeJoinCounts(db_, join);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->n_left, 4u);  // {1,2,3,77}
  EXPECT_EQ(counts->n_join, 3u);
  EXPECT_TRUE(counts->ProperIntersection());
}

TEST_F(AlgebraTest, JoinCountsValidateInputs) {
  EXPECT_FALSE(
      ComputeJoinCounts(db_, EquiJoin::Single("Emp", "dep", "Nope", "id"))
          .ok());
  EXPECT_FALSE(
      ComputeJoinCounts(db_, EquiJoin::Single("Emp", "nope", "Dept", "id"))
          .ok());
  EquiJoin self = EquiJoin::Single("Emp", "dep", "Emp", "dep");
  EXPECT_FALSE(ComputeJoinCounts(db_, self).ok());
}

TEST_F(AlgebraTest, InclusionHoldsIgnoresNullLhs) {
  auto holds = InclusionHolds(db_, "Emp", {"dep"}, "Dept", {"id"});
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);  // the NULL dep row does not break inclusion
  AddOrphan();
  holds = InclusionHolds(db_, "Emp", {"dep"}, "Dept", {"id"});
  ASSERT_TRUE(holds.ok());
  EXPECT_FALSE(*holds);
}

TEST_F(AlgebraTest, IntersectionSizeMatchesJoinCount) {
  EquiJoin join = EquiJoin::Single("Emp", "dep", "Dept", "id");
  EXPECT_EQ(*IntersectionSize(db_, join), 3u);
}

TEST_F(AlgebraTest, FunctionalDependencyHoldsBasics) {
  const Table& dept = **db_.GetTable("Dept");
  // id is a key: id → name holds.
  EXPECT_TRUE(*FunctionalDependencyHolds(dept, AttributeSet{"id"},
                                         AttributeSet{"name"}));
  // name → id also holds here (names are distinct).
  EXPECT_TRUE(*FunctionalDependencyHolds(dept, AttributeSet{"name"},
                                         AttributeSet{"id"}));
  const Table& emp = **db_.GetTable("Emp");
  // dep → no fails (three employees share a dep).
  EXPECT_FALSE(*FunctionalDependencyHolds(emp, AttributeSet{"dep"},
                                          AttributeSet{"no"}));
  // no → dep holds (no is a key).
  EXPECT_TRUE(*FunctionalDependencyHolds(emp, AttributeSet{"no"},
                                         AttributeSet{"dep"}));
  EXPECT_FALSE(
      FunctionalDependencyHolds(emp, AttributeSet{}, AttributeSet{"no"})
          .ok());
}

TEST_F(AlgebraTest, FunctionalDependencyNullLhsSkipped) {
  // Add two rows with NULL dep and different `no`; FD dep → no is still
  // judged only on non-NULL groups.
  Table* emp_table = *db_.GetMutableTable("Emp");
  ASSERT_TRUE(emp_table->Insert({Value::Int(200), Value::Null()}).ok());
  const Table& emp = *emp_table;
  // no → dep unaffected.
  EXPECT_TRUE(*FunctionalDependencyHolds(emp, AttributeSet{"no"},
                                         AttributeSet{"dep"}));
}

TEST_F(AlgebraTest, OrderedProjectionPreservesPairing) {
  const Table& emp = **db_.GetTable("Emp");
  auto indexes = OrderedProjectionIndexes(emp, {"dep", "no"});
  ASSERT_TRUE(indexes.ok());
  EXPECT_EQ(*indexes, (std::vector<size_t>{1, 0}));
  auto projection = OrderedDistinctProjection(emp, {"dep", "no"});
  ASSERT_TRUE(projection.ok());
  EXPECT_EQ(projection->size(), 10u);  // NULL row excluded
}

}  // namespace
}  // namespace dbre
