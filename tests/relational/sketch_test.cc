// The sketches may only ever be wrong in the direction the discovery
// pipeline tolerates: a Bloom filter must never report an inserted key
// absent (a miss is treated as a proof), and a HyperLogLog estimate must
// stay inside a few standard errors of the truth (it is advisory, but the
// pruning heuristics assume it is roughly right). Both properties are
// exercised under seeded randomized inputs. The gate tests then prove the
// sketch pre-passes never change a discovery answer: every algebra and
// miner result is byte-identical with sketches on and off.
#include "relational/sketch.h"

#include <cmath>
#include <random>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/ind_discovery.h"
#include "core/oracle.h"
#include "deps/ind_miner.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/query_cache.h"
#include "relational/table.h"

namespace dbre {
namespace {

TEST(SketchHashTest, EqualValuesHashEqualAcrossConstruction) {
  EXPECT_EQ(SketchHash(Value::Int(42)), SketchHash(Value::Int(42)));
  EXPECT_EQ(SketchHash(Value::Text("abc")), SketchHash(Value::Text("abc")));
  EXPECT_NE(SketchHash(Value::Int(1)), SketchHash(Value::Int(2)));
  // The combiner is order-sensitive (attribute lists are ordered).
  uint64_t a = SketchHash(Value::Int(1)), b = SketchHash(Value::Int(2));
  EXPECT_NE(SketchHashCombine(SketchHashCombine(kRowHashSeed, a), b),
            SketchHashCombine(SketchHashCombine(kRowHashSeed, b), a));
}

TEST(BloomFilterTest, NoFalseNegativesUnderRandomizedInserts) {
  std::mt19937_64 rng(20260809);
  for (size_t n : {1u, 17u, 1000u, 20000u}) {
    BloomFilter bloom(n);
    std::vector<uint64_t> inserted;
    inserted.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      inserted.push_back(MixHash64(rng()));
      bloom.AddHash(inserted.back());
    }
    // Zero false negatives: every inserted key must report present.
    for (uint64_t hash : inserted) {
      ASSERT_TRUE(bloom.MayContain(hash));
    }
  }
}

TEST(BloomFilterTest, FalsePositiveRateIsBounded) {
  std::mt19937_64 rng(7);
  const size_t n = 50000;
  BloomFilter bloom(n);
  std::unordered_set<uint64_t> member;
  while (member.size() < n) member.insert(MixHash64(rng()));
  for (uint64_t hash : member) bloom.AddHash(hash);
  size_t false_positives = 0, probes = 0;
  while (probes < 100000) {
    uint64_t hash = MixHash64(rng());
    if (member.contains(hash)) continue;
    ++probes;
    if (bloom.MayContain(hash)) ++false_positives;
  }
  // Blocked filters trade a little precision for locality; ~1% nominal,
  // assert a generous 5% ceiling so the test is not flaky by design.
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.05)
      << false_positives << "/" << probes;
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter bloom(0);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(bloom.MayContain(MixHash64(rng())));
  }
}

TEST(HyperLogLogTest, EstimateWithinErrorBounds) {
  // 1.04/sqrt(2^12) ≈ 1.6% relative standard error; allow 5 sigma plus a
  // small absolute slack for the tiny cardinalities.
  const double sigma = HyperLogLog::StandardError(12);
  EXPECT_NEAR(sigma, 1.04 / std::sqrt(4096.0), 1e-9);
  std::mt19937_64 rng(99);
  for (size_t n : {0u, 1u, 10u, 500u, 5000u, 200000u}) {
    HyperLogLog hll(12);
    std::unordered_set<uint64_t> distinct;
    while (distinct.size() < n) distinct.insert(MixHash64(rng()));
    for (uint64_t hash : distinct) {
      hll.AddHash(hash);
      hll.AddHash(hash);  // duplicates must not inflate the estimate
    }
    const double estimate = hll.Estimate();
    const double tolerance = 5.0 * sigma * static_cast<double>(n) + 3.0;
    EXPECT_NEAR(estimate, static_cast<double>(n), tolerance) << "n=" << n;
  }
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  std::mt19937_64 rng(123);
  HyperLogLog a(12), b(12), both(12);
  for (int i = 0; i < 3000; ++i) {
    uint64_t ha = MixHash64(rng()), hb = MixHash64(rng());
    a.AddHash(ha);
    both.AddHash(ha);
    b.AddHash(hb);
    both.AddHash(hb);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), both.Estimate());
}

TEST(HyperLogLogTest, PrecisionIsClamped) {
  EXPECT_EQ(HyperLogLog(1).num_registers(), 1u << 4);
  EXPECT_EQ(HyperLogLog(30).num_registers(), 1u << 18);
  EXPECT_EQ(HyperLogLog(12).num_registers(), 1u << 12);
}

TEST(ScopedSketchGateTest, RestoresPreviousState) {
  ASSERT_TRUE(SketchesEnabled());
  {
    ScopedSketchGate off(false);
    EXPECT_FALSE(SketchesEnabled());
    {
      ScopedSketchGate on(true);
      EXPECT_TRUE(SketchesEnabled());
    }
    EXPECT_FALSE(SketchesEnabled());
  }
  EXPECT_TRUE(SketchesEnabled());
}

// --- Gate crosschecks: sketches must never change a discovery answer. ---

Database MakeAdversarialDatabase(uint64_t seed, size_t rows) {
  // Emp(no, dep, grade): dep references Dept.dep except for a few strays;
  // grade is NULL-heavy. Dept(dep, name) with a composite-ish spread.
  std::mt19937_64 rng(seed);
  Database db;
  {
    RelationSchema schema("Dept");
    EXPECT_TRUE(schema.AddAttribute("dep", DataType::kInt64).ok());
    EXPECT_TRUE(schema.AddAttribute("name", DataType::kString).ok());
    Table table(std::move(schema));
    for (int d = 0; d < 40; ++d) {
      table.InsertUnchecked(
          {Value::Int(d), Value::Text("d" + std::to_string(d % 7))});
    }
    EXPECT_TRUE(db.AddTable(std::move(table)).ok());
  }
  {
    RelationSchema schema("Emp");
    EXPECT_TRUE(schema.AddAttribute("no", DataType::kInt64).ok());
    EXPECT_TRUE(schema.AddAttribute("dep", DataType::kInt64).ok());
    EXPECT_TRUE(schema.AddAttribute("grade", DataType::kInt64).ok());
    Table table(std::move(schema));
    for (size_t i = 0; i < rows; ++i) {
      int64_t dep = static_cast<int64_t>(rng() % 44);  // 40..43 are strays
      Value grade = rng() % 3 == 0 ? Value::Null()
                                   : Value::Int(static_cast<int64_t>(rng() % 5));
      table.InsertUnchecked(
          {Value::Int(static_cast<int64_t>(i)), Value::Int(dep), grade});
    }
    EXPECT_TRUE(db.AddTable(std::move(table)).ok());
  }
  return db;
}

TEST(QueryCacheSketchTest, EstimateDistinctTracksExactCounts) {
  Database db = MakeAdversarialDatabase(41, 5000);
  const Table* emp = *db.GetTable("Emp");
  std::shared_ptr<QueryCache> cache = *emp->query_cache();
  const std::vector<size_t> projection = {1, 2};  // (dep, grade)
  // Cold: no partition is memoized yet, so the answer is the projection
  // HLL's estimate — advisory, but within its error bounds.
  const double estimate = cache->EstimateDistinct(projection);
  const double exact = static_cast<double>(cache->DistinctCount(projection));
  EXPECT_NEAR(estimate, exact,
              5.0 * HyperLogLog::StandardError(12) * exact + 3.0);
  // Warm: DistinctCount memoized the partition, so the estimate is exact.
  EXPECT_DOUBLE_EQ(cache->EstimateDistinct(projection), exact);
  // Single columns always report the exact dictionary size.
  EXPECT_DOUBLE_EQ(cache->EstimateDistinct({1}),
                   static_cast<double>(cache->DistinctCount({1})));
}

TEST(SketchGateCrosscheckTest, AlgebraAnswersAreGateInvariant) {
  Database db = MakeAdversarialDatabase(17, 500);
  struct Probe {
    std::string lr, la, rr, ra;
  };
  const std::vector<Probe> probes = {
      {"Emp", "dep", "Dept", "dep"},  {"Dept", "dep", "Emp", "dep"},
      {"Emp", "no", "Emp", "dep"},    {"Emp", "grade", "Dept", "dep"},
      {"Dept", "name", "Dept", "name"},
  };
  for (const Probe& probe : probes) {
    ScopedSketchGate on(true);
    auto with = InclusionHolds(db, probe.lr, {probe.la}, probe.rr, {probe.ra});
    ScopedSketchGate off(false);
    auto without =
        InclusionHolds(db, probe.lr, {probe.la}, probe.rr, {probe.ra});
    ASSERT_TRUE(with.ok());
    ASSERT_TRUE(without.ok());
    EXPECT_EQ(*with, *without) << probe.la << " ⊆ " << probe.ra;
  }
  // Multi-attribute joins, both directions.
  EquiJoin join;
  join.left_relation = "Emp";
  join.left_attributes = {"dep", "grade"};
  join.right_relation = "Dept";
  join.right_attributes = {"dep", "dep"};
  Result<JoinCounts> with = [&] {
    ScopedSketchGate on(true);
    return ComputeJoinCounts(db, join);
  }();
  Result<JoinCounts> without = [&] {
    ScopedSketchGate off(false);
    return ComputeJoinCounts(db, join);
  }();
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->n_left, without->n_left);
  EXPECT_EQ(with->n_right, without->n_right);
  EXPECT_EQ(with->n_join, without->n_join);
}

TEST(SketchGateCrosscheckTest, UnaryMinerReportsAreByteIdentical) {
  Database db = MakeAdversarialDatabase(23, 800);
  IndMinerOptions options;
  IndMinerStats stats_on, stats_off;
  auto mine = [&](bool gate, IndMinerStats* stats) {
    ScopedSketchGate scoped(gate);
    return MineUnaryInds(db, options, stats);
  };
  auto with = mine(true, &stats_on);
  auto without = mine(false, &stats_off);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  ASSERT_EQ(with->size(), without->size());
  for (size_t i = 0; i < with->size(); ++i) {
    EXPECT_EQ((*with)[i].ToString(), (*without)[i].ToString());
  }
  // The candidate funnel is deterministic; only the route may differ.
  EXPECT_EQ(stats_on.pairs_considered, stats_off.pairs_considered);
  EXPECT_EQ(stats_on.pairs_checked, stats_off.pairs_checked);
}

TEST(SketchGateCrosscheckTest, DiscoveryOutcomesAreGateInvariant) {
  std::vector<EquiJoin> joins;
  {
    EquiJoin join;
    join.left_relation = "Emp";
    join.left_attributes = {"dep"};
    join.right_relation = "Dept";
    join.right_attributes = {"dep"};
    joins.push_back(join);
    join.left_attributes = {"no"};
    joins.push_back(join);
  }
  auto run = [&](bool gate) {
    Database db = MakeAdversarialDatabase(31, 600);
    ScopedSketchGate scoped(gate);
    DefaultOracle oracle;  // ignores NEIs: outcomes depend on counts only
    return DiscoverInds(&db, joins, &oracle, IndDiscoveryOptions{});
  };
  auto with = run(true);
  auto without = run(false);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  ASSERT_EQ(with->outcomes.size(), without->outcomes.size());
  for (size_t i = 0; i < with->outcomes.size(); ++i) {
    EXPECT_EQ(JoinOutcomeKindName(with->outcomes[i].kind),
              JoinOutcomeKindName(without->outcomes[i].kind));
    EXPECT_EQ(with->outcomes[i].counts.n_join,
              without->outcomes[i].counts.n_join);
  }
  ASSERT_EQ(with->inds.size(), without->inds.size());
  for (size_t i = 0; i < with->inds.size(); ++i) {
    EXPECT_EQ(with->inds[i].ToString(), without->inds[i].ToString());
  }
}

}  // namespace
}  // namespace dbre
