// The batch kernels are the executor's and the cache's inner loops; each
// is pinned against a scalar reference over randomized inputs, including
// the batch-boundary sizes (kBatchSize ± 1) and all-NULL/empty lanes.
#include "relational/column_batch.h"

#include <random>

#include <gtest/gtest.h>

#include "relational/encoded_table.h"

namespace dbre {
namespace {

using batch::Truth;

TEST(BatchIteratorTest, CoversBoundarySizes) {
  for (size_t rows : {size_t{0}, size_t{1}, batch::kBatchSize - 1,
                      batch::kBatchSize, batch::kBatchSize + 1,
                      3 * batch::kBatchSize + 7}) {
    batch::BatchIterator it(rows);
    size_t start = 0, count = 0, total = 0, batches = 0;
    size_t expected_start = 0;
    while (it.Next(&start, &count)) {
      EXPECT_EQ(start, expected_start);
      EXPECT_GT(count, 0u);
      EXPECT_LE(count, batch::kBatchSize);
      expected_start += count;
      total += count;
      ++batches;
    }
    EXPECT_EQ(total, rows);
    EXPECT_EQ(batches, (rows + batch::kBatchSize - 1) / batch::kBatchSize);
  }
}

TEST(TruthKernelsTest, KleeneTablesMatchDefinition) {
  const Truth values[] = {Truth::kFalse, Truth::kTrue, Truth::kUnknown};
  auto and_ref = [](Truth a, Truth b) {
    if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
    if (a == Truth::kTrue && b == Truth::kTrue) return Truth::kTrue;
    return Truth::kUnknown;
  };
  auto or_ref = [](Truth a, Truth b) {
    if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
    if (a == Truth::kFalse && b == Truth::kFalse) return Truth::kFalse;
    return Truth::kUnknown;
  };
  for (Truth a : values) {
    for (Truth b : values) {
      Truth lhs[1] = {a}, rhs[1] = {b}, out[1];
      batch::TruthAnd(lhs, rhs, 1, out);
      EXPECT_EQ(out[0], and_ref(a, b));
      batch::TruthOr(lhs, rhs, 1, out);
      EXPECT_EQ(out[0], or_ref(a, b));
    }
    Truth in[1] = {a}, out[1];
    batch::TruthNot(in, 1, out);
    Truth expected = a == Truth::kUnknown
                         ? Truth::kUnknown
                         : (a == Truth::kTrue ? Truth::kFalse : Truth::kTrue);
    EXPECT_EQ(out[0], expected);
  }
}

TEST(TruthKernelsTest, AndMayAliasOutput) {
  std::vector<Truth> a = {Truth::kTrue, Truth::kUnknown, Truth::kFalse};
  std::vector<Truth> b = {Truth::kTrue, Truth::kTrue, Truth::kTrue};
  batch::TruthAnd(a.data(), b.data(), a.size(), a.data());
  EXPECT_EQ(a, (std::vector<Truth>{Truth::kTrue, Truth::kUnknown,
                                   Truth::kFalse}));
}

TEST(GatherTruthTest, RoutesNullsThroughTheNullLane) {
  const uint32_t null_code = EncodedTable::kNullCode;
  std::vector<uint32_t> codes = {0, 2, null_code, 1, null_code};
  std::vector<Truth> code_truth = {Truth::kTrue, Truth::kFalse,
                                   Truth::kUnknown};
  std::vector<Truth> out(codes.size());
  batch::GatherTruth(codes.data(), codes.size(), code_truth.data(),
                     Truth::kUnknown, null_code, out.data());
  EXPECT_EQ(out, (std::vector<Truth>{Truth::kTrue, Truth::kUnknown,
                                     Truth::kUnknown, Truth::kFalse,
                                     Truth::kUnknown}));
}

TEST(SelectTrueTest, CompactsAbsoluteRowIds) {
  for (size_t n : {size_t{0}, size_t{5}, batch::kBatchSize - 1,
                   batch::kBatchSize}) {
    std::mt19937 rng(static_cast<unsigned>(n + 1));
    std::vector<Truth> truth(n);
    std::vector<uint32_t> expected;
    const size_t base = 10000;
    for (size_t i = 0; i < n; ++i) {
      truth[i] = static_cast<Truth>(rng() % 3);
      if (truth[i] == Truth::kTrue) {
        expected.push_back(static_cast<uint32_t>(base + i));
      }
    }
    std::vector<uint32_t> selected(n + 1, 0xDEAD);
    size_t count = batch::SelectTrue(truth.data(), n, base, selected.data());
    ASSERT_EQ(count, expected.size());
    for (size_t i = 0; i < count; ++i) EXPECT_EQ(selected[i], expected[i]);
  }
}

TEST(GatherKeysTest, GathersAndCombines) {
  const uint32_t null_code = EncodedTable::kNullCode;
  std::vector<uint64_t> code_keys = {11, 22, 33};
  std::vector<uint32_t> codes = {2, null_code, 0};
  std::vector<uint64_t> out(codes.size());
  batch::GatherKeys(codes.data(), codes.size(), code_keys.data(),
                    /*null_key=*/7, null_code, out.data());
  EXPECT_EQ(out, (std::vector<uint64_t>{33, 7, 11}));
  // CombineKeys chains SketchHashCombine per lane.
  std::vector<uint64_t> inout = {100, 200, 300};
  std::vector<uint64_t> expected = {
      SketchHashCombine(100, 33), SketchHashCombine(200, 7),
      SketchHashCombine(300, 11)};
  batch::CombineKeys(codes.data(), codes.size(), code_keys.data(),
                     /*null_key=*/7, null_code, inout.data());
  EXPECT_EQ(inout, expected);
}

TEST(ProbeKernelsTest, MatchScalarMembershipUnderRandomKeys) {
  std::mt19937_64 rng(42);
  FlatSet64 set(4000);
  BloomFilter bloom(4000);
  std::vector<uint64_t> member;
  for (int i = 0; i < 4000; ++i) {
    uint64_t key = MixHash64(rng());
    member.push_back(key);
    set.Insert(key);
    bloom.AddHash(key);
  }
  // Mixed probe stream: half members, half strangers; sizes straddle the
  // prefetch lookahead and the batch size.
  for (size_t n : {size_t{1}, size_t{15}, size_t{16}, size_t{17},
                   batch::kBatchSize}) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = i % 2 == 0 ? member[rng() % member.size()] : MixHash64(rng());
    }
    std::vector<uint8_t> hit(n, 2);
    size_t hits = batch::ProbeSet(set, keys.data(), n, hit.data());
    size_t expected_hits = 0;
    for (size_t i = 0; i < n; ++i) {
      bool expected = set.Contains(keys[i]);
      EXPECT_EQ(hit[i] != 0, expected);
      expected_hits += expected ? 1 : 0;
    }
    EXPECT_EQ(hits, expected_hits);

    std::vector<uint8_t> bloom_hit(n, 2);
    size_t bloom_hits =
        batch::ProbeBloom(bloom, keys.data(), n, bloom_hit.data());
    size_t expected_bloom = 0;
    for (size_t i = 0; i < n; ++i) {
      bool expected = bloom.MayContain(keys[i]);
      EXPECT_EQ(bloom_hit[i] != 0, expected);
      expected_bloom += expected ? 1 : 0;
      // Zero false negatives through the batched path too.
      if (set.Contains(keys[i])) EXPECT_NE(bloom_hit[i], 0);
    }
    EXPECT_EQ(bloom_hits, expected_bloom);
  }
}

}  // namespace
}  // namespace dbre
