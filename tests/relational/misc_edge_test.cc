// Remaining edge paths of the relational layer.
#include <gtest/gtest.h>

#include "relational/algebra.h"
#include "relational/database.h"

namespace dbre {
namespace {

TEST(ValueEdgeTest, RealToStringAndBool) {
  EXPECT_EQ(Value::Real(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Boolean(true).ToString(), "true");
  EXPECT_EQ(Value::Boolean(false).ToString(), "false");
}

TEST(ValueEdgeTest, IntParseOverflowFails) {
  EXPECT_FALSE(Value::Parse("99999999999999999999", DataType::kInt64).ok());
}

TEST(TableEdgeTest, ClearEmptiesRows) {
  RelationSchema schema("T");
  ASSERT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
  Table table(std::move(schema));
  table.InsertUnchecked({Value::Int(1)});
  EXPECT_EQ(table.num_rows(), 1u);
  table.Clear();
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(DatabaseEdgeTest, AddTableValidations) {
  Database db;
  Table unnamed{RelationSchema("")};
  EXPECT_EQ(db.AddTable(std::move(unnamed)).code(),
            StatusCode::kInvalidArgument);
  Table named{RelationSchema("T")};
  ASSERT_TRUE(db.AddTable(std::move(named)).ok());
  Table duplicate{RelationSchema("T")};
  EXPECT_EQ(db.AddTable(std::move(duplicate)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.DropRelation("T").ok());
  EXPECT_FALSE(db.HasRelation("T"));
}

TEST(DatabaseEdgeTest, DescribeSchemaListsRelations) {
  Database db;
  RelationSchema schema("People");
  ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  ASSERT_TRUE(schema.DeclareUnique({"id"}).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  (*db.GetMutableTable("People"))->InsertUnchecked({Value::Int(1)});
  std::string text = db.DescribeSchema();
  EXPECT_NE(text.find("People(id) unique{id}"), std::string::npos);
  EXPECT_NE(text.find("[1 tuples]"), std::string::npos);
}

TEST(DatabaseEdgeTest, VerifyDeclaredConstraintsCoversAllRelations) {
  Database db;
  RelationSchema good("Good");
  ASSERT_TRUE(good.AddAttribute("a", DataType::kInt64).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(good)).ok());
  RelationSchema bad("Bad");
  ASSERT_TRUE(bad.AddAttribute("k", DataType::kInt64).ok());
  ASSERT_TRUE(bad.DeclareUnique({"k"}).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(bad)).ok());
  Table* table = *db.GetMutableTable("Bad");
  table->InsertUnchecked({Value::Int(1)});
  table->InsertUnchecked({Value::Int(1)});
  EXPECT_EQ(db.VerifyDeclaredConstraints().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AlgebraEdgeTest, OrderedProjectionValidations) {
  RelationSchema schema("T");
  ASSERT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
  Table table(std::move(schema));
  EXPECT_FALSE(OrderedProjectionIndexes(table, {}).ok());
  EXPECT_FALSE(OrderedProjectionIndexes(table, {"missing"}).ok());
  // Repeated attribute in an ordered list is allowed (positional).
  auto indexes = OrderedProjectionIndexes(table, {"a", "a"});
  ASSERT_TRUE(indexes.ok());
  EXPECT_EQ(*indexes, (std::vector<size_t>{0, 0}));
}

TEST(AlgebraEdgeTest, InclusionArityMismatch) {
  Database db;
  RelationSchema r("R");
  ASSERT_TRUE(r.AddAttribute("a", DataType::kInt64).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(r)).ok());
  EXPECT_FALSE(InclusionHolds(db, "R", {"a"}, "R", {}).ok());
}

TEST(JoinCountsEdgeTest, EmptyTablesAreEmptyIntersections) {
  Database db;
  for (const char* name : {"A", "B"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("x", DataType::kInt64).ok());
    ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  }
  auto counts = ComputeJoinCounts(db, EquiJoin::Single("A", "x", "B", "x"));
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->n_left, 0u);
  EXPECT_EQ(counts->n_join, 0u);
  EXPECT_TRUE(counts->EmptyIntersection());
  EXPECT_FALSE(counts->LeftIncluded());  // empty side is not "included"
}

}  // namespace
}  // namespace dbre
