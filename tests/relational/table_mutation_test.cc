// The mutation path of Table (docs/INCREMENTAL.md): UpdateRows/DeleteRows
// semantics, the incremental query-cache rebuild (QueryCache::BuildDelta)
// answering byte-identically to a cold build, the copy-on-write detach that
// keeps registry-interned extensions private to the mutating session, and
// sketch eviction on mutation.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relational/extension_registry.h"
#include "relational/query_cache.h"
#include "relational/sketch.h"
#include "relational/table.h"

namespace dbre {
namespace {

Table MakeTable(const std::string& name, int first_id, int rows) {
  RelationSchema schema(name);
  EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("label", DataType::kString).ok());
  Table table(schema);
  for (int i = 0; i < rows; ++i) {
    table.InsertUnchecked(
        {Value::Int(first_id + i), Value::Text("row-" + std::to_string(i))});
  }
  return table;
}

// A table with the same schema holding exactly `rows`, built cold — the
// reference every incremental answer is compared against.
Table ColdCopy(const Table& table) {
  Table cold(table.schema());
  for (const ValueVector& row : table.rows()) {
    ValueVector copy = row;
    cold.InsertUnchecked(std::move(copy));
  }
  return cold;
}

// Asserts that `table`'s (possibly delta-built) cache answers match a cold
// build over the same rows, for every primitive discovery consumes.
void ExpectCacheMatchesColdBuild(const Table& table) {
  Table cold = ColdCopy(table);
  auto warm = table.query_cache();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  auto fresh = cold.query_cache();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  const size_t columns = table.schema().arity();
  for (size_t c = 0; c < columns; ++c) {
    EXPECT_EQ((*warm)->DistinctCount({c}), (*fresh)->DistinctCount({c}))
        << "column " << c;
    EXPECT_EQ((*warm)->ColumnHasNull(c), (*fresh)->ColumnHasNull(c))
        << "column " << c;
    auto warm_set = (*warm)->DictionarySet(c);
    auto fresh_set = (*fresh)->DictionarySet(c);
    ASSERT_NE(warm_set, nullptr);
    ASSERT_NE(fresh_set, nullptr);
    EXPECT_EQ(*warm_set, *fresh_set) << "column " << c;
    auto warm_part = (*warm)->Partition({c}, NullPolicy::kSkipNullRows);
    auto fresh_part = (*fresh)->Partition({c}, NullPolicy::kSkipNullRows);
    EXPECT_EQ(warm_part->num_groups(), fresh_part->num_groups())
        << "column " << c;
  }
  if (columns >= 2) {
    EXPECT_EQ((*warm)->DistinctCount({0, 1}), (*fresh)->DistinctCount({0, 1}));
    EXPECT_EQ((*warm)->FdHolds({0}, {1}), (*fresh)->FdHolds({0}, {1}));
    EXPECT_EQ((*warm)->FdHolds({1}, {0}), (*fresh)->FdHolds({1}, {0}));
    EXPECT_EQ((*warm)->FdError({1}, {0}), (*fresh)->FdError({1}, {0}));
    auto warm_proj = (*warm)->DistinctProjection({0, 1});
    auto fresh_proj = (*fresh)->DistinctProjection({0, 1});
    ASSERT_NE(warm_proj, nullptr);
    ASSERT_NE(fresh_proj, nullptr);
    EXPECT_EQ(*warm_proj, *fresh_proj);
  }
}

TEST(TableMutationTest, AppendDeltaMatchesColdBuild) {
  Table table = MakeTable("R", 1, 200);
  // Warm the cache, then append a batch: the next query_cache() goes
  // through BuildDelta (append-only extension of the encoded image).
  ASSERT_TRUE(table.query_cache().ok());
  for (int i = 0; i < 40; ++i) {
    // Duplicated labels so the appended suffix extends dictionaries both
    // with fresh and with already-seen codes.
    table.InsertUnchecked(
        {Value::Int(1000 + i), Value::Text("row-" + std::to_string(i % 7))});
  }
  EXPECT_TRUE(table.has_pending_delta());
  ExpectCacheMatchesColdBuild(table);
  EXPECT_FALSE(table.has_pending_delta());
}

TEST(TableMutationTest, UpdateRowsRewritesMatchingRowsOnly) {
  Table table = MakeTable("R", 1, 100);
  ASSERT_TRUE(table.query_cache().ok());

  size_t label_col = 1;
  auto updated = table.UpdateRows(
      {label_col}, {Value::Text("flagged")},
      [](const ValueVector& row) { return row[0].as_int() <= 10; });
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(*updated, 10u);

  size_t flagged = 0;
  for (const ValueVector& row : table.rows()) {
    if (row[1].as_text() == "flagged") ++flagged;
  }
  EXPECT_EQ(flagged, 10u);
  ExpectCacheMatchesColdBuild(table);
}

TEST(TableMutationTest, UpdateMatchingNothingLeavesCacheShared) {
  Table table = MakeTable("R", 1, 50);
  auto before = table.query_cache();
  ASSERT_TRUE(before.ok());

  auto updated = table.UpdateRows(
      {1}, {Value::Text("never")},
      [](const ValueVector& row) { return row[0].as_int() > 1'000'000; });
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 0u);
  EXPECT_FALSE(table.has_pending_delta());

  auto after = table.query_cache();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->get(), after->get());  // untouched, not rebuilt
}

TEST(TableMutationTest, DeleteRowsIsStructural) {
  Table table = MakeTable("R", 1, 120);
  ASSERT_TRUE(table.query_cache().ok());

  auto deleted = table.DeleteRows(
      [](const ValueVector& row) { return row[0].as_int() % 3 == 0; });
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(*deleted, 40u);
  EXPECT_EQ(table.rows().size(), 80u);
  for (const ValueVector& row : table.rows()) {
    EXPECT_NE(row[0].as_int() % 3, 0);
  }
  ExpectCacheMatchesColdBuild(table);
}

TEST(TableMutationTest, UpdateValidatesTypesAndNotNullUpFront) {
  RelationSchema schema("R");
  ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  ASSERT_TRUE(schema.AddAttribute("name", DataType::kString).ok());
  ASSERT_TRUE(schema.DeclareNotNull("name").ok());
  Table table(schema);
  table.InsertUnchecked({Value::Int(1), Value::Text("a")});

  // NULL into a not-null attribute fails before any row changes.
  auto bad_null = table.UpdateRows({1}, {Value::Null()},
                                   [](const ValueVector&) { return true; });
  EXPECT_FALSE(bad_null.ok());
  EXPECT_EQ(table.rows()[0][1].as_text(), "a");

  // Type mismatch fails the same way.
  auto bad_type = table.UpdateRows({0}, {Value::Text("oops")},
                                   [](const ValueVector&) { return true; });
  EXPECT_FALSE(bad_type.ok());
  EXPECT_EQ(table.rows()[0][0].as_int(), 1);
}

// Satellite regression: two sessions intern the same extension; mutating
// one must copy-on-write detach, never rewrite the canonical rows the
// other session still reads.
TEST(TableMutationTest, MutatingInternedTableDetachesFromRegistry) {
  ExtensionRegistry registry;
  Table first = MakeTable("R", 1, 60);
  EXPECT_FALSE(registry.Intern(&first));  // canonical copy

  Table second = MakeTable("R", 1, 60);
  EXPECT_TRUE(registry.Intern(&second));  // adopts shared storage
  const auto* canonical_rows = first.shared_rows().get();
  ASSERT_EQ(second.shared_rows().get(), canonical_rows);

  auto updated = second.UpdateRows(
      {1}, {Value::Text("mutated")},
      [](const ValueVector& row) { return row[0].as_int() == 1; });
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(*updated, 1u);

  // The mutator got fresh storage; the canonical extension is untouched.
  EXPECT_NE(second.shared_rows().get(), canonical_rows);
  EXPECT_EQ(first.shared_rows().get(), canonical_rows);
  EXPECT_EQ(first.rows()[0][1].as_text(), "row-0");
  EXPECT_EQ(second.rows()[0][1].as_text(), "mutated");

  // A third session interning the original content still hits the
  // registry's (unchanged) canonical entry.
  Table third = MakeTable("R", 1, 60);
  EXPECT_TRUE(registry.Intern(&third));
  EXPECT_EQ(third.shared_rows().get(), canonical_rows);

  // And both diverged extensions keep answering correctly.
  ExpectCacheMatchesColdBuild(first);
  ExpectCacheMatchesColdBuild(second);
}

TEST(TableMutationTest, ExplicitDetachForMutationCopiesSharedStorage) {
  ExtensionRegistry registry;
  Table first = MakeTable("R", 1, 30);
  registry.Intern(&first);
  Table second = MakeTable("R", 1, 30);
  registry.Intern(&second);
  ASSERT_EQ(second.shared_rows().get(), first.shared_rows().get());

  second.DetachForMutation();
  EXPECT_NE(second.shared_rows().get(), first.shared_rows().get());
  // Content is still equal — detach copies, it does not clear.
  ASSERT_EQ(second.rows().size(), first.rows().size());
  EXPECT_EQ(second.rows()[7], first.rows()[7]);
}

// Satellite regression: mutation must also drop memoized sketches — a
// stale Bloom/HLL surviving a mutation could steer discovery into wrong
// prunes. Crosschecked by running the sketch-assisted answers against a
// cold build after the mutation, with the sketch gate forced on.
TEST(TableMutationTest, SketchesRebuildAfterMutation) {
  ScopedSketchGate sketches_on(true);
  Table table = MakeTable("R", 1, 150);
  auto cache = table.query_cache();
  ASSERT_TRUE(cache.ok());
  auto before_sketch = (*cache)->ColumnSketchFor(0);
  ASSERT_NE(before_sketch, nullptr);
  ASSERT_NE((*cache)->ProjectionSketchFor({0, 1}), nullptr);

  // Rewrite ids into a narrow band: the old sketch's cardinality estimate
  // and membership bits are now wrong for most of the column.
  auto updated = table.UpdateRows(
      {0}, {Value::Int(7)},
      [](const ValueVector& row) { return row[0].as_int() > 10; });
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 140u);

  auto after = table.query_cache();
  ASSERT_TRUE(after.ok());
  // The memoized sketch did not carry over (updated column).
  EXPECT_EQ((*after)->MaybeColumnSketch(0), nullptr);

  Table cold = ColdCopy(table);
  auto cold_cache = cold.query_cache();
  ASSERT_TRUE(cold_cache.ok());
  auto warm_sketch = (*after)->ColumnSketchFor(0);
  auto cold_sketch = (*cold_cache)->ColumnSketchFor(0);
  ASSERT_NE(warm_sketch, nullptr);
  ASSERT_NE(cold_sketch, nullptr);
  // Sketches are deterministic over the same distinct values: identical
  // estimates prove the rebuild saw the mutated extension.
  EXPECT_EQ(warm_sketch->hll.Estimate(), cold_sketch->hll.Estimate());
  EXPECT_EQ((*after)->DistinctCount({0}), (*cold_cache)->DistinctCount({0}));
  ExpectCacheMatchesColdBuild(table);
}

// Append-only batches keep sketches only for untouched columns.
TEST(TableMutationTest, AppendKeepsUntouchedMemosDropsTouchedSketches) {
  ScopedSketchGate sketches_on(true);
  Table table = MakeTable("R", 1, 100);
  auto cache = table.query_cache();
  ASSERT_TRUE(cache.ok());
  ASSERT_NE((*cache)->ColumnSketchFor(1), nullptr);

  table.InsertUnchecked({Value::Int(500), Value::Text("brand-new")});
  auto after = table.query_cache();
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->get(), cache->get());

  // Appends extend every column, so per-column sketches must not carry
  // over stale membership bits.
  auto sketch = (*after)->MaybeColumnSketch(1);
  if (sketch != nullptr) {
    // If an implementation chooses to delta-merge instead of drop, the
    // merged sketch must see the appended value.
    EXPECT_TRUE(sketch->bloom.MayContain(SketchHash(Value::Text("brand-new"))));
  }
  ExpectCacheMatchesColdBuild(table);
}

}  // namespace
}  // namespace dbre
