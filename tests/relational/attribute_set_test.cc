#include "relational/attribute_set.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

TEST(AttributeSetTest, NormalizesOnConstruction) {
  AttributeSet set{"b", "a", "b"};
  EXPECT_EQ(set.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(AttributeSetTest, SingleFactory) {
  AttributeSet set = AttributeSet::Single("x");
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Contains("x"));
}

TEST(AttributeSetTest, ContainsAndSubset) {
  AttributeSet abc{"a", "b", "c"};
  EXPECT_TRUE(abc.Contains("b"));
  EXPECT_FALSE(abc.Contains("d"));
  EXPECT_TRUE(abc.ContainsAll(AttributeSet{"a", "c"}));
  EXPECT_TRUE(abc.ContainsAll(AttributeSet{}));
  EXPECT_FALSE(abc.ContainsAll(AttributeSet{"a", "d"}));
}

TEST(AttributeSetTest, Intersects) {
  EXPECT_TRUE((AttributeSet{"a", "b"}).Intersects(AttributeSet{"b", "c"}));
  EXPECT_FALSE((AttributeSet{"a"}).Intersects(AttributeSet{"b"}));
  EXPECT_FALSE(AttributeSet{}.Intersects(AttributeSet{"a"}));
}

TEST(AttributeSetTest, InsertRemoveKeepOrder) {
  AttributeSet set;
  set.Insert("c");
  set.Insert("a");
  set.Insert("a");  // duplicate ignored
  EXPECT_EQ(set.names(), (std::vector<std::string>{"a", "c"}));
  set.Remove("a");
  EXPECT_EQ(set.names(), std::vector<std::string>{"c"});
  set.Remove("missing");  // no-op
  EXPECT_EQ(set.size(), 1u);
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet ab{"a", "b"};
  AttributeSet bc{"b", "c"};
  EXPECT_EQ(ab.Union(bc), (AttributeSet{"a", "b", "c"}));
  EXPECT_EQ(ab.Minus(bc), AttributeSet{"a"});
  EXPECT_EQ(ab.Intersect(bc), AttributeSet{"b"});
  EXPECT_EQ(ab.Minus(ab), AttributeSet{});
}

TEST(AttributeSetTest, ToStringSorted) {
  EXPECT_EQ((AttributeSet{"z", "a"}).ToString(), "{a, z}");
  EXPECT_EQ(AttributeSet{}.ToString(), "{}");
}

TEST(AttributeSetTest, ComparisonIsLexicographic) {
  EXPECT_LT((AttributeSet{"a"}), (AttributeSet{"b"}));
  EXPECT_LT((AttributeSet{"a"}), (AttributeSet{"a", "b"}));
}

TEST(QualifiedAttributesTest, ToStringAndOrdering) {
  QualifiedAttributes qa{"R", AttributeSet{"b", "a"}};
  EXPECT_EQ(qa.ToString(), "R.{a, b}");
  QualifiedAttributes qb{"S", AttributeSet{"a"}};
  EXPECT_LT(qa, qb);
  EXPECT_EQ(qa, (QualifiedAttributes{"R", AttributeSet{"a", "b"}}));
}

}  // namespace
}  // namespace dbre
