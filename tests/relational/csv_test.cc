#include "relational/csv.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

Table MakeTable() {
  RelationSchema schema("T");
  EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("name", DataType::kString).ok());
  EXPECT_TRUE(schema.AddAttribute("score", DataType::kDouble).ok());
  return Table(std::move(schema));
}

TEST(CsvTest, LoadsSimpleRows) {
  Table table = MakeTable();
  auto loaded = LoadCsvText("id,name,score\n1,alice,3.5\n2,bob,4\n", &table);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 2u);
  EXPECT_EQ(table.row(0)[0], Value::Int(1));
  EXPECT_EQ(table.row(0)[1], Value::Text("alice"));
  EXPECT_EQ(table.row(1)[2], Value::Real(4.0));
}

TEST(CsvTest, HeaderMayReorderColumns) {
  Table table = MakeTable();
  auto loaded = LoadCsvText("score,id,name\n1.5,7,x\n", &table);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(table.row(0)[0], Value::Int(7));
  EXPECT_EQ(table.row(0)[2], Value::Real(1.5));
}

TEST(CsvTest, EmptyAndNullBecomeNull) {
  Table table = MakeTable();
  auto loaded = LoadCsvText("id,name,score\n1,,\n2,NULL,2.0\n", &table);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(table.row(0)[1].is_null());
  EXPECT_TRUE(table.row(0)[2].is_null());
  EXPECT_TRUE(table.row(1)[1].is_null());
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  Table table = MakeTable();
  auto loaded =
      LoadCsvText("id,name,score\n1,\"a,b\",1.0\n2,\"say \"\"hi\"\"\",2.0\n",
                  &table);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(table.row(0)[1], Value::Text("a,b"));
  EXPECT_EQ(table.row(1)[1], Value::Text("say \"hi\""));
}

TEST(CsvTest, QuotedEmptyStringIsNotNull) {
  Table table = MakeTable();
  auto loaded = LoadCsvText("id,name,score\n1,\"\",1.0\n", &table);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(table.row(0)[1], Value::Text(""));
}

TEST(CsvTest, QuotedNewlinesSupported) {
  Table table = MakeTable();
  auto loaded = LoadCsvText("id,name,score\n1,\"two\nlines\",1.0\n", &table);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(table.row(0)[1], Value::Text("two\nlines"));
}

TEST(CsvTest, BlankLinesSkipped) {
  Table table = MakeTable();
  auto loaded = LoadCsvText("id,name,score\n\n1,a,1.0\n\n", &table);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);
}

TEST(CsvTest, ErrorsAreDescriptive) {
  Table table = MakeTable();
  EXPECT_EQ(LoadCsvText("", &table).status().code(), StatusCode::kParseError);
  EXPECT_EQ(LoadCsvText("id,name\n1,a\n", &table).status().code(),
            StatusCode::kParseError);  // wrong column count
  EXPECT_EQ(LoadCsvText("id,name,nope\n1,a,2\n", &table).status().code(),
            StatusCode::kNotFound);  // unknown column
  EXPECT_EQ(LoadCsvText("id,id,name\n1,2,a\n", &table).status().code(),
            StatusCode::kParseError);  // duplicate column
  EXPECT_EQ(LoadCsvText("id,name,score\n1,a\n", &table).status().code(),
            StatusCode::kParseError);  // short record
  EXPECT_EQ(LoadCsvText("id,name,score\nx,a,1.0\n", &table).status().code(),
            StatusCode::kParseError);  // bad int
  EXPECT_EQ(LoadCsvText("id,name,score\n1,\"unterminated,1.0\n", &table)
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(CsvTest, RoundTripsThroughText) {
  Table table = MakeTable();
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::Text("a,b"), Value::Real(2.5)})
          .ok());
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::Null(), Value::Null()}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(3), Value::Text(""), Value::Real(0)})
                  .ok());
  std::string csv = WriteCsvText(table);

  Table reloaded = MakeTable();
  auto loaded = LoadCsvText(csv, &reloaded);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(reloaded.num_rows(), table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(reloaded.row(i), table.row(i)) << "row " << i;
  }
}

// Text that merely looks like NULL must come back as the same text, and
// real NULLs must come back as NULL — the writer quotes every
// NULL-lookalike so the reader can tell them apart.
TEST(CsvTest, NullLookalikeTextRoundTrips) {
  Table table = MakeTable();
  const char* lookalikes[] = {"NULL", "null", "Null", "nUlL", " ",
                              "   ",  "\t",   " null ", "  x  "};
  int64_t id = 0;
  for (const char* text : lookalikes) {
    ASSERT_TRUE(
        table.Insert({Value::Int(++id), Value::Text(text), Value::Real(1.0)})
            .ok());
  }
  ASSERT_TRUE(
      table.Insert({Value::Int(++id), Value::Null(), Value::Null()}).ok());
  ASSERT_TRUE(
      table.Insert({Value::Int(++id), Value::Text(""), Value::Real(0)}).ok());

  std::string csv = WriteCsvText(table);
  Table reloaded = MakeTable();
  auto loaded = LoadCsvText(csv, &reloaded);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(reloaded.num_rows(), table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(reloaded.row(i), table.row(i)) << "row " << i;
  }
}

// Double round trip: write ∘ load ∘ write must be a fixed point for every
// hazard class (delimiters, quotes, newlines, NULL lookalikes, whitespace).
TEST(CsvTest, WriteLoadWriteIsIdempotent) {
  Table table = MakeTable();
  const char* texts[] = {"plain", "a,b", "say \"hi\"", "two\nlines",
                         "NULL",  " ",   "", " padded "};
  int64_t id = 0;
  for (const char* text : texts) {
    ASSERT_TRUE(
        table.Insert({Value::Int(++id), Value::Text(text), Value::Real(1.0)})
            .ok());
  }
  std::string first = WriteCsvText(table);
  Table reloaded = MakeTable();
  ASSERT_TRUE(LoadCsvText(first, &reloaded).ok());
  EXPECT_EQ(WriteCsvText(reloaded), first);
}

// A quoted field is explicit data, never NULL: in a string column it is
// taken verbatim, in a typed column a quoted "NULL" is a parse error
// rather than a silent NULL.
TEST(CsvTest, QuotedFieldsNeverParseAsNull) {
  Table table = MakeTable();
  auto loaded =
      LoadCsvText("id,name,score\n1,\"NULL\",1.0\n2,\" \",2.0\n", &table);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(table.row(0)[1], Value::Text("NULL"));
  EXPECT_EQ(table.row(1)[1], Value::Text(" "));

  Table bad = MakeTable();
  EXPECT_EQ(
      LoadCsvText("id,name,score\n\"NULL\",a,1.0\n", &bad).status().code(),
      StatusCode::kParseError);
}

// Unquoted fields keep the lenient convention: empty or NULL (any case)
// means SQL NULL.
TEST(CsvTest, UnquotedNullStaysNull) {
  Table table = MakeTable();
  auto loaded = LoadCsvText("id,name,score\n1,nUlL,\n", &table);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(table.row(0)[1].is_null());
  EXPECT_TRUE(table.row(0)[2].is_null());
}

// Error messages must count physical lines, not records — a quoted field
// with embedded newlines shifts everything after it.
TEST(CsvTest, ErrorLineNumbersCountEmbeddedNewlines) {
  Table table = MakeTable();
  // Header = line 1; record 1 spans lines 2-4 ("a\nb\nc"); the bad record
  // (3 fields expected, 2 given) starts on line 5.
  auto loaded = LoadCsvText(
      "id,name,score\n1,\"a\nb\nc\",1.0\n2,oops\n", &table);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("line 5"), std::string::npos)
      << loaded.status();
}

TEST(CsvTest, ErrorLineNumbersWithoutQuotedNewlines) {
  Table table = MakeTable();
  auto loaded = LoadCsvText("id,name,score\n1,a,1.0\n\n2,b\n", &table);
  ASSERT_FALSE(loaded.ok());
  // Header line 1, good record line 2, blank line 3, bad record line 4.
  EXPECT_NE(loaded.status().ToString().find("line 4"), std::string::npos)
      << loaded.status();
}

TEST(CsvTest, FileRoundTrip) {
  Table table = MakeTable();
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::Text("x"), Value::Real(1.0)}).ok());
  std::string path = ::testing::TempDir() + "/dbre_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  Table reloaded = MakeTable();
  auto loaded = LoadCsvFile(path, &reloaded);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(reloaded.row(0), table.row(0));
  EXPECT_EQ(LoadCsvFile("/nonexistent/x.csv", &reloaded).status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, DatabaseExportImportRoundTrip) {
  Database db;
  for (const char* name : {"A", "B"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
    ASSERT_TRUE(schema.AddAttribute("label", DataType::kString).ok());
    ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
    Table* table = *db.GetMutableTable(name);
    for (int64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(table
                      ->Insert({Value::Int(i),
                                Value::Text(std::string(name) + "_" +
                                            std::to_string(i))})
                      .ok());
    }
  }
  std::string directory = ::testing::TempDir() + "/dbre_csv_db";
  auto written = ExportDatabaseCsv(db, directory);
  ASSERT_TRUE(written.ok()) << written.status();
  EXPECT_EQ(*written, 2u);

  // Import into a fresh catalog with the same schemas.
  Database reloaded;
  for (const char* name : {"A", "B", "NoFile"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
    ASSERT_TRUE(schema.AddAttribute("label", DataType::kString).ok());
    ASSERT_TRUE(reloaded.CreateRelation(std::move(schema)).ok());
  }
  auto loaded = ImportDatabaseCsv(directory, &reloaded);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 2u);  // NoFile.csv does not exist → skipped
  for (const char* name : {"A", "B"}) {
    EXPECT_EQ((**reloaded.GetTable(name)).rows(),
              (**db.GetTable(name)).rows());
  }
  EXPECT_EQ((**reloaded.GetTable("NoFile")).num_rows(), 0u);
  EXPECT_FALSE(ImportDatabaseCsv(directory, nullptr).ok());
}

}  // namespace
}  // namespace dbre
