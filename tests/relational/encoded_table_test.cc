// The dictionary-encoded engine must be indistinguishable from the naive
// row-at-a-time reference: unit tests pin the encoding itself, and
// property-style crosschecks drive both families over generated workloads
// with NULLs, duplicates and composite keys.
#include "relational/encoded_table.h"

#include <random>

#include <gtest/gtest.h>

#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/query_cache.h"
#include "relational/table.h"

namespace dbre {
namespace {

Table MakeTable(const std::vector<ValueVector>& rows) {
  RelationSchema schema("T");
  EXPECT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("b", DataType::kString).ok());
  EXPECT_TRUE(schema.AddAttribute("c", DataType::kInt64).ok());
  Table table(std::move(schema));
  for (const ValueVector& row : rows) table.InsertUnchecked(row);
  return table;
}

TEST(EncodedTableTest, CodesAreDenseAndNullAware) {
  Table table = MakeTable({
      {Value::Int(7), Value::Text("x"), Value::Null()},
      {Value::Int(7), Value::Text("y"), Value::Int(1)},
      {Value::Int(9), Value::Text("x"), Value::Int(1)},
  });
  auto encoded = EncodedTable::Build(table);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->num_rows(), 3u);
  EXPECT_EQ(encoded->num_columns(), 3u);
  // Column a: 7 → 0 (first appearance), 9 → 1.
  EXPECT_EQ(encoded->codes(0), (std::vector<uint32_t>{0, 0, 1}));
  EXPECT_EQ(encoded->dict_size(0), 2u);
  EXPECT_FALSE(encoded->has_null(0));
  // Column b: "x" → 0, "y" → 1.
  EXPECT_EQ(encoded->codes(1), (std::vector<uint32_t>{0, 1, 0}));
  // Column c: NULL sentinel, then 1 → 0.
  EXPECT_EQ(encoded->codes(2)[0], EncodedTable::kNullCode);
  EXPECT_EQ(encoded->codes(2)[1], 0u);
  EXPECT_TRUE(encoded->has_null(2));
  // Decoding round-trips.
  EXPECT_EQ(encoded->Decode(0, 1), Value::Int(9));
  EXPECT_EQ(encoded->DecodeRow(0, {2, 0}),
            (ValueVector{Value::Null(), Value::Int(7)}));
}

TEST(EncodedTableTest, ReencodingIsDeterministic) {
  Table table = MakeTable({
      {Value::Int(1), Value::Text("p"), Value::Int(3)},
      {Value::Int(2), Value::Text("q"), Value::Null()},
      {Value::Int(1), Value::Text("p"), Value::Int(3)},
  });
  auto first = EncodedTable::Build(table);
  auto second = EncodedTable::Build(table);
  ASSERT_TRUE(first.ok() && second.ok());
  for (size_t c = 0; c < first->num_columns(); ++c) {
    EXPECT_EQ(first->codes(c), second->codes(c));
  }
}

TEST(QueryCacheTest, PartitionGroupsMatchSemantics) {
  Table table = MakeTable({
      {Value::Int(1), Value::Text("x"), Value::Int(1)},
      {Value::Int(1), Value::Text("y"), Value::Int(2)},
      {Value::Null(), Value::Text("z"), Value::Int(3)},
      {Value::Int(2), Value::Text("x"), Value::Int(4)},
  });
  auto cache = table.query_cache();
  ASSERT_TRUE(cache.ok());
  auto skip = (*cache)->Partition({0}, NullPolicy::kSkipNullRows);
  EXPECT_EQ(skip->num_groups(), 2u);
  EXPECT_EQ(skip->included_rows, 3u);
  EXPECT_EQ(skip->group_of_row[2], CodePartition::kSkipped);
  auto keep = (*cache)->Partition({0}, NullPolicy::kNullAsValue);
  EXPECT_EQ(keep->num_groups(), 3u);
  EXPECT_EQ(keep->included_rows, 4u);
  // Memoization returns the identical object.
  EXPECT_EQ(skip.get(),
            (*cache)->Partition({0}, NullPolicy::kSkipNullRows).get());
}

TEST(QueryCacheTest, MutationDropsTheCache) {
  Table table = MakeTable({{Value::Int(1), Value::Text("x"), Value::Int(1)}});
  auto count = table.DistinctCount(AttributeSet{"a"});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  table.InsertUnchecked({Value::Int(2), Value::Text("y"), Value::Int(2)});
  count = table.DistinctCount(AttributeSet{"a"});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
  ASSERT_TRUE(table.Insert({Value::Int(3), Value::Text("z"), Value::Int(3)})
                  .ok());
  count = table.DistinctCount(AttributeSet{"a"});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  ASSERT_TRUE(table.DropAttribute("a").ok());
  auto b_count = table.DistinctCount(AttributeSet{"b"});
  ASSERT_TRUE(b_count.ok());
  EXPECT_EQ(*b_count, 3u);
}

TEST(QueryCacheTest, CopiedTableDetachesOnMutation) {
  Table table = MakeTable({{Value::Int(1), Value::Text("x"), Value::Int(1)}});
  ASSERT_TRUE(table.DistinctCount(AttributeSet{"a"}).ok());  // warm cache
  Table copy = table;
  copy.InsertUnchecked({Value::Int(2), Value::Text("y"), Value::Int(2)});
  auto original = table.DistinctCount(AttributeSet{"a"});
  auto mutated = copy.DistinctCount(AttributeSet{"a"});
  ASSERT_TRUE(original.ok() && mutated.ok());
  EXPECT_EQ(*original, 1u);
  EXPECT_EQ(*mutated, 2u);
}

// ---------------------------------------------------------------------------
// Property crosschecks: encoded vs naive on random workloads.

// A random table over (int, string, int, int) with heavy duplication and a
// NULL rate, so composite groups, NULL sub-rows and repeated values all
// occur.
Table RandomTable(std::mt19937_64& rng, size_t rows, double null_rate) {
  RelationSchema schema("R");
  EXPECT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("b", DataType::kString).ok());
  EXPECT_TRUE(schema.AddAttribute("c", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("d", DataType::kInt64).ok());
  Table table(std::move(schema));
  auto maybe_null = [&](Value v) {
    return (rng() % 1000) < null_rate * 1000 ? Value::Null() : v;
  };
  const char* words[] = {"red", "green", "blue", "cyan"};
  for (size_t i = 0; i < rows; ++i) {
    int64_t a = static_cast<int64_t>(rng() % 7);
    table.InsertUnchecked({
        maybe_null(Value::Int(a)),
        maybe_null(Value::Text(words[rng() % 4])),
        maybe_null(Value::Int(a * 3 % 5)),  // often determined by a
        maybe_null(Value::Int(static_cast<int64_t>(rng() % 11))),
    });
  }
  return table;
}

TEST(EncodedVsNaiveTest, DistinctProjectionsAgree) {
  std::mt19937_64 rng(7);
  const std::vector<std::vector<std::string>> projections = {
      {"a"}, {"b"}, {"a", "b"}, {"b", "a"}, {"a", "b", "c"}, {"d", "c"}};
  for (int trial = 0; trial < 10; ++trial) {
    Table table = RandomTable(rng, 200, trial % 2 == 0 ? 0.0 : 0.15);
    for (const auto& attrs : projections) {
      auto fast = OrderedDistinctProjection(table, attrs);
      auto slow = naive::OrderedDistinctProjection(table, attrs);
      ASSERT_TRUE(fast.ok() && slow.ok());
      EXPECT_EQ(*fast, *slow) << "projection diverged on trial " << trial;
    }
  }
}

TEST(EncodedVsNaiveTest, FdChecksAgree) {
  std::mt19937_64 rng(11);
  const std::vector<std::pair<AttributeSet, AttributeSet>> fds = {
      {AttributeSet{"a"}, AttributeSet{"c"}},
      {AttributeSet{"a"}, AttributeSet{"d"}},
      {AttributeSet{"a", "b"}, AttributeSet{"c"}},
      {AttributeSet{"a", "b", "d"}, AttributeSet{"c"}},
      {AttributeSet{"b"}, AttributeSet{"a", "c"}},
      {AttributeSet{"d"}, AttributeSet{"b"}},
  };
  for (int trial = 0; trial < 10; ++trial) {
    Table table = RandomTable(rng, 150, trial % 2 == 0 ? 0.0 : 0.2);
    for (const auto& [lhs, rhs] : fds) {
      auto fast = FunctionalDependencyHolds(table, lhs, rhs);
      auto slow = naive::FunctionalDependencyHolds(table, lhs, rhs);
      ASSERT_TRUE(fast.ok() && slow.ok());
      EXPECT_EQ(*fast, *slow)
          << lhs.ToString() << " -> " << rhs.ToString() << " trial " << trial;
      auto fast_error = FunctionalDependencyError(table, lhs, rhs);
      auto slow_error = naive::FunctionalDependencyError(table, lhs, rhs);
      ASSERT_TRUE(fast_error.ok() && slow_error.ok());
      EXPECT_DOUBLE_EQ(*fast_error, *slow_error)
          << lhs.ToString() << " -> " << rhs.ToString() << " trial " << trial;
    }
  }
}

TEST(EncodedVsNaiveTest, JoinCountsAndInclusionsAgree) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    Database database;
    ASSERT_TRUE(
        database.AddTable(RandomTable(rng, 120, trial % 2 ? 0.1 : 0.0)).ok());
    Table second = RandomTable(rng, 80, trial % 2 ? 0.1 : 0.0);
    second.mutable_schema().set_name("S");
    ASSERT_TRUE(database.AddTable(std::move(second)).ok());

    const std::vector<EquiJoin> joins = {
        EquiJoin::Single("R", "a", "S", "a"),
        EquiJoin::Single("R", "b", "S", "b"),
        {"R", {"a", "b"}, "S", {"a", "b"}},
        {"R", {"c", "d"}, "S", {"d", "c"}},
    };
    for (const EquiJoin& join : joins) {
      auto fast = ComputeJoinCounts(database, join);
      auto slow = naive::ComputeJoinCounts(database, join);
      ASSERT_TRUE(fast.ok() && slow.ok());
      EXPECT_EQ(fast->n_left, slow->n_left);
      EXPECT_EQ(fast->n_right, slow->n_right);
      EXPECT_EQ(fast->n_join, slow->n_join);

      auto fast_inc =
          InclusionHolds(database, join.left_relation, join.left_attributes,
                         join.right_relation, join.right_attributes);
      auto slow_inc = naive::InclusionHolds(
          database, join.left_relation, join.left_attributes,
          join.right_relation, join.right_attributes);
      ASSERT_TRUE(fast_inc.ok() && slow_inc.ok());
      EXPECT_EQ(*fast_inc, *slow_inc);
    }
  }
}

TEST(EncodedVsNaiveTest, ErrorPathsMatch) {
  Table table = MakeTable({{Value::Int(1), Value::Text("x"), Value::Int(1)}});
  auto fast = OrderedDistinctProjection(table, {});
  auto slow = naive::OrderedDistinctProjection(table, {});
  EXPECT_FALSE(fast.ok());
  EXPECT_EQ(fast.status(), slow.status());
  auto fast_missing = OrderedDistinctProjection(table, {"nope"});
  auto slow_missing = naive::OrderedDistinctProjection(table, {"nope"});
  EXPECT_FALSE(fast_missing.ok());
  EXPECT_EQ(fast_missing.status(), slow_missing.status());
  auto fast_fd = FunctionalDependencyHolds(table, AttributeSet{},
                                           AttributeSet{"a"});
  EXPECT_FALSE(fast_fd.ok());
  EXPECT_EQ(fast_fd.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dbre
