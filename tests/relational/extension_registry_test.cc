#include "relational/extension_registry.h"

#include <string>

#include <gtest/gtest.h>

#include "relational/query_cache.h"

namespace dbre {
namespace {

Table MakeTable(const std::string& name, int first_id, int rows) {
  RelationSchema schema(name);
  EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("label", DataType::kString).ok());
  Table table(schema);
  for (int i = 0; i < rows; ++i) {
    table.InsertUnchecked(
        {Value::Int(first_id + i), Value::Text("row-" + std::to_string(i))});
  }
  return table;
}

TEST(ExtensionRegistryTest, IdenticalContentIsShared) {
  ExtensionRegistry registry;
  Table first = MakeTable("R", 1, 50);
  EXPECT_FALSE(registry.Intern(&first));  // miss: becomes canonical

  Table second = MakeTable("R", 1, 50);
  ASSERT_NE(second.shared_rows().get(), first.shared_rows().get());
  EXPECT_TRUE(registry.Intern(&second));  // hit: adopts the storage
  EXPECT_EQ(second.shared_rows().get(), first.shared_rows().get());

  ExtensionRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ExtensionRegistryTest, DifferentContentIsNotShared) {
  ExtensionRegistry registry;
  Table first = MakeTable("R", 1, 50);
  Table shifted = MakeTable("R", 2, 50);   // same size, different values
  Table shorter = MakeTable("R", 1, 49);   // prefix of first
  EXPECT_FALSE(registry.Intern(&first));
  EXPECT_FALSE(registry.Intern(&shifted));
  EXPECT_FALSE(registry.Intern(&shorter));
  EXPECT_NE(first.shared_rows().get(), shifted.shared_rows().get());
  EXPECT_NE(first.shared_rows().get(), shorter.shared_rows().get());
  EXPECT_EQ(registry.stats().entries, 3u);
}

TEST(ExtensionRegistryTest, SchemaDifferencesPreventSharing) {
  ExtensionRegistry registry;
  Table first = MakeTable("R", 1, 10);
  EXPECT_FALSE(registry.Intern(&first));

  // Same rows, different attribute name: must not adopt.
  RelationSchema schema("R");
  ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  ASSERT_TRUE(schema.AddAttribute("tag", DataType::kString).ok());
  Table renamed(schema);
  for (int i = 0; i < 10; ++i) {
    renamed.InsertUnchecked(
        {Value::Int(1 + i), Value::Text("row-" + std::to_string(i))});
  }
  registry.Intern(&renamed);
  EXPECT_NE(renamed.shared_rows().get(), first.shared_rows().get());
}

TEST(ExtensionRegistryTest, AdoptedTablesShareTheQueryCache) {
  ExtensionRegistry registry;
  Table first = MakeTable("R", 1, 50);
  registry.Intern(&first);

  Table second = MakeTable("R", 1, 50);
  registry.Intern(&second);
  // Partitions memoized through either table serve both: the cache object
  // is the same.
  auto first_cache = first.query_cache();
  auto second_cache = second.query_cache();
  ASSERT_TRUE(first_cache.ok());
  ASSERT_TRUE(second_cache.ok());
  EXPECT_EQ(first_cache->get(), second_cache->get());
  EXPECT_NE(first_cache->get(), nullptr);
}

TEST(ExtensionRegistryTest, InternDatabaseCountsHits) {
  ExtensionRegistry registry;
  auto build = [] {
    Database db;
    EXPECT_TRUE(db.AddTable(MakeTable("R", 1, 20)).ok());
    EXPECT_TRUE(db.AddTable(MakeTable("S", 100, 20)).ok());
    return db;
  };
  Database first = build();
  EXPECT_EQ(registry.InternDatabase(&first), 0u);
  Database second = build();
  EXPECT_EQ(registry.InternDatabase(&second), 2u);
}

TEST(ExtensionRegistryTest, FifoEvictionBoundsEntries) {
  ExtensionRegistry registry(/*max_entries=*/2);
  Table a = MakeTable("R", 1, 5);
  Table b = MakeTable("R", 100, 5);
  Table c = MakeTable("R", 200, 5);
  registry.Intern(&a);
  registry.Intern(&b);
  registry.Intern(&c);  // evicts a's entry
  ExtensionRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // a's content is gone from the registry: a fresh identical load is a
  // miss (and re-interns).
  Table a2 = MakeTable("R", 1, 5);
  EXPECT_FALSE(registry.Intern(&a2));
  // But the evicted table itself still works — eviction only dropped the
  // registry's reference.
  EXPECT_EQ(a.num_rows(), 5u);

  registry.Clear();
  EXPECT_EQ(registry.stats().entries, 0u);
}

TEST(ExtensionRegistryTest, FingerprintCollisionsDoNotShareStorage) {
  // InternPrecomputed doubles as the forced-collision hook: register two
  // tables with different content under the SAME fingerprint. The byte
  // equality check inside AdoptSharedExtension must refuse the share and
  // keep both extensions intact.
  ExtensionRegistry registry;
  Table first = MakeTable("R", 1, 30);
  Table impostor = MakeTable("R", 500, 30);  // same shape, other values
  constexpr uint64_t kColliding = 0xDEADBEEFCAFEF00Dull;
  EXPECT_FALSE(registry.InternPrecomputed(&first, kColliding));
  EXPECT_FALSE(registry.InternPrecomputed(&impostor, kColliding));
  EXPECT_NE(impostor.shared_rows().get(), first.shared_rows().get());
  EXPECT_EQ(impostor.row(0)[0], Value::Int(500));
  EXPECT_EQ(first.row(0)[0], Value::Int(1));

  // Both colliding tables stay reachable in the bucket: a genuine twin of
  // either one still gets shared storage.
  Table twin = MakeTable("R", 500, 30);
  EXPECT_TRUE(registry.InternPrecomputed(&twin, kColliding));
  EXPECT_EQ(twin.shared_rows().get(), impostor.shared_rows().get());
}

TEST(ExtensionRegistryTest, ComputeFingerprintTracksContent) {
  Table a = MakeTable("R", 1, 25);
  Table a_again = MakeTable("R", 1, 25);
  Table b = MakeTable("R", 2, 25);
  EXPECT_EQ(ExtensionRegistry::ComputeFingerprint(a),
            ExtensionRegistry::ComputeFingerprint(a_again));
  EXPECT_NE(ExtensionRegistry::ComputeFingerprint(a),
            ExtensionRegistry::ComputeFingerprint(b));
}

TEST(ExtensionRegistryTest, SweepReleasesUnreferencedEntries) {
  ExtensionRegistry registry;
  {
    Table donor = MakeTable("R", 1, 40);
    EXPECT_FALSE(registry.Intern(&donor));
    // The donor is still alive and shares the canonical cache: nothing to
    // release yet.
    EXPECT_EQ(registry.Sweep(), 0u);
    EXPECT_EQ(registry.stats().entries, 1u);
    EXPECT_GT(registry.stats().resident_bytes, 0u);
  }
  // The last referencing table is gone; the sweep returns the memory.
  EXPECT_EQ(registry.Sweep(), 1u);
  ExtensionRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.resident_bytes, 0u);

  // The released content re-interns as a fresh miss.
  Table again = MakeTable("R", 1, 40);
  EXPECT_FALSE(registry.Intern(&again));
  EXPECT_EQ(registry.stats().entries, 1u);
}

TEST(ExtensionRegistryTest, SweepKeepsEntriesReferencedByAdopters) {
  ExtensionRegistry registry;
  Table adopter = MakeTable("R", 1, 40);
  {
    Table donor = MakeTable("R", 1, 40);
    registry.Intern(&donor);
    registry.Intern(&adopter);  // shares the donor's storage
  }
  // The donor died, but the adopter still references the canonical cache.
  EXPECT_EQ(registry.Sweep(), 0u);
  EXPECT_EQ(registry.stats().entries, 1u);

  // A third identical load still hits.
  Table third = MakeTable("R", 1, 40);
  EXPECT_TRUE(registry.Intern(&third));
}

TEST(ExtensionRegistryTest, EmptyTablesIntern) {
  ExtensionRegistry registry;
  Table first = MakeTable("R", 1, 0);
  Table second = MakeTable("R", 1, 0);
  EXPECT_FALSE(registry.Intern(&first));
  EXPECT_TRUE(registry.Intern(&second));
}

}  // namespace
}  // namespace dbre
