#include "relational/equi_join.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

TEST(EquiJoinTest, SingleFactoryAndToString) {
  EquiJoin join = EquiJoin::Single("R", "a", "S", "b");
  EXPECT_EQ(join.arity(), 1u);
  EXPECT_EQ(join.ToString(), "R[a] |><| S[b]");
}

TEST(EquiJoinTest, ValidateRejectsMalformed) {
  EXPECT_FALSE(EquiJoin{}.Validate().ok());
  EquiJoin missing_rel = EquiJoin::Single("", "a", "S", "b");
  EXPECT_FALSE(missing_rel.Validate().ok());
  EquiJoin uneven;
  uneven.left_relation = "R";
  uneven.right_relation = "S";
  uneven.left_attributes = {"a", "b"};
  uneven.right_attributes = {"x"};
  EXPECT_FALSE(uneven.Validate().ok());
  EquiJoin self_attr = EquiJoin::Single("R", "a", "R", "a");
  EXPECT_FALSE(self_attr.Validate().ok());
  // Self-join on different attributes is legitimate.
  EquiJoin hierarchy = EquiJoin::Single("Emp", "manager", "Emp", "no");
  EXPECT_TRUE(hierarchy.Validate().ok());
}

TEST(EquiJoinTest, FlippedSwapsSides) {
  EquiJoin join = EquiJoin::Single("R", "a", "S", "b");
  EquiJoin flipped = join.Flipped();
  EXPECT_EQ(flipped.left_relation, "S");
  EXPECT_EQ(flipped.right_attributes, std::vector<std::string>{"a"});
}

TEST(EquiJoinTest, CanonicalizePutsSmallerSideLeft) {
  EquiJoin join = EquiJoin::Single("S", "b", "R", "a");
  EquiJoin canonical = join.Canonicalize();
  EXPECT_EQ(canonical.left_relation, "R");
  EXPECT_EQ(canonical.right_relation, "S");
}

TEST(EquiJoinTest, CanonicalizeSortsAndDeduplicatesPairs) {
  EquiJoin join;
  join.left_relation = "R";
  join.right_relation = "S";
  join.left_attributes = {"b", "a", "b"};
  join.right_attributes = {"y", "x", "y"};
  EquiJoin canonical = join.Canonicalize();
  EXPECT_EQ(canonical.left_attributes, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(canonical.right_attributes, (std::vector<std::string>{"x", "y"}));
}

TEST(EquiJoinTest, CanonicalizePreservesPairing) {
  // R[b,a] = S[x,y]: after sorting pairs, a pairs with y and b with x.
  EquiJoin join;
  join.left_relation = "R";
  join.right_relation = "S";
  join.left_attributes = {"b", "a"};
  join.right_attributes = {"x", "y"};
  EquiJoin canonical = join.Canonicalize();
  EXPECT_EQ(canonical.left_attributes, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(canonical.right_attributes, (std::vector<std::string>{"y", "x"}));
}

TEST(EquiJoinTest, SameConditionCanonicalizesIdentically) {
  EquiJoin a = EquiJoin::Single("R", "a", "S", "b");
  EquiJoin b = EquiJoin::Single("S", "b", "R", "a");
  EXPECT_EQ(a.Canonicalize(), b.Canonicalize());
}

TEST(EquiJoinTest, CanonicalJoinSetDeduplicates) {
  std::vector<EquiJoin> joins = {
      EquiJoin::Single("R", "a", "S", "b"),
      EquiJoin::Single("S", "b", "R", "a"),
      EquiJoin::Single("R", "a", "T", "c"),
  };
  std::vector<EquiJoin> set = CanonicalJoinSet(joins);
  EXPECT_EQ(set.size(), 2u);
}

TEST(EquiJoinTest, AttributeSetsLosePairingButKeepNames) {
  EquiJoin join;
  join.left_relation = "R";
  join.right_relation = "S";
  join.left_attributes = {"b", "a"};
  join.right_attributes = {"x", "y"};
  EXPECT_EQ(join.LeftAttributeSet(), (AttributeSet{"a", "b"}));
  EXPECT_EQ(join.RightAttributeSet(), (AttributeSet{"x", "y"}));
}

}  // namespace
}  // namespace dbre
