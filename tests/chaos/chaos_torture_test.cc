// Seeded crash-torture for the dbred daemon: each schedule arms a
// deterministic failpoint plan (DBRE_FAILPOINTS) in a real dbre_serve
// child and drives the paper session through it. Crash-flavored schedules
// _Exit(42) the daemon at a seeded syscall edge mid-run; the harness
// reaps it, restarts over the same --data-dir with no faults armed, and
// finishes the work. Error- and torn-flavored schedules stay within the
// retry budget or degrade to ephemeral mode without a restart.
//
// The invariant, for every schedule: the session reaches `done` with a
// report byte-identical to the uninterrupted in-process reference, with a
// bounded number of restarts and no hangs. Corrupt journal suffixes may
// be quarantined along the way — that counts as clean recovery.
//
// DBRE_CHAOS_SEEDS (comma-separated) restricts which seeds run, so CI can
// shard the matrix: DBRE_CHAOS_SEEDS=1,7,13 ctest -R ChaosTorture.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "paper_session_util.h"
#include "service/server.h"
#include "service/transport.h"
#include "workload/paper_example.h"

namespace dbre::service {
namespace {

namespace fs = std::filesystem;

// --- daemon lifecycle -----------------------------------------------------

// Owns a forked dbre_serve; the destructor SIGKILLs anything still running
// so a failed assertion cannot leak a daemon holding the test output pipe.
struct ServeProcess {
  pid_t pid = -1;
  uint16_t port = 0;

  ServeProcess() = default;
  ServeProcess(ServeProcess&& other) noexcept
      : pid(other.pid), port(other.port) {
    other.pid = -1;
  }
  ServeProcess& operator=(ServeProcess&& other) noexcept {
    std::swap(pid, other.pid);
    std::swap(port, other.port);
    return *this;
  }
  ~ServeProcess() {
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
  }

  // Polls for the child's exit (it crashed on its own); SIGKILLs as a
  // last resort so the harness never hangs on a wedged daemon. Returns
  // the wait status.
  int Reap() {
    if (pid <= 0) return 0;
    int wstatus = 0;
    for (int i = 0; i < 500; ++i) {  // up to ~5s
      pid_t done = waitpid(pid, &wstatus, WNOHANG);
      if (done == pid) {
        pid = -1;
        return wstatus;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "daemon did not exit after losing its connection";
    kill(pid, SIGKILL);
    waitpid(pid, &wstatus, 0);
    pid = -1;
    return wstatus;
  }

  void WaitExit() {
    if (pid <= 0) return;
    EXPECT_EQ(waitpid(pid, nullptr, 0), pid);
    pid = -1;
  }
};

// Spawns dbre_serve on an ephemeral port (failpoints, if any, ride in via
// the environment — fork inherits it) and reads the chosen port.
ServeProcess StartServe(const std::string& data_dir, bool paged = false) {
  ServeProcess process;
  int out_pipe[2];
  if (pipe(out_pipe) != 0) {
    ADD_FAILURE() << "pipe() failed";
    return process;
  }
  pid_t pid = fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork() failed";
    return process;
  }
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) dup2(devnull, STDERR_FILENO);
    // Tiny segments force constant rotation, so rotate/open failpoints
    // actually fire within a short session. Paged schedules add a small
    // buffer pool so loads go through snapshot + page-backed adoption.
    if (paged) {
      execl(DBRE_SERVE_BINARY, "dbre_serve", "--port", "0", "--data-dir",
            data_dir.c_str(), "--fsync-batch", "1", "--segment-bytes",
            "512", "--buffer-pool-mb", "16",
            static_cast<char*>(nullptr));
    } else {
      execl(DBRE_SERVE_BINARY, "dbre_serve", "--port", "0", "--data-dir",
            data_dir.c_str(), "--fsync-batch", "1", "--segment-bytes",
            "512", static_cast<char*>(nullptr));
    }
    _exit(127);  // exec failed
  }
  close(out_pipe[1]);
  process.pid = pid;
  FILE* out = fdopen(out_pipe[0], "r");
  char line[64] = {0};
  if (out == nullptr || fgets(line, sizeof(line), out) == nullptr) {
    ADD_FAILURE() << "dbre_serve printed no port";
    if (out != nullptr) fclose(out);
    return process;
  }
  fclose(out);
  process.port = static_cast<uint16_t>(std::strtoul(line, nullptr, 10));
  EXPECT_GT(process.port, 0) << "line: " << line;
  return process;
}

// --- a client that treats daemon death as data, not test failure ----------

class ChaosClient {
 public:
  bool Connect(uint16_t port) {
    auto channel = TcpConnect("127.0.0.1", port);
    if (!channel.ok()) return false;
    channel_ = std::move(*channel);
    return true;
  }

  // False means the daemon is gone (or the connection is): the caller
  // restarts and resumes. Protocol-level errors still return true with
  // ok=false in *response.
  bool Call(Json request, Json* response) {
    if (channel_ == nullptr) return false;
    request.Set("id", Json::Int(next_id_++));
    if (!channel_->WriteLine(request.Dump()).ok()) return false;
    auto line = channel_->ReadLine();
    if (!line.ok()) return false;
    auto parsed = Json::Parse(*line);
    if (!parsed.ok()) return false;
    *response = std::move(*parsed);
    return true;
  }

  // Like Call but also requires ok=true; *result gets the result object.
  bool Ok(Json request, Json* result) {
    Json response;
    if (!Call(std::move(request), &response)) return false;
    if (!response.GetBool("ok")) return false;
    const Json* inner = response.Find("result");
    *result = inner != nullptr ? *inner : Json::MakeObject();
    return true;
  }

 private:
  std::unique_ptr<SocketChannel> channel_;
  int64_t next_id_ = 1;
};

// --- seeded schedules -----------------------------------------------------

struct Schedule {
  std::string spec;            // DBRE_FAILPOINTS value
  bool may_crash = false;      // restarts are expected, not tolerated
  bool expect_degraded = false;  // a persistent fault must trip degraded mode
  bool paged = false;  // serve extensions page-backed (--buffer-pool-mb)
};

Schedule BuildSchedule(int seed) {
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ull +
                      1);
  auto pick = [&rng](const std::vector<std::string>& options) {
    return options[rng() % options.size()];
  };
  Schedule schedule;
  // Seeds past 20 run against a daemon serving page-backed extensions
  // through a 16 MiB buffer pool, with the faults aimed at the page-I/O
  // edges too. The invariant is unchanged: byte-identical reports, with
  // page-level faults either degrading the load to a materialized
  // extension or fail-fasting the daemon (post-open page streams abort
  // rather than serve a short read — restart and recover).
  if (seed > 20) {
    schedule.paged = true;
    switch (rng() % 4) {
      case 0:  // every adoption fails: loads degrade to materialized
        schedule.spec = "pagestore.open=error";
        break;
      case 1: {  // index spill/reuse faults: probes fall back to sets
        std::string point =
            pick({"pagestore.index_write", "pagestore.index_load"});
        schedule.spec = point + "=error*" + std::to_string(1 + rng() % 3);
        break;
      }
      case 2: {  // crash at a store edge while serving paged extensions
        // Low ordinals: the paper session only writes a handful of
        // snapshots, so the crash must land inside that budget to fire.
        std::string point = pick({"journal.append.write", "snapshot.write",
                                  "snapshot.rename"});
        schedule.spec =
            point + "=crash#" + std::to_string(1 + rng() % 5);
        schedule.may_crash = true;
        break;
      }
      default: {  // a page read dies mid-stream: fail-fast, recover
        schedule.spec =
            "pagestore.page_read=error#" + std::to_string(1 + rng() % 5);
        schedule.may_crash = true;
        break;
      }
    }
    return schedule;
  }
  switch (rng() % 5) {
    case 0: {  // crash at a seeded store edge
      std::string point = pick({"journal.append.write", "journal.fsync",
                                "snapshot.write", "snapshot.rename",
                                "journal.rotate"});
      schedule.spec =
          point + "=crash#" + std::to_string(1 + rng() % 30);
      schedule.may_crash = true;
      break;
    }
    case 1: {  // transient errors inside the retry budget: no restart
      std::string point = pick({"journal.append.write", "journal.fsync",
                                "snapshot.write"});
      schedule.spec = point + "=error*" + std::to_string(1 + rng() % 2);
      break;
    }
    case 2: {  // torn write repaired, then crash later
      schedule.spec =
          "journal.append.write=torn(" + std::to_string(1 + rng() % 20) +
          ")#1;journal.fsync=crash#" + std::to_string(2 + rng() % 20);
      schedule.may_crash = true;
      break;
    }
    case 3: {  // the disk never comes back: degrade, finish in memory
      schedule.spec = pick({"journal.fsync", "snapshot.write"}) + "=error";
      schedule.expect_degraded = true;
      break;
    }
    default: {  // jitter everywhere plus one crash
      schedule.spec =
          "journal.append.write=delay(2)%25;snapshot.rename=crash#" +
          std::to_string(1 + rng() % 10);
      schedule.may_crash = true;
      break;
    }
  }
  return schedule;
}

// --- driving the paper session against a possibly-dying daemon ------------

enum class Drive { kDone, kLost };

// Runs (or resumes) the paper session until `done`. `*fresh` means the
// session still needs create + loads; on resume the recovered run just
// needs its remaining questions answered. Returns kLost the moment any
// call fails — the daemon died at an injected point.
Drive DrivePaperSession(ChaosClient& client, const std::string& session,
                        bool fresh, const PaperInputs& inputs,
                        std::string* report) {
  Json result;
  if (fresh) {
    Json create = Command("create");
    create.Set("name", Json::Str(session));
    if (!client.Ok(std::move(create), &result)) return Drive::kLost;
    Json load_ddl = Command("load_ddl", session);
    load_ddl.Set("sql", Json::Str(inputs.ddl));
    if (!client.Ok(std::move(load_ddl), &result)) return Drive::kLost;
    for (const auto& [relation, csv] : inputs.csvs) {
      Json load_csv = Command("load_csv", session);
      load_csv.Set("relation", Json::Str(relation));
      load_csv.Set("csv", Json::Str(csv));
      if (!client.Ok(std::move(load_csv), &result)) return Drive::kLost;
    }
    Json add_joins = Command("add_joins", session);
    Json joins = Json::MakeArray();
    for (const EquiJoin& join : workload::PaperJoinSet()) {
      joins.Append(JoinToJson(join));
    }
    add_joins.Set("joins", std::move(joins));
    if (!client.Ok(std::move(add_joins), &result)) return Drive::kLost;
    if (!client.Ok(Command("run", session), &result)) return Drive::kLost;
  }

  auto expert = workload::PaperOracle();
  for (int i = 0; i < 500; ++i) {
    Json wait = Command("wait", session);
    wait.Set("for", Json::Str("question"));
    wait.Set("timeout_ms", Json::Int(2000));
    if (!client.Ok(std::move(wait), &result)) return Drive::kLost;
    std::string state = result.GetString("state");
    if (state == "done") {
      if (!client.Ok(Command("report", session), &result)) {
        return Drive::kLost;
      }
      *report = result.GetString("report");
      return Drive::kDone;
    }
    if (state == "failed") {
      Json status;
      client.Ok(Command("status", session), &status);
      ADD_FAILURE() << "run failed under fault injection: "
                    << status.Dump();
      return Drive::kDone;  // terminal; the report comparison will fail
    }
    if (result.GetInt("pending") == 0) continue;

    if (!client.Ok(Command("questions", session), &result)) {
      return Drive::kLost;
    }
    const Json* questions = result.Find("questions");
    if (questions == nullptr || questions->array().empty()) continue;
    const Json& question = questions->array().front();
    Json answer = Command("answer", session);
    answer.Set("question", Json::Int(question.GetInt("qid")));
    Json params = AnswerParams(expert.get(), question);
    for (auto& [key, value] : params.object()) {
      answer.Set(key, std::move(value));
    }
    Json response;
    if (!client.Call(std::move(answer), &response)) return Drive::kLost;
    // A rejected answer (stale question after a race) is fine: the next
    // `questions` call re-fetches whatever is actually pending.
  }
  ADD_FAILURE() << "paper session made no progress in 500 rounds";
  return Drive::kDone;
}

// --- the torture test -----------------------------------------------------

class ChaosTortureTest : public ::testing::TestWithParam<int> {};

bool SeedEnabled(int seed) {
  const char* env = std::getenv("DBRE_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return true;
  std::string list = env;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    std::string token = list.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!token.empty() && std::atoi(token.c_str()) == seed) return true;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return false;
}

TEST_P(ChaosTortureTest, RecoversByteIdenticallyOrDegradesCleanly) {
  const int seed = GetParam();
  if (!SeedEnabled(seed)) {
    GTEST_SKIP() << "seed " << seed << " filtered by DBRE_CHAOS_SEEDS";
  }
  const Schedule schedule = BuildSchedule(seed);
  SCOPED_TRACE("seed " + std::to_string(seed) + " schedule " +
               schedule.spec);

  const std::string reference = ReferenceReport();
  const PaperInputs inputs = BuildPaperInputs();
  fs::path data_dir = fs::temp_directory_path() /
                      ("dbre_chaos_" + std::to_string(seed) + "_" +
                       std::to_string(::testing::UnitTest::GetInstance()
                                          ->random_seed()));
  fs::remove_all(data_dir);

  // The first daemon runs with the schedule armed; the environment is the
  // only channel that survives exec. Restarted daemons get no faults.
  ASSERT_EQ(setenv("DBRE_FAILPOINTS", schedule.spec.c_str(), 1), 0);
  ASSERT_EQ(
      setenv("DBRE_FAILPOINT_SEED", std::to_string(seed).c_str(), 1), 0);
  ServeProcess daemon = StartServe(data_dir.string(), schedule.paged);
  unsetenv("DBRE_FAILPOINTS");
  unsetenv("DBRE_FAILPOINT_SEED");
  ASSERT_GT(daemon.port, 0);

  ChaosClient client;
  ASSERT_TRUE(client.Connect(daemon.port));

  int restarts = 0;
  bool fresh = true;
  std::string session = "chaos0";
  std::string report;
  while (true) {
    Drive outcome =
        DrivePaperSession(client, session, fresh, inputs, &report);
    if (outcome == Drive::kDone) break;

    // The daemon died at an injected point. Reap it — a failpoint crash
    // is _Exit(42), never a clean 0 — and restart over the same data dir
    // with no faults armed.
    EXPECT_TRUE(schedule.may_crash)
        << "daemon died under a crash-free schedule";
    int wstatus = daemon.Reap();
    if (WIFEXITED(wstatus)) {
      EXPECT_EQ(WEXITSTATUS(wstatus), 42) << "unexpected exit status";
    }
    ASSERT_LE(++restarts, 4) << "too many restarts for one schedule";

    daemon = StartServe(data_dir.string(), schedule.paged);
    ASSERT_GT(daemon.port, 0);
    client = ChaosClient{};
    ASSERT_TRUE(client.Connect(daemon.port));

    // Resume if recovery brought the run back; otherwise start over under
    // a fresh name (the old id may be held by a damaged journal).
    Json status;
    if (client.Ok(Command("status", session), &status) &&
        status.GetString("state") == "running") {
      fresh = false;
      continue;
    }
    Json closed;
    client.Ok(Command("close", session), &closed);  // best effort
    session = "chaos" + std::to_string(restarts);
    fresh = true;
  }

  std::fprintf(stderr, "[chaos] seed %d schedule '%s': %d restart(s)\n",
               seed, schedule.spec.c_str(), restarts);
  EXPECT_EQ(report, reference)
      << "recovered report diverged from the uninterrupted reference";
  if (!schedule.may_crash) {
    EXPECT_EQ(restarts, 0) << "crash-free schedule restarted the daemon";
  }
  if (schedule.expect_degraded && restarts == 0) {
    Json status;
    ASSERT_TRUE(client.Ok(Command("status", session), &status));
    EXPECT_EQ(status.GetString("persist"), "degraded") << status.Dump();
  }

  Json result;
  if (client.Ok(Command("shutdown"), &result)) daemon.WaitExit();
  fs::remove_all(data_dir);
}

// Seeds 1–20 exercise the journal/snapshot fault families; 21–26 rerun
// the same harness in paged mode with page-I/O faults in the mix.
INSTANTIATE_TEST_SUITE_P(Schedules, ChaosTortureTest,
                         ::testing::Range(1, 27));

// --- mutation crash-recovery schedules ------------------------------------
//
// The live-mutation invariant (docs/INCREMENTAL.md): a daemon SIGKILLed
// after journaling a mutation batch — before or in the middle of the
// incremental re-validation — must recover to a report byte-identical to
// a daemon that survived the whole sequence. Two seeded kill points:
// odd seeds kill between the journaled mutate records and the rerun, even
// seeds kill with the rerun already in flight.

constexpr char kMutationScript[] =
    "UPDATE Department SET location = 'relocated' WHERE emp > 0;"
    "DELETE FROM Assignment WHERE emp = 17;"
    "INSERT INTO HEmployee VALUES (9901, '2001-01-01', 1234.5);";

class ChaosMutationTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosMutationTest, MutationReplayConvergesAfterSigkill) {
  const int seed = GetParam();
  if (!SeedEnabled(seed)) {
    GTEST_SKIP() << "seed " << seed << " filtered by DBRE_CHAOS_SEEDS";
  }
  const bool kill_before_rerun = (seed % 2) != 0;
  SCOPED_TRACE("seed " + std::to_string(seed) +
               (kill_before_rerun ? " (kill before rerun)"
                                  : " (kill mid-rerun)"));
  const PaperInputs inputs = BuildPaperInputs();
  fs::path base = fs::temp_directory_path() /
                  ("dbre_chaos_mut_" + std::to_string(seed) + "_" +
                   std::to_string(::testing::UnitTest::GetInstance()
                                      ->random_seed()));
  fs::remove_all(base);

  // Reference: the identical mutate-then-rerun sequence against a daemon
  // that never dies.
  std::string reference;
  {
    fs::path dir = base / "reference";
    ServeProcess daemon = StartServe(dir.string());
    ASSERT_GT(daemon.port, 0);
    ChaosClient client;
    ASSERT_TRUE(client.Connect(daemon.port));
    std::string first;
    ASSERT_EQ(DrivePaperSession(client, "mut", true, inputs, &first),
              Drive::kDone);
    Json result;
    Json mutate = Command("mutate", "mut");
    mutate.Set("sql", Json::Str(kMutationScript));
    ASSERT_TRUE(client.Ok(std::move(mutate), &result));
    ASSERT_TRUE(client.Ok(Command("run", "mut"), &result));
    ASSERT_EQ(DrivePaperSession(client, "mut", false, inputs, &reference),
              Drive::kDone);
    EXPECT_NE(reference, first) << "mutation script changed nothing";
    if (client.Ok(Command("shutdown"), &result)) daemon.WaitExit();
  }

  // Victim: same sequence, SIGKILLed at the seeded point, restarted over
  // the same data dir with recovery doing all the work.
  {
    fs::path dir = base / "victim";
    ServeProcess daemon = StartServe(dir.string());
    ASSERT_GT(daemon.port, 0);
    ChaosClient client;
    ASSERT_TRUE(client.Connect(daemon.port));
    std::string first;
    ASSERT_EQ(DrivePaperSession(client, "mut", true, inputs, &first),
              Drive::kDone);
    Json result;
    Json mutate = Command("mutate", "mut");
    mutate.Set("sql", Json::Str(kMutationScript));
    ASSERT_TRUE(client.Ok(std::move(mutate), &result));
    if (!kill_before_rerun) {
      ASSERT_TRUE(client.Ok(Command("run", "mut"), &result));
      // Let the rerun get some answers journaled before the kill lands.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    kill(daemon.pid, SIGKILL);
    daemon.Reap();

    daemon = StartServe(dir.string());
    ASSERT_GT(daemon.port, 0);
    client = ChaosClient{};
    ASSERT_TRUE(client.Connect(daemon.port));
    // Recovery re-applies the journaled mutation and re-submits the run;
    // the driver answers whatever questions the replay did not cover.
    std::string recovered;
    ASSERT_EQ(DrivePaperSession(client, "mut", false, inputs, &recovered),
              Drive::kDone);
    EXPECT_EQ(recovered, reference)
        << "post-crash replay diverged from the uninterrupted sequence";
    if (client.Ok(Command("shutdown"), &result)) daemon.WaitExit();
  }
  fs::remove_all(base);
}

INSTANTIATE_TEST_SUITE_P(MutationSchedules, ChaosMutationTest,
                         ::testing::Values(101, 102));

}  // namespace
}  // namespace dbre::service
