#include "deps/synthesis.h"

#include <gtest/gtest.h>

#include "deps/normal_forms.h"

namespace dbre {
namespace {

FunctionalDependency Fd(std::initializer_list<std::string> lhs,
                        std::initializer_list<std::string> rhs) {
  return FunctionalDependency("", AttributeSet(lhs), AttributeSet(rhs));
}

std::vector<AttributeSet> Components(
    const std::vector<DecomposedRelation>& relations) {
  std::vector<AttributeSet> out;
  for (const DecomposedRelation& relation : relations) {
    out.push_back(relation.attributes);
  }
  return out;
}

TEST(LosslessJoinTest, ClassicBinaryCase) {
  // R(a,b,c) with a→b: {ab, ac} is lossless; {ab, bc} is not.
  AttributeSet universe{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"})};
  EXPECT_TRUE(IsLosslessJoin(universe,
                             {AttributeSet{"a", "b"}, AttributeSet{"a", "c"}},
                             fds));
  EXPECT_FALSE(IsLosslessJoin(
      universe, {AttributeSet{"a", "b"}, AttributeSet{"b", "c"}}, fds));
}

TEST(LosslessJoinTest, ThreeWayChase) {
  // Textbook: R(a,b,c,d,e), FDs a→c, b→c, c→d, de→c, ce→a;
  // decomposition {ad, ab, be, cde, ae} is lossless.
  AttributeSet universe{"a", "b", "c", "d", "e"};
  std::vector<FunctionalDependency> fds = {
      Fd({"a"}, {"c"}), Fd({"b"}, {"c"}), Fd({"c"}, {"d"}),
      Fd({"d", "e"}, {"c"}), Fd({"c", "e"}, {"a"})};
  std::vector<AttributeSet> good = {
      AttributeSet{"a", "d"}, AttributeSet{"a", "b"},
      AttributeSet{"b", "e"}, AttributeSet{"c", "d", "e"},
      AttributeSet{"a", "e"}};
  EXPECT_TRUE(IsLosslessJoin(universe, good, fds));
  // Removing the component that ties e in breaks it.
  std::vector<AttributeSet> bad = {AttributeSet{"a", "d"},
                                   AttributeSet{"a", "b"},
                                   AttributeSet{"c", "d", "e"}};
  EXPECT_FALSE(IsLosslessJoin(universe, bad, fds));
}

TEST(LosslessJoinTest, FullComponentIsAlwaysLossless) {
  AttributeSet universe{"a", "b"};
  EXPECT_TRUE(IsLosslessJoin(universe, {universe}, {}));
  EXPECT_FALSE(IsLosslessJoin(universe, {}, {}));
}

TEST(ProjectFdsTest, KeepsOnlyComponentFds) {
  // a→b, b→c: projecting on {a, c} yields a→c (transitively).
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"b"}, {"c"})};
  auto projected = ProjectFds(AttributeSet{"a", "c"}, fds);
  ASSERT_EQ(projected.size(), 1u);
  EXPECT_EQ(projected[0].ToString(), "{a} -> {c}");
}

TEST(ProjectFdsTest, MinimalLhsOnly) {
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"c"})};
  auto projected = ProjectFds(AttributeSet{"a", "b", "c"}, fds);
  // a→c is there; ab→c must not be reported (non-minimal).
  for (const FunctionalDependency& fd : projected) {
    EXPECT_FALSE(fd.lhs == (AttributeSet{"a", "b"}) &&
                 fd.rhs == AttributeSet{"c"});
  }
}

TEST(PreservesDependenciesTest, DetectsLoss) {
  // R(a,b,c), a→b, b→c. {ab, ac} loses b→c; {ab, bc} preserves both.
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"b"}, {"c"})};
  EXPECT_FALSE(PreservesDependencies(
      {AttributeSet{"a", "b"}, AttributeSet{"a", "c"}}, fds));
  EXPECT_TRUE(PreservesDependencies(
      {AttributeSet{"a", "b"}, AttributeSet{"b", "c"}}, fds));
}

TEST(Synthesize3NFTest, TextbookSynthesis) {
  // a→bc, c→d over {a,b,c,d}: groups {a}→{b,c}, {c}→{d}; a is a key
  // contained in the first component → no key relation.
  AttributeSet universe{"a", "b", "c", "d"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b", "c"}),
                                           Fd({"c"}, {"d"})};
  auto relations = Synthesize3NF("R", universe, fds);
  ASSERT_EQ(relations.size(), 2u);
  EXPECT_EQ(relations[0].attributes, (AttributeSet{"a", "b", "c"}));
  EXPECT_EQ(relations[0].key, AttributeSet{"a"});
  EXPECT_EQ(relations[1].attributes, (AttributeSet{"c", "d"}));
}

TEST(Synthesize3NFTest, AddsKeyRelationWhenNeeded) {
  // a→b, c→d over {a,b,c,d}: key is {a,c}, contained in no group → a key
  // relation is added.
  AttributeSet universe{"a", "b", "c", "d"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"c"}, {"d"})};
  auto relations = Synthesize3NF("R", universe, fds);
  ASSERT_EQ(relations.size(), 3u);
  bool key_relation = false;
  for (const DecomposedRelation& relation : relations) {
    if (relation.attributes == (AttributeSet{"a", "c"})) key_relation = true;
  }
  EXPECT_TRUE(key_relation);
}

TEST(Synthesize3NFTest, IsolatedAttributesLandInKeyRelation) {
  // e appears in no FD → every key contains it.
  AttributeSet universe{"a", "b", "e"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"})};
  auto relations = Synthesize3NF("R", universe, fds);
  bool e_homed = false;
  for (const DecomposedRelation& relation : relations) {
    if (relation.attributes.Contains("e")) e_homed = true;
  }
  EXPECT_TRUE(e_homed);
}

TEST(Synthesize3NFTest, DropsSubsumedComponents) {
  // a→b and ab→... after cover reduction only distinct groups remain; a
  // trivially subsumed group must not appear twice.
  AttributeSet universe{"a", "b"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"})};
  auto relations = Synthesize3NF("R", universe, fds);
  EXPECT_EQ(relations.size(), 1u);
}

// Property: synthesis output is lossless, dependency-preserving, and every
// component is in 3NF under the projected FDs.
class SynthesisPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisPropertyTest, SynthesisInvariants) {
  struct Case {
    AttributeSet universe;
    std::vector<FunctionalDependency> fds;
  };
  std::vector<Case> cases = {
      {{"a", "b", "c", "d"}, {Fd({"a"}, {"b", "c"}), Fd({"c"}, {"d"})}},
      {{"a", "b", "c", "d"}, {Fd({"a"}, {"b"}), Fd({"c"}, {"d"})}},
      {{"a", "b", "c", "d", "e"},
       {Fd({"a"}, {"c"}), Fd({"b"}, {"c"}), Fd({"c"}, {"d"}),
        Fd({"d", "e"}, {"c"}), Fd({"c", "e"}, {"a"})}},
      {{"a", "b", "c"}, {Fd({"a", "b"}, {"c"}), Fd({"c"}, {"b"})}},
      {{"a", "b", "c"}, {}},
      {{"emp", "dep", "proj", "skill", "location"},
       {Fd({"dep"}, {"emp", "location"}), Fd({"emp"}, {"skill", "proj"})}},
  };
  const Case& c = cases[static_cast<size_t>(GetParam())];
  auto relations = Synthesize3NF("R", c.universe, c.fds);
  ASSERT_FALSE(relations.empty());
  std::vector<AttributeSet> components = Components(relations);

  // Every attribute is homed.
  AttributeSet covered;
  for (const AttributeSet& component : components) {
    covered = covered.Union(component);
  }
  EXPECT_EQ(covered, c.universe);

  EXPECT_TRUE(IsLosslessJoin(c.universe, components, c.fds));
  EXPECT_TRUE(PreservesDependencies(components, c.fds));
  for (const AttributeSet& component : components) {
    auto projected = ProjectFds(component, c.fds);
    EXPECT_TRUE(IsIn3NF(component, projected)) << component.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, SynthesisPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace dbre
