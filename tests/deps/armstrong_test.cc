#include "deps/armstrong.h"

#include <gtest/gtest.h>

#include "deps/fd_miner.h"
#include "relational/algebra.h"

namespace dbre {
namespace {

FunctionalDependency Fd(std::initializer_list<std::string> lhs,
                        std::initializer_list<std::string> rhs) {
  return FunctionalDependency("", AttributeSet(lhs), AttributeSet(rhs));
}

TEST(ArmstrongTest, ValidatesInputs) {
  EXPECT_FALSE(BuildArmstrongRelation("A", AttributeSet{}, {}).ok());
  EXPECT_FALSE(
      BuildArmstrongRelation("A", AttributeSet{"a"},
                             {Fd({"a"}, {"not_in_universe"})})
          .ok());
  std::vector<std::string> too_many;
  for (int i = 0; i < 17; ++i) too_many.push_back("a" + std::to_string(i));
  EXPECT_FALSE(
      BuildArmstrongRelation("A", AttributeSet(too_many), {}).ok());
}

// The defining property, checked exhaustively over all unary FDs: X → a
// holds in the Armstrong relation iff it is implied by F.
void CheckExactness(const AttributeSet& universe,
                    const std::vector<FunctionalDependency>& fds) {
  auto table = BuildArmstrongRelation("A", universe, fds);
  ASSERT_TRUE(table.ok()) << table.status();
  const std::vector<std::string>& names = universe.names();
  const size_t k = names.size();
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    AttributeSet lhs;
    for (size_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) lhs.Insert(names[i]);
    }
    for (const std::string& dependent : names) {
      if (lhs.Contains(dependent)) continue;
      bool implied = Implies(fds, lhs, AttributeSet::Single(dependent));
      bool holds = *FunctionalDependencyHolds(
          *table, lhs, AttributeSet::Single(dependent));
      EXPECT_EQ(implied, holds)
          << lhs.ToString() << " -> " << dependent;
    }
  }
}

TEST(ArmstrongTest, ExactForSimpleChain) {
  CheckExactness(AttributeSet{"a", "b", "c"},
                 {Fd({"a"}, {"b"}), Fd({"b"}, {"c"})});
}

TEST(ArmstrongTest, ExactForCompositeLhs) {
  CheckExactness(AttributeSet{"a", "b", "c", "d"},
                 {Fd({"a", "b"}, {"c"}), Fd({"c"}, {"d"})});
}

TEST(ArmstrongTest, ExactForNoFds) {
  CheckExactness(AttributeSet{"a", "b", "c"}, {});
}

TEST(ArmstrongTest, ExactForKeyedRelation) {
  CheckExactness(AttributeSet{"k", "x", "y"}, {Fd({"k"}, {"x", "y"})});
}

TEST(ArmstrongTest, ExactForCyclicFds) {
  CheckExactness(AttributeSet{"a", "b", "c"},
                 {Fd({"a"}, {"b"}), Fd({"b"}, {"a"})});
}

// Mining an Armstrong relation recovers a cover of exactly F.
TEST(ArmstrongTest, MinerRecoversExactCover) {
  AttributeSet universe{"a", "b", "c", "d"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b", "c"}),
                                           Fd({"c", "d"}, {"a"})};
  auto table = BuildArmstrongRelation("A", universe, fds);
  ASSERT_TRUE(table.ok());
  FdMinerOptions options;
  options.max_lhs_size = 3;
  auto mined = MineFds(*table, options);
  ASSERT_TRUE(mined.ok());
  // Equivalence both ways (mined FDs have relation name "A"; strip it for
  // comparison by rebuilding).
  std::vector<FunctionalDependency> mined_clean;
  for (const FunctionalDependency& fd : *mined) {
    mined_clean.emplace_back("", fd.lhs, fd.rhs);
  }
  for (const FunctionalDependency& fd : fds) {
    EXPECT_TRUE(Implies(mined_clean, fd.lhs, fd.rhs)) << fd.ToString();
  }
  for (const FunctionalDependency& fd : mined_clean) {
    EXPECT_TRUE(Implies(fds, fd.lhs, fd.rhs)) << fd.ToString();
  }
}

}  // namespace
}  // namespace dbre
