#include "deps/ind_closure.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

InclusionDependency Ind(const std::string& l, const std::string& la,
                        const std::string& r, const std::string& ra) {
  return InclusionDependency::Single(l, la, r, ra);
}

TEST(IndClosureTest, TransitivityChains) {
  std::vector<InclusionDependency> inds = {Ind("A", "x", "B", "y"),
                                           Ind("B", "y", "C", "z")};
  auto closed = TransitiveClosure(inds);
  EXPECT_EQ(closed.size(), 3u);
  EXPECT_NE(std::find(closed.begin(), closed.end(), Ind("A", "x", "C", "z")),
            closed.end());
}

TEST(IndClosureTest, NoChainWithoutMatchingMiddle) {
  // B[y] vs B[w]: middles differ, nothing derived.
  std::vector<InclusionDependency> inds = {Ind("A", "x", "B", "y"),
                                           Ind("B", "w", "C", "z")};
  EXPECT_EQ(TransitiveClosure(inds).size(), 2u);
}

TEST(IndClosureTest, LongChainSaturates) {
  std::vector<InclusionDependency> inds;
  for (int i = 0; i < 5; ++i) {
    inds.push_back(Ind("R" + std::to_string(i), "a",
                       "R" + std::to_string(i + 1), "a"));
  }
  auto closed = TransitiveClosure(inds);
  // 5 + 4 + 3 + 2 + 1 pairs.
  EXPECT_EQ(closed.size(), 15u);
}

TEST(IndClosureTest, CycleDoesNotDeriveTrivial) {
  std::vector<InclusionDependency> inds = {Ind("A", "x", "B", "y"),
                                           Ind("B", "y", "A", "x")};
  auto closed = TransitiveClosure(inds);
  EXPECT_EQ(closed.size(), 2u);  // A[x] << A[x] suppressed
}

TEST(IndClosureTest, MultiAttributeMiddleMatchesPositionally) {
  InclusionDependency first("A", {"x1", "x2"}, "B", {"y1", "y2"});
  InclusionDependency second("B", {"y1", "y2"}, "C", {"z1", "z2"});
  InclusionDependency mismatched("B", {"y2", "y1"}, "C", {"z1", "z2"});
  auto closed = TransitiveClosure({first, second});
  EXPECT_EQ(closed.size(), 3u);
  closed = TransitiveClosure({first, mismatched});
  EXPECT_EQ(closed.size(), 2u);  // order differs → no chain
}

TEST(IndClosureTest, UnaryProjection) {
  InclusionDependency multi("A", {"x1", "x2"}, "B", {"y1", "y2"});
  IndClosureOptions options;
  options.project = true;
  auto closed = TransitiveClosure({multi}, options);
  EXPECT_EQ(closed.size(), 3u);  // original + two unary projections
  EXPECT_NE(std::find(closed.begin(), closed.end(),
                      Ind("A", "x1", "B", "y1")),
            closed.end());
  EXPECT_NE(std::find(closed.begin(), closed.end(),
                      Ind("A", "x2", "B", "y2")),
            closed.end());
}

TEST(IndClosureTest, FullProjection) {
  InclusionDependency multi("A", {"x1", "x2", "x3"}, "B",
                            {"y1", "y2", "y3"});
  IndClosureOptions options;
  options.project = true;
  options.unary_projections_only = false;
  auto closed = TransitiveClosure({multi}, options);
  EXPECT_EQ(closed.size(), 7u);  // all non-empty position subsets
}

TEST(IndClosureTest, SaturationGuard) {
  // A complete digraph on 20 unary sides would close to 380 INDs; cap it.
  std::vector<InclusionDependency> inds;
  for (int i = 0; i < 19; ++i) {
    inds.push_back(Ind("R" + std::to_string(i), "a",
                       "R" + std::to_string(i + 1), "a"));
  }
  inds.push_back(Ind("R19", "a", "R0", "a"));
  IndClosureOptions options;
  options.max_derived = 50;
  auto closed = TransitiveClosure(inds, options);
  EXPECT_LE(closed.size(), 50u);
  EXPECT_GE(closed.size(), 20u);
}

TEST(FindCyclicSidesTest, NoCycles) {
  std::vector<InclusionDependency> inds = {Ind("A", "x", "B", "y"),
                                           Ind("B", "y", "C", "z")};
  EXPECT_TRUE(FindCyclicSides(inds).empty());
}

TEST(FindCyclicSidesTest, TwoCycle) {
  std::vector<InclusionDependency> inds = {Ind("A", "x", "B", "y"),
                                           Ind("B", "y", "A", "x")};
  auto cycles = FindCyclicSides(inds);
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].sides.size(), 2u);
  EXPECT_EQ(cycles[0].sides[0].first, "A");
  EXPECT_EQ(cycles[0].sides[1].first, "B");
}

TEST(FindCyclicSidesTest, LongCycleAndBranch) {
  std::vector<InclusionDependency> inds = {
      Ind("A", "x", "B", "y"), Ind("B", "y", "C", "z"),
      Ind("C", "z", "A", "x"),
      Ind("D", "w", "A", "x"),  // feeds the cycle, not part of it
  };
  auto cycles = FindCyclicSides(inds);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].sides.size(), 3u);
}

TEST(FindCyclicSidesTest, SameRelationDifferentAttributesAreDistinctNodes) {
  // A[x] << A[y] << A[x]: a cycle between two sides of one relation.
  std::vector<InclusionDependency> inds = {Ind("A", "x", "A", "y"),
                                           Ind("A", "y", "A", "x")};
  auto cycles = FindCyclicSides(inds);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].sides.size(), 2u);
}

}  // namespace
}  // namespace dbre
