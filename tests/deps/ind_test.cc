#include "deps/ind.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

TEST(IndTest, ToStringAndOrdering) {
  InclusionDependency ind =
      InclusionDependency::Single("R", "a", "S", "b");
  EXPECT_EQ(ind.ToString(), "R[a] << S[b]");
  InclusionDependency multi("R", {"a", "b"}, "S", {"x", "y"});
  EXPECT_EQ(multi.ToString(), "R[a, b] << S[x, y]");
  EXPECT_LT(ind, multi);  // [a] < [a, b]
}

TEST(IndTest, ValidateShapes) {
  EXPECT_TRUE(InclusionDependency::Single("R", "a", "S", "b").Validate().ok());
  EXPECT_FALSE(InclusionDependency("", {"a"}, "S", {"b"}).Validate().ok());
  EXPECT_FALSE(InclusionDependency("R", {}, "S", {}).Validate().ok());
  EXPECT_FALSE(
      InclusionDependency("R", {"a", "b"}, "S", {"x"}).Validate().ok());
  EXPECT_FALSE(InclusionDependency("R", {""}, "S", {"x"}).Validate().ok());
}

TEST(IndTest, SatisfiesQueriesExtension) {
  Database db;
  RelationSchema r("R");
  ASSERT_TRUE(r.AddAttribute("a", DataType::kInt64).ok());
  Table tr(std::move(r));
  tr.InsertUnchecked({Value::Int(1)});
  tr.InsertUnchecked({Value::Int(2)});
  ASSERT_TRUE(db.AddTable(std::move(tr)).ok());

  RelationSchema s("S");
  ASSERT_TRUE(s.AddAttribute("b", DataType::kInt64).ok());
  ASSERT_TRUE(s.DeclareUnique({"b"}).ok());
  Table ts(std::move(s));
  for (int64_t v : {1, 2, 3}) ts.InsertUnchecked({Value::Int(v)});
  ASSERT_TRUE(db.AddTable(std::move(ts)).ok());

  InclusionDependency forward = InclusionDependency::Single("R", "a", "S", "b");
  InclusionDependency backward =
      InclusionDependency::Single("S", "b", "R", "a");
  EXPECT_TRUE(*Satisfies(db, forward));
  EXPECT_FALSE(*Satisfies(db, backward));
  EXPECT_FALSE(Satisfies(db, InclusionDependency::Single("R", "a", "Nope",
                                                         "b"))
                   .ok());

  EXPECT_TRUE(IsKeyBased(db, forward));    // S.b is unique
  EXPECT_FALSE(IsKeyBased(db, backward));  // R.a is not
}

TEST(IndTest, SortedUniqueDeduplicates) {
  std::vector<InclusionDependency> inds = {
      InclusionDependency::Single("R", "a", "S", "b"),
      InclusionDependency::Single("A", "x", "B", "y"),
      InclusionDependency::Single("R", "a", "S", "b"),
  };
  auto unique = SortedUnique(std::move(inds));
  ASSERT_EQ(unique.size(), 2u);
  EXPECT_EQ(unique[0].lhs_relation, "A");
}

}  // namespace
}  // namespace dbre
