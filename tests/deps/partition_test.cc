#include "deps/partition.h"

#include <random>

#include <gtest/gtest.h>

#include "relational/algebra.h"

namespace dbre {
namespace {

Table MakeTable(const std::vector<std::vector<int64_t>>& rows,
                size_t columns) {
  RelationSchema schema("T");
  for (size_t c = 0; c < columns; ++c) {
    EXPECT_TRUE(
        schema.AddAttribute("c" + std::to_string(c), DataType::kInt64).ok());
  }
  Table table(std::move(schema));
  for (const auto& row : rows) {
    ValueVector values;
    for (int64_t v : row) values.push_back(Value::Int(v));
    table.InsertUnchecked(std::move(values));
  }
  return table;
}

TEST(PartitionTest, SingleColumnGrouping) {
  Table table = MakeTable({{1}, {1}, {2}, {3}, {3}, {3}}, 1);
  auto partition = StrippedPartition::ForColumn(table, 0);
  ASSERT_TRUE(partition.ok());
  // Classes {0,1} and {3,4,5}; the singleton {2} is stripped.
  EXPECT_EQ(partition->classes().size(), 2u);
  EXPECT_EQ(partition->CoveredRows(), 5u);
  EXPECT_EQ(partition->NumClassesWithSingletons(), 3u);
  EXPECT_EQ(partition->Error(), 3u);  // 5 covered - 2 classes
}

TEST(PartitionTest, OutOfRangeColumn) {
  Table table = MakeTable({{1}}, 1);
  EXPECT_FALSE(StrippedPartition::ForColumn(table, 5).ok());
}

TEST(PartitionTest, MultiAttributePartition) {
  Table table = MakeTable({{1, 1}, {1, 1}, {1, 2}, {2, 1}}, 2);
  auto partition = StrippedPartition::ForAttributes(
      table, AttributeSet{"c0", "c1"});
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->classes().size(), 1u);  // only (1,1) repeats
  EXPECT_EQ(partition->NumClassesWithSingletons(), 3u);
}

TEST(PartitionTest, IntersectEqualsDirectComputation) {
  std::mt19937_64 rng(7);
  std::vector<std::vector<int64_t>> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({static_cast<int64_t>(rng() % 5),
                    static_cast<int64_t>(rng() % 7)});
  }
  Table table = MakeTable(rows, 2);
  auto p0 = StrippedPartition::ForColumn(table, 0);
  auto p1 = StrippedPartition::ForColumn(table, 1);
  auto direct =
      StrippedPartition::ForAttributes(table, AttributeSet{"c0", "c1"});
  ASSERT_TRUE(p0.ok() && p1.ok() && direct.ok());
  StrippedPartition product = p0->Intersect(*p1);
  EXPECT_EQ(product.classes(), direct->classes());
  EXPECT_EQ(product.NumClassesWithSingletons(),
            direct->NumClassesWithSingletons());
}

TEST(PartitionTest, RefinesMatchesFdSemantics) {
  // c0 → c1 holds; c1 → c0 does not.
  Table table = MakeTable({{1, 10}, {1, 10}, {2, 10}, {3, 30}}, 2);
  auto p0 = StrippedPartition::ForColumn(table, 0);
  auto p1 = StrippedPartition::ForColumn(table, 1);
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_TRUE(p0->Refines(*p1));   // c0 → c1
  EXPECT_FALSE(p1->Refines(*p0));  // c1 ↛ c0
}

TEST(PartitionTest, NullsGroupTogether) {
  RelationSchema schema("T");
  ASSERT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
  ASSERT_TRUE(schema.AddAttribute("b", DataType::kInt64).ok());
  Table table(std::move(schema));
  table.InsertUnchecked({Value::Null(), Value::Int(1)});
  table.InsertUnchecked({Value::Null(), Value::Int(1)});
  table.InsertUnchecked({Value::Int(5), Value::Int(2)});
  auto partition = StrippedPartition::ForColumn(table, 0);
  ASSERT_TRUE(partition.ok());
  // The two NULLs form one class (NULL-as-value semantics).
  EXPECT_EQ(partition->classes().size(), 1u);
  EXPECT_EQ(partition->classes()[0].size(), 2u);
}

// Property sweep: on NULL-free random tables, the partition-based check
// agrees with the direct pairwise FD check for every column pair.
class PartitionFdAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionFdAgreementTest, AgreesWithDirectCheck) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::vector<int64_t>> rows;
  size_t num_rows = 50 + rng() % 150;
  for (size_t i = 0; i < num_rows; ++i) {
    rows.push_back({static_cast<int64_t>(rng() % 4),
                    static_cast<int64_t>(rng() % 6),
                    static_cast<int64_t>(rng() % 3)});
  }
  Table table = MakeTable(rows, 3);
  std::vector<StrippedPartition> partitions;
  for (size_t c = 0; c < 3; ++c) {
    partitions.push_back(*StrippedPartition::ForColumn(table, c));
  }
  const char* names[] = {"c0", "c1", "c2"};
  for (size_t x = 0; x < 3; ++x) {
    for (size_t y = 0; y < 3; ++y) {
      if (x == y) continue;
      bool via_partition = partitions[x].Refines(partitions[y]);
      bool direct = *FunctionalDependencyHolds(
          table, AttributeSet::Single(names[x]),
          AttributeSet::Single(names[y]));
      EXPECT_EQ(via_partition, direct)
          << names[x] << " -> " << names[y] << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFdAgreementTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace dbre
