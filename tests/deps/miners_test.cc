#include <random>

#include <gtest/gtest.h>

#include "deps/fd_miner.h"
#include "deps/ind.h"
#include "deps/ind_miner.h"
#include "relational/algebra.h"

namespace dbre {
namespace {

Table MakeTable(const std::string& name,
                const std::vector<std::string>& columns,
                const std::vector<std::vector<int64_t>>& rows) {
  RelationSchema schema(name);
  for (const std::string& column : columns) {
    EXPECT_TRUE(schema.AddAttribute(column, DataType::kInt64).ok());
  }
  Table table(std::move(schema));
  for (const auto& row : rows) {
    ValueVector values;
    for (int64_t v : row) values.push_back(Value::Int(v));
    table.InsertUnchecked(std::move(values));
  }
  return table;
}

TEST(FdMinerTest, FindsPlantedFd) {
  // b = a % 3 → a → b holds; nothing else deterministic.
  std::vector<std::vector<int64_t>> rows;
  for (int64_t a = 0; a < 60; ++a) rows.push_back({a, a % 3, (a * 17) % 7});
  Table table = MakeTable("T", {"a", "b", "c"}, rows);
  auto fds = MineFds(table);
  ASSERT_TRUE(fds.ok());
  // a is a key (all values distinct), so a→b, a→c are found at level 1.
  EXPECT_NE(std::find(fds->begin(), fds->end(),
                      FunctionalDependency("T", AttributeSet{"a"},
                                           AttributeSet{"b"})),
            fds->end());
  EXPECT_NE(std::find(fds->begin(), fds->end(),
                      FunctionalDependency("T", AttributeSet{"a"},
                                           AttributeSet{"c"})),
            fds->end());
}

TEST(FdMinerTest, FindsCompositeLhsFd) {
  // c = (a + b) — determined only by {a, b} jointly.
  std::vector<std::vector<int64_t>> rows;
  for (int64_t a = 0; a < 8; ++a) {
    for (int64_t b = 0; b < 8; ++b) rows.push_back({a, b, a + b});
  }
  Table table = MakeTable("T", {"a", "b", "c"}, rows);
  auto fds = MineFds(table);
  ASSERT_TRUE(fds.ok());
  EXPECT_NE(std::find(fds->begin(), fds->end(),
                      FunctionalDependency("T", AttributeSet{"a", "b"},
                                           AttributeSet{"c"})),
            fds->end());
  // Neither a→c nor b→c individually.
  EXPECT_EQ(std::find(fds->begin(), fds->end(),
                      FunctionalDependency("T", AttributeSet{"a"},
                                           AttributeSet{"c"})),
            fds->end());
}

TEST(FdMinerTest, ReportsOnlyMinimalFds) {
  std::vector<std::vector<int64_t>> rows;
  for (int64_t a = 0; a < 40; ++a) rows.push_back({a, a % 5, a % 2});
  Table table = MakeTable("T", {"a", "b", "c"}, rows);
  auto fds = MineFds(table);
  ASSERT_TRUE(fds.ok());
  // a→b minimal, so {a,c}→b must not be reported.
  for (const FunctionalDependency& fd : *fds) {
    EXPECT_FALSE(fd.lhs == (AttributeSet{"a", "c"}) &&
                 fd.rhs == AttributeSet{"b"})
        << fd.ToString();
  }
}

TEST(FdMinerTest, RespectsMaxLhsSize) {
  std::vector<std::vector<int64_t>> rows;
  for (int64_t a = 0; a < 6; ++a) {
    for (int64_t b = 0; b < 6; ++b) rows.push_back({a, b, a + b});
  }
  Table table = MakeTable("T", {"a", "b", "c"}, rows);
  FdMinerOptions options;
  options.max_lhs_size = 1;
  auto fds = MineFds(table, options);
  ASSERT_TRUE(fds.ok());
  for (const FunctionalDependency& fd : *fds) {
    EXPECT_EQ(fd.lhs.size(), 1u);
  }
}

TEST(FdMinerTest, StatsAreReported) {
  std::vector<std::vector<int64_t>> rows;
  for (int64_t a = 0; a < 20; ++a) rows.push_back({a, a % 3});
  Table table = MakeTable("T", {"a", "b"}, rows);
  FdMinerStats stats;
  auto fds = MineFds(table, {}, &stats);
  ASSERT_TRUE(fds.ok());
  EXPECT_GT(stats.candidates_checked, 0u);
  EXPECT_EQ(stats.partitions_built, 2u);
  EXPECT_EQ(stats.discovered, fds->size());
}

TEST(FdMinerTest, TinyTablesHandled) {
  Table empty = MakeTable("T", {"a", "b"}, {});
  auto fds = MineFds(empty);
  ASSERT_TRUE(fds.ok());  // everything holds vacuously
  EXPECT_EQ(fds->size(), 2u);
  Table single = MakeTable("S", {"a"}, {{1}});
  EXPECT_TRUE(MineFds(single)->empty());
}

// Property: every mined FD actually holds, and every non-mined level-1 FD
// actually fails (completeness at level 1).
class FdMinerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FdMinerPropertyTest, SoundAndCompleteAtLevelOne) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::vector<int64_t>> rows;
  size_t num_rows = 30 + rng() % 100;
  for (size_t i = 0; i < num_rows; ++i) {
    int64_t a = static_cast<int64_t>(rng() % 6);
    rows.push_back({a, a % 3 /* planted a→b */,
                    static_cast<int64_t>(rng() % 4)});
  }
  Table table = MakeTable("T", {"a", "b", "c"}, rows);
  auto fds = MineFds(table);
  ASSERT_TRUE(fds.ok());
  // Soundness (NULL-free data, so both check semantics agree).
  for (const FunctionalDependency& fd : *fds) {
    EXPECT_TRUE(*FunctionalDependencyHolds(table, fd.lhs, fd.rhs))
        << fd.ToString() << " seed=" << GetParam();
  }
  // Planted FD recovered.
  EXPECT_NE(std::find(fds->begin(), fds->end(),
                      FunctionalDependency("T", AttributeSet{"a"},
                                           AttributeSet{"b"})),
            fds->end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdMinerPropertyTest,
                         ::testing::Range<uint64_t>(100, 110));

TEST(IndMinerTest, FindsPlantedInclusion) {
  Database db;
  db.AddTable(MakeTable("Child", {"fk", "x"},
                        {{1, 0}, {2, 0}, {1, 1}}));
  db.AddTable(MakeTable("Parent", {"id", "y"},
                        {{1, 5}, {2, 6}, {3, 7}}));
  auto inds = MineUnaryInds(db);
  ASSERT_TRUE(inds.ok());
  EXPECT_NE(std::find(inds->begin(), inds->end(),
                      InclusionDependency::Single("Child", "fk", "Parent",
                                                  "id")),
            inds->end());
  // Parent.id ⊄ Child.fk (3 missing).
  EXPECT_EQ(std::find(inds->begin(), inds->end(),
                      InclusionDependency::Single("Parent", "id", "Child",
                                                  "fk")),
            inds->end());
}

TEST(IndMinerTest, TypeCompatibilityFilters) {
  Database db;
  RelationSchema a("A");
  ASSERT_TRUE(a.AddAttribute("n", DataType::kInt64).ok());
  ASSERT_TRUE(a.AddAttribute("s", DataType::kString).ok());
  Table ta(std::move(a));
  ta.InsertUnchecked({Value::Int(1), Value::Text("1")});
  ASSERT_TRUE(db.AddTable(std::move(ta)).ok());
  IndMinerStats stats;
  auto inds = MineUnaryInds(db, {}, &stats);
  ASSERT_TRUE(inds.ok());
  // n vs s are type-incompatible: no pair considered.
  EXPECT_EQ(stats.pairs_considered, 0u);
}

TEST(IndMinerTest, KeyTargetsOnlyOption) {
  Database db;
  Table child = MakeTable("Child", {"fk"}, {{1}, {2}});
  Table parent = MakeTable("Parent", {"id", "alt"},
                           {{1, 1}, {2, 2}, {3, 3}});
  parent.mutable_schema().DeclareUnique(AttributeSet{"id"});
  ASSERT_TRUE(db.AddTable(std::move(child)).ok());
  ASSERT_TRUE(db.AddTable(std::move(parent)).ok());
  IndMinerOptions options;
  options.key_targets_only = true;
  auto inds = MineUnaryInds(db, options);
  ASSERT_TRUE(inds.ok());
  for (const InclusionDependency& ind : *inds) {
    EXPECT_EQ(ind.rhs_attributes, std::vector<std::string>{"id"});
  }
}

TEST(IndMinerTest, SizePruningSkipsChecks) {
  Database db;
  std::vector<std::vector<int64_t>> big;
  for (int64_t i = 0; i < 100; ++i) big.push_back({i});
  db.AddTable(MakeTable("Big", {"v"}, big));
  db.AddTable(MakeTable("Small", {"w"}, {{1}, {2}}));
  IndMinerStats stats;
  auto inds = MineUnaryInds(db, {}, &stats);
  ASSERT_TRUE(inds.ok());
  // Big[v] ⊆ Small[w] impossible by size: only Small→Big gets checked.
  EXPECT_EQ(stats.pairs_considered, 2u);
  EXPECT_EQ(stats.pairs_checked, 1u);
  EXPECT_EQ(inds->size(), 1u);
}

TEST(NaryIndMinerTest, FindsBinaryInd) {
  Database db;
  // Child(a, b) ⊆ Parent(x, y) pairwise AND jointly.
  db.AddTable(MakeTable("Child", {"a", "b"}, {{1, 10}, {2, 20}}));
  db.AddTable(MakeTable("Parent", {"x", "y"},
                        {{1, 10}, {2, 20}, {3, 30}}));
  NaryIndMinerOptions options;
  options.max_arity = 2;
  NaryIndMinerStats stats;
  auto inds = MineNaryInds(db, options, &stats);
  ASSERT_TRUE(inds.ok()) << inds.status();
  InclusionDependency binary("Child", {"a", "b"}, "Parent", {"x", "y"});
  EXPECT_NE(std::find(inds->begin(), inds->end(), binary), inds->end());
  EXPECT_GT(stats.candidates_checked, 0u);
  EXPECT_EQ(stats.discovered, inds->size());
}

TEST(NaryIndMinerTest, RejectsJointViolationDespiteUnaryInclusions) {
  Database db;
  // Each column included individually, but the (a, b) pairs are not:
  // Child has (1, 20) which Parent lacks.
  db.AddTable(MakeTable("Child", {"a", "b"}, {{1, 20}, {2, 10}}));
  db.AddTable(MakeTable("Parent", {"x", "y"},
                        {{1, 10}, {2, 20}}));
  NaryIndMinerOptions options;
  options.max_arity = 2;
  auto inds = MineNaryInds(db, options);
  ASSERT_TRUE(inds.ok());
  InclusionDependency joint("Child", {"a", "b"}, "Parent", {"x", "y"});
  EXPECT_EQ(std::find(inds->begin(), inds->end(), joint), inds->end());
  // The unary projections are there.
  EXPECT_NE(std::find(inds->begin(), inds->end(),
                      InclusionDependency::Single("Child", "a", "Parent",
                                                  "x")),
            inds->end());
}

TEST(NaryIndMinerTest, ArityOneEqualsUnaryMiner) {
  Database db;
  db.AddTable(MakeTable("R", {"a", "b"}, {{1, 2}, {2, 3}}));
  db.AddTable(MakeTable("S", {"c"}, {{1}, {2}, {3}}));
  NaryIndMinerOptions options;
  options.max_arity = 1;
  auto nary = MineNaryInds(db, options);
  auto unary = MineUnaryInds(db);
  ASSERT_TRUE(nary.ok() && unary.ok());
  EXPECT_EQ(*nary, *unary);
}

TEST(NaryIndMinerTest, SoundAtArityTwo) {
  // Every reported binary IND must actually hold.
  std::mt19937_64 rng(77);
  Database db;
  for (int t = 0; t < 2; ++t) {
    std::vector<std::vector<int64_t>> rows;
    for (int i = 0; i < 40; ++i) {
      rows.push_back({static_cast<int64_t>(rng() % 5),
                      static_cast<int64_t>(rng() % 5)});
    }
    db.AddTable(MakeTable("T" + std::to_string(t), {"a", "b"}, rows));
  }
  NaryIndMinerOptions options;
  options.max_arity = 2;
  auto inds = MineNaryInds(db, options);
  ASSERT_TRUE(inds.ok());
  for (const InclusionDependency& ind : *inds) {
    EXPECT_TRUE(*Satisfies(db, ind)) << ind.ToString();
  }
}

// Property: mined INDs are exactly the satisfied type-compatible pairs.
TEST(IndMinerTest, SoundAndComplete) {
  std::mt19937_64 rng(4242);
  Database db;
  for (int t = 0; t < 3; ++t) {
    std::vector<std::vector<int64_t>> rows;
    for (int i = 0; i < 50; ++i) {
      rows.push_back({static_cast<int64_t>(rng() % 20),
                      static_cast<int64_t>(rng() % 8)});
    }
    db.AddTable(MakeTable("T" + std::to_string(t), {"a", "b"}, rows));
  }
  auto inds = MineUnaryInds(db);
  ASSERT_TRUE(inds.ok());
  // Soundness + completeness against brute force.
  size_t brute_count = 0;
  for (const std::string& r1 : db.RelationNames()) {
    for (const std::string& r2 : db.RelationNames()) {
      for (const char* a1 : {"a", "b"}) {
        for (const char* a2 : {"a", "b"}) {
          if (r1 == r2 && std::string(a1) == a2) continue;
          bool holds = *InclusionHolds(db, r1, {a1}, r2, {a2});
          bool mined =
              std::find(inds->begin(), inds->end(),
                        InclusionDependency::Single(r1, a1, r2, a2)) !=
              inds->end();
          EXPECT_EQ(holds, mined) << r1 << "." << a1 << " << " << r2 << "."
                                  << a2;
          if (holds) ++brute_count;
        }
      }
    }
  }
  EXPECT_EQ(brute_count, inds->size());
}

}  // namespace
}  // namespace dbre
