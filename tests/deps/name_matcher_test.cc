#include "deps/name_matcher.h"

#include <gtest/gtest.h>

#include "sql/ddl.h"
#include "workload/generator.h"

namespace dbre {
namespace {

TEST(NameStemTest, StripsLongestSuffix) {
  NameMatchOptions options;
  EXPECT_EQ(NameStem("cust_id", options), "cust");
  EXPECT_EQ(NameStem("CUST_REF", options), "cust");
  EXPECT_EQ(NameStem("order_no", options), "order");
  EXPECT_EQ(NameStem("plain", options), "plain");
  // Never strips down to nothing.
  EXPECT_EQ(NameStem("_id", options), "_id");
}

TEST(NameMatcherTest, FindsAlignedForeignKey) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdlScript(R"(
CREATE TABLE Customers (cust_id INT PRIMARY KEY, name TEXT);
CREATE TABLE Orders (ord INT PRIMARY KEY, cust_ref INT);
INSERT INTO Customers VALUES (1, 'a'), (2, 'b');
INSERT INTO Orders VALUES (10, 1), (11, 2);
)",
                                    &db)
                  .ok());
  NameMatchStats stats;
  auto inds = DiscoverIndsByNaming(db, {}, &stats);
  ASSERT_TRUE(inds.ok()) << inds.status();
  ASSERT_EQ(inds->size(), 1u);
  EXPECT_EQ((*inds)[0].ToString(), "Orders[cust_ref] << Customers[cust_id]");
  EXPECT_GE(stats.pairs_proposed, 1u);
}

TEST(NameMatcherTest, VerificationDropsViolatedProposals) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdlScript(R"(
CREATE TABLE Customers (cust_id INT PRIMARY KEY);
CREATE TABLE Orders (ord INT PRIMARY KEY, cust_id INT);
INSERT INTO Customers VALUES (1);
INSERT INTO Orders VALUES (10, 1), (11, 99);
)",
                                    &db)
                  .ok());
  auto verified = DiscoverIndsByNaming(db);
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(verified->empty());  // 99 is dangling

  NameMatchOptions unverified;
  unverified.verify_against_extension = false;
  auto raw = DiscoverIndsByNaming(db, unverified);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 1u);  // the raw heuristic still proposes it
}

TEST(NameMatcherTest, TypeCompatibilityRequired) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdlScript(R"(
CREATE TABLE A (thing_id INT PRIMARY KEY);
CREATE TABLE B (x INT PRIMARY KEY, thing_id TEXT);
INSERT INTO A VALUES (1);
INSERT INTO B VALUES (1, '1');
)",
                                    &db)
                  .ok());
  auto inds = DiscoverIndsByNaming(db);
  ASSERT_TRUE(inds.ok());
  EXPECT_TRUE(inds->empty());
}

TEST(NameMatcherTest, RecallCollapsesUnderObfuscation) {
  workload::SyntheticSpec spec;
  spec.num_entities = 6;
  spec.num_merged = 3;
  spec.rows_per_entity = 150;
  spec.seed = 8;

  // Aligned names: the heuristic finds the FK links (fk column stems match
  // the referenced key names) and the merged links (identical names).
  auto aligned = workload::GenerateSynthetic(spec);
  ASSERT_TRUE(aligned.ok());
  NameMatchOptions options;
  options.key_targets_only = false;  // merged links target non-keys
  auto found_aligned = DiscoverIndsByNaming(aligned->database, options);
  ASSERT_TRUE(found_aligned.ok());
  size_t aligned_hits = 0;
  for (const InclusionDependency& truth : aligned->true_inds) {
    if (std::find(found_aligned->begin(), found_aligned->end(), truth) !=
        found_aligned->end()) {
      ++aligned_hits;
    }
  }
  EXPECT_GT(aligned_hits, 0u);

  // Obfuscated names: ground truth unaffected, heuristic finds none of it.
  spec.obfuscate_names = true;
  auto obfuscated = workload::GenerateSynthetic(spec);
  ASSERT_TRUE(obfuscated.ok());
  for (const InclusionDependency& truth : obfuscated->true_inds) {
    EXPECT_TRUE(*Satisfies(obfuscated->database, truth))
        << truth.ToString();
  }
  auto found_obfuscated =
      DiscoverIndsByNaming(obfuscated->database, options);
  ASSERT_TRUE(found_obfuscated.ok());
  size_t obfuscated_hits = 0;
  for (const InclusionDependency& truth : obfuscated->true_inds) {
    if (std::find(found_obfuscated->begin(), found_obfuscated->end(),
                  truth) != found_obfuscated->end()) {
      ++obfuscated_hits;
    }
  }
  EXPECT_EQ(obfuscated_hits, 0u);
  EXPECT_GT(aligned_hits, obfuscated_hits);
}

}  // namespace
}  // namespace dbre
