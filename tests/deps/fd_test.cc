#include "deps/fd.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

FunctionalDependency Fd(std::initializer_list<std::string> lhs,
                        std::initializer_list<std::string> rhs) {
  return FunctionalDependency("R", AttributeSet(lhs), AttributeSet(rhs));
}

TEST(FdTest, ToStringAndTriviality) {
  EXPECT_EQ(Fd({"a"}, {"b", "c"}).ToString(), "R: {a} -> {b, c}");
  EXPECT_TRUE(Fd({"a", "b"}, {"a"}).IsTrivial());
  EXPECT_FALSE(Fd({"a"}, {"b"}).IsTrivial());
}

TEST(ClosureTest, ReflexiveAndTransitive) {
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"b"}, {"c"})};
  EXPECT_EQ(AttributeClosure(AttributeSet{"a"}, fds),
            (AttributeSet{"a", "b", "c"}));
  EXPECT_EQ(AttributeClosure(AttributeSet{"b"}, fds),
            (AttributeSet{"b", "c"}));
  EXPECT_EQ(AttributeClosure(AttributeSet{"c"}, fds), AttributeSet{"c"});
}

TEST(ClosureTest, CompositeLhsNeedsAllAttributes) {
  std::vector<FunctionalDependency> fds = {Fd({"a", "b"}, {"c"})};
  EXPECT_EQ(AttributeClosure(AttributeSet{"a"}, fds), AttributeSet{"a"});
  EXPECT_EQ(AttributeClosure(AttributeSet{"a", "b"}, fds),
            (AttributeSet{"a", "b", "c"}));
}

TEST(ClosureTest, EmptyFdSet) {
  EXPECT_EQ(AttributeClosure(AttributeSet{"a"}, {}), AttributeSet{"a"});
}

TEST(ImpliesTest, DetectsImpliedFds) {
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"b"}, {"c"})};
  EXPECT_TRUE(Implies(fds, AttributeSet{"a"}, AttributeSet{"c"}));
  EXPECT_FALSE(Implies(fds, AttributeSet{"c"}, AttributeSet{"a"}));
}

TEST(SuperkeyTest, Superkeys) {
  AttributeSet all{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b", "c"})};
  EXPECT_TRUE(IsSuperkey(AttributeSet{"a"}, all, fds));
  EXPECT_TRUE(IsSuperkey(AttributeSet{"a", "b"}, all, fds));
  EXPECT_FALSE(IsSuperkey(AttributeSet{"b"}, all, fds));
}

TEST(CandidateKeysTest, SingleKey) {
  AttributeSet all{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"b"}, {"c"})};
  EXPECT_EQ(CandidateKeys(all, fds),
            std::vector<AttributeSet>{AttributeSet{"a"}});
}

TEST(CandidateKeysTest, MultipleKeys) {
  // a→b, b→a: both {a,c} and {b,c} are keys of {a,b,c}.
  AttributeSet all{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"b"}, {"a"})};
  EXPECT_EQ(CandidateKeys(all, fds),
            (std::vector<AttributeSet>{AttributeSet{"a", "c"},
                                       AttributeSet{"b", "c"}}));
}

TEST(CandidateKeysTest, NoFdsMeansAllAttributes) {
  AttributeSet all{"a", "b"};
  EXPECT_EQ(CandidateKeys(all, {}), std::vector<AttributeSet>{all});
}

TEST(CandidateKeysTest, CyclicKeys) {
  // Classic: a→b, b→c, c→a — every attribute is a key.
  AttributeSet all{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {
      Fd({"a"}, {"b"}), Fd({"b"}, {"c"}), Fd({"c"}, {"a"})};
  EXPECT_EQ(CandidateKeys(all, fds),
            (std::vector<AttributeSet>{AttributeSet{"a"}, AttributeSet{"b"},
                                       AttributeSet{"c"}}));
}

TEST(MinimalCoverTest, SplitsRightHandSides) {
  auto cover = MinimalCover("R", {Fd({"a"}, {"b", "c"})});
  ASSERT_EQ(cover.size(), 2u);
  EXPECT_EQ(cover[0].ToString(), "R: {a} -> {b}");
  EXPECT_EQ(cover[1].ToString(), "R: {a} -> {c}");
}

TEST(MinimalCoverTest, RemovesExtraneousLhsAttributes) {
  // With a→b, the FD ab→c should shrink to a→c iff a→c is implied; here we
  // give ab→c and a→b: b is extraneous in ab→c only if a→c follows from
  // {a→b, a(b)→c} — it does (a determines b, then ab→c).
  auto cover = MinimalCover("R", {Fd({"a"}, {"b"}), Fd({"a", "b"}, {"c"})});
  bool found_reduced = false;
  for (const FunctionalDependency& fd : cover) {
    if (fd.lhs == AttributeSet{"a"} && fd.rhs == AttributeSet{"c"}) {
      found_reduced = true;
    }
    EXPECT_NE(fd.lhs, (AttributeSet{"a", "b"}));
  }
  EXPECT_TRUE(found_reduced);
}

TEST(MinimalCoverTest, RemovesRedundantFds) {
  auto cover = MinimalCover(
      "R", {Fd({"a"}, {"b"}), Fd({"b"}, {"c"}), Fd({"a"}, {"c"})});
  EXPECT_EQ(cover.size(), 2u);  // a→c is implied by transitivity
}

TEST(MinimalCoverTest, DropsTrivialParts) {
  auto cover = MinimalCover("R", {Fd({"a"}, {"a", "b"})});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].rhs, AttributeSet{"b"});
}

TEST(MinimalCoverTest, CoverIsEquivalentToOriginal) {
  std::vector<FunctionalDependency> original = {
      Fd({"a"}, {"b", "c"}), Fd({"b", "c"}, {"d"}), Fd({"a"}, {"d"}),
      Fd({"d", "a"}, {"e"})};
  auto cover = MinimalCover("R", original);
  // Every original FD must follow from the cover and vice versa.
  for (const FunctionalDependency& fd : original) {
    EXPECT_TRUE(Implies(cover, fd.lhs, fd.rhs)) << fd.ToString();
  }
  for (const FunctionalDependency& fd : cover) {
    EXPECT_TRUE(Implies(original, fd.lhs, fd.rhs)) << fd.ToString();
  }
}

}  // namespace
}  // namespace dbre
