#include "deps/key_miner.h"

#include <random>

#include <gtest/gtest.h>

namespace dbre {
namespace {

Table MakeTable(const std::vector<std::string>& columns,
                const std::vector<std::vector<Value>>& rows) {
  RelationSchema schema("T");
  for (const std::string& column : columns) {
    EXPECT_TRUE(schema.AddAttribute(column, DataType::kInt64).ok());
  }
  Table table(std::move(schema));
  for (const auto& row : rows) table.InsertUnchecked(row);
  return table;
}

Value V(int64_t v) { return Value::Int(v); }

TEST(KeyMinerTest, FindsSingleColumnKey) {
  Table table = MakeTable({"id", "x"}, {{V(1), V(5)},
                                        {V(2), V(5)},
                                        {V(3), V(6)}});
  auto keys = MineCandidateKeys(table);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, std::vector<AttributeSet>{AttributeSet{"id"}});
}

TEST(KeyMinerTest, FindsCompositeKeyOnly) {
  // Neither a nor b unique; (a,b) is.
  Table table = MakeTable({"a", "b"}, {{V(1), V(1)},
                                       {V(1), V(2)},
                                       {V(2), V(1)},
                                       {V(2), V(2)}});
  auto keys = MineCandidateKeys(table);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, std::vector<AttributeSet>{(AttributeSet{"a", "b"})});
}

TEST(KeyMinerTest, SkipsSupersetsOfKeys) {
  Table table = MakeTable({"id", "x", "y"}, {{V(1), V(1), V(1)},
                                             {V(2), V(1), V(2)},
                                             {V(3), V(2), V(1)}});
  auto keys = MineCandidateKeys(table);
  ASSERT_TRUE(keys.ok());
  // id is a key; {x, y} is also unique and minimal.
  EXPECT_EQ(*keys, (std::vector<AttributeSet>{AttributeSet{"id"},
                                              (AttributeSet{"x", "y"})}));
  // Verify no superset like {id, x} was reported.
  for (const AttributeSet& key : *keys) {
    EXPECT_LE(key.size(), 2u);
  }
}

TEST(KeyMinerTest, RespectsMaxKeySize) {
  // Only the pair is unique, but the cap forbids exploring pairs.
  Table table = MakeTable({"a", "b"}, {{V(1), V(1)},
                                       {V(1), V(2)},
                                       {V(2), V(1)}});
  KeyMinerOptions options;
  options.max_key_size = 1;
  auto keys = MineCandidateKeys(table, options);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

TEST(KeyMinerTest, NullColumnsExcludedByDefault) {
  Table table = MakeTable({"id", "n"}, {{V(1), Value::Null()},
                                        {V(2), V(7)}});
  auto keys = MineCandidateKeys(table);
  ASSERT_TRUE(keys.ok());
  // n contains NULL → not a key candidate even though its non-NULL values
  // are unique.
  EXPECT_EQ(*keys, std::vector<AttributeSet>{AttributeSet{"id"}});

  KeyMinerOptions options;
  options.require_not_null = false;
  keys = MineCandidateKeys(table, options);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);  // n becomes a (SQL-unique) key too
}

TEST(KeyMinerTest, DuplicateRowsHaveNoKey) {
  Table table = MakeTable({"a", "b"}, {{V(1), V(1)}, {V(1), V(1)}});
  auto keys = MineCandidateKeys(table);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

TEST(KeyMinerTest, EmptyTableEveryColumnIsKey) {
  Table table = MakeTable({"a", "b"}, {});
  auto keys = MineCandidateKeys(table);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);  // vacuous uniqueness, minimal singletons
}

TEST(KeyMinerTest, StatsCountChecks) {
  Table table = MakeTable({"id", "x"}, {{V(1), V(5)}, {V(2), V(5)}});
  KeyMinerStats stats;
  auto keys = MineCandidateKeys(table, {}, &stats);
  ASSERT_TRUE(keys.ok());
  EXPECT_GT(stats.combinations_checked, 0u);
  EXPECT_EQ(stats.discovered, keys->size());
}

// Property: every reported key is unique in the data, no proper subset of
// a reported key is unique, and (within the size cap) every minimal unique
// set is reported.
class KeyMinerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyMinerPropertyTest, SoundMinimalComplete) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::vector<Value>> rows;
  size_t num_rows = 40 + rng() % 60;
  for (size_t i = 0; i < num_rows; ++i) {
    rows.push_back({V(static_cast<int64_t>(i)),  // unique id column
                    V(static_cast<int64_t>(rng() % 6)),
                    V(static_cast<int64_t>(rng() % 8))});
  }
  Table table = MakeTable({"id", "u", "v"}, rows);
  KeyMinerOptions options;
  options.max_key_size = 3;
  auto keys = MineCandidateKeys(table, options);
  ASSERT_TRUE(keys.ok());

  auto unique_in_data = [&](const AttributeSet& attrs) {
    auto count = table.DistinctCount(attrs);
    return count.ok() && *count == table.num_rows();
  };
  // id must always be found.
  EXPECT_NE(std::find(keys->begin(), keys->end(), AttributeSet{"id"}),
            keys->end());
  for (const AttributeSet& key : *keys) {
    EXPECT_TRUE(unique_in_data(key)) << key.ToString();
    for (const std::string& name : key.names()) {
      AttributeSet subset = key;
      subset.Remove(name);
      if (!subset.empty()) {
        EXPECT_FALSE(unique_in_data(subset))
            << key.ToString() << " not minimal";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyMinerPropertyTest,
                         ::testing::Range<uint64_t>(200, 210));

}  // namespace
}  // namespace dbre
