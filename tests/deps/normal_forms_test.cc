#include "deps/normal_forms.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

FunctionalDependency Fd(std::initializer_list<std::string> lhs,
                        std::initializer_list<std::string> rhs) {
  return FunctionalDependency("R", AttributeSet(lhs), AttributeSet(rhs));
}

TEST(NormalFormTest, KeyOnlyRelationIsBcnf) {
  AttributeSet all{"a", "b"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"})};
  EXPECT_EQ(ClassifyNormalForm(all, fds), NormalForm::kBCNF);
}

TEST(NormalFormTest, TransitiveDependencyIs2NF) {
  // key a; a→b, b→c: transitive → 2NF but not 3NF.
  AttributeSet all{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"b"}, {"c"})};
  EXPECT_TRUE(IsIn2NF(all, fds));
  EXPECT_FALSE(IsIn3NF(all, fds));
  EXPECT_EQ(ClassifyNormalForm(all, fds), NormalForm::k2NF);
}

TEST(NormalFormTest, PartialDependencyIs1NF) {
  // key {a,b}; a→c partial → not 2NF.
  AttributeSet all{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {Fd({"a", "b"}, {"c"}),
                                           Fd({"a"}, {"c"})};
  EXPECT_FALSE(IsIn2NF(all, fds));
  EXPECT_EQ(ClassifyNormalForm(all, fds), NormalForm::k1NF);
}

TEST(NormalFormTest, PrimeDependentKeeps3NF) {
  // 3NF-but-not-BCNF classic: key {a,b}, also c→b with c non-superkey but
  // b prime.
  AttributeSet all{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {Fd({"a", "b"}, {"c"}),
                                           Fd({"c"}, {"b"})};
  EXPECT_TRUE(IsIn3NF(all, fds));
  EXPECT_FALSE(IsInBCNF(all, fds));
  EXPECT_EQ(ClassifyNormalForm(all, fds), NormalForm::k3NF);
}

TEST(NormalFormTest, PrimeAttributesUnionOfKeys) {
  AttributeSet all{"a", "b", "c"};
  std::vector<FunctionalDependency> fds = {Fd({"a"}, {"b"}),
                                           Fd({"b"}, {"a"})};
  // keys {a,c} and {b,c} → prime = {a,b,c}.
  EXPECT_EQ(PrimeAttributes(all, fds), all);
}

TEST(NormalFormTest, NoFdsIsBcnf) {
  AttributeSet all{"a", "b"};
  EXPECT_EQ(ClassifyNormalForm(all, {}), NormalForm::kBCNF);
}

TEST(NormalFormTest, NamesAreStable) {
  EXPECT_STREQ(NormalFormName(NormalForm::k1NF), "1NF");
  EXPECT_STREQ(NormalFormName(NormalForm::k2NF), "2NF");
  EXPECT_STREQ(NormalFormName(NormalForm::k3NF), "3NF");
  EXPECT_STREQ(NormalFormName(NormalForm::kBCNF), "BCNF");
}

// E10: the paper's §5 annotations. FDs are the design-level dependencies of
// each relation (key dependencies included).
TEST(NormalFormTest, PaperExampleAnnotations) {
  // Person(id, name, street, number, zip-code, state): key id,
  // zip-code → state. The paper says 2NF.
  {
    AttributeSet all{"id", "name", "street", "number", "zip-code", "state"};
    std::vector<FunctionalDependency> fds = {
        FunctionalDependency("Person", AttributeSet{"id"},
                             all.Minus(AttributeSet{"id"})),
        FunctionalDependency("Person", AttributeSet{"zip-code"},
                             AttributeSet{"state"})};
    EXPECT_EQ(ClassifyNormalForm(all, fds), NormalForm::k2NF);
  }
  // HEmployee(no, date, salary): key {no, date} → salary. Paper: 3NF (it
  // is in fact BCNF, which implies 3NF).
  {
    AttributeSet all{"no", "date", "salary"};
    std::vector<FunctionalDependency> fds = {FunctionalDependency(
        "HEmployee", AttributeSet{"date", "no"}, AttributeSet{"salary"})};
    EXPECT_TRUE(IsIn3NF(all, fds));
  }
  // Department(dep, emp, skill, location, proj): key dep; emp → skill,
  // proj. Paper: 2NF.
  {
    AttributeSet all{"dep", "emp", "skill", "location", "proj"};
    std::vector<FunctionalDependency> fds = {
        FunctionalDependency("Department", AttributeSet{"dep"},
                             all.Minus(AttributeSet{"dep"})),
        FunctionalDependency("Department", AttributeSet{"emp"},
                             AttributeSet{"proj", "skill"})};
    EXPECT_EQ(ClassifyNormalForm(all, fds), NormalForm::k2NF);
  }
  // Assignment(emp, dep, proj, date, project-name): key {emp, dep, proj};
  // proj → project-name (partial). Paper: 1NF.
  {
    AttributeSet all{"emp", "dep", "proj", "date", "project-name"};
    std::vector<FunctionalDependency> fds = {
        FunctionalDependency("Assignment", AttributeSet{"dep", "emp", "proj"},
                             AttributeSet{"date", "project-name"}),
        FunctionalDependency("Assignment", AttributeSet{"proj"},
                             AttributeSet{"project-name"})};
    EXPECT_EQ(ClassifyNormalForm(all, fds), NormalForm::k1NF);
  }
}

}  // namespace
}  // namespace dbre
