#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace dbre {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("no relation Foo");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no relation Foo");
  EXPECT_EQ(status.ToString(), "not_found: no relation Foo");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InvalidArgumentError("a"));
}

TEST(StatusTest, StreamsToOstream) {
  std::ostringstream os;
  os << ParseError("bad token");
  EXPECT_EQ(os.str(), "parse_error: bad token");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperatesOnValue) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

namespace helpers {

Result<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Status UsesReturnIfError(int x) {
  DBRE_RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::Ok();
}

Result<int> UsesAssignOrReturn(int x) {
  DBRE_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value + 1;
}

}  // namespace helpers

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::UsesReturnIfError(1).ok());
  EXPECT_EQ(helpers::UsesReturnIfError(-1).code(),
            StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = helpers::UsesAssignOrReturn(2);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 3);
  EXPECT_EQ(helpers::UsesAssignOrReturn(0).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dbre
