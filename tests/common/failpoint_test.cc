#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dbre {
namespace {

// Failpoints are process-global; every test starts and ends clean so
// ordering cannot leak armed points between tests.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().DisarmAll(); }
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedChecksAreNoops) {
  FailpointHit hit = Failpoints::Check("store.nonexistent");
  EXPECT_EQ(hit.action, FailpointHit::Action::kNone);
  EXPECT_TRUE(FailpointError("store.nonexistent").ok());
  EXPECT_TRUE(Failpoints::Instance().List().empty());
}

TEST_F(FailpointTest, ErrorFiresEveryHit) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error").ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kError);
  }
  Status status = FailpointError("p");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("failpoint p"), std::string::npos);
}

TEST_F(FailpointTest, ArmedPointDoesNotAffectOtherPoints) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error").ok());
  EXPECT_EQ(Failpoints::Check("q").action, FailpointHit::Action::kNone);
}

TEST_F(FailpointTest, FirstNModifier) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error*2").ok());
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kError);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kError);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
}

TEST_F(FailpointTest, EveryNthModifier) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error@3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 7; ++i) {
    fired.push_back(Failpoints::Check("p").action ==
                    FailpointHit::Action::kError);
  }
  EXPECT_EQ(fired, std::vector<bool>(
                       {false, false, true, false, false, true, false}));
}

TEST_F(FailpointTest, ExactNthModifier) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error#3").ok());
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kError);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicUnderSeed) {
  auto draw = [](uint64_t seed) {
    Failpoints::Instance().DisarmAll();
    Failpoints::Instance().SetSeed(seed);
    EXPECT_TRUE(Failpoints::Instance().Arm("p", "error%30").ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(Failpoints::Check("p").action ==
                      FailpointHit::Action::kError);
    }
    return fired;
  };
  std::vector<bool> first = draw(7);
  std::vector<bool> again = draw(7);
  std::vector<bool> other = draw(8);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);  // 2^-64-ish flake risk; fine
  // P=0 never fires, P=100 always fires.
  Failpoints::Instance().DisarmAll();
  ASSERT_TRUE(Failpoints::Instance().Arm("never", "error%0").ok());
  ASSERT_TRUE(Failpoints::Instance().Arm("always", "error%100").ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(Failpoints::Check("never").action, FailpointHit::Action::kNone);
    EXPECT_EQ(Failpoints::Check("always").action,
              FailpointHit::Action::kError);
  }
}

TEST_F(FailpointTest, TornCarriesByteBudget) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "torn(7)#1").ok());
  FailpointHit hit = Failpoints::Check("p");
  EXPECT_EQ(hit.action, FailpointHit::Action::kTorn);
  EXPECT_EQ(hit.torn_bytes, 7u);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
}

TEST_F(FailpointTest, DelayProceedsAfterSleeping) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "delay(1)").ok());
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
}

TEST_F(FailpointTest, OffCountsHitsButNeverFires) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "off").ok());
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
  auto list = Failpoints::Instance().List();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].point, "p");
  EXPECT_EQ(list[0].hits, 2u);
  EXPECT_EQ(list[0].triggers, 0u);
}

TEST_F(FailpointTest, ListReportsHitsAndTriggers) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error#2").ok());
  Failpoints::Check("p");
  Failpoints::Check("p");
  Failpoints::Check("p");
  auto list = Failpoints::Instance().List();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].spec, "error#2");
  EXPECT_EQ(list[0].hits, 3u);
  EXPECT_EQ(list[0].triggers, 1u);
}

TEST_F(FailpointTest, ArmSpecsParsesSemicolonList) {
  Status armed = Failpoints::Instance().ArmSpecs(
      "journal.fsync=error*1; snapshot.write = torn(3)#2 ;;oracle.answer=off");
  ASSERT_TRUE(armed.ok()) << armed.ToString();
  auto list = Failpoints::Instance().List();
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(Failpoints::Check("journal.fsync").action,
            FailpointHit::Action::kError);
  EXPECT_EQ(Failpoints::Check("journal.fsync").action,
            FailpointHit::Action::kNone);
}

TEST_F(FailpointTest, RearmingResetsCounters) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error*1").ok());
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kError);
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error*1").ok());
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kError);
}

TEST_F(FailpointTest, DisarmRemovesOnePoint) {
  ASSERT_TRUE(Failpoints::Instance().Arm("p", "error").ok());
  ASSERT_TRUE(Failpoints::Instance().Arm("q", "error").ok());
  EXPECT_TRUE(Failpoints::Instance().Disarm("p"));
  EXPECT_FALSE(Failpoints::Instance().Disarm("p"));
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
  EXPECT_EQ(Failpoints::Check("q").action, FailpointHit::Action::kError);
}

TEST_F(FailpointTest, BadSpecsAreRejected) {
  Failpoints& fps = Failpoints::Instance();
  EXPECT_FALSE(fps.Arm("p", "").ok());
  EXPECT_FALSE(fps.Arm("p", "explode").ok());
  EXPECT_FALSE(fps.Arm("p", "error*x").ok());
  EXPECT_FALSE(fps.Arm("p", "delay(").ok());
  EXPECT_FALSE(fps.Arm("p", "torn(abc)").ok());
  EXPECT_FALSE(fps.Arm("p", "error%101").ok());
  EXPECT_FALSE(fps.ArmSpecs("no-equals-sign").ok());
  // Nothing half-armed after the failures.
  EXPECT_EQ(Failpoints::Check("p").action, FailpointHit::Action::kNone);
}

TEST_F(FailpointTest, ArmSpecsIsAllOrNothing) {
  // A bad entry rejects the whole list: the valid entries ahead of it
  // must not stay armed (DBRE_FAILPOINTS logs "ignored" on error, and
  // the wire command promises atomicity).
  Failpoints& fps = Failpoints::Instance();
  EXPECT_FALSE(fps.ArmSpecs("good.point=error;bad.point=explode").ok());
  EXPECT_TRUE(fps.List().empty());
  EXPECT_EQ(Failpoints::Check("good.point").action,
            FailpointHit::Action::kNone);
}

}  // namespace
}  // namespace dbre
