#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace dbre {
namespace {

RetryPolicy FastPolicy(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.initial_backoff_ms = 0;  // no real sleeping in unit tests
  policy.max_backoff_ms = 0;
  return policy;
}

TEST(RetryTest, SucceedsFirstTry) {
  int calls = 0;
  Status status = RetryWithBackoff(FastPolicy(4), [&] {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, RetriesTransientFailuresUntilSuccess) {
  int calls = 0;
  Status status = RetryWithBackoff(FastPolicy(4), [&]() -> Status {
    if (++calls < 3) return IoError("flaky disk");
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  int calls = 0;
  Status status = RetryWithBackoff(FastPolicy(3), [&] {
    ++calls;
    return IoError("disk is gone");
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, NonRetryableErrorReturnsImmediately) {
  int calls = 0;
  Status status = RetryWithBackoff(FastPolicy(4), [&] {
    ++calls;
    return FailedPreconditionError("not open");
  });
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, OnRetrySeesEachFailedAttempt) {
  std::vector<int> attempts;
  RetryPolicy policy = FastPolicy(3);
  policy.on_retry = [&](int attempt, const Status& status) {
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    attempts.push_back(attempt);
  };
  RetryWithBackoff(policy, [] { return IoError("still broken"); });
  // The final attempt fails without a retry after it.
  EXPECT_EQ(attempts, std::vector<int>({1, 2}));
}

TEST(RetryTest, ZeroOrNegativeAttemptsStillRunOnce) {
  int calls = 0;
  Status status = RetryWithBackoff(FastPolicy(0), [&] {
    ++calls;
    return IoError("nope");
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffIsBoundedWallClock) {
  // 1ms initial, capped at 2ms, 4 attempts → at most 1+2+2 = 5ms of sleep.
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  auto start = std::chrono::steady_clock::now();
  RetryWithBackoff(policy, [] { return IoError("slow fail"); });
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 3);
  EXPECT_LT(elapsed.count(), 1000);  // generous for loaded CI machines
}

}  // namespace
}  // namespace dbre
