#include "common/string_util.h"

#include <gtest/gtest.h>

namespace dbre {
namespace {

TEST(SplitTest, SplitsOnDelimiter) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyPiece) {
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
}

TEST(SplitAndTrimTest, TrimsAndDropsEmpty) {
  EXPECT_EQ(SplitAndTrim(" a , , b ", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  x y  "), "x y");
  EXPECT_EQ(TrimWhitespace("\t\n"), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(CaseTest, LowerUpper) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("EXEC SQL", "exec sql"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "ab"));
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("report.sql", ".sql"));
  EXPECT_FALSE(EndsWith("sql", ".sql"));
}

}  // namespace
}  // namespace dbre
