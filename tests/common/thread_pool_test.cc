#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace dbre {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {0u, 1u, 2u, 7u}) {
    const size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(n, threads,
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelForTest, IndexedSlotsMakeResultsDeterministic) {
  const size_t n = 64;
  std::vector<int> first(n), second(n);
  ParallelFor(n, 4, [&first](size_t i) { first[i] = static_cast<int>(i * i); });
  ParallelFor(n, 3,
              [&second](size_t i) { second[i] = static_cast<int>(i * i); });
  EXPECT_EQ(first, second);
}

TEST(ParallelForTest, HandlesEmptyAndSingle) {
  int calls = 0;
  ParallelFor(0, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace dbre
