#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace dbre {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {0u, 1u, 2u, 7u}) {
    const size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(n, threads,
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelForTest, IndexedSlotsMakeResultsDeterministic) {
  const size_t n = 64;
  std::vector<int> first(n), second(n);
  ParallelFor(n, 4, [&first](size_t i) { first[i] = static_cast<int>(i * i); });
  ParallelFor(n, 3,
              [&second](size_t i) { second[i] = static_cast<int>(i * i); });
  EXPECT_EQ(first, second);
}

TEST(ParallelForTest, HandlesEmptyAndSingle) {
  int calls = 0;
  ParallelFor(0, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, RethrowsFirstBodyException) {
  const size_t n = 256;
  std::atomic<int> calls{0};
  try {
    ParallelFor(n, 4, [&calls](size_t i) {
      calls.fetch_add(1);
      if (i == 17) throw std::runtime_error("body failed at 17");
    });
    FAIL() << "ParallelFor swallowed the exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "body failed at 17");
  }
  // The throwing iteration aborts the sweep early: not every index ran.
  EXPECT_LE(calls.load(), static_cast<int>(n));
  EXPECT_GE(calls.load(), 1);
}

TEST(ParallelForTest, ExceptionOnSingleThreadPropagates) {
  EXPECT_THROW(
      ParallelFor(8, 1, [](size_t) { throw std::logic_error("inline"); }),
      std::logic_error);
}

TEST(ParallelForTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(200);
  for (int round = 0; round < 4; ++round) {
    ParallelFor(&pool, hits.size(), 0,
                [&hits](size_t i) { hits[i].fetch_add(1); });
  }
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 4) << "index " << i;
  }
}

TEST(ParallelForTest, PoolSurvivesThrowingSweep) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(&pool, 64, 0,
                           [](size_t i) {
                             if (i == 3) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The same pool still runs a clean sweep afterwards.
  std::atomic<int> calls{0};
  ParallelFor(&pool, 64, 0, [&calls](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ParallelForTest, SharedPoolIsStable) {
  ThreadPool& first = ThreadPool::Shared();
  ThreadPool& second = ThreadPool::Shared();
  EXPECT_EQ(&first, &second);
  EXPECT_GE(first.num_threads(), 1u);
}

TEST(ParallelForTest, NestedCallsComplete) {
  // The caller participates in the sweep, so inner ParallelFor calls make
  // progress even when every shared-pool worker is busy with outer bodies.
  const size_t outer = 8;
  const size_t inner = 32;
  std::vector<std::atomic<int>> hits(outer * inner);
  ParallelFor(outer, 4, [&hits, inner](size_t o) {
    ParallelFor(inner, 4, [&hits, inner, o](size_t i) {
      hits[o * inner + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

}  // namespace
}  // namespace dbre
