// End-to-end coverage of multi-attribute keys, joins and INDs: composite-
// key entities flow from the generator through the SQL front end, the
// elicitation algorithms and Restruct/Translate.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "relational/algebra.h"
#include "sql/scanner.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace dbre::workload {
namespace {

SyntheticSpec CompositeSpec(uint64_t seed) {
  SyntheticSpec spec;
  spec.num_entities = 5;
  spec.num_composite_keys = 3;
  spec.num_merged = 1;
  spec.rows_per_entity = 250;
  spec.seed = seed;
  return spec;
}

TEST(CompositeKeyTest, SchemasCarryCompositeKeys) {
  auto generated = GenerateSynthetic(CompositeSpec(1));
  ASSERT_TRUE(generated.ok()) << generated.status();
  const RelationSchema& e0 =
      (**generated->database.GetTable("E0")).schema();
  EXPECT_TRUE(e0.IsKey(AttributeSet{"e0_hi", "e0_lo"}));
  // Keys are genuinely composite: neither half is unique on its own.
  const Table& t0 = **generated->database.GetTable("E0");
  EXPECT_LT(*t0.DistinctCount(AttributeSet{"e0_hi"}), t0.num_rows());
  EXPECT_LT(*t0.DistinctCount(AttributeSet{"e0_lo"}), t0.num_rows());
}

TEST(CompositeKeyTest, GroundTruthHasMultiAttributeInds) {
  auto generated = GenerateSynthetic(CompositeSpec(2));
  ASSERT_TRUE(generated.ok());
  bool found_binary = false;
  for (const InclusionDependency& ind : generated->true_inds) {
    if (ind.arity() == 2) {
      found_binary = true;
      EXPECT_TRUE(*Satisfies(generated->database, ind)) << ind.ToString();
    }
  }
  EXPECT_TRUE(found_binary);
}

TEST(CompositeKeyTest, ProgramSourcesRoundTripMultiAttributeJoins) {
  auto generated = GenerateSynthetic(CompositeSpec(3));
  ASSERT_TRUE(generated.ok());
  sql::ExtractionOptions options;
  options.catalog = &generated->database;
  auto joins = sql::BuildQueryJoinSetFromSources(generated->program_sources,
                                                 options);
  ASSERT_TRUE(joins.ok()) << joins.status();
  EXPECT_EQ(*joins, generated->queries);
  bool found_binary = false;
  for (const EquiJoin& join : *joins) {
    if (join.arity() == 2) found_binary = true;
  }
  EXPECT_TRUE(found_binary);
}

class CompositeRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompositeRecoveryTest, PipelineRecoversCompositeLinks) {
  auto generated = GenerateSynthetic(CompositeSpec(GetParam()));
  ASSERT_TRUE(generated.ok());
  ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  ThresholdOracle oracle(options);
  auto report =
      RunPipeline(generated->database, generated->queries, &oracle);
  ASSERT_TRUE(report.ok()) << report.status();
  PrecisionRecall pr = CompareInds(report->ind.inds, generated->true_inds);
  EXPECT_DOUBLE_EQ(pr.Recall(), 1.0) << pr.ToString();
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0) << pr.ToString();
  // RICs (composite FKs onto composite keys) hold in the restructured
  // extension.
  for (const InclusionDependency& ric : report->restruct.rics) {
    EXPECT_TRUE(*Satisfies(report->restruct.database, ric))
        << ric.ToString();
  }
  EXPECT_TRUE(report->eer.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeRecoveryTest,
                         ::testing::Values(11, 12, 13, 14));

TEST(CompositeKeyTest, CompositeHiddenObjectsRestructure) {
  // Force composite FK columns through the hidden-object path: the oracle
  // accepts every identifier, so Restruct materializes relations keyed by
  // two attributes.
  auto generated = GenerateSynthetic(CompositeSpec(21));
  ASSERT_TRUE(generated.ok());
  ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  ThresholdOracle oracle(options);
  auto report =
      RunPipeline(generated->database, generated->queries, &oracle);
  ASSERT_TRUE(report.ok());
  bool found_composite_hidden = false;
  for (const QualifiedAttributes& hidden : report->rhs.hidden) {
    if (hidden.attributes.size() == 2) found_composite_hidden = true;
  }
  EXPECT_TRUE(found_composite_hidden);
  // Its materialized relation has the 2-attribute key.
  bool found_composite_new_relation = false;
  for (const auto& [name, provenance] : report->restruct.provenance) {
    const Table& table = **report->restruct.database.GetTable(name);
    auto key = table.schema().PrimaryKey();
    if (key.has_value() && key->size() == 2) {
      found_composite_new_relation = true;
    }
  }
  EXPECT_TRUE(found_composite_new_relation);
}

TEST(CompositeKeyTest, ValidatesSpec) {
  SyntheticSpec spec;
  spec.num_entities = 3;
  spec.num_composite_keys = 4;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
}

}  // namespace
}  // namespace dbre::workload
