// The library scenario end to end: forced inclusions, enforced FDs,
// cyclic INDs and discriminators, all in one coherent session.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "deps/ind_closure.h"
#include "sql/scanner.h"
#include "sql/selection_analysis.h"
#include "workload/library_example.h"

namespace dbre::workload {
namespace {

class LibraryExampleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto database = BuildLibraryDatabase();
    ASSERT_TRUE(database.ok()) << database.status();
    database_ = new Database(std::move(database).value());
    oracle_ = LibraryOracle().release();
    auto report =
        RunPipeline(*database_, LibraryJoinSet(), oracle_);
    ASSERT_TRUE(report.ok()) << report.status();
    report_ = new PipelineReport(std::move(report).value());
  }
  static void TearDownTestSuite() {
    delete report_;
    delete oracle_;
    delete database_;
    report_ = nullptr;
    oracle_ = nullptr;
    database_ = nullptr;
  }

  static Database* database_;
  static ScriptedOracle* oracle_;
  static PipelineReport* report_;
};

Database* LibraryExampleTest::database_ = nullptr;
ScriptedOracle* LibraryExampleTest::oracle_ = nullptr;
PipelineReport* LibraryExampleTest::report_ = nullptr;

TEST_F(LibraryExampleTest, ProgramsYieldTheJoinSet) {
  sql::ExtractionOptions options;
  options.catalog = database_;
  auto joins =
      sql::BuildQueryJoinSetFromSources(LibraryProgramSources(), options);
  ASSERT_TRUE(joins.ok()) << joins.status();
  EXPECT_EQ(*joins, LibraryJoinSet());
}

TEST_F(LibraryExampleTest, DirtyForeignKeyIsForcedNei) {
  bool found = false;
  for (const JoinOutcome& outcome : report_->ind.outcomes) {
    if (outcome.join.left_relation == "Loans" &&
        outcome.join.right_relation == "Members") {
      found = true;
      EXPECT_EQ(outcome.kind, JoinOutcomeKind::kNeiForced);
      EXPECT_EQ(outcome.counts.n_left, 155u);   // 150 members + 5 orphans
      EXPECT_EQ(outcome.counts.n_right, 200u);
      EXPECT_EQ(outcome.counts.n_join, 150u);
    }
  }
  EXPECT_TRUE(found);
  // The forced IND is in the set although the extension refutes it.
  InclusionDependency forced =
      InclusionDependency::Single("Loans", "member", "Members", "id");
  EXPECT_NE(std::find(report_->ind.inds.begin(), report_->ind.inds.end(),
                      forced),
            report_->ind.inds.end());
  EXPECT_FALSE(*Satisfies(*database_, forced));
}

TEST_F(LibraryExampleTest, EqualDomainsGiveCyclicInds) {
  auto cycles = FindCyclicSides(report_->ind.inds);
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].sides.size(), 2u);
  EXPECT_EQ(cycles[0].sides[0].first, "Cardholders");
  EXPECT_EQ(cycles[0].sides[1].first, "Members");
}

TEST_F(LibraryExampleTest, CorruptedFdIsEnforced) {
  ASSERT_EQ(report_->rhs.fds.size(), 1u);
  EXPECT_EQ(report_->rhs.fds[0].ToString(),
            "Books: {branch} -> {branch_city}");
  // The extension genuinely violates it.
  const Table& books = **database_->GetTable("Books");
  EXPECT_FALSE(*FunctionalDependencyHolds(books, AttributeSet{"branch"},
                                          AttributeSet{"branch_city"}));
}

TEST_F(LibraryExampleTest, RestructCreatesBranchFirstWins) {
  ASSERT_TRUE(report_->restruct.database.HasRelation("Branch"));
  const Table& branch = **report_->restruct.database.GetTable("Branch");
  EXPECT_EQ(branch.num_rows(), 8u);  // B0..B7
  // First-wins conflict resolution kept the clean city for B2, not the
  // mispunched value of I42.
  auto city_index = branch.schema().AttributeIndex("branch_city");
  auto branch_index = branch.schema().AttributeIndex("branch");
  ASSERT_TRUE(city_index.ok() && branch_index.ok());
  for (const ValueVector& row : branch.rows()) {
    EXPECT_NE(row[*city_index].as_text(), "mispunched")
        << row[*branch_index].ToString();
  }
  // Books lost branch_city, kept branch.
  const RelationSchema& books =
      (**report_->restruct.database.GetTable("Books")).schema();
  EXPECT_FALSE(books.HasAttribute("branch_city"));
  EXPECT_TRUE(books.HasAttribute("branch"));
}

TEST_F(LibraryExampleTest, RicSetAndExtensionFidelity) {
  std::vector<std::string> rics;
  for (const InclusionDependency& ric : report_->restruct.rics) {
    rics.push_back(ric.ToString());
  }
  std::sort(rics.begin(), rics.end());
  EXPECT_EQ(rics, (std::vector<std::string>{
                      "Books[branch] << Branch[branch]",
                      "Cardholders[id] << Members[id]",
                      "Loans[isbn] << Books[isbn]",
                      "Loans[member] << Members[id]",
                      "Members[id] << Cardholders[id]"}));
  // All RICs hold in the restructured extension EXCEPT the forced one —
  // exactly the paper's warning that after expert overrides "the obtained
  // data structure no longer matches the database extension".
  for (const InclusionDependency& ric : report_->restruct.rics) {
    bool holds = *Satisfies(report_->restruct.database, ric);
    if (ric.lhs_relation == "Loans" && ric.lhs_attributes[0] == "member") {
      EXPECT_FALSE(holds);
    } else {
      EXPECT_TRUE(holds) << ric.ToString();
    }
  }
}

TEST_F(LibraryExampleTest, EerHasCycleAndBinaryLinks) {
  // Mutual is-a between Members and Cardholders.
  ASSERT_EQ(report_->eer.isa_links().size(), 2u);
  // Loans participates in two binary relationships; Books in one (to
  // Branch).
  size_t loans_links = 0, books_links = 0;
  for (const eer::RelationshipType& relationship :
       report_->eer.relationships()) {
    for (const eer::Role& role : relationship.roles) {
      if (role.entity == "Loans") ++loans_links;
      if (role.entity == "Books" &&
          relationship.roles[1].entity == "Branch") {
        ++books_links;
      }
    }
  }
  EXPECT_EQ(loans_links, 2u);
  EXPECT_EQ(books_links, 1u);
}

TEST_F(LibraryExampleTest, MergeOptionCollapsesTheCycle) {
  PipelineOptions options;
  options.translate.merge_isa_cycles = true;
  auto report = RunPipeline(*database_, LibraryJoinSet(), oracle_, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->eer.isa_links().empty());
  EXPECT_FALSE(report->eer.HasEntity("Members"));
  ASSERT_TRUE(report->eer.HasEntity("Cardholders"));
  const eer::EntityType& merged = **report->eer.GetEntity("Cardholders");
  EXPECT_TRUE(merged.attributes.Contains("name"));
  EXPECT_TRUE(merged.attributes.Contains("card_no"));
  EXPECT_TRUE(report->eer.Validate().ok());
}

TEST_F(LibraryExampleTest, StatusIsADiscriminatorCandidate) {
  sql::SelectionAnalysisOptions options;
  options.catalog = database_;
  auto candidates =
      sql::AnalyzeSelections(LibraryProgramSources(), options);
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  ASSERT_EQ(candidates->size(), 1u);
  const sql::DiscriminatorCandidate& status = (*candidates)[0];
  EXPECT_EQ(status.relation, "Members");
  EXPECT_EQ(status.attribute, "status");
  EXPECT_EQ(status.constants,
            (std::vector<std::string>{"active", "barred"}));
  EXPECT_DOUBLE_EQ(status.value_coverage, 1.0);
}

}  // namespace
}  // namespace dbre::workload
