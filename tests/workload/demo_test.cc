// Keeps the shipped demo/ dataset working: the exact inputs the README
// points dbre_cli at must load, scan and reverse-engineer cleanly.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "relational/csv.h"
#include "sql/ddl.h"
#include "sql/scanner.h"

#ifndef DBRE_SOURCE_DIR
#define DBRE_SOURCE_DIR "."
#endif

namespace dbre {
namespace {

std::string DemoPath(const std::string& relative) {
  return std::string(DBRE_SOURCE_DIR) + "/demo/" + relative;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(DemoDatasetTest, EndToEnd) {
  Database db;
  auto ddl = sql::ExecuteDdlScript(ReadFileOrDie(DemoPath("schema.sql")),
                                   &db);
  ASSERT_TRUE(ddl.ok()) << ddl.status();
  EXPECT_EQ(ddl->tables_created, 3u);

  for (const std::string& relation : db.RelationNames()) {
    auto table = db.GetMutableTable(relation);
    auto loaded =
        LoadCsvFile(DemoPath("data/" + relation + ".csv"), *table);
    ASSERT_TRUE(loaded.ok()) << relation << ": " << loaded.status();
    EXPECT_GT(*loaded, 0u) << relation;
  }
  EXPECT_TRUE(db.VerifyDeclaredConstraints().ok());

  sql::ExtractionOptions extraction;
  extraction.catalog = &db;
  auto joins = sql::BuildQueryJoinSet(
      {DemoPath("programs/orders.pc"), DemoPath("programs/logistics.pc"),
       DemoPath("programs/reporting.pc")},
      extraction);
  ASSERT_TRUE(joins.ok()) << joins.status();
  EXPECT_EQ(joins->size(), 2u);  // reporting.pc only selects, no joins

  ThresholdOracle::Options options;
  options.accept_hidden_objects = true;
  ThresholdOracle oracle(options);
  auto report = RunPipeline(db, *joins, &oracle);
  ASSERT_TRUE(report.ok()) << report.status();

  // The demo's planted FD.
  bool found = false;
  for (const FunctionalDependency& fd : report->rhs.fds) {
    if (fd.ToString() == "Orders: {prod} -> {prod_name}") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(report->restruct.rics.empty());
  EXPECT_TRUE(report->eer.Validate().ok());
}

}  // namespace
}  // namespace dbre
