#include "workload/metrics.h"

#include <gtest/gtest.h>

namespace dbre::workload {
namespace {

TEST(MetricsTest, PerfectRecovery) {
  std::vector<InclusionDependency> truth = {
      InclusionDependency::Single("A", "x", "B", "y")};
  PrecisionRecall pr = CompareInds(truth, truth);
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
}

TEST(MetricsTest, EmptySetsArePerfect) {
  PrecisionRecall pr = CompareInds({}, {});
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.Recall(), 1.0);
}

TEST(MetricsTest, FalsePositivesHurtPrecision) {
  std::vector<InclusionDependency> truth = {
      InclusionDependency::Single("A", "x", "B", "y")};
  std::vector<InclusionDependency> recovered = {
      InclusionDependency::Single("A", "x", "B", "y"),
      InclusionDependency::Single("C", "z", "B", "y")};
  PrecisionRecall pr = CompareInds(recovered, truth);
  EXPECT_DOUBLE_EQ(pr.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(pr.Recall(), 1.0);
  EXPECT_EQ(pr.false_positives, 1u);
}

TEST(MetricsTest, FalseNegativesHurtRecall) {
  std::vector<InclusionDependency> truth = {
      InclusionDependency::Single("A", "x", "B", "y"),
      InclusionDependency::Single("C", "z", "B", "y")};
  std::vector<InclusionDependency> recovered = {
      InclusionDependency::Single("A", "x", "B", "y")};
  PrecisionRecall pr = CompareInds(recovered, truth);
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.Recall(), 0.5);
}

TEST(MetricsTest, FdComparisonSplitsRightHandSides) {
  // Recovered a → bc vs truth {a → b, a → c}: full credit.
  std::vector<FunctionalDependency> recovered = {FunctionalDependency(
      "R", AttributeSet{"a"}, AttributeSet{"b", "c"})};
  std::vector<FunctionalDependency> truth = {
      FunctionalDependency("R", AttributeSet{"a"}, AttributeSet{"b"}),
      FunctionalDependency("R", AttributeSet{"a"}, AttributeSet{"c"})};
  PrecisionRecall pr = CompareFds(recovered, truth);
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.Recall(), 1.0);
}

TEST(MetricsTest, PartialFdRecovery) {
  std::vector<FunctionalDependency> recovered = {
      FunctionalDependency("R", AttributeSet{"a"}, AttributeSet{"b"})};
  std::vector<FunctionalDependency> truth = {FunctionalDependency(
      "R", AttributeSet{"a"}, AttributeSet{"b", "c"})};
  PrecisionRecall pr = CompareFds(recovered, truth);
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.Recall(), 0.5);
}

TEST(MetricsTest, QualifiedComparison) {
  std::vector<QualifiedAttributes> truth = {
      {"R", AttributeSet{"a"}}, {"S", AttributeSet{"b"}}};
  std::vector<QualifiedAttributes> recovered = {{"R", AttributeSet{"a"}}};
  PrecisionRecall pr = CompareQualified(recovered, truth);
  EXPECT_EQ(pr.true_positives, 1u);
  EXPECT_EQ(pr.false_negatives, 1u);
}

TEST(MetricsTest, F1IsZeroWhenNothingRight) {
  std::vector<QualifiedAttributes> truth = {{"R", AttributeSet{"a"}}};
  std::vector<QualifiedAttributes> recovered = {{"S", AttributeSet{"b"}}};
  PrecisionRecall pr = CompareQualified(recovered, truth);
  EXPECT_DOUBLE_EQ(pr.F1(), 0.0);
}

TEST(MetricsTest, ToStringMentionsCounts) {
  PrecisionRecall pr;
  pr.true_positives = 3;
  pr.false_positives = 1;
  std::string text = pr.ToString();
  EXPECT_NE(text.find("tp=3"), std::string::npos);
  EXPECT_NE(text.find("fp=1"), std::string::npos);
}

}  // namespace
}  // namespace dbre::workload
