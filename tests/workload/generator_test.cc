#include "workload/generator.h"

#include <gtest/gtest.h>

#include "deps/ind.h"
#include "relational/algebra.h"
#include "sql/scanner.h"

namespace dbre::workload {
namespace {

TEST(GeneratorTest, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.num_entities = 1;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
  spec.num_entities = 3;
  spec.rows_per_entity = 0;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  SyntheticSpec spec;
  spec.seed = 7;
  auto a = GenerateSynthetic(spec);
  auto b = GenerateSynthetic(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->queries, b->queries);
  EXPECT_EQ(a->true_inds, b->true_inds);
  ASSERT_EQ(a->database.RelationNames(), b->database.RelationNames());
  for (const std::string& name : a->database.RelationNames()) {
    EXPECT_EQ((**a->database.GetTable(name)).rows(),
              (**b->database.GetTable(name)).rows());
  }
}

TEST(GeneratorTest, StructureMatchesSpec) {
  SyntheticSpec spec;
  spec.num_entities = 6;
  spec.num_merged = 3;
  spec.rows_per_entity = 100;
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok()) << generated.status();
  EXPECT_EQ(generated->database.NumRelations(), 6u);
  // Links: 5 FK links + 3 merged links.
  EXPECT_EQ(generated->true_inds.size(), 8u);
  EXPECT_EQ(generated->true_fds.size(), 3u);
  EXPECT_EQ(generated->true_identifiers.size(), 6u);
  for (const std::string& name : generated->database.RelationNames()) {
    EXPECT_EQ((**generated->database.GetTable(name)).num_rows(), 100u);
  }
}

TEST(GeneratorTest, CleanDataSatisfiesGroundTruth) {
  SyntheticSpec spec;
  spec.num_entities = 5;
  spec.num_merged = 2;
  spec.rows_per_entity = 200;
  spec.orphan_rate = 0.0;
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok());
  for (const InclusionDependency& ind : generated->true_inds) {
    EXPECT_TRUE(*Satisfies(generated->database, ind)) << ind.ToString();
  }
  for (const FunctionalDependency& fd : generated->true_fds) {
    const Table& table = **generated->database.GetTable(fd.relation);
    EXPECT_TRUE(*FunctionalDependencyHolds(table, fd.lhs, fd.rhs))
        << fd.ToString();
  }
  EXPECT_TRUE(generated->database.VerifyDeclaredConstraints().ok());
}

TEST(GeneratorTest, OrphansBreakInclusions) {
  SyntheticSpec spec;
  spec.num_entities = 4;
  spec.num_merged = 1;
  spec.rows_per_entity = 300;
  spec.orphan_rate = 0.2;
  spec.seed = 11;
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok());
  size_t broken = 0;
  for (const InclusionDependency& ind : generated->true_inds) {
    if (!*Satisfies(generated->database, ind)) ++broken;
  }
  EXPECT_GT(broken, 0u);
}

TEST(GeneratorTest, QueryCoverageSubsamples) {
  SyntheticSpec spec;
  spec.num_entities = 8;
  spec.num_merged = 4;
  spec.rows_per_entity = 50;
  spec.query_coverage = 0.0;
  auto none = GenerateSynthetic(spec);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->queries.empty());
  spec.query_coverage = 1.0;
  auto all = GenerateSynthetic(spec);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->queries.size(), all->true_inds.size());
}

TEST(GeneratorTest, ProgramSourcesRoundTripThroughFrontEnd) {
  SyntheticSpec spec;
  spec.num_entities = 5;
  spec.num_merged = 2;
  spec.rows_per_entity = 50;
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok());
  ASSERT_FALSE(generated->program_sources.empty());
  sql::ExtractionOptions options;
  options.catalog = &generated->database;
  auto joins = sql::BuildQueryJoinSetFromSources(generated->program_sources,
                                                 options);
  ASSERT_TRUE(joins.ok()) << joins.status();
  EXPECT_EQ(*joins, generated->queries);
}

}  // namespace
}  // namespace dbre::workload
