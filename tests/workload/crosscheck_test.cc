// Cross-layer consistency: the algebra primitives the algorithms use must
// agree with literal SQL evaluation (the paper defines ‖·‖ *as* a SQL
// query), on both the paper database and random synthetic ones.
#include <gtest/gtest.h>

#include "relational/algebra.h"
#include "sql/executor.h"
#include "workload/generator.h"
#include "workload/paper_example.h"

namespace dbre::workload {
namespace {

TEST(CrosscheckTest, PaperValuationsViaSql) {
  auto db = BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  // ‖HEmployee[no]‖, ‖Person[id]‖ through SQL — the §6.1 numbers.
  EXPECT_EQ(*sql::CountDistinct(*db, "HEmployee", {"no"}), 1550u);
  EXPECT_EQ(*sql::CountDistinct(*db, "Person", {"id"}), 2200u);
  EXPECT_EQ(*sql::CountDistinct(*db, "Assignment", {"dep"}), 300u);
  EXPECT_EQ(*sql::CountDistinct(*db, "Department", {"dep"}), 35u);

  // The join count itself, as a SQL INTERSECT.
  auto rs = sql::ExecuteQuery(
      *db, "SELECT no FROM HEmployee INTERSECT SELECT id FROM Person");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->NumRows(), 1550u);
  rs = sql::ExecuteQuery(
      *db,
      "SELECT dep FROM Assignment INTERSECT SELECT dep FROM Department");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 30u);
}

class JoinCountAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinCountAgreementTest, AlgebraAgreesWithSqlOnSyntheticJoins) {
  SyntheticSpec spec;
  spec.num_entities = 4;
  spec.num_merged = 2;
  spec.rows_per_entity = 150;
  spec.orphan_rate = 0.1;  // exercise proper intersections too
  spec.seed = GetParam();
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok());
  const Database& db = generated->database;

  for (const EquiJoin& join : generated->queries) {
    if (join.arity() != 1) continue;  // INTERSECT compares single columns
    auto counts = ComputeJoinCounts(db, join);
    ASSERT_TRUE(counts.ok()) << join.ToString();
    auto left =
        sql::CountDistinct(db, join.left_relation, join.left_attributes);
    auto right =
        sql::CountDistinct(db, join.right_relation, join.right_attributes);
    ASSERT_TRUE(left.ok() && right.ok());
    EXPECT_EQ(counts->n_left, *left) << join.ToString();
    EXPECT_EQ(counts->n_right, *right) << join.ToString();

    std::string intersect = "SELECT " + join.left_attributes[0] + " FROM " +
                            join.left_relation + " INTERSECT SELECT " +
                            join.right_attributes[0] + " FROM " +
                            join.right_relation;
    auto rs = sql::ExecuteQuery(db, intersect);
    ASSERT_TRUE(rs.ok()) << intersect << ": " << rs.status();
    EXPECT_EQ(counts->n_join, rs->NumRows()) << join.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinCountAgreementTest,
                         ::testing::Values(31, 32, 33));

TEST(CrosscheckTest, InclusionAgreesWithNotExists) {
  // r[Y] ⊆ s[Z]  ⇔  no row of r has a Y value absent from s[Z].
  SyntheticSpec spec;
  spec.num_entities = 3;
  spec.num_merged = 1;
  spec.rows_per_entity = 100;
  spec.orphan_rate = 0.15;
  spec.seed = 9;
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok());
  const Database& db = generated->database;
  for (const InclusionDependency& ind : generated->true_inds) {
    if (ind.arity() != 1) continue;
    auto holds = Satisfies(db, ind);
    ASSERT_TRUE(holds.ok());
    std::string violators = "SELECT " + ind.lhs_attributes[0] + " FROM " +
                            ind.lhs_relation + " WHERE " +
                            ind.lhs_attributes[0] + " NOT IN (SELECT " +
                            ind.rhs_attributes[0] + " FROM " +
                            ind.rhs_relation + ")";
    auto rs = sql::ExecuteQuery(db, violators);
    ASSERT_TRUE(rs.ok()) << rs.status();
    EXPECT_EQ(*holds, rs->NumRows() == 0) << ind.ToString();
  }
}

}  // namespace
}  // namespace dbre::workload
