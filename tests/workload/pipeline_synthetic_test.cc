// End-to-end property tests: on clean synthetic databases with full query
// coverage, the method recovers exactly the planted dependencies.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace dbre::workload {
namespace {

class SyntheticRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SyntheticRecoveryTest, CleanDataFullCoverageRecoversEverything) {
  SyntheticSpec spec;
  spec.num_entities = 5;
  spec.num_merged = 2;
  spec.rows_per_entity = 300;
  spec.seed = GetParam();
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok()) << generated.status();

  ThresholdOracle::Options oracle_options;
  oracle_options.accept_hidden_objects = true;
  ThresholdOracle oracle(oracle_options);
  auto report = RunPipeline(generated->database, generated->queries,
                            &oracle);
  ASSERT_TRUE(report.ok()) << report.status();

  // Every planted IND recovered, nothing invented.
  PrecisionRecall ind_pr = CompareInds(report->ind.inds,
                                       generated->true_inds);
  EXPECT_DOUBLE_EQ(ind_pr.Recall(), 1.0) << ind_pr.ToString();
  EXPECT_DOUBLE_EQ(ind_pr.Precision(), 1.0) << ind_pr.ToString();

  // Every planted FD recovered.
  PrecisionRecall fd_pr = CompareFds(report->rhs.fds, generated->true_fds);
  EXPECT_DOUBLE_EQ(fd_pr.Recall(), 1.0) << fd_pr.ToString();

  // Planted identifiers surface either as FD left-hand sides or as hidden
  // objects.
  std::vector<QualifiedAttributes> recovered_identifiers = report->rhs.hidden;
  for (const FunctionalDependency& fd : report->rhs.fds) {
    recovered_identifiers.push_back(
        QualifiedAttributes{fd.relation, fd.lhs});
  }
  PrecisionRecall id_pr =
      CompareQualified(recovered_identifiers, generated->true_identifiers);
  EXPECT_DOUBLE_EQ(id_pr.Recall(), 1.0) << id_pr.ToString();

  // The restructured schema's RICs all hold in the materialized extension.
  for (const InclusionDependency& ric : report->restruct.rics) {
    EXPECT_TRUE(*Satisfies(report->restruct.database, ric))
        << ric.ToString();
  }
  // The EER schema is structurally valid.
  EXPECT_TRUE(report->eer.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticRecoveryTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 23, 42));

TEST(SyntheticRecoveryTest, PartialCoverageBoundsRecall) {
  SyntheticSpec spec;
  spec.num_entities = 10;
  spec.num_merged = 4;
  spec.rows_per_entity = 100;
  spec.query_coverage = 0.5;
  spec.seed = 99;
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok());
  ASSERT_LT(generated->queries.size(), generated->true_inds.size());

  DefaultOracle oracle;
  auto report = RunPipeline(generated->database, generated->queries,
                            &oracle);
  ASSERT_TRUE(report.ok());
  PrecisionRecall pr = CompareInds(report->ind.inds, generated->true_inds);
  // Precision stays perfect; recall is capped by coverage.
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_EQ(pr.true_positives, generated->queries.size());
}

TEST(SyntheticRecoveryTest, CorruptedDataNeedsOracle) {
  SyntheticSpec spec;
  spec.num_entities = 4;
  spec.num_merged = 1;
  spec.rows_per_entity = 400;
  spec.orphan_rate = 0.1;
  spec.seed = 5;
  auto generated = GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok());

  // The conservative oracle ignores NEIs → corrupted links are lost.
  DefaultOracle conservative;
  auto strict = RunPipeline(generated->database, generated->queries,
                            &conservative);
  ASSERT_TRUE(strict.ok());
  PrecisionRecall strict_pr =
      CompareInds(strict->ind.inds, generated->true_inds);
  EXPECT_LT(strict_pr.Recall(), 1.0);

  // A lenient threshold oracle forces the dirty inclusions back.
  ThresholdOracle::Options options;
  options.nei_conceptualize_ratio = 2.0;  // never conceptualize
  options.nei_force_ratio = 0.5;          // force when ≥ half overlaps
  ThresholdOracle lenient(options);
  auto recovered = RunPipeline(generated->database, generated->queries,
                               &lenient);
  ASSERT_TRUE(recovered.ok());
  PrecisionRecall lenient_pr =
      CompareInds(recovered->ind.inds, generated->true_inds);
  EXPECT_GT(lenient_pr.Recall(), strict_pr.Recall());
  EXPECT_DOUBLE_EQ(lenient_pr.Recall(), 1.0);
}

}  // namespace
}  // namespace dbre::workload
