// Shared helpers for service tests that drive the paper's reference
// session against a dbred server: building the wire inputs, computing the
// in-process reference report, and translating protocol questions back
// into ExpertOracle calls so a scripted client answers exactly like the
// in-process ScriptedOracle.
#ifndef DBRE_TESTS_SERVICE_PAPER_SESSION_UTIL_H_
#define DBRE_TESTS_SERVICE_PAPER_SESSION_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/report_json.h"
#include "relational/csv.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/transport.h"
#include "sql/ddl_writer.h"
#include "workload/paper_example.h"

namespace dbre::service {

struct PaperInputs {
  std::string ddl;
  std::vector<std::pair<std::string, std::string>> csvs;  // (relation, text)
};

inline PaperInputs BuildPaperInputs() {
  PaperInputs inputs;
  auto db = workload::BuildPaperDatabase();
  EXPECT_TRUE(db.ok());
  inputs.ddl = sql::WriteDdl(*db);
  for (const std::string& relation : db->RelationNames()) {
    auto table = db->GetMutableTable(relation);
    EXPECT_TRUE(table.ok());
    inputs.csvs.emplace_back(relation, WriteCsvText(**table));
  }
  return inputs;
}

inline std::string ReferenceReport() {
  auto db = workload::BuildPaperDatabase();
  EXPECT_TRUE(db.ok());
  auto oracle = workload::PaperOracle();
  auto report = RunPipeline(*db, workload::PaperJoinSet(), oracle.get(),
                            PipelineOptions{});
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  JsonOptions options;
  options.include_timings = false;
  return ReportToJson(*report, options);
}

// A scripted client over a live TCP connection.
class Client {
 public:
  explicit Client(uint16_t port) {
    auto channel = TcpConnect("127.0.0.1", port);
    EXPECT_TRUE(channel.ok()) << channel.status().ToString();
    channel_ = std::move(*channel);
  }

  // Sends one request, returns the parsed response (the whole envelope).
  Json Call(Json request) {
    request.Set("id", Json::Int(next_id_++));
    EXPECT_TRUE(channel_->WriteLine(request.Dump()).ok());
    auto line = channel_->ReadLine();
    EXPECT_TRUE(line.ok()) << "connection lost";
    if (!line.ok()) return Json::MakeObject();
    auto parsed = Json::Parse(*line);
    EXPECT_TRUE(parsed.ok()) << *line;
    return parsed.ok() ? *parsed : Json::MakeObject();
  }

  // Like Call but requires ok=true and returns only the result object.
  Json MustCall(Json request) {
    Json response = Call(std::move(request));
    EXPECT_TRUE(response.GetBool("ok")) << response.Dump();
    const Json* result = response.Find("result");
    return result != nullptr ? *result : Json::MakeObject();
  }

 private:
  std::unique_ptr<SocketChannel> channel_;
  int64_t next_id_ = 1;
};

// The same scripted client, but calling Server::HandleLine directly —
// no sockets, for tests that restart the server object in-process.
class LineClient {
 public:
  explicit LineClient(Server* server) : server_(server) {}

  Json Call(Json request) {
    request.Set("id", Json::Int(next_id_++));
    auto parsed = Json::Parse(server_->HandleLine(request.Dump()));
    EXPECT_TRUE(parsed.ok());
    return parsed.ok() ? *parsed : Json::MakeObject();
  }

  Json MustCall(Json request) {
    Json response = Call(std::move(request));
    EXPECT_TRUE(response.GetBool("ok")) << response.Dump();
    const Json* result = response.Find("result");
    return result != nullptr ? *result : Json::MakeObject();
  }

 private:
  Server* server_;
  int64_t next_id_ = 1;
};

inline Json Command(const char* cmd, const std::string& session = "") {
  Json request = Json::MakeObject();
  request.Set("cmd", Json::Str(cmd));
  if (!session.empty()) request.Set("session", Json::Str(session));
  return request;
}

inline std::vector<std::string> Strings(const Json* array) {
  std::vector<std::string> out;
  if (array == nullptr) return out;
  for (const Json& element : array->array()) {
    out.push_back(element.AsString());
  }
  return out;
}

// Reconstructs the oracle call from the question's structured context and
// consults `expert` — so a wire client makes exactly the decisions the
// in-process ScriptedOracle reference made.
inline Json AnswerParams(ExpertOracle* expert, const Json& question) {
  Json params = Json::MakeObject();
  std::string kind = question.GetString("kind");
  if (kind == "nei") {
    auto join = ParseJoin(*question.Find("join"));
    EXPECT_TRUE(join.ok());
    const Json* counts_json = question.Find("counts");
    JoinCounts counts;
    counts.n_left = static_cast<size_t>(counts_json->GetInt("left"));
    counts.n_right = static_cast<size_t>(counts_json->GetInt("right"));
    counts.n_join = static_cast<size_t>(counts_json->GetInt("join"));
    NeiDecision decision =
        expert->DecideNonEmptyIntersection(*join, counts);
    switch (decision.action) {
      case NeiAction::kConceptualize:
        params.Set("action", Json::Str("conceptualize"));
        if (!decision.relation_name.empty()) {
          params.Set("name", Json::Str(decision.relation_name));
        }
        break;
      case NeiAction::kForceLeftInRight:
        params.Set("action", Json::Str("force_left"));
        break;
      case NeiAction::kForceRightInLeft:
        params.Set("action", Json::Str("force_right"));
        break;
      case NeiAction::kIgnore:
        params.Set("action", Json::Str("ignore"));
        break;
    }
    return params;
  }
  if (kind == "enforce_fd" || kind == "validate_fd" || kind == "name_fd") {
    const Json* fd_json = question.Find("fd");
    FunctionalDependency fd(
        fd_json->GetString("relation"),
        AttributeSet(Strings(fd_json->Find("lhs"))),
        AttributeSet(Strings(fd_json->Find("rhs"))));
    if (kind == "enforce_fd") {
      const Json* g3 = question.Find("g3_error");
      bool yes = g3 != nullptr ? expert->EnforceFailedFd(fd, g3->AsNumber())
                               : expert->EnforceFailedFd(fd);
      params.Set("value", Json::Bool(yes));
    } else if (kind == "validate_fd") {
      params.Set("value", Json::Bool(expert->ValidateFd(fd)));
    } else {
      params.Set("name", Json::Str(expert->NameRelationForFd(fd)));
    }
    return params;
  }
  const Json* candidate_json = question.Find("candidate");
  QualifiedAttributes candidate{
      candidate_json->GetString("relation"),
      AttributeSet(Strings(candidate_json->Find("attributes")))};
  if (kind == "hidden_object") {
    params.Set("value",
               Json::Bool(expert->ConceptualizeHiddenObject(candidate)));
  } else {
    EXPECT_EQ(kind, "name_hidden");
    params.Set("name", Json::Str(expert->NameHiddenObjectRelation(candidate)));
  }
  return params;
}

// Loads the paper catalog + joins into `session` and starts its run.
template <typename AnyClient>
void StartPaperRun(AnyClient& client, const std::string& session,
                   const PaperInputs& inputs) {
  Json load_ddl = Command("load_ddl", session);
  load_ddl.Set("sql", Json::Str(inputs.ddl));
  client.MustCall(std::move(load_ddl));
  for (const auto& [relation, csv] : inputs.csvs) {
    Json load_csv = Command("load_csv", session);
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(csv));
    client.MustCall(std::move(load_csv));
  }
  Json add_joins = Command("add_joins", session);
  Json joins = Json::MakeArray();
  for (const EquiJoin& join : workload::PaperJoinSet()) {
    joins.Append(JoinToJson(join));
  }
  add_joins.Set("joins", std::move(joins));
  client.MustCall(std::move(add_joins));
  client.MustCall(Command("run", session));
}

// Answers questions one at a time with `expert` until the run finishes or
// `max_answers` answers have been given. After each answer it waits for
// the pipeline to move on (next question pending, or a terminal state) —
// so when it returns, every answer it gave has been consumed by the
// worker. Returns the number of answers given; sets *done if the run
// reached a terminal state.
template <typename AnyClient>
size_t AnswerPaperQuestions(AnyClient& client, const std::string& session,
                            ExpertOracle* expert, size_t max_answers,
                            bool* done) {
  *done = false;
  size_t answered = 0;
  while (true) {
    Json wait = Command("wait", session);
    wait.Set("for", Json::Str("question"));
    wait.Set("timeout_ms", Json::Int(2000));
    Json waited = client.MustCall(std::move(wait));
    std::string state = waited.GetString("state");
    if (state == "done" || state == "failed") {
      *done = true;
      return answered;
    }
    if (waited.GetInt("pending") == 0) continue;
    if (answered >= max_answers) return answered;

    Json listed = client.MustCall(Command("questions", session));
    const Json* questions = listed.Find("questions");
    if (questions == nullptr || questions->array().empty()) continue;
    const Json& question = questions->array().front();
    Json answer = Command("answer", session);
    answer.Set("question", Json::Int(question.GetInt("qid")));
    Json params = AnswerParams(expert, question);
    for (auto& [key, value] : params.object()) {
      answer.Set(key, std::move(value));
    }
    Json response = client.Call(std::move(answer));
    if (response.GetBool("ok")) ++answered;
  }
}

}  // namespace dbre::service

#endif  // DBRE_TESTS_SERVICE_PAPER_SESSION_UTIL_H_
