#include "service/json.h"

#include <limits>

#include <gtest/gtest.h>

namespace dbre::service {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->IsNull());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool(true));
  EXPECT_EQ(Json::Parse("42")->AsInt(), 42);
  EXPECT_EQ(Json::Parse("-7")->AsInt(), -7);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5")->AsNumber(), 2.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsNumber(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, IntegersStayExact) {
  auto big = Json::Parse("9007199254740993");  // 2^53 + 1
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(big->IsInt());
  EXPECT_EQ(big->AsInt(), 9007199254740993LL);
  // A fractional number is not an int.
  EXPECT_FALSE(Json::Parse("2.5")->IsInt());
  // Round trip through Dump keeps the digits.
  EXPECT_EQ(big->Dump(), "9007199254740993");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto parsed = Json::Parse(
      R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->IsObject());
  const Json* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_TRUE(a->array()[2].Find("b")->AsBool());
  EXPECT_TRUE(parsed->Find("c")->Find("d")->IsNull());
  EXPECT_EQ(parsed->GetString("e"), "x");
}

TEST(JsonTest, ObjectKeysKeepInsertionOrder) {
  Json object = Json::MakeObject();
  object.Set("z", Json::Int(1));
  object.Set("a", Json::Int(2));
  object.Set("m", Json::Str("x"));
  EXPECT_EQ(object.Dump(), R"({"z":1,"a":2,"m":"x"})");
}

TEST(JsonTest, StringEscapes) {
  auto parsed = Json::Parse(R"("a\"b\\c\n\tAé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\n\tA\xC3\xA9");
  // Control characters are escaped on output.
  EXPECT_EQ(Json::Str("a\nb\x01").Dump(), "\"a\\nb\\u0001\"");
}

TEST(JsonTest, SurrogatePairs) {
  auto parsed = Json::Parse(R"("😀")");  // 😀 U+1F600
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xF0\x9F\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(Json::Parse(R"("\ud83d")").ok());
}

TEST(JsonTest, MalformedInputsAreErrors) {
  const char* bad[] = {
      "",           "{",        "}",           "[1,",      "{\"a\":}",
      "{\"a\"1}",   "tru",      "nul",         "01",       "1.",
      "\"unterminated", "{\"a\":1,}",  "[1 2]",    "{'a':1}",
      "\"bad\\q\"", "1 2",      "{\"a\":1}x",
  };
  for (const char* text : bad) {
    auto parsed = Json::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "should reject: " << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(JsonTest, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 50; ++i) deep += "[";
  for (int i = 0; i < 50; ++i) deep += "]";
  EXPECT_TRUE(Json::Parse(deep, 64).ok());
  EXPECT_FALSE(Json::Parse(deep, 32).ok());
}

TEST(JsonTest, DumpParseRoundTrip) {
  Json object = Json::MakeObject();
  object.Set("int", Json::Int(-123));
  object.Set("num", Json::Number(0.125));
  object.Set("str", Json::Str("line\nbreak \"quoted\""));
  object.Set("null", Json::Null());
  Json array = Json::MakeArray();
  array.Append(Json::Bool(true));
  array.Append(Json::Int(7));
  object.Set("arr", std::move(array));

  auto reparsed = Json::Parse(object.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), object.Dump());
  EXPECT_EQ(reparsed->GetInt("int"), -123);
  EXPECT_DOUBLE_EQ(reparsed->GetNumber("num"), 0.125);
  EXPECT_EQ(reparsed->GetString("str"), "line\nbreak \"quoted\"");
}

TEST(JsonTest, TypedGettersFallBack) {
  auto parsed = Json::Parse(R"({"s":"x","i":3,"b":true})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(parsed->GetInt("missing", 9), 9);
  EXPECT_TRUE(parsed->GetBool("missing", true));
  EXPECT_EQ(parsed->GetString("i", "dflt"), "dflt");  // wrong type
  EXPECT_EQ(parsed->GetInt("s", 9), 9);
  EXPECT_EQ(parsed->Find("s")->Find("nested"), nullptr);
}

TEST(JsonTest, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Json::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(Json::Number(std::numeric_limits<double>::quiet_NaN()).Dump(),
            "null");
}

}  // namespace
}  // namespace dbre::service
