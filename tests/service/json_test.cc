#include "service/json.h"

#include <limits>

#include <gtest/gtest.h>

namespace dbre::service {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->IsNull());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool(true));
  EXPECT_EQ(Json::Parse("42")->AsInt(), 42);
  EXPECT_EQ(Json::Parse("-7")->AsInt(), -7);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5")->AsNumber(), 2.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsNumber(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, IntegersStayExact) {
  auto big = Json::Parse("9007199254740993");  // 2^53 + 1
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(big->IsInt());
  EXPECT_EQ(big->AsInt(), 9007199254740993LL);
  // A fractional number is not an int.
  EXPECT_FALSE(Json::Parse("2.5")->IsInt());
  // Round trip through Dump keeps the digits.
  EXPECT_EQ(big->Dump(), "9007199254740993");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto parsed = Json::Parse(
      R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->IsObject());
  const Json* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_TRUE(a->array()[2].Find("b")->AsBool());
  EXPECT_TRUE(parsed->Find("c")->Find("d")->IsNull());
  EXPECT_EQ(parsed->GetString("e"), "x");
}

TEST(JsonTest, ObjectKeysKeepInsertionOrder) {
  Json object = Json::MakeObject();
  object.Set("z", Json::Int(1));
  object.Set("a", Json::Int(2));
  object.Set("m", Json::Str("x"));
  EXPECT_EQ(object.Dump(), R"({"z":1,"a":2,"m":"x"})");
}

TEST(JsonTest, StringEscapes) {
  auto parsed = Json::Parse(R"("a\"b\\c\n\tAé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\n\tA\xC3\xA9");
  // Control characters are escaped on output.
  EXPECT_EQ(Json::Str("a\nb\x01").Dump(), "\"a\\nb\\u0001\"");
}

TEST(JsonTest, SurrogatePairs) {
  auto parsed = Json::Parse(R"("😀")");  // 😀 U+1F600
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xF0\x9F\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(Json::Parse(R"("\ud83d")").ok());
}

TEST(JsonTest, MalformedInputsAreErrors) {
  const char* bad[] = {
      "",           "{",        "}",           "[1,",      "{\"a\":}",
      "{\"a\"1}",   "tru",      "nul",         "01",       "1.",
      "\"unterminated", "{\"a\":1,}",  "[1 2]",    "{'a':1}",
      "\"bad\\q\"", "1 2",      "{\"a\":1}x",
  };
  for (const char* text : bad) {
    auto parsed = Json::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "should reject: " << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(JsonTest, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 50; ++i) deep += "[";
  for (int i = 0; i < 50; ++i) deep += "]";
  EXPECT_TRUE(Json::Parse(deep, 64).ok());
  EXPECT_FALSE(Json::Parse(deep, 32).ok());
}

TEST(JsonTest, DepthLimitIsExact) {
  auto nested = [](int depth) {
    std::string text(static_cast<size_t>(depth), '[');
    text.append(static_cast<size_t>(depth), ']');
    return text;
  };
  // The top-level value sits at depth 0, so max_depth 32 admits exactly 33
  // nested containers; the 34th is a structured error, not a stack dive.
  EXPECT_TRUE(Json::Parse(nested(33), 32).ok());
  auto too_deep = Json::Parse(nested(34), 32);
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.status().code(), StatusCode::kParseError);
  // Objects count against the same bound as arrays (their values sit one
  // level below the braces).
  std::string objects;
  for (int i = 0; i < 33; ++i) objects += "{\"k\":";
  objects += "null";
  for (int i = 0; i < 33; ++i) objects += "}";
  EXPECT_FALSE(Json::Parse(objects, 32).ok());
  std::string shallower;
  for (int i = 0; i < 32; ++i) shallower += "{\"k\":";
  shallower += "null";
  for (int i = 0; i < 32; ++i) shallower += "}";
  EXPECT_TRUE(Json::Parse(shallower, 32).ok());
}

TEST(JsonTest, OverflowingNumbersAreRejected) {
  for (const char* text : {"1e999", "-1e999", "1e308999", "123456e999"}) {
    auto parsed = Json::Parse(text);
    ASSERT_FALSE(parsed.ok()) << "should reject: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << text;
  }
  // Underflow is rounding, not overflow: tiny magnitudes collapse to 0.0.
  auto tiny = Json::Parse("1e-999");
  ASSERT_TRUE(tiny.ok());
  EXPECT_DOUBLE_EQ(tiny->AsNumber(), 0.0);
  // The extremes of the representable range still parse.
  EXPECT_TRUE(Json::Parse("1.7976931348623157e308").ok());
  EXPECT_TRUE(Json::Parse("-1.7976931348623157e308").ok());
}

TEST(JsonTest, OverlongNumberLiteralsAreRejected) {
  // 300 digits is syntactically a number but longer than any value the
  // protocol can represent; the parser caps the token instead of feeding
  // it to strtod.
  std::string long_int = "1" + std::string(299, '0');
  auto parsed = Json::Parse(long_int);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  // Same cap for a long fraction — and for a number nested in an object.
  std::string long_frac = "0." + std::string(300, '1');
  EXPECT_FALSE(Json::Parse(long_frac).ok());
  EXPECT_FALSE(Json::Parse("{\"n\":" + long_int + "}").ok());
  // A 255-character literal is still fine.
  std::string max_ok = "0." + std::string(253, '1');
  EXPECT_TRUE(Json::Parse(max_ok).ok());
}

TEST(JsonTest, DumpParseRoundTrip) {
  Json object = Json::MakeObject();
  object.Set("int", Json::Int(-123));
  object.Set("num", Json::Number(0.125));
  object.Set("str", Json::Str("line\nbreak \"quoted\""));
  object.Set("null", Json::Null());
  Json array = Json::MakeArray();
  array.Append(Json::Bool(true));
  array.Append(Json::Int(7));
  object.Set("arr", std::move(array));

  auto reparsed = Json::Parse(object.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), object.Dump());
  EXPECT_EQ(reparsed->GetInt("int"), -123);
  EXPECT_DOUBLE_EQ(reparsed->GetNumber("num"), 0.125);
  EXPECT_EQ(reparsed->GetString("str"), "line\nbreak \"quoted\"");
}

TEST(JsonTest, TypedGettersFallBack) {
  auto parsed = Json::Parse(R"({"s":"x","i":3,"b":true})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(parsed->GetInt("missing", 9), 9);
  EXPECT_TRUE(parsed->GetBool("missing", true));
  EXPECT_EQ(parsed->GetString("i", "dflt"), "dflt");  // wrong type
  EXPECT_EQ(parsed->GetInt("s", 9), 9);
  EXPECT_EQ(parsed->Find("s")->Find("nested"), nullptr);
}

TEST(JsonTest, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Json::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(Json::Number(std::numeric_limits<double>::quiet_NaN()).Dump(),
            "null");
}

}  // namespace
}  // namespace dbre::service
