#include "service/async_oracle.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace dbre::service {
namespace {

EquiJoin Join() { return EquiJoin::Single("R", "a", "S", "b"); }

JoinCounts Counts() {
  JoinCounts counts;
  counts.n_left = 10;
  counts.n_right = 20;
  counts.n_join = 5;
  return counts;
}

FunctionalDependency Fd() {
  return FunctionalDependency("R", AttributeSet{"a"}, AttributeSet{"b"});
}

// Answers the first pending question once it appears.
void AnswerWhenAsked(AsyncOracle* oracle, OracleAnswer answer) {
  ASSERT_TRUE(oracle->WaitForQuestion(5000));
  auto pending = oracle->Pending();
  ASSERT_EQ(pending.size(), 1u);
  ASSERT_TRUE(oracle->Answer(pending[0].id, answer).ok());
}

TEST(AsyncOracleTest, ClientAnswerResumesSuspendedCall) {
  AsyncOracle oracle;
  std::thread expert([&oracle] {
    OracleAnswer answer;
    answer.nei.action = NeiAction::kConceptualize;
    answer.nei.relation_name = "Bridge";
    AnswerWhenAsked(&oracle, answer);
  });
  // This call suspends until the expert thread answers.
  NeiDecision decision =
      oracle.DecideNonEmptyIntersection(Join(), Counts());
  expert.join();
  EXPECT_EQ(decision.action, NeiAction::kConceptualize);
  EXPECT_EQ(decision.relation_name, "Bridge");
  AsyncOracle::Counters counters = oracle.counters();
  EXPECT_EQ(counters.asked, 1u);
  EXPECT_EQ(counters.answered, 1u);
  EXPECT_EQ(counters.timed_out, 0u);
  EXPECT_TRUE(oracle.Pending().empty());
}

TEST(AsyncOracleTest, QuestionCarriesFullContext) {
  AsyncOracle oracle;
  std::thread expert([&oracle] {
    ASSERT_TRUE(oracle.WaitForQuestion(5000));
    auto pending = oracle.Pending();
    ASSERT_EQ(pending.size(), 1u);
    const PendingQuestion& question = pending[0];
    EXPECT_EQ(question.kind, PendingQuestion::Kind::kNei);
    EXPECT_EQ(question.subject, Join().ToString());
    EXPECT_EQ(question.join.left_relation, "R");
    EXPECT_EQ(question.counts.n_left, 10u);
    EXPECT_EQ(question.counts.n_right, 20u);
    EXPECT_EQ(question.counts.n_join, 5u);
    OracleAnswer answer;
    answer.nei.action = NeiAction::kIgnore;
    ASSERT_TRUE(oracle.Answer(question.id, answer).ok());
  });
  oracle.DecideNonEmptyIntersection(Join(), Counts());
  expert.join();
}

TEST(AsyncOracleTest, TimeoutFallsBackToDefaultOracle) {
  AsyncOracle::Options options;
  options.timeout_ms = 20;
  AsyncOracle oracle(options);
  // Nobody answers: after the timeout the DefaultOracle decides (never
  // enforce a failed FD, always validate a holding one).
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd()));
  EXPECT_TRUE(oracle.ValidateFd(Fd()));
  AsyncOracle::Counters counters = oracle.counters();
  EXPECT_EQ(counters.asked, 2u);
  EXPECT_EQ(counters.timed_out, 2u);
  EXPECT_EQ(counters.answered, 0u);
}

TEST(AsyncOracleTest, TimeoutUsesConfiguredFallback) {
  ThresholdOracle::Options policy;
  policy.enforce_fd_max_error = 0.5;
  ThresholdOracle threshold(policy);
  AsyncOracle::Options options;
  options.timeout_ms = 20;
  options.fallback = &threshold;
  AsyncOracle oracle(options);
  EXPECT_TRUE(oracle.EnforceFailedFd(Fd(), 0.1));   // under the threshold
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd(), 0.9));  // over it
}

TEST(AsyncOracleTest, CancelAllReleasesSuspendedCallAndFutureCalls) {
  AsyncOracle oracle;
  std::atomic<bool> decided{false};
  std::thread worker([&oracle, &decided] {
    // Suspends forever until cancelled; the fallback then says "ignore".
    NeiDecision decision =
        oracle.DecideNonEmptyIntersection(Join(), Counts());
    EXPECT_EQ(decision.action, NeiAction::kIgnore);
    decided.store(true);
  });
  ASSERT_TRUE(oracle.WaitForQuestion(5000));
  oracle.CancelAll();
  worker.join();
  EXPECT_TRUE(decided.load());
  // Post-cancel calls resolve immediately with the fallback.
  EXPECT_FALSE(oracle.EnforceFailedFd(Fd()));
  EXPECT_EQ(oracle.counters().cancelled, 2u);
}

TEST(AsyncOracleTest, AnswerIdErrors) {
  AsyncOracle oracle;
  // Unknown id.
  Status missing = oracle.Answer(99, OracleAnswer{});
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  std::thread expert([&oracle] {
    AnswerWhenAsked(&oracle, OracleAnswer{.yes = true});
  });
  EXPECT_TRUE(oracle.ValidateFd(Fd()));
  expert.join();
  // The id is now resolved: answering again is a precondition failure, not
  // a not-found (so clients can distinguish a race from a typo).
  auto pending_before = oracle.Pending();
  EXPECT_TRUE(pending_before.empty());
  Status again = oracle.Answer(1, OracleAnswer{.yes = false});
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

TEST(AsyncOracleTest, AnsweredQuestionVanishesBeforeTheWorkerConsumesIt) {
  // Between Answer() and the suspended worker waking up, the question is
  // resolved but still sitting in the internal map. It must already be
  // invisible to Pending() and un-answerable — otherwise a fast client
  // polling questions/answer can re-answer (and re-count, and re-journal)
  // the same decision arbitrarily many times while the worker is starved.
  AsyncOracle oracle;
  std::thread worker([&oracle] { EXPECT_TRUE(oracle.ValidateFd(Fd())); });
  ASSERT_TRUE(oracle.WaitForQuestion(5000));
  auto pending = oracle.Pending();
  ASSERT_EQ(pending.size(), 1u);
  ASSERT_TRUE(oracle.Answer(pending[0].id, OracleAnswer{.yes = true}).ok());
  // The worker may or may not have woken yet; either way the question is
  // no longer pending and a second answer is rejected, not absorbed.
  EXPECT_TRUE(oracle.Pending().empty());
  Status again = oracle.Answer(pending[0].id, OracleAnswer{.yes = false});
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  worker.join();
}

TEST(AsyncOracleTest, AnswerWithParsesUnderLock) {
  AsyncOracle oracle;
  std::thread expert([&oracle] {
    ASSERT_TRUE(oracle.WaitForQuestion(5000));
    auto pending = oracle.Pending();
    ASSERT_EQ(pending.size(), 1u);
    // A make() error leaves the question pending.
    Status bad = oracle.AnswerWith(
        pending[0].id, [](const PendingQuestion&) -> Result<OracleAnswer> {
          return InvalidArgumentError("unparseable");
        });
    EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(oracle.Pending().size(), 1u);
    Status good = oracle.AnswerWith(
        pending[0].id,
        [](const PendingQuestion& question) -> Result<OracleAnswer> {
          EXPECT_EQ(question.kind, PendingQuestion::Kind::kValidateFd);
          return OracleAnswer{.yes = true};
        });
    EXPECT_TRUE(good.ok());
  });
  EXPECT_TRUE(oracle.ValidateFd(Fd()));
  expert.join();
}

TEST(AsyncOracleTest, WaitForQuestionTimesOutWhenQuiet) {
  AsyncOracle oracle;
  EXPECT_FALSE(oracle.WaitForQuestion(10));
}

TEST(AsyncOracleTest, ListenerFiresOnAskAndResolve) {
  AsyncOracle oracle;
  std::atomic<int> fired{0};
  oracle.SetListener([&fired] { fired.fetch_add(1); });
  std::thread expert([&oracle] {
    AnswerWhenAsked(&oracle, OracleAnswer{.yes = true});
  });
  oracle.ValidateFd(Fd());
  expert.join();
  EXPECT_GE(fired.load(), 2);  // at least ask + resolve
}

TEST(AsyncOracleTest, NamingQuestionsRoundTrip) {
  AsyncOracle oracle;
  std::thread expert([&oracle] {
    AnswerWhenAsked(&oracle, OracleAnswer{.name = "Manager"});
  });
  EXPECT_EQ(oracle.NameRelationForFd(Fd()), "Manager");
  expert.join();

  std::thread expert2([&oracle] {
    ASSERT_TRUE(oracle.WaitForQuestion(5000));
    auto pending = oracle.Pending();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].kind, PendingQuestion::Kind::kNameHidden);
    EXPECT_EQ(pending[0].candidate.relation, "R");
    ASSERT_TRUE(
        oracle.Answer(pending[0].id, OracleAnswer{.name = "Hidden"}).ok());
  });
  EXPECT_EQ(oracle.NameHiddenObjectRelation({"R", AttributeSet{"a"}}),
            "Hidden");
  expert2.join();
}

}  // namespace
}  // namespace dbre::service
