// Fault-injection tests for the service layer: the `failpoint` wire
// command, sticky degraded journaling, the run-deadline watchdog, the
// accept loop's retry behavior, recovery past quarantined journal
// corruption, and failure injection at the oracle answer and memory
// reservation edges. Everything runs against real Server objects; faults
// come from the process-wide failpoint registry (docs/ROBUSTNESS.md).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "paper_session_util.h"
#include "service/server.h"
#include "service/transport.h"
#include "workload/paper_example.h"

namespace dbre::service {
namespace {

namespace fs = std::filesystem;

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("dbre_robustness_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    Failpoints::Instance().DisarmAll();
    fs::remove_all(dir_);
  }

  std::unique_ptr<Server> MakeDurableServer() {
    ServerOptions options;
    options.sessions.data_dir = dir_.string();
    options.sessions.journal.fsync_batch = 1;
    // Keep injected-failure retries fast; the failures are not transient.
    options.sessions.journal.retry.initial_backoff_ms = 0;
    options.sessions.journal.retry.max_backoff_ms = 0;
    options.enable_failpoints = true;
    return std::make_unique<Server>(options);
  }

  fs::path dir_;
};

TEST_F(RobustnessTest, FailpointCommandIsDisabledByDefault) {
  Server server;
  LineClient client(&server);
  Json response = client.Call(Command("failpoint"));
  EXPECT_FALSE(response.GetBool("ok")) << response.Dump();
  const Json* error = response.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->GetString("message").find("--enable-failpoints"),
            std::string::npos)
      << response.Dump();
  server.sessions()->Shutdown();
}

TEST_F(RobustnessTest, FailpointCommandArmsListsAndClears) {
  ServerOptions server_options;
  server_options.enable_failpoints = true;
  Server server(server_options);
  LineClient client(&server);

  Json set = Command("failpoint");
  set.Set("set", Json::Str("demo.point=error*1;other.point=off"));
  set.Set("seed", Json::Int(7));
  Json listed = client.MustCall(std::move(set));
  const Json* points = listed.Find("failpoints");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->array().size(), 2u);
  EXPECT_EQ(points->array()[0].GetString("point"), "demo.point");
  EXPECT_EQ(points->array()[0].GetString("spec"), "error*1");

  // Hitting the armed point fires once, and the counters show it.
  EXPECT_FALSE(FailpointError("demo.point").ok());
  EXPECT_TRUE(FailpointError("demo.point").ok());
  listed = client.MustCall(Command("failpoint"));
  points = listed.Find("failpoints");
  ASSERT_NE(points, nullptr);
  EXPECT_EQ(points->array()[0].GetInt("hits"), 2);
  EXPECT_EQ(points->array()[0].GetInt("triggers"), 1);

  // Clearing an unknown point is a structured error; "*" clears all.
  Json clear_unknown = Command("failpoint");
  clear_unknown.Set("clear", Json::Str("no.such.point"));
  EXPECT_FALSE(client.Call(std::move(clear_unknown)).GetBool("ok"));
  Json clear_all = Command("failpoint");
  clear_all.Set("clear", Json::Str("*"));
  listed = client.MustCall(std::move(clear_all));
  points = listed.Find("failpoints");
  ASSERT_NE(points, nullptr);
  EXPECT_TRUE(points->array().empty());

  // A bad spec never half-arms anything — not even the valid entries
  // ahead of the bad one in the list.
  Json bad = Command("failpoint");
  bad.Set("set", Json::Str("valid.prefix=error;x=explode"));
  EXPECT_FALSE(client.Call(std::move(bad)).GetBool("ok"));
  listed = client.MustCall(Command("failpoint"));
  points = listed.Find("failpoints");
  ASSERT_NE(points, nullptr);
  EXPECT_TRUE(points->array().empty()) << listed.Dump();

  server.sessions()->Shutdown();
}

TEST_F(RobustnessTest, DegradedJournalingIsStickyAndSurfaced) {
  auto server = MakeDurableServer();
  ASSERT_TRUE(server->sessions()->store_status().ok());
  LineClient client(server.get());
  Json create = Command("create");
  create.Set("name", Json::Str("frail"));
  client.MustCall(std::move(create));

  // The disk "fails" persistently: every journal fsync errors from here
  // on, armed over the wire like an operator would.
  Json arm = Command("failpoint");
  arm.Set("set", Json::Str("journal.fsync=error"));
  client.MustCall(std::move(arm));

  // The next journaled mutation trips the failure. The command itself
  // still succeeds: the session degrades to ephemeral instead of dying.
  const PaperInputs inputs = BuildPaperInputs();
  Json load_ddl = Command("load_ddl", "frail");
  load_ddl.Set("sql", Json::Str(inputs.ddl));
  client.MustCall(std::move(load_ddl));

  Json status = client.MustCall(Command("status", "frail"));
  EXPECT_EQ(status.GetString("persist"), "degraded") << status.Dump();
  EXPECT_FALSE(status.GetString("persist_error").empty());

  // `persist` reports the degradation instead of failing the protocol.
  Json persisted = client.MustCall(Command("persist", "frail"));
  EXPECT_TRUE(persisted.GetBool("degraded")) << persisted.Dump();
  EXPECT_FALSE(persisted.GetString("error").empty());

  // Degradation is sticky: the disk "recovering" does not re-arm
  // journaling mid-session (a gap in the journal would be worse).
  Json clear = Command("failpoint");
  clear.Set("clear", Json::Str("*"));
  client.MustCall(std::move(clear));
  Json load_csv = Command("load_csv", "frail");
  load_csv.Set("relation", Json::Str(inputs.csvs.front().first));
  load_csv.Set("csv", Json::Str(inputs.csvs.front().second));
  client.MustCall(std::move(load_csv));  // session fully usable in memory
  status = client.MustCall(Command("status", "frail"));
  EXPECT_EQ(status.GetString("persist"), "degraded");

  // `stats` counts live degraded sessions.
  Json stats = client.MustCall(Command("stats"));
  const Json* store = stats.Find("store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->GetInt("degraded_sessions"), 1) << stats.Dump();
}

TEST_F(RobustnessTest, WatchdogAbortsRunsPastTheDeadline) {
  ServerOptions options;
  options.sessions.run_deadline_ms = 50;
  Server server(options);
  LineClient client(&server);
  Json create = Command("create");
  create.Set("name", Json::Str("slow"));
  client.MustCall(std::move(create));

  // Start the paper run and never answer its questions: wall clock runs
  // out while the pipeline waits on the expert.
  const PaperInputs inputs = BuildPaperInputs();
  StartPaperRun(client, "slow", inputs);

  std::string state;
  std::string error;
  for (int i = 0; i < 500; ++i) {
    Json status = client.MustCall(Command("status", "slow"));
    state = status.GetString("state");
    if (state == "failed") {
      error = status.GetString("error");
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(state, "failed");
  EXPECT_NE(error.find("deadline"), std::string::npos) << error;

  // The session survives its aborted run: it reports state and can close.
  client.MustCall(Command("close", "slow"));
  server.sessions()->Shutdown();
}

TEST_F(RobustnessTest, WatchdogSparesRunsWaitingInTheQueue) {
  // One worker: "hog" takes it and blocks on an unanswered expert
  // question until the watchdog aborts it; "patient" is admitted
  // immediately but spends longer than the whole deadline queued behind
  // the hog. The deadline clock must start when a run begins executing,
  // not at admission — otherwise the watchdog aborts a run that never
  // got a worker.
  ServerOptions options;
  options.sessions.run_deadline_ms = 1500;
  options.sessions.max_inflight_runs = 1;
  options.sessions.max_queued_runs = 4;
  Server server(options);
  LineClient client(&server);
  const PaperInputs inputs = BuildPaperInputs();

  for (const char* name : {"hog", "patient"}) {
    Json create = Command("create");
    create.Set("name", Json::Str(name));
    client.MustCall(std::move(create));
  }
  StartPaperRun(client, "hog", inputs);

  Json load_ddl = Command("load_ddl", "patient");
  load_ddl.Set("sql", Json::Str(inputs.ddl));
  client.MustCall(std::move(load_ddl));
  for (const auto& [relation, csv] : inputs.csvs) {
    Json load_csv = Command("load_csv", "patient");
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(csv));
    client.MustCall(std::move(load_csv));
  }
  Json run = Command("run", "patient");
  run.Set("oracle", Json::Str("default"));  // self-answering: never blocks
  client.MustCall(std::move(run));

  auto state_of = [&](const std::string& id) {
    return client.MustCall(Command("status", id)).GetString("state");
  };
  std::string hog_state;
  std::string patient_state;
  for (int i = 0; i < 1500; ++i) {
    hog_state = state_of("hog");
    patient_state = state_of("patient");
    if (hog_state == "failed" &&
        (patient_state == "done" || patient_state == "failed")) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(hog_state, "failed");  // the hog really did exceed the deadline
  EXPECT_EQ(patient_state, "done")
      << client.MustCall(Command("status", "patient")).Dump();
  server.sessions()->Shutdown();
}

TEST_F(RobustnessTest, AcceptLoopSurvivesInjectedAcceptErrors) {
  Server server;
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start(0).ok());

  // The next two accepted connections fail server-side; the loop must
  // back off and keep accepting instead of exiting.
  ASSERT_TRUE(
      Failpoints::Instance().Arm("service.accept", "error*2").ok());

  bool served = false;
  for (int attempt = 0; attempt < 10 && !served; ++attempt) {
    auto channel = TcpConnect("127.0.0.1", tcp.port());
    ASSERT_TRUE(channel.ok()) << channel.status().ToString();
    Json hello = Command("hello");
    hello.Set("id", Json::Int(1));
    if (!(*channel)->WriteLine(hello.Dump()).ok()) continue;
    auto line = (*channel)->ReadLine();
    if (!line.ok()) continue;  // this connection was the injected failure
    auto response = Json::Parse(*line);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->GetBool("ok")) << *line;
    served = true;
  }
  EXPECT_TRUE(served) << "accept loop never recovered";

  tcp.Stop();
  server.sessions()->Shutdown();
}

TEST_F(RobustnessTest, RecoveryQuarantinesMidJournalCorruption) {
  // Build two durable sessions, then corrupt one journal mid-stream.
  {
    auto server = MakeDurableServer();
    LineClient client(server.get());
    const PaperInputs inputs = BuildPaperInputs();
    for (const char* name : {"victim", "bystander"}) {
      Json create = Command("create");
      create.Set("name", Json::Str(name));
      client.MustCall(std::move(create));
      Json load_ddl = Command("load_ddl", name);
      load_ddl.Set("sql", Json::Str(inputs.ddl));
      client.MustCall(std::move(load_ddl));
      Json load_csv = Command("load_csv", name);
      load_csv.Set("relation", Json::Str(inputs.csvs.front().first));
      load_csv.Set("csv", Json::Str(inputs.csvs.front().second));
      client.MustCall(std::move(load_csv));
    }
  }

  // Flip a byte in the SECOND record (the ddl) of victim's journal: a bad
  // record with valid records after it is mid-stream corruption, not a
  // torn tail.
  fs::path segment = dir_ / "sessions" / "victim" / "wal-000001.ndjson";
  ASSERT_TRUE(fs::exists(segment));
  std::string content;
  {
    std::ifstream in(segment, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  size_t first_newline = content.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  size_t second_newline = content.find('\n', first_newline + 1);
  ASSERT_NE(second_newline, std::string::npos);
  size_t target = (first_newline + second_newline) / 2;
  content[target] = content[target] == 'x' ? 'y' : 'x';
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out << content;
  }

  // Recovery quarantines the corrupt suffix and resumes both sessions:
  // victim from its valid prefix (just the create record), bystander
  // untouched.
  auto server = MakeDurableServer();
  const auto& recovery = server->recovery();
  EXPECT_EQ(recovery.sessions_recovered, 2u);
  EXPECT_GT(recovery.segments_quarantined, 0u);
  EXPECT_TRUE(recovery.errors.empty())
      << recovery.errors.front();

  LineClient client(server.get());
  Json victim = client.MustCall(Command("status", "victim"));
  EXPECT_EQ(victim.GetString("state"), "idle");
  EXPECT_EQ(victim.GetInt("relations"), 0);  // catalog records quarantined
  Json bystander = client.MustCall(Command("status", "bystander"));
  EXPECT_EQ(bystander.GetString("state"), "idle");
  EXPECT_GT(bystander.GetInt("relations"), 0);

  // The set-aside bytes are inspectable under quarantine/.
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / "sessions" / "victim"));

  // The victim keeps journaling after the repair: new mutations land in
  // the truncated segment and survive another restart.
  const PaperInputs inputs = BuildPaperInputs();
  Json reload = Command("load_ddl", "victim");
  reload.Set("sql", Json::Str(inputs.ddl));
  client.MustCall(std::move(reload));
  server.reset();
  auto reopened = MakeDurableServer();
  EXPECT_TRUE(reopened->recovery().errors.empty());
  LineClient client2(reopened.get());
  Json again = client2.MustCall(Command("status", "victim"));
  EXPECT_GT(again.GetInt("relations"), 0);
}

TEST_F(RobustnessTest, InjectedAnswerDeliveryFailureLeavesTheQuestionPending) {
  Server server;
  LineClient client(&server);
  Json create = Command("create");
  create.Set("name", Json::Str("ask"));
  client.MustCall(std::move(create));
  const PaperInputs inputs = BuildPaperInputs();
  StartPaperRun(client, "ask", inputs);

  // Wait for the first expert question.
  Json question;
  for (int i = 0; i < 100; ++i) {
    Json wait = Command("wait", "ask");
    wait.Set("for", Json::Str("question"));
    wait.Set("timeout_ms", Json::Int(2000));
    Json waited = client.MustCall(std::move(wait));
    if (waited.GetInt("pending") > 0) {
      Json listed = client.MustCall(Command("questions", "ask"));
      question = listed.Find("questions")->array().front();
      break;
    }
  }
  ASSERT_GT(question.GetInt("qid"), 0);

  auto expert = workload::PaperOracle();
  auto build_answer = [&] {
    Json answer = Command("answer", "ask");
    answer.Set("question", Json::Int(question.GetInt("qid")));
    Json params = AnswerParams(expert.get(), question);
    for (auto& [key, value] : params.object()) {
      answer.Set(key, std::move(value));
    }
    return answer;
  };

  // The first delivery fails; the question MUST still be pending so the
  // client can simply resend.
  ASSERT_TRUE(Failpoints::Instance().Arm("oracle.answer", "error*1").ok());
  Json failed = client.Call(build_answer());
  EXPECT_FALSE(failed.GetBool("ok")) << failed.Dump();
  Json listed = client.MustCall(Command("questions", "ask"));
  ASSERT_EQ(listed.Find("questions")->array().size(), 1u);
  EXPECT_EQ(listed.Find("questions")->array().front().GetInt("qid"),
            question.GetInt("qid"));

  // The retry lands: the answered question is gone. The resumed pipeline
  // may already have asked its *next* question by the time the listing
  // runs, so assert on the qid, not on the list being empty.
  client.MustCall(build_answer());
  listed = client.MustCall(Command("questions", "ask"));
  for (const Json& pending : listed.Find("questions")->array()) {
    EXPECT_NE(pending.GetInt("qid"), question.GetInt("qid"))
        << listed.Dump();
  }

  server.sessions()->Shutdown();
}

TEST_F(RobustnessTest, InjectedAllocationFailureFailsTheLoadCleanly) {
  Server server;
  LineClient client(&server);
  Json create = Command("create");
  create.Set("name", Json::Str("tight"));
  client.MustCall(std::move(create));
  const PaperInputs inputs = BuildPaperInputs();
  Json load_ddl = Command("load_ddl", "tight");
  load_ddl.Set("sql", Json::Str(inputs.ddl));
  client.MustCall(std::move(load_ddl));

  ASSERT_TRUE(
      Failpoints::Instance().Arm("session.reserve", "error*1").ok());
  Json load_csv = Command("load_csv", "tight");
  load_csv.Set("relation", Json::Str(inputs.csvs.front().first));
  load_csv.Set("csv", Json::Str(inputs.csvs.front().second));
  Json failed = client.Call(load_csv);
  ASSERT_FALSE(failed.GetBool("ok"));
  const Json* error = failed.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->GetString("message").find("allocation"),
            std::string::npos)
      << failed.Dump();

  // The failed load rolled back cleanly: the same load now succeeds and
  // the session is fully usable.
  Json retry = client.MustCall(load_csv);
  EXPECT_GT(retry.GetInt("rows"), 0);
  Json status = client.MustCall(Command("status", "tight"));
  EXPECT_EQ(status.GetString("state"), "idle");

  server.sessions()->Shutdown();
}

}  // namespace
}  // namespace dbre::service
