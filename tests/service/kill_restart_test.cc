// The crash-recovery acceptance test: a real dbre_serve process is
// SIGKILLed mid-session — no destructors, no flushes beyond what the
// journal's own write/fsync discipline guarantees — and restarted over the
// same --data-dir. The restarted daemon must resume the run and finish
// with a report byte-identical to an uninterrupted session.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "paper_session_util.h"
#include "service/server.h"
#include "workload/paper_example.h"

namespace dbre::service {
namespace {

namespace fs = std::filesystem;

// Owns a forked dbre_serve. The destructor SIGKILLs anything still
// running so a failed assertion cannot leak a daemon (which would also
// wedge ctest: the daemon holds the test's captured-output pipe open).
struct ServeProcess {
  pid_t pid = -1;
  uint16_t port = 0;

  ServeProcess() = default;
  ServeProcess(ServeProcess&& other) noexcept
      : pid(other.pid), port(other.port) {
    other.pid = -1;
  }
  ServeProcess& operator=(ServeProcess&& other) noexcept {
    std::swap(pid, other.pid);
    std::swap(port, other.port);
    return *this;
  }
  ~ServeProcess() {
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
  }

  // SIGKILL + reap, asserting the daemon really died by signal (it had no
  // chance to flush or run destructors).
  void KillHard() {
    ASSERT_GT(pid, 0);
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    pid = -1;
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  // Reaps a daemon expected to exit on its own (after `shutdown`).
  void WaitExit() {
    if (pid <= 0) return;
    EXPECT_EQ(waitpid(pid, nullptr, 0), pid);
    pid = -1;
  }
};

// Spawns dbre_serve on an ephemeral port and reads the chosen port from
// its first stdout line. The child's stderr goes to /dev/null so the
// daemon never holds the gtest output pipe open past the test.
ServeProcess StartServe(const std::string& data_dir) {
  ServeProcess process;
  int out_pipe[2];
  if (pipe(out_pipe) != 0) {
    ADD_FAILURE() << "pipe() failed";
    return process;
  }
  pid_t pid = fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork() failed";
    return process;
  }
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) dup2(devnull, STDERR_FILENO);
    execl(DBRE_SERVE_BINARY, "dbre_serve", "--port", "0", "--data-dir",
          data_dir.c_str(), "--fsync-batch", "1",
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  close(out_pipe[1]);
  process.pid = pid;
  FILE* out = fdopen(out_pipe[0], "r");
  char line[64] = {0};
  if (out == nullptr || fgets(line, sizeof(line), out) == nullptr) {
    ADD_FAILURE() << "dbre_serve printed no port";
    if (out != nullptr) fclose(out);
    return process;
  }
  fclose(out);  // the daemon writes nothing else to stdout
  process.port = static_cast<uint16_t>(std::strtoul(line, nullptr, 10));
  EXPECT_GT(process.port, 0) << "line: " << line;
  return process;
}

size_t CountPaperQuestions(const PaperInputs& inputs) {
  Server server;
  LineClient client(&server);
  Json create = Command("create");
  create.Set("name", Json::Str("count"));
  client.MustCall(std::move(create));
  StartPaperRun(client, "count", inputs);
  auto expert = workload::PaperOracle();
  bool done = false;
  size_t total = AnswerPaperQuestions(client, "count", expert.get(),
                                      SIZE_MAX, &done);
  EXPECT_TRUE(done);
  server.sessions()->Shutdown();
  return total;
}

TEST(KillRestartTest, SigkilledDaemonResumesAndMatchesReference) {
  const std::string reference = ReferenceReport();
  const PaperInputs inputs = BuildPaperInputs();
  const size_t total = CountPaperQuestions(inputs);
  ASSERT_GE(total, 2u);
  const size_t half = total / 2;

  fs::path data_dir =
      fs::temp_directory_path() /
      ("dbre_kill_restart_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(data_dir);

  // Phase 1: drive the session over TCP, answer half the questions, and
  // SIGKILL the daemon while the run is suspended on the next one.
  // AnswerPaperQuestions only returns once the pipeline has consumed (and
  // therefore journaled) every answer it gave, so the kill point is
  // after-answer-k-durable, before-answer-k+1.
  ServeProcess first = StartServe(data_dir.string());
  ASSERT_GT(first.port, 0);
  {
    Client client(first.port);
    Json create = Command("create");
    create.Set("name", Json::Str("paper"));
    EXPECT_EQ(client.MustCall(std::move(create)).GetString("session"),
              "paper");
    StartPaperRun(client, "paper", inputs);
    auto expert = workload::PaperOracle();
    bool done = false;
    size_t answered = AnswerPaperQuestions(client, "paper", expert.get(),
                                           half, &done);
    ASSERT_FALSE(done);
    ASSERT_EQ(answered, half);
  }
  first.KillHard();

  // Phase 2: restart over the same data dir. The daemon replays the
  // journal before accepting connections; the session resumes and asks
  // only the questions the expert never answered.
  ServeProcess second = StartServe(data_dir.string());
  ASSERT_GT(second.port, 0);
  {
    Client client(second.port);
    auto expert = workload::PaperOracle();
    bool done = false;
    size_t answered = AnswerPaperQuestions(client, "paper", expert.get(),
                                           SIZE_MAX, &done);
    ASSERT_TRUE(done);
    EXPECT_EQ(answered, total - half);

    Json status = client.MustCall(Command("status", "paper"));
    EXPECT_EQ(status.GetString("state"), "done") << status.Dump();
    EXPECT_EQ(
        client.MustCall(Command("report", "paper")).GetString("report"),
        reference)
        << "resumed report diverged from the uninterrupted run";

    client.MustCall(Command("shutdown"));
  }
  second.WaitExit();
  fs::remove_all(data_dir);
}

TEST(KillRestartTest, RestartAfterKillDuringLoadRecoversTheCatalog) {
  const PaperInputs inputs = BuildPaperInputs();
  fs::path data_dir =
      fs::temp_directory_path() /
      ("dbre_kill_load_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(data_dir);

  ServeProcess first = StartServe(data_dir.string());
  ASSERT_GT(first.port, 0);
  int64_t relations = 0;
  {
    Client client(first.port);
    Json create = Command("create");
    create.Set("name", Json::Str("loading"));
    client.MustCall(std::move(create));
    Json load_ddl = Command("load_ddl", "loading");
    load_ddl.Set("sql", Json::Str(inputs.ddl));
    client.MustCall(std::move(load_ddl));
    for (const auto& [relation, csv] : inputs.csvs) {
      Json load_csv = Command("load_csv", "loading");
      load_csv.Set("relation", Json::Str(relation));
      load_csv.Set("csv", Json::Str(csv));
      client.MustCall(std::move(load_csv));
    }
    Json status = client.MustCall(Command("status", "loading"));
    relations = status.GetInt("relations");
    ASSERT_GT(relations, 0);
  }
  // Kill between load and run: no run record, so recovery restores an
  // idle session with the full catalog.
  first.KillHard();

  ServeProcess second = StartServe(data_dir.string());
  ASSERT_GT(second.port, 0);
  {
    Client client(second.port);
    Json status = client.MustCall(Command("status", "loading"));
    EXPECT_EQ(status.GetString("state"), "idle");
    EXPECT_EQ(status.GetInt("relations"), relations);
    client.MustCall(Command("shutdown"));
  }
  second.WaitExit();
  fs::remove_all(data_dir);
}

}  // namespace
}  // namespace dbre::service
