#include "service/session_manager.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "pagestore/buffer_pool.h"

namespace dbre::service {
namespace {

// Two relations whose join is a genuine non-empty intersection (join
// non-empty, neither projection included in the other): an async-oracle
// run is guaranteed to suspend on the NEI question.
constexpr char kDdl[] =
    "CREATE TABLE R (a INTEGER, b TEXT, UNIQUE(a));\n"
    "CREATE TABLE S (c INTEGER, d TEXT, UNIQUE(c));";
constexpr char kCsvR[] = "a,b\n1,x\n2,y\n";
constexpr char kCsvS[] = "c,d\n2,p\n3,q\n";

std::shared_ptr<Session> MakeLoaded(SessionManager* manager) {
  auto id = manager->CreateSession();
  EXPECT_TRUE(id.ok());
  auto session = manager->Get(*id);
  EXPECT_TRUE(session.ok());
  size_t relations = 0, rows = 0;
  EXPECT_TRUE((*session)->LoadDdl(kDdl, &relations, &rows).ok());
  EXPECT_TRUE((*session)->LoadCsv("R", kCsvR, &rows).ok());
  EXPECT_TRUE((*session)->LoadCsv("S", kCsvS, &rows).ok());
  EXPECT_TRUE(
      (*session)->AddJoins({EquiJoin::Single("R", "a", "S", "c")}).ok());
  return *session;
}

TEST(SessionManagerTest, SessionIdsAndNameHints) {
  SessionManager manager;
  EXPECT_EQ(*manager.CreateSession(), "s1");
  EXPECT_EQ(*manager.CreateSession(), "s2");
  EXPECT_EQ(*manager.CreateSession("audit"), "audit");
  // A taken hint falls back to a generated id instead of colliding.
  std::string id = *manager.CreateSession("audit");
  EXPECT_NE(id, "audit");
  EXPECT_EQ(manager.session_count(), 4u);
  EXPECT_TRUE(manager.Get("audit").ok());
  EXPECT_EQ(manager.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(SessionManagerTest, MaxSessionsIsEnforced) {
  SessionManagerOptions options;
  options.max_sessions = 2;
  SessionManager manager(options);
  EXPECT_TRUE(manager.CreateSession().ok());
  EXPECT_TRUE(manager.CreateSession().ok());
  auto third = manager.CreateSession();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kFailedPrecondition);
  // Closing one frees a slot.
  EXPECT_TRUE(manager.CloseSession("s1").ok());
  EXPECT_TRUE(manager.CreateSession().ok());
}

TEST(SessionManagerTest, RunAdmissionIsBounded) {
  SessionManagerOptions options;
  options.max_inflight_runs = 1;
  options.max_queued_runs = 1;
  options.question_timeout_ms = -1;  // runs park on their NEI question
  SessionManager manager(options);

  auto first = MakeLoaded(&manager);
  auto second = MakeLoaded(&manager);
  Session::RunOptions run;
  ASSERT_TRUE(manager.SubmitRun(first, run).ok());
  ASSERT_TRUE(manager.SubmitRun(second, run).ok());

  // The single worker plus the single queue slot are taken: the third run
  // is rejected with a structured error.
  auto third = MakeLoaded(&manager);
  Status rejected = manager.SubmitRun(third, run);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.message().find("admission"), std::string::npos);

  // The rejected session is back to idle and can be resubmitted later.
  EXPECT_EQ(third->state(), Session::State::kIdle);

  // Unblock everything.
  first->Close();
  second->Close();
  manager.Shutdown();
}

TEST(SessionManagerTest, DoubleRunOnSameSessionIsRejected) {
  SessionManagerOptions options;
  options.question_timeout_ms = -1;
  SessionManager manager(options);
  auto session = MakeLoaded(&manager);
  Session::RunOptions run;
  ASSERT_TRUE(manager.SubmitRun(session, run).ok());
  Status again = manager.SubmitRun(session, run);
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  session->Close();
  manager.Shutdown();
}

TEST(SessionManagerTest, MemoryAccountingAndSessionBudget) {
  SessionManagerOptions options;
  options.max_session_bytes = 4096;
  SessionManager manager(options);
  auto id = manager.CreateSession();
  auto session = *manager.Get(*id);
  size_t relations = 0, rows = 0;
  ASSERT_TRUE(session->LoadDdl(kDdl, &relations, &rows).ok());

  // A small extension fits and is accounted globally.
  ASSERT_TRUE(session->LoadCsv("R", kCsvR, &rows).ok());
  EXPECT_GT(session->memory_bytes(), 0u);
  EXPECT_EQ(manager.budget()->used(), session->memory_bytes());

  // An extension beyond the per-session budget is rejected.
  std::string big = "a,b\n";
  for (int i = 0; i < 2000; ++i) {
    big += std::to_string(i) + ",payload-" + std::to_string(i) + "\n";
  }
  Status too_big = session->LoadCsv("R", big, &rows);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.code(), StatusCode::kFailedPrecondition);

  // Closing releases the reservation.
  ASSERT_TRUE(manager.CloseSession(*id).ok());
  EXPECT_EQ(manager.budget()->used(), 0u);
}

TEST(SessionManagerTest, IdenticalExtensionsShareStorageAcrossSessions) {
  SessionManager manager;
  auto a = MakeLoaded(&manager);
  ExtensionRegistry::Stats before = manager.registry()->stats();
  EXPECT_EQ(before.hits, 0u);
  auto b = MakeLoaded(&manager);
  ExtensionRegistry::Stats after = manager.registry()->stats();
  // The second session's identical extensions were interned, not copied.
  EXPECT_EQ(after.hits, before.hits + 2);
  // Shared rows are not double-charged against the global budget.
  EXPECT_EQ(manager.budget()->used(), a->memory_bytes());
  EXPECT_EQ(b->memory_bytes(), 0u);
}

TEST(SessionManagerTest, BufferPoolRequiresADataDir) {
  SessionManagerOptions options;
  options.buffer_pool_bytes = 1u << 20;
  SessionManager manager(options);
  EXPECT_EQ(manager.store_status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.buffer_pool(), nullptr);
}

TEST(SessionManagerTest, BufferPoolMustFitTheMemoryBudget) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("dbre_pool_budget_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  SessionManagerOptions options;
  options.data_dir = dir.string();
  options.max_total_bytes = 1u << 20;
  options.buffer_pool_bytes = 2u << 20;  // larger than the whole budget
  SessionManager manager(options);
  EXPECT_EQ(manager.store_status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.buffer_pool(), nullptr);
  fs::remove_all(dir);
}

TEST(SessionManagerTest, PagedModeRunsAndReleasesOnClose) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("dbre_paged_manager_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  SessionManagerOptions options;
  options.data_dir = dir.string();
  options.buffer_pool_bytes = 1;  // clamps to the pool's minimum frames
  SessionManager manager(options);
  ASSERT_TRUE(manager.store_status().ok());
  ASSERT_NE(manager.buffer_pool(), nullptr);

  auto session = MakeLoaded(&manager);
  // Both CSV loads were snapshotted and re-adopted page-backed through
  // the shared pool.
  EXPECT_EQ(manager.buffer_pool()->stats().attached_files, 2u);

  // Discovery over the paged extensions completes unattended, streaming
  // real pages through the pool.
  Session::RunOptions run;
  run.oracle = "default";
  ASSERT_TRUE(manager.SubmitRun(session, run).ok());
  ASSERT_TRUE(session->WaitFinished(30'000));
  ASSERT_EQ(session->state(), Session::State::kDone);
  auto report = session->ReportJson(false);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("\"restructured_schema\""), std::string::npos);
  EXPECT_GT(manager.buffer_pool()->stats().misses, 0u);

  // Closing the only referencing session sweeps the interned extensions
  // and detaches their snapshots from the pool: the memory comes back.
  const std::string id = session->id();
  session.reset();
  ASSERT_TRUE(manager.CloseSession(id).ok());
  ExtensionRegistry::Stats registry = manager.registry()->stats();
  EXPECT_EQ(registry.entries, 0u);
  EXPECT_GE(registry.releases, 2u);
  EXPECT_EQ(registry.resident_bytes, 0u);
  EXPECT_EQ(manager.buffer_pool()->stats().attached_files, 0u);
  manager.Shutdown();
  fs::remove_all(dir);
}

TEST(SessionManagerTest, LoadsRejectedWhileRunning) {
  SessionManagerOptions options;
  options.question_timeout_ms = -1;
  SessionManager manager(options);
  auto session = MakeLoaded(&manager);
  Session::RunOptions run;
  ASSERT_TRUE(manager.SubmitRun(session, run).ok());
  size_t rows = 0;
  EXPECT_EQ(session->LoadCsv("R", kCsvR, &rows).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->AddJoins({}).code(), StatusCode::kFailedPrecondition);
  session->Close();
  manager.Shutdown();
}

TEST(SessionManagerTest, UnattendedRunFinishesAndExports) {
  SessionManager manager;
  auto session = MakeLoaded(&manager);
  Session::RunOptions run;
  run.oracle = "default";
  ASSERT_TRUE(manager.SubmitRun(session, run).ok());
  ASSERT_TRUE(session->WaitFinished(30'000));
  ASSERT_EQ(session->state(), Session::State::kDone);
  auto report = session->ReportJson(false);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("\"restructured_schema\""), std::string::npos);
  EXPECT_EQ(report->find("timings_us"), std::string::npos);
  auto ddl = session->ExportDdl();
  ASSERT_TRUE(ddl.ok());
  EXPECT_NE(ddl->find("CREATE TABLE"), std::string::npos);
  auto dot = session->ExportEerDot();
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("graph "), std::string::npos);
  manager.Shutdown();
}

TEST(SessionManagerTest, TimeoutFallbackFinishesUnattended) {
  SessionManagerOptions options;
  options.question_timeout_ms = 50;  // nobody answers; fallback decides
  SessionManager manager(options);
  auto session = MakeLoaded(&manager);
  ASSERT_TRUE(manager.SubmitRun(session, Session::RunOptions{}).ok());
  ASSERT_TRUE(session->WaitFinished(30'000));
  EXPECT_EQ(session->state(), Session::State::kDone);
  EXPECT_GE(session->oracle()->counters().timed_out, 1u);
  manager.Shutdown();
}

TEST(SessionManagerTest, CloseCancelsSuspendedRun) {
  SessionManagerOptions options;
  options.question_timeout_ms = -1;
  SessionManager manager(options);
  auto session = MakeLoaded(&manager);
  ASSERT_TRUE(manager.SubmitRun(session, Session::RunOptions{}).ok());
  // Wait until the pipeline actually parks on a question, then close.
  ASSERT_TRUE(session->oracle()->WaitForQuestion(10'000));
  ASSERT_TRUE(manager.CloseSession(session->id()).ok());
  // Shutdown drains the worker; the cancelled run must not wedge it.
  manager.Shutdown();
  EXPECT_EQ(session->state(), Session::State::kClosed);
}

}  // namespace
}  // namespace dbre::service
