// End-to-end tests of the dbred daemon over real transports: many
// concurrent sessions, each driven by its own scripted client thread, with
// every final report required to be byte-identical to the same pipeline
// run in-process with the paper's ScriptedOracle. Also covers the
// disconnect-mid-question / reconnect-and-answer path that motivates
// keeping all session state out of connections.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "paper_session_util.h"
#include "service/server.h"
#include "service/transport.h"
#include "workload/paper_example.h"

namespace dbre::service {
namespace {

// Drives one full paper session over TCP and returns its final report.
// When `drop_mid_question`, the client abandons its first connection while
// a question is pending and finishes on a fresh one — the session (and the
// question) must survive.
std::string DriveSession(uint16_t port, const std::string& name,
                         const PaperInputs& inputs, bool drop_mid_question) {
  auto client = std::make_unique<Client>(port);
  Json create = Command("create");
  create.Set("name", Json::Str(name));
  std::string session =
      client->MustCall(std::move(create)).GetString("session");
  EXPECT_EQ(session, name);

  Json load_ddl = Command("load_ddl", session);
  load_ddl.Set("sql", Json::Str(inputs.ddl));
  client->MustCall(std::move(load_ddl));
  for (const auto& [relation, csv] : inputs.csvs) {
    Json load_csv = Command("load_csv", session);
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(csv));
    client->MustCall(std::move(load_csv));
  }
  Json add_joins = Command("add_joins", session);
  Json joins = Json::MakeArray();
  for (const EquiJoin& join : workload::PaperJoinSet()) {
    joins.Append(JoinToJson(join));
  }
  add_joins.Set("joins", std::move(joins));
  client->MustCall(std::move(add_joins));
  client->MustCall(Command("run", session));

  auto expert = workload::PaperOracle();
  bool dropped = false;
  while (true) {
    Json wait = Command("wait", session);
    wait.Set("for", Json::Str("question"));
    wait.Set("timeout_ms", Json::Int(2000));
    Json waited = client->MustCall(std::move(wait));
    std::string state = waited.GetString("state");
    if (state == "done" || state == "failed") break;
    if (waited.GetInt("pending") == 0) continue;

    if (drop_mid_question && !dropped) {
      dropped = true;
      // Vanish mid-question: no close, no goodbye. The question stays
      // pending inside the session, not the dead connection.
      client = std::make_unique<Client>(port);
    }

    Json listed = client->MustCall(Command("questions", session));
    for (const Json& question : listed.Find("questions")->array()) {
      Json answer = Command("answer", session);
      answer.Set("question", Json::Int(question.GetInt("qid")));
      Json params = AnswerParams(expert.get(), question);
      for (auto& [key, value] : params.object()) {
        answer.Set(key, std::move(value));
      }
      Json response = client->Call(std::move(answer));
      if (!response.GetBool("ok")) {
        // The only acceptable failure is a benign race: the question
        // resolved between listing and answering.
        EXPECT_EQ(response.Find("error")->GetString("code"),
                  "failed_precondition")
            << response.Dump();
      }
    }
  }

  Json status = client->MustCall(Command("status", session));
  EXPECT_EQ(status.GetString("state"), "done") << status.Dump();
  std::string report =
      client->MustCall(Command("report", session)).GetString("report");
  client->MustCall(Command("close", session));
  return report;
}

// -- The tests ------------------------------------------------------------

TEST(ServerIntegrationTest, EightConcurrentSessionsMatchScriptedPipeline) {
  const std::string reference = ReferenceReport();
  ASSERT_FALSE(reference.empty());
  const PaperInputs inputs = BuildPaperInputs();

  ServerOptions options;
  options.sessions.max_inflight_runs = 8;  // all sessions truly concurrent
  Server server(options);
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start(0).ok());

  constexpr int kSessions = 8;
  std::vector<std::string> reports(kSessions);
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&, i] {
      // Client 0 drops its connection mid-question and reconnects.
      reports[i] = DriveSession(tcp.port(), "paper" + std::to_string(i),
                                inputs, /*drop_mid_question=*/i == 0);
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(reports[i], reference)
        << "session " << i << " diverged from the in-process pipeline";
  }

  // All eight sessions loaded the same extension: the registry interned it.
  ExtensionRegistry::Stats stats = server.sessions()->registry()->stats();
  EXPECT_GE(stats.hits, static_cast<uint64_t>((kSessions - 1) *
                                              inputs.csvs.size()));
  tcp.Stop();
  server.sessions()->Shutdown();
}

TEST(ServerIntegrationTest, ObserverCanAnswerAnotherClientsQuestion) {
  ServerOptions options;
  Server server(options);
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start(0).ok());
  const PaperInputs inputs = BuildPaperInputs();

  // Owner sets up the session and starts the run, then only waits.
  Client owner(tcp.port());
  std::string session =
      owner.MustCall(Command("create", "shared")).GetString("session");
  Json load_ddl = Command("load_ddl", session);
  load_ddl.Set("sql", Json::Str(inputs.ddl));
  owner.MustCall(std::move(load_ddl));
  for (const auto& [relation, csv] : inputs.csvs) {
    Json load_csv = Command("load_csv", session);
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(csv));
    owner.MustCall(std::move(load_csv));
  }
  Json add_joins = Command("add_joins", session);
  Json joins = Json::MakeArray();
  for (const EquiJoin& join : workload::PaperJoinSet()) {
    joins.Append(JoinToJson(join));
  }
  add_joins.Set("joins", std::move(joins));
  owner.MustCall(std::move(add_joins));
  owner.MustCall(Command("run", session));

  // A second client answers every question from its own connection.
  std::thread expert_thread([&] {
    Client expert_client(tcp.port());
    auto expert = workload::PaperOracle();
    while (true) {
      Json wait = Command("wait", session);
      wait.Set("for", Json::Str("question"));
      wait.Set("timeout_ms", Json::Int(2000));
      Json waited = expert_client.MustCall(std::move(wait));
      std::string state = waited.GetString("state");
      if (state == "done" || state == "failed") break;
      if (waited.GetInt("pending") == 0) continue;
      Json listed = expert_client.MustCall(Command("questions", session));
      for (const Json& question : listed.Find("questions")->array()) {
        Json answer = Command("answer", session);
        answer.Set("question", Json::Int(question.GetInt("qid")));
        Json params = AnswerParams(expert.get(), question);
        for (auto& [key, value] : params.object()) {
          answer.Set(key, std::move(value));
        }
        expert_client.Call(std::move(answer));
      }
    }
  });

  // The owner just waits for the finished state.
  while (true) {
    Json wait = Command("wait", session);
    wait.Set("for", Json::Str("finished"));
    wait.Set("timeout_ms", Json::Int(2000));
    Json waited = owner.MustCall(std::move(wait));
    std::string state = waited.GetString("state");
    if (state == "done" || state == "failed") break;
  }
  expert_thread.join();

  Json status = owner.MustCall(Command("status", session));
  EXPECT_EQ(status.GetString("state"), "done") << status.Dump();
  EXPECT_EQ(owner.MustCall(Command("report", session)).GetString("report"),
            ReferenceReport());
  tcp.Stop();
  server.sessions()->Shutdown();
}

// Value of the sample line for `series` (labels included) in a Prometheus
// text page, or -1 when absent. The leading newline skips # HELP lines.
int64_t MetricValue(const std::string& text, const std::string& series) {
  std::string needle = "\n" + series + " ";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10);
}

// The `metrics` command against a live daemon must cover every
// instrumented layer — core (pipeline), relational (caches), service
// (sessions + oracle), store (journal + snapshot) — after one durable
// paper session ran to completion.
TEST(ServerIntegrationTest, MetricsCommandCoversEveryLayer) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("dbre_obs_integration_" +
       std::to_string(
           ::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);

  ServerOptions options;
  options.sessions.data_dir = dir.string();
  options.sessions.journal.fsync_batch = 1;
  options.slow_op_ms = 1;  // arm the slow-op log
  Server server(options);
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start(0).ok());

  Client client(tcp.port());
  const PaperInputs inputs = BuildPaperInputs();
  Json create = Command("create");
  create.Set("name", Json::Str("obs"));
  ASSERT_EQ(client.MustCall(std::move(create)).GetString("session"), "obs");
  StartPaperRun(client, "obs", inputs);
  auto expert = workload::PaperOracle();
  bool done = false;
  AnswerPaperQuestions(client, "obs", expert.get(), SIZE_MAX, &done);
  ASSERT_TRUE(done);

  // `trace` exposes the session's per-phase spans.
  Json trace = client.MustCall(Command("trace", "obs"));
  EXPECT_EQ(trace.GetString("session"), "obs");
  std::vector<std::string> span_names;
  for (const Json& span : trace.Find("spans")->array()) {
    span_names.push_back(span.GetString("name"));
  }
  for (const char* phase :
       {"pipeline:ind_discovery", "pipeline:lhs_discovery",
        "pipeline:rhs_discovery", "pipeline:restruct",
        "pipeline:translate"}) {
    EXPECT_NE(std::find(span_names.begin(), span_names.end(), phase),
              span_names.end())
        << "missing span " << phase;
  }

  // `metrics` renders the process-wide registry; every layer reports.
  std::string page =
      client.MustCall(Command("metrics")).GetString("metrics");
  // Core: pipeline counters and the per-phase latency histogram.
  EXPECT_GT(MetricValue(page, "dbre_pipeline_runs_completed_total"), 0);
  EXPECT_GT(MetricValue(page, "dbre_rhs_fd_tests_total"), 0);
  EXPECT_GT(MetricValue(page, "dbre_ind_extension_queries_total"), 0);
  EXPECT_NE(page.find("# TYPE dbre_pipeline_phase_us histogram"),
            std::string::npos);
  EXPECT_NE(page.find("dbre_pipeline_phase_us_count{phase=\"rhs_discovery\"}"),
            std::string::npos);
  // Relational: extension-intern and query-cache counters.
  EXPECT_GT(MetricValue(page, "dbre_extension_intern_lookups_total"), 0);
  EXPECT_NE(page.find("dbre_query_cache_hits_total{kind="),
            std::string::npos);
  // Service: session lifecycle, scheduler gauges, oracle outcomes.
  EXPECT_GT(MetricValue(page, "dbre_sessions_created_total"), 0);
  EXPECT_GT(
      MetricValue(page, "dbre_oracle_questions_total{outcome=\"answered\"}"),
      0);
  EXPECT_NE(page.find("# TYPE dbre_live_sessions gauge"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE dbre_inflight_runs gauge"),
            std::string::npos);
  // Store: journal writes with fsync latency, snapshot bytes.
  EXPECT_GT(MetricValue(page, "dbre_journal_appends_total"), 0);
  EXPECT_GT(MetricValue(page, "dbre_journal_bytes_total"), 0);
  EXPECT_NE(page.find("# TYPE dbre_journal_fsync_us histogram"),
            std::string::npos);
  EXPECT_GT(MetricValue(page, "dbre_snapshot_bytes_written_total"), 0);

  // `stats` carries the armed slow-op log state.
  Json stats = client.MustCall(Command("stats"));
  const Json* obs = stats.Find("obs");
  ASSERT_NE(obs, nullptr) << stats.Dump();
  EXPECT_EQ(obs->GetInt("slow_op_threshold_ms"), 1);
  ASSERT_NE(obs->Find("slow_ops"), nullptr);
  EXPECT_EQ(obs->Find("slow_ops")->array().size() <= 64, true);

  client.MustCall(Command("close", "obs"));
  tcp.Stop();
  server.sessions()->Shutdown();
  fs::remove_all(dir);
}

// A daemon serving page-backed extensions through a shared buffer pool
// must produce byte-identical reports, surface the pool in `stats` and
// `metrics`, and give the pool pages back when the last session closes.
TEST(ServerIntegrationTest, PagedModeIsByteIdenticalAndReleasesOnClose) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("dbre_paged_integration_" +
       std::to_string(
           ::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);

  ServerOptions options;
  options.sessions.data_dir = dir.string();
  options.sessions.buffer_pool_bytes = 1;  // clamp to the minimum frames
  Server server(options);
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start(0).ok());

  const PaperInputs inputs = BuildPaperInputs();
  std::string report = DriveSession(tcp.port(), "paged", inputs,
                                    /*drop_mid_question=*/false);
  EXPECT_EQ(report, ReferenceReport())
      << "paged session diverged from the in-process pipeline";

  Client client(tcp.port());
  // The `stats` pagestore block proves the run went through the pool.
  Json stats = client.MustCall(Command("stats"));
  const Json* pagestore = stats.Find("pagestore");
  ASSERT_NE(pagestore, nullptr) << stats.Dump();
  EXPECT_GT(pagestore->GetInt("budget_bytes"), 0);
  EXPECT_GT(pagestore->GetInt("misses"), 0);
  EXPECT_GT(pagestore->GetInt("hits"), 0);
  EXPECT_EQ(pagestore->GetInt("pinned_pages"), 0);
  // DriveSession already closed its session: the sweep released the
  // interned extensions and detached their snapshots from the pool.
  EXPECT_EQ(pagestore->GetInt("attached_files"), 0);
  const Json* cache = stats.Find("extension_cache");
  ASSERT_NE(cache, nullptr) << stats.Dump();
  EXPECT_GE(cache->GetInt("releases"),
            static_cast<int64_t>(inputs.csvs.size()));
  EXPECT_EQ(cache->GetInt("resident_bytes"), 0);

  // The pool's counters are on the `metrics` page too.
  std::string page =
      client.MustCall(Command("metrics")).GetString("metrics");
  EXPECT_GT(MetricValue(page, "dbre_pagestore_misses_total"), 0);
  EXPECT_NE(page.find("# TYPE dbre_pagestore_read_us histogram"),
            std::string::npos);

  tcp.Stop();
  server.sessions()->Shutdown();
  fs::remove_all(dir);
}

TEST(ServerIntegrationTest, StdioTransportServesASession) {
  std::stringstream in;
  in << R"({"id":1,"cmd":"hello"})" << "\n"
     << R"({"id":2,"cmd":"create","name":"pipe"})" << "\n"
     << R"({"id":3,"cmd":"status","session":"pipe"})" << "\n"
     << R"({"id":4,"cmd":"shutdown"})" << "\n"
     << R"({"id":5,"cmd":"hello"})" << "\n";  // after shutdown: unserved
  std::stringstream out;
  Server server;
  StreamChannel channel(&in, &out);
  size_t handled = ServeChannel(&server, &channel);
  EXPECT_EQ(handled, 4u);  // shutdown stops the pump before request 5

  std::vector<Json> responses;
  std::string line;
  while (std::getline(out, line)) {
    auto parsed = Json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    responses.push_back(*parsed);
  }
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].Find("result")->GetString("server"), "dbred");
  EXPECT_EQ(responses[1].Find("result")->GetString("session"), "pipe");
  EXPECT_EQ(responses[2].Find("result")->GetString("state"), "idle");
  EXPECT_TRUE(responses[3].Find("result")->GetBool("bye"));
  server.sessions()->Shutdown();
}

}  // namespace
}  // namespace dbre::service
