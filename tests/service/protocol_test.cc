#include "service/protocol.h"

#include <gtest/gtest.h>

#include "service/server.h"

namespace dbre::service {
namespace {

// -- ParseRequest ---------------------------------------------------------

TEST(ProtocolTest, ParsesWellFormedRequest) {
  auto request = ParseRequest(R"({"id":7,"cmd":"hello","extra":1})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, 7);
  EXPECT_EQ(request->cmd, "hello");
  EXPECT_EQ(request->params.GetInt("extra"), 1);
}

TEST(ProtocolTest, MissingIdDefaultsToMinusOne) {
  auto request = ParseRequest(R"({"cmd":"hello"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, -1);
}

TEST(ProtocolTest, MalformedJsonIsParseError) {
  auto request = ParseRequest("{\"cmd\":");
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kParseError);
}

TEST(ProtocolTest, NonObjectAndMissingCmdAreInvalid) {
  EXPECT_EQ(ParseRequest("[1,2]").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest(R"({"id":1})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest(R"({"cmd":42})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest(R"({"cmd":""})").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, OversizedLineIsRejectedWithoutParsing) {
  ProtocolLimits limits;
  limits.max_line_bytes = 64;
  std::string line = R"({"cmd":"load_csv","csv":")" +
                     std::string(1000, 'x') + "\"}";
  auto request = ParseRequest(line, limits);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(request.status().message().find("exceeds"), std::string::npos);
}

TEST(ProtocolTest, DepthLimitGuardsNestedBombs) {
  ProtocolLimits limits;
  limits.max_json_depth = 4;
  std::string line = R"({"cmd":"x","a":[[[[[[1]]]]]]})";
  EXPECT_EQ(ParseRequest(line, limits).status().code(),
            StatusCode::kParseError);
}

// -- Responses ------------------------------------------------------------

TEST(ProtocolTest, ResponsesAreSingleLineJson) {
  Json result = Json::MakeObject();
  result.Set("x", Json::Int(1));
  std::string ok = OkResponse(3, std::move(result));
  EXPECT_EQ(ok, R"({"id":3,"ok":true,"result":{"x":1}})");
  EXPECT_EQ(ok.find('\n'), std::string::npos);

  std::string error = ErrorResponse(-1, NotFoundError("gone"));
  EXPECT_EQ(
      error,
      R"({"id":null,"ok":false,"error":{"code":"not_found","message":"gone"}})");
}

// -- Answers --------------------------------------------------------------

TEST(ProtocolTest, ParsesNeiAnswers) {
  auto conceptualize = ParseAnswer(
      PendingQuestion::Kind::kNei,
      *Json::Parse(R"({"action":"conceptualize","name":"Bridge"})"));
  ASSERT_TRUE(conceptualize.ok());
  EXPECT_EQ(conceptualize->nei.action, NeiAction::kConceptualize);
  EXPECT_EQ(conceptualize->nei.relation_name, "Bridge");

  EXPECT_EQ(ParseAnswer(PendingQuestion::Kind::kNei,
                        *Json::Parse(R"({"action":"force_left"})"))
                ->nei.action,
            NeiAction::kForceLeftInRight);
  EXPECT_EQ(ParseAnswer(PendingQuestion::Kind::kNei,
                        *Json::Parse(R"({"action":"force_right"})"))
                ->nei.action,
            NeiAction::kForceRightInLeft);
  EXPECT_EQ(ParseAnswer(PendingQuestion::Kind::kNei,
                        *Json::Parse(R"({"action":"ignore"})"))
                ->nei.action,
            NeiAction::kIgnore);

  auto bad = ParseAnswer(PendingQuestion::Kind::kNei,
                         *Json::Parse(R"({"action":"destroy"})"));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ParsesBooleanAndNamingAnswers) {
  EXPECT_TRUE(ParseAnswer(PendingQuestion::Kind::kEnforceFd,
                          *Json::Parse(R"({"value":true})"))
                  ->yes);
  EXPECT_FALSE(ParseAnswer(PendingQuestion::Kind::kValidateFd,
                           *Json::Parse(R"({"value":false})"))
                   ->yes);
  // Truthy non-booleans are rejected, not coerced.
  EXPECT_EQ(ParseAnswer(PendingQuestion::Kind::kHiddenObject,
                        *Json::Parse(R"({"value":1})"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(ParseAnswer(PendingQuestion::Kind::kNameFd,
                        *Json::Parse(R"({"name":"Manager"})"))
                ->name,
            "Manager");
  EXPECT_EQ(ParseAnswer(PendingQuestion::Kind::kNameHidden,
                        *Json::Parse(R"({"nope":1})"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// -- Joins ----------------------------------------------------------------

TEST(ProtocolTest, JoinRoundTrip) {
  EquiJoin join;
  join.left_relation = "Assignment";
  join.left_attributes = {"emp", "dep"};
  join.right_relation = "Department";
  join.right_attributes = {"emp", "dep"};
  auto reparsed = ParseJoin(JoinToJson(join));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), join.ToString());
}

TEST(ProtocolTest, RejectsMalformedJoins) {
  EXPECT_FALSE(ParseJoin(*Json::Parse(R"("R=S")")).ok());
  // Arity mismatch fails EquiJoin::Validate.
  EXPECT_FALSE(
      ParseJoin(*Json::Parse(
                    R"({"left":"R","left_attrs":["a","b"],)"
                    R"("right":"S","right_attrs":["c"]})"))
          .ok());
  EXPECT_FALSE(ParseJoin(*Json::Parse(
                             R"({"left":"R","left_attrs":"a",)"
                             R"("right":"S","right_attrs":["c"]})"))
                   .ok());
}

// -- Server-level robustness ---------------------------------------------
// A protocol slip must produce a structured error response, never a crash
// or a dropped connection.

class ServerRobustnessTest : public ::testing::Test {
 protected:
  Json Handle(const std::string& line) {
    std::string response = server_.HandleLine(line);
    auto parsed = Json::Parse(response);
    EXPECT_TRUE(parsed.ok()) << response;
    return parsed.ok() ? *parsed : Json::MakeObject();
  }

  std::string ErrorCode(const Json& response) {
    const Json* error = response.Find("error");
    return error != nullptr ? error->GetString("code") : "";
  }

  Server server_;
};

TEST_F(ServerRobustnessTest, MalformedJsonYieldsParseError) {
  Json response = Handle("this is not json");
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(ErrorCode(response), "parse_error");
  EXPECT_TRUE(response.Find("id")->IsNull());
}

TEST_F(ServerRobustnessTest, OversizedMessageYieldsInvalidArgument) {
  Server small(ServerOptions{
      .limits = ProtocolLimits{.max_line_bytes = 128}});
  std::string huge =
      R"({"id":1,"cmd":"load_csv","csv":")" + std::string(4096, 'x') + "\"}";
  auto response = Json::Parse(small.HandleLine(huge));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->GetBool("ok", true));
  EXPECT_EQ(response->Find("error")->GetString("code"), "invalid_argument");
}

TEST_F(ServerRobustnessTest, UnknownCommandYieldsInvalidArgument) {
  Json response = Handle(R"({"id":5,"cmd":"explode"})");
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(ErrorCode(response), "invalid_argument");
  EXPECT_EQ(response.GetInt("id"), 5);  // id still echoed
}

TEST_F(ServerRobustnessTest, CommandsOnMissingSessionYieldNotFound) {
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"status","session":"nope"})")),
            "not_found");
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"answer","session":"nope",)"
                             R"("question":1,"value":true})")),
            "not_found");
}

TEST_F(ServerRobustnessTest, MissingParametersYieldInvalidArgument) {
  Handle(R"({"cmd":"create"})");
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"status"})")), "invalid_argument");
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"load_ddl","session":"s1"})")),
            "invalid_argument");
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"load_csv","session":"s1"})")),
            "invalid_argument");
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"add_joins","session":"s1"})")),
            "invalid_argument");
  EXPECT_EQ(
      ErrorCode(Handle(R"({"cmd":"answer","session":"s1","value":true})")),
      "invalid_argument");
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"wait","session":"s1",)"
                             R"("for":"godot"})")),
            "invalid_argument");
}

TEST_F(ServerRobustnessTest, AnswerToNeverAskedQuestionYieldsNotFound) {
  Handle(R"({"cmd":"create"})");
  Json response = Handle(
      R"({"cmd":"answer","session":"s1","question":42,"value":true})");
  EXPECT_EQ(ErrorCode(response), "not_found");
}

TEST_F(ServerRobustnessTest, ReportBeforeRunYieldsFailedPrecondition) {
  Handle(R"({"cmd":"create"})");
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"report","session":"s1"})")),
            "failed_precondition");
  EXPECT_EQ(ErrorCode(Handle(R"({"cmd":"export_eer","session":"s1"})")),
            "failed_precondition");
}

TEST_F(ServerRobustnessTest, ClosedSessionRejectsMutation) {
  Handle(R"({"cmd":"create"})");
  Json closed = Handle(R"({"cmd":"close","session":"s1"})");
  EXPECT_TRUE(closed.GetBool("ok"));
  Json response = Handle(
      R"({"cmd":"load_ddl","session":"s1","sql":"CREATE TABLE T (a INTEGER);"})");
  EXPECT_FALSE(response.GetBool("ok", true));
}

}  // namespace
}  // namespace dbre::service
