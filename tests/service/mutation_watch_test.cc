// The live-mutation wire surface (docs/INCREMENTAL.md, docs/SERVICE.md):
// the `mutate` command's stats and journaling, the `watch` event stream
// (mutate events, report events with presumption diffs, long-poll
// semantics), the incremental rerun replaying the session's recorded
// answers, and recovery replaying journaled mutate records to a report
// byte-identical to the pre-crash session's.
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "paper_session_util.h"
#include "service/server.h"

namespace dbre::service {
namespace {

namespace fs = std::filesystem;

constexpr char kDdl[] = R"(
CREATE TABLE emp (
  id INT NOT NULL,
  name VARCHAR(40),
  dept INT
);
CREATE TABLE proj (
  pid INT NOT NULL,
  owner INT
);
)";

constexpr char kEmpCsv[] =
    "id,name,dept\n"
    "1,ann,10\n"
    "2,bob,10\n"
    "3,cee,20\n"
    "4,dan,20\n";

constexpr char kProjCsv[] =
    "pid,owner\n"
    "100,1\n"
    "101,2\n"
    "102,3\n";

// Creates a session, loads the small catalog, registers the proj->emp
// join, and runs it unattended to completion.
std::string SetUpSession(LineClient& client, const std::string& name) {
  Json create = Command("create");
  create.Set("name", Json::Str(name));
  std::string session = client.MustCall(std::move(create)).GetString("session");

  Json load_ddl = Command("load_ddl", session);
  load_ddl.Set("sql", Json::Str(kDdl));
  client.MustCall(std::move(load_ddl));
  for (const auto& [relation, csv] :
       {std::pair<std::string, std::string>{"emp", kEmpCsv},
        std::pair<std::string, std::string>{"proj", kProjCsv}}) {
    Json load_csv = Command("load_csv", session);
    load_csv.Set("relation", Json::Str(relation));
    load_csv.Set("csv", Json::Str(csv));
    client.MustCall(std::move(load_csv));
  }
  Json add_joins = Command("add_joins", session);
  Json joins = Json::MakeArray();
  joins.Append(JoinToJson(EquiJoin::Single("proj", "owner", "emp", "id")));
  add_joins.Set("joins", std::move(joins));
  client.MustCall(std::move(add_joins));
  return session;
}

void RunToDone(LineClient& client, const std::string& session) {
  Json run = Command("run", session);
  run.Set("oracle", Json::Str("threshold"));
  client.MustCall(std::move(run));
  Json wait = Command("wait", session);
  wait.Set("for", Json::Str("finished"));
  wait.Set("timeout_ms", Json::Int(30'000));
  Json waited = client.MustCall(std::move(wait));
  ASSERT_EQ(waited.GetString("state"), "done") << waited.Dump();
}

std::string Report(LineClient& client, const std::string& session) {
  return client.MustCall(Command("report", session)).GetString("report");
}

TEST(MutationWatchTest, HelloAdvertisesMinorVersion) {
  Server server;
  LineClient client(&server);
  Json hello = client.MustCall(Command("hello"));
  EXPECT_EQ(hello.GetInt("protocol"), kProtocolVersion);
  EXPECT_EQ(hello.GetInt("minor"), kProtocolMinorVersion);
}

TEST(MutationWatchTest, MutateReportsPerTableStats) {
  Server server;
  LineClient client(&server);
  std::string session = SetUpSession(client, "stats");

  Json mutate = Command("mutate", session);
  mutate.Set("sql", Json::Str("INSERT INTO emp VALUES (5, 'eve', 10);"
                              "UPDATE emp SET dept = 30 WHERE id <= 2;"
                              "DELETE FROM proj WHERE pid = 102;"));
  Json result = client.MustCall(std::move(mutate));
  EXPECT_EQ(result.GetInt("statements"), 3);
  EXPECT_EQ(result.GetInt("inserted"), 1);
  EXPECT_EQ(result.GetInt("updated"), 2);
  EXPECT_EQ(result.GetInt("deleted"), 1);
  const Json* tables = result.Find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->array().size(), 2u);
  EXPECT_EQ(tables->array()[0].GetString("table"), "emp");
  EXPECT_EQ(tables->array()[1].GetString("table"), "proj");

  // Malformed script: clean error, nothing applied.
  Json bad = Command("mutate", session);
  bad.Set("sql", Json::Str("UPDATE emp SET ghost = 1;"));
  Json response = client.Call(std::move(bad));
  EXPECT_FALSE(response.GetBool("ok"));

  // Mutations are rejected while a run is in flight.
  Json run = Command("run", session);
  run.Set("oracle", Json::Str("threshold"));
  client.MustCall(std::move(run));
  Json racing = Command("mutate", session);
  racing.Set("sql", Json::Str("DELETE FROM proj;"));
  Json raced = client.Call(std::move(racing));
  if (raced.GetBool("ok")) {
    // The run may already have finished on a fast machine; only a
    // still-running session must reject.
    Json status = client.MustCall(Command("status", session));
    EXPECT_NE(status.GetString("state"), "running");
  }
}

TEST(MutationWatchTest, WatchStreamsMutateAndReportEvents) {
  Server server;
  LineClient client(&server);
  std::string session = SetUpSession(client, "watch");
  RunToDone(client, session);

  // The finished run emitted the initial report event.
  Json watch = Command("watch", session);
  watch.Set("after_seq", Json::Int(0));
  Json first = client.MustCall(std::move(watch));
  const Json* events = first.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array().size(), 1u);
  const Json& report_event = events->array()[0];
  EXPECT_EQ(report_event.GetString("type"), "report");
  EXPECT_TRUE(report_event.GetBool("initial"));
  EXPECT_GT(report_event.GetInt("inds"), 0);
  int64_t next_seq = first.GetInt("next_seq");
  EXPECT_EQ(next_seq, report_event.GetInt("seq"));

  // A mutation appends a mutate event with the script's stats.
  Json mutate = Command("mutate", session);
  mutate.Set("sql",
             Json::Str("INSERT INTO proj VALUES (200, 99);"));  // breaks IND
  client.MustCall(std::move(mutate));
  Json watch2 = Command("watch", session);
  watch2.Set("after_seq", Json::Int(next_seq));
  Json second = client.MustCall(std::move(watch2));
  const Json* events2 = second.Find("events");
  ASSERT_EQ(events2->array().size(), 1u);
  EXPECT_EQ(events2->array()[0].GetString("type"), "mutate");
  EXPECT_EQ(events2->array()[0].GetInt("inserted"), 1);
  next_seq = second.GetInt("next_seq");

  // The incremental rerun emits a non-initial report event whose diff
  // carries the IND the rogue owner row broke.
  RunToDone(client, session);
  Json watch3 = Command("watch", session);
  watch3.Set("after_seq", Json::Int(next_seq));
  Json third = client.MustCall(std::move(watch3));
  const Json* events3 = third.Find("events");
  ASSERT_EQ(events3->array().size(), 1u);
  const Json& changed = events3->array()[0];
  EXPECT_EQ(changed.GetString("type"), "report");
  EXPECT_FALSE(changed.GetBool("initial"));
  EXPECT_TRUE(changed.GetBool("changed"));
  const Json* removed = changed.Find("inds_removed");
  ASSERT_NE(removed, nullptr);
  EXPECT_FALSE(removed->array().empty());
}

TEST(MutationWatchTest, WatchLongPollWakesOnMutation) {
  Server server;
  LineClient client(&server);
  std::string session = SetUpSession(client, "poll");
  RunToDone(client, session);
  Json drained = client.MustCall(Command("watch", session));
  int64_t next_seq = drained.GetInt("next_seq");

  // Park a watcher, then mutate from another thread: the watcher must
  // return the mutate event well before its timeout.
  std::thread mutator([&server, session] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    LineClient side(&server);
    Json mutate = Command("mutate", session);
    mutate.Set("sql", Json::Str("DELETE FROM proj WHERE pid = 100;"));
    side.MustCall(std::move(mutate));
  });
  Json watch = Command("watch", session);
  watch.Set("after_seq", Json::Int(next_seq));
  watch.Set("timeout_ms", Json::Int(10'000));
  Json woken = client.MustCall(std::move(watch));
  mutator.join();
  const Json* events = woken.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array().size(), 1u);
  EXPECT_EQ(events->array()[0].GetString("type"), "mutate");
  EXPECT_EQ(events->array()[0].GetInt("deleted"), 1);

  // An immediate re-watch at the new cursor times out empty (no busy
  // loop, state comes back for the caller to decide).
  Json idle = Command("watch", session);
  idle.Set("after_seq", Json::Int(woken.GetInt("next_seq")));
  idle.Set("timeout_ms", Json::Int(10));
  Json empty = client.MustCall(std::move(idle));
  EXPECT_TRUE(empty.Find("events")->array().empty());
  EXPECT_EQ(empty.GetString("state"), "done");
}

// The tentpole equivalence at the service layer: mutate + rerun must
// produce the same report as a fresh session loaded with the mutated
// extension from scratch.
TEST(MutationWatchTest, IncrementalRerunMatchesFreshSession) {
  Server server;
  LineClient client(&server);
  std::string session = SetUpSession(client, "incremental");
  RunToDone(client, session);

  Json mutate = Command("mutate", session);
  mutate.Set("sql", Json::Str("UPDATE emp SET dept = 10 WHERE dept = 20;"
                              "DELETE FROM proj WHERE pid = 101;"
                              "INSERT INTO emp VALUES (9, 'zed', 40);"));
  client.MustCall(std::move(mutate));
  RunToDone(client, session);
  const std::string incremental = Report(client, session);

  // Fresh session: same final rows, loaded cold.
  std::string fresh = SetUpSession(client, "cold");
  Json fix = Command("mutate", fresh);
  fix.Set("sql", Json::Str("UPDATE emp SET dept = 10 WHERE dept = 20;"
                           "DELETE FROM proj WHERE pid = 101;"
                           "INSERT INTO emp VALUES (9, 'zed', 40);"));
  client.MustCall(std::move(fix));
  RunToDone(client, fresh);
  EXPECT_EQ(incremental, Report(client, fresh));
}

// Crash-shaped recovery: a data-dir server journals loads, runs and
// mutations; a second server over the same data dir must converge to the
// same post-mutation report without any client help.
TEST(MutationWatchTest, RecoveryReplaysJournaledMutations) {
  fs::path dir = fs::temp_directory_path() /
                 ("dbre_mutation_recovery_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::string expected;
  {
    ServerOptions options;
    options.sessions.data_dir = dir.string();
    Server server(options);
    LineClient client(&server);
    std::string session = SetUpSession(client, "durable");
    RunToDone(client, session);
    Json mutate = Command("mutate", session);
    mutate.Set("sql", Json::Str("INSERT INTO proj VALUES (300, 4);"
                                "UPDATE emp SET name = 'renamed' "
                                "WHERE id = 1;"));
    client.MustCall(std::move(mutate));
    RunToDone(client, session);
    expected = Report(client, session);
    // No close, no shutdown record: the journal ends as a crash would
    // leave it (run record + answers + done + mutate + run + done).
    server.sessions()->Shutdown();
  }

  {
    ServerOptions options;
    options.sessions.data_dir = dir.string();
    Server server(options);  // replays the journal at construction
    EXPECT_EQ(server.recovery().sessions_recovered, 1u);
    LineClient client(&server);
    // Recovery re-submits the last run; wait for it to converge.
    Json wait = Command("wait", "durable");
    wait.Set("for", Json::Str("finished"));
    wait.Set("timeout_ms", Json::Int(30'000));
    Json waited = client.MustCall(std::move(wait));
    EXPECT_EQ(waited.GetString("state"), "done") << waited.Dump();
    EXPECT_EQ(Report(client, "durable"), expected);
  }
  fs::remove_all(dir);
}

// Paged sessions (buffer-pool backed loads): a mutation against a paged
// extension materializes first and still reruns to the cold answer.
TEST(MutationWatchTest, MutationMaterializesPagedExtensions) {
  fs::path dir = fs::temp_directory_path() /
                 ("dbre_mutation_paged_" +
                  std::to_string(
                      ::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  ServerOptions options;
  options.sessions.data_dir = dir.string();
  options.sessions.buffer_pool_bytes = 16u << 20;
  Server server(options);
  LineClient client(&server);
  std::string session = SetUpSession(client, "paged");
  RunToDone(client, session);

  Json mutate = Command("mutate", session);
  mutate.Set("sql", Json::Str("UPDATE proj SET owner = 1 WHERE pid = 101;"));
  Json result = client.MustCall(std::move(mutate));
  EXPECT_EQ(result.GetInt("updated"), 1);
  RunToDone(client, session);
  const std::string incremental = Report(client, session);

  std::string fresh = SetUpSession(client, "paged-cold");
  Json fix = Command("mutate", fresh);
  fix.Set("sql", Json::Str("UPDATE proj SET owner = 1 WHERE pid = 101;"));
  client.MustCall(std::move(fix));
  RunToDone(client, fresh);
  EXPECT_EQ(incremental, Report(client, fresh));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dbre::service
