// In-process crash-recovery tests: a dbred server with a data dir is
// driven through part of the paper session, destroyed (graceful shutdown
// disarms journals but leaves them on disk), and rebuilt over the same
// directory. Recovery must resume the pipeline with the journaled expert
// answers and finish with a report byte-identical to an uninterrupted run.
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "paper_session_util.h"
#include "service/server.h"
#include "store/store.h"
#include "workload/paper_example.h"

namespace dbre::service {
namespace {

namespace fs = std::filesystem;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dbre_persistence_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<Server> MakeServer() {
    ServerOptions options;
    options.sessions.data_dir = dir_.string();
    options.sessions.journal.fsync_batch = 1;
    return std::make_unique<Server>(options);
  }

  fs::path dir_;
};

// How many questions the full paper session asks (driven to completion on
// a throwaway in-memory server).
size_t CountPaperQuestions(const PaperInputs& inputs) {
  Server server;
  LineClient client(&server);
  Json create = Command("create");
  create.Set("name", Json::Str("count"));
  client.MustCall(std::move(create));
  StartPaperRun(client, "count", inputs);
  auto expert = workload::PaperOracle();
  bool done = false;
  size_t total = AnswerPaperQuestions(client, "count", expert.get(),
                                      SIZE_MAX, &done);
  EXPECT_TRUE(done);
  server.sessions()->Shutdown();
  return total;
}

TEST_F(PersistenceTest, ResumedRunMatchesUninterruptedReportByteForByte) {
  const std::string reference = ReferenceReport();
  const PaperInputs inputs = BuildPaperInputs();
  const size_t total = CountPaperQuestions(inputs);
  ASSERT_GE(total, 2u) << "need at least two questions to interrupt between";
  const size_t half = total / 2;

  // Phase 1: answer half the questions, then tear the server down
  // mid-run. The destructor's graceful shutdown leaves the journal
  // resumable.
  {
    auto server = MakeServer();
    ASSERT_TRUE(server->sessions()->store_status().ok());
    LineClient client(server.get());
    Json create = Command("create");
    create.Set("name", Json::Str("paper"));
    EXPECT_EQ(client.MustCall(std::move(create)).GetString("session"),
              "paper");
    StartPaperRun(client, "paper", inputs);
    auto expert = workload::PaperOracle();
    bool done = false;
    size_t answered = AnswerPaperQuestions(client, "paper", expert.get(),
                                           half, &done);
    ASSERT_FALSE(done);
    ASSERT_EQ(answered, half);

    // The journal is live: `persist` reports durable records.
    Json persisted = client.MustCall(Command("persist", "paper"));
    EXPECT_GT(persisted.GetInt("records"), static_cast<int64_t>(half));
  }

  // Phase 2: a fresh server over the same data dir recovers the session
  // and resumes the run; only the unanswered questions come back.
  {
    auto server = MakeServer();
    EXPECT_EQ(server->recovery().sessions_recovered, 1u);
    EXPECT_EQ(server->recovery().runs_resumed, 1u);
    EXPECT_TRUE(server->recovery().errors.empty())
        << server->recovery().errors.front();
    LineClient client(server.get());

    auto expert = workload::PaperOracle();
    bool done = false;
    size_t answered = AnswerPaperQuestions(client, "paper", expert.get(),
                                           SIZE_MAX, &done);
    ASSERT_TRUE(done);
    EXPECT_EQ(answered, total - half)
        << "replayed answers must not be re-asked";

    Json status = client.MustCall(Command("status", "paper"));
    EXPECT_EQ(status.GetString("state"), "done") << status.Dump();
    EXPECT_EQ(client.MustCall(Command("report", "paper")).GetString("report"),
              reference);

    // `stats` exposes the store and what recovery did.
    Json stats = client.MustCall(Command("stats"));
    const Json* store = stats.Find("store");
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->GetInt("sessions_recovered"), 1);
    EXPECT_EQ(store->GetInt("runs_resumed"), 1);
  }
}

TEST_F(PersistenceTest, IdleSessionCatalogSurvivesRestart) {
  const PaperInputs inputs = BuildPaperInputs();
  int64_t relations = 0;
  {
    auto server = MakeServer();
    LineClient client(server.get());
    Json create = Command("create");
    create.Set("name", Json::Str("idle"));
    client.MustCall(std::move(create));
    Json load_ddl = Command("load_ddl", "idle");
    load_ddl.Set("sql", Json::Str(inputs.ddl));
    client.MustCall(std::move(load_ddl));
    for (const auto& [relation, csv] : inputs.csvs) {
      Json load_csv = Command("load_csv", "idle");
      load_csv.Set("relation", Json::Str(relation));
      load_csv.Set("csv", Json::Str(csv));
      client.MustCall(std::move(load_csv));
    }
    Json status = client.MustCall(Command("status", "idle"));
    relations = status.GetInt("relations");
    ASSERT_GT(relations, 0);
  }
  {
    auto server = MakeServer();
    EXPECT_EQ(server->recovery().sessions_recovered, 1u);
    EXPECT_EQ(server->recovery().runs_resumed, 0u);
    LineClient client(server.get());
    Json status = client.MustCall(Command("status", "idle"));
    EXPECT_EQ(status.GetString("state"), "idle");
    EXPECT_EQ(status.GetInt("relations"), relations);
    // Restoring a live session is an error, not a duplicate.
    Json response = client.Call(Command("restore", "idle"));
    EXPECT_FALSE(response.GetBool("ok"));
  }
}

TEST_F(PersistenceTest, ClosedSessionsDoNotComeBack) {
  {
    auto server = MakeServer();
    LineClient client(server.get());
    Json create = Command("create");
    create.Set("name", Json::Str("gone"));
    client.MustCall(std::move(create));
    client.MustCall(Command("close", "gone"));
  }
  {
    auto server = MakeServer();
    EXPECT_EQ(server->recovery().sessions_recovered, 0u);
    LineClient client(server.get());
    Json response = client.Call(Command("restore", "gone"));
    EXPECT_FALSE(response.GetBool("ok"));
    // And the id is free again.
    Json create = Command("create");
    create.Set("name", Json::Str("gone"));
    EXPECT_EQ(client.MustCall(std::move(create)).GetString("session"),
              "gone");
  }
}

TEST_F(PersistenceTest, DamagedJournalIsReportedAndItsIdStaysReserved) {
  const PaperInputs inputs = BuildPaperInputs();
  // Hand-craft a journal that recovery cannot apply: its csv record names
  // a snapshot fingerprint that does not exist on disk.
  {
    auto store = store::Store::Open(dir_.string());
    ASSERT_TRUE(store.ok());
    auto journal = (*store)->OpenSessionJournal("held");
    ASSERT_TRUE(journal.ok());
    Json create = Json::MakeObject();
    create.Set("t", Json::Str("create"));
    create.Set("session", Json::Str("held"));
    ASSERT_TRUE((*journal)->Append(create).ok());
    Json ddl = Json::MakeObject();
    ddl.Set("t", Json::Str("ddl"));
    ddl.Set("sql", Json::Str(inputs.ddl));
    ASSERT_TRUE((*journal)->Append(ddl).ok());
    Json csv = Json::MakeObject();
    csv.Set("t", Json::Str("csv"));
    csv.Set("relation", Json::Str(inputs.csvs.front().first));
    csv.Set("fp", Json::Str("00000000000000a1"));  // no such snapshot
    csv.Set("rows", Json::Int(5));
    ASSERT_TRUE((*journal)->Append(csv).ok());
  }

  auto server = MakeServer();
  // Recovery failed for this session — reported, not fatal.
  EXPECT_EQ(server->recovery().sessions_recovered, 0u);
  ASSERT_EQ(server->recovery().errors.size(), 1u);
  EXPECT_NE(server->recovery().errors.front().find("held"),
            std::string::npos);

  // The damaged journal stays on disk for inspection, and its id is NOT
  // handed out to new sessions — that would corrupt the stored history.
  LineClient client(server.get());
  Json create = Command("create");
  create.Set("name", Json::Str("held"));
  std::string id = client.MustCall(std::move(create)).GetString("session");
  EXPECT_NE(id, "held");
}

TEST_F(PersistenceTest, PersistWithoutDataDirIsAStructuredError) {
  Server server;  // in-memory
  LineClient client(&server);
  Json create = Command("create");
  create.Set("name", Json::Str("mem"));
  client.MustCall(std::move(create));
  Json response = client.Call(Command("persist", "mem"));
  EXPECT_FALSE(response.GetBool("ok"));
  server.sessions()->Shutdown();
}

}  // namespace
}  // namespace dbre::service
