#include "sql/executor.h"

#include <gtest/gtest.h>

#include "sql/ddl.h"

namespace dbre::sql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto stats = ExecuteDdlScript(R"(
CREATE TABLE Dept (id INT PRIMARY KEY, name VARCHAR(20), city VARCHAR(20));
CREATE TABLE Emp (no INT PRIMARY KEY, dep INT, salary FLOAT,
                  nick VARCHAR(20));
INSERT INTO Dept VALUES (1, 'eng', 'lyon'), (2, 'ops', 'paris'),
                        (3, 'hr', 'lyon');
INSERT INTO Emp VALUES
  (10, 1, 1000.0, 'ada'),
  (11, 1, 1200.0, 'alan'),
  (12, 2, 900.0, 'grace'),
  (13, NULL, 800.0, NULL);
)",
                                  &db_);
    ASSERT_TRUE(stats.ok()) << stats.status();
  }

  ResultSet Run(const std::string& sql) {
    auto result = ExecuteQuery(db_, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  Database db_;
};

TEST_F(ExecutorTest, SimpleProjection) {
  ResultSet rs = Run("SELECT name FROM Dept");
  EXPECT_EQ(rs.columns, std::vector<std::string>{"name"});
  EXPECT_EQ(rs.NumRows(), 3u);
}

TEST_F(ExecutorTest, StarExpansion) {
  ResultSet rs = Run("SELECT * FROM Dept");
  EXPECT_EQ(rs.columns,
            (std::vector<std::string>{"id", "name", "city"}));
  EXPECT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.rows[0].size(), 3u);
}

TEST_F(ExecutorTest, WhereFilters) {
  ResultSet rs = Run("SELECT no FROM Emp WHERE salary >= 1000.0");
  EXPECT_EQ(rs.NumRows(), 2u);
  rs = Run("SELECT no FROM Emp WHERE salary < 900");
  EXPECT_EQ(rs.NumRows(), 1u);
  rs = Run("SELECT id FROM Dept WHERE name = 'eng'");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  rs = Run("SELECT id FROM Dept WHERE name <> 'eng'");
  EXPECT_EQ(rs.NumRows(), 2u);
}

TEST_F(ExecutorTest, NullComparisonsAreUnknown) {
  // dep = 1 is unknown for the NULL-dep employee: excluded from both the
  // predicate and its negation.
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE dep = 1").NumRows(), 2u);
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE NOT (dep = 1)").NumRows(), 1u);
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE dep IS NULL").NumRows(), 1u);
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE dep IS NOT NULL").NumRows(), 3u);
}

TEST_F(ExecutorTest, JoinViaWhere) {
  ResultSet rs = Run(
      "SELECT e.nick, d.name FROM Emp e, Dept d WHERE e.dep = d.id");
  EXPECT_EQ(rs.NumRows(), 3u);  // NULL dep joins nothing
}

TEST_F(ExecutorTest, JoinOnSyntax) {
  ResultSet via_where = Run(
      "SELECT e.no, d.name FROM Emp e, Dept d WHERE e.dep = d.id");
  ResultSet via_on =
      Run("SELECT e.no, d.name FROM Emp e JOIN Dept d ON e.dep = d.id");
  EXPECT_TRUE(via_where.SameRows(via_on));
}

TEST_F(ExecutorTest, AndOrPrecedence) {
  ResultSet rs = Run(
      "SELECT no FROM Emp WHERE dep = 1 AND salary > 1100 OR nick = "
      "'grace'");
  EXPECT_EQ(rs.NumRows(), 2u);  // alan (1200, dep 1) and grace
}

TEST_F(ExecutorTest, LikePatterns) {
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE nick LIKE 'a%'").NumRows(), 2u);
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE nick LIKE '_race'").NumRows(),
            1u);
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE nick NOT LIKE 'a%'").NumRows(),
            1u);  // grace; NULL nick is unknown
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE nick LIKE '%'").NumRows(), 3u);
}

TEST_F(ExecutorTest, InSubquery) {
  ResultSet rs = Run(
      "SELECT no FROM Emp WHERE dep IN (SELECT id FROM Dept WHERE city = "
      "'lyon')");
  EXPECT_EQ(rs.NumRows(), 2u);
}

TEST_F(ExecutorTest, NotInWithNullSemantics) {
  // dep NOT IN (...) excludes the NULL-dep row (unknown).
  ResultSet rs = Run(
      "SELECT no FROM Emp WHERE dep NOT IN (SELECT id FROM Dept WHERE "
      "city = 'lyon')");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(12));
}

TEST_F(ExecutorTest, CorrelatedExists) {
  ResultSet rs = Run(
      "SELECT d.name FROM Dept d WHERE EXISTS "
      "(SELECT no FROM Emp e WHERE e.dep = d.id)");
  EXPECT_EQ(rs.NumRows(), 2u);  // hr has no employees
  rs = Run(
      "SELECT d.name FROM Dept d WHERE NOT EXISTS "
      "(SELECT no FROM Emp e WHERE e.dep = d.id)");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("hr"));
}

TEST_F(ExecutorTest, Distinct) {
  EXPECT_EQ(Run("SELECT city FROM Dept").NumRows(), 3u);
  EXPECT_EQ(Run("SELECT DISTINCT city FROM Dept").NumRows(), 2u);
}

TEST_F(ExecutorTest, CountStarAndColumn) {
  ResultSet rs = Run("SELECT COUNT(*) FROM Emp");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(4));
  // COUNT(col) skips NULLs.
  rs = Run("SELECT COUNT(dep) FROM Emp");
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
  rs = Run("SELECT COUNT(DISTINCT dep) FROM Emp");
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
  rs = Run("SELECT COUNT(*) FROM Emp WHERE salary > 850");
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
}

TEST_F(ExecutorTest, PaperCountDistinctOperator) {
  auto count = CountDistinct(db_, "Emp", {"dep"});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
  count = CountDistinct(db_, "Emp", {"dep", "salary"});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);  // NULL-dep row excluded
  EXPECT_FALSE(CountDistinct(db_, "Emp", {}).ok());
  EXPECT_FALSE(CountDistinct(db_, "Nope", {"x"}).ok());
}

TEST_F(ExecutorTest, IntersectUnionMinus) {
  ResultSet rs = Run(
      "SELECT city FROM Dept INTERSECT SELECT city FROM Dept WHERE id = 1");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("lyon"));
  rs = Run("SELECT id FROM Dept UNION SELECT no FROM Emp");
  EXPECT_EQ(rs.NumRows(), 7u);
  rs = Run(
      "SELECT city FROM Dept MINUS SELECT city FROM Dept WHERE id = 1");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("paris"));
}

TEST_F(ExecutorTest, HostVariablesActAsNull) {
  EXPECT_EQ(Run("SELECT no FROM Emp WHERE salary > :minsal").NumRows(), 0u);
}

TEST_F(ExecutorTest, SelfJoinWithAliases) {
  ResultSet rs = Run(
      "SELECT a.no, b.no FROM Emp a, Emp b WHERE a.dep = b.dep AND "
      "a.no < b.no");
  ASSERT_EQ(rs.NumRows(), 1u);  // (10, 11)
  EXPECT_EQ(rs.rows[0][0], Value::Int(10));
  EXPECT_EQ(rs.rows[0][1], Value::Int(11));
}

TEST_F(ExecutorTest, ThreeTableJoin) {
  ResultSet rs = Run(
      "SELECT a.nick, b.nick, d.name FROM Emp a, Emp b, Dept d "
      "WHERE a.dep = d.id AND b.dep = d.id AND a.no < b.no");
  ASSERT_EQ(rs.NumRows(), 1u);  // ada & alan, both in eng
  EXPECT_EQ(rs.rows[0][2], Value::Text("eng"));
}

TEST_F(ExecutorTest, NestedInChains) {
  ResultSet rs = Run(
      "SELECT name FROM Dept WHERE id IN "
      "(SELECT dep FROM Emp WHERE no IN "
      "(SELECT no FROM Emp WHERE salary >= 1000))");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("eng"));
}

TEST_F(ExecutorTest, IntersectWithWhereOnBothSides) {
  ResultSet rs = Run(
      "SELECT dep FROM Emp WHERE salary > 950 "
      "INTERSECT "
      "SELECT id FROM Dept WHERE city = 'lyon'");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
}

TEST_F(ExecutorTest, CountOnEmptyResult) {
  ResultSet rs = Run("SELECT COUNT(*) FROM Emp WHERE salary > 100000");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(0));
}

TEST_F(ExecutorTest, QualifiedStarExpansion) {
  ResultSet rs = Run("SELECT d.* FROM Dept d, Emp e WHERE e.dep = d.id");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"id", "name", "city"}));
  EXPECT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.rows[0].size(), 3u);
}

TEST_F(ExecutorTest, ErrorsAreReported) {
  EXPECT_FALSE(ExecuteQuery(db_, "SELECT x FROM Nope").ok());
  EXPECT_FALSE(ExecuteQuery(db_, "SELECT missing FROM Dept").ok());
  // Ambiguous unqualified column (both aliases expose `no`).
  EXPECT_FALSE(
      ExecuteQuery(db_, "SELECT a.no FROM Emp a, Emp b WHERE no = 10").ok());
  // Type mismatch in comparison.
  EXPECT_FALSE(ExecuteQuery(db_, "SELECT no FROM Emp WHERE nick = 3").ok());
  // Mixed aggregate and scalar select list.
  EXPECT_FALSE(ExecuteQuery(db_, "SELECT COUNT(*), no FROM Emp").ok());
  // Set op shape mismatch.
  EXPECT_FALSE(
      ExecuteQuery(db_, "SELECT id, name FROM Dept INTERSECT SELECT id "
                        "FROM Dept")
          .ok());
}

TEST_F(ExecutorTest, MaxIntermediateRowsGuard) {
  ExecutorOptions options;
  options.max_intermediate_rows = 2;
  auto result =
      ExecuteQuery(db_, "SELECT e.no FROM Emp e, Dept d", options);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, ResultSetToStringAligns) {
  ResultSet rs = Run("SELECT id, name FROM Dept WHERE id = 1");
  std::string text = rs.ToString();
  EXPECT_NE(text.find("id | name"), std::string::npos);
  EXPECT_NE(text.find("1  | eng"), std::string::npos);
}

// Cross-check: the executor's COUNT DISTINCT agrees with the algebra
// layer's DistinctCount on the paper-style operator.
TEST_F(ExecutorTest, AgreesWithAlgebraLayer) {
  const Table& emp = **db_.GetTable("Emp");
  for (const char* column : {"no", "dep", "salary", "nick"}) {
    auto via_algebra = emp.DistinctCount(AttributeSet::Single(column));
    auto via_sql = CountDistinct(db_, "Emp", {column});
    ASSERT_TRUE(via_algebra.ok() && via_sql.ok()) << column;
    EXPECT_EQ(*via_algebra, *via_sql) << column;
  }
}

}  // namespace
}  // namespace dbre::sql
