#include "sql/token.h"

#include <gtest/gtest.h>

namespace dbre::sql {
namespace {

std::vector<Token> MustTokenize(std::string_view text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return std::move(tokens).value();
}

TEST(TokenizeTest, EmptyInputGivesEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(TokenizeTest, KeywordsAreCaseInsensitiveAndUppercased) {
  auto tokens = MustTokenize("select From WHERE");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "FROM");
  EXPECT_EQ(tokens[2].text, "WHERE");
}

TEST(TokenizeTest, IdentifiersKeepCase) {
  auto tokens = MustTokenize("HEmployee no");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "HEmployee");
  EXPECT_EQ(tokens[1].text, "no");
}

TEST(TokenizeTest, HyphenatedIdentifiers) {
  // The paper's schema uses zip-code and project-name.
  auto tokens = MustTokenize("zip-code project-name");
  EXPECT_EQ(tokens[0].text, "zip-code");
  EXPECT_EQ(tokens[1].text, "project-name");
}

TEST(TokenizeTest, QuotedIdentifiers) {
  auto tokens = MustTokenize("\"Select\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Select");
}

TEST(TokenizeTest, NumbersIntAndDecimal) {
  auto tokens = MustTokenize("42 3.25");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].type, TokenType::kDecimal);
  EXPECT_EQ(tokens[1].text, "3.25");
}

TEST(TokenizeTest, StringLiteralsWithEscapes) {
  auto tokens = MustTokenize("'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
  EXPECT_FALSE(Tokenize("'open").ok());
}

TEST(TokenizeTest, HostVariables) {
  auto tokens = MustTokenize(":emp_no");
  EXPECT_EQ(tokens[0].type, TokenType::kHostVariable);
  EXPECT_EQ(tokens[0].text, "emp_no");
  EXPECT_FALSE(Tokenize(": ").ok());
}

TEST(TokenizeTest, OperatorsAndPunctuation) {
  auto tokens = MustTokenize("a = b <> c <= d >= e < f > g, (h.i);*");
  std::vector<TokenType> types;
  for (const Token& token : tokens) types.push_back(token.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kIdentifier, TokenType::kEquals,
                       TokenType::kIdentifier, TokenType::kNotEquals,
                       TokenType::kIdentifier, TokenType::kLessEquals,
                       TokenType::kIdentifier, TokenType::kGreaterEquals,
                       TokenType::kIdentifier, TokenType::kLess,
                       TokenType::kIdentifier, TokenType::kGreater,
                       TokenType::kIdentifier, TokenType::kComma,
                       TokenType::kLeftParen, TokenType::kIdentifier,
                       TokenType::kDot, TokenType::kIdentifier,
                       TokenType::kRightParen, TokenType::kSemicolon,
                       TokenType::kStar, TokenType::kEnd}));
}

TEST(TokenizeTest, BangEqualsIsNotEquals) {
  auto tokens = MustTokenize("a != b");
  EXPECT_EQ(tokens[1].type, TokenType::kNotEquals);
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(TokenizeTest, LineCommentsSkipped) {
  auto tokens = MustTokenize("a -- comment with select\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(TokenizeTest, BlockCommentsSkipped) {
  auto tokens = MustTokenize("a /* multi\nline */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_FALSE(Tokenize("/* open").ok());
}

TEST(TokenizeTest, TracksLineNumbers) {
  auto tokens = MustTokenize("a\nb\n  c");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[2].line, 3u);
  EXPECT_EQ(tokens[2].column, 3u);
}

TEST(TokenizeTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a ? b").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(IsKeywordTest, RecognizesSubset) {
  EXPECT_TRUE(IsKeyword("select"));
  EXPECT_TRUE(IsKeyword("INTERSECT"));
  EXPECT_FALSE(IsKeyword("HEmployee"));
}

}  // namespace
}  // namespace dbre::sql
