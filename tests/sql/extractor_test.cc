#include "sql/extractor.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace dbre::sql {
namespace {

std::vector<EquiJoin> Extract(std::string_view query,
                              const ExtractionOptions& options = {},
                              ExtractionStats* stats = nullptr) {
  auto statement = ParseSelect(query);
  EXPECT_TRUE(statement.ok()) << statement.status();
  std::vector<EquiJoin> joins =
      ExtractEquiJoins(**statement, options, stats);
  return CanonicalJoinSet(joins);
}

TEST(ExtractorTest, WhereClauseJoin) {
  auto joins = Extract("SELECT x FROM R r, S s WHERE r.a = s.b");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].ToString(), "R[a] |><| S[b]");
}

TEST(ExtractorTest, MultiAttributeJoinFusesConjuncts) {
  auto joins = Extract(
      "SELECT x FROM R r, S s WHERE r.a = s.u AND r.b = s.v AND r.c = 1");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].arity(), 2u);
  EXPECT_EQ(joins[0].ToString(), "R[a, b] |><| S[u, v]");
}

TEST(ExtractorTest, JoinOnSyntax) {
  auto joins = Extract("SELECT x FROM R r JOIN S s ON r.a = s.b");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].ToString(), "R[a] |><| S[b]");
}

TEST(ExtractorTest, ThreeWayJoinProducesTwoPairs) {
  auto joins = Extract(
      "SELECT x FROM A a, B b, C c WHERE a.k = b.k AND b.j = c.j");
  EXPECT_EQ(joins.size(), 2u);
}

TEST(ExtractorTest, LiteralPredicatesIgnored) {
  auto joins = Extract(
      "SELECT x FROM R r, S s WHERE r.a = 1 AND s.b = 'x' AND r.c = :host");
  EXPECT_TRUE(joins.empty());
}

TEST(ExtractorTest, EqualitiesUnderOrAndNotAreHarvested) {
  auto joins = Extract(
      "SELECT x FROM R r, S s WHERE r.a = s.b OR NOT (r.c = s.d)");
  EXPECT_EQ(joins.size(), 1u);  // both equalities fuse into one pair group
  EXPECT_EQ(joins[0].arity(), 2u);
}

TEST(ExtractorTest, SelfJoinWithAliases) {
  auto joins = Extract("SELECT x FROM Emp e1, Emp e2 WHERE e1.mgr = e2.no");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].left_relation, "Emp");
  EXPECT_EQ(joins[0].right_relation, "Emp");
}

TEST(ExtractorTest, RestrictionWithinOneInstanceSkipped) {
  ExtractionStats stats;
  auto joins = Extract("SELECT x FROM R r WHERE r.a = r.b", {}, &stats);
  EXPECT_TRUE(joins.empty());
  EXPECT_EQ(stats.self_pair_skipped, 1u);
}

TEST(ExtractorTest, InSubqueryJoin) {
  auto joins =
      Extract("SELECT x FROM R WHERE a IN (SELECT b FROM S WHERE c = 1)");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].ToString(), "R[a] |><| S[b]");
}

TEST(ExtractorTest, MultiColumnInSubqueryJoin) {
  auto joins = Extract(
      "SELECT x FROM R WHERE (a, b) IN (SELECT u, v FROM S)");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].arity(), 2u);
  EXPECT_EQ(joins[0].ToString(), "R[a, b] |><| S[u, v]");
}

TEST(ExtractorTest, NestedSubqueryJoinsRecurse) {
  auto joins = Extract(
      "SELECT x FROM R WHERE a IN "
      "(SELECT s.b FROM S s, T t WHERE s.k = t.k)");
  EXPECT_EQ(joins.size(), 2u);  // R-S via IN, S-T inside
}

TEST(ExtractorTest, CorrelatedExistsProducesJoin) {
  auto joins = Extract(
      "SELECT x FROM R r WHERE EXISTS "
      "(SELECT y FROM S s WHERE s.b = r.a)");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].ToString(), "R[a] |><| S[b]");
}

TEST(ExtractorTest, IntersectJoin) {
  auto joins = Extract(
      "SELECT proj FROM Department INTERSECT SELECT proj FROM Assignment");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].ToString(), "Assignment[proj] |><| Department[proj]");
}

TEST(ExtractorTest, MultiColumnIntersectJoin) {
  auto joins =
      Extract("SELECT a, b FROM R INTERSECT SELECT u, v FROM S");
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].arity(), 2u);
}

TEST(ExtractorTest, UnionDoesNotJoin) {
  auto joins = Extract("SELECT a FROM R UNION SELECT b FROM S");
  EXPECT_TRUE(joins.empty());
}

TEST(ExtractorTest, UnresolvedUnqualifiedColumnsCounted) {
  ExtractionStats stats;
  auto joins = Extract("SELECT x FROM R r, S s WHERE a = b", {}, &stats);
  EXPECT_TRUE(joins.empty());
  EXPECT_EQ(stats.unresolved_columns, 1u);
}

TEST(ExtractorTest, CatalogResolvesUnqualifiedColumns) {
  Database catalog;
  RelationSchema r("R");
  ASSERT_TRUE(r.AddAttribute("a", DataType::kInt64).ok());
  ASSERT_TRUE(catalog.CreateRelation(std::move(r)).ok());
  RelationSchema s("S");
  ASSERT_TRUE(s.AddAttribute("b", DataType::kInt64).ok());
  ASSERT_TRUE(catalog.CreateRelation(std::move(s)).ok());

  ExtractionOptions options;
  options.catalog = &catalog;
  auto joins = Extract("SELECT a FROM R, S WHERE a = b", options);
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].ToString(), "R[a] |><| S[b]");
}

TEST(ExtractorTest, AmbiguousCatalogColumnSkipped) {
  Database catalog;
  for (const char* name : {"R", "S"}) {
    RelationSchema schema(name);
    ASSERT_TRUE(schema.AddAttribute("a", DataType::kInt64).ok());
    ASSERT_TRUE(catalog.CreateRelation(std::move(schema)).ok());
  }
  ExtractionOptions options;
  options.catalog = &catalog;
  ExtractionStats stats;
  auto joins = Extract("SELECT x FROM R, S WHERE a = a", options, &stats);
  EXPECT_TRUE(joins.empty());
}

TEST(ExtractorTest, ScriptExtraction) {
  auto joins = ExtractEquiJoinsFromScript(
      "SELECT x FROM R r, S s WHERE r.a = s.b;\n"
      "SELECT y FROM S s, T t WHERE s.c = t.d;");
  ASSERT_TRUE(joins.ok());
  EXPECT_EQ(joins->size(), 2u);
}

TEST(ExtractorTest, DuplicateJoinsAcrossStatementsDeduplicate) {
  auto joins = ExtractEquiJoinsFromScript(
      "SELECT x FROM R r, S s WHERE r.a = s.b;\n"
      "SELECT y FROM S s, R r WHERE s.b = r.a;");
  ASSERT_TRUE(joins.ok());
  EXPECT_EQ(joins->size(), 1u);
}

}  // namespace
}  // namespace dbre::sql
