#include "sql/selection_analysis.h"

#include <gtest/gtest.h>

#include "sql/ddl.h"

namespace dbre::sql {
namespace {

std::vector<std::pair<std::string, std::string>> Corpus() {
  return {
      {"hr1.pc", R"(
void managers(void) {
  EXEC SQL SELECT name FROM Staff WHERE kind = 'M' AND salary > 0;
}
void clerks(void) {
  EXEC SQL SELECT name FROM Staff WHERE kind = 'C';
}
)"},
      {"hr2.pc", R"(
void temps(void) {
  EXEC SQL SELECT s.name FROM Staff s WHERE s.kind = 'T';
}
void lyon_only(void) {
  EXEC SQL SELECT name FROM Staff WHERE city = 'lyon';
}
)"},
  };
}

TEST(SelectionAnalysisTest, FindsDiscriminatorCandidates) {
  auto candidates = AnalyzeSelections(Corpus());
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  ASSERT_EQ(candidates->size(), 1u);  // city has only one constant
  const DiscriminatorCandidate& kind = (*candidates)[0];
  EXPECT_EQ(kind.relation, "Staff");
  EXPECT_EQ(kind.attribute, "kind");
  EXPECT_EQ(kind.constants, (std::vector<std::string>{"C", "M", "T"}));
  EXPECT_EQ(kind.statements, 3u);
  EXPECT_DOUBLE_EQ(kind.value_coverage, -1.0);  // no catalog given
}

TEST(SelectionAnalysisTest, MinConstantsFiltersSingletons) {
  SelectionAnalysisOptions options;
  options.min_constants = 1;
  auto candidates = AnalyzeSelections(Corpus(), options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->size(), 2u);  // city now qualifies
}

TEST(SelectionAnalysisTest, MaxConstantsFiltersWideDomains) {
  SelectionAnalysisOptions options;
  options.max_constants = 2;
  auto candidates = AnalyzeSelections(Corpus(), options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());  // kind has 3 constants
}

TEST(SelectionAnalysisTest, CoverageAgainstExtension) {
  Database db;
  ASSERT_TRUE(ExecuteDdlScript(R"(
CREATE TABLE Staff (id INT PRIMARY KEY, name TEXT, kind CHAR(1),
                    salary FLOAT, city TEXT);
INSERT INTO Staff VALUES
  (1, 'a', 'M', 1.0, 'lyon'), (2, 'b', 'C', 1.0, 'paris'),
  (3, 'c', 'C', 1.0, 'lyon'), (4, 'd', 'T', 1.0, 'paris'),
  (5, 'e', 'X', 1.0, 'lyon');
)",
                               &db)
                  .ok());
  SelectionAnalysisOptions options;
  options.catalog = &db;
  auto candidates = AnalyzeSelections(Corpus(), options);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 1u);
  // 4 of 5 kinds are in {C, M, T}.
  EXPECT_DOUBLE_EQ((*candidates)[0].value_coverage, 0.8);
}

TEST(SelectionAnalysisTest, NumericConstants) {
  std::vector<std::pair<std::string, std::string>> corpus = {
      {"p.pc", "void f(void) { EXEC SQL SELECT x FROM T WHERE status = 1; }"
               "void g(void) { EXEC SQL SELECT x FROM T WHERE status = 2; }"
               "void h(void) { EXEC SQL SELECT x FROM T WHERE 3 = status; }"},
  };
  auto candidates = AnalyzeSelections(corpus);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 1u);
  EXPECT_EQ((*candidates)[0].constants,
            (std::vector<std::string>{"1", "2", "3"}));
}

TEST(SelectionAnalysisTest, SubqueriesAreWalked) {
  std::vector<std::pair<std::string, std::string>> corpus = {
      {"q.sql",
       "SELECT a FROM R WHERE a IN "
       "(SELECT b FROM S WHERE tag = 'x');"
       "SELECT a FROM R WHERE a IN "
       "(SELECT b FROM S WHERE tag = 'y');"},
  };
  auto candidates = AnalyzeSelections(corpus);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 1u);
  EXPECT_EQ((*candidates)[0].relation, "S");
  EXPECT_EQ((*candidates)[0].attribute, "tag");
}

TEST(SelectionAnalysisTest, HostVariablesAreNotConstants) {
  std::vector<std::pair<std::string, std::string>> corpus = {
      {"p.pc", "void f(void) { EXEC SQL SELECT x FROM T "
               "WHERE status = :s AND kind = 'a' AND kind = 'b'; }"},
  };
  auto candidates = AnalyzeSelections(corpus);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 1u);
  EXPECT_EQ((*candidates)[0].attribute, "kind");
}

TEST(SelectionAnalysisTest, ToStringIsReadable) {
  DiscriminatorCandidate candidate;
  candidate.relation = "Staff";
  candidate.attribute = "kind";
  candidate.constants = {"C", "M"};
  candidate.statements = 4;
  candidate.value_coverage = 0.75;
  EXPECT_EQ(candidate.ToString(),
            "Staff.kind in {C, M} (4 statements, covers 75% of values)");
}

}  // namespace
}  // namespace dbre::sql
