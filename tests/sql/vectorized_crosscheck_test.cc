// The executor's batched columnar path must be indistinguishable from the
// tuple-at-a-time reference loop: every query here runs twice — once with
// the fast path enabled, once with ExecutorOptions::disable_vectorized —
// and the ResultSets must match byte-for-byte (column names, row order,
// cell values, including NULLs and signed zeros). Extensions are chosen
// adversarially: NULL-heavy columns, composite join keys, empty tables,
// and row counts straddling the batch size.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "relational/column_batch.h"
#include "relational/database.h"
#include "relational/table.h"
#include "sql/executor.h"

namespace dbre::sql {
namespace {

// Runs `query` through both enumeration paths and requires identical
// outcomes (both the result and the error text).
void Crosscheck(const Database& db, const std::string& query) {
  ExecutorOptions fast;
  ExecutorOptions slow;
  slow.disable_vectorized = true;
  auto with = ExecuteQuery(db, query, fast);
  auto without = ExecuteQuery(db, query, slow);
  ASSERT_EQ(with.ok(), without.ok()) << query;
  if (!with.ok()) {
    EXPECT_EQ(with.status().ToString(), without.status().ToString()) << query;
    return;
  }
  EXPECT_EQ(with->columns, without->columns) << query;
  ASSERT_EQ(with->rows.size(), without->rows.size()) << query;
  for (size_t i = 0; i < with->rows.size(); ++i) {
    EXPECT_EQ(with->rows[i], without->rows[i]) << query << " row " << i;
  }
}

Database MakeDatabase(size_t emp_rows) {
  Database db;
  {
    RelationSchema schema("Dept");
    EXPECT_TRUE(schema.AddAttribute("dep", DataType::kInt64).ok());
    EXPECT_TRUE(schema.AddAttribute("name", DataType::kString).ok());
    EXPECT_TRUE(schema.AddAttribute("floor", DataType::kInt64).ok());
    Table table(std::move(schema));
    for (int d = 0; d < 23; ++d) {
      table.InsertUnchecked({Value::Int(d),
                             d % 5 == 0 ? Value::Null()
                                        : Value::Text("d" + std::to_string(d)),
                             Value::Int(d % 4)});
    }
    EXPECT_TRUE(db.AddTable(std::move(table)).ok());
  }
  {
    RelationSchema schema("Emp");
    EXPECT_TRUE(schema.AddAttribute("no", DataType::kInt64).ok());
    EXPECT_TRUE(schema.AddAttribute("dep", DataType::kInt64).ok());
    EXPECT_TRUE(schema.AddAttribute("name", DataType::kString).ok());
    EXPECT_TRUE(schema.AddAttribute("bonus", DataType::kDouble).ok());
    Table table(std::move(schema));
    for (size_t i = 0; i < emp_rows; ++i) {
      // NULL-heavy dep; names repeat; bonus mixes -0.0/0.0 and NULL.
      Value dep = i % 7 == 3 ? Value::Null()
                             : Value::Int(static_cast<int64_t>(i % 29));
      Value name = i % 11 == 0
                       ? Value::Null()
                       : Value::Text("emp" + std::to_string(i % 13));
      Value bonus = i % 5 == 0   ? Value::Null()
                    : i % 5 == 1 ? Value::Real(-0.0)
                    : i % 5 == 2 ? Value::Real(0.0)
                                 : Value::Real(static_cast<double>(i % 17));
      table.InsertUnchecked(
          {Value::Int(static_cast<int64_t>(i)), dep, name, bonus});
    }
    EXPECT_TRUE(db.AddTable(std::move(table)).ok());
  }
  {
    RelationSchema schema("Void");
    EXPECT_TRUE(schema.AddAttribute("x", DataType::kInt64).ok());
    Table table(std::move(schema));
    EXPECT_TRUE(db.AddTable(std::move(table)).ok());
  }
  return db;
}

const std::vector<std::string> kQueries = {
    // Scans and filters over every supported leaf, Kleene compositions.
    "SELECT * FROM Emp",
    "SELECT no, dep FROM Emp WHERE dep = 4",
    "SELECT no FROM Emp WHERE dep <> 4",
    "SELECT no FROM Emp WHERE dep < 9 AND name = 'emp3'",
    "SELECT no FROM Emp WHERE dep >= 20 OR dep <= 2",
    "SELECT no FROM Emp WHERE NOT (dep > 5)",
    "SELECT no FROM Emp WHERE dep IS NULL",
    "SELECT no, name FROM Emp WHERE name IS NOT NULL AND dep = 1",
    "SELECT no FROM Emp WHERE name LIKE 'emp1%'",
    "SELECT no FROM Emp WHERE name NOT LIKE '%2'",
    "SELECT no FROM Emp WHERE dep BETWEEN 2 AND 5",
    "SELECT no FROM Emp WHERE bonus > 3.5",
    "SELECT no FROM Emp WHERE bonus = 0.0",
    "SELECT no FROM Emp WHERE 1 = 1",
    "SELECT no FROM Emp WHERE 1 = 2",
    "SELECT no FROM Emp WHERE dep = :hostvar",
    // DISTINCT / COUNT funnels over the same enumerations.
    "SELECT DISTINCT dep FROM Emp",
    "SELECT DISTINCT name, dep FROM Emp WHERE dep < 12",
    "SELECT COUNT(*) FROM Emp WHERE dep = 4",
    "SELECT COUNT(name) FROM Emp",
    "SELECT COUNT(DISTINCT name) FROM Emp WHERE dep IS NOT NULL",
    // Joins: equality keys, extra residual filters, both comma and ON
    // syntax, aliases, and a composite (two-pair) key.
    "SELECT Emp.no, Dept.name FROM Emp, Dept WHERE Emp.dep = Dept.dep",
    "SELECT e.no FROM Emp e, Dept d WHERE e.dep = d.dep AND d.floor = 2",
    "SELECT e.no, d.name FROM Emp e JOIN Dept d ON e.dep = d.dep "
    "WHERE e.no < 40",
    "SELECT e.no FROM Emp e, Dept d WHERE e.dep = d.dep AND e.dep = d.floor",
    "SELECT COUNT(*) FROM Emp e, Dept d WHERE e.dep = d.dep",
    // Cross products (no key), with and without per-side filters.
    "SELECT e.no, d.dep FROM Emp e, Dept d WHERE e.no < 3 AND d.dep > 20",
    "SELECT COUNT(*) FROM Dept a, Dept b",
    // Empty tables on either side.
    "SELECT * FROM Void",
    "SELECT * FROM Void WHERE x = 1",
    "SELECT e.no FROM Emp e, Void v WHERE e.no = v.x",
    "SELECT v.x FROM Void v, Dept d WHERE v.x = d.dep",
    // Fallback territory: subqueries, same-table column comparisons,
    // cross-type joins — both paths must agree (the fast path refuses).
    "SELECT no FROM Emp WHERE dep IN (SELECT dep FROM Dept WHERE floor = 1)",
    "SELECT no FROM Emp WHERE EXISTS "
    "(SELECT * FROM Dept WHERE Dept.dep = Emp.dep)",
    "SELECT no FROM Emp WHERE no = dep",
    "SELECT e.no FROM Emp e, Dept d WHERE e.bonus = d.floor",
    // Set operations evaluate each core independently.
    "SELECT dep FROM Emp INTERSECT SELECT dep FROM Dept",
    "SELECT dep FROM Dept MINUS SELECT dep FROM Emp WHERE dep < 5",
    // Errors must match exactly (unknown column, ambiguity, type clash).
    "SELECT nope FROM Emp",
    "SELECT dep FROM Emp, Dept",
    "SELECT no FROM Emp WHERE name = 3",
};

TEST(VectorizedCrosscheckTest, SmallExtension) {
  Database db = MakeDatabase(97);
  for (const std::string& query : kQueries) Crosscheck(db, query);
}

TEST(VectorizedCrosscheckTest, BatchBoundaryExtensions) {
  // kBatchSize−1 / kBatchSize / kBatchSize+1 rows: the partial-final-batch
  // and exact-fit paths of every kernel.
  for (size_t rows : {batch::kBatchSize - 1, batch::kBatchSize,
                      batch::kBatchSize + 1}) {
    Database db = MakeDatabase(rows);
    Crosscheck(db, "SELECT COUNT(*) FROM Emp WHERE dep = 4");
    Crosscheck(db, "SELECT no FROM Emp WHERE dep IS NULL");
    Crosscheck(db, "SELECT COUNT(*) FROM Emp e, Dept d WHERE e.dep = d.dep");
    Crosscheck(db, "SELECT DISTINCT name FROM Emp WHERE dep < 7");
  }
}

TEST(VectorizedCrosscheckTest, MaxIntermediateRowsTripsIdentically) {
  Database db = MakeDatabase(50);
  ExecutorOptions fast;
  fast.max_intermediate_rows = 10;
  ExecutorOptions slow = fast;
  slow.disable_vectorized = true;
  const std::string query = "SELECT no FROM Emp";
  auto with = ExecuteQuery(db, query, fast);
  auto without = ExecuteQuery(db, query, slow);
  ASSERT_FALSE(with.ok());
  ASSERT_FALSE(without.ok());
  EXPECT_EQ(with.status().ToString(), without.status().ToString());
}

TEST(VectorizedCrosscheckTest, FastPathActuallyRuns) {
  Database db = MakeDatabase(60);
  obs::Counter* vectorized = obs::Registry::Default().GetCounter(
      "dbre_executor_paths_total", {{"path", "vectorized"}});
  obs::Counter* fallback = obs::Registry::Default().GetCounter(
      "dbre_executor_paths_total", {{"path", "fallback"}});
  const uint64_t vectorized_before = vectorized->value();
  ASSERT_TRUE(ExecuteQuery(db, "SELECT no FROM Emp WHERE dep = 1").ok());
  EXPECT_EQ(vectorized->value(), vectorized_before + 1);
  const uint64_t fallback_before = fallback->value();
  ASSERT_TRUE(
      ExecuteQuery(db, "SELECT no FROM Emp WHERE no = dep").ok());
  EXPECT_EQ(fallback->value(), fallback_before + 1);
}

TEST(VectorizedCrosscheckTest, CountDistinctAgreesWithSelectDistinct) {
  Database db = MakeDatabase(123);
  for (const std::vector<std::string>& attrs :
       std::vector<std::vector<std::string>>{
           {"dep"}, {"name"}, {"bonus"}, {"dep", "name"}, {"no", "dep"}}) {
    auto via_cache = CountDistinct(db, "Emp", attrs);
    ASSERT_TRUE(via_cache.ok());
    // The SELECT DISTINCT definition, evaluated by hand through the
    // executor (NULL-free rows only), must agree.
    std::string sql = "SELECT DISTINCT ";
    for (size_t i = 0; i < attrs.size(); ++i) {
      sql += (i ? ", " : "") + attrs[i];
    }
    sql += " FROM Emp";
    ExecutorOptions slow;
    slow.disable_vectorized = true;
    auto rows = ExecuteQuery(db, sql, slow);
    ASSERT_TRUE(rows.ok());
    size_t expected = 0;
    for (const ValueVector& row : rows->rows) {
      bool has_null = false;
      for (const Value& v : row) has_null |= v.is_null();
      if (!has_null) ++expected;
    }
    EXPECT_EQ(*via_cache, expected) << sql;
  }
  EXPECT_FALSE(CountDistinct(db, "Emp", {}).ok());
  EXPECT_FALSE(CountDistinct(db, "Nope", {"x"}).ok());
  EXPECT_FALSE(CountDistinct(db, "Emp", {"nope"}).ok());
}

}  // namespace
}  // namespace dbre::sql
