// The DML front end (sql/dml.h): grammar, SQL NULL comparison semantics,
// two-phase parse-validate-then-apply atomicity, and the per-table
// mutation stats the incremental driver keys on.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relational/database.h"
#include "sql/dml.h"

namespace dbre::sql {
namespace {

Database MakeDatabase() {
  Database database;
  RelationSchema emp("emp");
  EXPECT_TRUE(emp.AddAttribute("id", DataType::kInt64, /*not_null=*/true).ok());
  EXPECT_TRUE(emp.AddAttribute("name", DataType::kString).ok());
  EXPECT_TRUE(emp.AddAttribute("dept", DataType::kInt64).ok());
  Table emp_table(emp);
  emp_table.InsertUnchecked({Value::Int(1), Value::Text("ann"), Value::Int(10)});
  emp_table.InsertUnchecked({Value::Int(2), Value::Text("bob"), Value::Int(20)});
  emp_table.InsertUnchecked({Value::Int(3), Value::Null(), Value::Int(10)});
  EXPECT_TRUE(database.AddTable(std::move(emp_table)).ok());

  RelationSchema dept("dept");
  EXPECT_TRUE(dept.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(dept.AddAttribute("title", DataType::kString).ok());
  Table dept_table(dept);
  dept_table.InsertUnchecked({Value::Int(10), Value::Text("eng")});
  EXPECT_TRUE(database.AddTable(std::move(dept_table)).ok());
  return database;
}

const Table& Get(const Database& database, const std::string& name) {
  auto table = database.GetTable(name);
  EXPECT_TRUE(table.ok());
  return **table;
}

TEST(DmlTest, InsertFullArityAndColumnList) {
  Database database = MakeDatabase();
  auto stats = ExecuteDmlScript(
      "INSERT INTO emp VALUES (4, 'carol', 20), (5, 'dave', NULL);"
      "INSERT INTO emp (id, name) VALUES (6, 'erin');",
      &database);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->statements, 2u);
  EXPECT_EQ(stats->rows_inserted, 3u);

  const Table& emp = Get(database, "emp");
  ASSERT_EQ(emp.rows().size(), 6u);
  EXPECT_EQ(emp.rows()[3][1].as_text(), "carol");
  EXPECT_TRUE(emp.rows()[4][2].is_null());
  // Omitted columns default to NULL.
  EXPECT_TRUE(emp.rows()[5][2].is_null());
}

TEST(DmlTest, UpdateWithConjunction) {
  Database database = MakeDatabase();
  auto stats = ExecuteDmlScript(
      "UPDATE emp SET dept = 30, name = 'moved' "
      "WHERE dept = 10 AND id >= 1;",
      &database);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_updated, 2u);
  const Table& emp = Get(database, "emp");
  EXPECT_EQ(emp.rows()[0][2].as_int(), 30);
  EXPECT_EQ(emp.rows()[0][1].as_text(), "moved");
  EXPECT_EQ(emp.rows()[1][2].as_int(), 20);  // dept 20 untouched
}

TEST(DmlTest, DeleteWithoutWhereClearsTable) {
  Database database = MakeDatabase();
  auto stats = ExecuteDmlScript("DELETE FROM dept;", &database);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_deleted, 1u);
  EXPECT_TRUE(Get(database, "dept").rows().empty());
  ASSERT_EQ(stats->tables.size(), 1u);
  EXPECT_TRUE(stats->tables[0].structural);
}

TEST(DmlTest, NullComparisonSemantics) {
  Database database = MakeDatabase();
  // Row 3 has NULL name: `name = ...` and `name != ...` never match it.
  auto eq = ExecuteDmlScript("DELETE FROM emp WHERE name = 'ann';", &database);
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->rows_deleted, 1u);

  auto ne = ExecuteDmlScript("DELETE FROM emp WHERE name != 'zzz';",
                             &database);
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->rows_deleted, 1u);  // only bob; NULL name never matches

  auto is_null =
      ExecuteDmlScript("DELETE FROM emp WHERE name IS NULL;", &database);
  ASSERT_TRUE(is_null.ok());
  EXPECT_EQ(is_null->rows_deleted, 1u);
  EXPECT_TRUE(Get(database, "emp").rows().empty());
}

TEST(DmlTest, IsNotNullAndOrderingOperators) {
  Database database = MakeDatabase();
  auto stats = ExecuteDmlScript(
      "UPDATE emp SET dept = 99 WHERE name IS NOT NULL AND id < 2;"
      "UPDATE emp SET dept = 98 WHERE id > 2 AND id <= 3;",
      &database);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_updated, 2u);
  const Table& emp = Get(database, "emp");
  EXPECT_EQ(emp.rows()[0][2].as_int(), 99);
  EXPECT_EQ(emp.rows()[2][2].as_int(), 98);
}

TEST(DmlTest, ScriptIsAtomicAcrossStatements) {
  Database database = MakeDatabase();
  // Second statement references an unknown column: the whole script must
  // fail at parse and the first statement must NOT have applied.
  auto stats = ExecuteDmlScript(
      "DELETE FROM emp WHERE id = 1;"
      "UPDATE emp SET salary = 5 WHERE id = 2;",
      &database);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(Get(database, "emp").rows().size(), 3u);
}

TEST(DmlTest, ValidationErrors) {
  Database database = MakeDatabase();
  struct Case {
    const char* sql;
    const char* why;
  };
  const Case cases[] = {
      {"INSERT INTO ghost VALUES (1);", "unknown table"},
      {"INSERT INTO emp VALUES (1, 'x');", "too few values"},
      {"INSERT INTO emp VALUES (1, 'x', 2, 3);", "too many values"},
      {"INSERT INTO emp (id, ghost) VALUES (1, 'x');", "unknown column"},
      {"INSERT INTO emp VALUES (NULL, 'x', 1);", "NULL into not-null id"},
      {"INSERT INTO emp VALUES ('text', 'x', 1);", "type mismatch"},
      {"UPDATE emp SET id = NULL;", "NULL into not-null id"},
      {"UPDATE emp SET name = 'a', name = 'b';", "duplicate SET column"},
      {"DELETE FROM emp WHERE ghost = 1;", "unknown WHERE column"},
      {"DELETE FROM emp WHERE id == 1;", "bad operator"},
      {"SELECT * FROM emp;", "not a DML statement"},
  };
  for (const Case& c : cases) {
    auto stats = ExecuteDmlScript(c.sql, &database);
    EXPECT_FALSE(stats.ok()) << c.why << ": " << c.sql;
  }
  // Nothing applied by any of them.
  EXPECT_EQ(Get(database, "emp").rows().size(), 3u);
}

TEST(DmlTest, IncomparableTypesNeverMatch) {
  Database database = MakeDatabase();
  // id is int64; comparing against a string literal parses only if the
  // literal coerces — a plain text literal against an int column is a
  // parse-time type error, not a silent non-match.
  auto stats =
      ExecuteDmlScript("DELETE FROM emp WHERE id = 'one';", &database);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(Get(database, "emp").rows().size(), 3u);
}

TEST(DmlTest, StatsTrackPerTableEffects) {
  Database database = MakeDatabase();
  auto stats = ExecuteDmlScript(
      "INSERT INTO emp VALUES (7, 'gail', 10);"
      "UPDATE emp SET name = 'x' WHERE id = 7;"
      "UPDATE emp SET dept = 11 WHERE id = 7;"
      "DELETE FROM dept WHERE id = 10;",
      &database);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->tables.size(), 2u);  // first-touch order
  const TableMutation& emp = stats->tables[0];
  EXPECT_EQ(emp.table, "emp");
  EXPECT_EQ(emp.inserted, 1u);
  EXPECT_EQ(emp.updated, 2u);
  EXPECT_FALSE(emp.structural);
  // Updated schema columns, sorted unique: name (1) and dept (2).
  EXPECT_EQ(emp.updated_columns, (std::vector<size_t>{1, 2}));
  const TableMutation& dept = stats->tables[1];
  EXPECT_EQ(dept.table, "dept");
  EXPECT_EQ(dept.deleted, 1u);
  EXPECT_TRUE(dept.structural);
}

TEST(DmlTest, ZeroMatchMutationLeavesCacheUntouched) {
  Database database = MakeDatabase();
  auto table = database.GetMutableTable("emp");
  ASSERT_TRUE(table.ok());
  auto cache = (*table)->query_cache();
  ASSERT_TRUE(cache.ok());

  auto stats = ExecuteDmlScript(
      "UPDATE emp SET name = 'never' WHERE id = 999;"
      "DELETE FROM emp WHERE id = 999;",
      &database);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_updated, 0u);
  EXPECT_EQ(stats->rows_deleted, 0u);

  auto after = (*table)->query_cache();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(cache->get(), after->get());  // no invalidation
}

}  // namespace
}  // namespace dbre::sql
