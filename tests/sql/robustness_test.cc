// Robustness sweeps: the front end must never crash and must return
// Status (not garbage) on arbitrary inputs — legacy program corpora are
// full of text that only resembles SQL.
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "sql/ddl.h"
#include "sql/extractor.h"
#include "sql/parser.h"
#include "sql/scanner.h"
#include "sql/token.h"

namespace dbre::sql {
namespace {

// Random strings over a hostile alphabet (quotes, operators, newlines).
class RandomTextTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTextTest, TokenizerNeverCrashes) {
  std::mt19937_64 rng(GetParam());
  const std::string alphabet =
      "abcXYZ019 \t\n'\",.()=<>*;:-_/%SELECTFROMWHERE";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    size_t length = rng() % 120;
    for (size_t i = 0; i < length; ++i) {
      text += alphabet[rng() % alphabet.size()];
    }
    auto tokens = Tokenize(text);  // must not crash; errors are fine
    if (tokens.ok()) {
      EXPECT_FALSE(tokens->empty());
      EXPECT_EQ(tokens->back().type, TokenType::kEnd);
    }
  }
}

TEST_P(RandomTextTest, ParserNeverCrashes) {
  std::mt19937_64 rng(GetParam());
  // Random token soup from plausible SQL words.
  const char* words[] = {"SELECT", "FROM",  "WHERE", "AND", "OR",   "IN",
                         "EXISTS", "(",     ")",     ",",   "=",    "a",
                         "b",      "R",     "S",     "'x'", "42",   ".",
                         "*",      "NOT",   "JOIN",  "ON",  "NULL", "IS",
                         "INTERSECT", ";",  ":h",    "<",   ">",    "LIKE"};
    for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    size_t length = rng() % 24;
    for (size_t i = 0; i < length; ++i) {
      text += words[rng() % (sizeof(words) / sizeof(words[0]))];
      text += ' ';
    }
    auto statement = ParseSelect(text);  // ok or error, never UB
    if (statement.ok()) {
      // Whatever parsed must be re-renderable and re-parseable.
      auto round = ParseSelect((*statement)->ToString());
      EXPECT_TRUE(round.ok()) << text << " -> " << (*statement)->ToString();
    }
    std::vector<Status> errors;
    auto script = ParseScript(text, &errors);
    EXPECT_TRUE(script.ok() || !script.status().message().empty());
  }
}

TEST_P(RandomTextTest, ScannerNeverCrashes) {
  std::mt19937_64 rng(GetParam());
  const std::string alphabet = "abc \"\\\n;EXEC SQL select from end-";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    size_t length = rng() % 200;
    for (size_t i = 0; i < length; ++i) {
      text += alphabet[rng() % alphabet.size()];
    }
    auto statements = ScanProgramText(text);
    for (const EmbeddedStatement& statement : statements) {
      EXPECT_GE(statement.line, 1u);
    }
    // Full front-end over the same garbage.
    std::vector<Status> errors;
    auto joins = BuildQueryJoinSetFromSources({{"junk.pc", text}}, {},
                                              nullptr, &errors);
    EXPECT_TRUE(joins.ok());
  }
}

TEST_P(RandomTextTest, DdlNeverCrashes) {
  std::mt19937_64 rng(GetParam());
  const char* words[] = {"CREATE", "TABLE", "T",      "(",       ")",
                         "INT",    "TEXT",  "UNIQUE", "PRIMARY", "KEY",
                         "NOT",    "NULL",  ",",      ";",       "INSERT",
                         "INTO",   "VALUES", "1",     "'x'",     "a"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    size_t length = rng() % 20;
    for (size_t i = 0; i < length; ++i) {
      text += words[rng() % (sizeof(words) / sizeof(words[0]))];
      text += ' ';
    }
    Database db;
    auto result = ExecuteDdlScript(text, &db);  // ok or clean error
    (void)result;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTextTest,
                         ::testing::Values(7, 77, 777));

TEST(RobustnessTest, DeeplyNestedSubqueries) {
  // 40 levels of IN-nesting must parse (or fail) without stack issues.
  std::string query = "SELECT a FROM R WHERE a IN (";
  for (int i = 0; i < 39; ++i) {
    query += "SELECT a FROM R WHERE a IN (";
  }
  query += "SELECT b FROM S";
  for (int i = 0; i < 40; ++i) query += ")";
  auto statement = ParseSelect(query);
  ASSERT_TRUE(statement.ok()) << statement.status();
  ExtractionStats stats;
  auto joins = ExtractEquiJoins(**statement, {}, &stats);
  EXPECT_EQ(stats.statements, 41u);
}

TEST(RobustnessTest, VeryLongConjunction) {
  std::string query = "SELECT x FROM R r, S s WHERE r.a0 = s.b0";
  for (int i = 1; i < 300; ++i) {
    query += " AND r.a" + std::to_string(i) + " = s.b" + std::to_string(i);
  }
  auto statement = ParseSelect(query);
  ASSERT_TRUE(statement.ok());
  auto joins = ExtractEquiJoins(**statement);
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].arity(), 300u);
}

TEST(RobustnessTest, HugeIdentifiers) {
  std::string name(5000, 'x');
  auto tokens = Tokenize(name);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text.size(), 5000u);
}

}  // namespace
}  // namespace dbre::sql
