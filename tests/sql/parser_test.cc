#include "sql/parser.h"

#include <gtest/gtest.h>

namespace dbre::sql {
namespace {

std::unique_ptr<SelectStatement> MustParse(std::string_view text) {
  auto statement = ParseSelect(text);
  EXPECT_TRUE(statement.ok()) << statement.status();
  return std::move(statement).value();
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = MustParse("SELECT a FROM R");
  ASSERT_EQ(stmt->select_list.size(), 1u);
  EXPECT_EQ(stmt->select_list[0].column.column, "a");
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table, "R");
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, SelectStarAndDistinctAndCount) {
  auto stmt = MustParse("SELECT * FROM R");
  EXPECT_TRUE(stmt->select_list[0].star);
  stmt = MustParse("SELECT DISTINCT a, b FROM R");
  EXPECT_TRUE(stmt->select_distinct);
  EXPECT_EQ(stmt->select_list.size(), 2u);
  stmt = MustParse("SELECT COUNT(DISTINCT a) FROM R");
  EXPECT_TRUE(stmt->select_list[0].count);
  EXPECT_TRUE(stmt->select_list[0].distinct);
  stmt = MustParse("SELECT COUNT(*) FROM R");
  EXPECT_TRUE(stmt->select_list[0].count);
  EXPECT_TRUE(stmt->select_list[0].star);
}

TEST(ParserTest, QualifiedColumnsAndAliases) {
  auto stmt = MustParse("SELECT r.a, s.b FROM R r, S AS s");
  EXPECT_EQ(stmt->select_list[0].column.qualifier, "r");
  EXPECT_EQ(stmt->from[0].alias, "r");
  EXPECT_EQ(stmt->from[1].table, "S");
  EXPECT_EQ(stmt->from[1].alias, "s");
}

TEST(ParserTest, WhereConjunction) {
  auto stmt =
      MustParse("SELECT a FROM R, S WHERE R.a = S.b AND R.c = 3 AND S.d = 'x'");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, Expression::Kind::kAnd);
  EXPECT_EQ(stmt->where->children.size(), 3u);
  EXPECT_EQ(stmt->where->children[0]->kind, Expression::Kind::kComparison);
}

TEST(ParserTest, OrAndParenthesesAndNot) {
  auto stmt = MustParse(
      "SELECT a FROM R WHERE (a = 1 OR b = 2) AND NOT (c = 3)");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, Expression::Kind::kAnd);
  EXPECT_EQ(stmt->where->children[0]->kind, Expression::Kind::kOr);
  EXPECT_EQ(stmt->where->children[1]->kind, Expression::Kind::kNot);
}

TEST(ParserTest, ComparisonOperators) {
  auto stmt = MustParse(
      "SELECT a FROM R WHERE a < 1 AND b <= 2 AND c > 3 AND d >= 4 AND "
      "e <> 5");
  EXPECT_EQ(stmt->where->children.size(), 5u);
}

TEST(ParserTest, HostVariablesInPredicates) {
  auto stmt = MustParse("SELECT a FROM R WHERE a = :emp AND b >= :low");
  EXPECT_EQ(stmt->where->children[0]->rhs.kind,
            Operand::Kind::kHostVariable);
}

TEST(ParserTest, InSubquery) {
  auto stmt =
      MustParse("SELECT a FROM R WHERE a IN (SELECT b FROM S WHERE c = 1)");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, Expression::Kind::kInSubquery);
  ASSERT_NE(stmt->where->subquery, nullptr);
  EXPECT_EQ(stmt->where->subquery->from[0].table, "S");
  EXPECT_FALSE(stmt->where->negated);
}

TEST(ParserTest, NotInSubquery) {
  auto stmt = MustParse("SELECT a FROM R WHERE a NOT IN (SELECT b FROM S)");
  EXPECT_EQ(stmt->where->kind, Expression::Kind::kInSubquery);
  EXPECT_TRUE(stmt->where->negated);
}

TEST(ParserTest, MultiColumnInSubquery) {
  auto stmt = MustParse(
      "SELECT x FROM R WHERE (a, b) IN (SELECT c, d FROM S)");
  EXPECT_EQ(stmt->where->kind, Expression::Kind::kInSubquery);
  EXPECT_EQ(stmt->where->in_columns.size(), 2u);
}

TEST(ParserTest, ExistsAndNotExists) {
  auto stmt = MustParse(
      "SELECT a FROM R WHERE EXISTS (SELECT b FROM S WHERE S.b = R.a)");
  EXPECT_EQ(stmt->where->kind, Expression::Kind::kExists);
  EXPECT_FALSE(stmt->where->negated);
  stmt = MustParse("SELECT a FROM R WHERE NOT EXISTS (SELECT b FROM S)");
  EXPECT_EQ(stmt->where->kind, Expression::Kind::kExists);
  EXPECT_TRUE(stmt->where->negated);
}

TEST(ParserTest, ExplicitJoinSyntax) {
  auto stmt = MustParse(
      "SELECT a.x FROM A a JOIN B b ON a.k = b.k INNER JOIN C c ON b.j = "
      "c.j");
  EXPECT_EQ(stmt->from.size(), 3u);
  EXPECT_EQ(stmt->join_conditions.size(), 2u);
}

TEST(ParserTest, IsNullAndBetweenAndLike) {
  auto stmt = MustParse(
      "SELECT a FROM R WHERE a IS NULL AND b IS NOT NULL AND c BETWEEN 1 "
      "AND 5 AND d LIKE 'x%' AND e NOT LIKE 'y%'");
  EXPECT_EQ(stmt->where->children.size(), 5u);
  EXPECT_EQ(stmt->where->children[0]->kind, Expression::Kind::kIsNull);
  EXPECT_TRUE(stmt->where->children[1]->negated);
  EXPECT_EQ(stmt->where->children[2]->kind, Expression::Kind::kBetween);
  EXPECT_EQ(stmt->where->children[3]->kind, Expression::Kind::kLike);
}

TEST(ParserTest, GroupByHavingOrderByDiscarded) {
  auto stmt = MustParse(
      "SELECT a FROM R WHERE a = 1 GROUP BY a, b HAVING a > 2 "
      "ORDER BY a DESC, b ASC");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->where->kind, Expression::Kind::kComparison);
}

TEST(ParserTest, IntersectChain) {
  auto stmt = MustParse(
      "SELECT proj FROM Department INTERSECT SELECT proj FROM Assignment");
  EXPECT_EQ(stmt->set_op, SelectStatement::SetOp::kIntersect);
  ASSERT_NE(stmt->set_rhs, nullptr);
  EXPECT_EQ(stmt->set_rhs->from[0].table, "Assignment");
}

TEST(ParserTest, UnionAndMinus) {
  auto stmt = MustParse("SELECT a FROM R UNION ALL SELECT b FROM S");
  EXPECT_EQ(stmt->set_op, SelectStatement::SetOp::kUnion);
  stmt = MustParse("SELECT a FROM R MINUS SELECT b FROM S");
  EXPECT_EQ(stmt->set_op, SelectStatement::SetOp::kMinus);
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM R;").ok());
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseSelect("SELECT FROM R").ok());
  EXPECT_FALSE(ParseSelect("SELECT a R").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM R WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM R WHERE a =").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM R 42").ok());
  // "FROM R extra" is a legal aliased table reference, not an error.
  EXPECT_TRUE(ParseSelect("SELECT a FROM R extra").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM R WHERE a IN (1, 2)").ok());
  EXPECT_FALSE(ParseSelect("UPDATE R").ok());
}

TEST(ParserTest, ScriptParsesMultipleStatements) {
  auto statements = ParseScript(
      "SELECT a FROM R; SELECT b FROM S WHERE b = 1;\n-- comment\n"
      "SELECT c FROM T");
  ASSERT_TRUE(statements.ok());
  EXPECT_EQ(statements->size(), 3u);
}

TEST(ParserTest, ScriptRecoversFromBadStatements) {
  std::vector<Status> errors;
  auto statements = ParseScript(
      "SELECT a FROM R; UPDATE R SELECT nonsense; SELECT b FROM S", &errors);
  ASSERT_TRUE(statements.ok());
  EXPECT_EQ(statements->size(), 2u);
  EXPECT_EQ(errors.size(), 1u);
}

TEST(ParserTest, ToStringRoundTripReparses) {
  const char* queries[] = {
      "SELECT a FROM R",
      "SELECT a, b FROM R, S WHERE R.a = S.b AND R.c = 1",
      "SELECT a FROM R WHERE a IN (SELECT b FROM S)",
      "SELECT proj FROM Department INTERSECT SELECT proj FROM Assignment",
  };
  for (const char* query : queries) {
    auto stmt = MustParse(query);
    auto reparsed = ParseSelect(stmt->ToString());
    EXPECT_TRUE(reparsed.ok())
        << query << " → " << stmt->ToString() << ": " << reparsed.status();
  }
}

}  // namespace
}  // namespace dbre::sql
