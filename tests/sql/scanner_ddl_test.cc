#include <gtest/gtest.h>

#include "sql/ddl.h"
#include "sql/scanner.h"

namespace dbre::sql {
namespace {

TEST(ScannerTest, FindsExecSqlBlocks) {
  auto statements = ScanProgramText(R"(
int main() {
  EXEC SQL SELECT a FROM R WHERE a = 1;
  printf("done");
  exec sql SELECT b FROM S;
}
)");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0].text, "SELECT a FROM R WHERE a = 1");
  EXPECT_EQ(statements[1].text, "SELECT b FROM S");
  EXPECT_EQ(statements[0].line, 3u);
}

TEST(ScannerTest, EndExecTerminator) {
  auto statements = ScanProgramText(
      "PROCEDURE DIVISION.\n  EXEC SQL SELECT a FROM R END-EXEC\n");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].text, "SELECT a FROM R");
}

TEST(ScannerTest, FindsStringLiteralQueries) {
  auto statements = ScanProgramText(R"(
const char *q = "SELECT a FROM R WHERE a = 1";
const char *not_sql = "hello world";
)");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].text, "SELECT a FROM R WHERE a = 1");
}

TEST(ScannerTest, ConcatenatedStringLiterals) {
  auto statements = ScanProgramText(
      "const char *q = \"SELECT a FROM R \"\n"
      "                \"WHERE a = 1\";\n");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].text, "SELECT a FROM R WHERE a = 1");
}

TEST(ScannerTest, EscapedQuotesInLiterals) {
  auto statements =
      ScanProgramText(R"(const char *q = "SELECT a FROM R WHERE n = \"x\"";)");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_NE(statements[0].text.find("\"x\""), std::string::npos);
}

TEST(ScannerTest, ExecSqlRequiresWordBoundary) {
  auto statements = ScanProgramText("myEXEC SQLish code;");
  EXPECT_TRUE(statements.empty());
}

TEST(ScannerTest, BuildQueryJoinSetFromSources) {
  std::vector<std::pair<std::string, std::string>> sources = {
      {"app.pc", "void f() { EXEC SQL SELECT x FROM R r, S s "
                 "WHERE r.a = s.b; }"},
      {"report.sql", "SELECT y FROM S s, T t WHERE s.c = t.d;"},
  };
  ExtractionStats stats;
  auto joins = BuildQueryJoinSetFromSources(sources, {}, &stats);
  ASSERT_TRUE(joins.ok()) << joins.status();
  EXPECT_EQ(joins->size(), 2u);
  EXPECT_EQ(stats.joins_extracted, 2u);
}

TEST(ScannerTest, ParseErrorsAreCollectedNotFatal) {
  std::vector<std::pair<std::string, std::string>> sources = {
      {"bad.pc", "void f() { EXEC SQL SELECT FROM nonsense ,,; }"},
      {"good.pc", "void g() { EXEC SQL SELECT x FROM R r, S s "
                  "WHERE r.a = s.b; }"},
  };
  std::vector<Status> errors;
  auto joins = BuildQueryJoinSetFromSources(sources, {}, nullptr, &errors);
  ASSERT_TRUE(joins.ok());
  EXPECT_EQ(joins->size(), 1u);
  EXPECT_FALSE(errors.empty());
}

TEST(ScannerTest, WeightedJoinSetCountsOccurrences) {
  std::vector<std::pair<std::string, std::string>> sources = {
      {"a.pc", "void f() { EXEC SQL SELECT x FROM R r, S s "
               "WHERE r.a = s.b; }\n"
               "void g() { EXEC SQL SELECT y FROM S s, R r "
               "WHERE s.b = r.a; }"},
      {"b.sql", "SELECT x FROM R r, S s WHERE r.a = s.b;\n"
                "SELECT z FROM S s, T t WHERE s.c = t.d;"},
  };
  auto weighted = BuildWeightedJoinSetFromSources(sources);
  ASSERT_TRUE(weighted.ok()) << weighted.status();
  ASSERT_EQ(weighted->size(), 2u);
  // R-S referenced three times, S-T once; descending order.
  EXPECT_EQ((*weighted)[0].join.ToString(), "R[a] |><| S[b]");
  EXPECT_EQ((*weighted)[0].occurrences, 3u);
  EXPECT_EQ((*weighted)[1].occurrences, 1u);
}

TEST(DdlTest, CreateTableWithConstraints) {
  Database database;
  auto stats = ExecuteDdlScript(R"(
CREATE TABLE Person (
  id INT NOT NULL UNIQUE,
  name VARCHAR(40),
  zip CHAR(5) NOT NULL
);
CREATE TABLE Job (
  code INT,
  title TEXT,
  PRIMARY KEY (code),
  UNIQUE (title)
);
)",
                                &database);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->tables_created, 2u);

  const Table& person = **database.GetTable("Person");
  EXPECT_TRUE(person.schema().IsKey(AttributeSet{"id"}));
  EXPECT_EQ(person.schema().NotNullAttributes(),
            (AttributeSet{"id", "zip"}));
  EXPECT_EQ(*person.schema().AttributeType("name"), DataType::kString);

  const Table& job = **database.GetTable("Job");
  EXPECT_EQ(*job.schema().PrimaryKey(), AttributeSet{"code"});
  EXPECT_TRUE(job.schema().IsKey(AttributeSet{"title"}));
}

TEST(DdlTest, TypeMapping) {
  Database database;
  ASSERT_TRUE(ExecuteDdlScript(
                  "CREATE TABLE T (a INTEGER, b NUMBER(8), c NUMBER(8,2), "
                  "d FLOAT, e BOOLEAN, f DATE, g VARCHAR2(10));",
                  &database)
                  .ok());
  const RelationSchema& schema = (**database.GetTable("T")).schema();
  EXPECT_EQ(*schema.AttributeType("a"), DataType::kInt64);
  EXPECT_EQ(*schema.AttributeType("b"), DataType::kInt64);
  EXPECT_EQ(*schema.AttributeType("c"), DataType::kDouble);
  EXPECT_EQ(*schema.AttributeType("d"), DataType::kDouble);
  EXPECT_EQ(*schema.AttributeType("e"), DataType::kBool);
  EXPECT_EQ(*schema.AttributeType("f"), DataType::kString);
  EXPECT_EQ(*schema.AttributeType("g"), DataType::kString);
}

TEST(DdlTest, InsertRows) {
  Database database;
  auto stats = ExecuteDdlScript(R"(
CREATE TABLE T (id INT PRIMARY KEY, name VARCHAR(20), score FLOAT);
INSERT INTO T VALUES (1, 'alice', 3.5), (2, 'bob', NULL);
INSERT INTO T (name, id) VALUES ('carol', 3);
)",
                                &database);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows_inserted, 3u);
  const Table& t = **database.GetTable("T");
  EXPECT_EQ(t.row(0)[1], Value::Text("alice"));
  EXPECT_TRUE(t.row(1)[2].is_null());
  EXPECT_EQ(t.row(2)[0], Value::Int(3));
  EXPECT_TRUE(t.row(2)[2].is_null());  // omitted column defaults to NULL
}

TEST(DdlTest, InsertValidation) {
  Database database;
  ASSERT_TRUE(
      ExecuteDdlScript("CREATE TABLE T (id INT PRIMARY KEY);", &database)
          .ok());
  // NULL into key column rejected by the table layer.
  EXPECT_FALSE(
      ExecuteDdlScript("INSERT INTO T VALUES (NULL);", &database).ok());
  // Unknown table.
  EXPECT_FALSE(
      ExecuteDdlScript("INSERT INTO Nope VALUES (1);", &database).ok());
  // Arity mismatch.
  EXPECT_FALSE(
      ExecuteDdlScript("INSERT INTO T VALUES (1, 2);", &database).ok());
}

TEST(DdlTest, RejectsMalformedDdl) {
  Database database;
  EXPECT_FALSE(ExecuteDdlScript("CREATE TABLE (x INT);", &database).ok());
  EXPECT_FALSE(ExecuteDdlScript("CREATE TABLE T (x BLOB);", &database).ok());
  EXPECT_FALSE(ExecuteDdlScript("DROP TABLE T;", &database).ok());
  EXPECT_FALSE(ExecuteDdlScript(
                   "CREATE TABLE T (a INT, PRIMARY KEY (a), PRIMARY KEY (a));",
                   &database)
                   .ok());
}

TEST(DdlTest, PaperSchemaViaDdl) {
  Database database;
  auto stats = ExecuteDdlScript(R"(
CREATE TABLE Person (
  id INT, name VARCHAR(30), street VARCHAR(30), number INT,
  zip-code CHAR(8), state VARCHAR(20),
  UNIQUE (id)
);
CREATE TABLE HEmployee (no INT, date DATE, salary NUMBER(8,2),
                        UNIQUE (no, date));
)",
                                &database);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE((**database.GetTable("Person"))
                  .schema()
                  .HasAttribute("zip-code"));
  EXPECT_TRUE((**database.GetTable("HEmployee"))
                  .schema()
                  .IsKey(AttributeSet{"date", "no"}));
}

}  // namespace
}  // namespace dbre::sql
