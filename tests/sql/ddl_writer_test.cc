#include "sql/ddl_writer.h"

#include <gtest/gtest.h>

#include "sql/ddl.h"
#include "workload/paper_example.h"

namespace dbre::sql {
namespace {

Database MakeDatabase() {
  Database db;
  auto stats = ExecuteDdlScript(R"(
CREATE TABLE T (
  id INT NOT NULL,
  label TEXT,
  ratio FLOAT,
  flag BOOLEAN,
  PRIMARY KEY (id),
  UNIQUE (label)
);
INSERT INTO T VALUES (1, 'it''s', 0.5, TRUE), (2, 'two', NULL, FALSE);
)",
                                &db);
  EXPECT_TRUE(stats.ok()) << stats.status();
  return db;
}

TEST(DdlWriterTest, CreateTableMentionsEverything) {
  Database db = MakeDatabase();
  std::string ddl = WriteCreateTable((**db.GetTable("T")).schema());
  EXPECT_NE(ddl.find("CREATE TABLE T ("), std::string::npos);
  EXPECT_NE(ddl.find("id INT NOT NULL"), std::string::npos);
  EXPECT_NE(ddl.find("label TEXT"), std::string::npos);
  EXPECT_NE(ddl.find("ratio FLOAT"), std::string::npos);
  EXPECT_NE(ddl.find("flag BOOLEAN"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY (id)"), std::string::npos);
  EXPECT_NE(ddl.find("UNIQUE (label)"), std::string::npos);
}

TEST(DdlWriterTest, SchemaRoundTrips) {
  Database db = MakeDatabase();
  std::string ddl = WriteDdl(db);
  Database reloaded;
  auto stats = ExecuteDdlScript(ddl, &reloaded);
  ASSERT_TRUE(stats.ok()) << stats.status() << "\n" << ddl;
  const RelationSchema& original = (**db.GetTable("T")).schema();
  const RelationSchema& round = (**reloaded.GetTable("T")).schema();
  ASSERT_EQ(round.arity(), original.arity());
  for (size_t i = 0; i < original.arity(); ++i) {
    EXPECT_EQ(round.attributes()[i].name, original.attributes()[i].name);
    EXPECT_EQ(round.attributes()[i].type, original.attributes()[i].type);
  }
  EXPECT_EQ(round.unique_constraints(), original.unique_constraints());
  EXPECT_EQ(round.NotNullAttributes(), original.NotNullAttributes());
}

TEST(DdlWriterTest, DataRoundTrips) {
  Database db = MakeDatabase();
  DdlWriterOptions options;
  options.include_inserts = true;
  std::string ddl = WriteDdl(db, options);
  Database reloaded;
  auto stats = ExecuteDdlScript(ddl, &reloaded);
  ASSERT_TRUE(stats.ok()) << stats.status() << "\n" << ddl;
  const Table& original = **db.GetTable("T");
  const Table& round = **reloaded.GetTable("T");
  ASSERT_EQ(round.num_rows(), original.num_rows());
  for (size_t i = 0; i < original.num_rows(); ++i) {
    EXPECT_EQ(round.row(i), original.row(i)) << "row " << i;
  }
}

TEST(DdlWriterTest, InsertBatching) {
  Database db;
  RelationSchema schema("N");
  ASSERT_TRUE(schema.AddAttribute("v", DataType::kInt64).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  Table* table = *db.GetMutableTable("N");
  for (int64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(table->Insert({Value::Int(i)}).ok());
  }
  std::string inserts = WriteInserts(*table, /*batch_size=*/3);
  // 7 rows in batches of 3 → 3 INSERT statements.
  size_t count = 0;
  for (size_t pos = 0;
       (pos = inserts.find("INSERT INTO N", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(DdlWriterTest, EmptyTableYieldsNoInserts) {
  Database db;
  RelationSchema schema("E");
  ASSERT_TRUE(schema.AddAttribute("v", DataType::kInt64).ok());
  ASSERT_TRUE(db.CreateRelation(std::move(schema)).ok());
  EXPECT_TRUE(WriteInserts(**db.GetTable("E")).empty());
}

// The paper's whole database (hyphenated identifiers, doubles, NULLs,
// 2400-row tables) survives a full DDL+INSERT round trip.
TEST(DdlWriterTest, PaperDatabaseRoundTrips) {
  auto db = workload::BuildPaperDatabase();
  ASSERT_TRUE(db.ok());
  DdlWriterOptions options;
  options.include_inserts = true;
  options.insert_batch_size = 500;
  std::string ddl = WriteDdl(*db, options);
  Database reloaded;
  auto stats = ExecuteDdlScript(ddl, &reloaded);
  ASSERT_TRUE(stats.ok()) << stats.status();
  for (const std::string& relation : db->RelationNames()) {
    const Table& original = **db->GetTable(relation);
    const Table& round = **reloaded.GetTable(relation);
    ASSERT_EQ(round.num_rows(), original.num_rows()) << relation;
    EXPECT_EQ(round.rows(), original.rows()) << relation;
  }
  EXPECT_TRUE(reloaded.VerifyDeclaredConstraints().ok());
}

}  // namespace
}  // namespace dbre::sql
