#include "store/snapshot.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "relational/extension_registry.h"
#include "relational/table.h"
#include "store/crc32c.h"

namespace dbre::store {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dbre_snapshot_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

Table MixedTable(int rows) {
  RelationSchema schema("orders");
  EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("city", DataType::kString).ok());
  EXPECT_TRUE(schema.AddAttribute("weight", DataType::kDouble).ok());
  EXPECT_TRUE(schema.AddAttribute("express", DataType::kBool).ok());
  Table table(schema);
  const char* cities[] = {"paris", "namur", "liège"};
  for (int i = 0; i < rows; ++i) {
    ValueVector row;
    row.push_back(Value::Int(i));
    row.push_back(i % 7 == 3 ? Value::Null() : Value::Text(cities[i % 3]));
    row.push_back(Value::Real(i * 0.5));
    row.push_back(i % 5 == 0 ? Value::Null() : Value::Boolean(i % 2 == 0));
    table.InsertUnchecked(std::move(row));
  }
  return table;
}

TEST(Crc32cTest, KnownAnswers) {
  // RFC 3720 test vector for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // Incremental == one-shot.
  uint32_t crc = Crc32c(0, "12345", 5);
  EXPECT_EQ(Crc32c(crc, "6789", 4), 0xE3069283u);
}

TEST_F(SnapshotTest, RoundTripsSchemaRowsAndFingerprint) {
  Table table = MixedTable(123);
  auto written = WriteSnapshot(table, Path("orders.snap"));
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written->rows, 123u);
  EXPECT_EQ(written->columns, 4u);
  EXPECT_EQ(written->relation, "orders");
  EXPECT_EQ(written->fingerprint,
            ExtensionRegistry::ComputeFingerprint(table));

  auto loaded = LoadSnapshot(Path("orders.snap"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, written->fingerprint);
  EXPECT_EQ(loaded->schema.name(), "orders");
  ASSERT_EQ(loaded->rows->size(), table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ((*loaded->rows)[i], table.row(i)) << "row " << i;
  }
}

TEST_F(SnapshotTest, RestoredTableRecomputesTheSameFingerprint) {
  Table table = MixedTable(64);
  auto written = WriteSnapshot(table, Path("t.snap"));
  ASSERT_TRUE(written.ok());
  auto loaded = LoadSnapshot(Path("t.snap"));
  ASSERT_TRUE(loaded.ok());

  Table restored(loaded->schema);
  ASSERT_TRUE(restored.AdoptExtension(loaded->rows).ok());
  // The footer fingerprint is not just stored — it is the same value a
  // fresh hash of the restored rows produces.
  EXPECT_EQ(ExtensionRegistry::ComputeFingerprint(restored),
            written->fingerprint);
}

TEST_F(SnapshotTest, EmptyExtensionRoundTrips) {
  Table table = MixedTable(0);
  ASSERT_TRUE(WriteSnapshot(table, Path("empty.snap")).ok());
  auto loaded = LoadSnapshot(Path("empty.snap"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->rows->empty());
}

TEST_F(SnapshotTest, ReadSnapshotInfoMatchesWriterWithoutDecoding) {
  Table table = MixedTable(50);
  auto written = WriteSnapshot(table, Path("info.snap"));
  ASSERT_TRUE(written.ok());
  auto info = ReadSnapshotInfo(Path("info.snap"));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->fingerprint, written->fingerprint);
  EXPECT_EQ(info->rows, 50u);
  EXPECT_EQ(info->columns, 4u);
  EXPECT_EQ(info->relation, "orders");
  EXPECT_EQ(info->file_bytes, fs::file_size(Path("info.snap")));
}

TEST_F(SnapshotTest, DetectsCorruptionAnywhere) {
  Table table = MixedTable(80);
  ASSERT_TRUE(WriteSnapshot(table, Path("good.snap")).ok());
  std::string bytes;
  {
    std::ifstream in(Path("good.snap"), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  // Flip one byte at several depths of the file: header, schema blob,
  // a column page in the middle, and the footer. Every flip must surface
  // as a structured error, never as wrong rows.
  for (size_t offset : {size_t{3}, size_t{25}, bytes.size() / 2,
                        bytes.size() - 10}) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    std::ofstream out(Path("bad.snap"), std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    auto loaded = LoadSnapshot(Path("bad.snap"));
    EXPECT_FALSE(loaded.ok()) << "flip at offset " << offset;
  }
}

TEST_F(SnapshotTest, TruncatedFileIsAnErrorNotACrash) {
  Table table = MixedTable(60);
  ASSERT_TRUE(WriteSnapshot(table, Path("whole.snap")).ok());
  std::string bytes;
  {
    std::ifstream in(Path("whole.snap"), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (size_t keep : {size_t{0}, size_t{4}, size_t{19}, bytes.size() / 3,
                      bytes.size() - 1}) {
    std::ofstream out(Path("cut.snap"), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(LoadSnapshot(Path("cut.snap")).ok()) << "kept " << keep;
    EXPECT_FALSE(ReadSnapshotInfo(Path("cut.snap")).ok()) << "kept " << keep;
  }
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_FALSE(LoadSnapshot(Path("nowhere.snap")).ok());
  EXPECT_FALSE(ReadSnapshotInfo(Path("nowhere.snap")).ok());
}

TEST_F(SnapshotTest, WriteLeavesNoTempFileBehind) {
  Table table = MixedTable(10);
  ASSERT_TRUE(WriteSnapshot(table, Path("clean.snap")).ok());
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // just clean.snap — the .tmp was renamed away
}

}  // namespace
}  // namespace dbre::store
