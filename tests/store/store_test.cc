#include "store/store.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "relational/extension_registry.h"
#include "relational/table.h"

namespace dbre::store {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("dbre_store_test_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

Table SmallTable(const std::string& name, int first) {
  RelationSchema schema(name);
  EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("label", DataType::kString).ok());
  Table table(schema);
  for (int i = 0; i < 10; ++i) {
    table.InsertUnchecked(
        {Value::Int(first + i), Value::Text("v" + std::to_string(i))});
  }
  return table;
}

TEST(SessionIdEscapingTest, RoundTripsHostileIds) {
  const std::string ids[] = {
      "plain",  "with space", "../../../etc/passwd", "a/b\\c",
      "%41",    "",           "dots..and..%",        "日本語",
  };
  for (const std::string& id : ids) {
    std::string escaped = EscapeSessionId(id);
    EXPECT_EQ(UnescapeSessionId(escaped), id) << "id: " << id;
    // The escaped form is a single safe path component.
    EXPECT_EQ(escaped.find('/'), std::string::npos);
    EXPECT_EQ(escaped.find('\\'), std::string::npos);
    EXPECT_EQ(escaped.find(".."), std::string::npos);
    EXPECT_FALSE(escaped.empty());
  }
  EXPECT_EQ(EscapeSessionId("safe_name-1"), "safe_name-1");
}

TEST_F(StoreTest, SnapshotsAreContentAddressedAndShared) {
  auto store = Store::Open(root_.string());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  Table table = SmallTable("R", 1);
  auto first = (*store)->PutSnapshot(table);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE((*store)->HasSnapshot(first->fingerprint));

  // Same content again: no second file, same fingerprint.
  Table twin = SmallTable("R", 1);
  auto second = (*store)->PutSnapshot(twin);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->fingerprint, first->fingerprint);
  size_t snapshot_files = 0;
  for (const auto& entry :
       fs::directory_iterator(root_ / "snapshots")) {
    (void)entry;
    ++snapshot_files;
  }
  EXPECT_EQ(snapshot_files, 1u);

  auto loaded = (*store)->LoadSnapshot(first->fingerprint);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows->size(), 10u);
  EXPECT_EQ(loaded->fingerprint, first->fingerprint);

  EXPECT_FALSE((*store)->LoadSnapshot(first->fingerprint + 1).ok());
}

TEST_F(StoreTest, SessionJournalLifecycle) {
  auto store = Store::Open(root_.string());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->HasSessionJournal("alpha"));
  EXPECT_TRUE((*store)->ListSessionIds().empty());

  {
    auto journal = (*store)->OpenSessionJournal("alpha");
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    service::Json record = service::Json::MakeObject();
    record.Set("t", service::Json::Str("create"));
    ASSERT_TRUE((*journal)->Append(record).ok());
  }
  {
    auto journal = (*store)->OpenSessionJournal("beta/../evil");
    ASSERT_TRUE(journal.ok());
  }
  EXPECT_TRUE((*store)->HasSessionJournal("alpha"));
  EXPECT_TRUE((*store)->HasSessionJournal("beta/../evil"));
  // The hostile id stayed inside the sessions dir, escaped.
  EXPECT_FALSE(fs::exists(root_ / "evil"));

  auto ids = (*store)->ListSessionIds();
  ASSERT_EQ(ids.size(), 2u);  // sorted, unescaped
  EXPECT_EQ(ids[0], "alpha");
  EXPECT_EQ(ids[1], "beta/../evil");

  auto replay = (*store)->ReadSessionJournal("alpha");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 1u);

  ASSERT_TRUE((*store)->RemoveSession("alpha").ok());
  EXPECT_FALSE((*store)->HasSessionJournal("alpha"));
  ASSERT_TRUE((*store)->RemoveSession("beta/../evil").ok());
  EXPECT_TRUE((*store)->ListSessionIds().empty());
}

TEST_F(StoreTest, ReopeningAnExistingRootKeepsData) {
  uint64_t fingerprint = 0;
  {
    auto store = Store::Open(root_.string());
    ASSERT_TRUE(store.ok());
    auto info = (*store)->PutSnapshot(SmallTable("R", 7));
    ASSERT_TRUE(info.ok());
    fingerprint = info->fingerprint;
  }
  auto reopened = Store::Open(root_.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->HasSnapshot(fingerprint));
  auto loaded = (*reopened)->LoadSnapshot(fingerprint);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows->size(), 10u);
}

}  // namespace
}  // namespace dbre::store
