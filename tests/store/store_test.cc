#include "store/store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relational/extension_registry.h"
#include "relational/table.h"

namespace dbre::store {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("dbre_store_test_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

Table SmallTable(const std::string& name, int first) {
  RelationSchema schema(name);
  EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("label", DataType::kString).ok());
  Table table(schema);
  for (int i = 0; i < 10; ++i) {
    table.InsertUnchecked(
        {Value::Int(first + i), Value::Text("v" + std::to_string(i))});
  }
  return table;
}

TEST(SessionIdEscapingTest, RoundTripsHostileIds) {
  const std::string ids[] = {
      "plain",  "with space", "../../../etc/passwd", "a/b\\c",
      "%41",    "",           "dots..and..%",        "日本語",
  };
  for (const std::string& id : ids) {
    std::string escaped = EscapeSessionId(id);
    EXPECT_EQ(UnescapeSessionId(escaped), id) << "id: " << id;
    // The escaped form is a single safe path component.
    EXPECT_EQ(escaped.find('/'), std::string::npos);
    EXPECT_EQ(escaped.find('\\'), std::string::npos);
    EXPECT_EQ(escaped.find(".."), std::string::npos);
    EXPECT_FALSE(escaped.empty());
  }
  EXPECT_EQ(EscapeSessionId("safe_name-1"), "safe_name-1");
}

TEST_F(StoreTest, SnapshotsAreContentAddressedAndShared) {
  auto store = Store::Open(root_.string());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  Table table = SmallTable("R", 1);
  auto first = (*store)->PutSnapshot(table);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE((*store)->HasSnapshot(first->fingerprint));

  // Same content again: no second file, same fingerprint.
  Table twin = SmallTable("R", 1);
  auto second = (*store)->PutSnapshot(twin);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->fingerprint, first->fingerprint);
  size_t snapshot_files = 0;
  for (const auto& entry :
       fs::directory_iterator(root_ / "snapshots")) {
    (void)entry;
    ++snapshot_files;
  }
  EXPECT_EQ(snapshot_files, 1u);

  auto loaded = (*store)->LoadSnapshot(first->fingerprint);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows->size(), 10u);
  EXPECT_EQ(loaded->fingerprint, first->fingerprint);

  EXPECT_FALSE((*store)->LoadSnapshot(first->fingerprint + 1).ok());
}

TEST_F(StoreTest, SessionJournalLifecycle) {
  auto store = Store::Open(root_.string());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->HasSessionJournal("alpha"));
  EXPECT_TRUE((*store)->ListSessionIds().empty());

  {
    auto journal = (*store)->OpenSessionJournal("alpha");
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    service::Json record = service::Json::MakeObject();
    record.Set("t", service::Json::Str("create"));
    ASSERT_TRUE((*journal)->Append(record).ok());
  }
  {
    auto journal = (*store)->OpenSessionJournal("beta/../evil");
    ASSERT_TRUE(journal.ok());
  }
  EXPECT_TRUE((*store)->HasSessionJournal("alpha"));
  EXPECT_TRUE((*store)->HasSessionJournal("beta/../evil"));
  // The hostile id stayed inside the sessions dir, escaped.
  EXPECT_FALSE(fs::exists(root_ / "evil"));

  auto ids = (*store)->ListSessionIds();
  ASSERT_EQ(ids.size(), 2u);  // sorted, unescaped
  EXPECT_EQ(ids[0], "alpha");
  EXPECT_EQ(ids[1], "beta/../evil");

  auto replay = (*store)->ReadSessionJournal("alpha");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 1u);

  ASSERT_TRUE((*store)->RemoveSession("alpha").ok());
  EXPECT_FALSE((*store)->HasSessionJournal("alpha"));
  ASSERT_TRUE((*store)->RemoveSession("beta/../evil").ok());
  EXPECT_TRUE((*store)->ListSessionIds().empty());
}

TEST_F(StoreTest, CorruptSnapshotIsQuarantinedOnLoad) {
  auto store = Store::Open(root_.string());
  ASSERT_TRUE(store.ok());
  auto info = (*store)->PutSnapshot(SmallTable("R", 1));
  ASSERT_TRUE(info.ok());
  std::string path = (*store)->SnapshotPath(info->fingerprint);

  // Flip a byte mid-file: the CRC no longer matches.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }

  auto loaded = (*store)->LoadSnapshot(info->fingerprint);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("quarantined"), std::string::npos)
      << loaded.status().ToString();

  // The corpse moved out of the way...
  EXPECT_FALSE(fs::exists(path));
  size_t quarantined = 0;
  for (const auto& entry :
       fs::directory_iterator(root_ / "quarantine" / "snapshots")) {
    (void)entry;
    ++quarantined;
  }
  EXPECT_EQ(quarantined, 1u);

  // ...so the same extension persists cleanly again.
  auto again = (*store)->PutSnapshot(SmallTable("R", 1));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->fingerprint, info->fingerprint);
  EXPECT_TRUE((*store)->LoadSnapshot(info->fingerprint).ok());
}

TEST_F(StoreTest, QuarantineSnapshotOfMissingFileIsNotFound) {
  auto store = Store::Open(root_.string());
  ASSERT_TRUE(store.ok());
  auto moved = (*store)->QuarantineSnapshot(0xdeadbeefu);
  ASSERT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, QuarantineJournalCorruptionKeepsTheValidPrefix) {
  StoreOptions options;
  options.journal.max_segment_bytes = 128;  // force several segments
  auto store = Store::Open(root_.string(), options);
  ASSERT_TRUE(store.ok());
  {
    auto journal = (*store)->OpenSessionJournal("victim");
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 20; ++i) {
      service::Json record = service::Json::MakeObject();
      record.Set("t", service::Json::Str("test"));
      record.Set("n", service::Json::Int(i));
      ASSERT_TRUE((*journal)->Append(record).ok());
    }
  }

  // Damage the SECOND segment's tail so replay reports mid-stream
  // corruption with a valid prefix in that segment.
  fs::path sessions = root_ / "sessions" / "victim";
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(sessions)) {
    segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GT(segments.size(), 2u);
  fs::resize_file(segments[1], fs::file_size(segments[1]) - 4);

  auto replay = (*store)->ReadSessionJournal("victim");
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay->corrupt);
  size_t valid_before = replay->records.size();
  ASSERT_GT(valid_before, 0u);

  size_t moved = 0;
  ASSERT_TRUE((*store)
                  ->QuarantineJournalCorruption("victim",
                                                replay->corrupt_segment,
                                                replay->corrupt_valid_end,
                                                &moved)
                  .ok());
  EXPECT_GT(moved, 0u);

  // The quarantine dir holds the set-aside pieces.
  size_t quarantined_files = 0;
  for (const auto& entry : fs::directory_iterator(
           root_ / "quarantine" / "sessions" / "victim")) {
    (void)entry;
    ++quarantined_files;
  }
  EXPECT_EQ(quarantined_files, moved);

  // Replay is now clean and keeps exactly the valid prefix; the journal
  // reopens and appends after it.
  auto after = (*store)->ReadSessionJournal("victim");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->corrupt);
  EXPECT_EQ(after->dropped, 0u);
  EXPECT_EQ(after->records.size(), valid_before);

  auto reopened = (*store)->OpenSessionJournal("victim");
  ASSERT_TRUE(reopened.ok());
  service::Json record = service::Json::MakeObject();
  record.Set("t", service::Json::Str("resumed"));
  ASSERT_TRUE((*reopened)->Append(record).ok());
  auto final_replay = (*store)->ReadSessionJournal("victim");
  ASSERT_TRUE(final_replay.ok());
  EXPECT_EQ(final_replay->records.size(), valid_before + 1);
}

TEST_F(StoreTest, OwnershipClaimReleaseRoundTrips) {
  auto store = Store::Open(root_.string());
  ASSERT_TRUE(store.ok());
  // Unknown or unowned session: no owner.
  auto owner = (*store)->SessionOwner("nobody");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "");

  ASSERT_TRUE((*store)->ClaimSession("s1", "worker-a").ok());
  owner = (*store)->SessionOwner("s1");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "worker-a");

  // A claim is a takeover: the last writer wins (migration hands a
  // session from one worker to the next this way).
  ASSERT_TRUE((*store)->ClaimSession("s1", "worker-b").ok());
  owner = (*store)->SessionOwner("s1");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "worker-b");

  ASSERT_TRUE((*store)->ReleaseSession("s1").ok());
  owner = (*store)->SessionOwner("s1");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "");
  // Releasing an unowned session is a no-op, not an error.
  EXPECT_TRUE((*store)->ReleaseSession("s1").ok());
}

TEST_F(StoreTest, OwnershipSurvivesReopenAndLeavesJournalAlone) {
  {
    auto store = Store::Open(root_.string());
    ASSERT_TRUE(store.ok());
    auto journal = (*store)->OpenSessionJournal("owned");
    ASSERT_TRUE(journal.ok());
    service::Json record = service::Json::MakeObject();
    record.Set("t", service::Json::Str("x"));
    ASSERT_TRUE((*journal)->Append(record).ok());
    ASSERT_TRUE((*store)->ClaimSession("owned", "worker-a").ok());
  }
  auto reopened = Store::Open(root_.string());
  ASSERT_TRUE(reopened.ok());
  auto owner = (*reopened)->SessionOwner("owned");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "worker-a");
  // The OWNER marker must not be mistaken for a journal segment.
  auto replay = (*reopened)->ReadSessionJournal("owned");
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->corrupt);
  EXPECT_EQ(replay->records.size(), 1u);
}

TEST_F(StoreTest, ReopeningAnExistingRootKeepsData) {
  uint64_t fingerprint = 0;
  {
    auto store = Store::Open(root_.string());
    ASSERT_TRUE(store.ok());
    auto info = (*store)->PutSnapshot(SmallTable("R", 7));
    ASSERT_TRUE(info.ok());
    fingerprint = info->fingerprint;
  }
  auto reopened = Store::Open(root_.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->HasSnapshot(fingerprint));
  auto loaded = (*reopened)->LoadSnapshot(fingerprint);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows->size(), 10u);
}

}  // namespace
}  // namespace dbre::store
