#include "store/journal.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "service/json.h"

namespace dbre::store {
namespace {

namespace fs = std::filesystem;
using service::Json;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("dbre_journal_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    Failpoints::Instance().DisarmAll();
    fs::remove_all(dir_);
  }

  std::string Dir() const { return dir_.string(); }

  std::vector<fs::path> Segments() const {
    std::vector<fs::path> segments;
    if (!fs::exists(dir_)) return segments;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      segments.push_back(entry.path());
    }
    std::sort(segments.begin(), segments.end());
    return segments;
  }

  fs::path dir_;
};

Json Record(int n) {
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("test"));
  record.Set("n", Json::Int(n));
  return record;
}

TEST_F(JournalTest, AppendedRecordsReplayInOrder) {
  {
    auto journal = Journal::Open(Dir());
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
    EXPECT_EQ((*journal)->stats().records, 20u);
  }
  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->dropped, 0u);
  ASSERT_EQ(replay->records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(replay->records[static_cast<size_t>(i)].GetInt("n"), i);
  }
}

TEST_F(JournalTest, MissingDirectoryIsAnEmptyReplay) {
  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->segments, 0u);
}

TEST_F(JournalTest, SegmentsRotateAtTheConfiguredSize) {
  JournalOptions options;
  options.max_segment_bytes = 256;  // tiny: force several rotations
  auto journal = Journal::Open(Dir(), options);
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*journal)->Append(Record(i)).ok());
  }
  EXPECT_GT(Segments().size(), 2u);
  for (const fs::path& segment : Segments()) {
    EXPECT_LE(fs::file_size(segment), 256u + 64u);  // one record of slack
  }

  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 40u);
  EXPECT_EQ(replay->segments, Segments().size());
  EXPECT_EQ(replay->records.back().GetInt("n"), 39);
}

TEST_F(JournalTest, ReopenResumesAppendingWhereItStopped) {
  {
    auto journal = Journal::Open(Dir());
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
  }
  {
    auto journal = Journal::Open(Dir());
    ASSERT_TRUE(journal.ok());
    for (int i = 5; i < 10; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
  }
  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(replay->records[static_cast<size_t>(i)].GetInt("n"), i);
  }
}

TEST_F(JournalTest, TornTailIsDroppedOnReadAndTruncatedOnOpen) {
  {
    auto journal = Journal::Open(Dir());
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
  }
  // Simulate a crash mid-write: append half of a valid record line.
  std::string torn = EncodeJournalLine(Record(8));
  torn.resize(torn.size() / 2);
  auto segments = Segments();
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream out(segments[0], std::ios::binary | std::ios::app);
    out << torn;
  }

  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 8u);
  EXPECT_EQ(replay->dropped, 1u);

  // Re-opening truncates the torn bytes, and appending after that yields a
  // fully clean journal again.
  size_t torn_size = fs::file_size(segments[0]);
  {
    auto journal = Journal::Open(Dir());
    ASSERT_TRUE(journal.ok());
    EXPECT_LT(fs::file_size(segments[0]), torn_size);
    ASSERT_TRUE((*journal)->Append(Record(8)).ok());
  }
  replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->dropped, 0u);
  ASSERT_EQ(replay->records.size(), 9u);
  EXPECT_EQ(replay->records.back().GetInt("n"), 8);
}

TEST_F(JournalTest, BitFlippedRecordInvalidatesItselfAndTheTail) {
  {
    auto journal = Journal::Open(Dir());
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
  }
  auto segments = Segments();
  ASSERT_EQ(segments.size(), 1u);
  // Corrupt record 3 (not the last): its checksum fails, and everything
  // after it is untrusted — a journal is only valid up to its first tear.
  std::string bytes;
  {
    std::ifstream in(segments[0], std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  size_t line = 0, offset = 0;
  for (size_t i = 0; i < bytes.size() && offset == 0; ++i) {
    if (line == 3 && bytes[i] == '3') offset = i;  // record 3's "n":3 digit
    if (bytes[i] == '\n') ++line;
  }
  ASSERT_GT(offset, 0u);
  bytes[offset] = '4';  // still valid JSON — only the checksum disagrees
  {
    std::ofstream out(segments[0], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 3u);  // records 0..2 survive
  EXPECT_EQ(replay->dropped, 3u);         // 3 (corrupt), 4, 5
  // Valid records after a bad one is real corruption, not a torn tail.
  EXPECT_TRUE(replay->corrupt);
  EXPECT_EQ(replay->corrupt_segment, 1u);
  EXPECT_GT(replay->corrupt_valid_end, 0u);
}

TEST_F(JournalTest, TornTailIsNotClassifiedAsCorrupt) {
  {
    auto journal = Journal::Open(Dir());
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
  }
  std::string torn = EncodeJournalLine(Record(4));
  torn.resize(torn.size() - 3);
  auto segments = Segments();
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream out(segments[0], std::ios::binary | std::ios::app);
    out << torn;
  }
  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->dropped, 1u);
  EXPECT_FALSE(replay->corrupt);  // trailing garbage in the final segment
}

TEST_F(JournalTest, DropInANonFinalSegmentIsCorrupt) {
  JournalOptions options;
  options.max_segment_bytes = 128;  // force several segments
  {
    auto journal = Journal::Open(Dir(), options);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
  }
  auto segments = Segments();
  ASSERT_GT(segments.size(), 2u);
  // Chop the tail off the FIRST segment: even with no valid record after
  // the cut inside that file, a later segment exists, so this cannot be a
  // benign crash tail.
  size_t size = fs::file_size(segments[0]);
  fs::resize_file(segments[0], size - 4);

  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->corrupt);
  EXPECT_EQ(replay->corrupt_segment, 1u);
  EXPECT_GT(replay->dropped, 0u);
}

TEST_F(JournalTest, InjectedWriteErrorsAreRetriedWithoutGarbage) {
  Failpoints::Instance().Arm("journal.append.write", "error*2");
  JournalOptions options;
  options.retry.initial_backoff_ms = 0;
  options.retry.max_backoff_ms = 0;
  auto journal = Journal::Open(Dir(), options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(Record(0)).ok());
  EXPECT_GE((*journal)->stats().retries, 2u);
  ASSERT_TRUE((*journal)->Append(Record(1)).ok());

  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->dropped, 0u);
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1].GetInt("n"), 1);
}

TEST_F(JournalTest, TornWriteIsRepairedBetweenAttempts) {
  // First attempt writes only 5 bytes of the line and fails; the retry
  // must truncate those 5 bytes away before writing the full line, or the
  // segment would hold mid-stream garbage.
  Failpoints::Instance().Arm("journal.append.write", "torn(5)*1");
  JournalOptions options;
  options.retry.initial_backoff_ms = 0;
  options.retry.max_backoff_ms = 0;
  auto journal = Journal::Open(Dir(), options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(Record(0)).ok());

  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->dropped, 0u);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_FALSE(replay->corrupt);
}

TEST_F(JournalTest, TornWriteOnReopenedTailIsRepairedAtTheRightOffset) {
  // The tail segment reopened by Open() must behave exactly like a
  // freshly rotated one under the truncate-and-retry repair. Without
  // O_APPEND on the reopened fd, the torn write advances the file offset
  // past the truncation point and the retried write lands there, leaving
  // a NUL-filled gap mid-segment.
  {
    auto journal = Journal::Open(Dir());
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
  }
  Failpoints::Instance().Arm("journal.append.write", "torn(5)*1");
  JournalOptions options;
  options.retry.initial_backoff_ms = 0;
  options.retry.max_backoff_ms = 0;
  auto journal = Journal::Open(Dir(), options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(Record(3)).ok());
  ASSERT_TRUE((*journal)->Close().ok());

  auto segments = Segments();
  ASSERT_EQ(segments.size(), 1u);
  std::ifstream in(segments.front(), std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content.find('\0'), std::string::npos)
      << "repair left a NUL-filled gap in the segment";

  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->dropped, 0u);
  EXPECT_FALSE(replay->corrupt);
  ASSERT_EQ(replay->records.size(), 4u);
  EXPECT_EQ(replay->records.back().GetInt("n"), 3);
}

TEST_F(JournalTest, PersistentWriteFailureSurfacesAfterRetries) {
  Failpoints::Instance().Arm("journal.append.write", "error");
  JournalOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 0;
  options.retry.max_backoff_ms = 0;
  auto journal = Journal::Open(Dir(), options);
  ASSERT_TRUE(journal.ok());
  Status status = (*journal)->Append(Record(0));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_GE((*journal)->stats().retries, 2u);
  Failpoints::Instance().DisarmAll();
  // The failed append left nothing behind; the journal still works.
  ASSERT_TRUE((*journal)->Append(Record(1)).ok());
  auto replay = ReadJournal(Dir());
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].GetInt("n"), 1);
  EXPECT_EQ(replay->dropped, 0u);
}

TEST_F(JournalTest, FsyncFailuresAreCountedAndPropagated) {
  JournalOptions options;
  options.fsync_batch = 1;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0;
  options.retry.max_backoff_ms = 0;
  auto journal = Journal::Open(Dir(), options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(Record(0)).ok());
  Failpoints::Instance().Arm("journal.fsync", "error");
  Status status = (*journal)->Append(Record(1));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_GE((*journal)->stats().fsync_failures, 2u);  // both attempts
  Failpoints::Instance().DisarmAll();
  // Close propagates a clean fsync now that the disk "recovered".
  EXPECT_TRUE((*journal)->Close().ok());
}

TEST_F(JournalTest, EncodeJournalLineChecksumCoversThePayload) {
  std::string line = EncodeJournalLine(Record(7));
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  auto parsed = Json::Parse(line.substr(0, line.size() - 1));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("c").size(), 8u);  // %08x
  ASSERT_NE(parsed->Find("r"), nullptr);
  EXPECT_EQ(parsed->Find("r")->GetInt("n"), 7);
}

TEST_F(JournalTest, SyncBatchingCountsSyncs) {
  JournalOptions every;
  every.fsync_batch = 1;
  {
    auto journal = Journal::Open(Dir() + "_every", every);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
    EXPECT_GE((*journal)->stats().syncs, 4u);
  }
  JournalOptions never;
  never.fsync_batch = 0;
  {
    auto journal = Journal::Open(Dir() + "_never", never);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*journal)->Append(Record(i)).ok());
    }
    EXPECT_EQ((*journal)->stats().syncs, 0u);
    ASSERT_TRUE((*journal)->Sync().ok());  // explicit sync still works
    EXPECT_EQ((*journal)->stats().syncs, 1u);
  }
  fs::remove_all(Dir() + "_every");
  fs::remove_all(Dir() + "_never");
}

}  // namespace
}  // namespace dbre::store
