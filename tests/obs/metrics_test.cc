// Unit coverage for the observability subsystem: metric cells, Prometheus
// rendering, the slow-op log, trace spans, and the guarantee that pipeline
// counters agree with the pipeline's own report.
#include "obs/metrics.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "obs/trace.h"
#include "workload/paper_example.h"

namespace dbre::obs {
namespace {

TEST(ObsMetricsTest, CounterAndGaugeCellsAreStable) {
  Registry registry;
  Counter* counter = registry.GetCounter("dbre_test_total", {}, "help");
  counter->Add();
  counter->Add(4);
  EXPECT_EQ(counter->value(), 5u);
  // Same (name, labels) yields the same cell; different labels a new one.
  EXPECT_EQ(registry.GetCounter("dbre_test_total"), counter);
  Counter* labeled =
      registry.GetCounter("dbre_test_total", {{"kind", "other"}});
  EXPECT_NE(labeled, counter);
  EXPECT_EQ(labeled->value(), 0u);

  Gauge* gauge = registry.GetGauge("dbre_test_level");
  gauge->Set(7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 4);
  EXPECT_EQ(registry.GetGauge("dbre_test_level"), gauge);
}

TEST(ObsMetricsTest, HistogramBucketsByLog2) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // Values past the last bucket boundary land in the final bucket.
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);

  Histogram histogram;
  for (uint64_t v : {0u, 1u, 3u, 100u, 100u}) histogram.Observe(v);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 204u);
  EXPECT_EQ(histogram.bucket(0), 1u);   // 0
  EXPECT_EQ(histogram.bucket(1), 1u);   // 1
  EXPECT_EQ(histogram.bucket(2), 1u);   // 3
  EXPECT_EQ(histogram.bucket(7), 2u);   // 100 twice: [64, 128)
  // The rank truncates: 0.5 * 5 observations targets rank 2 (value 1).
  EXPECT_EQ(histogram.ApproxQuantile(0.5), 1u);
  EXPECT_EQ(histogram.ApproxQuantile(1.0), 127u);
}

TEST(ObsMetricsTest, ObserveIsThreadSafe) {
  Registry registry;
  Counter* counter = registry.GetCounter("dbre_threads_total");
  Histogram* histogram = registry.GetHistogram("dbre_threads_us");
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        counter->Add();
        histogram->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter->value(), 80'000u);
  EXPECT_EQ(histogram->count(), 80'000u);
}

TEST(ObsMetricsTest, RenderPrometheusFormat) {
  Registry registry;
  registry.GetCounter("dbre_runs_total", {{"phase", "ind"}}, "Run count")
      ->Add(3);
  registry.GetGauge("dbre_live", {}, "Live things")->Set(2);
  Histogram* histogram =
      registry.GetHistogram("dbre_wait_us", {}, "Wait time");
  histogram->Observe(0);
  histogram->Observe(5);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP dbre_runs_total Run count\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dbre_runs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbre_runs_total{phase=\"ind\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dbre_live gauge\n"), std::string::npos);
  EXPECT_NE(text.find("dbre_live 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dbre_wait_us histogram\n"), std::string::npos);
  // Buckets are cumulative: the le="7" bucket includes both observations.
  EXPECT_NE(text.find("dbre_wait_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbre_wait_us_bucket{le=\"7\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbre_wait_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbre_wait_us_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("dbre_wait_us_count 2\n"), std::string::npos);
}

TEST(ObsMetricsTest, SlowOpLogRespectsThresholdAndCapacity) {
  SlowOpLog log(/*capacity=*/2);
  // Disabled by default: nothing records.
  EXPECT_FALSE(log.MaybeRecord("op", 1'000'000));
  EXPECT_EQ(log.total(), 0u);

  log.set_threshold_us(500);
  EXPECT_FALSE(log.MaybeRecord("fast", 499));
  EXPECT_TRUE(log.MaybeRecord("slow_a", 500, "first"));
  EXPECT_TRUE(log.MaybeRecord("slow_b", 900));
  EXPECT_TRUE(log.MaybeRecord("slow_c", 700));
  EXPECT_EQ(log.total(), 3u);

  // Capacity 2 keeps only the most recent two, oldest first.
  std::vector<SlowOp> ops = log.Snapshot();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op, "slow_b");
  EXPECT_EQ(ops[1].op, "slow_c");
  EXPECT_EQ(ops[1].duration_us, 700);
  EXPECT_GT(ops[1].at_unix_us, 0);
}

TEST(ObsMetricsTest, TraceRingBoundsHistoryAndCountsDrops) {
  TraceRing ring(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    ring.Record({"span_" + std::to_string(i), "", 0, i});
  }
  std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "span_2");
  EXPECT_EQ(spans[2].name, "span_4");
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(ObsMetricsTest, TraceSpanFansOutToEverySink) {
  TraceRing ring(8);
  Histogram histogram;
  SlowOpLog slow_ops;
  slow_ops.set_threshold_us(1);  // everything measurable is "slow"

  int64_t duration = 0;
  {
    TraceSpan span("unit:op", &ring, &histogram, &slow_ops);
    span.set_detail("ctx");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    duration = span.Finish();
    // Finish is idempotent: the destructor must not double-record.
  }
  EXPECT_GE(duration, 1'000);

  std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit:op");
  EXPECT_EQ(spans[0].detail, "ctx");
  EXPECT_EQ(spans[0].duration_us, duration);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.sum(), static_cast<uint64_t>(duration));
  ASSERT_EQ(slow_ops.Snapshot().size(), 1u);
  EXPECT_EQ(slow_ops.Snapshot()[0].op, "unit:op");
}

TEST(ObsMetricsTest, NullSinkSpanIsHarmless) {
  TraceSpan span("noop");
  EXPECT_GE(span.Finish(), 0);
  EXPECT_EQ(span.Finish(), span.Finish());  // idempotent, same duration
}

// The contract the `metrics` command relies on: counters incremented inside
// RunPipeline agree exactly with the pipeline's own report.
TEST(ObsMetricsTest, PipelineCountersMatchReport) {
  auto db = workload::BuildPaperDatabase();
  ASSERT_TRUE(db.ok()) << db.status();

  Registry& registry = Registry::Default();
  Counter* fd_tests = registry.GetCounter("dbre_rhs_fd_tests_total");
  Counter* ext_queries =
      registry.GetCounter("dbre_ind_extension_queries_total");
  Counter* runs = registry.GetCounter("dbre_pipeline_runs_total");
  Counter* completed =
      registry.GetCounter("dbre_pipeline_runs_completed_total");
  const uint64_t fd_before = fd_tests->value();
  const uint64_t ext_before = ext_queries->value();
  const uint64_t runs_before = runs->value();
  const uint64_t completed_before = completed->value();

  auto oracle = workload::PaperOracle();
  TraceRing trace(64);
  PipelineOptions options;
  options.trace = &trace;
  auto report =
      RunPipeline(*db, workload::PaperJoinSet(), oracle.get(), options);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(fd_tests->value() - fd_before, report->rhs.fd_checks);
  EXPECT_EQ(ext_queries->value() - ext_before,
            report->ind.extension_queries);
  EXPECT_EQ(runs->value() - runs_before, 1u);
  EXPECT_EQ(completed->value() - completed_before, 1u);
  EXPECT_GT(report->rhs.fd_checks, 0u);

  // Every phase left a span in the caller-supplied ring, and the span
  // durations are the report timings.
  std::vector<SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "pipeline:ind_discovery");
  EXPECT_EQ(spans[1].name, "pipeline:lhs_discovery");
  EXPECT_EQ(spans[2].name, "pipeline:rhs_discovery");
  EXPECT_EQ(spans[3].name, "pipeline:restruct");
  EXPECT_EQ(spans[4].name, "pipeline:translate");
  EXPECT_EQ(spans[2].duration_us, report->timings.rhs_discovery_us);

  // Phase histograms in the default registry saw the run too.
  Histogram* rhs_histogram = registry.GetHistogram(
      "dbre_pipeline_phase_us", {{"phase", "rhs_discovery"}});
  EXPECT_GE(rhs_histogram->count(), 1u);
}

}  // namespace
}  // namespace dbre::obs
