#include "cluster/event_loop.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/service_transport.h"
#include "paper_session_util.h"
#include "service/server.h"
#include "service/transport.h"

namespace dbre::cluster {
namespace {

using service::SocketChannel;
using service::TcpConnect;

std::unique_ptr<SocketChannel> Connect(uint16_t port) {
  auto channel = TcpConnect("127.0.0.1", port);
  EXPECT_TRUE(channel.ok()) << channel.status().ToString();
  return channel.ok() ? std::move(*channel) : nullptr;
}

TEST(EventLoopTest, EchoesOneLine) {
  EventLoopServer loop(
      [](uint64_t, const std::string& line) { return "echo:" + line; });
  ASSERT_TRUE(loop.Start(0).ok());
  auto channel = Connect(loop.port());
  ASSERT_NE(channel, nullptr);
  ASSERT_TRUE(channel->WriteLine("hello").ok());
  auto line = channel->ReadLine();
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "echo:hello");
  loop.Stop();
}

TEST(EventLoopTest, PipelinedRequestsAnswerInOrder) {
  EventLoopServer loop(
      [](uint64_t, const std::string& line) { return line; });
  ASSERT_TRUE(loop.Start(0).ok());
  auto channel = Connect(loop.port());
  ASSERT_NE(channel, nullptr);
  const int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(channel->WriteLine("r" + std::to_string(i)).ok());
  }
  for (int i = 0; i < kRequests; ++i) {
    auto line = channel->ReadLine();
    ASSERT_TRUE(line.ok()) << i;
    EXPECT_EQ(*line, "r" + std::to_string(i));
  }
  loop.Stop();
}

TEST(EventLoopTest, BackpressureBoundsPipelineWithoutLosingRequests) {
  // A tiny pipeline cap forces read-side pauses; every request must still
  // be answered, in order, once the client starts draining. The handler is
  // gated shut while the client floods so inflight provably exceeds the
  // cap — without the gate a fast handler could drain as lines arrive and
  // the pause would be a timing accident.
  EventLoopOptions options;
  options.max_pipelined_requests = 4;
  std::atomic<bool> release{false};
  EventLoopServer loop(
      [&](uint64_t, const std::string& line) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return line;
      },
      options);
  ASSERT_TRUE(loop.Start(0).ok());
  auto channel = Connect(loop.port());
  ASSERT_NE(channel, nullptr);
  const int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(channel->WriteLine("p" + std::to_string(i)).ok());
  }
  // With the handler blocked, dispatched-but-unanswered lines accumulate
  // until the loop must pause reading this connection.
  for (int i = 0; i < 500 && loop.stats().backpressure_pauses == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(loop.stats().backpressure_pauses, 0u);
  release = true;
  for (int i = 0; i < kRequests; ++i) {
    auto line = channel->ReadLine();
    ASSERT_TRUE(line.ok()) << i;
    EXPECT_EQ(*line, "p" + std::to_string(i));
  }
  loop.Stop();
}

TEST(EventLoopTest, ConnectionsExecuteConcurrently) {
  // One connection parks inside its handler; another must still get
  // served — the loop thread never runs handlers itself.
  std::atomic<bool> release{false};
  EventLoopServer loop([&](uint64_t, const std::string& line) {
    if (line == "block") {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return std::string("unblocked");
    }
    return std::string("fast");
  });
  ASSERT_TRUE(loop.Start(0).ok());
  auto blocked = Connect(loop.port());
  auto quick = Connect(loop.port());
  ASSERT_NE(blocked, nullptr);
  ASSERT_NE(quick, nullptr);
  ASSERT_TRUE(blocked->WriteLine("block").ok());
  ASSERT_TRUE(quick->WriteLine("ping").ok());
  auto fast = quick->ReadLine();
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*fast, "fast");
  release = true;
  auto slow = blocked->ReadLine();
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(*slow, "unblocked");
  loop.Stop();
}

TEST(EventLoopTest, OverlongLineClosesTheConnection) {
  EventLoopOptions options;
  options.max_line_bytes = 128;
  EventLoopServer loop(
      [](uint64_t, const std::string& line) { return line; }, options);
  ASSERT_TRUE(loop.Start(0).ok());
  auto channel = Connect(loop.port());
  ASSERT_NE(channel, nullptr);
  ASSERT_TRUE(channel->WriteLine(std::string(4096, 'x')).ok());
  // The transport drops the connection rather than buffering without
  // bound; the client sees EOF (or a reset, depending on timing).
  auto line = channel->ReadLine();
  EXPECT_FALSE(line.ok());
  // The loop itself survives: a fresh connection still works.
  auto next = Connect(loop.port());
  ASSERT_NE(next, nullptr);
  ASSERT_TRUE(next->WriteLine("ok").ok());
  auto echoed = next->ReadLine();
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, "ok");
  EXPECT_GE(loop.stats().overlong_lines, 1u);
  loop.Stop();
}

TEST(EventLoopTest, CloseHandlerSeesEveryConnection) {
  std::atomic<int> closed{0};
  EventLoopServer loop(
      [](uint64_t, const std::string& line) { return line; });
  loop.set_close_handler([&](uint64_t) { closed.fetch_add(1); });
  ASSERT_TRUE(loop.Start(0).ok());
  {
    auto a = Connect(loop.port());
    auto b = Connect(loop.port());
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(a->WriteLine("x").ok());
    ASSERT_TRUE(a->ReadLine().ok());
  }  // both sockets close
  for (int i = 0; i < 200 && closed.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(closed.load(), 2);
  loop.Stop();
}

TEST(EventLoopTest, StatsCountTraffic) {
  EventLoopServer loop(
      [](uint64_t, const std::string& line) { return line; });
  ASSERT_TRUE(loop.Start(0).ok());
  auto channel = Connect(loop.port());
  ASSERT_NE(channel, nullptr);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel->WriteLine("x").ok());
    ASSERT_TRUE(channel->ReadLine().ok());
  }
  EventLoopStats stats = loop.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.responses, 5u);
  EXPECT_EQ(stats.connections, 1u);
  loop.Stop();
  EXPECT_EQ(loop.stats().connections, 0u);
}

// --- The transport glue: a real dbred Server behind the event loop. ---

TEST(EventLoopTransportTest, ServesTheProtocolAndShutdownFlushes) {
  service::Server server;
  EventLoopTransport transport(&server);
  ASSERT_TRUE(transport.Start(0).ok());

  service::Client client(transport.port());
  service::Json created = client.MustCall(service::Command("create"));
  std::string session = created.GetString("session");
  EXPECT_FALSE(session.empty());
  service::Json status =
      client.MustCall(service::Command("status", session));
  EXPECT_EQ(status.GetString("state"), "idle");

  // `shutdown` must answer before the socket dies (two-phase stop).
  service::Json bye = client.MustCall(service::Command("shutdown"));
  EXPECT_TRUE(bye.GetBool("bye"));
  transport.WaitUntilShutdown();
  transport.Stop();
  server.sessions()->Shutdown();
}

TEST(EventLoopTransportTest, ManyConcurrentClients) {
  service::Server server;
  EventLoopTransport transport(&server);
  ASSERT_TRUE(transport.Start(0).ok());
  const int kClients = 16;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto channel = TcpConnect("127.0.0.1", transport.port());
      if (!channel.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 20; ++i) {
        service::Json request = service::Command("sessions");
        request.Set("id", service::Json::Int(c * 100 + i));
        if (!(*channel)->WriteLine(request.Dump()).ok() ||
            !(*channel)->ReadLine().ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(transport.stats().requests, 16u * 20u);
  transport.Stop();
  server.sessions()->Shutdown();
}

}  // namespace
}  // namespace dbre::cluster
