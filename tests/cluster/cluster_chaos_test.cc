// Cluster chaos: SIGKILL a real dbre_serve worker while the router is
// live and a session is mid-flight. The router must mark the worker dead,
// fail the session over to the survivor by replaying its journal, and the
// finished session's report must be byte-identical to the uninterrupted
// reference — the cluster-level version of the kill/restart acceptance
// test.
#include <filesystem>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "cluster_test_util.h"

namespace dbre::cluster {
namespace {

namespace fs = std::filesystem;

using service::Client;
using service::Command;
using service::Json;

fs::path TempDir(const std::string& stem) {
  fs::path dir =
      fs::temp_directory_path() /
      (stem + "_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  return dir;
}

RouterOptions FastFailoverOptions() {
  RouterOptions options;
  // Keep probes quick so a dead worker costs milliseconds, not the
  // default multi-second reconnect budget.
  options.connect_deadline_ms = 300;
  options.health_interval_ms = 100;
  return options;
}

struct ChaosFixture {
  fs::path data_dir;
  ServeProcess workers[2];
  std::unique_ptr<Router> router;

  explicit ChaosFixture(const std::string& stem) {
    data_dir = TempDir(stem);
    workers[0] = StartServeWorker("w1", data_dir.string());
    workers[1] = StartServeWorker("w2", data_dir.string());
    router = std::make_unique<Router>(
        std::vector<RouterWorkerConfig>{
            {"w1", "127.0.0.1", workers[0].port},
            {"w2", "127.0.0.1", workers[1].port}},
        FastFailoverOptions());
    EXPECT_TRUE(router->Start(0).ok());
  }

  ~ChaosFixture() {
    if (router != nullptr) router->Stop();
    // Kill survivors before removing the data dir they write to.
    for (ServeProcess& worker : workers) {
      if (worker.pid > 0) {
        kill(worker.pid, SIGKILL);
        waitpid(worker.pid, nullptr, 0);
        worker.pid = -1;
      }
    }
    fs::remove_all(data_dir);
  }

  // SIGKILLs the worker currently serving `session`, returning its id.
  std::string KillOwnerOf(const std::string& session) {
    std::string owner = router->Lookup(session);
    EXPECT_FALSE(owner.empty());
    ServeProcess& victim = owner == "w1" ? workers[0] : workers[1];
    victim.KillHard();
    return owner;
  }
};

// Seed 1: kill mid-question — the run is suspended on an unanswered
// expert question when its worker dies.
TEST(ClusterChaosTest, WorkerKilledMidQuestionFailsOverByteIdentically) {
  const std::string reference = service::ReferenceReport();
  const service::PaperInputs inputs = service::BuildPaperInputs();
  const size_t total = CountPaperQuestions(inputs);
  ASSERT_GE(total, 2u);

  ChaosFixture fixture("dbre_chaos_midq");
  Client client(fixture.router->port());
  Json create = Command("create");
  create.Set("name", Json::Str("paper"));
  ASSERT_EQ(client.MustCall(std::move(create)).GetString("session"),
            "paper");
  StartPaperRun(client, "paper", inputs);
  auto expert = workload::PaperOracle();
  bool done = false;
  // AnswerPaperQuestions returns only once every answer it gave has been
  // consumed (and, with --fsync-batch 1, journaled) — so the kill lands
  // after answer k is durable, while question k+1 is pending.
  size_t answered = AnswerPaperQuestions(client, "paper", expert.get(),
                                         total / 2, &done);
  ASSERT_FALSE(done);
  ASSERT_EQ(answered, total / 2);

  const std::string victim = fixture.KillOwnerOf("paper");

  // Keep driving through the same router connection: the first forward
  // hits the dead socket, the router restores the session on the
  // survivor from its sealed journal, and the retry lands there.
  answered += AnswerPaperQuestions(client, "paper", expert.get(),
                                   SIZE_MAX, &done);
  ASSERT_TRUE(done);
  EXPECT_EQ(answered, total);
  EXPECT_NE(fixture.router->Lookup("paper"), victim);

  Json status = client.MustCall(Command("status", "paper"));
  ASSERT_EQ(status.GetString("state"), "done") << status.Dump();
  EXPECT_EQ(client.MustCall(Command("report", "paper")).GetString("report"),
            reference)
      << "failed-over session diverged from the uninterrupted reference";
}

// Seed 2: kill mid-run — the pipeline is executing (between `run` and the
// first answered question) when its worker dies.
TEST(ClusterChaosTest, WorkerKilledMidRunFailsOverByteIdentically) {
  const std::string reference = service::ReferenceReport();
  const service::PaperInputs inputs = service::BuildPaperInputs();

  ChaosFixture fixture("dbre_chaos_midrun");
  Client client(fixture.router->port());
  Json create = Command("create");
  create.Set("name", Json::Str("paper"));
  ASSERT_EQ(client.MustCall(std::move(create)).GetString("session"),
            "paper");
  // StartPaperRun's final `run` is journaled before it returns; killing
  // here catches the pipeline executing with zero answers given.
  StartPaperRun(client, "paper", inputs);
  const std::string victim = fixture.KillOwnerOf("paper");

  auto expert = workload::PaperOracle();
  bool done = false;
  AnswerPaperQuestions(client, "paper", expert.get(), SIZE_MAX, &done);
  ASSERT_TRUE(done);
  EXPECT_NE(fixture.router->Lookup("paper"), victim);

  Json status = client.MustCall(Command("status", "paper"));
  ASSERT_EQ(status.GetString("state"), "done") << status.Dump();
  EXPECT_EQ(client.MustCall(Command("report", "paper")).GetString("report"),
            reference)
      << "failed-over session diverged from the uninterrupted reference";

  // The cluster noticed: the victim is marked dead, the survivor alive.
  Json cluster = client.MustCall(Command("cluster"));
  for (const Json& worker : cluster.Find("workers")->array()) {
    EXPECT_EQ(worker.GetBool("alive"), worker.GetString("id") != victim)
        << cluster.Dump();
  }
}

}  // namespace
}  // namespace dbre::cluster
