// Store-backed session migration: detach on the source worker seals the
// journal, restore on the target replays it, and the resumed session must
// finish with a report byte-identical to an uninterrupted run.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "cluster_test_util.h"

namespace dbre::cluster {
namespace {

namespace fs = std::filesystem;

using service::Client;
using service::Command;
using service::Json;
using service::LineClient;

fs::path TempDir(const std::string& stem) {
  fs::path dir =
      fs::temp_directory_path() /
      (stem + "_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  return dir;
}

TEST(MigrationTest, DetachRequiresADataDir) {
  service::Server server;  // no store
  LineClient client(&server);
  Json create = Command("create");
  create.Set("name", Json::Str("volatile"));
  client.MustCall(std::move(create));
  Json response = client.Call(Command("detach", "volatile"));
  EXPECT_FALSE(response.GetBool("ok"));
  EXPECT_EQ(response.Find("error")->GetString("code"),
            "failed_precondition");
  server.sessions()->Shutdown();
}

TEST(MigrationTest, DetachSealsAndRestoreResumesOnAnotherWorker) {
  const fs::path data_dir = TempDir("dbre_detach_restore");
  const service::PaperInputs inputs = service::BuildPaperInputs();
  InProcessWorker source = StartInProcessWorker("a", data_dir.string());
  InProcessWorker target = StartInProcessWorker("b", data_dir.string());

  {
    Client client(source.port());
    Json create = Command("create");
    create.Set("name", Json::Str("moving"));
    client.MustCall(std::move(create));
    StartPaperRun(client, "moving", inputs);
    auto expert = workload::PaperOracle();
    bool done = false;
    AnswerPaperQuestions(client, "moving", expert.get(), 1, &done);
    ASSERT_FALSE(done);

    Json detached = client.MustCall(Command("detach", "moving"));
    EXPECT_EQ(detached.GetString("detached"), "moving");
    EXPECT_GT(detached.GetInt("journal_records"), 0);
    // The source no longer serves the session.
    Json gone = client.Call(Command("status", "moving"));
    EXPECT_FALSE(gone.GetBool("ok"));
    EXPECT_EQ(gone.Find("error")->GetString("code"), "not_found");
  }
  {
    Client client(target.port());
    Json restored = client.MustCall(Command("restore", "moving"));
    EXPECT_EQ(restored.GetString("session"), "moving");
    auto expert = workload::PaperOracle();
    bool done = false;
    // Replay consumed the already-given answer: the run resumes where it
    // was suspended, not from the start.
    AnswerPaperQuestions(client, "moving", expert.get(), SIZE_MAX, &done);
    ASSERT_TRUE(done);
    Json status = client.MustCall(Command("status", "moving"));
    EXPECT_EQ(status.GetString("state"), "done") << status.Dump();
  }
  source.Stop();
  target.Stop();
  fs::remove_all(data_dir);
}

TEST(MigrationTest, RecoverySkipsSessionsOwnedByAnotherWorker) {
  const fs::path data_dir = TempDir("dbre_ownership");
  {
    InProcessWorker a = StartInProcessWorker("a", data_dir.string());
    Client client(a.port());
    Json create = Command("create");
    create.Set("name", Json::Str("pinned"));
    client.MustCall(std::move(create));
    a.Stop();  // graceful: journal persists, OWNER file still says "a"
  }
  // Worker "b" starting over the same data dir must not adopt "a"'s
  // session — "a" may still be live elsewhere; running the same journal
  // twice would fork the session.
  InProcessWorker b = StartInProcessWorker("b", data_dir.string());
  {
    Client client(b.port());
    Json listed = client.MustCall(Command("sessions"));
    EXPECT_TRUE(listed.Find("sessions")->array().empty())
        << listed.Dump();
    // An explicit restore is a deliberate takeover and must work.
    Json restored = client.MustCall(Command("restore", "pinned"));
    EXPECT_EQ(restored.GetString("session"), "pinned");
  }
  b.Stop();
  // After the takeover, a restarting "a" leaves the session to "b".
  InProcessWorker a2 = StartInProcessWorker("a", data_dir.string());
  {
    Client client(a2.port());
    Json listed = client.MustCall(Command("sessions"));
    EXPECT_TRUE(listed.Find("sessions")->array().empty())
        << listed.Dump();
  }
  a2.Stop();
  fs::remove_all(data_dir);
}

TEST(MigrationTest, RouterMigrateMovesALiveSessionByteIdentically) {
  const std::string reference = service::ReferenceReport();
  const service::PaperInputs inputs = service::BuildPaperInputs();
  const size_t total = CountPaperQuestions(inputs);
  ASSERT_GE(total, 2u);
  const fs::path data_dir = TempDir("dbre_router_migrate");

  InProcessWorker w1 = StartInProcessWorker("w1", data_dir.string());
  InProcessWorker w2 = StartInProcessWorker("w2", data_dir.string());
  Router router({{"w1", "127.0.0.1", w1.port()},
                 {"w2", "127.0.0.1", w2.port()}});
  ASSERT_TRUE(router.Start(0).ok());
  {
    Client client(router.port());
    Json create = Command("create");
    create.Set("name", Json::Str("paper"));
    client.MustCall(std::move(create));
    const std::string before = router.Lookup("paper");
    StartPaperRun(client, "paper", inputs);
    auto expert = workload::PaperOracle();
    bool done = false;
    AnswerPaperQuestions(client, "paper", expert.get(), total / 2, &done);
    ASSERT_FALSE(done);

    // Migrate mid-question: the suspended run moves worker, replays its
    // journal there, and re-suspends on the same question.
    Json migrated = client.MustCall(Command("migrate", "paper"));
    const std::string after = migrated.GetString("to");
    EXPECT_NE(after, before);
    EXPECT_EQ(migrated.GetString("from"), before);
    EXPECT_GE(migrated.GetInt("duration_us"), 0);
    EXPECT_EQ(router.Lookup("paper"), after);

    AnswerPaperQuestions(client, "paper", expert.get(), SIZE_MAX, &done);
    ASSERT_TRUE(done);
    Json status = client.MustCall(Command("status", "paper"));
    ASSERT_EQ(status.GetString("state"), "done") << status.Dump();
    EXPECT_EQ(
        client.MustCall(Command("report", "paper")).GetString("report"),
        reference)
        << "migrated session's report diverged from the reference";
  }
  router.Stop();
  w1.Stop();
  w2.Stop();
  fs::remove_all(data_dir);
}

TEST(MigrationTest, DrainEvacuatesEverySessionOfAWorker) {
  const fs::path data_dir = TempDir("dbre_drain");
  InProcessWorker w1 = StartInProcessWorker("w1", data_dir.string());
  InProcessWorker w2 = StartInProcessWorker("w2", data_dir.string());
  Router router({{"w1", "127.0.0.1", w1.port()},
                 {"w2", "127.0.0.1", w2.port()}});
  ASSERT_TRUE(router.Start(0).ok());
  {
    Client client(router.port());
    for (int i = 0; i < 6; ++i) {
      Json create = Command("create");
      create.Set("name", Json::Str("d" + std::to_string(i)));
      client.MustCall(std::move(create));
    }
    Json drain = Json::MakeObject();
    drain.Set("cmd", Json::Str("drain"));
    drain.Set("worker", Json::Str("w1"));
    Json drained = client.MustCall(std::move(drain));
    EXPECT_EQ(drained.GetString("drained"), "w1");
    EXPECT_TRUE(drained.Find("errors")->array().empty())
        << drained.Dump();

    // Everything now lives on w2 — per the router and per the worker.
    Json cluster = client.MustCall(Command("cluster"));
    for (const Json& worker : cluster.Find("workers")->array()) {
      if (worker.GetString("id") == "w1") {
        EXPECT_FALSE(worker.GetBool("in_ring"));
        EXPECT_EQ(worker.GetInt("sessions"), 0) << cluster.Dump();
      }
    }
    Client direct(w2.port());
    Json listed = direct.MustCall(Command("sessions"));
    EXPECT_EQ(listed.Find("sessions")->array().size(), 6u);
    // New sessions avoid the drained worker.
    Json create = Command("create");
    create.Set("name", Json::Str("after-drain"));
    client.MustCall(std::move(create));
    EXPECT_EQ(router.Lookup("after-drain"), "w2");
  }
  router.Stop();
  w1.Stop();
  w2.Stop();
  fs::remove_all(data_dir);
}

}  // namespace
}  // namespace dbre::cluster
