// Shared helpers for cluster tests: in-process dbred workers behind the
// epoll transport, and forked dbre_serve worker processes for tests that
// SIGKILL a real daemon. Builds on tests/service/paper_session_util.h for
// the paper reference session.
#ifndef DBRE_TESTS_CLUSTER_CLUSTER_TEST_UTIL_H_
#define DBRE_TESTS_CLUSTER_CLUSTER_TEST_UTIL_H_

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "cluster/router.h"
#include "cluster/service_transport.h"
#include "paper_session_util.h"
#include "service/server.h"

namespace dbre::cluster {

// A worker living inside the test process: a Server on the epoll
// transport, with an id and (optionally) a shared data dir.
struct InProcessWorker {
  std::unique_ptr<service::Server> server;
  std::unique_ptr<EventLoopTransport> transport;

  uint16_t port() const { return transport->port(); }

  void Stop() {
    if (transport != nullptr) transport->Stop();
    if (server != nullptr) server->sessions()->Shutdown();
  }
};

inline InProcessWorker StartInProcessWorker(const std::string& worker_id,
                                            const std::string& data_dir) {
  InProcessWorker worker;
  service::ServerOptions options;
  options.sessions.worker_id = worker_id;
  options.sessions.data_dir = data_dir;
  worker.server = std::make_unique<service::Server>(options);
  worker.transport =
      std::make_unique<EventLoopTransport>(worker.server.get());
  EXPECT_TRUE(worker.transport->Start(0).ok());
  EXPECT_GT(worker.port(), 0);
  return worker;
}

// Counts the expert questions of the paper's reference session (driven
// in-process, no sockets) so tests can pick exact interruption points.
inline size_t CountPaperQuestions(const service::PaperInputs& inputs) {
  service::Server server;
  service::LineClient client(&server);
  service::Json create = service::Command("create");
  create.Set("name", service::Json::Str("count"));
  client.MustCall(std::move(create));
  StartPaperRun(client, "count", inputs);
  auto expert = workload::PaperOracle();
  bool done = false;
  size_t total = AnswerPaperQuestions(client, "count", expert.get(),
                                      SIZE_MAX, &done);
  EXPECT_TRUE(done);
  server.sessions()->Shutdown();
  return total;
}

#ifdef DBRE_SERVE_BINARY
// Owns a forked dbre_serve. The destructor SIGKILLs anything still
// running so a failed assertion cannot leak a daemon.
struct ServeProcess {
  pid_t pid = -1;
  uint16_t port = 0;

  ServeProcess() = default;
  ServeProcess(ServeProcess&& other) noexcept
      : pid(other.pid), port(other.port) {
    other.pid = -1;
  }
  ServeProcess& operator=(ServeProcess&& other) noexcept {
    std::swap(pid, other.pid);
    std::swap(port, other.port);
    return *this;
  }
  ~ServeProcess() {
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
  }

  // SIGKILL + reap, asserting the daemon really died by signal (no
  // destructors, no flushes).
  void KillHard() {
    ASSERT_GT(pid, 0);
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    pid = -1;
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  void WaitExit() {
    if (pid <= 0) return;
    EXPECT_EQ(waitpid(pid, nullptr, 0), pid);
    pid = -1;
  }
};

// Spawns `dbre_serve --worker-id <id> --data-dir <dir> --fsync-batch 1`
// on an ephemeral port and reads the chosen port from its first stdout
// line. stderr goes to /dev/null so the daemon never holds the gtest
// output pipe open past the test.
inline ServeProcess StartServeWorker(const std::string& worker_id,
                                     const std::string& data_dir) {
  ServeProcess process;
  int out_pipe[2];
  if (pipe(out_pipe) != 0) {
    ADD_FAILURE() << "pipe() failed";
    return process;
  }
  pid_t pid = fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork() failed";
    return process;
  }
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) dup2(devnull, STDERR_FILENO);
    execl(DBRE_SERVE_BINARY, "dbre_serve", "--port", "0", "--worker-id",
          worker_id.c_str(), "--data-dir", data_dir.c_str(),
          "--fsync-batch", "1", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  close(out_pipe[1]);
  process.pid = pid;
  FILE* out = fdopen(out_pipe[0], "r");
  char line[64] = {0};
  if (out == nullptr || fgets(line, sizeof(line), out) == nullptr) {
    ADD_FAILURE() << "dbre_serve printed no port";
    if (out != nullptr) fclose(out);
    return process;
  }
  fclose(out);  // the daemon writes nothing else to stdout
  process.port = static_cast<uint16_t>(std::strtoul(line, nullptr, 10));
  EXPECT_GT(process.port, 0) << "line: " << line;
  return process;
}
#endif  // DBRE_SERVE_BINARY

}  // namespace dbre::cluster

#endif  // DBRE_TESTS_CLUSTER_CLUSTER_TEST_UTIL_H_
