#include "cluster/hash_ring.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dbre::cluster {
namespace {

std::vector<std::string> Keys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back("s" + std::to_string(i));
  return keys;
}

TEST(HashRingTest, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_EQ(ring.OwnerOf("anything"), "");
  EXPECT_EQ(ring.node_count(), 0u);
  EXPECT_FALSE(ring.HasNode("a"));
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  HashRing ring;
  ring.AddNode("only");
  for (const std::string& key : Keys(100)) {
    EXPECT_EQ(ring.OwnerOf(key), "only");
  }
}

TEST(HashRingTest, PlacementIsDeterministicAcrossInstances) {
  // Two independently built rings (insertion order reversed) must agree on
  // every key — a restarted router re-derives identical placements.
  HashRing a, b;
  a.AddNode("w1");
  a.AddNode("w2");
  a.AddNode("w3");
  b.AddNode("w3");
  b.AddNode("w2");
  b.AddNode("w1");
  for (const std::string& key : Keys(500)) {
    EXPECT_EQ(a.OwnerOf(key), b.OwnerOf(key)) << key;
  }
}

TEST(HashRingTest, VirtualNodesSpreadLoad) {
  HashRing ring(64);
  ring.AddNode("w1");
  ring.AddNode("w2");
  ring.AddNode("w3");
  ring.AddNode("w4");
  std::map<std::string, size_t> owned;
  const size_t kKeys = 4000;
  for (const std::string& key : Keys(kKeys)) ++owned[ring.OwnerOf(key)];
  ASSERT_EQ(owned.size(), 4u);
  for (const auto& [node, count] : owned) {
    // Perfect balance would be 1000 each; 64 vnodes keeps every node
    // within a loose band — the property that matters is that no node
    // is starved or overwhelmed.
    EXPECT_GT(count, kKeys / 16) << node;
    EXPECT_LT(count, kKeys / 2) << node;
  }
}

TEST(HashRingTest, RemovingANodeMovesOnlyItsKeys) {
  HashRing ring;
  ring.AddNode("w1");
  ring.AddNode("w2");
  ring.AddNode("w3");
  std::map<std::string, std::string> before;
  for (const std::string& key : Keys(1000)) before[key] = ring.OwnerOf(key);

  ring.RemoveNode("w2");
  EXPECT_FALSE(ring.HasNode("w2"));
  size_t moved = 0;
  for (const auto& [key, owner] : before) {
    std::string now = ring.OwnerOf(key);
    if (owner == "w2") {
      EXPECT_NE(now, "w2");
      ++moved;
    } else {
      // Consistent hashing's contract: keys of surviving nodes stay put.
      EXPECT_EQ(now, owner) << key;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, ReAddingANodeRestoresItsKeys) {
  HashRing ring;
  ring.AddNode("w1");
  ring.AddNode("w2");
  std::map<std::string, std::string> before;
  for (const std::string& key : Keys(500)) before[key] = ring.OwnerOf(key);
  ring.RemoveNode("w1");
  ring.AddNode("w1");
  for (const auto& [key, owner] : before) {
    EXPECT_EQ(ring.OwnerOf(key), owner) << key;
  }
}

TEST(HashRingTest, AddAndRemoveAreIdempotent) {
  HashRing ring;
  ring.AddNode("w1");
  ring.AddNode("w1");
  EXPECT_EQ(ring.node_count(), 1u);
  ring.RemoveNode("absent");
  EXPECT_EQ(ring.node_count(), 1u);
  ring.RemoveNode("w1");
  ring.RemoveNode("w1");
  EXPECT_EQ(ring.node_count(), 0u);
}

TEST(HashRingTest, NodesListsMembership) {
  HashRing ring;
  ring.AddNode("b");
  ring.AddNode("a");
  std::vector<std::string> nodes = ring.Nodes();
  EXPECT_EQ(std::set<std::string>(nodes.begin(), nodes.end()),
            (std::set<std::string>{"a", "b"}));
}

TEST(HashRingTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors pin the placement function for good:
  // any "optimization" that changes these breaks cross-restart placement.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace dbre::cluster
