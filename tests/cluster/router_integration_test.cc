// Router over in-process workers: placement, forwarding, the router-local
// command surface, and the headline property — a full paper session driven
// through the router produces the byte-identical reference report.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster_test_util.h"

namespace dbre::cluster {
namespace {

using service::Client;
using service::Command;
using service::Json;

struct Fleet {
  std::vector<InProcessWorker> workers;
  std::unique_ptr<Router> router;

  Fleet() = default;
  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;

  ~Fleet() {
    if (router != nullptr) router->Stop();
    for (InProcessWorker& worker : workers) worker.Stop();
  }
};

Fleet StartFleet(size_t n, const std::string& data_dir = "",
                 RouterOptions options = {}) {
  Fleet fleet;
  std::vector<RouterWorkerConfig> configs;
  for (size_t i = 0; i < n; ++i) {
    std::string id = "w" + std::to_string(i + 1);
    fleet.workers.push_back(StartInProcessWorker(id, data_dir));
    configs.push_back({id, "127.0.0.1", fleet.workers.back().port()});
  }
  fleet.router = std::make_unique<Router>(configs, options);
  EXPECT_TRUE(fleet.router->Start(0).ok());
  return fleet;
}

TEST(RouterTest, HelloDescribesTheCluster) {
  Fleet fleet = StartFleet(3);
  Client client(fleet.router->port());
  Json hello = Command("hello");
  hello.Set("protocol", Json::Int(service::kProtocolVersion));
  Json result = client.MustCall(std::move(hello));
  EXPECT_EQ(result.GetString("server"), "dbre-router");
  EXPECT_EQ(result.GetInt("protocol"), service::kProtocolVersion);
  EXPECT_EQ(result.GetInt("workers"), 3);
}

TEST(RouterTest, HelloRejectsProtocolMismatch) {
  Fleet fleet = StartFleet(1);
  Client client(fleet.router->port());
  Json hello = Command("hello");
  hello.Set("protocol", Json::Int(999));
  Json response = client.Call(std::move(hello));
  EXPECT_FALSE(response.GetBool("ok"));
  EXPECT_EQ(response.Find("error")->GetString("code"),
            "failed_precondition");
}

TEST(RouterTest, CreateRoutesByRingAndRouteAgrees) {
  Fleet fleet = StartFleet(3);
  Client client(fleet.router->port());
  for (int i = 0; i < 8; ++i) {
    std::string name = "sess" + std::to_string(i);
    Json create = Command("create");
    create.Set("name", Json::Str(name));
    Json created = client.MustCall(std::move(create));
    EXPECT_EQ(created.GetString("session"), name);
    Json routed = client.MustCall(Command("route", name));
    EXPECT_EQ(routed.GetString("worker"), fleet.router->Lookup(name));
    // The worker the router claims must actually hold the session.
    Json status = client.MustCall(Command("status", name));
    EXPECT_EQ(status.GetString("state"), "idle");
  }
}

TEST(RouterTest, SessionsAggregateSpansWorkers) {
  Fleet fleet = StartFleet(3);
  Client client(fleet.router->port());
  const int kSessions = 12;
  for (int i = 0; i < kSessions; ++i) {
    Json create = Command("create");
    create.Set("name", Json::Str("agg" + std::to_string(i)));
    client.MustCall(std::move(create));
  }
  Json listed = client.MustCall(Command("sessions"));
  const Json* sessions = listed.Find("sessions");
  ASSERT_NE(sessions, nullptr);
  EXPECT_EQ(sessions->array().size(), static_cast<size_t>(kSessions));
  std::set<std::string> workers_seen;
  for (const Json& entry : sessions->array()) {
    workers_seen.insert(entry.GetString("worker"));
  }
  // 12 sessions across a 3-node ring: hashing should touch >1 worker.
  EXPECT_GT(workers_seen.size(), 1u);

  Json cluster = client.MustCall(Command("cluster"));
  EXPECT_EQ(cluster.GetInt("sessions"), kSessions);
  const Json* workers = cluster.Find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->array().size(), 3u);
  for (const Json& worker : workers->array()) {
    EXPECT_TRUE(worker.GetBool("alive")) << worker.Dump();
    EXPECT_TRUE(worker.GetBool("in_ring")) << worker.Dump();
  }
}

TEST(RouterTest, ForwardedErrorsKeepTheirStructure) {
  Fleet fleet = StartFleet(2);
  Client client(fleet.router->port());
  // Unknown session: the router forwards to the ring owner, whose
  // structured not_found comes back verbatim.
  Json response = client.Call(Command("status", "never-created"));
  EXPECT_FALSE(response.GetBool("ok"));
  EXPECT_EQ(response.Find("error")->GetString("code"), "not_found");
  // Unroutable command: no session field to hash on.
  Json bare = Json::MakeObject();
  bare.Set("cmd", Json::Str("report"));
  Json unroutable = client.Call(std::move(bare));
  EXPECT_FALSE(unroutable.GetBool("ok"));
  EXPECT_EQ(unroutable.Find("error")->GetString("code"),
            "invalid_argument");
}

TEST(RouterTest, FailpointIsRefusedAtTheRouter) {
  Fleet fleet = StartFleet(1);
  Client client(fleet.router->port());
  Json response = client.Call(Command("failpoint"));
  EXPECT_FALSE(response.GetBool("ok"));
  EXPECT_EQ(response.Find("error")->GetString("code"),
            "failed_precondition");
}

TEST(RouterTest, ShutdownStopsTheRouterNotTheWorkers) {
  Fleet fleet = StartFleet(2);
  {
    Client client(fleet.router->port());
    Json create = Command("create");
    create.Set("name", Json::Str("survivor"));
    client.MustCall(std::move(create));
    Json bye = client.MustCall(Command("shutdown"));
    EXPECT_TRUE(bye.GetBool("bye"));
  }
  fleet.router->WaitUntilShutdown();
  fleet.router->Stop();
  // The workers are untouched: the session is still there, reachable
  // directly.
  for (InProcessWorker& worker : fleet.workers) {
    EXPECT_FALSE(worker.server->shutdown_requested());
  }
  bool found = false;
  for (InProcessWorker& worker : fleet.workers) {
    Client direct(worker.port());
    Json listed = direct.MustCall(Command("sessions"));
    for (const Json& entry : listed.Find("sessions")->array()) {
      found |= entry.GetString("session") == "survivor";
    }
  }
  EXPECT_TRUE(found);
}

TEST(RouterTest, PaperSessionThroughRouterMatchesReference) {
  const std::string reference = service::ReferenceReport();
  const service::PaperInputs inputs = service::BuildPaperInputs();
  Fleet fleet = StartFleet(2);
  Client client(fleet.router->port());

  Json create = Command("create");
  create.Set("name", Json::Str("paper"));
  EXPECT_EQ(client.MustCall(std::move(create)).GetString("session"),
            "paper");
  StartPaperRun(client, "paper", inputs);
  auto expert = workload::PaperOracle();
  bool done = false;
  AnswerPaperQuestions(client, "paper", expert.get(), SIZE_MAX, &done);
  ASSERT_TRUE(done);
  Json status = client.MustCall(Command("status", "paper"));
  ASSERT_EQ(status.GetString("state"), "done") << status.Dump();
  // Forwarding is verbatim: the report through the router must be the
  // byte-identical reference, not a re-serialization.
  EXPECT_EQ(client.MustCall(Command("report", "paper")).GetString("report"),
            reference);
}

// The protocol-2.1 mutation surface forwards like any session-scoped
// command: `mutate` reaches the owning worker, and a `watch` stream
// through the router sees the session's mutate and report events in
// order, with long-poll wakeups intact.
TEST(RouterTest, WatchStreamRoutesThroughRouter) {
  const service::PaperInputs inputs = service::BuildPaperInputs();
  Fleet fleet = StartFleet(2);
  Client client(fleet.router->port());

  Json create = Command("create");
  create.Set("name", Json::Str("watched"));
  client.MustCall(std::move(create));
  StartPaperRun(client, "watched", inputs);
  auto expert = workload::PaperOracle();
  bool done = false;
  AnswerPaperQuestions(client, "watched", expert.get(), SIZE_MAX, &done);
  ASSERT_TRUE(done);

  // The finished run left the initial report event in the stream.
  Json watch = Command("watch", "watched");
  watch.Set("after_seq", Json::Int(0));
  Json first = client.MustCall(std::move(watch));
  const Json* events = first.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array().size(), 1u);
  EXPECT_EQ(events->array()[0].GetString("type"), "report");
  EXPECT_TRUE(events->array()[0].GetBool("initial"));
  int64_t cursor = first.GetInt("next_seq");

  // Mutate through the router; the event comes back through the same
  // forwarded stream.
  Json mutate = Command("mutate", "watched");
  mutate.Set("sql",
             Json::Str("UPDATE Department SET location = 'moved' "
                       "WHERE emp > 0;"));
  Json mutated = client.MustCall(std::move(mutate));
  EXPECT_GT(mutated.GetInt("updated"), 0);

  Json watch2 = Command("watch", "watched");
  watch2.Set("after_seq", Json::Int(cursor));
  watch2.Set("timeout_ms", Json::Int(5000));
  Json second = client.MustCall(std::move(watch2));
  const Json* events2 = second.Find("events");
  ASSERT_NE(events2, nullptr);
  ASSERT_EQ(events2->array().size(), 1u);
  EXPECT_EQ(events2->array()[0].GetString("type"), "mutate");
  EXPECT_GT(events2->array()[0].GetInt("updated"), 0);

  // A second client watching the same session through the router reads
  // the full history from seq 0 — the stream is session state, not
  // connection state.
  Client second_client(fleet.router->port());
  Json replayed = second_client.MustCall(Command("watch", "watched"));
  ASSERT_EQ(replayed.Find("events")->array().size(), 2u);
}

}  // namespace
}  // namespace dbre::cluster
