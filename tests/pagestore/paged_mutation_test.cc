// Satellite guard of the live-mutation work (docs/INCREMENTAL.md): paged
// extensions are read-only. A mutation against a page-backed table must
// either fail failed_precondition (direct Table calls) or materialize-
// then-mutate (the DML front end) — never write through the buffer pool.
// Runs honestly small via test_pool.h: DBRE_TEST_BUFFER_POOL_MB=16 re-runs
// the suite at the tiny-pool CI budget.
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pagestore/buffer_pool.h"
#include "pagestore/paged_snapshot.h"
#include "relational/database.h"
#include "relational/paged_source.h"
#include "sql/dml.h"
#include "store/snapshot.h"
#include "test_pool.h"

namespace dbre {
namespace {

namespace fs = std::filesystem;

class PagedMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dbre_paged_mutation_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    pool_ = std::make_shared<pagestore::BufferPool>(TestBufferPoolBytes());
  }
  void TearDown() override { fs::remove_all(dir_); }

  Table MakeTable(int rows) {
    RelationSchema schema("R");
    EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
    EXPECT_TRUE(schema.AddAttribute("label", DataType::kString).ok());
    Table table(schema);
    for (int i = 0; i < rows; ++i) {
      table.InsertUnchecked(
          {Value::Int(i), Value::Text("row-" + std::to_string(i % 17))});
    }
    return table;
  }

  // Snapshots `table` and swaps its extension for the page-backed source.
  void MakePaged(Table* table) {
    path_ = (dir_ / "r.snap").string();
    auto written = store::WriteSnapshot(*table, path_);
    ASSERT_TRUE(written.ok()) << written.status().ToString();
    auto source = pagestore::OpenSnapshotPaged(path_, pool_);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    ASSERT_TRUE(table->AdoptPagedExtension(*source).ok());
    ASSERT_TRUE(table->is_paged());
  }

  fs::path dir_;
  std::string path_;
  std::shared_ptr<pagestore::BufferPool> pool_;
};

TEST_F(PagedMutationTest, DirectMutationsFailPrecondition) {
  Table table = MakeTable(500);
  MakePaged(&table);

  auto updated = table.UpdateRows({1}, {Value::Text("x")},
                                  [](const ValueVector&) { return true; });
  ASSERT_FALSE(updated.ok());
  EXPECT_EQ(updated.status().code(), StatusCode::kFailedPrecondition);

  auto deleted =
      table.DeleteRows([](const ValueVector&) { return true; });
  ASSERT_FALSE(deleted.ok());
  EXPECT_EQ(deleted.status().code(), StatusCode::kFailedPrecondition);

  auto inserted = table.Insert({Value::Int(999), Value::Text("x")});
  EXPECT_FALSE(inserted.ok());

  // Still paged, still intact.
  EXPECT_TRUE(table.is_paged());
  size_t rows = 0;
  ASSERT_TRUE(
      table.ForEachRow([&](const ValueVector&) { ++rows; }).ok());
  EXPECT_EQ(rows, 500u);
}

TEST_F(PagedMutationTest, EnsureMaterializedThenMutateWorks) {
  Table table = MakeTable(400);
  MakePaged(&table);

  ASSERT_TRUE(table.EnsureMaterialized().ok());
  EXPECT_FALSE(table.is_paged());
  ASSERT_EQ(table.rows().size(), 400u);

  auto updated = table.UpdateRows(
      {1}, {Value::Text("mutated")},
      [](const ValueVector& row) { return row[0].as_int() < 10; });
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(*updated, 10u);
  EXPECT_EQ(table.rows()[0][1].as_text(), "mutated");

  // Idempotent on an already-materialized table.
  EXPECT_TRUE(table.EnsureMaterialized().ok());
}

TEST_F(PagedMutationTest, DmlMaterializesThenMutatesPagedTargets) {
  Database database;
  Table table = MakeTable(600);
  MakePaged(&table);
  ASSERT_TRUE(database.AddTable(std::move(table)).ok());

  auto stats = sql::ExecuteDmlScript(
      "UPDATE R SET label = 'rewritten' WHERE id < 50;"
      "DELETE FROM R WHERE id >= 550;"
      "INSERT INTO R VALUES (9000, 'fresh');",
      &database);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_updated, 50u);
  EXPECT_EQ(stats->rows_deleted, 50u);
  EXPECT_EQ(stats->rows_inserted, 1u);

  const Table& mutated = **database.GetTable("R");
  EXPECT_FALSE(mutated.is_paged());
  EXPECT_EQ(mutated.rows().size(), 551u);
  EXPECT_EQ(mutated.rows()[0][1].as_text(), "rewritten");

  // The mutation never wrote through the pool: re-opening the snapshot
  // yields the original extension, byte for byte.
  auto source = pagestore::OpenSnapshotPaged(path_, pool_);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Table reopened = MakeTable(0);
  ASSERT_TRUE(reopened.AdoptPagedExtension(*source).ok());
  size_t rows = 0;
  ASSERT_TRUE(reopened
                  .ForEachRow([&](const ValueVector& row) {
                    if (rows == 0) {
                      EXPECT_EQ(row[1].as_text(), "row-0");  // not rewritten
                    }
                    ++rows;
                  })
                  .ok());
  EXPECT_EQ(rows, 600u);
}

TEST_F(PagedMutationTest, MaterializedMutantDivergesFromSnapshot) {
  // Two tables over the same snapshot: mutating one (after materialize)
  // must not disturb the other's paged reads mid-stream.
  Database database;
  Table a = MakeTable(300);
  MakePaged(&a);
  auto source = pagestore::OpenSnapshotPaged(path_, pool_);
  ASSERT_TRUE(source.ok());
  Table b = MakeTable(0);
  ASSERT_TRUE(b.AdoptPagedExtension(*source).ok());
  ASSERT_TRUE(database.AddTable(std::move(a)).ok());

  auto stats =
      sql::ExecuteDmlScript("DELETE FROM R WHERE id < 100;", &database);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_deleted, 100u);

  size_t rows = 0;
  ASSERT_TRUE(b.ForEachRow([&](const ValueVector&) { ++rows; }).ok());
  EXPECT_EQ(rows, 300u);  // the paged sibling still reads the snapshot
}

}  // namespace
}  // namespace dbre
