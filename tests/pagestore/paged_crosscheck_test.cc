// The tentpole invariant of the paged storage subsystem: discovery over
// page-backed extensions produces BYTE-IDENTICAL reports to the in-memory
// run, for every combination of the sketch and key-index gates, even with
// a buffer pool far smaller than the extensions it serves. Also checks the
// row-shaped exporters (CSV, INSERT batches) stream paged extensions
// losslessly through Table::ForEachRow.
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/report_json.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/paged_snapshot.h"
#include "relational/csv.h"
#include "relational/paged_source.h"
#include "relational/sketch.h"
#include "sql/ddl_writer.h"
#include "store/snapshot.h"
#include "test_pool.h"
#include "workload/generator.h"

namespace dbre {
namespace {

namespace fs = std::filesystem;

// ASSERT_* cannot be used in a function returning a value; this keeps the
// failure message and aborts the copy with whatever was built so far.
#define ASSERT_TRUE_RETURN(cond, message) \
  if (!(cond)) {                          \
    ADD_FAILURE() << (message);           \
    return paged;                         \
  }

class PagedCrosscheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dbre_paged_crosscheck_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Snapshots every relation of `database` and re-adopts it page-backed
  // through `pool`; the returned database holds no materialized rows.
  Database PagedCopy(const Database& database,
                     std::shared_ptr<pagestore::BufferPool> pool) {
    Database paged = database.Clone();
    for (const std::string& name : paged.RelationNames()) {
      auto table = paged.GetMutableTable(name);
      ASSERT_TRUE_RETURN(table.ok(), table.status().ToString());
      std::string path = (dir_ / (name + ".snap")).string();
      auto written = store::WriteSnapshot(**table, path);
      ASSERT_TRUE_RETURN(written.ok(), written.status().ToString());
      auto source = pagestore::OpenSnapshotPaged(path, pool);
      ASSERT_TRUE_RETURN(source.ok(), source.status().ToString());
      auto adopted = (*table)->AdoptPagedExtension(*source);
      ASSERT_TRUE_RETURN(adopted.ok(), adopted.ToString());
    }
    return paged;
  }

  fs::path dir_;
};

std::string RunReport(const Database& database,
                      const std::vector<EquiJoin>& queries) {
  ThresholdOracle::Options oracle_options;
  oracle_options.accept_hidden_objects = true;
  ThresholdOracle oracle(oracle_options);
  auto report = RunPipeline(database, queries, &oracle);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return "";
  JsonOptions options;
  options.include_timings = false;
  return ReportToJson(*report, options);
}

TEST_F(PagedCrosscheckTest, PipelineReportIsByteIdenticalInEveryMode) {
  workload::SyntheticSpec spec;
  spec.num_entities = 5;
  spec.num_merged = 2;
  spec.rows_per_entity = 500;
  spec.seed = 7;
  auto generated = workload::GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();

  const std::string baseline =
      RunReport(generated->database, generated->queries);
  ASSERT_FALSE(baseline.empty());

  // The default budget of one byte clamps the pool to kMinFrames frames
  // (512 KiB) — far less than the materialized extensions — so the run
  // below really streams pages in and out. DBRE_TEST_BUFFER_POOL_MB
  // re-runs the same invariant at a larger budget (the tiny-pool CI job).
  auto pool = std::make_shared<pagestore::BufferPool>(TestBufferPoolBytes());
  Database paged = PagedCopy(generated->database, pool);
  if (::testing::Test::HasFailure()) return;

  {
    // Default mode: sketches on, key indexes on.
    EXPECT_EQ(RunReport(paged, generated->queries), baseline);
  }
  {
    ScopedPagedIndexGate no_index(false);
    EXPECT_EQ(RunReport(paged, generated->queries), baseline);
  }
  {
    ScopedSketchGate no_sketch(false);
    EXPECT_EQ(RunReport(paged, generated->queries), baseline);
  }
  {
    ScopedSketchGate no_sketch(false);
    ScopedPagedIndexGate no_index(false);
    EXPECT_EQ(RunReport(paged, generated->queries), baseline);
  }

  // The runs actually went through the pool, and page reads hit the cache.
  pagestore::BufferPool::Stats stats = pool->stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.resident_bytes, stats.frames * pagestore::kPageSize);
}

TEST_F(PagedCrosscheckTest, RowExportersStreamPagedExtensionsLosslessly) {
  workload::SyntheticSpec spec;
  spec.num_entities = 3;
  spec.num_merged = 1;
  spec.rows_per_entity = 400;
  spec.seed = 21;
  auto generated = workload::GenerateSynthetic(spec);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();

  auto pool = std::make_shared<pagestore::BufferPool>(TestBufferPoolBytes());
  Database paged = PagedCopy(generated->database, pool);
  if (::testing::Test::HasFailure()) return;

  for (const std::string& name : generated->database.RelationNames()) {
    const Table& memory = **generated->database.GetTable(name);
    const Table& on_disk = **paged.GetTable(name);
    ASSERT_TRUE(on_disk.is_paged());
    EXPECT_EQ(WriteCsvText(on_disk), WriteCsvText(memory)) << name;
    EXPECT_EQ(sql::WriteInserts(on_disk, 50), sql::WriteInserts(memory, 50))
        << name;
    EXPECT_EQ(on_disk.VerifyUniqueConstraints().ok(),
              memory.VerifyUniqueConstraints().ok())
        << name;
    EXPECT_EQ(on_disk.VerifyNotNullConstraints().ok(),
              memory.VerifyNotNullConstraints().ok())
        << name;
  }
}

}  // namespace
}  // namespace dbre
