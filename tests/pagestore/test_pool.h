// Byte budget for the buffer pools the paged tests construct.
//
// By default the budget is one byte, which BufferPool clamps up to its
// minimum frame count (kMinFrames pages) — far smaller than any test
// extension, so eviction churns constantly. The tiny-pool CI job sets
// DBRE_TEST_BUFFER_POOL_MB (e.g. 16) to re-run the same suites at a
// realistic-but-small budget on every push.
#ifndef DBRE_TESTS_PAGESTORE_TEST_POOL_H_
#define DBRE_TESTS_PAGESTORE_TEST_POOL_H_

#include <cstddef>
#include <cstdlib>

namespace dbre {

inline size_t TestBufferPoolBytes() {
  const char* env = std::getenv("DBRE_TEST_BUFFER_POOL_MB");
  if (env == nullptr || *env == '\0') return 1;
  long mb = std::strtol(env, nullptr, 10);
  return mb > 0 ? static_cast<size_t>(mb) << 20 : 1;
}

}  // namespace dbre

#endif  // DBRE_TESTS_PAGESTORE_TEST_POOL_H_
