#include "pagestore/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "store/crc32c.h"

namespace dbre::pagestore {
namespace {

namespace fs = std::filesystem;

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dbre_buffer_pool_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    Failpoints::Instance().DisarmAll();
    fs::remove_all(dir_);
  }

  // Writes `pages` pages where byte j of page p is (p * 31 + j) & 0xff,
  // with the last page short by 100 bytes. Returns (path, page crcs).
  std::pair<std::string, std::vector<uint32_t>> WriteTestFile(
      const std::string& name, size_t pages) {
    std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    std::vector<uint32_t> crcs;
    for (size_t p = 0; p < pages; ++p) {
      size_t bytes = p + 1 == pages ? kPageSize - 100 : kPageSize;
      std::string page(bytes, '\0');
      for (size_t j = 0; j < bytes; ++j) {
        page[j] = static_cast<char>((p * 31 + j) & 0xff);
      }
      out.write(page.data(), static_cast<std::streamsize>(page.size()));
      crcs.push_back(store::Crc32c(0, page.data(), page.size()));
    }
    out.close();
    return {path, crcs};
  }

  fs::path dir_;
};

TEST_F(BufferPoolTest, PinReadsPageBytesAndCachesThem) {
  auto [path, crcs] = WriteTestFile("a.bin", 3);
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  auto page = pool.Pin(*file, 1);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->size(), kPageSize);
  EXPECT_EQ(page->data()[0], static_cast<uint8_t>(31));
  EXPECT_EQ(page->data()[5], static_cast<uint8_t>(36));
  page->Reset();

  auto again = pool.Pin(*file, 1);
  ASSERT_TRUE(again.ok());
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.pins, 2u);
}

TEST_F(BufferPoolTest, LastShortPageReportsItsRealLength) {
  auto [path, crcs] = WriteTestFile("short.bin", 2);
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  auto page = pool.Pin(*file, 1);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->size(), kPageSize - 100);
}

TEST_F(BufferPoolTest, EvictsUnpinnedPagesUnderATinyBudget) {
  auto [path, crcs] = WriteTestFile("big.bin", 24);
  // Budget below kMinFrames pages still yields kMinFrames frames.
  BufferPool pool(1);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  for (int round = 0; round < 2; ++round) {
    for (uint32_t p = 0; p < 24; ++p) {
      auto page = pool.Pin(*file, p);
      ASSERT_TRUE(page.ok()) << page.status().ToString();
      EXPECT_EQ(page->data()[1], static_cast<uint8_t>((p * 31 + 1) & 0xff));
    }
  }
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.frames, kMinFrames);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, kMinFrames * kPageSize);
}

TEST_F(BufferPoolTest, FailsCleanlyWhenEveryFrameIsPinned) {
  auto [path, crcs] = WriteTestFile("pinned.bin", 12);
  BufferPool pool(1);  // kMinFrames frames
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  std::vector<BufferPool::Page> held;
  for (uint32_t p = 0; p < kMinFrames; ++p) {
    auto page = pool.Pin(*file, p);
    ASSERT_TRUE(page.ok());
    held.push_back(std::move(*page));
  }
  auto overflow = pool.Pin(*file, kMinFrames);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kFailedPrecondition);
  held.clear();  // unpin
  auto after = pool.Pin(*file, kMinFrames);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(BufferPoolTest, ChecksumMismatchSurfacesAsParseError) {
  auto [path, crcs] = WriteTestFile("rot.bin", 2);
  crcs[0] ^= 0xdeadbeef;  // claim a different checksum for page 0
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  auto page = pool.Pin(*file, 0);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kParseError);
  EXPECT_NE(page.status().ToString().find("checksum mismatch"),
            std::string::npos);
  // Page 1 is unaffected.
  EXPECT_TRUE(pool.Pin(*file, 1).ok());
}

TEST_F(BufferPoolTest, WrongChecksumCountIsRejectedAtAttach) {
  auto [path, crcs] = WriteTestFile("count.bin", 3);
  crcs.pop_back();
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BufferPoolTest, TransientReadErrorsAreRetriedAway) {
  auto [path, crcs] = WriteTestFile("retry.bin", 2);
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(
      Failpoints::Instance().Arm("pagestore.page_read", "error*2").ok());
  auto page = pool.Pin(*file, 0);
  EXPECT_TRUE(page.ok()) << page.status().ToString();
}

TEST_F(BufferPoolTest, PersistentReadErrorSurfacesAfterRetries) {
  auto [path, crcs] = WriteTestFile("dead.bin", 2);
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(
      Failpoints::Instance().Arm("pagestore.page_read", "error").ok());
  auto page = pool.Pin(*file, 0);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kIoError);
  Failpoints::Instance().DisarmAll();
  // The failed load left no poisoned entry behind.
  EXPECT_TRUE(pool.Pin(*file, 0).ok());
}

TEST_F(BufferPoolTest, InjectedCrcFaultSurfacesAsParseError) {
  auto [path, crcs] = WriteTestFile("crcfp.bin", 2);
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(
      Failpoints::Instance().Arm("pagestore.page_crc", "error#1").ok());
  auto page = pool.Pin(*file, 0);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kParseError);
  auto again = pool.Pin(*file, 0);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(BufferPoolTest, EvictionFailpointFiresOnTheEvictionEdge) {
  auto [path, crcs] = WriteTestFile("evict.bin", 12);
  BufferPool pool(1);  // kMinFrames frames
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  for (uint32_t p = 0; p < kMinFrames; ++p) {
    ASSERT_TRUE(pool.Pin(*file, p).ok());
  }
  ASSERT_TRUE(Failpoints::Instance().Arm("pagestore.evict", "error#1").ok());
  auto page = pool.Pin(*file, kMinFrames);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kIoError);
  auto after = pool.Pin(*file, kMinFrames);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(BufferPoolTest, ConcurrentPinsOfOnePageReadItOnce) {
  auto [path, crcs] = WriteTestFile("race.bin", 4);
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto page = pool.Pin(*file, 2);
        if (!page.ok() ||
            page->data()[7] != static_cast<uint8_t>((2 * 31 + 7) & 0xff)) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, DetachFreesResidentFrames) {
  auto [path, crcs] = WriteTestFile("detach.bin", 4);
  BufferPool pool(16 * kPageSize);
  auto file = pool.AttachFile(path, crcs);
  ASSERT_TRUE(file.ok());
  for (uint32_t p = 0; p < 4; ++p) ASSERT_TRUE(pool.Pin(*file, p).ok());
  EXPECT_GT(pool.stats().resident_bytes, 0u);
  pool.DetachFile(*file);
  EXPECT_EQ(pool.stats().resident_bytes, 0u);
  EXPECT_EQ(pool.stats().attached_files, 0u);
  auto gone = pool.Pin(*file, 0);
  EXPECT_FALSE(gone.ok());
}

}  // namespace
}  // namespace dbre::pagestore
