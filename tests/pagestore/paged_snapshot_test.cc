#include "pagestore/paged_snapshot.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/key_index.h"
#include "relational/encoded_table.h"
#include "relational/sketch.h"
#include "relational/table.h"
#include "store/snapshot.h"

namespace dbre::pagestore {
namespace {

namespace fs = std::filesystem;

class PagedSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dbre_paged_snapshot_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    Failpoints::Instance().DisarmAll();
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::shared_ptr<BufferPool> TinyPool() {
    return std::make_shared<BufferPool>(1);  // kMinFrames frames
  }

  // Decodes cell (row, col) the way paged consumers do: cursor code, then
  // dictionary lookup (or NULL for the sentinel code).
  static Value DecodeCell(const PagedSnapshot& snap, PagedCodeCursor* cursor,
                          size_t column, size_t row) {
    uint32_t code = cursor->At(row);
    if (code == EncodedTable::kNullCode) return Value::Null();
    auto value = snap.DictValueAt(column, code);
    EXPECT_TRUE(value.ok()) << value.status().ToString();
    return value.ok() ? *value : Value::Null();
  }

  fs::path dir_;
};

Table MixedTable(int rows) {
  RelationSchema schema("orders");
  EXPECT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  EXPECT_TRUE(schema.AddAttribute("city", DataType::kString).ok());
  EXPECT_TRUE(schema.AddAttribute("weight", DataType::kDouble).ok());
  EXPECT_TRUE(schema.AddAttribute("express", DataType::kBool).ok());
  Table table(schema);
  const char* cities[] = {"paris", "namur", "liège"};
  for (int i = 0; i < rows; ++i) {
    ValueVector row;
    row.push_back(Value::Int(i * 7 - 3));
    row.push_back(i % 7 == 3 ? Value::Null() : Value::Text(cities[i % 3]));
    row.push_back(Value::Real(i * 0.5));
    row.push_back(i % 5 == 0 ? Value::Null() : Value::Boolean(i % 2 == 0));
    table.InsertUnchecked(std::move(row));
  }
  return table;
}

TEST_F(PagedSnapshotTest, RoundTripsEveryCellThroughPages) {
  Table table = MixedTable(5000);
  auto written = store::WriteSnapshot(table, Path("orders.snap"));
  ASSERT_TRUE(written.ok()) << written.status().ToString();

  auto snap = OpenSnapshotPaged(Path("orders.snap"), TinyPool());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ((*snap)->num_rows(), 5000u);
  EXPECT_EQ((*snap)->num_columns(), 4u);
  EXPECT_EQ((*snap)->fingerprint(), written->fingerprint);
  EXPECT_EQ((*snap)->schema().name(), "orders");
  EXPECT_TRUE((*snap)->typed(0));
  EXPECT_FALSE((*snap)->has_null(0));
  EXPECT_TRUE((*snap)->has_null(1));

  for (size_t c = 0; c < 4; ++c) {
    auto cursor = (*snap)->Codes(c);
    for (size_t r = 0; r < table.num_rows(); ++r) {
      EXPECT_EQ(DecodeCell(**snap, cursor.get(), c, r), table.row(r)[c])
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST_F(PagedSnapshotTest, BatchFetchAgreesWithSingleCodeReads) {
  Table table = MixedTable(7000);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  auto batch_cursor = (*snap)->Codes(1);
  auto point_cursor = (*snap)->Codes(1);
  size_t rows = (*snap)->num_rows();
  for (size_t start = 0; start < rows; start += 2048) {
    size_t count = std::min<size_t>(2048, rows - start);
    const uint32_t* codes = batch_cursor->Fetch(start, count);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(codes[i], point_cursor->At(start + i))
          << "row " << (start + i);
    }
  }
}

TEST_F(PagedSnapshotTest, DictionaryStreamAndRandomAccessAgree) {
  Table table = MixedTable(900);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  for (size_t c = 0; c < 4; ++c) {
    std::vector<Value> streamed((*snap)->dict_size(c));
    uint32_t seen = 0;
    ASSERT_TRUE((*snap)
                    ->ForEachDictValue(c,
                                       [&](uint32_t code, const Value& v) {
                                         EXPECT_EQ(code, seen++);
                                         streamed[code] = v;
                                       })
                    .ok());
    EXPECT_EQ(seen, (*snap)->dict_size(c));
    for (uint32_t code = 0; code < (*snap)->dict_size(c); ++code) {
      auto value = (*snap)->DictValueAt(c, code);
      ASSERT_TRUE(value.ok()) << value.status().ToString();
      EXPECT_EQ(*value, streamed[code]) << "column " << c << " code " << code;
    }
    auto past = (*snap)->DictValueAt(c, (*snap)->dict_size(c));
    EXPECT_FALSE(past.ok());
  }
}

TEST_F(PagedSnapshotTest, OversizedStringValuesSpanPages) {
  RelationSchema schema("blobs");
  ASSERT_TRUE(schema.AddAttribute("id", DataType::kInt64).ok());
  ASSERT_TRUE(schema.AddAttribute("body", DataType::kString).ok());
  Table table(schema);
  // Values far larger than kPageSize: they span 3-5 consecutive pages and
  // must reassemble exactly through a pool of only kMinFrames frames.
  std::string big_a(3 * kPageSize + 17, 'a');
  std::string big_b(5 * kPageSize - 9, 'b');
  for (size_t i = 0; i < big_a.size(); ++i) {
    big_a[i] = static_cast<char>('a' + (i * 131) % 23);
  }
  for (int i = 0; i < 10; ++i) {
    ValueVector row;
    row.push_back(Value::Int(i));
    row.push_back(i == 7   ? Value::Null()
                  : i == 3 ? Value::Text(big_b)
                           : Value::Text(big_a + std::to_string(i % 2)));
    table.InsertUnchecked(std::move(row));
  }
  ASSERT_TRUE(store::WriteSnapshot(table, Path("blobs.snap")).ok());

  auto snap = OpenSnapshotPaged(Path("blobs.snap"), TinyPool());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto cursor = (*snap)->Codes(1);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(DecodeCell(**snap, cursor.get(), 1, r), table.row(r)[1])
        << "row " << r;
  }
}

TEST_F(PagedSnapshotTest, ErrorMessagesMatchTheWholeFileLoader) {
  Table table = MixedTable(800);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  std::ifstream in(Path("t.snap"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  struct Corruption {
    const char* name;
    std::function<std::string(std::string)> apply;
  };
  std::vector<Corruption> corruptions = {
      {"bad_magic",
       [](std::string b) {
         b[0] ^= 0x40;
         return b;
       }},
      {"schema_flip",
       [](std::string b) {
         b[8 + 12 + 2] ^= 0x01;  // inside the schema blob
         return b;
       }},
      {"payload_flip",
       [](std::string b) {
         b[b.size() / 2] ^= 0x01;  // inside some column payload
         return b;
       }},
      {"truncated_tail",
       [](std::string b) {
         b.resize(b.size() - 37);  // footer and part of the last column gone
         return b;
       }},
      {"truncated_header",
       [](std::string b) {
         b.resize(6);
         return b;
       }},
  };

  for (const Corruption& corruption : corruptions) {
    std::string path = Path(std::string("bad_") + corruption.name + ".snap");
    std::string mutated = corruption.apply(bytes);
    std::ofstream out(path, std::ios::binary);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();

    auto whole = store::LoadSnapshot(path);
    auto paged = OpenSnapshotPaged(path, TinyPool());
    ASSERT_FALSE(whole.ok()) << corruption.name;
    ASSERT_FALSE(paged.ok()) << corruption.name;
    EXPECT_EQ(paged.status().ToString(), whole.status().ToString())
        << corruption.name;
  }
}

TEST_F(PagedSnapshotTest, OpenFailpointSurfaces) {
  Table table = MixedTable(10);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  ASSERT_TRUE(Failpoints::Instance().Arm("pagestore.open", "error#1").ok());
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kIoError);
  EXPECT_TRUE(OpenSnapshotPaged(Path("t.snap"), TinyPool()).ok());
}

TEST_F(PagedSnapshotTest, EmptyExtensionOpensAndIndexes) {
  Table table = MixedTable(0);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("empty.snap")).ok());
  auto snap = OpenSnapshotPaged(Path("empty.snap"), TinyPool());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ((*snap)->num_rows(), 0u);
  auto index = (*snap)->KeyIndexFor(0);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_FALSE((*index)->ContainsKey(0));
}

TEST_F(PagedSnapshotTest, ExactInt64IndexProbesByBitPattern) {
  Table table = MixedTable(4000);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  auto index = (*snap)->KeyIndexFor(0);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_TRUE((*index)->exact());
  for (int i : {0, 1, 17, 3999}) {
    uint64_t key = static_cast<uint64_t>(int64_t{i} * 7 - 3);
    EXPECT_TRUE((*index)->ContainsKey(key)) << i;
    uint32_t probed_code = EncodedTable::kNullCode;
    ASSERT_TRUE((*index)
                    ->ForEachCode(key,
                                  [&](uint32_t code) {
                                    probed_code = code;
                                    return false;
                                  })
                    .ok());
    ASSERT_NE(probed_code, EncodedTable::kNullCode);
    auto value = (*snap)->DictValueAt(0, probed_code);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, Value::Int(int64_t{i} * 7 - 3));
  }
  EXPECT_FALSE((*index)->ContainsKey(static_cast<uint64_t>(int64_t{5})));
  EXPECT_FALSE((*index)->ContainsKey(static_cast<uint64_t>(int64_t{-4})));
}

TEST_F(PagedSnapshotTest, InexactIndexProbesBySketchHash) {
  Table table = MixedTable(600);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  auto index = (*snap)->KeyIndexFor(1);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_FALSE((*index)->exact());
  for (const char* city : {"paris", "namur", "liège"}) {
    uint64_t key = SketchHash(Value::Text(city));
    EXPECT_TRUE((*index)->ContainsKey(key)) << city;
    // An inexact hit must verify by decoding the candidate code.
    bool verified = false;
    ASSERT_TRUE((*index)
                    ->ForEachCode(key,
                                  [&](uint32_t code) {
                                    auto value = (*snap)->DictValueAt(1, code);
                                    EXPECT_TRUE(value.ok());
                                    if (value.ok() &&
                                        *value == Value::Text(city)) {
                                      verified = true;
                                      return false;
                                    }
                                    return true;
                                  })
                    .ok());
    EXPECT_TRUE(verified) << city;
  }
  EXPECT_FALSE((*index)->ContainsKey(SketchHash(Value::Text("bruxelles"))));
}

TEST_F(PagedSnapshotTest, SpilledIndexIsReusedAcrossOpens) {
  Table table = MixedTable(2500);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  {
    auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE((*snap)->KeyIndexFor(0).ok());
  }
  ASSERT_TRUE(fs::exists(Path("t.snap") + ".c0.idx"));

  // A fresh open must satisfy KeyIndexFor from the spilled file: with
  // writes failing, only a load can succeed.
  ASSERT_TRUE(
      Failpoints::Instance().Arm("pagestore.index_write", "error").ok());
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok());
  auto index = (*snap)->KeyIndexFor(0);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_TRUE(
      (*index)->ContainsKey(static_cast<uint64_t>(int64_t{17} * 7 - 3)));
}

TEST_F(PagedSnapshotTest, CorruptSpilledIndexIsRebuilt) {
  Table table = MixedTable(2500);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  {
    auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE((*snap)->KeyIndexFor(0).ok());
  }
  std::string idx_path = Path("t.snap") + ".c0.idx";
  {
    std::fstream f(idx_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\x7f');
  }
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok());
  auto index = (*snap)->KeyIndexFor(0);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_TRUE(
      (*index)->ContainsKey(static_cast<uint64_t>(int64_t{17} * 7 - 3)));
  EXPECT_FALSE((*index)->ContainsKey(static_cast<uint64_t>(int64_t{5})));
}

TEST_F(PagedSnapshotTest, IndexLoadFailpointFallsBackToRebuild) {
  Table table = MixedTable(1200);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  {
    auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE((*snap)->KeyIndexFor(0).ok());
  }
  ASSERT_TRUE(
      Failpoints::Instance().Arm("pagestore.index_load", "error#1").ok());
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok());
  auto index = (*snap)->KeyIndexFor(0);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_TRUE(
      (*index)->ContainsKey(static_cast<uint64_t>(int64_t{0} * 7 - 3)));
}

TEST_F(PagedSnapshotTest, IndexWriteFailpointSurfacesOnFirstBuild) {
  Table table = MixedTable(1200);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(
      Failpoints::Instance().Arm("pagestore.index_write", "error#1").ok());
  auto failed = (*snap)->KeyIndexFor(2);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  auto retried = (*snap)->KeyIndexFor(2);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST_F(PagedSnapshotTest, TornIndexWriteLeavesNoUsableFileBehind) {
  Table table = MixedTable(1200);
  ASSERT_TRUE(store::WriteSnapshot(table, Path("t.snap")).ok());
  ASSERT_TRUE(
      Failpoints::Instance().Arm("pagestore.index_write", "torn(40)#1").ok());
  {
    auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
    ASSERT_TRUE(snap.ok());
    auto failed = (*snap)->KeyIndexFor(0);
    ASSERT_FALSE(failed.ok());
    // The torn temp file never reached the final name.
    EXPECT_FALSE(fs::exists(Path("t.snap") + ".c0.idx"));
  }
  Failpoints::Instance().DisarmAll();
  auto snap = OpenSnapshotPaged(Path("t.snap"), TinyPool());
  ASSERT_TRUE(snap.ok());
  auto index = (*snap)->KeyIndexFor(0);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
}

}  // namespace
}  // namespace dbre::pagestore
