// An in-memory table: a relation schema plus its extension (set of tuples).
//
// Provides the primitive the paper's algorithms are built on — the ‖·‖
// operator (`select count distinct X from R`) — along with projections and
// constraint verification. Following SQL `count(distinct ...)` semantics,
// tuples containing NULL in any projected attribute are skipped by the
// distinct-counting operations.
#ifndef DBRE_RELATIONAL_TABLE_H_
#define DBRE_RELATIONAL_TABLE_H_

#include <functional>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"
#include "relational/paged_source.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace dbre {

class ExtensionRegistry;
class QueryCache;

// A set of projected rows, usable for inclusion / intersection tests.
using ValueVectorSet = std::unordered_set<ValueVector, ValueVectorHash>;

class Table {
 public:
  Table() = default;
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  RelationSchema& mutable_schema() { return schema_; }

  size_t num_rows() const {
    return paged_ != nullptr ? paged_->num_rows() : rows_->size();
  }

  // Materialized row access. A paged table has no materialized rows —
  // these die loudly rather than silently return an empty extension;
  // row-shaped consumers go through the query cache's RowReader instead.
  const std::vector<ValueVector>& rows() const {
    if (paged_ != nullptr) DiePagedAccess("rows()");
    return *rows_;
  }
  const ValueVector& row(size_t i) const {
    if (paged_ != nullptr) DiePagedAccess("row()");
    return (*rows_)[i];
  }

  // Whether the extension lives on disk behind a buffer pool instead of in
  // memory. Paged tables are read-only: Insert fails, and row()/rows()
  // abort (see above).
  bool is_paged() const { return paged_ != nullptr; }
  const std::shared_ptr<const PagedSource>& paged_source() const {
    return paged_;
  }
  // Physical source columns behind the schema's attributes, in order.
  const std::vector<uint32_t>& paged_columns() const {
    return paged_columns_;
  }
  // The content fingerprint of the paged extension (snapshot footer).
  uint64_t paged_fingerprint() const { return paged_->fingerprint(); }

  // Replaces the extension with a paged source whose physical columns
  // 0..arity-1 match the schema's attributes in order (declared types must
  // agree). The table becomes read-only.
  Status AdoptPagedExtension(std::shared_ptr<const PagedSource> source);

  // The shared row storage. Copying a Table shares it (copy-on-write: the
  // first mutation of either copy detaches that copy), and the query cache
  // pins it so lazily encoded columns always read the extension they were
  // built against, even if this Table is destroyed or mutated meanwhile.
  std::shared_ptr<const std::vector<ValueVector>> shared_rows() const {
    return rows_;
  }

  // Appends a tuple after validating arity, value types and not-null
  // declarations. Unique declarations are NOT checked here (that would make
  // bulk loads quadratic); use VerifyUniqueConstraints after loading.
  Status Insert(ValueVector row);

  // Appends without validation; for generators that construct rows known to
  // be well-formed.
  void InsertUnchecked(ValueVector row) {
    NoteAppend();
    mutable_rows_delta().push_back(std::move(row));
  }

  // Pre-sizes the row storage for a bulk load of `additional_rows` further
  // tuples, so the append loop never reallocates (and re-moves) the row
  // vector mid-load.
  void Reserve(size_t additional_rows) {
    NoteAppend();
    auto& rows = mutable_rows_delta();
    rows.reserve(rows.size() + additional_rows);
  }

  void Clear() {
    NoteStructural();
    paged_.reset();
    paged_columns_.clear();
    rows_ = std::make_shared<std::vector<ValueVector>>();
  }

  // --- Mutation path for live sessions (docs/INCREMENTAL.md) -------------

  // In-place update: assigns values[k] to column columns[k] of every row
  // satisfying `predicate`. Values are validated against declared types and
  // not-null declarations up front; a predicate matching nothing leaves the
  // extension, its cache and any pending delta untouched. Returns the
  // number of updated rows. Fails failed_precondition on a paged extension
  // (call EnsureMaterialized first).
  Result<size_t> UpdateRows(
      const std::vector<size_t>& columns, const ValueVector& values,
      const std::function<bool(const ValueVector&)>& predicate);

  // Removes every row satisfying `predicate`; returns how many. Row
  // removal is a structural change: the cache rebuilds cold (row-positional
  // state cannot be patched). Fails failed_precondition on a paged
  // extension.
  Result<size_t> DeleteRows(
      const std::function<bool(const ValueVector&)>& predicate);

  // Converts a paged (read-only) extension into materialized rows so it
  // can be mutated; no-op when already materialized. Mutations never write
  // through the buffer pool.
  Status EnsureMaterialized();

  // Detaches this table's extension from every sharing peer — the
  // ExtensionRegistry's canonical copy or a sibling session adopted via
  // AdoptSharedExtension — before a mutation: the shared query cache is
  // demoted to this table's private delta base and the row storage is
  // copied if anyone else still references it, so a write through this
  // table can never surface in another session's extension or invalidate
  // the registry's fingerprint-stamped snapshot. Mutators detach
  // implicitly; exposed so the service layer can detach up front when it
  // journals a mutation batch.
  void DetachForMutation();

  // Whether an incremental cache rebuild against a captured base is
  // pending (diagnostics and tests).
  bool has_pending_delta() const { return delta_base_ != nullptr; }

  // Streams every row of the extension in row order, in either mode:
  // materialized rows are visited directly; paged rows decode through the
  // query cache page-by-page. The row reference is only valid during the
  // call. Fails only when the extension cannot encode (never for loadable
  // paged sources).
  Status ForEachRow(const std::function<void(const ValueVector&)>& fn) const;

  // Removes an attribute from the schema and its column from every row
  // (used by Restruct when dependent attributes migrate to a new relation).
  Status DropAttribute(std::string_view name);

  // Column indexes for `attributes`, in the set's (sorted) order.
  Result<std::vector<size_t>> ProjectionIndexes(
      const AttributeSet& attributes) const;

  // The projected sub-row of `row` following `indexes`.
  static ValueVector ProjectRow(const ValueVector& row,
                                const std::vector<size_t>& indexes);

  // Distinct projection r[X] excluding sub-rows containing NULL.
  Result<ValueVectorSet> DistinctProjection(
      const AttributeSet& attributes) const;

  // ‖r[X]‖ — the number of distinct non-NULL sub-rows on `attributes`.
  Result<size_t> DistinctCount(const AttributeSet& attributes) const;

  // Verifies every declared unique constraint against the extension. NULLs
  // are excluded from the uniqueness check (SQL UNIQUE semantics).
  Status VerifyUniqueConstraints() const;

  // Verifies declared not-null attributes against the extension.
  Status VerifyNotNullConstraints() const;

  // The dictionary-encoded image of this extension plus its memoized query
  // results (see relational/query_cache.h), built lazily on first use and
  // dropped by every mutating member. Copying a Table shares the cache (it
  // is immutable and both copies start with identical rows); a subsequent
  // mutation of either copy detaches only that copy. Safe to call from
  // multiple threads concurrently, but not concurrently with a mutation —
  // the discovery algorithms only mutate between query phases.
  Result<std::shared_ptr<QueryCache>> query_cache() const;

  // Rewires this table to share `other`'s row storage and query cache when
  // both hold the same extension over the same column layout (equal
  // attribute names, types and rows, in order). Partitions and dictionaries
  // memoized through either table then serve both — the service layer uses
  // this to pool work across sessions that load the same extension (see
  // relational/extension_registry.h). Returns false, changing nothing, if
  // the layouts or extensions differ.
  bool AdoptSharedExtension(const Table& other);

  // Replaces the extension wholesale with storage the caller built outside
  // the Insert path — the snapshot loader (src/store/) decodes column pages
  // straight into a row vector and installs it here in one move. Rows must
  // match the schema's arity; cell types are trusted (the snapshot format
  // stores them per column and the loader constructs typed values).
  Status AdoptExtension(std::shared_ptr<std::vector<ValueVector>> rows);

  // Rough heap footprint of the extension (row vectors plus string
  // payloads; the schema and any query cache are not counted). Used for
  // per-session memory accounting.
  size_t ApproximateBytes() const;

 private:
  friend class ExtensionRegistry;

  [[noreturn]] static void DiePagedAccess(const char* what);

  // Copy-on-write access for mutators. Callers must reset cache_ first: a
  // cache held only by this table then releases its pin on the storage and
  // the common single-owner case mutates in place with no copy.
  std::vector<ValueVector>& mutable_rows() {
    if (paged_ != nullptr) DiePagedAccess("mutable_rows()");
    if (rows_.use_count() > 1) {
      rows_ = std::make_shared<std::vector<ValueVector>>(*rows_);
    }
    return *rows_;
  }

  // COW access for delta-tracked mutators (append / in-place update). A
  // pending delta base necessarily pins the pre-mutation storage; when the
  // base cache is exclusively ours (no registry canonical copy, no sibling
  // session — use_count 1) that pin is discounted, so a solo session
  // mutates in place: the base's ready code columns are immutable copies
  // and BuildDelta never re-encodes through the base, so growing or
  // updating the shared vector under it is safe. Any cross-table sharing
  // still copies.
  std::vector<ValueVector>& mutable_rows_delta() {
    if (paged_ != nullptr) DiePagedAccess("mutable_rows()");
    const long discounted =
        delta_base_ != nullptr && delta_base_.use_count() == 1 &&
                delta_pinned_rows_ == rows_.get()
            ? 1
            : 0;
    if (rows_.use_count() > 1 + discounted) {
      rows_ = std::make_shared<std::vector<ValueVector>>(*rows_);
    }
    return *rows_;
  }

  // Captures the current cache as the pending delta base so the next
  // query_cache() rebuilds incrementally (QueryCache::BuildDelta) instead
  // of cold. NoteAppend marks an append-only batch; NoteUpdate additionally
  // records in-place-updated schema columns; NoteStructural (row removal,
  // attribute drops, wholesale adoption) discards any pending delta.
  void NoteAppend();
  void NoteUpdate(const std::vector<size_t>& columns);
  void NoteStructural();

  RelationSchema schema_;
  std::shared_ptr<std::vector<ValueVector>> rows_ =
      std::make_shared<std::vector<ValueVector>>();
  std::shared_ptr<const PagedSource> paged_;
  std::vector<uint32_t> paged_columns_;
  mutable std::shared_ptr<QueryCache> cache_;
  // Pending incremental rebuild: the cache as of delta_base_rows_ rows,
  // with delta_updated_columns_ (sorted, unique) updated in place since.
  // delta_pinned_rows_ remembers which storage the base was built over, so
  // mutable_rows_delta only discounts its pin while they still coincide.
  // Mutable because query_cache() (const) consumes the delta.
  mutable std::shared_ptr<QueryCache> delta_base_;
  mutable size_t delta_base_rows_ = 0;
  mutable std::vector<size_t> delta_updated_columns_;
  mutable const void* delta_pinned_rows_ = nullptr;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_TABLE_H_
