// An in-memory table: a relation schema plus its extension (set of tuples).
//
// Provides the primitive the paper's algorithms are built on — the ‖·‖
// operator (`select count distinct X from R`) — along with projections and
// constraint verification. Following SQL `count(distinct ...)` semantics,
// tuples containing NULL in any projected attribute are skipped by the
// distinct-counting operations.
#ifndef DBRE_RELATIONAL_TABLE_H_
#define DBRE_RELATIONAL_TABLE_H_

#include <functional>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"
#include "relational/paged_source.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace dbre {

class ExtensionRegistry;
class QueryCache;

// A set of projected rows, usable for inclusion / intersection tests.
using ValueVectorSet = std::unordered_set<ValueVector, ValueVectorHash>;

class Table {
 public:
  Table() = default;
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  RelationSchema& mutable_schema() { return schema_; }

  size_t num_rows() const {
    return paged_ != nullptr ? paged_->num_rows() : rows_->size();
  }

  // Materialized row access. A paged table has no materialized rows —
  // these die loudly rather than silently return an empty extension;
  // row-shaped consumers go through the query cache's RowReader instead.
  const std::vector<ValueVector>& rows() const {
    if (paged_ != nullptr) DiePagedAccess("rows()");
    return *rows_;
  }
  const ValueVector& row(size_t i) const {
    if (paged_ != nullptr) DiePagedAccess("row()");
    return (*rows_)[i];
  }

  // Whether the extension lives on disk behind a buffer pool instead of in
  // memory. Paged tables are read-only: Insert fails, and row()/rows()
  // abort (see above).
  bool is_paged() const { return paged_ != nullptr; }
  const std::shared_ptr<const PagedSource>& paged_source() const {
    return paged_;
  }
  // Physical source columns behind the schema's attributes, in order.
  const std::vector<uint32_t>& paged_columns() const {
    return paged_columns_;
  }
  // The content fingerprint of the paged extension (snapshot footer).
  uint64_t paged_fingerprint() const { return paged_->fingerprint(); }

  // Replaces the extension with a paged source whose physical columns
  // 0..arity-1 match the schema's attributes in order (declared types must
  // agree). The table becomes read-only.
  Status AdoptPagedExtension(std::shared_ptr<const PagedSource> source);

  // The shared row storage. Copying a Table shares it (copy-on-write: the
  // first mutation of either copy detaches that copy), and the query cache
  // pins it so lazily encoded columns always read the extension they were
  // built against, even if this Table is destroyed or mutated meanwhile.
  std::shared_ptr<const std::vector<ValueVector>> shared_rows() const {
    return rows_;
  }

  // Appends a tuple after validating arity, value types and not-null
  // declarations. Unique declarations are NOT checked here (that would make
  // bulk loads quadratic); use VerifyUniqueConstraints after loading.
  Status Insert(ValueVector row);

  // Appends without validation; for generators that construct rows known to
  // be well-formed.
  void InsertUnchecked(ValueVector row) {
    cache_.reset();
    mutable_rows().push_back(std::move(row));
  }

  // Pre-sizes the row storage for a bulk load of `additional_rows` further
  // tuples, so the append loop never reallocates (and re-moves) the row
  // vector mid-load.
  void Reserve(size_t additional_rows) {
    cache_.reset();
    auto& rows = mutable_rows();
    rows.reserve(rows.size() + additional_rows);
  }

  void Clear() {
    cache_.reset();
    paged_.reset();
    paged_columns_.clear();
    rows_ = std::make_shared<std::vector<ValueVector>>();
  }

  // Streams every row of the extension in row order, in either mode:
  // materialized rows are visited directly; paged rows decode through the
  // query cache page-by-page. The row reference is only valid during the
  // call. Fails only when the extension cannot encode (never for loadable
  // paged sources).
  Status ForEachRow(const std::function<void(const ValueVector&)>& fn) const;

  // Removes an attribute from the schema and its column from every row
  // (used by Restruct when dependent attributes migrate to a new relation).
  Status DropAttribute(std::string_view name);

  // Column indexes for `attributes`, in the set's (sorted) order.
  Result<std::vector<size_t>> ProjectionIndexes(
      const AttributeSet& attributes) const;

  // The projected sub-row of `row` following `indexes`.
  static ValueVector ProjectRow(const ValueVector& row,
                                const std::vector<size_t>& indexes);

  // Distinct projection r[X] excluding sub-rows containing NULL.
  Result<ValueVectorSet> DistinctProjection(
      const AttributeSet& attributes) const;

  // ‖r[X]‖ — the number of distinct non-NULL sub-rows on `attributes`.
  Result<size_t> DistinctCount(const AttributeSet& attributes) const;

  // Verifies every declared unique constraint against the extension. NULLs
  // are excluded from the uniqueness check (SQL UNIQUE semantics).
  Status VerifyUniqueConstraints() const;

  // Verifies declared not-null attributes against the extension.
  Status VerifyNotNullConstraints() const;

  // The dictionary-encoded image of this extension plus its memoized query
  // results (see relational/query_cache.h), built lazily on first use and
  // dropped by every mutating member. Copying a Table shares the cache (it
  // is immutable and both copies start with identical rows); a subsequent
  // mutation of either copy detaches only that copy. Safe to call from
  // multiple threads concurrently, but not concurrently with a mutation —
  // the discovery algorithms only mutate between query phases.
  Result<std::shared_ptr<QueryCache>> query_cache() const;

  // Rewires this table to share `other`'s row storage and query cache when
  // both hold the same extension over the same column layout (equal
  // attribute names, types and rows, in order). Partitions and dictionaries
  // memoized through either table then serve both — the service layer uses
  // this to pool work across sessions that load the same extension (see
  // relational/extension_registry.h). Returns false, changing nothing, if
  // the layouts or extensions differ.
  bool AdoptSharedExtension(const Table& other);

  // Replaces the extension wholesale with storage the caller built outside
  // the Insert path — the snapshot loader (src/store/) decodes column pages
  // straight into a row vector and installs it here in one move. Rows must
  // match the schema's arity; cell types are trusted (the snapshot format
  // stores them per column and the loader constructs typed values).
  Status AdoptExtension(std::shared_ptr<std::vector<ValueVector>> rows);

  // Rough heap footprint of the extension (row vectors plus string
  // payloads; the schema and any query cache are not counted). Used for
  // per-session memory accounting.
  size_t ApproximateBytes() const;

 private:
  friend class ExtensionRegistry;

  [[noreturn]] static void DiePagedAccess(const char* what);

  // Copy-on-write access for mutators. Callers must reset cache_ first: a
  // cache held only by this table then releases its pin on the storage and
  // the common single-owner case mutates in place with no copy.
  std::vector<ValueVector>& mutable_rows() {
    if (paged_ != nullptr) DiePagedAccess("mutable_rows()");
    if (rows_.use_count() > 1) {
      rows_ = std::make_shared<std::vector<ValueVector>>(*rows_);
    }
    return *rows_;
  }

  RelationSchema schema_;
  std::shared_ptr<std::vector<ValueVector>> rows_ =
      std::make_shared<std::vector<ValueVector>>();
  std::shared_ptr<const PagedSource> paged_;
  std::vector<uint32_t> paged_columns_;
  mutable std::shared_ptr<QueryCache> cache_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_TABLE_H_
