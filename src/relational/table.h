// An in-memory table: a relation schema plus its extension (set of tuples).
//
// Provides the primitive the paper's algorithms are built on — the ‖·‖
// operator (`select count distinct X from R`) — along with projections and
// constraint verification. Following SQL `count(distinct ...)` semantics,
// tuples containing NULL in any projected attribute are skipped by the
// distinct-counting operations.
#ifndef DBRE_RELATIONAL_TABLE_H_
#define DBRE_RELATIONAL_TABLE_H_

#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace dbre {

// A set of projected rows, usable for inclusion / intersection tests.
using ValueVectorSet = std::unordered_set<ValueVector, ValueVectorHash>;

class Table {
 public:
  Table() = default;
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  RelationSchema& mutable_schema() { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  const std::vector<ValueVector>& rows() const { return rows_; }
  const ValueVector& row(size_t i) const { return rows_[i]; }

  // Appends a tuple after validating arity, value types and not-null
  // declarations. Unique declarations are NOT checked here (that would make
  // bulk loads quadratic); use VerifyUniqueConstraints after loading.
  Status Insert(ValueVector row);

  // Appends without validation; for generators that construct rows known to
  // be well-formed.
  void InsertUnchecked(ValueVector row) { rows_.push_back(std::move(row)); }

  void Clear() { rows_.clear(); }

  // Removes an attribute from the schema and its column from every row
  // (used by Restruct when dependent attributes migrate to a new relation).
  Status DropAttribute(std::string_view name);

  // Column indexes for `attributes`, in the set's (sorted) order.
  Result<std::vector<size_t>> ProjectionIndexes(
      const AttributeSet& attributes) const;

  // The projected sub-row of `row` following `indexes`.
  static ValueVector ProjectRow(const ValueVector& row,
                                const std::vector<size_t>& indexes);

  // Distinct projection r[X] excluding sub-rows containing NULL.
  Result<ValueVectorSet> DistinctProjection(
      const AttributeSet& attributes) const;

  // ‖r[X]‖ — the number of distinct non-NULL sub-rows on `attributes`.
  Result<size_t> DistinctCount(const AttributeSet& attributes) const;

  // Verifies every declared unique constraint against the extension. NULLs
  // are excluded from the uniqueness check (SQL UNIQUE semantics).
  Status VerifyUniqueConstraints() const;

  // Verifies declared not-null attributes against the extension.
  Status VerifyNotNullConstraints() const;

 private:
  RelationSchema schema_;
  std::vector<ValueVector> rows_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_TABLE_H_
