#include "relational/value.h"

#include <charconv>
#include <cmath>
#include <functional>
#include <sstream>

#include "common/string_util.h"

namespace dbre {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kBool:
      return "bool";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

Result<DataType> DataTypeFromName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "int64" || lower == "int" || lower == "integer") {
    return DataType::kInt64;
  }
  if (lower == "double" || lower == "real" || lower == "float") {
    return DataType::kDouble;
  }
  if (lower == "bool" || lower == "boolean") return DataType::kBool;
  if (lower == "string" || lower == "text" || lower == "varchar") {
    return DataType::kString;
  }
  return InvalidArgumentError("unknown data type name: " + std::string(name));
}

bool Value::MatchesType(DataType type) const {
  if (is_null()) return true;
  switch (type) {
    case DataType::kInt64:
      return is_int();
    case DataType::kDouble:
      return is_real();
    case DataType::kBool:
      return is_bool();
    case DataType::kString:
      return is_text();
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_real()) {
    std::ostringstream os;
    os << as_real();
    return os.str();
  }
  return as_text();
}

Result<Value> Value::Parse(std::string_view text, DataType type,
                           NullHandling nulls) {
  std::string_view trimmed = TrimWhitespace(text);
  if (nulls == NullHandling::kLenient &&
      (trimmed.empty() || EqualsIgnoreCase(trimmed, "null"))) {
    return Value::Null();
  }
  switch (type) {
    case DataType::kInt64: {
      int64_t parsed = 0;
      auto [ptr, ec] =
          std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(),
                          parsed);
      if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
        return ParseError("not an int64: '" + std::string(trimmed) + "'");
      }
      return Value::Int(parsed);
    }
    case DataType::kDouble: {
      // std::from_chars for double is unreliable across libstdc++ versions;
      // use strtod on a NUL-terminated copy.
      std::string copy(trimmed);
      char* end = nullptr;
      double parsed = std::strtod(copy.c_str(), &end);
      if (end != copy.c_str() + copy.size()) {
        return ParseError("not a double: '" + copy + "'");
      }
      return Value::Real(parsed);
    }
    case DataType::kBool: {
      if (EqualsIgnoreCase(trimmed, "true") || trimmed == "1") {
        return Value::Boolean(true);
      }
      if (EqualsIgnoreCase(trimmed, "false") || trimmed == "0") {
        return Value::Boolean(false);
      }
      return ParseError("not a bool: '" + std::string(trimmed) + "'");
    }
    case DataType::kString:
      return Value::Text(std::string(trimmed));
  }
  return InternalError("unhandled data type in Value::Parse");
}

size_t Value::Hash() const {
  size_t tag = data_.index();
  size_t payload = 0;
  if (is_int()) {
    payload = std::hash<int64_t>()(as_int());
  } else if (is_real()) {
    payload = std::hash<double>()(as_real());
  } else if (is_bool()) {
    payload = std::hash<bool>()(as_bool());
  } else if (is_text()) {
    payload = std::hash<std::string>()(as_text());
  }
  return payload * 1099511628211ULL + tag;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

size_t ValueVectorHash::operator()(const ValueVector& values) const {
  size_t h = 14695981039346656037ULL;
  for (const Value& v : values) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace dbre
