#include "relational/paged_source.h"

#include <atomic>

namespace dbre {

namespace {
std::atomic<bool> g_paged_index_enabled{true};
}  // namespace

bool PagedIndexEnabled() {
  return g_paged_index_enabled.load(std::memory_order_relaxed);
}

void SetPagedIndexEnabled(bool enabled) {
  g_paged_index_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace dbre
