#include "relational/attribute_set.h"

#include <algorithm>

namespace dbre {

AttributeSet::AttributeSet(std::initializer_list<std::string> names)
    : names_(names) {
  Normalize();
}

AttributeSet::AttributeSet(std::vector<std::string> names)
    : names_(std::move(names)) {
  Normalize();
}

AttributeSet AttributeSet::Single(std::string name) {
  AttributeSet set;
  set.names_.push_back(std::move(name));
  return set;
}

void AttributeSet::Normalize() {
  std::sort(names_.begin(), names_.end());
  names_.erase(std::unique(names_.begin(), names_.end()), names_.end());
}

bool AttributeSet::Contains(std::string_view name) const {
  return std::binary_search(names_.begin(), names_.end(), name);
}

bool AttributeSet::ContainsAll(const AttributeSet& other) const {
  return std::includes(names_.begin(), names_.end(), other.names_.begin(),
                       other.names_.end());
}

bool AttributeSet::Intersects(const AttributeSet& other) const {
  auto it_a = names_.begin();
  auto it_b = other.names_.begin();
  while (it_a != names_.end() && it_b != other.names_.end()) {
    if (*it_a == *it_b) return true;
    if (*it_a < *it_b) {
      ++it_a;
    } else {
      ++it_b;
    }
  }
  return false;
}

void AttributeSet::Insert(std::string name) {
  auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) names_.insert(it, std::move(name));
}

void AttributeSet::Remove(std::string_view name) {
  auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it != names_.end() && *it == name) names_.erase(it);
}

AttributeSet AttributeSet::Union(const AttributeSet& other) const {
  AttributeSet out;
  std::set_union(names_.begin(), names_.end(), other.names_.begin(),
                 other.names_.end(), std::back_inserter(out.names_));
  return out;
}

AttributeSet AttributeSet::Minus(const AttributeSet& other) const {
  AttributeSet out;
  std::set_difference(names_.begin(), names_.end(), other.names_.begin(),
                      other.names_.end(), std::back_inserter(out.names_));
  return out;
}

AttributeSet AttributeSet::Intersect(const AttributeSet& other) const {
  AttributeSet out;
  std::set_intersection(names_.begin(), names_.end(), other.names_.begin(),
                        other.names_.end(), std::back_inserter(out.names_));
  return out;
}

std::string AttributeSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i];
  }
  out += "}";
  return out;
}

std::ostream& operator<<(std::ostream& os, const AttributeSet& set) {
  return os << set.ToString();
}

std::string QualifiedAttributes::ToString() const {
  return relation + "." + attributes.ToString();
}

std::ostream& operator<<(std::ostream& os, const QualifiedAttributes& qa) {
  return os << qa.ToString();
}

}  // namespace dbre
