#include "relational/database.h"

namespace dbre {

Database Database::Clone() const {
  Database copy;
  copy.tables_ = tables_;
  return copy;
}

Status Database::CreateRelation(RelationSchema schema) {
  if (schema.name().empty()) {
    return InvalidArgumentError("relation name must not be empty");
  }
  if (HasRelation(schema.name())) {
    return AlreadyExistsError("relation already exists: " + schema.name());
  }
  std::string name = schema.name();
  tables_.emplace(std::move(name), Table(std::move(schema)));
  return Status::Ok();
}

Status Database::AddTable(Table table) {
  if (table.schema().name().empty()) {
    return InvalidArgumentError("relation name must not be empty");
  }
  if (HasRelation(table.schema().name())) {
    return AlreadyExistsError("relation already exists: " +
                              table.schema().name());
  }
  std::string name = table.schema().name();
  tables_.emplace(std::move(name), std::move(table));
  return Status::Ok();
}

Status Database::DropRelation(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFoundError("no relation " + std::string(name));
  }
  tables_.erase(it);
  return Status::Ok();
}

bool Database::HasRelation(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

Result<const Table*> Database::GetTable(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFoundError("no relation " + std::string(name));
  }
  return &it->second;
}

Result<Table*> Database::GetMutableTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFoundError("no relation " + std::string(name));
  }
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

std::vector<QualifiedAttributes> Database::KeySet() const {
  std::vector<QualifiedAttributes> keys;
  for (const auto& [name, table] : tables_) {
    for (const AttributeSet& unique : table.schema().unique_constraints()) {
      keys.push_back(QualifiedAttributes{name, unique});
    }
  }
  return keys;
}

std::vector<QualifiedAttributes> Database::NotNullSet() const {
  std::vector<QualifiedAttributes> not_null;
  for (const auto& [name, table] : tables_) {
    for (const std::string& attribute :
         table.schema().NotNullAttributes()) {
      not_null.push_back(
          QualifiedAttributes{name, AttributeSet::Single(attribute)});
    }
  }
  return not_null;
}

bool Database::IsDeclaredKey(std::string_view relation,
                             const AttributeSet& attributes) const {
  auto it = tables_.find(relation);
  if (it == tables_.end()) return false;
  return it->second.schema().IsKey(attributes);
}

Status Database::VerifyDeclaredConstraints() const {
  for (const auto& [name, table] : tables_) {
    DBRE_RETURN_IF_ERROR(table.VerifyUniqueConstraints());
    DBRE_RETURN_IF_ERROR(table.VerifyNotNullConstraints());
  }
  return Status::Ok();
}

std::string Database::DescribeSchema() const {
  std::string out;
  for (const auto& [name, table] : tables_) {
    out += table.schema().ToString();
    out += "  [";
    out += std::to_string(table.num_rows());
    out += " tuples]\n";
  }
  return out;
}

}  // namespace dbre
