#include "relational/encoded_table.h"

#include <bit>
#include <cmath>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/flat_hash.h"
#include "relational/table.h"

namespace dbre {
namespace {

// Builds the dictionary for column `c` with a flat fixed-capacity map over
// a 64-bit packing of the payload. Returns false (leaving the outputs
// cleared) on the first cell whose tag does not match, so the caller can
// fall back to generic Value hashing. `always_fresh` marks values that
// never compare equal to anything (NaN) and therefore always get a fresh
// code, matching Value::operator== semantics.
template <typename MatchesFn, typename KeyFn, typename FreshFn>
bool PackedEncode(const std::vector<ValueVector>& rows, size_t c,
                  MatchesFn matches, KeyFn key_of, FreshFn always_fresh,
                  std::vector<uint32_t>* codes, std::vector<Value>* dictionary,
                  bool* has_null) {
  FlatMap64 assigned(rows.size());
  uint32_t next = 0;
  for (const ValueVector& row : rows) {
    const Value& value = row[c];
    if (value.is_null()) {
      *has_null = true;
      codes->push_back(EncodedTable::kNullCode);
      continue;
    }
    if (!matches(value)) {
      codes->clear();
      dictionary->clear();
      *has_null = false;
      return false;
    }
    if (always_fresh(value)) {
      codes->push_back(next);
      dictionary->push_back(value);
      ++next;
      continue;
    }
    uint32_t code = assigned.FindOrInsert(key_of(value), next);
    if (code == next) {
      dictionary->push_back(value);
      ++next;
    }
    codes->push_back(code);
  }
  return true;
}

constexpr auto kNeverFresh = [](const Value&) { return false; };

// -0.0 and 0.0 compare equal but have distinct bit patterns; fold them.
uint64_t DoubleKey(double d) {
  return std::bit_cast<uint64_t>(d == 0.0 ? 0.0 : d);
}

}  // namespace

EncodedTable::EncodedTable(
    std::shared_ptr<const std::vector<ValueVector>> rows,
    std::vector<DataType> types)
    : rows_(std::move(rows)), types_(std::move(types)) {
  columns_.resize(types_.size());
}

Result<EncodedTable> EncodedTable::Build(const Table& table) {
  if (table.num_rows() >= kNullCode) {
    return InternalError("extension too large to encode: " +
                         table.schema().name());
  }
  std::vector<DataType> types;
  types.reserve(table.schema().arity());
  for (const Attribute& attribute : table.schema().attributes()) {
    types.push_back(attribute.type);
  }
  EncodedTable encoded(table.shared_rows(), std::move(types));
  for (size_t c = 0; c < encoded.num_columns(); ++c) encoded.EnsureColumn(c);
  return encoded;
}

void EncodedTable::EnsureColumn(size_t c) {
  Column& column = columns_[c];
  if (column.ready) return;
  column.codes.reserve(rows_->size());
  column.typed = EncodeDeclared(c, &column);
  if (!column.typed) EncodeGeneric(c, &column);
  column.ready = true;
}

bool EncodedTable::EncodeDeclared(size_t c, Column* column) {
  const std::vector<ValueVector>& rows = *rows_;
  switch (types_[c]) {
    case DataType::kInt64:
      return PackedEncode(
          rows, c, [](const Value& v) { return v.is_int(); },
          [](const Value& v) { return static_cast<uint64_t>(v.as_int()); },
          kNeverFresh, &column->codes, &column->dictionary,
          &column->has_null);
    case DataType::kDouble:
      // NaN never equals anything (Value::operator== included), so every
      // NaN occurrence is its own dictionary entry, never a map key.
      return PackedEncode(
          rows, c, [](const Value& v) { return v.is_real(); },
          [](const Value& v) { return DoubleKey(v.as_real()); },
          [](const Value& v) { return std::isnan(v.as_real()); },
          &column->codes, &column->dictionary, &column->has_null);
    case DataType::kBool:
      return PackedEncode(
          rows, c, [](const Value& v) { return v.is_bool(); },
          [](const Value& v) { return static_cast<uint64_t>(v.as_bool()); },
          kNeverFresh, &column->codes, &column->dictionary,
          &column->has_null);
    case DataType::kString: {
      // Keys view into the pinned row storage, which outlives the build.
      std::unordered_map<std::string_view, uint32_t> assigned;
      assigned.reserve(rows.size());
      for (const ValueVector& row : rows) {
        const Value& value = row[c];
        if (value.is_null()) {
          column->has_null = true;
          column->codes.push_back(kNullCode);
          continue;
        }
        if (!value.is_text()) {
          column->codes.clear();
          column->dictionary.clear();
          column->has_null = false;
          return false;
        }
        auto [it, inserted] =
            assigned.try_emplace(std::string_view(value.as_text()),
                                 static_cast<uint32_t>(assigned.size()));
        if (inserted) column->dictionary.push_back(value);
        column->codes.push_back(it->second);
      }
      return true;
    }
  }
  return false;
}

void EncodedTable::EncodeGeneric(size_t c, Column* column) {
  std::unordered_map<Value, uint32_t, ValueHash> assigned;
  assigned.reserve(rows_->size());
  for (const ValueVector& row : *rows_) {
    const Value& value = row[c];
    if (value.is_null()) {
      column->has_null = true;
      column->codes.push_back(kNullCode);
      continue;
    }
    auto [it, inserted] =
        assigned.try_emplace(value, static_cast<uint32_t>(assigned.size()));
    if (inserted) column->dictionary.push_back(value);
    column->codes.push_back(it->second);
  }
}

ValueVector EncodedTable::DecodeRow(size_t row,
                                    const std::vector<size_t>& columns) const {
  ValueVector out;
  out.reserve(columns.size());
  for (size_t c : columns) {
    uint32_t code = columns_[c].codes[row];
    out.push_back(code == kNullCode ? Value::Null() : Decode(c, code));
  }
  return out;
}

}  // namespace dbre
