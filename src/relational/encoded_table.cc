#include "relational/encoded_table.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/flat_hash.h"
#include "relational/table.h"

namespace dbre {
namespace {

// Paged dictionary reads happen after the source verified clean at open;
// a failure here is a real environment fault and EnsureColumn/DecodeValue
// have no error channel (see the contract in relational/paged_source.h).
[[noreturn]] void DiePagedDict(const Status& status) {
  std::fprintf(stderr,
               "dbre: unrecoverable paged dictionary read failure: %s\n",
               status.ToString().c_str());
  std::abort();
}

// Builds the dictionary for column `c` with a flat fixed-capacity map over
// a 64-bit packing of the payload. Returns false (leaving the outputs
// cleared) on the first cell whose tag does not match, so the caller can
// fall back to generic Value hashing. `always_fresh` marks values that
// never compare equal to anything (NaN) and therefore always get a fresh
// code, matching Value::operator== semantics.
template <typename MatchesFn, typename KeyFn, typename FreshFn>
bool PackedEncode(const std::vector<ValueVector>& rows, size_t c,
                  MatchesFn matches, KeyFn key_of, FreshFn always_fresh,
                  std::vector<uint32_t>* codes, std::vector<Value>* dictionary,
                  bool* has_null) {
  FlatMap64 assigned(rows.size());
  uint32_t next = 0;
  for (const ValueVector& row : rows) {
    const Value& value = row[c];
    if (value.is_null()) {
      *has_null = true;
      codes->push_back(EncodedTable::kNullCode);
      continue;
    }
    if (!matches(value)) {
      codes->clear();
      dictionary->clear();
      *has_null = false;
      return false;
    }
    if (always_fresh(value)) {
      codes->push_back(next);
      dictionary->push_back(value);
      ++next;
      continue;
    }
    uint32_t code = assigned.FindOrInsert(key_of(value), next);
    if (code == next) {
      dictionary->push_back(value);
      ++next;
    }
    codes->push_back(code);
  }
  return true;
}

constexpr auto kNeverFresh = [](const Value&) { return false; };

// -0.0 and 0.0 compare equal but have distinct bit patterns; fold them.
uint64_t DoubleKey(double d) {
  return std::bit_cast<uint64_t>(d == 0.0 ? 0.0 : d);
}

}  // namespace

EncodedTable::EncodedTable(
    std::shared_ptr<const std::vector<ValueVector>> rows,
    std::vector<DataType> types)
    : rows_(std::move(rows)), types_(std::move(types)) {
  columns_.resize(types_.size());
}

EncodedTable::EncodedTable(std::shared_ptr<const PagedSource> source,
                           std::vector<DataType> types,
                           std::vector<uint32_t> column_map)
    : types_(std::move(types)),
      paged_(std::move(source)),
      paged_columns_(std::move(column_map)) {
  columns_.resize(types_.size());
}

Result<EncodedTable> EncodedTable::Build(const Table& table) {
  if (table.num_rows() >= kNullCode) {
    return InternalError("extension too large to encode: " +
                         table.schema().name());
  }
  std::vector<DataType> types;
  types.reserve(table.schema().arity());
  for (const Attribute& attribute : table.schema().attributes()) {
    types.push_back(attribute.type);
  }
  EncodedTable encoded(table.shared_rows(), std::move(types));
  for (size_t c = 0; c < encoded.num_columns(); ++c) encoded.EnsureColumn(c);
  return encoded;
}

void EncodedTable::EnsureColumn(size_t c) {
  Column& column = columns_[c];
  if (column.ready) return;
  if (paged_ != nullptr) {
    uint32_t pc = paged_columns_[c];
    column.has_null = paged_->has_null(pc);
    column.typed = paged_->typed(pc);
    column.dict_count = paged_->dict_size(pc);
    if (column.dict_count <= kPagedDictMaterializeLimit) {
      column.dictionary.reserve(column.dict_count);
      Status status = paged_->ForEachDictValue(
          pc, [&](uint32_t, const Value& value) {
            column.dictionary.push_back(value);
          });
      if (!status.ok()) DiePagedDict(status);
    }
    column.ready = true;
    return;
  }
  column.codes.reserve(rows_->size());
  column.typed = EncodeDeclared(c, &column);
  if (!column.typed) EncodeGeneric(c, &column);
  column.dict_count = static_cast<uint32_t>(column.dictionary.size());
  column.ready = true;
}

void EncodedTable::ExtendColumnFrom(const EncodedTable& base, size_t c,
                                    size_t base_rows) {
  Column& column = columns_[c];
  if (column.ready) return;
  const Column& from = base.columns_[c];
  column.codes.reserve(rows_->size());
  column.codes.assign(from.codes.begin(), from.codes.end());
  column.dictionary = from.dictionary;
  column.has_null = from.has_null;
  if (rows_->size() == base_rows) {
    // Pure in-place update of some other column: no suffix to encode, the
    // base encoding is this encoding. Skip the dictionary-map seeding —
    // it is O(dict) in Value hashes and dominates large-extension deltas.
    column.dict_count = from.dict_count;
    column.typed = from.typed;
    column.ready = true;
    return;
  }
  // Seed the generic encoder's map with the base dictionary. Value::Hash
  // and Value::operator== fold ±0.0 exactly like the typed fast paths, and
  // NaN dictionary entries never match a lookup (each NaN stays its own
  // code), so the seeded map is byte-for-byte the state a cold generic
  // encode reaches after base_rows rows — and cold typed and cold generic
  // encodes produce identical dictionaries by construction.
  std::unordered_map<Value, uint32_t, ValueHash> assigned;
  assigned.reserve(column.dictionary.size() + (rows_->size() - base_rows));
  for (uint32_t code = 0; code < column.dictionary.size(); ++code) {
    assigned.try_emplace(column.dictionary[code], code);
  }
  bool typed = from.typed;
  auto matches_declared = [this, c](const Value& v) {
    switch (types_[c]) {
      case DataType::kInt64:
        return v.is_int();
      case DataType::kDouble:
        return v.is_real();
      case DataType::kBool:
        return v.is_bool();
      case DataType::kString:
        return v.is_text();
    }
    return false;
  };
  for (size_t r = base_rows; r < rows_->size(); ++r) {
    const Value& value = (*rows_)[r][c];
    if (value.is_null()) {
      column.has_null = true;
      column.codes.push_back(kNullCode);
      continue;
    }
    if (typed && !matches_declared(value)) typed = false;
    auto [it, inserted] =
        assigned.try_emplace(value, static_cast<uint32_t>(assigned.size()));
    if (inserted) column.dictionary.push_back(value);
    column.codes.push_back(it->second);
  }
  column.typed = typed;
  column.dict_count = static_cast<uint32_t>(column.dictionary.size());
  column.ready = true;
}

EncodedTable::CodeReader EncodedTable::codes_reader(size_t c) const {
  if (paged_ != nullptr) {
    return CodeReader(paged_->Codes(paged_columns_[c]));
  }
  return CodeReader(columns_[c].codes.data());
}

Value EncodedTable::DecodeValue(size_t c, uint32_t code) const {
  const Column& column = columns_[c];
  if (code < column.dictionary.size()) return column.dictionary[code];
  Result<Value> value = paged_->DictValueAt(paged_columns_[c], code);
  if (!value.ok()) DiePagedDict(value.status());
  return *std::move(value);
}

Status EncodedTable::ForEachDictValue(
    size_t c,
    const std::function<void(uint32_t code, const Value& value)>& fn) const {
  const Column& column = columns_[c];
  if (column.dictionary.size() == column.dict_count) {
    for (uint32_t code = 0; code < column.dict_count; ++code) {
      fn(code, column.dictionary[code]);
    }
    return Status::Ok();
  }
  return paged_->ForEachDictValue(paged_columns_[c], fn);
}

EncodedTable::RowReader::RowReader(const EncodedTable* encoded,
                                   std::vector<size_t> columns)
    : encoded_(encoded), columns_(std::move(columns)) {
  readers_.reserve(columns_.size());
  for (size_t c : columns_) readers_.push_back(encoded_->codes_reader(c));
}

void EncodedTable::RowReader::Read(size_t row, ValueVector* out) {
  out->clear();
  for (size_t k = 0; k < columns_.size(); ++k) {
    uint32_t code = readers_[k].At(row);
    out->push_back(code == kNullCode
                       ? Value::Null()
                       : encoded_->DecodeValue(columns_[k], code));
  }
}

bool EncodedTable::EncodeDeclared(size_t c, Column* column) {
  const std::vector<ValueVector>& rows = *rows_;
  switch (types_[c]) {
    case DataType::kInt64:
      return PackedEncode(
          rows, c, [](const Value& v) { return v.is_int(); },
          [](const Value& v) { return static_cast<uint64_t>(v.as_int()); },
          kNeverFresh, &column->codes, &column->dictionary,
          &column->has_null);
    case DataType::kDouble:
      // NaN never equals anything (Value::operator== included), so every
      // NaN occurrence is its own dictionary entry, never a map key.
      return PackedEncode(
          rows, c, [](const Value& v) { return v.is_real(); },
          [](const Value& v) { return DoubleKey(v.as_real()); },
          [](const Value& v) { return std::isnan(v.as_real()); },
          &column->codes, &column->dictionary, &column->has_null);
    case DataType::kBool:
      return PackedEncode(
          rows, c, [](const Value& v) { return v.is_bool(); },
          [](const Value& v) { return static_cast<uint64_t>(v.as_bool()); },
          kNeverFresh, &column->codes, &column->dictionary,
          &column->has_null);
    case DataType::kString: {
      // Keys view into the pinned row storage, which outlives the build.
      std::unordered_map<std::string_view, uint32_t> assigned;
      assigned.reserve(rows.size());
      for (const ValueVector& row : rows) {
        const Value& value = row[c];
        if (value.is_null()) {
          column->has_null = true;
          column->codes.push_back(kNullCode);
          continue;
        }
        if (!value.is_text()) {
          column->codes.clear();
          column->dictionary.clear();
          column->has_null = false;
          return false;
        }
        auto [it, inserted] =
            assigned.try_emplace(std::string_view(value.as_text()),
                                 static_cast<uint32_t>(assigned.size()));
        if (inserted) column->dictionary.push_back(value);
        column->codes.push_back(it->second);
      }
      return true;
    }
  }
  return false;
}

void EncodedTable::EncodeGeneric(size_t c, Column* column) {
  std::unordered_map<Value, uint32_t, ValueHash> assigned;
  assigned.reserve(rows_->size());
  for (const ValueVector& row : *rows_) {
    const Value& value = row[c];
    if (value.is_null()) {
      column->has_null = true;
      column->codes.push_back(kNullCode);
      continue;
    }
    auto [it, inserted] =
        assigned.try_emplace(value, static_cast<uint32_t>(assigned.size()));
    if (inserted) column->dictionary.push_back(value);
    column->codes.push_back(it->second);
  }
}

ValueVector EncodedTable::DecodeRow(size_t row,
                                    const std::vector<size_t>& columns) const {
  ValueVector out;
  out.reserve(columns.size());
  for (size_t c : columns) {
    uint32_t code = columns_[c].codes[row];
    out.push_back(code == kNullCode ? Value::Null() : Decode(c, code));
  }
  return out;
}

}  // namespace dbre
