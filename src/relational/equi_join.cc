#include "relational/equi_join.h"

#include <algorithm>
#include <tuple>

#include "common/string_util.h"

namespace dbre {

EquiJoin EquiJoin::Single(std::string left_relation,
                          std::string left_attribute,
                          std::string right_relation,
                          std::string right_attribute) {
  EquiJoin join;
  join.left_relation = std::move(left_relation);
  join.left_attributes.push_back(std::move(left_attribute));
  join.right_relation = std::move(right_relation);
  join.right_attributes.push_back(std::move(right_attribute));
  return join;
}

AttributeSet EquiJoin::LeftAttributeSet() const {
  return AttributeSet(left_attributes);
}

AttributeSet EquiJoin::RightAttributeSet() const {
  return AttributeSet(right_attributes);
}

EquiJoin EquiJoin::Canonicalize() const {
  EquiJoin out = *this;
  // Sort the pairs.
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(out.left_attributes.size());
  for (size_t i = 0; i < out.left_attributes.size(); ++i) {
    pairs.emplace_back(out.left_attributes[i], out.right_attributes[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  out.left_attributes.clear();
  out.right_attributes.clear();
  for (auto& [l, r] : pairs) {
    out.left_attributes.push_back(std::move(l));
    out.right_attributes.push_back(std::move(r));
  }
  // Put the lexicographically smaller side on the left.
  auto left_key = std::tie(out.left_relation, out.left_attributes);
  auto right_key = std::tie(out.right_relation, out.right_attributes);
  if (right_key < left_key) return out.Flipped();
  return out;
}

EquiJoin EquiJoin::Flipped() const {
  EquiJoin out;
  out.left_relation = right_relation;
  out.left_attributes = right_attributes;
  out.right_relation = left_relation;
  out.right_attributes = left_attributes;
  return out;
}

Status EquiJoin::Validate() const {
  if (left_relation.empty() || right_relation.empty()) {
    return InvalidArgumentError("equi-join with empty relation name");
  }
  if (left_attributes.empty()) {
    return InvalidArgumentError("equi-join with no attributes: " +
                                ToString());
  }
  if (left_attributes.size() != right_attributes.size()) {
    return InvalidArgumentError("equi-join attribute lists differ in size: " +
                                ToString());
  }
  for (size_t i = 0; i < left_attributes.size(); ++i) {
    if (left_attributes[i].empty() || right_attributes[i].empty()) {
      return InvalidArgumentError("equi-join with empty attribute name: " +
                                  ToString());
    }
    if (left_relation == right_relation &&
        left_attributes[i] == right_attributes[i]) {
      return InvalidArgumentError(
          "equi-join pairs an attribute with itself: " + ToString());
    }
  }
  return Status::Ok();
}

std::string EquiJoin::ToString() const {
  std::string out = left_relation + "[" + Join(left_attributes, ", ") +
                    "] |><| " + right_relation + "[" +
                    Join(right_attributes, ", ") + "]";
  return out;
}

bool operator<(const EquiJoin& a, const EquiJoin& b) {
  return std::tie(a.left_relation, a.left_attributes, a.right_relation,
                  a.right_attributes) <
         std::tie(b.left_relation, b.left_attributes, b.right_relation,
                  b.right_attributes);
}

std::ostream& operator<<(std::ostream& os, const EquiJoin& join) {
  return os << join.ToString();
}

std::vector<EquiJoin> CanonicalJoinSet(const std::vector<EquiJoin>& joins) {
  std::vector<EquiJoin> out;
  out.reserve(joins.size());
  for (const EquiJoin& join : joins) out.push_back(join.Canonicalize());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dbre
