// CSV import/export for table extensions.
//
// Format: RFC-4180-style quoting ("..." with "" escapes), first line is a
// header naming the columns (any order; must cover the schema exactly).
// Empty unquoted fields and the literal NULL parse as the NULL value; a
// quoted empty string "" parses as an empty string for string columns.
#ifndef DBRE_RELATIONAL_CSV_H_
#define DBRE_RELATIONAL_CSV_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "relational/database.h"
#include "relational/table.h"

namespace dbre {

// Parses `csv_text` and appends the rows to `table` (which provides the
// schema and value types). Returns the number of rows loaded.
Result<size_t> LoadCsvText(std::string_view csv_text, Table* table);

// Reads `path` and appends its rows to `table`.
Result<size_t> LoadCsvFile(const std::string& path, Table* table);

// Renders `table` (header + all rows) as CSV text.
std::string WriteCsvText(const Table& table);

// Writes `table` to `path`, replacing any existing file.
Status WriteCsvFile(const Table& table, const std::string& path);

// Writes every relation of `database` to `directory/<Relation>.csv`
// (creating the directory if needed). Returns the number of files written.
Result<size_t> ExportDatabaseCsv(const Database& database,
                                 const std::string& directory);

// Loads `directory/<Relation>.csv` into every relation of `database` that
// has such a file (relations without a file keep their current extension).
// Returns the number of files loaded.
Result<size_t> ImportDatabaseCsv(const std::string& directory,
                                 Database* database);

}  // namespace dbre

#endif  // DBRE_RELATIONAL_CSV_H_
