#include "relational/sketch.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>

namespace dbre {
namespace {

std::atomic<bool> g_sketches_enabled{true};

double AlphaM(size_t m) {
  // Flajolet's bias-correction constants.
  if (m <= 16) return 0.673;
  if (m <= 32) return 0.697;
  if (m <= 64) return 0.709;
  return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
}

}  // namespace

HyperLogLog::HyperLogLog(int precision)
    : precision_(std::clamp(precision, 4, 18)),
      registers_(size_t{1} << precision_, 0) {}

void HyperLogLog::AddHash(uint64_t hash) {
  const size_t index = hash >> (64 - precision_);
  // Rank of the first set bit among the remaining 64-p bits, 1-based;
  // an all-zero remainder ranks 64-p+1.
  const uint64_t remainder = hash << precision_;
  const int rank =
      remainder == 0 ? 64 - precision_ + 1 : std::countl_zero(remainder) + 1;
  if (registers_[index] < rank) {
    registers_[index] = static_cast<uint8_t>(rank);
  }
}

double HyperLogLog::Estimate() const {
  const size_t m = registers_.size();
  double inverse_sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double md = static_cast<double>(m);
  double estimate = AlphaM(m) * md * md / inverse_sum;
  if (estimate <= 2.5 * md && zeros > 0) {
    // Linear counting is more accurate while most registers are untouched.
    estimate = md * std::log(md / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.registers_.size() != registers_.size()) return;
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

double HyperLogLog::StandardError(int precision) {
  return 1.04 / std::sqrt(static_cast<double>(
                    size_t{1} << std::clamp(precision, 4, 18)));
}

BloomFilter::BloomFilter(size_t expected_keys, double bits_per_key) {
  const double total_bits =
      std::max(1.0, static_cast<double>(expected_keys) * bits_per_key);
  size_t num_blocks = 1;
  while (num_blocks * kBlockBits < total_bits) num_blocks <<= 1;
  block_mask_ = num_blocks - 1;
  blocks_.assign(num_blocks * kWordsPerBlock, 0);
  num_probes_ = std::clamp(
      static_cast<int>(std::lround(bits_per_key * 0.6931471805599453)), 1, 8);
}

BloomFilter::Probe BloomFilter::MakeProbe(uint64_t hash) const {
  Probe probe{};
  // Block from the multiplied high bits, probe bits from double hashing —
  // decorrelated enough that per-block occupancy stays near the average.
  probe.block = ((hash * 0x9E3779B97F4A7C15ull) >> 17) & block_mask_;
  const uint64_t h2 = (hash >> 29) | (hash << 35);
  uint64_t g = hash;
  for (int i = 0; i < num_probes_; ++i) {
    const size_t bit = g & (kBlockBits - 1);
    probe.mask[bit >> 6] |= uint64_t{1} << (bit & 63);
    g += h2;
  }
  return probe;
}

void BloomFilter::AddHash(uint64_t hash) {
  const Probe probe = MakeProbe(hash);
  uint64_t* block = &blocks_[probe.block * kWordsPerBlock];
  for (size_t w = 0; w < kWordsPerBlock; ++w) block[w] |= probe.mask[w];
}

void BloomFilter::Prefetch(uint64_t hash) const {
  const size_t block = ((hash * 0x9E3779B97F4A7C15ull) >> 17) & block_mask_;
  __builtin_prefetch(&blocks_[block * kWordsPerBlock]);
}

bool BloomFilter::MayContain(uint64_t hash) const {
  const Probe probe = MakeProbe(hash);
  const uint64_t* block = &blocks_[probe.block * kWordsPerBlock];
  for (size_t w = 0; w < kWordsPerBlock; ++w) {
    if ((block[w] & probe.mask[w]) != probe.mask[w]) return false;
  }
  return true;
}

bool SketchesEnabled() {
  return g_sketches_enabled.load(std::memory_order_relaxed);
}

void SetSketchesEnabled(bool enabled) {
  g_sketches_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedSketchGate::ScopedSketchGate(bool enabled)
    : previous_(SketchesEnabled()) {
  SetSketchesEnabled(enabled);
}

ScopedSketchGate::~ScopedSketchGate() { SetSketchesEnabled(previous_); }

}  // namespace dbre
