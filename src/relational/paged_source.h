// The seam between the relational engine and out-of-core storage.
//
// A PagedSource is a read-only, dictionary-encoded column store whose
// backing bytes live on disk behind a buffer pool (src/pagestore/). The
// relational layer never sees pages: it sees per-column dictionaries and
// code streams through the three interfaces below, and `EncodedTable`
// wraps them so QueryCache / algebra / the SQL executor run the same
// algorithms over paged and in-memory extensions — with byte-identical
// results, enforced by the paged crosscheck tests.
//
// Layering: this header lives in relational/ so relational code can hold
// and consume paged sources without depending on pagestore (which itself
// links relational for Value). pagestore implements the interfaces.
//
// Error contract: a source is fully verified when it is opened (every
// checksum of every page), so steady-state reads of an open source fail
// only on real environment faults (disk death, truncation underneath a
// live file). Cursors therefore fail fast — transient I/O errors are
// retried inside the buffer pool; a persistent failure aborts the process
// rather than silently degrading the byte-identical invariant. Paths that
// can report errors cleanly (open, index build/load, dictionary walks)
// return Status.
#ifndef DBRE_RELATIONAL_PAGED_SOURCE_H_
#define DBRE_RELATIONAL_PAGED_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "relational/value.h"

namespace dbre {

// Streams one column's dictionary codes. Fetch returns a pointer to an
// aligned buffer holding `count` codes starting at row `start`; the
// pointer is valid until the next Fetch/At on the same cursor. `count`
// must not exceed relational/column_batch.h's kBatchSize. At() reads a
// single code (cached-page fast path, for random access).
class PagedCodeCursor {
 public:
  virtual ~PagedCodeCursor() = default;
  virtual const uint32_t* Fetch(size_t start, size_t count) = 0;
  virtual uint32_t At(size_t row) = 0;
};

// A sorted-run index over one column's dictionary: (key, code) pairs
// ordered by key, where key is the raw int64 bit pattern when `exact()`
// (typed int64 columns) and the canonical sketch hash otherwise. Inexact
// probes must verify candidates by decoding the dictionary value.
class PagedKeyIndex {
 public:
  virtual ~PagedKeyIndex() = default;
  virtual bool exact() const = 0;
  virtual bool ContainsKey(uint64_t key) const = 0;
  // Invokes `fn` with every dictionary code whose key equals `key`, in
  // code order within equal keys; stops early when fn returns false.
  virtual Status ForEachCode(
      uint64_t key, const std::function<bool(uint32_t code)>& fn) const = 0;
};

// A read-only paged extension: N columns over `num_rows` rows, each
// column a dictionary (codes 0..dict_size-1; NULL is the encoder's
// sentinel code, never a dictionary entry) plus a code stream.
class PagedSource {
 public:
  virtual ~PagedSource() = default;

  virtual size_t num_rows() const = 0;
  virtual size_t num_columns() const = 0;
  // The extension's content fingerprint (snapshot footer), identical to
  // ExtensionRegistry::ComputeFingerprint over the decoded rows.
  virtual uint64_t fingerprint() const = 0;

  virtual uint32_t dict_size(size_t column) const = 0;
  virtual bool has_null(size_t column) const = 0;
  // True when every dictionary value matches the declared type.
  virtual bool typed(size_t column) const = 0;
  virtual DataType declared_type(size_t column) const = 0;

  virtual std::unique_ptr<PagedCodeCursor> Codes(size_t column) const = 0;

  // Random access into the dictionary; kInvalidArgument past dict_size.
  virtual Result<Value> DictValueAt(size_t column, uint32_t code) const = 0;

  // Streams the dictionary in code order (0, 1, ..., dict_size-1).
  virtual Status ForEachDictValue(
      size_t column,
      const std::function<void(uint32_t code, const Value& value)>& fn)
      const = 0;

  // The (lazily built, memoized) key index for `column`. Never called
  // when the paged-index gate below is off.
  virtual Result<std::shared_ptr<const PagedKeyIndex>> KeyIndexFor(
      size_t column) const = 0;
};

// Process-wide gate for key-index probe fast paths (default on). Turning
// it off routes paged membership probes through streamed exact sets
// instead — results are identical either way; the crosscheck tests flip
// the gate to prove it, mirroring relational/sketch.h's ScopedSketchGate.
bool PagedIndexEnabled();
void SetPagedIndexEnabled(bool enabled);

class ScopedPagedIndexGate {
 public:
  explicit ScopedPagedIndexGate(bool enabled)
      : previous_(PagedIndexEnabled()) {
    SetPagedIndexEnabled(enabled);
  }
  ~ScopedPagedIndexGate() { SetPagedIndexEnabled(previous_); }

 private:
  bool previous_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_PAGED_SOURCE_H_
