// Dictionary-encoded columnar image of a Table.
//
// Every extension query the elicitation algorithms issue (‖r[X]‖ distinct
// counts, set intersections, FD checks) boils down to grouping and comparing
// projected sub-rows. Doing that over heap-allocated `ValueVector`s — a
// `std::variant` per cell, a `std::vector` per sub-row — dominates the run
// time. An `EncodedTable` translates each column once into dense `uint32_t`
// codes (equal values ⇔ equal codes, NULL ⇔ `kNullCode`), after which every
// query primitive runs over flat integer arrays with no per-row allocation.
//
// Columns encode lazily, on first EnsureColumn, so a table whose extension
// is only ever queried on a few attributes (IND-Discovery touches join
// columns only) never pays for the rest. The encoder pins the table's
// shared row storage, so an encoding stays valid even if the originating
// Table is mutated (it detaches, copy-on-write) or destroyed.
//
// Codes are assigned in first-appearance (row) order, so an encoding is a
// pure function of the extension and re-encoding a cloned table yields
// byte-identical code columns — the determinism guarantee the parallel
// discovery paths rely on. The per-column dictionary build dispatches on
// the declared attribute type (flat int64/double/bool/string_view hash maps)
// and falls back to generic Value hashing on any tag mismatch.
//
// An encoded column is immutable once ready. `Table` builds an EncodedTable
// lazily inside its QueryCache and drops it on any mutation (see
// Table::query_cache); nothing here watches for changes.
//
// Paged mode: an EncodedTable can instead wrap a read-only PagedSource
// (relational/paged_source.h) whose codes and dictionaries live on disk
// behind a buffer pool. Snapshot codes were assigned by this encoder in
// first-appearance order, so the paged code stream and dictionary are
// byte-identical to what re-encoding the materialized rows would produce —
// every consumer that migrates to codes_reader()/DecodeValue() computes
// the same answer in both modes. Small dictionaries (<=
// kPagedDictMaterializeLimit entries) are materialized at EnsureColumn so
// hot Decode loops stay in memory; larger ones stream through the pool.
#ifndef DBRE_RELATIONAL_ENCODED_TABLE_H_
#define DBRE_RELATIONAL_ENCODED_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "relational/paged_source.h"
#include "relational/value.h"

namespace dbre {

class Table;

class EncodedTable {
 public:
  // Code reserved for NULL cells; never a dictionary index.
  static constexpr uint32_t kNullCode = UINT32_MAX;

  // Paged dictionaries up to this many entries are materialized in memory
  // at EnsureColumn; larger ones stay on disk and stream on demand.
  static constexpr uint32_t kPagedDictMaterializeLimit = 4096;

  // An empty encoding over the given row storage; columns encode on demand.
  // Precondition: rows->size() < kNullCode (so no dictionary can overflow;
  // Table::query_cache() checks this once).
  EncodedTable(std::shared_ptr<const std::vector<ValueVector>> rows,
               std::vector<DataType> types);

  // A paged encoding: logical column `c` reads physical column
  // `column_map[c]` of `source`. No rows are materialized, ever.
  EncodedTable(std::shared_ptr<const PagedSource> source,
               std::vector<DataType> types, std::vector<uint32_t> column_map);

  // Eagerly encodes every column of `table`. Fails only if the extension
  // holds kNullCode rows or more (not reachable in memory).
  static Result<EncodedTable> Build(const Table& table);

  size_t num_rows() const {
    return paged_ != nullptr ? paged_->num_rows() : rows_->size();
  }
  size_t num_columns() const { return columns_.size(); }

  bool paged() const { return paged_ != nullptr; }
  const std::shared_ptr<const PagedSource>& paged_source() const {
    return paged_;
  }
  // Physical source column behind logical column `c` (paged mode only).
  uint32_t paged_column(size_t c) const { return paged_columns_[c]; }

  // Encodes column `c` if it is not ready yet. Idempotent, NOT thread-safe:
  // QueryCache serializes calls under its mutex, and every reader of
  // codes()/Decode() goes through a locked ensure first.
  void EnsureColumn(size_t c);

  // Encodes column `c` by extending `base`'s ready encoding over this
  // table's longer row storage: the first `base_rows` codes are copied and
  // appended rows continue first-appearance code assignment against the
  // base dictionary. Because codes are a pure function of the extension
  // prefix, the result is byte-identical to a cold EnsureColumn over the
  // full extension — the delta path's correctness hinge. Requires
  // !paged(), !base.paged(), base.column_ready(c), and that this table's
  // first `base_rows` rows equal base's rows (append-only mutation over
  // shared storage).
  void ExtendColumnFrom(const EncodedTable& base, size_t c, size_t base_rows);

  bool column_ready(size_t c) const { return columns_[c].ready; }

  // The declared attribute type of column `c`.
  DataType declared_type(size_t c) const { return types_[c]; }

  // Whether every non-NULL cell of `c` matched the declared type, i.e. the
  // dictionary is homogeneous and typed cross-table comparison is valid.
  // Requires column_ready(c).
  bool column_typed(size_t c) const { return columns_[c].typed; }

  // Dense codes of column `c`, one per row. Requires column_ready(c) and
  // !paged() — paged consumers stream through codes_reader() instead.
  const std::vector<uint32_t>& codes(size_t c) const {
    return columns_[c].codes;
  }

  // Mode-agnostic code access. In-memory mode serves pointers straight
  // into the code vector; paged mode streams pages through a cursor.
  // Fetch's pointer is valid until the next Fetch/At on the same reader;
  // `count` must not exceed column_batch.h's kBatchSize.
  class CodeReader {
   public:
    explicit CodeReader(const uint32_t* codes) : codes_(codes) {}
    explicit CodeReader(std::unique_ptr<PagedCodeCursor> cursor)
        : cursor_(std::move(cursor)) {}

    const uint32_t* Fetch(size_t start, size_t count) {
      return codes_ != nullptr ? codes_ + start
                               : cursor_->Fetch(start, count);
    }
    uint32_t At(size_t row) {
      return codes_ != nullptr ? codes_[row] : cursor_->At(row);
    }

   private:
    const uint32_t* codes_ = nullptr;
    std::unique_ptr<PagedCodeCursor> cursor_;
  };

  // A reader over column `c`'s codes. Requires column_ready(c).
  CodeReader codes_reader(size_t c) const;

  // Number of distinct non-NULL values in column `c` (codes are
  // 0..dict_size-1). Requires column_ready(c).
  size_t dict_size(size_t c) const { return columns_[c].dict_count; }

  bool has_null(size_t c) const { return columns_[c].has_null; }

  // Whether column `c`'s dictionary is materialized in memory (always in
  // in-memory mode; paged mode only up to kPagedDictMaterializeLimit).
  bool dict_resident(size_t c) const {
    return columns_[c].dictionary.size() == columns_[c].dict_count;
  }

  // The value a code stands for. Requires column_ready(c) and
  // dict_resident(c).
  const Value& Decode(size_t c, uint32_t code) const {
    return columns_[c].dictionary[code];
  }

  // The value a code stands for, in either mode; non-resident paged
  // dictionaries read through the buffer pool. Requires column_ready(c).
  Value DecodeValue(size_t c, uint32_t code) const;

  // Streams column `c`'s dictionary in code order. Requires
  // column_ready(c).
  Status ForEachDictValue(
      size_t c,
      const std::function<void(uint32_t code, const Value& value)>& fn) const;

  // Materializes the sub-row of `row` projected on `columns` (NULL cells
  // come back as NULL values). Requires every projected column ready and
  // !paged(); paged consumers use a RowReader.
  ValueVector DecodeRow(size_t row, const std::vector<size_t>& columns) const;

  // Mode-agnostic row projection: decodes the sub-row of `row` on the
  // columns fixed at construction. Rows read in increasing order stay
  // page-local in paged mode.
  class RowReader {
   public:
    RowReader(const EncodedTable* encoded, std::vector<size_t> columns);

    // Overwrites `*out` with the projected sub-row of `row`.
    void Read(size_t row, ValueVector* out);

   private:
    const EncodedTable* encoded_;
    std::vector<size_t> columns_;
    std::vector<CodeReader> readers_;
  };
  RowReader row_reader(std::vector<size_t> columns) const {
    return RowReader(this, std::move(columns));
  }

 private:
  struct Column {
    std::vector<uint32_t> codes;    // per row (in-memory mode)
    std::vector<Value> dictionary;  // code → value, when resident
    uint32_t dict_count = 0;        // distinct non-NULL values
    bool has_null = false;
    bool ready = false;
    bool typed = false;  // declared-type encode succeeded
  };

  // Type-specialized dictionary build; false if a non-NULL cell's tag does
  // not match the declared type (the generic path then takes over).
  bool EncodeDeclared(size_t c, Column* column);
  void EncodeGeneric(size_t c, Column* column);

  std::shared_ptr<const std::vector<ValueVector>> rows_;
  std::vector<DataType> types_;
  std::vector<Column> columns_;
  std::shared_ptr<const PagedSource> paged_;
  std::vector<uint32_t> paged_columns_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_ENCODED_TABLE_H_
