// Dictionary-encoded columnar image of a Table.
//
// Every extension query the elicitation algorithms issue (‖r[X]‖ distinct
// counts, set intersections, FD checks) boils down to grouping and comparing
// projected sub-rows. Doing that over heap-allocated `ValueVector`s — a
// `std::variant` per cell, a `std::vector` per sub-row — dominates the run
// time. An `EncodedTable` translates each column once into dense `uint32_t`
// codes (equal values ⇔ equal codes, NULL ⇔ `kNullCode`), after which every
// query primitive runs over flat integer arrays with no per-row allocation.
//
// Columns encode lazily, on first EnsureColumn, so a table whose extension
// is only ever queried on a few attributes (IND-Discovery touches join
// columns only) never pays for the rest. The encoder pins the table's
// shared row storage, so an encoding stays valid even if the originating
// Table is mutated (it detaches, copy-on-write) or destroyed.
//
// Codes are assigned in first-appearance (row) order, so an encoding is a
// pure function of the extension and re-encoding a cloned table yields
// byte-identical code columns — the determinism guarantee the parallel
// discovery paths rely on. The per-column dictionary build dispatches on
// the declared attribute type (flat int64/double/bool/string_view hash maps)
// and falls back to generic Value hashing on any tag mismatch.
//
// An encoded column is immutable once ready. `Table` builds an EncodedTable
// lazily inside its QueryCache and drops it on any mutation (see
// Table::query_cache); nothing here watches for changes.
#ifndef DBRE_RELATIONAL_ENCODED_TABLE_H_
#define DBRE_RELATIONAL_ENCODED_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace dbre {

class Table;

class EncodedTable {
 public:
  // Code reserved for NULL cells; never a dictionary index.
  static constexpr uint32_t kNullCode = UINT32_MAX;

  // An empty encoding over the given row storage; columns encode on demand.
  // Precondition: rows->size() < kNullCode (so no dictionary can overflow;
  // Table::query_cache() checks this once).
  EncodedTable(std::shared_ptr<const std::vector<ValueVector>> rows,
               std::vector<DataType> types);

  // Eagerly encodes every column of `table`. Fails only if the extension
  // holds kNullCode rows or more (not reachable in memory).
  static Result<EncodedTable> Build(const Table& table);

  size_t num_rows() const { return rows_->size(); }
  size_t num_columns() const { return columns_.size(); }

  // Encodes column `c` if it is not ready yet. Idempotent, NOT thread-safe:
  // QueryCache serializes calls under its mutex, and every reader of
  // codes()/Decode() goes through a locked ensure first.
  void EnsureColumn(size_t c);

  bool column_ready(size_t c) const { return columns_[c].ready; }

  // The declared attribute type of column `c`.
  DataType declared_type(size_t c) const { return types_[c]; }

  // Whether every non-NULL cell of `c` matched the declared type, i.e. the
  // dictionary is homogeneous and typed cross-table comparison is valid.
  // Requires column_ready(c).
  bool column_typed(size_t c) const { return columns_[c].typed; }

  // Dense codes of column `c`, one per row. Requires column_ready(c).
  const std::vector<uint32_t>& codes(size_t c) const {
    return columns_[c].codes;
  }

  // Number of distinct non-NULL values in column `c` (codes are
  // 0..dict_size-1). Requires column_ready(c).
  size_t dict_size(size_t c) const { return columns_[c].dictionary.size(); }

  bool has_null(size_t c) const { return columns_[c].has_null; }

  // The value a code stands for. Requires column_ready(c).
  const Value& Decode(size_t c, uint32_t code) const {
    return columns_[c].dictionary[code];
  }

  // Materializes the sub-row of `row` projected on `columns` (NULL cells
  // come back as NULL values). Requires every projected column ready.
  ValueVector DecodeRow(size_t row, const std::vector<size_t>& columns) const;

 private:
  struct Column {
    std::vector<uint32_t> codes;    // per row
    std::vector<Value> dictionary;  // code → value
    bool has_null = false;
    bool ready = false;
    bool typed = false;  // declared-type encode succeeded
  };

  // Type-specialized dictionary build; false if a non-NULL cell's tag does
  // not match the declared type (the generic path then takes over).
  bool EncodeDeclared(size_t c, Column* column);
  void EncodeGeneric(size_t c, Column* column);

  std::shared_ptr<const std::vector<ValueVector>> rows_;
  std::vector<DataType> types_;
  std::vector<Column> columns_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_ENCODED_TABLE_H_
