#include "relational/schema.h"

#include <algorithm>

namespace dbre {

Status RelationSchema::AddAttribute(Attribute attribute) {
  if (attribute.name.empty()) {
    return InvalidArgumentError("attribute name must not be empty");
  }
  if (HasAttribute(attribute.name)) {
    return AlreadyExistsError("attribute already exists: " + name_ + "." +
                              attribute.name);
  }
  attributes_.push_back(std::move(attribute));
  return Status::Ok();
}

Status RelationSchema::AddAttribute(std::string name, DataType type,
                                    bool not_null) {
  return AddAttribute(Attribute{std::move(name), type, not_null});
}

Status RelationSchema::RemoveAttribute(std::string_view name) {
  auto it = std::find_if(
      attributes_.begin(), attributes_.end(),
      [&](const Attribute& attribute) { return attribute.name == name; });
  if (it == attributes_.end()) {
    return NotFoundError("no attribute " + name_ + "." + std::string(name));
  }
  attributes_.erase(it);
  for (AttributeSet& unique : unique_constraints_) unique.Remove(name);
  unique_constraints_.erase(
      std::remove_if(unique_constraints_.begin(), unique_constraints_.end(),
                     [](const AttributeSet& set) { return set.empty(); }),
      unique_constraints_.end());
  return Status::Ok();
}

bool RelationSchema::HasAttribute(std::string_view name) const {
  return std::any_of(
      attributes_.begin(), attributes_.end(),
      [&](const Attribute& attribute) { return attribute.name == name; });
}

Result<DataType> RelationSchema::AttributeType(std::string_view name) const {
  for (const Attribute& attribute : attributes_) {
    if (attribute.name == name) return attribute.type;
  }
  return NotFoundError("no attribute " + name_ + "." + std::string(name));
}

Result<size_t> RelationSchema::AttributeIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return NotFoundError("no attribute " + name_ + "." + std::string(name));
}

AttributeSet RelationSchema::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& attribute : attributes_) names.push_back(attribute.name);
  return AttributeSet(std::move(names));
}

Status RelationSchema::DeclareUnique(AttributeSet attributes) {
  if (attributes.empty()) {
    return InvalidArgumentError("unique declaration must not be empty");
  }
  for (const std::string& name : attributes) {
    if (!HasAttribute(name)) {
      return NotFoundError("unique declaration on missing attribute " +
                           name_ + "." + name);
    }
  }
  if (IsKey(attributes)) {
    return AlreadyExistsError("duplicate unique declaration on " + name_ +
                              "." + attributes.ToString());
  }
  unique_constraints_.push_back(std::move(attributes));
  return Status::Ok();
}

Status RelationSchema::DeclareNotNull(std::string_view name) {
  for (Attribute& attribute : attributes_) {
    if (attribute.name == name) {
      attribute.not_null = true;
      return Status::Ok();
    }
  }
  return NotFoundError("no attribute " + name_ + "." + std::string(name));
}

std::optional<AttributeSet> RelationSchema::PrimaryKey() const {
  if (unique_constraints_.empty()) return std::nullopt;
  return unique_constraints_.front();
}

bool RelationSchema::IsKey(const AttributeSet& attributes) const {
  return std::any_of(
      unique_constraints_.begin(), unique_constraints_.end(),
      [&](const AttributeSet& unique) { return unique == attributes; });
}

AttributeSet RelationSchema::NotNullAttributes() const {
  AttributeSet out;
  for (const Attribute& attribute : attributes_) {
    if (attribute.not_null) out.Insert(attribute.name);
  }
  for (const AttributeSet& unique : unique_constraints_) {
    for (const std::string& name : unique) out.Insert(name);
  }
  return out;
}

std::string RelationSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    if (attributes_[i].not_null) out += "*";
  }
  out += ")";
  for (const AttributeSet& unique : unique_constraints_) {
    out += " unique" + unique.ToString();
  }
  return out;
}

}  // namespace dbre
