// Extension-query primitives used by the elicitation algorithms.
//
// IND-Discovery needs, for an equi-join R_k[A_k] ⋈ R_l[A_l]:
//   N_k  = ‖r_k[A_k]‖,  N_l = ‖r_l[A_l]‖,  N_kl = ‖r_k[A_k] ⋈ r_l[A_l]‖.
// Since both operands of the join are duplicate-free projections over the
// same attribute arity, the distinct join count equals the size of the
// intersection of the two projected value sets; these helpers compute all
// three counts in one pass over each table. NULL-containing sub-rows are
// excluded, matching SQL `count(distinct ...)`.
#ifndef DBRE_RELATIONAL_ALGEBRA_H_
#define DBRE_RELATIONAL_ALGEBRA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/equi_join.h"
#include "relational/table.h"

namespace dbre {

// The three valuations of §6.1 for one equi-join.
struct JoinCounts {
  size_t n_left = 0;   // N_k
  size_t n_right = 0;  // N_l
  size_t n_join = 0;   // N_kl

  bool EmptyIntersection() const { return n_join == 0; }
  bool LeftIncluded() const { return n_join == n_left && n_left > 0; }
  bool RightIncluded() const { return n_join == n_right && n_right > 0; }
  bool ProperIntersection() const {
    return n_join > 0 && n_join != n_left && n_join != n_right;
  }
};

// Column indexes of `attributes` (in the given order, not sorted) within
// `table`'s schema.
Result<std::vector<size_t>> OrderedProjectionIndexes(
    const Table& table, const std::vector<std::string>& attributes);

// Distinct projection on an ordered attribute list (pairing preserved).
Result<ValueVectorSet> OrderedDistinctProjection(
    const Table& table, const std::vector<std::string>& attributes);

// Computes N_k, N_l, N_kl for `join` against `database`.
Result<JoinCounts> ComputeJoinCounts(const Database& database,
                                     const EquiJoin& join);

// Whether r_i[Y] ⊆ r_j[Z] holds in the extension, with Y and Z ordered
// attribute lists of equal arity. NULL-containing sub-rows on the left are
// ignored (an all-NULL row trivially satisfies a referential constraint).
Result<bool> InclusionHolds(const Database& database,
                            const std::string& lhs_relation,
                            const std::vector<std::string>& lhs_attributes,
                            const std::string& rhs_relation,
                            const std::vector<std::string>& rhs_attributes);

// Size of r_k[A_k] ∩ r_l[A_l] (same as JoinCounts::n_join).
Result<size_t> IntersectionSize(const Database& database,
                                const EquiJoin& join);

// Checks whether the functional dependency lhs → rhs holds in `table`:
// for all tuples t, t': t[lhs] = t'[lhs] ⇒ t[rhs] = t'[rhs].
// Tuples with NULL in `lhs` are skipped (their group identity is unknown);
// NULLs in `rhs` compare like ordinary values.
Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const AttributeSet& lhs,
                                       const AttributeSet& rhs);

// The g3 error of lhs → rhs in `table`: the minimum fraction of
// (NULL-lhs-excluded) tuples that must be removed for the FD to hold —
// within each lhs group, everything but the plurality rhs value counts as
// a violation. 0.0 = holds exactly; legacy data with a few mispunched
// tuples scores just above 0. Returns 0.0 for empty tables.
Result<double> FunctionalDependencyError(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs);

// Reference row-at-a-time implementations of the primitives above. The
// production entry points run over the dictionary-encoded columns and the
// per-table query cache (relational/query_cache.h); these naive variants
// materialize and hash a ValueVector per row. They exist for the
// encoded-vs-naive crosscheck tests and benchmarks — both families must
// agree on every input.
namespace naive {

Result<ValueVectorSet> OrderedDistinctProjection(
    const Table& table, const std::vector<std::string>& attributes);

Result<JoinCounts> ComputeJoinCounts(const Database& database,
                                     const EquiJoin& join);

Result<bool> InclusionHolds(const Database& database,
                            const std::string& lhs_relation,
                            const std::vector<std::string>& lhs_attributes,
                            const std::string& rhs_relation,
                            const std::vector<std::string>& rhs_attributes);

Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const AttributeSet& lhs,
                                       const AttributeSet& rhs);

Result<double> FunctionalDependencyError(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs);

}  // namespace naive

}  // namespace dbre

#endif  // DBRE_RELATIONAL_ALGEBRA_H_
