#include "relational/algebra.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "relational/query_cache.h"

namespace dbre {
namespace {

bool HasNull(const ValueVector& row) {
  return std::any_of(row.begin(), row.end(),
                     [](const Value& v) { return v.is_null(); });
}

}  // namespace

Result<std::vector<size_t>> OrderedProjectionIndexes(
    const Table& table, const std::vector<std::string>& attributes) {
  if (attributes.empty()) {
    return InvalidArgumentError("projection on empty attribute list");
  }
  std::vector<size_t> indexes;
  indexes.reserve(attributes.size());
  for (const std::string& name : attributes) {
    DBRE_ASSIGN_OR_RETURN(size_t index, table.schema().AttributeIndex(name));
    indexes.push_back(index);
  }
  return indexes;
}

Result<ValueVectorSet> OrderedDistinctProjection(
    const Table& table, const std::vector<std::string>& attributes) {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        OrderedProjectionIndexes(table, attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  return *cache->DistinctProjection(indexes);
}

Result<JoinCounts> ComputeJoinCounts(const Database& database,
                                     const EquiJoin& join) {
  DBRE_RETURN_IF_ERROR(join.Validate());
  DBRE_ASSIGN_OR_RETURN(const Table* left,
                        database.GetTable(join.left_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* right,
                        database.GetTable(join.right_relation));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> left_indexes,
                        OrderedProjectionIndexes(*left, join.left_attributes));
  DBRE_ASSIGN_OR_RETURN(
      std::vector<size_t> right_indexes,
      OrderedProjectionIndexes(*right, join.right_attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> left_cache,
                        left->query_cache());
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> right_cache,
                        right->query_cache());

  JoinCounts counts;
  if (left_indexes.size() == 1) {
    // Single-attribute joins (the common case): each side's dictionary is
    // its distinct projection; probe the smaller dictionary against the
    // larger side's memoized value set.
    const size_t lc = left_indexes[0];
    const size_t rc = right_indexes[0];
    left_cache->EnsureEncoded(left_indexes);
    right_cache->EnsureEncoded(right_indexes);
    counts.n_left = left_cache->encoded().dict_size(lc);
    counts.n_right = right_cache->encoded().dict_size(rc);
    const bool probe_left = counts.n_left <= counts.n_right;
    QueryCache& build_cache = probe_left ? *right_cache : *left_cache;
    const size_t build_column = probe_left ? rc : lc;
    const EncodedTable& probe_encoded =
        probe_left ? left_cache->encoded() : right_cache->encoded();
    const size_t probe_column = probe_left ? lc : rc;
    const uint32_t probe_size =
        static_cast<uint32_t>(probe_encoded.dict_size(probe_column));
    if (probe_encoded.column_typed(probe_column) &&
        probe_encoded.declared_type(probe_column) == DataType::kInt64) {
      // Homogeneous int64 on both sides: flat-integer membership.
      std::shared_ptr<const FlatSet64> build =
          build_cache.Int64DictionarySet(build_column);
      if (build != nullptr) {
        for (uint32_t code = 0; code < probe_size; ++code) {
          if (build->Contains(static_cast<uint64_t>(
                  probe_encoded.Decode(probe_column, code).as_int()))) {
            ++counts.n_join;
          }
        }
        return counts;
      }
    }
    std::shared_ptr<const ValueSet> build =
        build_cache.DictionarySet(build_column);
    for (uint32_t code = 0; code < probe_size; ++code) {
      if (build->contains(probe_encoded.Decode(probe_column, code))) {
        ++counts.n_join;
      }
    }
    return counts;
  }

  std::shared_ptr<const ValueVectorSet> left_values =
      left_cache->DistinctProjection(left_indexes);
  std::shared_ptr<const ValueVectorSet> right_values =
      right_cache->DistinctProjection(right_indexes);
  counts.n_left = left_values->size();
  counts.n_right = right_values->size();
  // Probe the smaller set into the larger one.
  const ValueVectorSet& probe =
      counts.n_left <= counts.n_right ? *left_values : *right_values;
  const ValueVectorSet& build =
      counts.n_left <= counts.n_right ? *right_values : *left_values;
  for (const ValueVector& row : probe) {
    if (build.contains(row)) ++counts.n_join;
  }
  return counts;
}

Result<bool> InclusionHolds(const Database& database,
                            const std::string& lhs_relation,
                            const std::vector<std::string>& lhs_attributes,
                            const std::string& rhs_relation,
                            const std::vector<std::string>& rhs_attributes) {
  if (lhs_attributes.size() != rhs_attributes.size()) {
    return InvalidArgumentError(
        "inclusion test with mismatched attribute arity");
  }
  DBRE_ASSIGN_OR_RETURN(const Table* lhs, database.GetTable(lhs_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* rhs, database.GetTable(rhs_relation));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        OrderedProjectionIndexes(*rhs, rhs_attributes));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        OrderedProjectionIndexes(*lhs, lhs_attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> rhs_cache,
                        rhs->query_cache());
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> lhs_cache,
                        lhs->query_cache());
  if (lhs_indexes.size() == 1) {
    // Single attribute: test the lhs dictionary against the rhs one's set.
    lhs_cache->EnsureEncoded(lhs_indexes);
    const EncodedTable& lhs_encoded = lhs_cache->encoded();
    const size_t lc = lhs_indexes[0];
    const uint32_t lhs_size = static_cast<uint32_t>(lhs_encoded.dict_size(lc));
    if (lhs_encoded.column_typed(lc) &&
        lhs_encoded.declared_type(lc) == DataType::kInt64) {
      std::shared_ptr<const FlatSet64> rhs_ints =
          rhs_cache->Int64DictionarySet(rhs_indexes[0]);
      if (rhs_ints != nullptr) {
        for (uint32_t code = 0; code < lhs_size; ++code) {
          if (!rhs_ints->Contains(static_cast<uint64_t>(
                  lhs_encoded.Decode(lc, code).as_int()))) {
            return false;
          }
        }
        return true;
      }
    }
    std::shared_ptr<const ValueSet> rhs_values =
        rhs_cache->DictionarySet(rhs_indexes[0]);
    for (uint32_t code = 0; code < lhs_size; ++code) {
      if (!rhs_values->contains(lhs_encoded.Decode(lc, code))) {
        return false;
      }
    }
    return true;
  }
  std::shared_ptr<const ValueVectorSet> rhs_values =
      rhs_cache->DistinctProjection(rhs_indexes);
  std::shared_ptr<const ValueVectorSet> lhs_values =
      lhs_cache->DistinctProjection(lhs_indexes);
  for (const ValueVector& row : *lhs_values) {
    if (!rhs_values->contains(row)) return false;
  }
  return true;
}

Result<size_t> IntersectionSize(const Database& database,
                                const EquiJoin& join) {
  DBRE_ASSIGN_OR_RETURN(JoinCounts counts, ComputeJoinCounts(database, join));
  return counts.n_join;
}

Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const AttributeSet& lhs,
                                       const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD check with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  return cache->FdHolds(lhs_indexes, rhs_indexes);
}

Result<double> FunctionalDependencyError(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD error with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  return cache->FdError(lhs_indexes, rhs_indexes);
}

namespace naive {

Result<ValueVectorSet> OrderedDistinctProjection(
    const Table& table, const std::vector<std::string>& attributes) {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        OrderedProjectionIndexes(table, attributes));
  ValueVectorSet distinct;
  distinct.reserve(table.num_rows());
  for (const ValueVector& row : table.rows()) {
    ValueVector projected = Table::ProjectRow(row, indexes);
    if (HasNull(projected)) continue;
    distinct.insert(std::move(projected));
  }
  return distinct;
}

Result<JoinCounts> ComputeJoinCounts(const Database& database,
                                     const EquiJoin& join) {
  DBRE_RETURN_IF_ERROR(join.Validate());
  DBRE_ASSIGN_OR_RETURN(const Table* left,
                        database.GetTable(join.left_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* right,
                        database.GetTable(join.right_relation));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet left_values,
      naive::OrderedDistinctProjection(*left, join.left_attributes));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet right_values,
      naive::OrderedDistinctProjection(*right, join.right_attributes));

  JoinCounts counts;
  counts.n_left = left_values.size();
  counts.n_right = right_values.size();
  const ValueVectorSet& probe =
      left_values.size() <= right_values.size() ? left_values : right_values;
  const ValueVectorSet& build =
      left_values.size() <= right_values.size() ? right_values : left_values;
  for (const ValueVector& row : probe) {
    if (build.contains(row)) ++counts.n_join;
  }
  return counts;
}

Result<bool> InclusionHolds(const Database& database,
                            const std::string& lhs_relation,
                            const std::vector<std::string>& lhs_attributes,
                            const std::string& rhs_relation,
                            const std::vector<std::string>& rhs_attributes) {
  if (lhs_attributes.size() != rhs_attributes.size()) {
    return InvalidArgumentError(
        "inclusion test with mismatched attribute arity");
  }
  DBRE_ASSIGN_OR_RETURN(const Table* lhs, database.GetTable(lhs_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* rhs, database.GetTable(rhs_relation));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet rhs_values,
      naive::OrderedDistinctProjection(*rhs, rhs_attributes));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        OrderedProjectionIndexes(*lhs, lhs_attributes));
  for (const ValueVector& row : lhs->rows()) {
    ValueVector projected = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(projected)) continue;
    if (!rhs_values.contains(projected)) return false;
  }
  return true;
}

Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const AttributeSet& lhs,
                                       const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD check with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  std::unordered_map<ValueVector, ValueVector, ValueVectorHash> witness;
  witness.reserve(table.num_rows());
  for (const ValueVector& row : table.rows()) {
    ValueVector key = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(key)) continue;
    ValueVector dependent = Table::ProjectRow(row, rhs_indexes);
    auto [it, inserted] = witness.try_emplace(std::move(key), dependent);
    if (!inserted && it->second != dependent) return false;
  }
  return true;
}

Result<double> FunctionalDependencyError(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD error with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  // group key → (rhs value → count)
  std::unordered_map<ValueVector,
                     std::unordered_map<ValueVector, size_t,
                                        ValueVectorHash>,
                     ValueVectorHash>
      groups;
  size_t total = 0;
  for (const ValueVector& row : table.rows()) {
    ValueVector key = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(key)) continue;
    ++total;
    ++groups[std::move(key)][Table::ProjectRow(row, rhs_indexes)];
  }
  if (total == 0) return 0.0;
  size_t kept = 0;
  for (const auto& [key, counts] : groups) {
    size_t best = 0;
    for (const auto& [value, count] : counts) best = std::max(best, count);
    kept += best;
  }
  return static_cast<double>(total - kept) / static_cast<double>(total);
}

}  // namespace naive

}  // namespace dbre
