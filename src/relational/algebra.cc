#include "relational/algebra.h"

#include <algorithm>
#include <unordered_map>

namespace dbre {
namespace {

bool HasNull(const ValueVector& row) {
  return std::any_of(row.begin(), row.end(),
                     [](const Value& v) { return v.is_null(); });
}

}  // namespace

Result<std::vector<size_t>> OrderedProjectionIndexes(
    const Table& table, const std::vector<std::string>& attributes) {
  if (attributes.empty()) {
    return InvalidArgumentError("projection on empty attribute list");
  }
  std::vector<size_t> indexes;
  indexes.reserve(attributes.size());
  for (const std::string& name : attributes) {
    DBRE_ASSIGN_OR_RETURN(size_t index, table.schema().AttributeIndex(name));
    indexes.push_back(index);
  }
  return indexes;
}

Result<ValueVectorSet> OrderedDistinctProjection(
    const Table& table, const std::vector<std::string>& attributes) {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        OrderedProjectionIndexes(table, attributes));
  ValueVectorSet distinct;
  distinct.reserve(table.num_rows());
  for (const ValueVector& row : table.rows()) {
    ValueVector projected = Table::ProjectRow(row, indexes);
    if (HasNull(projected)) continue;
    distinct.insert(std::move(projected));
  }
  return distinct;
}

Result<JoinCounts> ComputeJoinCounts(const Database& database,
                                     const EquiJoin& join) {
  DBRE_RETURN_IF_ERROR(join.Validate());
  DBRE_ASSIGN_OR_RETURN(const Table* left,
                        database.GetTable(join.left_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* right,
                        database.GetTable(join.right_relation));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet left_values,
      OrderedDistinctProjection(*left, join.left_attributes));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet right_values,
      OrderedDistinctProjection(*right, join.right_attributes));

  JoinCounts counts;
  counts.n_left = left_values.size();
  counts.n_right = right_values.size();
  // Probe the smaller set into the larger one.
  const ValueVectorSet& probe =
      left_values.size() <= right_values.size() ? left_values : right_values;
  const ValueVectorSet& build =
      left_values.size() <= right_values.size() ? right_values : left_values;
  for (const ValueVector& row : probe) {
    if (build.contains(row)) ++counts.n_join;
  }
  return counts;
}

Result<bool> InclusionHolds(const Database& database,
                            const std::string& lhs_relation,
                            const std::vector<std::string>& lhs_attributes,
                            const std::string& rhs_relation,
                            const std::vector<std::string>& rhs_attributes) {
  if (lhs_attributes.size() != rhs_attributes.size()) {
    return InvalidArgumentError(
        "inclusion test with mismatched attribute arity");
  }
  DBRE_ASSIGN_OR_RETURN(const Table* lhs, database.GetTable(lhs_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* rhs, database.GetTable(rhs_relation));
  DBRE_ASSIGN_OR_RETURN(ValueVectorSet rhs_values,
                        OrderedDistinctProjection(*rhs, rhs_attributes));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        OrderedProjectionIndexes(*lhs, lhs_attributes));
  for (const ValueVector& row : lhs->rows()) {
    ValueVector projected = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(projected)) continue;
    if (!rhs_values.contains(projected)) return false;
  }
  return true;
}

Result<size_t> IntersectionSize(const Database& database,
                                const EquiJoin& join) {
  DBRE_ASSIGN_OR_RETURN(JoinCounts counts, ComputeJoinCounts(database, join));
  return counts.n_join;
}

Result<double> FunctionalDependencyError(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD error with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  // group key → (rhs value → count)
  std::unordered_map<ValueVector,
                     std::unordered_map<ValueVector, size_t,
                                        ValueVectorHash>,
                     ValueVectorHash>
      groups;
  size_t total = 0;
  for (const ValueVector& row : table.rows()) {
    ValueVector key = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(key)) continue;
    ++total;
    ++groups[std::move(key)][Table::ProjectRow(row, rhs_indexes)];
  }
  if (total == 0) return 0.0;
  size_t kept = 0;
  for (const auto& [key, counts] : groups) {
    size_t best = 0;
    for (const auto& [value, count] : counts) best = std::max(best, count);
    kept += best;
  }
  return static_cast<double>(total - kept) / static_cast<double>(total);
}

Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const AttributeSet& lhs,
                                       const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD check with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  std::unordered_map<ValueVector, ValueVector, ValueVectorHash> witness;
  witness.reserve(table.num_rows());
  for (const ValueVector& row : table.rows()) {
    ValueVector key = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(key)) continue;
    ValueVector dependent = Table::ProjectRow(row, rhs_indexes);
    auto [it, inserted] = witness.try_emplace(std::move(key), dependent);
    if (!inserted && it->second != dependent) return false;
  }
  return true;
}

}  // namespace dbre
