#include "relational/algebra.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>

#include "obs/metrics.h"
#include "relational/column_batch.h"
#include "relational/query_cache.h"
#include "relational/sketch.h"

namespace dbre {
namespace {

bool HasNull(const ValueVector& row) {
  return std::any_of(row.begin(), row.end(),
                     [](const Value& v) { return v.is_null(); });
}

obs::Counter* SketchRefutes(const char* kind) {
  return obs::Registry::Default().GetCounter(
      "dbre_sketch_refutes_total", {{"kind", kind}},
      "Candidates refuted by a provable sketch/count pre-pass");
}

obs::Counter* SketchFallbacks(const char* kind) {
  return obs::Registry::Default().GetCounter(
      "dbre_sketch_fallbacks_total", {{"kind", kind}},
      "Sketch pre-passes that could not prove and fell back to exact");
}

// Probe loops run after the paged source verified clean at open; a failure
// here is a real environment fault and the count/bool entry points have no
// error channel (see the contract in relational/paged_source.h).
void CheckStream(const Status& status) {
  if (status.ok()) return;
  std::fprintf(stderr, "dbre: unrecoverable paged stream failure: %s\n",
               status.ToString().c_str());
  std::abort();
}

// The build side's on-disk key index when membership probes should use it:
// paged column, gate on, index built (or loaded) cleanly. nullptr falls
// back to materialized sets — results are identical either way.
std::shared_ptr<const PagedKeyIndex> BuildSideKeyIndex(QueryCache& build_cache,
                                                       size_t build_column) {
  const EncodedTable& encoded = build_cache.encoded();
  if (!encoded.paged() || !PagedIndexEnabled()) return nullptr;
  Result<std::shared_ptr<const PagedKeyIndex>> index =
      encoded.paged_source()->KeyIndexFor(encoded.paged_column(build_column));
  if (!index.ok()) return nullptr;
  static obs::Counter* const probes = obs::Registry::Default().GetCounter(
      "dbre_pagestore_index_probe_batches_total", {},
      "Membership probe batches served by a paged key index");
  probes->Add(1);
  return *index;
}

// Whether `value` appears in the (paged) build column, through its key
// index. Exact indexes compare raw int64 bit patterns; inexact indexes
// probe by sketch hash and verify every candidate by decoding.
bool IndexContains(const EncodedTable& build_encoded, size_t build_column,
                   const PagedKeyIndex& index, const Value& value) {
  if (index.exact()) {
    // An exact index only exists over homogeneously int64 columns, so a
    // non-int probe value can never match (Value equality is tag-strict).
    return value.is_int() &&
           index.ContainsKey(static_cast<uint64_t>(value.as_int()));
  }
  bool found = false;
  CheckStream(index.ForEachCode(
      SketchHash(value), [&](uint32_t code) {
        if (build_encoded.DecodeValue(build_column, code) == value) {
          found = true;
          return false;
        }
        return true;
      }));
  return found;
}

// Number of probe-dictionary values present in the build column, exact.
// Protocol: an optional Bloom pre-pass (only if the build side already
// carries a sketch — discovery sweeps build them, one-shot joins don't)
// proves most absent values absent; survivors take the exact membership
// check, vectorized over the flat int64 dictionary keys when both sides
// are typed, decoded Values otherwise.
size_t SingleColumnIntersection(QueryCache& probe_cache, size_t probe_column,
                                QueryCache& build_cache,
                                size_t build_column) {
  std::shared_ptr<const DictionaryKeys> keys =
      probe_cache.DictKeys(probe_column);
  const size_t n = keys->hashes.size();
  if (n == 0) return 0;

  std::vector<uint8_t> hit(n, 1);
  size_t candidates = n;
  if (SketchesEnabled()) {
    std::shared_ptr<const ColumnSketch> sketch =
        build_cache.MaybeColumnSketch(build_column);
    if (sketch != nullptr) {
      candidates =
          batch::ProbeBloom(sketch->bloom, keys->hashes.data(), n, hit.data());
      static obs::Counter* const refutes = SketchRefutes("bloom_column");
      refutes->Add(n - candidates);
      if (candidates > 0) {
        static obs::Counter* const fallbacks = SketchFallbacks("column");
        fallbacks->Add(1);
      }
    }
  }
  if (candidates == 0) return 0;

  // Paged build side: probe the survivors against the on-disk key index
  // instead of materializing the build dictionary as a set.
  std::shared_ptr<const PagedKeyIndex> index =
      BuildSideKeyIndex(build_cache, build_column);
  if (index != nullptr) {
    const EncodedTable& build_encoded = build_cache.encoded();
    size_t joined = 0;
    if (index->exact() && !keys->int64_keys.empty()) {
      for (size_t i = 0; i < n; ++i) {
        if (hit[i] && index->ContainsKey(keys->int64_keys[i])) ++joined;
      }
      return joined;
    }
    CheckStream(probe_cache.encoded().ForEachDictValue(
        probe_column, [&](uint32_t code, const Value& value) {
          if (hit[code] && IndexContains(build_encoded, build_column, *index,
                                         value)) {
            ++joined;
          }
        }));
    return joined;
  }

  // Exact stage over the Bloom survivors.
  if (!keys->int64_keys.empty()) {
    std::shared_ptr<const FlatSet64> build_ints =
        build_cache.Int64DictionarySet(build_column);
    if (build_ints != nullptr) {
      std::vector<uint8_t> present(candidates);
      if (candidates == n) {
        return batch::ProbeSet(*build_ints, keys->int64_keys.data(), n,
                               present.data());
      }
      std::vector<uint64_t> survivors;
      survivors.reserve(candidates);
      for (size_t i = 0; i < n; ++i) {
        if (hit[i]) survivors.push_back(keys->int64_keys[i]);
      }
      return batch::ProbeSet(*build_ints, survivors.data(), survivors.size(),
                             present.data());
    }
  }
  std::shared_ptr<const ValueSet> build_set =
      build_cache.DictionarySet(build_column);
  size_t joined = 0;
  CheckStream(probe_cache.encoded().ForEachDictValue(
      probe_column, [&](uint32_t code, const Value& value) {
        if (hit[code] && build_set->contains(value)) ++joined;
      }));
  return joined;
}

// Sketch-consistent row hashes of a partition's representatives, built
// from the per-column value-hash tables (no decoding). Representatives
// come from NULL-skipping partitions, so no NULL channel is needed.
std::vector<uint64_t> RepresentativeHashes(
    QueryCache& cache, const std::vector<size_t>& columns,
    const CodePartition& partition) {
  std::vector<std::shared_ptr<const DictionaryKeys>> keys;
  keys.reserve(columns.size());
  for (size_t c : columns) keys.push_back(cache.DictKeys(c));
  const EncodedTable& encoded = cache.encoded();
  std::vector<uint64_t> hashes(partition.representative.size(), kRowHashSeed);
  for (size_t k = 0; k < columns.size(); ++k) {
    // Multi-column representatives come in increasing row order, so the
    // reader walks each page once in paged mode.
    EncodedTable::CodeReader codes = encoded.codes_reader(columns[k]);
    const uint64_t* value_hash = keys[k]->hashes.data();
    for (size_t g = 0; g < hashes.size(); ++g) {
      hashes[g] = SketchHashCombine(
          hashes[g], value_hash[codes.At(partition.representative[g])]);
    }
  }
  return hashes;
}

}  // namespace

Result<std::vector<size_t>> OrderedProjectionIndexes(
    const Table& table, const std::vector<std::string>& attributes) {
  if (attributes.empty()) {
    return InvalidArgumentError("projection on empty attribute list");
  }
  std::vector<size_t> indexes;
  indexes.reserve(attributes.size());
  for (const std::string& name : attributes) {
    DBRE_ASSIGN_OR_RETURN(size_t index, table.schema().AttributeIndex(name));
    indexes.push_back(index);
  }
  return indexes;
}

Result<ValueVectorSet> OrderedDistinctProjection(
    const Table& table, const std::vector<std::string>& attributes) {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        OrderedProjectionIndexes(table, attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  return *cache->DistinctProjection(indexes);
}

Result<JoinCounts> ComputeJoinCounts(const Database& database,
                                     const EquiJoin& join) {
  DBRE_RETURN_IF_ERROR(join.Validate());
  DBRE_ASSIGN_OR_RETURN(const Table* left,
                        database.GetTable(join.left_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* right,
                        database.GetTable(join.right_relation));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> left_indexes,
                        OrderedProjectionIndexes(*left, join.left_attributes));
  DBRE_ASSIGN_OR_RETURN(
      std::vector<size_t> right_indexes,
      OrderedProjectionIndexes(*right, join.right_attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> left_cache,
                        left->query_cache());
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> right_cache,
                        right->query_cache());

  // Re-asked joins (discovery passes revisit the workload's links) hit the
  // memo; the weak_ptr inside validates the peer cache is still the same
  // object, so a mutated table can never serve stale counts.
  JoinCountsValue memo;
  if (left_cache->LookupJoinCounts(right_cache, left_indexes, right_indexes,
                                   &memo)) {
    return JoinCounts{memo.n_left, memo.n_right, memo.n_join};
  }

  JoinCounts counts;
  if (left_indexes.size() == 1) {
    // Single-attribute joins (the common case): each side's dictionary is
    // its distinct projection; probe the smaller dictionary against the
    // larger side, Bloom pre-pass first, exact membership second.
    const size_t lc = left_indexes[0];
    const size_t rc = right_indexes[0];
    left_cache->EnsureEncoded(left_indexes);
    right_cache->EnsureEncoded(right_indexes);
    counts.n_left = left_cache->encoded().dict_size(lc);
    counts.n_right = right_cache->encoded().dict_size(rc);
    const bool probe_left = counts.n_left <= counts.n_right;
    counts.n_join = SingleColumnIntersection(
        probe_left ? *left_cache : *right_cache, probe_left ? lc : rc,
        probe_left ? *right_cache : *left_cache, probe_left ? rc : lc);
    left_cache->StoreJoinCounts(
        right_cache, left_indexes, right_indexes,
        JoinCountsValue{counts.n_left, counts.n_right, counts.n_join});
    return counts;
  }

  // Multi-attribute: the distinct counts come from the memoized partitions;
  // the intersection probes the smaller side's representatives against the
  // larger side — through its projection Bloom when the exact distinct set
  // is not yet materialized (misses are proven absent; only hits decode).
  std::shared_ptr<const CodePartition> left_part =
      left_cache->Partition(left_indexes, NullPolicy::kSkipNullRows);
  std::shared_ptr<const CodePartition> right_part =
      right_cache->Partition(right_indexes, NullPolicy::kSkipNullRows);
  counts.n_left = left_part->num_groups();
  counts.n_right = right_part->num_groups();
  const bool probe_left = counts.n_left <= counts.n_right;
  QueryCache& probe_cache = probe_left ? *left_cache : *right_cache;
  QueryCache& build_cache = probe_left ? *right_cache : *left_cache;
  const std::vector<size_t>& probe_columns =
      probe_left ? left_indexes : right_indexes;
  const std::vector<size_t>& build_columns =
      probe_left ? right_indexes : left_indexes;
  const CodePartition& probe_part = probe_left ? *left_part : *right_part;

  std::vector<uint8_t> hit(probe_part.num_groups(), 1);
  size_t candidates = probe_part.num_groups();
  if (SketchesEnabled() && candidates > 0 &&
      !build_cache.HasDistinctProjection(build_columns)) {
    std::vector<uint64_t> probe_hashes =
        RepresentativeHashes(probe_cache, probe_columns, probe_part);
    std::shared_ptr<const ProjectionSketch> sketch =
        build_cache.ProjectionSketchFor(build_columns);
    candidates = batch::ProbeBloom(sketch->bloom, probe_hashes.data(),
                                   probe_hashes.size(), hit.data());
    static obs::Counter* const refutes = SketchRefutes("bloom_projection");
    refutes->Add(probe_part.num_groups() - candidates);
    if (candidates > 0) {
      static obs::Counter* const fallbacks = SketchFallbacks("projection");
      fallbacks->Add(1);
    }
  }
  if (candidates > 0) {
    std::shared_ptr<const ValueVectorSet> build_set =
        build_cache.DistinctProjection(build_columns);
    EncodedTable::RowReader reader =
        probe_cache.encoded().row_reader(probe_columns);
    ValueVector sub_row;
    for (size_t g = 0; g < probe_part.num_groups(); ++g) {
      if (!hit[g]) continue;
      reader.Read(probe_part.representative[g], &sub_row);
      if (build_set->contains(sub_row)) ++counts.n_join;
    }
  }
  left_cache->StoreJoinCounts(
      right_cache, left_indexes, right_indexes,
      JoinCountsValue{counts.n_left, counts.n_right, counts.n_join});
  return counts;
}

Result<bool> InclusionHolds(const Database& database,
                            const std::string& lhs_relation,
                            const std::vector<std::string>& lhs_attributes,
                            const std::string& rhs_relation,
                            const std::vector<std::string>& rhs_attributes) {
  if (lhs_attributes.size() != rhs_attributes.size()) {
    return InvalidArgumentError(
        "inclusion test with mismatched attribute arity");
  }
  DBRE_ASSIGN_OR_RETURN(const Table* lhs, database.GetTable(lhs_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* rhs, database.GetTable(rhs_relation));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        OrderedProjectionIndexes(*rhs, rhs_attributes));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        OrderedProjectionIndexes(*lhs, lhs_attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> rhs_cache,
                        rhs->query_cache());
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> lhs_cache,
                        lhs->query_cache());
  if (lhs_indexes.size() == 1) {
    // Single attribute: r_i[Y] ⊆ r_j[Z] iff every lhs dictionary value is
    // in the rhs dictionary. Two provable pre-passes run first: a strictly
    // larger lhs dictionary refutes outright (exact cardinalities), and a
    // Bloom miss against an already-built rhs column sketch refutes one
    // value (no false negatives). Survivors take the exact membership scan.
    const size_t lc = lhs_indexes[0];
    const size_t rc = rhs_indexes[0];
    lhs_cache->EnsureEncoded(lhs_indexes);
    rhs_cache->EnsureEncoded(rhs_indexes);
    const EncodedTable& lhs_encoded = lhs_cache->encoded();
    const size_t lhs_size = lhs_encoded.dict_size(lc);
    if (lhs_size == 0) return true;
    if (SketchesEnabled()) {
      if (lhs_size > rhs_cache->encoded().dict_size(rc)) {
        static obs::Counter* const refutes = SketchRefutes("cardinality");
        refutes->Add(1);
        return false;
      }
      std::shared_ptr<const ColumnSketch> sketch =
          rhs_cache->MaybeColumnSketch(rc);
      if (sketch != nullptr) {
        std::shared_ptr<const DictionaryKeys> keys = lhs_cache->DictKeys(lc);
        std::vector<uint8_t> hit(lhs_size);
        const size_t hits = batch::ProbeBloom(
            sketch->bloom, keys->hashes.data(), lhs_size, hit.data());
        if (hits < lhs_size) {
          static obs::Counter* const refutes = SketchRefutes("bloom_column");
          refutes->Add(1);
          return false;
        }
        static obs::Counter* const fallbacks = SketchFallbacks("column");
        fallbacks->Add(1);
      }
    }
    // Paged rhs: probe every lhs dictionary value against the on-disk key
    // index instead of materializing the rhs dictionary as a set.
    std::shared_ptr<const PagedKeyIndex> index = BuildSideKeyIndex(*rhs_cache, rc);
    if (index != nullptr) {
      const EncodedTable& rhs_encoded = rhs_cache->encoded();
      if (index->exact() && lhs_encoded.column_typed(lc) &&
          lhs_encoded.declared_type(lc) == DataType::kInt64) {
        std::shared_ptr<const DictionaryKeys> keys = lhs_cache->DictKeys(lc);
        for (uint64_t key : keys->int64_keys) {
          if (!index->ContainsKey(key)) return false;
        }
        return true;
      }
      bool included = true;
      CheckStream(lhs_encoded.ForEachDictValue(
          lc, [&](uint32_t, const Value& value) {
            if (included &&
                !IndexContains(rhs_encoded, rc, *index, value)) {
              included = false;
            }
          }));
      return included;
    }
    if (lhs_encoded.column_typed(lc) &&
        lhs_encoded.declared_type(lc) == DataType::kInt64) {
      std::shared_ptr<const FlatSet64> rhs_ints = rhs_cache->Int64DictionarySet(rc);
      if (rhs_ints != nullptr) {
        std::shared_ptr<const DictionaryKeys> keys = lhs_cache->DictKeys(lc);
        std::vector<uint8_t> hit(lhs_size);
        return batch::ProbeSet(*rhs_ints, keys->int64_keys.data(), lhs_size,
                               hit.data()) == lhs_size;
      }
    }
    std::shared_ptr<const ValueSet> rhs_values = rhs_cache->DictionarySet(rc);
    if (lhs_encoded.dict_resident(lc)) {
      for (uint32_t code = 0; code < lhs_size; ++code) {
        if (!rhs_values->contains(lhs_encoded.Decode(lc, code))) {
          return false;
        }
      }
      return true;
    }
    bool included = true;
    CheckStream(lhs_encoded.ForEachDictValue(
        lc, [&](uint32_t, const Value& value) {
          if (included && !rhs_values->contains(value)) included = false;
        }));
    return included;
  }
  // Multi-attribute: probe the lhs representatives against the rhs
  // projection — its Bloom first when the exact set is not materialized
  // yet (one miss refutes the whole inclusion), decoded rows second.
  std::shared_ptr<const CodePartition> lhs_part =
      lhs_cache->Partition(lhs_indexes, NullPolicy::kSkipNullRows);
  if (lhs_part->num_groups() == 0) return true;
  if (SketchesEnabled()) {
    if (lhs_part->num_groups() > rhs_cache->DistinctCount(rhs_indexes)) {
      static obs::Counter* const refutes = SketchRefutes("cardinality");
      refutes->Add(1);
      return false;
    }
    if (!rhs_cache->HasDistinctProjection(rhs_indexes)) {
      std::vector<uint64_t> lhs_hashes =
          RepresentativeHashes(*lhs_cache, lhs_indexes, *lhs_part);
      std::shared_ptr<const ProjectionSketch> sketch =
          rhs_cache->ProjectionSketchFor(rhs_indexes);
      std::vector<uint8_t> hit(lhs_hashes.size());
      const size_t hits = batch::ProbeBloom(
          sketch->bloom, lhs_hashes.data(), lhs_hashes.size(), hit.data());
      if (hits < lhs_hashes.size()) {
        static obs::Counter* const refutes = SketchRefutes("bloom_projection");
        refutes->Add(1);
        return false;
      }
      static obs::Counter* const fallbacks = SketchFallbacks("projection");
      fallbacks->Add(1);
    }
  }
  std::shared_ptr<const ValueVectorSet> rhs_values =
      rhs_cache->DistinctProjection(rhs_indexes);
  EncodedTable::RowReader reader =
      lhs_cache->encoded().row_reader(lhs_indexes);
  ValueVector sub_row;
  for (uint32_t rep : lhs_part->representative) {
    reader.Read(rep, &sub_row);
    if (!rhs_values->contains(sub_row)) return false;
  }
  return true;
}

Result<size_t> IntersectionSize(const Database& database,
                                const EquiJoin& join) {
  DBRE_ASSIGN_OR_RETURN(JoinCounts counts, ComputeJoinCounts(database, join));
  return counts.n_join;
}

Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const AttributeSet& lhs,
                                       const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD check with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  return cache->FdHolds(lhs_indexes, rhs_indexes);
}

Result<double> FunctionalDependencyError(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD error with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  return cache->FdError(lhs_indexes, rhs_indexes);
}

namespace naive {

Result<ValueVectorSet> OrderedDistinctProjection(
    const Table& table, const std::vector<std::string>& attributes) {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        OrderedProjectionIndexes(table, attributes));
  ValueVectorSet distinct;
  distinct.reserve(table.num_rows());
  for (const ValueVector& row : table.rows()) {
    ValueVector projected = Table::ProjectRow(row, indexes);
    if (HasNull(projected)) continue;
    distinct.insert(std::move(projected));
  }
  return distinct;
}

Result<JoinCounts> ComputeJoinCounts(const Database& database,
                                     const EquiJoin& join) {
  DBRE_RETURN_IF_ERROR(join.Validate());
  DBRE_ASSIGN_OR_RETURN(const Table* left,
                        database.GetTable(join.left_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* right,
                        database.GetTable(join.right_relation));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet left_values,
      naive::OrderedDistinctProjection(*left, join.left_attributes));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet right_values,
      naive::OrderedDistinctProjection(*right, join.right_attributes));

  JoinCounts counts;
  counts.n_left = left_values.size();
  counts.n_right = right_values.size();
  const ValueVectorSet& probe =
      left_values.size() <= right_values.size() ? left_values : right_values;
  const ValueVectorSet& build =
      left_values.size() <= right_values.size() ? right_values : left_values;
  for (const ValueVector& row : probe) {
    if (build.contains(row)) ++counts.n_join;
  }
  return counts;
}

Result<bool> InclusionHolds(const Database& database,
                            const std::string& lhs_relation,
                            const std::vector<std::string>& lhs_attributes,
                            const std::string& rhs_relation,
                            const std::vector<std::string>& rhs_attributes) {
  if (lhs_attributes.size() != rhs_attributes.size()) {
    return InvalidArgumentError(
        "inclusion test with mismatched attribute arity");
  }
  DBRE_ASSIGN_OR_RETURN(const Table* lhs, database.GetTable(lhs_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* rhs, database.GetTable(rhs_relation));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet rhs_values,
      naive::OrderedDistinctProjection(*rhs, rhs_attributes));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        OrderedProjectionIndexes(*lhs, lhs_attributes));
  for (const ValueVector& row : lhs->rows()) {
    ValueVector projected = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(projected)) continue;
    if (!rhs_values.contains(projected)) return false;
  }
  return true;
}

Result<bool> FunctionalDependencyHolds(const Table& table,
                                       const AttributeSet& lhs,
                                       const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD check with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  std::unordered_map<ValueVector, ValueVector, ValueVectorHash> witness;
  witness.reserve(table.num_rows());
  for (const ValueVector& row : table.rows()) {
    ValueVector key = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(key)) continue;
    ValueVector dependent = Table::ProjectRow(row, rhs_indexes);
    auto [it, inserted] = witness.try_emplace(std::move(key), dependent);
    if (!inserted && it->second != dependent) return false;
  }
  return true;
}

Result<double> FunctionalDependencyError(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs) {
  if (lhs.empty() || rhs.empty()) {
    return InvalidArgumentError("FD error with empty side");
  }
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                        table.ProjectionIndexes(lhs));
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> rhs_indexes,
                        table.ProjectionIndexes(rhs));
  // group key → (rhs value → count)
  std::unordered_map<ValueVector,
                     std::unordered_map<ValueVector, size_t,
                                        ValueVectorHash>,
                     ValueVectorHash>
      groups;
  size_t total = 0;
  for (const ValueVector& row : table.rows()) {
    ValueVector key = Table::ProjectRow(row, lhs_indexes);
    if (HasNull(key)) continue;
    ++total;
    ++groups[std::move(key)][Table::ProjectRow(row, rhs_indexes)];
  }
  if (total == 0) return 0.0;
  size_t kept = 0;
  for (const auto& [key, counts] : groups) {
    size_t best = 0;
    for (const auto& [value, count] : counts) best = std::max(best, count);
    kept += best;
  }
  return static_cast<double>(total - kept) / static_cast<double>(total);
}

}  // namespace naive

}  // namespace dbre
