// A process-wide pool of loaded extensions keyed by content.
//
// Many dbred sessions reverse-engineer the same legacy database: each one
// loads the same DDL and the same CSV extensions into its own catalog. The
// expensive artifacts — the copy-on-write row storage, the dictionary
// encodings and every memoized partition in the `QueryCache` — depend only
// on the extension's content, so the registry interns tables by a content
// fingerprint: the first session to load an extension donates its storage
// and cache, and every later identical load adopts them via
// `Table::AdoptSharedExtension` (one shared_ptr swap; the rows just loaded
// are freed). Partitions computed by any session's pipeline then serve all
// of them.
//
// Thread safe; entries are cheap (a Table copy shares rows and cache) and
// bounded by `max_entries` with FIFO eviction — eviction only drops the
// registry's reference, never a live session's.
#ifndef DBRE_RELATIONAL_EXTENSION_REGISTRY_H_
#define DBRE_RELATIONAL_EXTENSION_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "relational/database.h"
#include "relational/table.h"

namespace dbre {

class ExtensionRegistry {
 public:
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;       // an identical extension was already interned
    uint64_t entries = 0;    // live canonical extensions
    uint64_t evictions = 0;
    uint64_t releases = 0;   // entries dropped by Sweep (unreferenced)
    uint64_t resident_bytes = 0;  // ApproximateBytes of live entries
  };

  explicit ExtensionRegistry(size_t max_entries = 256)
      : max_entries_(max_entries) {}

  ExtensionRegistry(const ExtensionRegistry&) = delete;
  ExtensionRegistry& operator=(const ExtensionRegistry&) = delete;

  // Interns `table`'s extension. On a content hit the table adopts the
  // canonical storage and query cache and this returns true; on a miss the
  // table's own (cache materialized first) becomes canonical and this
  // returns false. Tables whose extension cannot be encoded are left
  // untouched.
  bool Intern(Table* table);

  // Intern with a fingerprint the caller already knows — the snapshot load
  // path (src/store/) reads it from a checksummed footer instead of
  // re-hashing every row. The fingerprint is only a bucket key: storage is
  // shared exclusively after AdoptSharedExtension verified byte equality of
  // the column layout and every row, so a wrong (or adversarially colliding)
  // fingerprint can cost a cache miss but never aliases distinct
  // extensions. Doubles as the forced-collision test hook.
  bool InternPrecomputed(Table* table, uint64_t fingerprint);

  // The content fingerprint Intern buckets by: FNV-1a over the column
  // layout (names and declared types) and every cell's type tag and payload
  // bytes, in row order. Stable across processes and builds — it is stored
  // in snapshot footers on disk. Two tables may share storage only if their
  // fingerprints agree AND they compare byte-equal.
  static uint64_t ComputeFingerprint(const Table& table);

  // Interns every relation of `database` in name order; returns the number
  // of hits.
  size_t InternDatabase(Database* database);

  // Drops every canonical entry no longer referenced by any live table.
  // The canonical copy's query cache is the sharing token — Intern
  // materializes it before donating and every adopter holds the same
  // shared_ptr — so a use count of one means the last referencing session
  // closed and the storage (rows, dictionaries, memoized partitions,
  // paged-source handle) can be returned. Called by the session manager
  // after each session close; returns the number of entries released. The
  // dbre_extension_registry_{live_entries,resident_bytes} gauges track the
  // result, proving memory actually comes back.
  size_t Sweep();

  Stats stats() const;

  void Clear();

 private:
  // Keeps the resident-bytes counter and the process-wide gauges in step
  // with entries_. Lock held.
  void AccountInsertLocked(const Table& table);
  void AccountEraseLocked(const Table& table);

  mutable std::mutex mutex_;
  size_t max_entries_;
  // fingerprint → canonical tables with that fingerprint (collisions are
  // resolved by AdoptSharedExtension's exact comparison).
  std::map<uint64_t, std::vector<Table>> entries_;
  std::deque<uint64_t> insertion_order_;  // for FIFO eviction
  Stats stats_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_EXTENSION_REGISTRY_H_
