#include "relational/csv.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "common/string_util.h"

namespace dbre {
namespace {

// One parsed CSV field: its text and whether it was quoted (quoted empty
// string is "" rather than NULL).
struct CsvField {
  std::string text;
  bool quoted = false;
};

// Parses one CSV record starting at `*pos`; advances `*pos` past the record
// terminator. Handles quoted fields with embedded commas/newlines.
// `*lines_consumed` is incremented once per physical line break consumed —
// including breaks embedded in quoted fields — so callers can report real
// file line numbers even when records span multiple lines.
Result<std::vector<CsvField>> ParseRecord(std::string_view text, size_t* pos,
                                          size_t* lines_consumed,
                                          size_t expected_fields = 0) {
  std::vector<CsvField> fields;
  fields.reserve(expected_fields);
  CsvField current;
  bool in_quotes = false;
  bool saw_any = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current.text += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n' ||
            (c == '\r' && (i + 1 >= text.size() || text[i + 1] != '\n'))) {
          ++*lines_consumed;
        }
        current.text += c;
      }
      continue;
    }
    if (c == '"' && current.text.empty() && !current.quoted) {
      in_quotes = true;
      current.quoted = true;
      saw_any = true;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current = CsvField{};
      saw_any = true;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // Consume \r\n or lone terminator.
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      ++*lines_consumed;
      break;
    }
    current.text += c;
    saw_any = true;
  }
  if (in_quotes) {
    return ParseError("unterminated quoted CSV field");
  }
  *pos = i;
  if (!saw_any && fields.empty() && current.text.empty() &&
      !current.quoted) {
    return std::vector<CsvField>{};  // blank line
  }
  fields.push_back(std::move(current));
  return fields;
}

bool NeedsQuoting(std::string_view text) {
  return text.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string QuoteFieldAlways(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string QuoteField(std::string_view text) {
  if (!NeedsQuoting(text)) return std::string(text);
  return QuoteFieldAlways(text);
}

// True if `text` written unquoted reads back verbatim. The reader trims
// unquoted fields and maps empty/"NULL" text to SQL NULL, so empty
// strings, NULL lookalikes and fields with surrounding whitespace must be
// quoted to survive the round trip.
bool UnquotedTextRoundTrips(std::string_view text) {
  if (text.empty()) return false;
  if (TrimWhitespace(text).size() != text.size()) return false;
  if (EqualsIgnoreCase(text, "null")) return false;
  return true;
}

}  // namespace

Result<size_t> LoadCsvText(std::string_view csv_text, Table* table) {
  if (table == nullptr) return InvalidArgumentError("table is null");
  const RelationSchema& schema = table->schema();
  size_t pos = 0;
  size_t line = 1;  // physical line the next record starts on
  size_t consumed = 0;
  DBRE_ASSIGN_OR_RETURN(std::vector<CsvField> header,
                        ParseRecord(csv_text, &pos, &consumed));
  line += consumed;
  if (header.empty()) return ParseError("CSV input has no header");
  if (header.size() != schema.arity()) {
    return ParseError("CSV header has " + std::to_string(header.size()) +
                      " columns, schema " + schema.name() + " has " +
                      std::to_string(schema.arity()));
  }
  std::vector<size_t> column_to_attribute(header.size());
  std::vector<bool> used(schema.arity(), false);
  for (size_t i = 0; i < header.size(); ++i) {
    std::string name(TrimWhitespace(header[i].text));
    DBRE_ASSIGN_OR_RETURN(size_t index, schema.AttributeIndex(name));
    if (used[index]) {
      return ParseError("duplicate CSV header column: " + name);
    }
    used[index] = true;
    column_to_attribute[i] = index;
  }

  // One reallocation-free append run: every remaining physical line is at
  // most one record (records can span lines but never share one), so the
  // newline count bounds the number of inserts.
  table->Reserve(static_cast<size_t>(
      std::count(csv_text.begin() + static_cast<ptrdiff_t>(pos),
                 csv_text.end(), '\n')) +
                 1);

  size_t loaded = 0;
  while (pos < csv_text.size()) {
    size_t record_line = line;
    consumed = 0;
    DBRE_ASSIGN_OR_RETURN(std::vector<CsvField> record,
                          ParseRecord(csv_text, &pos, &consumed,
                                      header.size()));
    line += consumed;
    if (record.empty()) continue;  // blank line
    if (record.size() != header.size()) {
      return ParseError("CSV record at line " + std::to_string(record_line) +
                        " has " + std::to_string(record.size()) +
                        " fields, expected " + std::to_string(header.size()));
    }
    ValueVector row(schema.arity());
    for (size_t i = 0; i < record.size(); ++i) {
      size_t attribute_index = column_to_attribute[i];
      DataType type = schema.attributes()[attribute_index].type;
      Value value;
      if (record[i].quoted) {
        // Quoted fields are never NULL: string fields are taken verbatim
        // (a quoted empty string is "" rather than NULL), and typed fields
        // must parse — a quoted "NULL" in an int64 column is an error, not
        // a silent NULL.
        if (type == DataType::kString) {
          value = Value::Text(std::move(record[i].text));
        } else {
          DBRE_ASSIGN_OR_RETURN(
              value, Value::Parse(record[i].text, type,
                                  Value::NullHandling::kNeverNull));
        }
      } else {
        DBRE_ASSIGN_OR_RETURN(value, Value::Parse(record[i].text, type));
      }
      row[attribute_index] = std::move(value);
    }
    DBRE_RETURN_IF_ERROR(table->Insert(std::move(row)));
    ++loaded;
  }
  return loaded;
}

Result<size_t> LoadCsvFile(const std::string& path, Table* table) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open " + path);
  std::string buffer;
  in.seekg(0, std::ios::end);
  const std::streampos size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size > 0) buffer.reserve(static_cast<size_t>(size));
  buffer.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  return LoadCsvText(buffer, table);
}

std::string WriteCsvText(const Table& table) {
  std::string out;
  const RelationSchema& schema = table.schema();
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (i > 0) out += ',';
    out += QuoteField(schema.attributes()[i].name);
  }
  out += '\n';
  // ForEachRow streams paged extensions page-by-page; it only fails when
  // the extension cannot encode, which cannot happen for a table that was
  // loadable in the first place.
  (void)table.ForEachRow([&out](const ValueVector& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      if (row[i].is_null()) {
        out += "NULL";
      } else if (row[i].is_text()) {
        // Quote anything the reader would not read back verbatim:
        // delimiters, empty strings, NULL lookalikes ("null",
        // whitespace-only) and surrounding whitespace.
        const std::string& text = row[i].as_text();
        if (NeedsQuoting(text) || !UnquotedTextRoundTrips(text)) {
          out += QuoteFieldAlways(text);
        } else {
          out += text;
        }
      } else {
        out += row[i].ToString();
      }
    }
    out += '\n';
  });
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return IoError("cannot open " + path + " for writing");
  out << WriteCsvText(table);
  if (!out) return IoError("write failed for " + path);
  return Status::Ok();
}

Result<size_t> ExportDatabaseCsv(const Database& database,
                                 const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return IoError("cannot create directory " + directory + ": " +
                   ec.message());
  }
  size_t written = 0;
  for (const std::string& relation : database.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    DBRE_RETURN_IF_ERROR(
        WriteCsvFile(*table, directory + "/" + relation + ".csv"));
    ++written;
  }
  return written;
}

Result<size_t> ImportDatabaseCsv(const std::string& directory,
                                 Database* database) {
  if (database == nullptr) return InvalidArgumentError("database is null");
  size_t loaded = 0;
  for (const std::string& relation : database->RelationNames()) {
    std::string path = directory + "/" + relation + ".csv";
    std::error_code ec;
    if (!std::filesystem::exists(path, ec) || ec) continue;
    DBRE_ASSIGN_OR_RETURN(Table * table,
                          database->GetMutableTable(relation));
    DBRE_ASSIGN_OR_RETURN(size_t rows, LoadCsvFile(path, table));
    (void)rows;
    ++loaded;
  }
  return loaded;
}

}  // namespace dbre
