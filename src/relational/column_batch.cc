#include "relational/column_batch.h"

#include "obs/metrics.h"

namespace dbre::batch {
namespace {

// Kleene truth tables, indexed [a * 3 + b] with F=0, T=1, U=2.
constexpr Truth kAnd[9] = {
    Truth::kFalse, Truth::kFalse, Truth::kFalse,    // F & {F,T,U}
    Truth::kFalse, Truth::kTrue,  Truth::kUnknown,  // T & {F,T,U}
    Truth::kFalse, Truth::kUnknown, Truth::kUnknown,  // U & {F,T,U}
};
constexpr Truth kOr[9] = {
    Truth::kFalse, Truth::kTrue, Truth::kUnknown,  // F | {F,T,U}
    Truth::kTrue,  Truth::kTrue, Truth::kTrue,     // T | {F,T,U}
    Truth::kUnknown, Truth::kTrue, Truth::kUnknown,  // U | {F,T,U}
};
constexpr Truth kNot[3] = {Truth::kTrue, Truth::kFalse, Truth::kUnknown};

// Prefetch distance for the random-access probe kernels: far enough ahead
// to cover a memory load, close enough that the lines are still resident.
constexpr size_t kLookahead = 16;

obs::Counter* KernelCounter(Kernel kernel) {
  obs::Registry& registry = obs::Registry::Default();
  const char* name;
  switch (kernel) {
    case Kernel::kFilter: name = "filter"; break;
    case Kernel::kProbe: name = "probe"; break;
    case Kernel::kPartition: name = "partition"; break;
    case Kernel::kScan: name = "scan"; break;
    case Kernel::kJoin: name = "join"; break;
    default: name = "other"; break;
  }
  return registry.GetCounter("dbre_batch_rows_total", {{"kernel", name}},
                             "Rows processed by vectorized batch kernels");
}

}  // namespace

void AddKernelRows(Kernel kernel, size_t rows) {
  static obs::Counter* const counters[] = {
      KernelCounter(Kernel::kFilter), KernelCounter(Kernel::kProbe),
      KernelCounter(Kernel::kPartition), KernelCounter(Kernel::kScan),
      KernelCounter(Kernel::kJoin)};
  counters[static_cast<size_t>(kernel)]->Add(rows);
}

void GatherTruth(const uint32_t* codes, size_t n, const Truth* code_truth,
                 Truth null_truth, uint32_t null_code, Truth* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = codes[i] == null_code ? null_truth : code_truth[codes[i]];
  }
}

void FillTruth(Truth value, size_t n, Truth* out) {
  for (size_t i = 0; i < n; ++i) out[i] = value;
}

void TruthAnd(const Truth* a, const Truth* b, size_t n, Truth* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = kAnd[static_cast<size_t>(a[i]) * 3 + static_cast<size_t>(b[i])];
  }
}

void TruthOr(const Truth* a, const Truth* b, size_t n, Truth* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = kOr[static_cast<size_t>(a[i]) * 3 + static_cast<size_t>(b[i])];
  }
}

void TruthNot(const Truth* a, size_t n, Truth* out) {
  for (size_t i = 0; i < n; ++i) out[i] = kNot[static_cast<size_t>(a[i])];
}

size_t SelectTrue(const Truth* truth, size_t n, size_t base,
                  uint32_t* sel_out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    sel_out[count] = static_cast<uint32_t>(base + i);
    count += truth[i] == Truth::kTrue ? 1 : 0;
  }
  return count;
}

void GatherKeys(const uint32_t* codes, size_t n, const uint64_t* code_keys,
                uint64_t null_key, uint32_t null_code, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = codes[i] == null_code ? null_key : code_keys[codes[i]];
  }
}

void CombineKeys(const uint32_t* codes, size_t n, const uint64_t* code_keys,
                 uint64_t null_key, uint32_t null_code, uint64_t* inout) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key =
        codes[i] == null_code ? null_key : code_keys[codes[i]];
    inout[i] = SketchHashCombine(inout[i], key);
  }
}

size_t ProbeSet(const FlatSet64& set, const uint64_t* keys, size_t n,
                uint8_t* hit) {
  size_t hits = 0;
  const size_t warm = n < kLookahead ? n : kLookahead;
  for (size_t i = 0; i < warm; ++i) set.Prefetch(keys[i]);
  for (size_t i = 0; i < n; ++i) {
    if (i + kLookahead < n) set.Prefetch(keys[i + kLookahead]);
    const uint8_t h = set.Contains(keys[i]) ? 1 : 0;
    hit[i] = h;
    hits += h;
  }
  AddKernelRows(Kernel::kProbe, n);
  return hits;
}

size_t ProbeBloom(const BloomFilter& bloom, const uint64_t* keys, size_t n,
                  uint8_t* hit) {
  size_t hits = 0;
  const size_t warm = n < kLookahead ? n : kLookahead;
  for (size_t i = 0; i < warm; ++i) bloom.Prefetch(keys[i]);
  for (size_t i = 0; i < n; ++i) {
    if (i + kLookahead < n) bloom.Prefetch(keys[i + kLookahead]);
    const uint8_t h = bloom.MayContain(keys[i]) ? 1 : 0;
    hit[i] = h;
    hits += h;
  }
  AddKernelRows(Kernel::kProbe, n);
  return hits;
}

}  // namespace dbre::batch
