// Probabilistic summaries of column and projection extensions.
//
// The discovery pipeline spends most of its time answering two questions
// about projected value sets: "how many distinct values?" (‖r[X]‖) and
// "is this value present on the other side?" (IND containment). Both admit
// cheap sketched answers that are wrong in only one direction:
//
//   * A Bloom filter built over a set S has NO false negatives: if the
//     filter reports "absent", the value is provably not in S. A miss
//     therefore *refutes* membership exactly; only hits need the exact
//     check. IND candidates with any refuted left value are discarded
//     without ever touching the exact sets.
//   * A HyperLogLog estimates |S| within ~1.04/√m standard error. It can
//     never prove anything, so it only steers strategy (which side to
//     probe, whether a sketch pass is worth building) and feeds the
//     observability counters; every decision it influences falls back to
//     the exact path.
//
// Sketches hash decoded Values (Value::Hash is equality-compatible across
// tables; dictionary codes are table-local and useless cross-table),
// finalized through a 64-bit mixer so HLL register selection and Bloom
// probe derivation see uniformly distributed bits.
//
// `SketchesEnabled()` gates every sketch fast path. Results are identical
// either way — the crosscheck tests flip the gate to prove it — so the
// toggle exists for A/B measurement and as a kill switch.
#ifndef DBRE_RELATIONAL_SKETCH_H_
#define DBRE_RELATIONAL_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relational/value.h"

namespace dbre {

// Finalizing mixer (splitmix64): bijective, so equal inputs stay equal and
// every output bit depends on every input bit.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// The canonical sketch hash of a value: equal Values (possibly living in
// different tables' dictionaries) always sketch-hash equal.
inline uint64_t SketchHash(const Value& value) {
  return MixHash64(static_cast<uint64_t>(value.Hash()));
}

// Combines per-column sketch hashes into a row hash for multi-attribute
// projections; order-sensitive (attribute lists are ordered).
inline uint64_t SketchHashCombine(uint64_t seed, uint64_t h) {
  return MixHash64(seed * 0x100000001B3ull ^ h);
}

// HyperLogLog distinct-count estimator (Flajolet et al.), 2^precision
// 6-bit registers stored one per byte. Deterministic: the estimate is a
// pure function of the inserted hash multiset.
class HyperLogLog {
 public:
  // precision in [4, 18]; 12 (4096 registers, ~1.6% error) is the default
  // used by QueryCache.
  explicit HyperLogLog(int precision = 12);

  void AddHash(uint64_t hash);

  // Bias-corrected estimate with linear counting in the small range.
  double Estimate() const;

  // Folds `other` (same precision) into this sketch; the result equals the
  // sketch of the union of the inserted streams.
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

  // The theoretical relative standard error 1.04/√(2^precision).
  static double StandardError(int precision);

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

// Blocked Bloom filter over 64-bit hashes. Probes stay inside one 64-byte
// cache line, so a membership test costs one memory access. `bits_per_key`
// ≈ 10 gives ~1% false positives; false negatives are impossible.
class BloomFilter {
 public:
  explicit BloomFilter(size_t expected_keys, double bits_per_key = 10.0);

  void AddHash(uint64_t hash);
  bool MayContain(uint64_t hash) const;

  // Prefetches the (single) cache block a MayContain(hash) will touch.
  void Prefetch(uint64_t hash) const;

  size_t num_bits() const { return blocks_.size() * 64; }

 private:
  static constexpr size_t kWordsPerBlock = 8;  // 64 bytes
  static constexpr size_t kBlockBits = kWordsPerBlock * 64;

  // block index + the probe word/bit masks for one hash.
  struct Probe {
    size_t block;
    uint64_t mask[kWordsPerBlock];
  };
  Probe MakeProbe(uint64_t hash) const;

  int num_probes_;
  size_t block_mask_;                 // blocks are a power of two
  std::vector<uint64_t> blocks_;      // kWordsPerBlock words per block
};

// Process-wide gate for the sketch pre-passes (default on). Turning it off
// never changes results, only the route taken to them.
bool SketchesEnabled();
void SetSketchesEnabled(bool enabled);

// RAII scope for tests: force the gate, restore on exit.
class ScopedSketchGate {
 public:
  explicit ScopedSketchGate(bool enabled);
  ~ScopedSketchGate();

 private:
  bool previous_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_SKETCH_H_
