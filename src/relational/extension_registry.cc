#include "relational/extension_registry.h"

#include <algorithm>
#include <bit>
#include <iterator>
#include <utility>

#include "obs/metrics.h"
#include "relational/query_cache.h"

namespace dbre {
namespace {

// Process-wide mirrors of the per-registry Stats, so `metrics` shows
// intern traffic without walking every registry instance.
struct InternCounters {
  obs::Counter* lookups;
  obs::Counter* hits;
  obs::Counter* evictions;
  obs::Counter* releases;
  obs::Gauge* live_entries;
  obs::Gauge* resident_bytes;
};

const InternCounters& RegistryCounters() {
  static const InternCounters counters = [] {
    obs::Registry& registry = obs::Registry::Default();
    return InternCounters{
        registry.GetCounter("dbre_extension_intern_lookups_total", {},
                            "Extension-registry intern attempts"),
        registry.GetCounter(
            "dbre_extension_intern_hits_total", {},
            "Intern attempts that adopted an existing shared extension"),
        registry.GetCounter("dbre_extension_intern_evictions_total", {},
                            "Canonical extensions evicted by capacity"),
        registry.GetCounter(
            "dbre_extension_intern_releases_total", {},
            "Canonical extensions released by Sweep after their last "
            "referencing session closed"),
        registry.GetGauge("dbre_extension_registry_live_entries", {},
                          "Canonical extensions currently interned"),
        registry.GetGauge(
            "dbre_extension_registry_resident_bytes", {},
            "ApproximateBytes of every interned canonical extension"),
    };
  }();
  return counters;
}

// Byte-wise FNV-1a accumulator. Value::Hash is not used on purpose: it
// delegates to std::hash, whose result is implementation-defined, while
// this fingerprint is persisted in snapshot footers and must stay stable
// across processes and standard libraries.
struct Fnv {
  uint64_t h = 1469598103934665603ull;

  void Byte(unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte(static_cast<unsigned char>(v >> (i * 8)));
  }
  void Str(const std::string& s) {
    U64(s.size());
    for (char c : s) Byte(static_cast<unsigned char>(c));
  }
};

}  // namespace

uint64_t ExtensionRegistry::ComputeFingerprint(const Table& table) {
  if (table.is_paged()) {
    // The snapshot footer already holds this very fingerprint, computed at
    // write time over the same layout and cells; rescanning the extension
    // through the buffer pool would defeat the point of paging. The value
    // is only a hash key — AdoptSharedExtension does the exact comparison.
    return table.paged_fingerprint();
  }
  // FNV-1a over the column layout and every cell, order-dependent: the row
  // order matters for partition group ids, so only identically-ordered
  // loads may share storage.
  Fnv fnv;
  for (const Attribute& attribute : table.schema().attributes()) {
    fnv.Str(attribute.name);
    fnv.Byte(static_cast<unsigned char>(attribute.type));
  }
  fnv.U64(table.num_rows());
  for (const ValueVector& row : table.rows()) {
    for (const Value& value : row) {
      if (value.is_null()) {
        fnv.Byte(0);
      } else if (value.is_int()) {
        fnv.Byte(1);
        fnv.U64(static_cast<uint64_t>(value.as_int()));
      } else if (value.is_real()) {
        fnv.Byte(2);
        fnv.U64(std::bit_cast<uint64_t>(value.as_real()));
      } else if (value.is_bool()) {
        fnv.Byte(3);
        fnv.Byte(value.as_bool() ? 1 : 0);
      } else {
        fnv.Byte(4);
        fnv.Str(value.as_text());
      }
    }
  }
  return fnv.h;
}

bool ExtensionRegistry::Intern(Table* table) {
  return InternPrecomputed(table, ComputeFingerprint(*table));
}

void ExtensionRegistry::AccountInsertLocked(const Table& table) {
  stats_.resident_bytes += table.ApproximateBytes();
  ++stats_.entries;
  RegistryCounters().live_entries->Set(
      static_cast<int64_t>(stats_.entries));
  RegistryCounters().resident_bytes->Set(
      static_cast<int64_t>(stats_.resident_bytes));
}

void ExtensionRegistry::AccountEraseLocked(const Table& table) {
  size_t bytes = table.ApproximateBytes();
  stats_.resident_bytes -= bytes < stats_.resident_bytes
                               ? bytes
                               : stats_.resident_bytes;
  --stats_.entries;
  RegistryCounters().live_entries->Set(
      static_cast<int64_t>(stats_.entries));
  RegistryCounters().resident_bytes->Set(
      static_cast<int64_t>(stats_.resident_bytes));
}

bool ExtensionRegistry::InternPrecomputed(Table* table,
                                          uint64_t fingerprint) {
  // Materialize the cache before donating: a copy taken now shares the
  // cache pointer, so partitions memoized later through either handle are
  // visible to both.
  bool cacheable = table->query_cache().ok();

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  RegistryCounters().lookups->Add(1);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    for (const Table& canonical : it->second) {
      if (table->AdoptSharedExtension(canonical)) {
        ++stats_.hits;
        RegistryCounters().hits->Add(1);
        return true;
      }
    }
  }
  if (!cacheable) return false;
  while (stats_.entries >= max_entries_ && !insertion_order_.empty()) {
    uint64_t oldest = insertion_order_.front();
    insertion_order_.pop_front();
    auto evict = entries_.find(oldest);
    if (evict != entries_.end() && !evict->second.empty()) {
      AccountEraseLocked(evict->second.front());
      evict->second.erase(evict->second.begin());
      if (evict->second.empty()) entries_.erase(evict);
      ++stats_.evictions;
      RegistryCounters().evictions->Add(1);
    }
  }
  entries_[fingerprint].push_back(*table);
  insertion_order_.push_back(fingerprint);
  AccountInsertLocked(entries_[fingerprint].back());
  return false;
}

size_t ExtensionRegistry::Sweep() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t released = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    std::vector<Table>& tables = it->second;
    for (auto entry = tables.begin(); entry != tables.end();) {
      // Entries are only inserted cacheable, so cache_ is never null here;
      // a use count of one means this registry copy is the last reference.
      if (entry->cache_ != nullptr && entry->cache_.use_count() == 1) {
        AccountEraseLocked(*entry);
        ++stats_.releases;
        RegistryCounters().releases->Add(1);
        auto order = std::find(insertion_order_.begin(),
                               insertion_order_.end(), it->first);
        if (order != insertion_order_.end()) insertion_order_.erase(order);
        entry = tables.erase(entry);
        ++released;
      } else {
        ++entry;
      }
    }
    it = tables.empty() ? entries_.erase(it) : std::next(it);
  }
  return released;
}

size_t ExtensionRegistry::InternDatabase(Database* database) {
  size_t hits = 0;
  for (const std::string& relation : database->RelationNames()) {
    auto table = database->GetMutableTable(relation);
    if (!table.ok()) continue;
    if (Intern(*table)) ++hits;
  }
  return hits;
}

ExtensionRegistry::Stats ExtensionRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ExtensionRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  insertion_order_.clear();
  stats_.entries = 0;
  stats_.resident_bytes = 0;
  RegistryCounters().live_entries->Set(0);
  RegistryCounters().resident_bytes->Set(0);
}

}  // namespace dbre
