#include "relational/extension_registry.h"

#include <utility>

#include "relational/query_cache.h"

namespace dbre {

uint64_t ExtensionRegistry::Fingerprint(const Table& table) const {
  // FNV-1a over the column layout and every cell, order-dependent: the row
  // order matters for partition group ids, so only identically-ordered
  // loads may share storage.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const Attribute& attribute : table.schema().attributes()) {
    for (char c : attribute.name) mix(static_cast<unsigned char>(c));
    mix(static_cast<uint64_t>(attribute.type));
  }
  mix(table.num_rows());
  for (const ValueVector& row : table.rows()) {
    for (const Value& value : row) mix(value.Hash());
  }
  return h;
}

bool ExtensionRegistry::Intern(Table* table) {
  uint64_t fingerprint = Fingerprint(*table);
  // Materialize the cache before donating: a copy taken now shares the
  // cache pointer, so partitions memoized later through either handle are
  // visible to both.
  bool cacheable = table->query_cache().ok();

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    for (const Table& canonical : it->second) {
      if (table->AdoptSharedExtension(canonical)) {
        ++stats_.hits;
        return true;
      }
    }
  }
  if (!cacheable) return false;
  while (stats_.entries >= max_entries_ && !insertion_order_.empty()) {
    uint64_t oldest = insertion_order_.front();
    insertion_order_.pop_front();
    auto evict = entries_.find(oldest);
    if (evict != entries_.end() && !evict->second.empty()) {
      evict->second.erase(evict->second.begin());
      if (evict->second.empty()) entries_.erase(evict);
      --stats_.entries;
      ++stats_.evictions;
    }
  }
  entries_[fingerprint].push_back(*table);
  insertion_order_.push_back(fingerprint);
  ++stats_.entries;
  return false;
}

size_t ExtensionRegistry::InternDatabase(Database* database) {
  size_t hits = 0;
  for (const std::string& relation : database->RelationNames()) {
    auto table = database->GetMutableTable(relation);
    if (!table.ok()) continue;
    if (Intern(*table)) ++hits;
  }
  return hits;
}

ExtensionRegistry::Stats ExtensionRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ExtensionRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  insertion_order_.clear();
  stats_.entries = 0;
}

}  // namespace dbre
