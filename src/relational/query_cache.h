// Memoized extension-query engine over a dictionary-encoded table.
//
// The elicitation pipeline valuates the same handful of projections over and
// over: IND-Discovery asks ‖r[A]‖ for every attribute list appearing in the
// workload, RHS-Discovery re-groups by the same LHS for every candidate
// dependent, and the miners walk overlapping attribute-set lattices. A
// `QueryCache` owns one immutable `EncodedTable` and memoizes, per
// `(column list, NULL policy)`:
//
//   * `CodePartition` — the grouping of rows by their projected code tuple
//     (TANE-style π_X, with singletons kept so |π_X| is exact);
//   * the decoded distinct projection as a `ValueVectorSet` (needed when two
//     tables' projections must be compared — codes are table-local).
//
// FD checks reroute through cached partitions: X → A holds iff refining the
// cached π_X (NULL-LHS rows skipped) by the cached π_A (NULLs grouped as
// values) splits no class — one flat O(rows) pass over two uint32 arrays,
// equivalently |π_X| == |π_{X∪A}|. The g3 error uses the same two arrays.
//
// Single-attribute projections — the bulk of what IND-Discovery asks — skip
// the grouping machinery entirely: the column's dictionary IS the distinct
// projection, so ‖r[A]‖ is its size and cross-table intersection probes one
// dictionary against the other's memoized `ValueSet` (see DictionarySet).
//
// Thread safety: all entry points may be called concurrently; a single
// internal mutex guards the memo tables and the lazy column encoder
// (queries are per-projection, not per-row, so contention is negligible).
// Reading encoded() directly is safe only for columns passed through a
// locked ensure first (EnsureEncoded or any query over them). The cache
// must not outlive a mutation of its source table — `Table::query_cache()`
// enforces that by dropping the cache on every mutation.
#ifndef DBRE_RELATIONAL_QUERY_CACHE_H_
#define DBRE_RELATIONAL_QUERY_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"
#include "relational/encoded_table.h"
#include "relational/table.h"

namespace dbre {

// How a NULL inside a projected sub-row participates in grouping.
enum class NullPolicy {
  kSkipNullRows,  // rows with a NULL in the key are excluded (SQL
                  // count(distinct ...) / FD-LHS semantics)
  kNullAsValue,   // NULL is an ordinary group (partition / FD-RHS semantics)
};

// A set of single values, usable for dictionary inclusion / intersection.
using ValueSet = std::unordered_set<Value, ValueHash>;

// π_X over code columns. Group ids are dense and a pure function of the
// extension (multi-column partitions assign them in first-appearance row
// order; single-column partitions reuse the dictionary codes, with the NULL
// group — if any — appended last), so re-partitioning an identical
// extension is deterministic.
struct CodePartition {
  static constexpr uint32_t kSkipped = UINT32_MAX;

  std::vector<uint32_t> group_of_row;   // kSkipped for excluded rows
  std::vector<uint32_t> representative; // group id → first row in the group
  size_t included_rows = 0;             // rows with a valid group

  size_t num_groups() const { return representative.size(); }
};

class QueryCache {
 public:
  explicit QueryCache(EncodedTable encoded) : encoded_(std::move(encoded)) {}

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // Readable for any column that has gone through a locked ensure (below).
  const EncodedTable& encoded() const { return encoded_; }

  // Lazily encodes `columns`, after which encoded()'s code arrays and
  // dictionaries for them may be read directly.
  void EnsureEncoded(const std::vector<size_t>& columns);

  // Whether column `column` holds any NULL cell.
  bool ColumnHasNull(size_t column);

  // The distinct non-NULL values of one column as a memoized shared set —
  // the decoded dictionary. Cross-table single-attribute primitives probe
  // the smaller side's dictionary against the larger side's set.
  std::shared_ptr<const ValueSet> DictionarySet(size_t column);

  // Flat-integer variant of DictionarySet for homogeneous int64 columns —
  // nullptr if `column` is not declared int64 or holds a mismatched tag
  // (callers then fall back to the Value-based set).
  std::shared_ptr<const FlatSet64> Int64DictionarySet(size_t column);

  // Memoized π over `columns` (indexes into the schema; order matters only
  // for decoding, not for grouping — callers pass their query's order).
  std::shared_ptr<const CodePartition> Partition(
      const std::vector<size_t>& columns, NullPolicy policy);

  // ‖r[columns]‖ — distinct non-NULL sub-row count. Single columns read
  // their dictionary size; no partition is built.
  size_t DistinctCount(const std::vector<size_t>& columns);

  // Decoded distinct projection (NULL-skipping), memoized and shared so the
  // join primitives probe it without copying.
  std::shared_ptr<const ValueVectorSet> DistinctProjection(
      const std::vector<size_t>& columns);

  // Whether lhs → rhs holds: rows with NULL in `lhs_columns` are skipped,
  // NULLs in `rhs_columns` compare like ordinary values (the semantics of
  // FunctionalDependencyHolds in algebra.h).
  bool FdHolds(const std::vector<size_t>& lhs_columns,
               const std::vector<size_t>& rhs_columns);

  // g3 error of lhs → rhs (see FunctionalDependencyError in algebra.h).
  double FdError(const std::vector<size_t>& lhs_columns,
                 const std::vector<size_t>& rhs_columns);

 private:
  using PartitionKey = std::pair<std::vector<size_t>, int>;

  void EnsureColumnsLocked(const std::vector<size_t>& columns);
  std::shared_ptr<const CodePartition> BuildPartition(
      const std::vector<size_t>& columns, NullPolicy policy) const;

  EncodedTable encoded_;  // columns encode lazily under mutex_
  std::mutex mutex_;
  std::map<PartitionKey, std::shared_ptr<const CodePartition>> partitions_;
  std::map<std::vector<size_t>, std::shared_ptr<const ValueVectorSet>>
      distinct_sets_;
  std::map<size_t, std::shared_ptr<const ValueSet>> dictionary_sets_;
  std::map<size_t, std::shared_ptr<const FlatSet64>> int64_dictionary_sets_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_QUERY_CACHE_H_
