// Memoized extension-query engine over a dictionary-encoded table.
//
// The elicitation pipeline valuates the same handful of projections over and
// over: IND-Discovery asks ‖r[A]‖ for every attribute list appearing in the
// workload, RHS-Discovery re-groups by the same LHS for every candidate
// dependent, and the miners walk overlapping attribute-set lattices. A
// `QueryCache` owns one immutable `EncodedTable` and memoizes, per
// `(column list, NULL policy)`:
//
//   * `CodePartition` — the grouping of rows by their projected code tuple
//     (TANE-style π_X, with singletons kept so |π_X| is exact);
//   * the decoded distinct projection as a `ValueVectorSet` (needed when two
//     tables' projections must be compared — codes are table-local).
//
// FD checks reroute through cached partitions: X → A holds iff refining the
// cached π_X (NULL-LHS rows skipped) by the cached π_A (NULLs grouped as
// values) splits no class — one flat O(rows) pass over two uint32 arrays,
// equivalently |π_X| == |π_{X∪A}|. The g3 error uses the same two arrays.
//
// Single-attribute projections — the bulk of what IND-Discovery asks — skip
// the grouping machinery entirely: the column's dictionary IS the distinct
// projection, so ‖r[A]‖ is its size and cross-table intersection probes one
// dictionary against the other's memoized `ValueSet` (see DictionarySet).
//
// Thread safety: all entry points may be called concurrently; a single
// internal mutex guards the memo tables and the lazy column encoder
// (queries are per-projection, not per-row, so contention is negligible).
// Reading encoded() directly is safe only for columns passed through a
// locked ensure first (EnsureEncoded or any query over them). The cache
// must not outlive a mutation of its source table — `Table::query_cache()`
// enforces that by dropping the cache on every mutation.
#ifndef DBRE_RELATIONAL_QUERY_CACHE_H_
#define DBRE_RELATIONAL_QUERY_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"
#include "relational/encoded_table.h"
#include "relational/sketch.h"
#include "relational/table.h"

namespace dbre {

// How a NULL inside a projected sub-row participates in grouping.
enum class NullPolicy {
  kSkipNullRows,  // rows with a NULL in the key are excluded (SQL
                  // count(distinct ...) / FD-LHS semantics)
  kNullAsValue,   // NULL is an ordinary group (partition / FD-RHS semantics)
};

// A set of single values, usable for dictionary inclusion / intersection.
using ValueSet = std::unordered_set<Value, ValueHash>;

// π_X over code columns. Group ids are dense and a pure function of the
// extension (multi-column partitions assign them in first-appearance row
// order; single-column partitions reuse the dictionary codes, with the NULL
// group — if any — appended last), so re-partitioning an identical
// extension is deterministic.
struct CodePartition {
  static constexpr uint32_t kSkipped = UINT32_MAX;

  std::vector<uint32_t> group_of_row;   // kSkipped for excluded rows
  std::vector<uint32_t> representative; // group id → first row in the group
  size_t included_rows = 0;             // rows with a valid group

  size_t num_groups() const { return representative.size(); }
};

// Flat probe keys for one column's dictionary, in code order — what the
// batched membership kernels consume instead of per-code Value decoding.
// `hashes` (SketchHash of each dictionary value) are always present and
// equality-compatible across tables. `int64_keys` additionally carries the
// raw values when the column is homogeneously int64, making key equality
// itself exact.
struct DictionaryKeys {
  std::vector<uint64_t> hashes;
  std::vector<uint64_t> int64_keys;  // empty unless typed int64
};

// Bloom + HLL over one column's distinct values. The Bloom side is built
// over exactly the dictionary's sketch hashes, so a miss *proves* a value
// absent from the column; the HLL side estimates are advisory.
struct ColumnSketch {
  BloomFilter bloom;
  HyperLogLog hll;
  explicit ColumnSketch(size_t expected_keys) : bloom(expected_keys) {}
};

// The same pair over a multi-column projection's NULL-free sub-rows,
// hashed with the canonical per-column SketchHash chain (order-sensitive,
// cross-table comparable).
struct ProjectionSketch {
  BloomFilter bloom;
  HyperLogLog hll;
  explicit ProjectionSketch(size_t expected_keys) : bloom(expected_keys) {}
};

// Seed of the multi-column row-hash chain (arbitrary odd constant; both
// sides of any cross-table comparison must start from it).
inline constexpr uint64_t kRowHashSeed = 14695981039346656037ull;

// The three exact valuations of one cross-table join, as memoized here
// (mirrors JoinCounts in algebra.h, which depends on this header).
struct JoinCountsValue {
  size_t n_left = 0;
  size_t n_right = 0;
  size_t n_join = 0;
};

class QueryCache {
 public:
  explicit QueryCache(EncodedTable encoded) : encoded_(std::move(encoded)) {}

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // Builds a cache over a mutated extension by reusing `base`'s work
  // instead of starting cold. `rows` is the mutated storage whose first
  // `base_rows` rows are byte-identical to base's on every column NOT in
  // `updated_columns` (sorted schema indexes of in-place updated columns).
  // Ready base encodings of untouched columns are extended over the
  // appended suffix (EncodedTable::ExtendColumnFrom); when no rows were
  // appended, memoized partitions/sets/sketches whose column sets avoid
  // `updated_columns` carry over as shared pointers. The cross-table join
  // memo never carries over (its keys are peer cache identities). Every
  // observable answer of the returned cache is byte-identical to a cold
  // build over `rows` — the incremental path's correctness hinge, proven
  // by the table_mutation and incremental suites.
  static std::unique_ptr<QueryCache> BuildDelta(
      QueryCache& base, size_t base_rows,
      std::shared_ptr<const std::vector<ValueVector>> rows,
      std::vector<DataType> types, const std::vector<size_t>& updated_columns);

  // Readable for any column that has gone through a locked ensure (below).
  const EncodedTable& encoded() const { return encoded_; }

  // Lazily encodes `columns`, after which encoded()'s code arrays and
  // dictionaries for them may be read directly.
  void EnsureEncoded(const std::vector<size_t>& columns);

  // Whether column `column` holds any NULL cell.
  bool ColumnHasNull(size_t column);

  // The distinct non-NULL values of one column as a memoized shared set —
  // the decoded dictionary. Cross-table single-attribute primitives probe
  // the smaller side's dictionary against the larger side's set.
  std::shared_ptr<const ValueSet> DictionarySet(size_t column);

  // Flat-integer variant of DictionarySet for homogeneous int64 columns —
  // nullptr if `column` is not declared int64 or holds a mismatched tag
  // (callers then fall back to the Value-based set).
  std::shared_ptr<const FlatSet64> Int64DictionarySet(size_t column);

  // Memoized π over `columns` (indexes into the schema; order matters only
  // for decoding, not for grouping — callers pass their query's order).
  std::shared_ptr<const CodePartition> Partition(
      const std::vector<size_t>& columns, NullPolicy policy);

  // ‖r[columns]‖ — distinct non-NULL sub-row count. Single columns read
  // their dictionary size; no partition is built.
  size_t DistinctCount(const std::vector<size_t>& columns);

  // Decoded distinct projection (NULL-skipping), memoized and shared so the
  // join primitives probe it without copying.
  std::shared_ptr<const ValueVectorSet> DistinctProjection(
      const std::vector<size_t>& columns);

  // Whether lhs → rhs holds: rows with NULL in `lhs_columns` are skipped,
  // NULLs in `rhs_columns` compare like ordinary values (the semantics of
  // FunctionalDependencyHolds in algebra.h). Before the O(rows) refinement
  // pass, two exact distinct-count prunes run over the memoized partition
  // sizes: all-singleton LHS ⇒ holds; NULL-free LHS with more RHS than LHS
  // classes ⇒ fails (each is a proof, never an estimate).
  bool FdHolds(const std::vector<size_t>& lhs_columns,
               const std::vector<size_t>& rhs_columns);

  // g3 error of lhs → rhs (see FunctionalDependencyError in algebra.h).
  double FdError(const std::vector<size_t>& lhs_columns,
                 const std::vector<size_t>& rhs_columns);

  // Flat dictionary probe keys of one column, memoized and shared.
  std::shared_ptr<const DictionaryKeys> DictKeys(size_t column);

  // Bloom+HLL over one column's dictionary: ColumnSketchFor builds and
  // memoizes; MaybeColumnSketch only returns an already-built sketch (a
  // one-shot probe is cheaper than a sketch build, so callers outside a
  // discovery sweep never trigger builds).
  std::shared_ptr<const ColumnSketch> ColumnSketchFor(size_t column);
  std::shared_ptr<const ColumnSketch> MaybeColumnSketch(size_t column);

  // Bloom+HLL over a projection's NULL-free sub-rows — one flat pass over
  // the code columns, no decoding, no partition build.
  std::shared_ptr<const ProjectionSketch> ProjectionSketchFor(
      const std::vector<size_t>& columns);

  // Whether DistinctProjection(columns) has already been materialized
  // (used to decide whether a sketch pre-pass is still worth anything).
  bool HasDistinctProjection(const std::vector<size_t>& columns);

  // ‖r[columns]‖, approximately: exact (dictionary size / memoized
  // partition) when already known, otherwise a memoized HLL estimate.
  // Never builds an exact partition; advisory only.
  double EstimateDistinct(const std::vector<size_t>& columns);

  // Memo for cross-table join counts (keyed by the peer cache's identity
  // and both ordered column lists). The stored weak_ptr guards against
  // address reuse after the peer table mutates: a lookup only hits when
  // the peer's cache object is still the one the entry was stored under.
  bool LookupJoinCounts(const std::shared_ptr<const QueryCache>& peer,
                        const std::vector<size_t>& my_columns,
                        const std::vector<size_t>& peer_columns,
                        JoinCountsValue* out);
  void StoreJoinCounts(const std::shared_ptr<const QueryCache>& peer,
                       const std::vector<size_t>& my_columns,
                       const std::vector<size_t>& peer_columns,
                       const JoinCountsValue& counts);

 private:
  using PartitionKey = std::pair<std::vector<size_t>, int>;
  using FdKey = std::pair<std::vector<size_t>, std::vector<size_t>>;
  using JoinMemoKey =
      std::tuple<const void*, std::vector<size_t>, std::vector<size_t>>;
  struct JoinMemoEntry {
    std::weak_ptr<const QueryCache> peer;
    JoinCountsValue counts;
  };

  void EnsureColumnsLocked(const std::vector<size_t>& columns);
  std::shared_ptr<const CodePartition> BuildPartition(
      const std::vector<size_t>& columns, NullPolicy policy) const;
  bool ComputeFdHolds(const std::vector<size_t>& lhs_columns,
                      const std::vector<size_t>& rhs_columns);
  double ComputeFdError(const std::vector<size_t>& lhs_columns,
                        const std::vector<size_t>& rhs_columns);

  EncodedTable encoded_;  // columns encode lazily under mutex_
  std::mutex mutex_;
  std::map<PartitionKey, std::shared_ptr<const CodePartition>> partitions_;
  std::map<std::vector<size_t>, std::shared_ptr<const ValueVectorSet>>
      distinct_sets_;
  std::map<size_t, std::shared_ptr<const ValueSet>> dictionary_sets_;
  std::map<size_t, std::shared_ptr<const FlatSet64>> int64_dictionary_sets_;
  std::map<size_t, std::shared_ptr<const DictionaryKeys>> dictionary_keys_;
  std::map<size_t, std::shared_ptr<const ColumnSketch>> column_sketches_;
  std::map<std::vector<size_t>, std::shared_ptr<const ProjectionSketch>>
      projection_sketches_;
  std::map<JoinMemoKey, JoinMemoEntry> join_memo_;
  // FD verdicts are pure functions of the extension and the two column
  // lists (sketch gating changes the route, never the answer), so reruns
  // skip the O(rows) refinement pass entirely. BuildDelta carries an entry
  // over only when both sides avoid the updated columns — same rule as the
  // partitions it was derived from.
  std::map<FdKey, bool> fd_verdicts_;
  std::map<FdKey, double> fd_errors_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_QUERY_CACHE_H_
